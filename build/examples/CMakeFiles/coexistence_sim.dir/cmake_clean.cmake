file(REMOVE_RECURSE
  "CMakeFiles/coexistence_sim.dir/coexistence_sim.cpp.o"
  "CMakeFiles/coexistence_sim.dir/coexistence_sim.cpp.o.d"
  "coexistence_sim"
  "coexistence_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coexistence_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
