# Empty dependencies file for coexistence_sim.
# This may be replaced when dependencies are built.
