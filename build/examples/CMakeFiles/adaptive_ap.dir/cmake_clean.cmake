file(REMOVE_RECURSE
  "CMakeFiles/adaptive_ap.dir/adaptive_ap.cpp.o"
  "CMakeFiles/adaptive_ap.dir/adaptive_ap.cpp.o.d"
  "adaptive_ap"
  "adaptive_ap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_ap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
