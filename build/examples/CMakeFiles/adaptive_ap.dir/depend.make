# Empty dependencies file for adaptive_ap.
# This may be replaced when dependencies are built.
