file(REMOVE_RECURSE
  "CMakeFiles/channel_detect.dir/channel_detect.cpp.o"
  "CMakeFiles/channel_detect.dir/channel_detect.cpp.o.d"
  "channel_detect"
  "channel_detect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/channel_detect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
