# Empty dependencies file for channel_detect.
# This may be replaced when dependencies are built.
