file(REMOVE_RECURSE
  "CMakeFiles/spectrum_scan.dir/spectrum_scan.cpp.o"
  "CMakeFiles/spectrum_scan.dir/spectrum_scan.cpp.o.d"
  "spectrum_scan"
  "spectrum_scan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spectrum_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
