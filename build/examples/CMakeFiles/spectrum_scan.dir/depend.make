# Empty dependencies file for spectrum_scan.
# This may be replaced when dependencies are built.
