file(REMOVE_RECURSE
  "CMakeFiles/file_transfer.dir/file_transfer.cpp.o"
  "CMakeFiles/file_transfer.dir/file_transfer.cpp.o.d"
  "file_transfer"
  "file_transfer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/file_transfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
