# Empty dependencies file for bench_ablation_multichannel.
# This may be replaced when dependencies are built.
