file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_multichannel.dir/bench/bench_ablation_multichannel.cc.o"
  "CMakeFiles/bench_ablation_multichannel.dir/bench/bench_ablation_multichannel.cc.o.d"
  "bench/bench_ablation_multichannel"
  "bench/bench_ablation_multichannel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_multichannel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
