# Empty compiler generated dependencies file for bench_fig16_traffic_ratio.
# This may be replaced when dependencies are built.
