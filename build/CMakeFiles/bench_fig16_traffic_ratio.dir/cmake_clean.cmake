file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_traffic_ratio.dir/bench/bench_fig16_traffic_ratio.cc.o"
  "CMakeFiles/bench_fig16_traffic_ratio.dir/bench/bench_fig16_traffic_ratio.cc.o.d"
  "bench/bench_fig16_traffic_ratio"
  "bench/bench_fig16_traffic_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_traffic_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
