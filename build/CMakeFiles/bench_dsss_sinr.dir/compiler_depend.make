# Empty compiler generated dependencies file for bench_dsss_sinr.
# This may be replaced when dependencies are built.
