file(REMOVE_RECURSE
  "CMakeFiles/bench_dsss_sinr.dir/bench/bench_dsss_sinr.cc.o"
  "CMakeFiles/bench_dsss_sinr.dir/bench/bench_dsss_sinr.cc.o.d"
  "bench/bench_dsss_sinr"
  "bench/bench_dsss_sinr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dsss_sinr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
