file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_dz_throughput.dir/bench/bench_fig15_dz_throughput.cc.o"
  "CMakeFiles/bench_fig15_dz_throughput.dir/bench/bench_fig15_dz_throughput.cc.o.d"
  "bench/bench_fig15_dz_throughput"
  "bench/bench_fig15_dz_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_dz_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
