# Empty dependencies file for bench_fig15_dz_throughput.
# This may be replaced when dependencies are built.
