file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_throughput_loss.dir/bench/bench_table4_throughput_loss.cc.o"
  "CMakeFiles/bench_table4_throughput_loss.dir/bench/bench_table4_throughput_loss.cc.o.d"
  "bench/bench_table4_throughput_loss"
  "bench/bench_table4_throughput_loss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_throughput_loss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
