# Empty compiler generated dependencies file for bench_table4_throughput_loss.
# This may be replaced when dependencies are built.
