# Empty dependencies file for bench_min_snr.
# This may be replaced when dependencies are built.
