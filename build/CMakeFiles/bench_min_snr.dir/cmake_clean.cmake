file(REMOVE_RECURSE
  "CMakeFiles/bench_min_snr.dir/bench/bench_min_snr.cc.o"
  "CMakeFiles/bench_min_snr.dir/bench/bench_min_snr.cc.o.d"
  "bench/bench_min_snr"
  "bench/bench_min_snr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_min_snr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
