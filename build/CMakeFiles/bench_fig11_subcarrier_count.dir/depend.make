# Empty dependencies file for bench_fig11_subcarrier_count.
# This may be replaced when dependencies are built.
