file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_subcarrier_count.dir/bench/bench_fig11_subcarrier_count.cc.o"
  "CMakeFiles/bench_fig11_subcarrier_count.dir/bench/bench_fig11_subcarrier_count.cc.o.d"
  "bench/bench_fig11_subcarrier_count"
  "bench/bench_fig11_subcarrier_count.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_subcarrier_count.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
