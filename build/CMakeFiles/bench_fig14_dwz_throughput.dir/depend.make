# Empty dependencies file for bench_fig14_dwz_throughput.
# This may be replaced when dependencies are built.
