file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_preamble.dir/bench/bench_ablation_preamble.cc.o"
  "CMakeFiles/bench_ablation_preamble.dir/bench/bench_ablation_preamble.cc.o.d"
  "bench/bench_ablation_preamble"
  "bench/bench_ablation_preamble.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_preamble.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
