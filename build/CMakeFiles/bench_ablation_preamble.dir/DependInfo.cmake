
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_preamble.cc" "CMakeFiles/bench_ablation_preamble.dir/bench/bench_ablation_preamble.cc.o" "gcc" "CMakeFiles/bench_ablation_preamble.dir/bench/bench_ablation_preamble.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/coex/CMakeFiles/sledzig_coex.dir/DependInfo.cmake"
  "/root/repo/build/src/mac/CMakeFiles/sledzig_mac.dir/DependInfo.cmake"
  "/root/repo/build/src/channel/CMakeFiles/sledzig_channel.dir/DependInfo.cmake"
  "/root/repo/build/src/sledzig/CMakeFiles/sledzig_core.dir/DependInfo.cmake"
  "/root/repo/build/src/zigbee/CMakeFiles/sledzig_zigbee.dir/DependInfo.cmake"
  "/root/repo/build/src/wifi/CMakeFiles/sledzig_wifi.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sledzig_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
