# Empty compiler generated dependencies file for bench_ablation_preamble.
# This may be replaced when dependencies are built.
