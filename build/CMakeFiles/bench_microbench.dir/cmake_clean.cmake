file(REMOVE_RECURSE
  "CMakeFiles/bench_microbench.dir/bench/bench_microbench.cc.o"
  "CMakeFiles/bench_microbench.dir/bench/bench_microbench.cc.o.d"
  "bench/bench_microbench"
  "bench/bench_microbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_microbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
