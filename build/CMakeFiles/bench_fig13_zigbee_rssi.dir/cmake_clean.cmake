file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_zigbee_rssi.dir/bench/bench_fig13_zigbee_rssi.cc.o"
  "CMakeFiles/bench_fig13_zigbee_rssi.dir/bench/bench_fig13_zigbee_rssi.cc.o.d"
  "bench/bench_fig13_zigbee_rssi"
  "bench/bench_fig13_zigbee_rssi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_zigbee_rssi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
