# Empty compiler generated dependencies file for bench_fig13_zigbee_rssi.
# This may be replaced when dependencies are built.
