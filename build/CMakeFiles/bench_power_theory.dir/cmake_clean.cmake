file(REMOVE_RECURSE
  "CMakeFiles/bench_power_theory.dir/bench/bench_power_theory.cc.o"
  "CMakeFiles/bench_power_theory.dir/bench/bench_power_theory.cc.o.d"
  "bench/bench_power_theory"
  "bench/bench_power_theory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_power_theory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
