# Empty compiler generated dependencies file for bench_power_theory.
# This may be replaced when dependencies are built.
