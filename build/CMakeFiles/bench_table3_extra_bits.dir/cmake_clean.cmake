file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_extra_bits.dir/bench/bench_table3_extra_bits.cc.o"
  "CMakeFiles/bench_table3_extra_bits.dir/bench/bench_table3_extra_bits.cc.o.d"
  "bench/bench_table3_extra_bits"
  "bench/bench_table3_extra_bits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_extra_bits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
