# Empty compiler generated dependencies file for bench_table3_extra_bits.
# This may be replaced when dependencies are built.
