# Empty dependencies file for bench_fig12_rssi_decrease.
# This may be replaced when dependencies are built.
