file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_rssi_decrease.dir/bench/bench_fig12_rssi_decrease.cc.o"
  "CMakeFiles/bench_fig12_rssi_decrease.dir/bench/bench_fig12_rssi_decrease.cc.o.d"
  "bench/bench_fig12_rssi_decrease"
  "bench/bench_fig12_rssi_decrease.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_rssi_decrease.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
