file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_wifi_rx_rssi.dir/bench/bench_fig17_wifi_rx_rssi.cc.o"
  "CMakeFiles/bench_fig17_wifi_rx_rssi.dir/bench/bench_fig17_wifi_rx_rssi.cc.o.d"
  "bench/bench_fig17_wifi_rx_rssi"
  "bench/bench_fig17_wifi_rx_rssi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_wifi_rx_rssi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
