# Empty dependencies file for bench_fig17_wifi_rx_rssi.
# This may be replaced when dependencies are built.
