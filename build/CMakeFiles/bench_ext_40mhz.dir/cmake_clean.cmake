file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_40mhz.dir/bench/bench_ext_40mhz.cc.o"
  "CMakeFiles/bench_ext_40mhz.dir/bench/bench_ext_40mhz.cc.o.d"
  "bench/bench_ext_40mhz"
  "bench/bench_ext_40mhz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_40mhz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
