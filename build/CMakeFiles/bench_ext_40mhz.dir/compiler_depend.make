# Empty compiler generated dependencies file for bench_ext_40mhz.
# This may be replaced when dependencies are built.
