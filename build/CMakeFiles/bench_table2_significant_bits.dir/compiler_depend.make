# Empty compiler generated dependencies file for bench_table2_significant_bits.
# This may be replaced when dependencies are built.
