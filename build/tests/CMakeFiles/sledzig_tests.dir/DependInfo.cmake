
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/ble_window_test.cc" "tests/CMakeFiles/sledzig_tests.dir/ble_window_test.cc.o" "gcc" "tests/CMakeFiles/sledzig_tests.dir/ble_window_test.cc.o.d"
  "/root/repo/tests/cfo_test.cc" "tests/CMakeFiles/sledzig_tests.dir/cfo_test.cc.o" "gcc" "tests/CMakeFiles/sledzig_tests.dir/cfo_test.cc.o.d"
  "/root/repo/tests/channel_test.cc" "tests/CMakeFiles/sledzig_tests.dir/channel_test.cc.o" "gcc" "tests/CMakeFiles/sledzig_tests.dir/channel_test.cc.o.d"
  "/root/repo/tests/coex_test.cc" "tests/CMakeFiles/sledzig_tests.dir/coex_test.cc.o" "gcc" "tests/CMakeFiles/sledzig_tests.dir/coex_test.cc.o.d"
  "/root/repo/tests/common_test.cc" "tests/CMakeFiles/sledzig_tests.dir/common_test.cc.o" "gcc" "tests/CMakeFiles/sledzig_tests.dir/common_test.cc.o.d"
  "/root/repo/tests/detector_test.cc" "tests/CMakeFiles/sledzig_tests.dir/detector_test.cc.o" "gcc" "tests/CMakeFiles/sledzig_tests.dir/detector_test.cc.o.d"
  "/root/repo/tests/failure_injection_test.cc" "tests/CMakeFiles/sledzig_tests.dir/failure_injection_test.cc.o" "gcc" "tests/CMakeFiles/sledzig_tests.dir/failure_injection_test.cc.o.d"
  "/root/repo/tests/full_stack_test.cc" "tests/CMakeFiles/sledzig_tests.dir/full_stack_test.cc.o" "gcc" "tests/CMakeFiles/sledzig_tests.dir/full_stack_test.cc.o.d"
  "/root/repo/tests/mac_test.cc" "tests/CMakeFiles/sledzig_tests.dir/mac_test.cc.o" "gcc" "tests/CMakeFiles/sledzig_tests.dir/mac_test.cc.o.d"
  "/root/repo/tests/property_test.cc" "tests/CMakeFiles/sledzig_tests.dir/property_test.cc.o" "gcc" "tests/CMakeFiles/sledzig_tests.dir/property_test.cc.o.d"
  "/root/repo/tests/sledzig_core_test.cc" "tests/CMakeFiles/sledzig_tests.dir/sledzig_core_test.cc.o" "gcc" "tests/CMakeFiles/sledzig_tests.dir/sledzig_core_test.cc.o.d"
  "/root/repo/tests/soft_decision_test.cc" "tests/CMakeFiles/sledzig_tests.dir/soft_decision_test.cc.o" "gcc" "tests/CMakeFiles/sledzig_tests.dir/soft_decision_test.cc.o.d"
  "/root/repo/tests/stream_test.cc" "tests/CMakeFiles/sledzig_tests.dir/stream_test.cc.o" "gcc" "tests/CMakeFiles/sledzig_tests.dir/stream_test.cc.o.d"
  "/root/repo/tests/wide_channel_test.cc" "tests/CMakeFiles/sledzig_tests.dir/wide_channel_test.cc.o" "gcc" "tests/CMakeFiles/sledzig_tests.dir/wide_channel_test.cc.o.d"
  "/root/repo/tests/wifi_blocks_test.cc" "tests/CMakeFiles/sledzig_tests.dir/wifi_blocks_test.cc.o" "gcc" "tests/CMakeFiles/sledzig_tests.dir/wifi_blocks_test.cc.o.d"
  "/root/repo/tests/wifi_loopback_test.cc" "tests/CMakeFiles/sledzig_tests.dir/wifi_loopback_test.cc.o" "gcc" "tests/CMakeFiles/sledzig_tests.dir/wifi_loopback_test.cc.o.d"
  "/root/repo/tests/zigbee_test.cc" "tests/CMakeFiles/sledzig_tests.dir/zigbee_test.cc.o" "gcc" "tests/CMakeFiles/sledzig_tests.dir/zigbee_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/coex/CMakeFiles/sledzig_coex.dir/DependInfo.cmake"
  "/root/repo/build/src/mac/CMakeFiles/sledzig_mac.dir/DependInfo.cmake"
  "/root/repo/build/src/channel/CMakeFiles/sledzig_channel.dir/DependInfo.cmake"
  "/root/repo/build/src/sledzig/CMakeFiles/sledzig_core.dir/DependInfo.cmake"
  "/root/repo/build/src/zigbee/CMakeFiles/sledzig_zigbee.dir/DependInfo.cmake"
  "/root/repo/build/src/wifi/CMakeFiles/sledzig_wifi.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sledzig_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
