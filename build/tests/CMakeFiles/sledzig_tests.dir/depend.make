# Empty dependencies file for sledzig_tests.
# This may be replaced when dependencies are built.
