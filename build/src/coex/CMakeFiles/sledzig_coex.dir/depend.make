# Empty dependencies file for sledzig_coex.
# This may be replaced when dependencies are built.
