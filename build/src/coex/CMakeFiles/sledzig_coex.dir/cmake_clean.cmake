file(REMOVE_RECURSE
  "CMakeFiles/sledzig_coex.dir/detector.cc.o"
  "CMakeFiles/sledzig_coex.dir/detector.cc.o.d"
  "CMakeFiles/sledzig_coex.dir/experiment.cc.o"
  "CMakeFiles/sledzig_coex.dir/experiment.cc.o.d"
  "CMakeFiles/sledzig_coex.dir/inband.cc.o"
  "CMakeFiles/sledzig_coex.dir/inband.cc.o.d"
  "libsledzig_coex.a"
  "libsledzig_coex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sledzig_coex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
