file(REMOVE_RECURSE
  "libsledzig_coex.a"
)
