file(REMOVE_RECURSE
  "CMakeFiles/sledzig_zigbee.dir/cc2420.cc.o"
  "CMakeFiles/sledzig_zigbee.dir/cc2420.cc.o.d"
  "CMakeFiles/sledzig_zigbee.dir/chips.cc.o"
  "CMakeFiles/sledzig_zigbee.dir/chips.cc.o.d"
  "CMakeFiles/sledzig_zigbee.dir/frame.cc.o"
  "CMakeFiles/sledzig_zigbee.dir/frame.cc.o.d"
  "CMakeFiles/sledzig_zigbee.dir/oqpsk.cc.o"
  "CMakeFiles/sledzig_zigbee.dir/oqpsk.cc.o.d"
  "CMakeFiles/sledzig_zigbee.dir/receiver.cc.o"
  "CMakeFiles/sledzig_zigbee.dir/receiver.cc.o.d"
  "CMakeFiles/sledzig_zigbee.dir/transmitter.cc.o"
  "CMakeFiles/sledzig_zigbee.dir/transmitter.cc.o.d"
  "libsledzig_zigbee.a"
  "libsledzig_zigbee.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sledzig_zigbee.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
