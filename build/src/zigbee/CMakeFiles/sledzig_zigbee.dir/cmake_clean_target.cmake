file(REMOVE_RECURSE
  "libsledzig_zigbee.a"
)
