
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/zigbee/cc2420.cc" "src/zigbee/CMakeFiles/sledzig_zigbee.dir/cc2420.cc.o" "gcc" "src/zigbee/CMakeFiles/sledzig_zigbee.dir/cc2420.cc.o.d"
  "/root/repo/src/zigbee/chips.cc" "src/zigbee/CMakeFiles/sledzig_zigbee.dir/chips.cc.o" "gcc" "src/zigbee/CMakeFiles/sledzig_zigbee.dir/chips.cc.o.d"
  "/root/repo/src/zigbee/frame.cc" "src/zigbee/CMakeFiles/sledzig_zigbee.dir/frame.cc.o" "gcc" "src/zigbee/CMakeFiles/sledzig_zigbee.dir/frame.cc.o.d"
  "/root/repo/src/zigbee/oqpsk.cc" "src/zigbee/CMakeFiles/sledzig_zigbee.dir/oqpsk.cc.o" "gcc" "src/zigbee/CMakeFiles/sledzig_zigbee.dir/oqpsk.cc.o.d"
  "/root/repo/src/zigbee/receiver.cc" "src/zigbee/CMakeFiles/sledzig_zigbee.dir/receiver.cc.o" "gcc" "src/zigbee/CMakeFiles/sledzig_zigbee.dir/receiver.cc.o.d"
  "/root/repo/src/zigbee/transmitter.cc" "src/zigbee/CMakeFiles/sledzig_zigbee.dir/transmitter.cc.o" "gcc" "src/zigbee/CMakeFiles/sledzig_zigbee.dir/transmitter.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sledzig_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
