# Empty compiler generated dependencies file for sledzig_zigbee.
# This may be replaced when dependencies are built.
