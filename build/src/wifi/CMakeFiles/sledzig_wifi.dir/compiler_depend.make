# Empty compiler generated dependencies file for sledzig_wifi.
# This may be replaced when dependencies are built.
