file(REMOVE_RECURSE
  "CMakeFiles/sledzig_wifi.dir/convolutional.cc.o"
  "CMakeFiles/sledzig_wifi.dir/convolutional.cc.o.d"
  "CMakeFiles/sledzig_wifi.dir/interleaver.cc.o"
  "CMakeFiles/sledzig_wifi.dir/interleaver.cc.o.d"
  "CMakeFiles/sledzig_wifi.dir/ofdm.cc.o"
  "CMakeFiles/sledzig_wifi.dir/ofdm.cc.o.d"
  "CMakeFiles/sledzig_wifi.dir/phy_params.cc.o"
  "CMakeFiles/sledzig_wifi.dir/phy_params.cc.o.d"
  "CMakeFiles/sledzig_wifi.dir/preamble.cc.o"
  "CMakeFiles/sledzig_wifi.dir/preamble.cc.o.d"
  "CMakeFiles/sledzig_wifi.dir/puncture.cc.o"
  "CMakeFiles/sledzig_wifi.dir/puncture.cc.o.d"
  "CMakeFiles/sledzig_wifi.dir/qam.cc.o"
  "CMakeFiles/sledzig_wifi.dir/qam.cc.o.d"
  "CMakeFiles/sledzig_wifi.dir/receiver.cc.o"
  "CMakeFiles/sledzig_wifi.dir/receiver.cc.o.d"
  "CMakeFiles/sledzig_wifi.dir/scrambler.cc.o"
  "CMakeFiles/sledzig_wifi.dir/scrambler.cc.o.d"
  "CMakeFiles/sledzig_wifi.dir/signal_field.cc.o"
  "CMakeFiles/sledzig_wifi.dir/signal_field.cc.o.d"
  "CMakeFiles/sledzig_wifi.dir/subcarriers.cc.o"
  "CMakeFiles/sledzig_wifi.dir/subcarriers.cc.o.d"
  "CMakeFiles/sledzig_wifi.dir/transmitter.cc.o"
  "CMakeFiles/sledzig_wifi.dir/transmitter.cc.o.d"
  "libsledzig_wifi.a"
  "libsledzig_wifi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sledzig_wifi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
