
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wifi/convolutional.cc" "src/wifi/CMakeFiles/sledzig_wifi.dir/convolutional.cc.o" "gcc" "src/wifi/CMakeFiles/sledzig_wifi.dir/convolutional.cc.o.d"
  "/root/repo/src/wifi/interleaver.cc" "src/wifi/CMakeFiles/sledzig_wifi.dir/interleaver.cc.o" "gcc" "src/wifi/CMakeFiles/sledzig_wifi.dir/interleaver.cc.o.d"
  "/root/repo/src/wifi/ofdm.cc" "src/wifi/CMakeFiles/sledzig_wifi.dir/ofdm.cc.o" "gcc" "src/wifi/CMakeFiles/sledzig_wifi.dir/ofdm.cc.o.d"
  "/root/repo/src/wifi/phy_params.cc" "src/wifi/CMakeFiles/sledzig_wifi.dir/phy_params.cc.o" "gcc" "src/wifi/CMakeFiles/sledzig_wifi.dir/phy_params.cc.o.d"
  "/root/repo/src/wifi/preamble.cc" "src/wifi/CMakeFiles/sledzig_wifi.dir/preamble.cc.o" "gcc" "src/wifi/CMakeFiles/sledzig_wifi.dir/preamble.cc.o.d"
  "/root/repo/src/wifi/puncture.cc" "src/wifi/CMakeFiles/sledzig_wifi.dir/puncture.cc.o" "gcc" "src/wifi/CMakeFiles/sledzig_wifi.dir/puncture.cc.o.d"
  "/root/repo/src/wifi/qam.cc" "src/wifi/CMakeFiles/sledzig_wifi.dir/qam.cc.o" "gcc" "src/wifi/CMakeFiles/sledzig_wifi.dir/qam.cc.o.d"
  "/root/repo/src/wifi/receiver.cc" "src/wifi/CMakeFiles/sledzig_wifi.dir/receiver.cc.o" "gcc" "src/wifi/CMakeFiles/sledzig_wifi.dir/receiver.cc.o.d"
  "/root/repo/src/wifi/scrambler.cc" "src/wifi/CMakeFiles/sledzig_wifi.dir/scrambler.cc.o" "gcc" "src/wifi/CMakeFiles/sledzig_wifi.dir/scrambler.cc.o.d"
  "/root/repo/src/wifi/signal_field.cc" "src/wifi/CMakeFiles/sledzig_wifi.dir/signal_field.cc.o" "gcc" "src/wifi/CMakeFiles/sledzig_wifi.dir/signal_field.cc.o.d"
  "/root/repo/src/wifi/subcarriers.cc" "src/wifi/CMakeFiles/sledzig_wifi.dir/subcarriers.cc.o" "gcc" "src/wifi/CMakeFiles/sledzig_wifi.dir/subcarriers.cc.o.d"
  "/root/repo/src/wifi/transmitter.cc" "src/wifi/CMakeFiles/sledzig_wifi.dir/transmitter.cc.o" "gcc" "src/wifi/CMakeFiles/sledzig_wifi.dir/transmitter.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sledzig_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
