file(REMOVE_RECURSE
  "libsledzig_wifi.a"
)
