
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mac/wifi_timeline.cc" "src/mac/CMakeFiles/sledzig_mac.dir/wifi_timeline.cc.o" "gcc" "src/mac/CMakeFiles/sledzig_mac.dir/wifi_timeline.cc.o.d"
  "/root/repo/src/mac/zigbee_csma.cc" "src/mac/CMakeFiles/sledzig_mac.dir/zigbee_csma.cc.o" "gcc" "src/mac/CMakeFiles/sledzig_mac.dir/zigbee_csma.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sledzig_common.dir/DependInfo.cmake"
  "/root/repo/build/src/zigbee/CMakeFiles/sledzig_zigbee.dir/DependInfo.cmake"
  "/root/repo/build/src/channel/CMakeFiles/sledzig_channel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
