file(REMOVE_RECURSE
  "libsledzig_mac.a"
)
