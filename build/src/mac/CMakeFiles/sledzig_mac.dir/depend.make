# Empty dependencies file for sledzig_mac.
# This may be replaced when dependencies are built.
