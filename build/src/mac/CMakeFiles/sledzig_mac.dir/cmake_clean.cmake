file(REMOVE_RECURSE
  "CMakeFiles/sledzig_mac.dir/wifi_timeline.cc.o"
  "CMakeFiles/sledzig_mac.dir/wifi_timeline.cc.o.d"
  "CMakeFiles/sledzig_mac.dir/zigbee_csma.cc.o"
  "CMakeFiles/sledzig_mac.dir/zigbee_csma.cc.o.d"
  "libsledzig_mac.a"
  "libsledzig_mac.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sledzig_mac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
