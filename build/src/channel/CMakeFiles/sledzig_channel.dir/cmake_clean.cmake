file(REMOVE_RECURSE
  "CMakeFiles/sledzig_channel.dir/medium.cc.o"
  "CMakeFiles/sledzig_channel.dir/medium.cc.o.d"
  "CMakeFiles/sledzig_channel.dir/pathloss.cc.o"
  "CMakeFiles/sledzig_channel.dir/pathloss.cc.o.d"
  "libsledzig_channel.a"
  "libsledzig_channel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sledzig_channel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
