file(REMOVE_RECURSE
  "libsledzig_channel.a"
)
