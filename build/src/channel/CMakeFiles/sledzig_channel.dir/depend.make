# Empty dependencies file for sledzig_channel.
# This may be replaced when dependencies are built.
