file(REMOVE_RECURSE
  "CMakeFiles/sledzig_core.dir/channels.cc.o"
  "CMakeFiles/sledzig_core.dir/channels.cc.o.d"
  "CMakeFiles/sledzig_core.dir/encoder.cc.o"
  "CMakeFiles/sledzig_core.dir/encoder.cc.o.d"
  "CMakeFiles/sledzig_core.dir/power_analysis.cc.o"
  "CMakeFiles/sledzig_core.dir/power_analysis.cc.o.d"
  "CMakeFiles/sledzig_core.dir/significant_bits.cc.o"
  "CMakeFiles/sledzig_core.dir/significant_bits.cc.o.d"
  "CMakeFiles/sledzig_core.dir/stream.cc.o"
  "CMakeFiles/sledzig_core.dir/stream.cc.o.d"
  "libsledzig_core.a"
  "libsledzig_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sledzig_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
