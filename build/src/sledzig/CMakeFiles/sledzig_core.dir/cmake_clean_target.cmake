file(REMOVE_RECURSE
  "libsledzig_core.a"
)
