
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sledzig/channels.cc" "src/sledzig/CMakeFiles/sledzig_core.dir/channels.cc.o" "gcc" "src/sledzig/CMakeFiles/sledzig_core.dir/channels.cc.o.d"
  "/root/repo/src/sledzig/encoder.cc" "src/sledzig/CMakeFiles/sledzig_core.dir/encoder.cc.o" "gcc" "src/sledzig/CMakeFiles/sledzig_core.dir/encoder.cc.o.d"
  "/root/repo/src/sledzig/power_analysis.cc" "src/sledzig/CMakeFiles/sledzig_core.dir/power_analysis.cc.o" "gcc" "src/sledzig/CMakeFiles/sledzig_core.dir/power_analysis.cc.o.d"
  "/root/repo/src/sledzig/significant_bits.cc" "src/sledzig/CMakeFiles/sledzig_core.dir/significant_bits.cc.o" "gcc" "src/sledzig/CMakeFiles/sledzig_core.dir/significant_bits.cc.o.d"
  "/root/repo/src/sledzig/stream.cc" "src/sledzig/CMakeFiles/sledzig_core.dir/stream.cc.o" "gcc" "src/sledzig/CMakeFiles/sledzig_core.dir/stream.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sledzig_common.dir/DependInfo.cmake"
  "/root/repo/build/src/wifi/CMakeFiles/sledzig_wifi.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
