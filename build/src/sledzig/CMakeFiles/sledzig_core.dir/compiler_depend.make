# Empty compiler generated dependencies file for sledzig_core.
# This may be replaced when dependencies are built.
