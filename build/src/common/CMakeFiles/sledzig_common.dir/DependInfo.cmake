
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/bits.cc" "src/common/CMakeFiles/sledzig_common.dir/bits.cc.o" "gcc" "src/common/CMakeFiles/sledzig_common.dir/bits.cc.o.d"
  "/root/repo/src/common/dsp.cc" "src/common/CMakeFiles/sledzig_common.dir/dsp.cc.o" "gcc" "src/common/CMakeFiles/sledzig_common.dir/dsp.cc.o.d"
  "/root/repo/src/common/fft.cc" "src/common/CMakeFiles/sledzig_common.dir/fft.cc.o" "gcc" "src/common/CMakeFiles/sledzig_common.dir/fft.cc.o.d"
  "/root/repo/src/common/stats.cc" "src/common/CMakeFiles/sledzig_common.dir/stats.cc.o" "gcc" "src/common/CMakeFiles/sledzig_common.dir/stats.cc.o.d"
  "/root/repo/src/common/units.cc" "src/common/CMakeFiles/sledzig_common.dir/units.cc.o" "gcc" "src/common/CMakeFiles/sledzig_common.dir/units.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
