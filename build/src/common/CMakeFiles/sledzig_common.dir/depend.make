# Empty dependencies file for sledzig_common.
# This may be replaced when dependencies are built.
