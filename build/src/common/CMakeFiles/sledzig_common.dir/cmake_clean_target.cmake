file(REMOVE_RECURSE
  "libsledzig_common.a"
)
