file(REMOVE_RECURSE
  "CMakeFiles/sledzig_common.dir/bits.cc.o"
  "CMakeFiles/sledzig_common.dir/bits.cc.o.d"
  "CMakeFiles/sledzig_common.dir/dsp.cc.o"
  "CMakeFiles/sledzig_common.dir/dsp.cc.o.d"
  "CMakeFiles/sledzig_common.dir/fft.cc.o"
  "CMakeFiles/sledzig_common.dir/fft.cc.o.d"
  "CMakeFiles/sledzig_common.dir/stats.cc.o"
  "CMakeFiles/sledzig_common.dir/stats.cc.o.d"
  "CMakeFiles/sledzig_common.dir/units.cc.o"
  "CMakeFiles/sledzig_common.dir/units.cc.o.d"
  "libsledzig_common.a"
  "libsledzig_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sledzig_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
