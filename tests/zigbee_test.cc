// Unit and loopback tests for the 802.15.4 ZigBee PHY.
#include <gtest/gtest.h>

#include "common/dsp.h"
#include "common/rng.h"
#include "common/units.h"
#include "zigbee/cc2420.h"
#include "zigbee/chips.h"
#include "zigbee/frame.h"
#include "zigbee/oqpsk.h"
#include "zigbee/receiver.h"
#include "zigbee/transmitter.h"

namespace sledzig::zigbee {
namespace {

using common::Bits;
using common::Bytes;

// ------------------------------------------------------------------- chips

TEST(Chips, Symbol0MatchesStandard) {
  const char* expected = "11011001110000110101001000101110";
  const auto& seq = chip_table()[0];
  for (std::size_t i = 0; i < kChipsPerSymbol; ++i) {
    EXPECT_EQ(seq[i], expected[i] - '0') << i;
  }
}

TEST(Chips, Symbol1IsRightRotation) {
  const char* expected = "11101101100111000011010100100010";
  const auto& seq = chip_table()[1];
  for (std::size_t i = 0; i < kChipsPerSymbol; ++i) {
    EXPECT_EQ(seq[i], expected[i] - '0') << i;
  }
}

TEST(Chips, Symbol8InvertsOddChips) {
  const char* expected = "10001100100101100000011101111011";
  const auto& seq = chip_table()[8];
  for (std::size_t i = 0; i < kChipsPerSymbol; ++i) {
    EXPECT_EQ(seq[i], expected[i] - '0') << i;
  }
}

TEST(Chips, SequencesHaveLargeMutualDistance) {
  // DSSS processing gain rests on the near-orthogonality of the sequences.
  const auto& table = chip_table();
  for (std::size_t a = 0; a < kNumSymbols; ++a) {
    for (std::size_t b = a + 1; b < kNumSymbols; ++b) {
      std::size_t dist = 0;
      for (std::size_t c = 0; c < kChipsPerSymbol; ++c) {
        dist += (table[a][c] ^ table[b][c]) & 1u;
      }
      EXPECT_GE(dist, 12u) << "symbols " << a << "," << b;
    }
  }
}

TEST(Chips, SpreadDespreadRoundTrip) {
  common::Rng rng(31);
  const auto bits = rng.bits(4 * 50);
  const auto chips = spread(bits);
  EXPECT_EQ(chips.size(), 50u * kChipsPerSymbol);
  const auto result = despread(chips);
  EXPECT_EQ(result.bits, bits);
  EXPECT_EQ(result.total_chip_errors, 0u);
}

TEST(Chips, DespreadToleratesChipErrors) {
  common::Rng rng(32);
  const auto bits = rng.bits(4 * 20);
  auto chips = spread(bits);
  // Flip 5 chips per symbol: still well below half the minimum distance.
  for (std::size_t s = 0; s < 20; ++s) {
    for (std::size_t e = 0; e < 5; ++e) {
      chips[s * kChipsPerSymbol + e * 6] ^= 1;
    }
  }
  const auto result = despread(chips);
  EXPECT_EQ(result.bits, bits);
  EXPECT_EQ(result.total_chip_errors, 100u);
}

// ------------------------------------------------------------------- OQPSK

TEST(Oqpsk, ConstantEnvelopeInSteadyState) {
  common::Rng rng(33);
  const auto chips = rng.bits(64);
  const auto wave = oqpsk_modulate(chips);
  // After the first chip and before the tail the MSK envelope is constant 1.
  for (std::size_t i = 2 * kSamplesPerChip; i + 2 * kSamplesPerChip < wave.size();
       ++i) {
    EXPECT_NEAR(std::abs(wave[i]), 1.0, 1e-9) << i;
  }
}

TEST(Oqpsk, ChipDecisionsRoundTrip) {
  common::Rng rng(34);
  const auto chips = rng.bits(256);
  const auto wave = oqpsk_modulate(chips);
  const auto decided = oqpsk_demodulate_chips(wave, chips.size());
  EXPECT_EQ(decided, chips);
}

TEST(Oqpsk, CorrelationSelectsMatchingSequence) {
  common::Rng rng(35);
  const auto chips_a = spread(Bits{1, 0, 1, 0});
  const auto chips_b = spread(Bits{0, 1, 1, 1});
  const auto wave = oqpsk_modulate(chips_a);
  EXPECT_GT(oqpsk_correlate(wave, chips_a), 0.95);
  EXPECT_LT(oqpsk_correlate(wave, chips_b), 0.6);
}

TEST(Oqpsk, SpectrumConcentratedWithin2MHz) {
  common::Rng rng(36);
  const auto chips = rng.bits(2048);
  const auto wave = oqpsk_modulate(chips);
  const auto psd = common::welch_psd(wave, kOqpskSampleRateHz, 256);
  const double in_band = psd.band_power(-1e6, 1e6);
  const double total = psd.band_power(-10e6, 10e6);
  EXPECT_GT(in_band / total, 0.85);
}

// ------------------------------------------------------------------- frame

TEST(Frame, Crc16KnownVector) {
  // CRC-16/CCITT (Kermit-style, as used for the 802.15.4 FCS) of "123456789"
  // is 0x2189.
  const Bytes data = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(crc16_ccitt(data), 0x2189);
}

TEST(Frame, BuildParseRoundTrip) {
  common::Rng rng(37);
  for (std::size_t len : {0u, 1u, 20u, 125u - 2u}) {
    const auto payload = rng.bytes(len);
    const auto ppdu = build_ppdu(payload);
    const auto parsed = parse_ppdu(ppdu);
    ASSERT_TRUE(parsed.has_value()) << len;
    EXPECT_EQ(*parsed, payload);
  }
}

TEST(Frame, CorruptionDetected) {
  common::Rng rng(38);
  const auto payload = rng.bytes(30);
  auto ppdu = build_ppdu(payload);
  ppdu[10] ^= 0x40;
  EXPECT_FALSE(parse_ppdu(ppdu).has_value());
}

TEST(Frame, RejectsOversizedPayload) {
  EXPECT_THROW(build_ppdu(Bytes(126, 0)), std::invalid_argument);
}

TEST(Frame, DurationMatchesPaperNumbers) {
  // The preamble alone is 128 us (8 symbols), as used in section IV-F.
  EXPECT_NEAR(kPreambleDurationUs, 128.0, 1e-12);
  // A 100-octet payload: (4+2+100+2) octets * 32 us.
  EXPECT_NEAR(frame_duration_us(100), 108.0 * 32.0, 1e-9);
}

// ------------------------------------------------------------------ CC2420

TEST(Cc2420, PowerTableEndpoints) {
  EXPECT_NEAR(tx_power_dbm(31).value(), 0.0, 1e-12);
  EXPECT_NEAR(tx_power_dbm(27).value(), -1.0, 1e-12);
  EXPECT_NEAR(tx_power_dbm(15).value(), -7.0, 1e-12);
  EXPECT_NEAR(tx_power_dbm(3).value(), -25.0, 1e-12);
  EXPECT_LT(tx_power_dbm(0).value(), -25.0);
  EXPECT_THROW(tx_power_dbm(32), std::invalid_argument);
}

TEST(Cc2420, PowerMonotonicInGain) {
  for (unsigned g = 1; g <= 31; ++g) {
    EXPECT_GE(tx_power_dbm(g), tx_power_dbm(g - 1)) << g;
  }
}

TEST(Cc2420, ChannelFrequencies) {
  EXPECT_NEAR(channel_frequency_hz(11), 2405e6, 1);
  EXPECT_NEAR(channel_frequency_hz(23), 2465e6, 1);
  EXPECT_NEAR(channel_frequency_hz(26), 2480e6, 1);
  EXPECT_THROW(channel_frequency_hz(10), std::invalid_argument);
}

// ---------------------------------------------------------------- loopback

TEST(ZigbeeLoopback, CleanChannel) {
  common::Rng rng(39);
  const auto payload = rng.bytes(40);
  const auto tx = zigbee_transmit(payload);
  const auto rx = zigbee_receive(tx.samples);
  ASSERT_TRUE(rx.detected);
  ASSERT_TRUE(rx.crc_ok);
  EXPECT_EQ(rx.payload, payload);
  EXPECT_EQ(rx.chip_errors, 0u);
}

TEST(ZigbeeLoopback, NoisyChannelWithOffsetAndPhase) {
  common::Rng rng(40);
  const auto payload = rng.bytes(25);
  const auto tx = zigbee_transmit(payload);

  const std::size_t offset = 777;
  const double noise_power = common::db_to_linear(-12.0);  // 12 dB SNR
  const common::Cplx phase(std::cos(1.1), std::sin(1.1));
  common::CplxVec stream;
  for (std::size_t i = 0; i < offset; ++i) {
    stream.push_back(rng.complex_gaussian(noise_power));
  }
  for (const auto& s : tx.samples) {
    stream.push_back(s * phase + rng.complex_gaussian(noise_power));
  }
  for (std::size_t i = 0; i < 300; ++i) {
    stream.push_back(rng.complex_gaussian(noise_power));
  }

  const auto rx = zigbee_receive(stream);
  ASSERT_TRUE(rx.detected);
  EXPECT_NEAR(static_cast<double>(rx.frame_start), static_cast<double>(offset),
              2.0);
  ASSERT_TRUE(rx.crc_ok);
  EXPECT_EQ(rx.payload, payload);
}

TEST(ZigbeeLoopback, DsssSurvivesLowSnr) {
  // The DSSS processing gain (32 chips / 4 bits ~ 9 dB) lets frames decode
  // at SNRs around 0 dB — the property SledZig leans on in section IV-E.
  common::Rng rng(41);
  const auto payload = rng.bytes(20);
  const auto tx = zigbee_transmit(payload);
  const double noise_power = common::db_to_linear(-1.0);
  common::CplxVec noisy(tx.samples);
  for (auto& s : noisy) s += rng.complex_gaussian(noise_power);
  const auto rx = zigbee_receive(noisy);
  ASSERT_TRUE(rx.detected);
  EXPECT_TRUE(rx.crc_ok);
  EXPECT_EQ(rx.payload, payload);
}

TEST(ZigbeeLoopback, NoiseOnlyNotDetected) {
  common::Rng rng(42);
  common::CplxVec noise(8000);
  for (auto& s : noise) s = rng.complex_gaussian(1.0);
  const auto rx = zigbee_receive(noise);
  EXPECT_FALSE(rx.detected);
}

class ZigbeePayloadSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ZigbeePayloadSizes, RoundTrip) {
  common::Rng rng(43 + GetParam());
  const auto payload = rng.bytes(GetParam());
  const auto tx = zigbee_transmit(payload);
  const auto rx = zigbee_receive(tx.samples);
  ASSERT_TRUE(rx.crc_ok);
  EXPECT_EQ(rx.payload, payload);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ZigbeePayloadSizes,
                         ::testing::Values(1, 5, 16, 50, 80, 110, 125));

}  // namespace
}  // namespace sledzig::zigbee
