// Tests for the variable-bandwidth window generalisation (BLE / classic
// Bluetooth guarding, the BlueFi-adjacent use case from the paper's related
// work).
#include <gtest/gtest.h>

#include "common/rng.h"
#include "sledzig/encoder.h"
#include "wifi/qam.h"
#include "wifi/transmitter.h"

namespace sledzig::core {
namespace {

using wifi::ChannelWidth;

TEST(BleWindow, AdvertisingChannelOffsets) {
  // WiFi channel 1 (2412 MHz): BLE 37 at 2402 -> -10 MHz (in band).
  EXPECT_NEAR(ble_advertising_offset_hz(37, 2412e6), -10e6, 1);
  EXPECT_NEAR(ble_advertising_offset_hz(38, 2426e6), 0.0, 1);
  EXPECT_NEAR(ble_advertising_offset_hz(39, 2472e6), 8e6, 1);
  EXPECT_THROW(ble_advertising_offset_hz(36, 2412e6), std::invalid_argument);
}

TEST(BleWindow, NarrowerBandwidthSelectsFewerSubcarriers) {
  const auto& plan = wifi::channel_plan(ChannelWidth::k20MHz);
  const auto ble2 = window_data_subcarriers(plan, -2e6, 2e6);
  const auto bt1 = window_data_subcarriers(plan, -2e6, 1e6);
  EXPECT_LT(bt1.size(), ble2.size());
  EXPECT_GE(bt1.size(), 4u);
  // Narrow window is a subset of the wide one.
  for (int s : bt1) {
    EXPECT_NE(std::find(ble2.begin(), ble2.end(), s), ble2.end());
  }
}

TEST(BleWindow, DefaultBandwidthMatchesZigbeeRule) {
  const auto& plan = wifi::channel_plan(ChannelWidth::k20MHz);
  EXPECT_EQ(window_data_subcarriers(plan, 8e6),
            window_data_subcarriers(plan, 8e6, 2e6));
}

TEST(BleWindow, RejectsNonPositiveBandwidth) {
  const auto& plan = wifi::channel_plan(ChannelWidth::k20MHz);
  EXPECT_THROW(window_data_subcarriers(plan, 0.0, 0.0), std::invalid_argument);
}

TEST(BleWindow, GuardBleAdvertisingEndToEnd) {
  // Protect BLE advertising channel 39 (2480 MHz) from WiFi channel 13
  // (2472 MHz): window at +8 MHz, like ZigBee channel 26 but configured via
  // the explicit-window API.
  common::Rng rng(901);
  SledzigConfig cfg;
  cfg.modulation = wifi::Modulation::kQam64;
  cfg.rate = wifi::CodingRate::kR23;
  cfg.window_offsets_hz = {ble_advertising_offset_hz(39, 2472e6)};

  const auto payload = rng.bytes(200);
  const auto enc = sledzig_encode(payload, cfg);
  EXPECT_EQ(enc.num_collisions, 0u);
  const auto dec = sledzig_decode(enc.transmit_psdu, cfg);
  ASSERT_TRUE(dec.has_value());
  EXPECT_EQ(*dec, payload);

  // And the window is genuinely forced on air.
  wifi::WifiTxConfig tx;
  tx.modulation = cfg.modulation;
  tx.rate = cfg.rate;
  const auto packet = wifi::wifi_transmit(enc.transmit_psdu, tx);
  const std::size_t dbps =
      wifi::data_bits_per_symbol(cfg.modulation, cfg.rate);
  const std::size_t full_symbols = (enc.transmit_psdu.size() * 8) / dbps;
  const std::size_t first = enc.num_unforced_head > 0 ? 1 : 0;
  for (std::size_t s = first; s < full_symbols; ++s) {
    for (int logical : cfg.forced_subcarrier_set()) {
      const int pos = cfg.plan().data_position(logical);
      EXPECT_TRUE(wifi::is_lowest_point(
          packet.data_points[s * cfg.plan().num_data() +
                             static_cast<std::size_t>(pos)],
          cfg.modulation));
    }
  }
}

TEST(BleWindow, NarrowBluetoothWindowCostsLess) {
  SledzigConfig wide;
  wide.modulation = wifi::Modulation::kQam64;
  wide.rate = wifi::CodingRate::kR23;
  wide.window_offsets_hz = {-2e6};
  wide.window_bandwidth_hz = 2e6;

  SledzigConfig narrow = wide;
  narrow.window_bandwidth_hz = 1e6;

  EXPECT_LT(throughput_loss(narrow), throughput_loss(wide));
}

}  // namespace
}  // namespace sledzig::core
