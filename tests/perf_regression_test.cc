// Regression suite for the hot-path optimisation work (`perf` ctest label):
//
//   1. The cached-plan FFT matches a naive O(n^2) DFT reference.
//   2. The flattened Viterbi decoders reproduce recorded pre-refactor
//      outputs bit-for-bit on noisy/erasure-laden inputs.
//   3. Parallel sweeps are thread-invariant: a 1-thread and an 8-thread
//      pool produce byte-identical results (the determinism contract of
//      src/common/parallel.h).
//   4. ThreadPool edge behaviour: exception propagation, nested calls,
//      empty batches, seed-stream independence.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstring>
#include <numbers>
#include <set>
#include <stdexcept>
#include <vector>

#include "coex/experiment.h"
#include "common/fft.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "wifi/convolutional.h"
#include "wifi/phy_params.h"

namespace sledzig {
namespace {

// ---------------------------------------------------------------------------
// FFT vs naive DFT reference

common::CplxVec naive_dft(const common::CplxVec& x, bool inverse) {
  const std::size_t n = x.size();
  const double sign = inverse ? 1.0 : -1.0;
  common::CplxVec out(n);
  for (std::size_t k = 0; k < n; ++k) {
    common::Cplx acc = 0.0;
    for (std::size_t t = 0; t < n; ++t) {
      const double angle = sign * 2.0 * std::numbers::pi *
                           static_cast<double>(k * t) / static_cast<double>(n);
      acc += x[t] * common::Cplx(std::cos(angle), std::sin(angle));
    }
    out[k] = acc;
  }
  return out;
}

TEST(FftPlanCache, MatchesNaiveDftAcrossSizes) {
  common::Rng rng(0xfeed);
  for (std::size_t n : {2u, 8u, 64u, 256u, 1024u}) {
    common::CplxVec x(n);
    for (auto& s : x) s = rng.complex_gaussian(1.0);

    const auto ref = naive_dft(x, /*inverse=*/false);
    auto got = x;
    common::fft_inplace(got, /*inverse=*/false);
    ASSERT_EQ(got.size(), ref.size());
    // Naive DFT accumulates rounding over n terms; tolerance scales gently.
    const double tol = 1e-9 * static_cast<double>(n);
    for (std::size_t k = 0; k < n; ++k) {
      EXPECT_NEAR(std::abs(got[k] - ref[k]), 0.0, tol) << "n=" << n
                                                       << " bin=" << k;
    }
  }
}

TEST(FftPlanCache, InverseRoundTripsAndMatchesNaive) {
  common::Rng rng(0xcafe);
  common::CplxVec x(128);
  for (auto& s : x) s = rng.complex_gaussian(2.0);

  const auto spec = common::fft(x);
  const auto back = common::ifft(spec);
  ASSERT_EQ(back.size(), x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(std::abs(back[i] - x[i]), 0.0, 1e-10);
  }

  const auto ref = naive_dft(x, /*inverse=*/true);
  auto got = x;
  common::fft_inplace(got, /*inverse=*/true);
  for (std::size_t k = 0; k < x.size(); ++k) {
    EXPECT_NEAR(std::abs(got[k] - ref[k]), 0.0, 1e-9);
  }
}

TEST(FftPlanCache, PlanLookupIsStableAndRejectsBadSizes) {
  const auto& a = common::FftPlan::get(64);
  const auto& b = common::FftPlan::get(64);
  EXPECT_EQ(&a, &b);  // one cached plan per size
  EXPECT_EQ(a.size(), 64u);
  EXPECT_THROW(common::FftPlan::get(48), std::invalid_argument);
  EXPECT_THROW(common::FftPlan::get(0), std::invalid_argument);
}

TEST(FftPlanCache, FftIntoMatchesCopyingFft) {
  common::Rng rng(0xf00d);
  common::CplxVec x(256);
  for (auto& s : x) s = rng.complex_gaussian(1.0);
  const auto ref = common::fft(x);
  common::CplxVec out;
  common::fft_into(x, out, /*inverse=*/false);
  ASSERT_EQ(out.size(), ref.size());
  EXPECT_EQ(0, std::memcmp(out.data(), ref.data(),
                           out.size() * sizeof(common::Cplx)));
}

// ---------------------------------------------------------------------------
// Flattened Viterbi vs recorded pre-refactor outputs
//
// The inputs reproduce deterministically from fixed seeds; the expected
// strings were captured from the decoder before the survivor-storage
// flattening and must match bit-for-bit (same metrics, same float
// association order, same tie-breaks).

common::Bits parse_bits(const char* s) {
  common::Bits out;
  for (; *s; ++s) {
    if (*s == '0' || *s == '1') out.push_back(*s == '1');
  }
  return out;
}

constexpr const char* kHardGolden =
    "0111001101010101100111010110100111001010111100010100001010101111"
    "0100100101000111111001011001011001101010010101100101110101101101"
    "1111001000000100100100110111001111110100011000110011000111110001"
    "001001011001101100111010110100110110010010000001000000";

constexpr const char* kSoftGolden =
    "0000111101011111101100100110110001010001011000000000111011101011"
    "1011100010000100100001100110101011010111000100000011011010010100"
    "1110001110010000111000110001010010001011001100011000111100001001"
    "101001110110110101011111000001011011010011100001000000";

common::Bits golden_info() {
  common::Rng rng(0x5eed);
  auto info = rng.bits(240);
  for (std::size_t i = 0; i < wifi::kTailBits; ++i) info.push_back(0);
  return info;
}

TEST(ViterbiFlattened, HardDecisionMatchesPreRefactorGolden) {
  const auto coded = wifi::convolutional_encode(golden_info());
  std::vector<std::int8_t> hard(coded.begin(), coded.end());
  for (std::size_t i = 0; i < hard.size(); i += 5) hard[i] ^= 1;
  for (std::size_t i = 0; i < hard.size(); i += 11) hard[i] = wifi::kErased;
  const auto decoded = wifi::viterbi_decode(hard, /*terminated=*/true);
  EXPECT_EQ(decoded, parse_bits(kHardGolden));
}

TEST(ViterbiFlattened, SoftDecisionMatchesPreRefactorGolden) {
  const auto coded = wifi::convolutional_encode(golden_info());
  common::Rng noise(0xbead);
  std::vector<double> llrs(coded.size());
  for (std::size_t i = 0; i < coded.size(); ++i) {
    llrs[i] = (coded[i] ? 2.0 : -2.0) + noise.gaussian(3.5);
  }
  const auto decoded = wifi::viterbi_decode_soft(llrs, /*terminated=*/true);
  EXPECT_EQ(decoded, parse_bits(kSoftGolden));
}

TEST(ViterbiFlattened, CleanCodewordDecodesToInput) {
  const auto info = golden_info();
  const auto coded = wifi::convolutional_encode(info);
  const std::vector<std::int8_t> clean(coded.begin(), coded.end());
  EXPECT_EQ(wifi::viterbi_decode(clean, /*terminated=*/true), info);
}

// ---------------------------------------------------------------------------
// Thread invariance of parallel sweeps

TEST(ParallelDeterminism, SweepIsByteIdenticalAcrossThreadCounts) {
  // A miniature Monte-Carlo sweep whose trials draw randomness through
  // derive_seed — exactly the pattern the benches use.
  const auto sweep = [](common::ThreadPool& pool) {
    return common::parallel_map(pool, 64, [](std::size_t i) {
      common::Rng rng(common::derive_seed(0xabcdef, i));
      double acc = 0.0;
      for (int k = 0; k < 100; ++k) acc += rng.gaussian(1.0);
      return acc;
    });
  };
  common::ThreadPool serial(1);
  common::ThreadPool wide(8);
  const auto a = sweep(serial);
  const auto b = sweep(wide);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(0, std::memcmp(a.data(), b.data(), a.size() * sizeof(double)));
}

TEST(ParallelDeterminism, ThroughputExperimentThreadInvariant) {
  // End-to-end: the real experiment driver through 1 vs 8 threads.
  const auto run = [](common::ThreadPool& pool) {
    return common::parallel_map(pool, 4, [](std::size_t i) {
      coex::Scenario s;
      s.d_wz_m = 4.0;
      s.d_z_m = 1.0;
      s.duration_s = 2.0;
      s.seed = 1 + i;
      return coex::run_throughput_experiment(s).throughput_kbps;
    });
  };
  common::ThreadPool serial(1);
  common::ThreadPool wide(8);
  const auto a = run(serial);
  const auto b = run(wide);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(0, std::memcmp(a.data(), b.data(), a.size() * sizeof(double)));
}

TEST(ParallelDeterminism, DerivedSeedsAreDistinctAndIndexPure) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 10000; ++i) {
    seen.insert(common::derive_seed(42, i));
  }
  EXPECT_EQ(seen.size(), 10000u);  // no collisions in a realistic sweep
  // Pure function of (base, index).
  EXPECT_EQ(common::derive_seed(7, 3), common::derive_seed(7, 3));
  EXPECT_NE(common::derive_seed(7, 3), common::derive_seed(8, 3));
}

// ---------------------------------------------------------------------------
// ThreadPool behaviour

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  common::ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.for_each_index(hits.size(),
                      [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, EmptyAndSingleBatchesWork) {
  common::ThreadPool pool(4);
  int calls = 0;
  pool.for_each_index(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.for_each_index(1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, PropagatesFirstException) {
  common::ThreadPool pool(4);
  EXPECT_THROW(pool.for_each_index(
                   100,
                   [](std::size_t i) {
                     if (i == 37) throw std::runtime_error("trial 37 failed");
                   }),
               std::runtime_error);
  // The pool stays usable after a failed batch.
  std::atomic<int> ok{0};
  pool.for_each_index(10, [&](std::size_t) { ok.fetch_add(1); });
  EXPECT_EQ(ok.load(), 10);
}

TEST(ThreadPool, NestedParallelCallsRunSeriallyWithoutDeadlock) {
  common::ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(8 * 8);
  pool.for_each_index(8, [&](std::size_t outer) {
    // Nested use of the same pool must degrade to an inline serial loop.
    pool.for_each_index(8, [&](std::size_t inner) {
      hits[outer * 8 + inner].fetch_add(1);
    });
  });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "slot " << i;
  }
}

TEST(ThreadPool, SizeCountsCallerAndSurvivesRepeatedBatches) {
  common::ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
  common::ThreadPool one(1);
  EXPECT_EQ(one.size(), 1u);
  common::ThreadPool zero(0);  // treated as 1
  EXPECT_EQ(zero.size(), 1u);
  std::atomic<int> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.for_each_index(20, [&](std::size_t) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 50 * 20);
}

TEST(ThreadPool, ParallelMapHandlesBoolWithoutBitRaces) {
  common::ThreadPool pool(8);
  const auto out =
      common::parallel_map(pool, 4096, [](std::size_t i) { return i % 3 == 0; });
  ASSERT_EQ(out.size(), 4096u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    ASSERT_EQ(out[i], i % 3 == 0) << "index " << i;
  }
}

}  // namespace
}  // namespace sledzig
