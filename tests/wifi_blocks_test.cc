// Bit-exact unit tests for the individual 802.11 PHY blocks.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/units.h"
#include "wifi/convolutional.h"
#include "wifi/interleaver.h"
#include "wifi/ofdm.h"
#include "wifi/phy_params.h"
#include "wifi/preamble.h"
#include "wifi/puncture.h"
#include "wifi/qam.h"
#include "wifi/scrambler.h"
#include "wifi/signal_field.h"
#include "wifi/subcarriers.h"

namespace sledzig::wifi {
namespace {

using common::Bits;

// ---------------------------------------------------------------- scrambler

TEST(Scrambler, StandardAllOnesSequencePrefix) {
  // 802.11-2016 17.3.5.5: with an all-ones initial state the scrambler emits
  // 0000 1110 1111 0010 ...
  const Bits expected = {0, 0, 0, 0, 1, 1, 1, 0, 1, 1, 1, 1, 0, 0, 1, 0};
  const auto seq = scrambler_sequence(0x7f, expected.size());
  EXPECT_EQ(seq, expected);
}

TEST(Scrambler, SequenceHasPeriod127) {
  const auto seq = scrambler_sequence(0x2b, 127 * 3);
  for (std::size_t i = 0; i < 127; ++i) {
    EXPECT_EQ(seq[i], seq[i + 127]);
    EXPECT_EQ(seq[i], seq[i + 254]);
  }
}

TEST(Scrambler, SelfInverse) {
  common::Rng rng(1);
  const auto data = rng.bits(1000);
  const auto scrambled = scramble(data, 0x5d);
  EXPECT_NE(scrambled, data);
  EXPECT_EQ(descramble(scrambled, 0x5d), data);
}

TEST(Scrambler, RejectsZeroSeed) {
  EXPECT_THROW(scrambler_sequence(0, 10), std::invalid_argument);
}

TEST(Scrambler, DifferentSeedsDiffer) {
  const auto a = scrambler_sequence(0x01, 64);
  const auto b = scrambler_sequence(0x7f, 64);
  EXPECT_NE(a, b);
}

// ------------------------------------------------------------ convolutional

TEST(Convolutional, AllZeroInput) {
  const Bits in(20, 0);
  const auto out = convolutional_encode(in);
  EXPECT_EQ(out, Bits(40, 0));
}

TEST(Convolutional, ImpulseResponseMatchesGenerators) {
  Bits in = {1, 0, 0, 0, 0, 0, 0};
  const auto out = convolutional_encode(in);
  // g0 = 1011011, g1 = 1111001 read over [x_n .. x_{n-6}]: the impulse
  // response interleaves the generator taps.
  const Bits expected = {1, 1, 0, 1, 1, 1, 1, 1, 0, 0, 1, 0, 1, 1};
  EXPECT_EQ(out, expected);
}

TEST(Convolutional, EncodeStepMatchesBulkEncode) {
  common::Rng rng(2);
  const auto in = rng.bits(500);
  const auto bulk = convolutional_encode(in);
  unsigned state = 0;
  for (std::size_t n = 0; n < in.size(); ++n) {
    const auto r = encode_step(state, in[n]);
    EXPECT_EQ(r.out_a, bulk[2 * n]);
    EXPECT_EQ(r.out_b, bulk[2 * n + 1]);
    state = r.next_state;
  }
}

TEST(Viterbi, DecodesCleanStream) {
  common::Rng rng(3);
  Bits in = rng.bits(300);
  for (std::size_t i = 0; i < kTailBits; ++i) in.push_back(0);
  const auto coded = convolutional_encode(in);
  std::vector<std::int8_t> soft(coded.begin(), coded.end());
  EXPECT_EQ(viterbi_decode(soft, /*terminated=*/true), in);
}

TEST(Viterbi, CorrectsScatteredErrors) {
  common::Rng rng(4);
  Bits in = rng.bits(400);
  for (std::size_t i = 0; i < kTailBits; ++i) in.push_back(0);
  auto coded = convolutional_encode(in);
  // Flip well-separated bits: within the free distance budget.
  for (std::size_t pos = 13; pos < coded.size(); pos += 101) {
    coded[pos] ^= 1;
  }
  std::vector<std::int8_t> soft(coded.begin(), coded.end());
  EXPECT_EQ(viterbi_decode(soft, /*terminated=*/true), in);
}

TEST(Viterbi, NonTerminatedDecode) {
  common::Rng rng(5);
  const auto in = rng.bits(256);
  const auto coded = convolutional_encode(in);
  std::vector<std::int8_t> soft(coded.begin(), coded.end());
  EXPECT_EQ(viterbi_decode(soft, /*terminated=*/false), in);
}

TEST(Viterbi, RejectsOddLength) {
  EXPECT_THROW(viterbi_decode({1, 0, 1}), std::invalid_argument);
}

// ----------------------------------------------------------------- puncture

TEST(Puncture, MaskShapes) {
  EXPECT_EQ(puncture_mask(CodingRate::kR12).size(), 2u);
  EXPECT_EQ(puncture_mask(CodingRate::kR23).size(), 4u);
  EXPECT_EQ(puncture_mask(CodingRate::kR34).size(), 6u);
  EXPECT_EQ(puncture_mask(CodingRate::kR56).size(), 10u);
}

TEST(Puncture, RateRatiosHold) {
  common::Rng rng(6);
  const auto coded = rng.bits(1200);
  EXPECT_EQ(puncture(coded, CodingRate::kR12).size(), 1200u);
  EXPECT_EQ(puncture(coded, CodingRate::kR23).size(), 900u);
  EXPECT_EQ(puncture(coded, CodingRate::kR34).size(), 800u);
  EXPECT_EQ(puncture(coded, CodingRate::kR56).size(), 720u);
}

class PunctureRoundTrip : public ::testing::TestWithParam<CodingRate> {};

TEST_P(PunctureRoundTrip, DepunctureRestoresKeptBits) {
  common::Rng rng(7);
  const auto coded = rng.bits(600);
  const auto punctured = puncture(coded, GetParam());
  const auto soft = depuncture(punctured, GetParam());
  ASSERT_EQ(soft.size(), coded.size());
  const auto mask = puncture_mask(GetParam());
  for (std::size_t i = 0; i < coded.size(); ++i) {
    if (mask[i % mask.size()]) {
      EXPECT_EQ(soft[i], static_cast<std::int8_t>(coded[i]));
    } else {
      EXPECT_EQ(soft[i], kErased);
    }
  }
}

TEST_P(PunctureRoundTrip, IndexMappingsAreInverse) {
  const auto rate = GetParam();
  const auto punctured = puncture(Bits(240, 0), rate);
  for (std::size_t p = 0; p < punctured.size(); ++p) {
    const std::size_t c = punctured_to_coded_index(rate, p);
    std::size_t back = 0;
    ASSERT_TRUE(coded_to_punctured_index(rate, c, back));
    EXPECT_EQ(back, p);
  }
}

TEST_P(PunctureRoundTrip, ViterbiDecodesPuncturedStream) {
  common::Rng rng(8);
  Bits in = rng.bits(360);
  for (std::size_t i = 0; i < kTailBits; ++i) in.push_back(0);
  const auto coded = convolutional_encode(in);
  const auto punctured = puncture(coded, GetParam());
  const auto soft = depuncture(punctured, GetParam());
  EXPECT_EQ(viterbi_decode(soft, /*terminated=*/true), in);
}

INSTANTIATE_TEST_SUITE_P(AllRates, PunctureRoundTrip,
                         ::testing::Values(CodingRate::kR12, CodingRate::kR23,
                                           CodingRate::kR34, CodingRate::kR56));

// --------------------------------------------------------------- interleaver

class InterleaverModulations : public ::testing::TestWithParam<Modulation> {};

TEST_P(InterleaverModulations, PermutationIsBijective) {
  const auto perm = interleaver_permutation(GetParam());
  std::vector<bool> seen(perm.size(), false);
  for (auto j : perm) {
    ASSERT_LT(j, perm.size());
    EXPECT_FALSE(seen[j]);
    seen[j] = true;
  }
}

TEST_P(InterleaverModulations, InverseUndoesPermutation) {
  common::Rng rng(9);
  const auto m = GetParam();
  const auto in = rng.bits(coded_bits_per_symbol(m) * 3);
  EXPECT_EQ(deinterleave(interleave(in, m), m), in);
}

TEST_P(InterleaverModulations, AdjacentBitsLandOnDistantSubcarriers) {
  // Core interleaver property: consecutive coded bits are spaced several
  // subcarriers apart, which is what scatters SledZig's significant bits.
  const auto m = GetParam();
  const auto inv = interleaver_inverse(m);  // coded bit k -> QAM bit index
  const std::size_t n_bpsc = bits_per_subcarrier(m);
  for (std::size_t k = 0; k + 1 < inv.size(); ++k) {
    const auto sc_a = inv[k] / n_bpsc;
    const auto sc_b = inv[k + 1] / n_bpsc;
    EXPECT_NE(sc_a, sc_b);
  }
}

INSTANTIATE_TEST_SUITE_P(AllModulations, InterleaverModulations,
                         ::testing::Values(Modulation::kBpsk, Modulation::kQpsk,
                                           Modulation::kQam16,
                                           Modulation::kQam64,
                                           Modulation::kQam256));

TEST(Interleaver, RejectsPartialSymbol) {
  EXPECT_THROW(interleave(Bits(100, 0), Modulation::kQam16),
               std::invalid_argument);
}

// ---------------------------------------------------------------------- QAM

TEST(Qam, KnownQam16Points) {
  // Interlaced layout (i0 q0 i1 q1); per axis Gray: 00 -> -3, 01 -> -1,
  // 11 -> +1, 10 -> +3.
  const double k = 1.0 / std::sqrt(10.0);
  EXPECT_EQ(qam_map_point(Bits{0, 0, 0, 0}, Modulation::kQam16),
            common::Cplx(-3 * k, -3 * k));
  EXPECT_EQ(qam_map_point(Bits{1, 1, 1, 1}, Modulation::kQam16),
            common::Cplx(k, k));  // a lowest-power point
  EXPECT_EQ(qam_map_point(Bits{1, 0, 0, 0}, Modulation::kQam16),
            common::Cplx(3 * k, -3 * k));
  EXPECT_EQ(qam_map_point(Bits{0, 1, 0, 1}, Modulation::kQam16),
            common::Cplx(-3 * k, k));
}

TEST(Qam, KnownQam64Axis) {
  // Gray per axis: 000 -> -7, 010 -> -1, 110 -> +1, 100 -> +7; I bits at
  // even group offsets.
  const double k = 1.0 / std::sqrt(42.0);
  EXPECT_NEAR(
      qam_map_point(Bits{0, 0, 0, 0, 0, 0}, Modulation::kQam64).real(), -7 * k,
      1e-12);
  EXPECT_NEAR(
      qam_map_point(Bits{0, 0, 1, 0, 0, 0}, Modulation::kQam64).real(), -1 * k,
      1e-12);
  EXPECT_NEAR(
      qam_map_point(Bits{1, 0, 1, 0, 0, 0}, Modulation::kQam64).real(), 1 * k,
      1e-12);
  EXPECT_NEAR(
      qam_map_point(Bits{1, 0, 0, 0, 0, 0}, Modulation::kQam64).real(), 7 * k,
      1e-12);
}

class QamModulations : public ::testing::TestWithParam<Modulation> {};

TEST_P(QamModulations, DemapInvertsMapForEveryPoint) {
  const auto m = GetParam();
  const std::size_t n = bits_per_subcarrier(m);
  for (std::uint64_t v = 0; v < (1ull << n); ++v) {
    Bits bits;
    for (std::size_t i = 0; i < n; ++i) {
      bits.push_back(static_cast<common::Bit>((v >> i) & 1u));
    }
    const auto point = qam_map_point(bits, m);
    EXPECT_EQ(qam_demap_point(point, m), bits) << "value " << v;
  }
}

TEST_P(QamModulations, UnitAveragePower) {
  const auto m = GetParam();
  const std::size_t n = bits_per_subcarrier(m);
  double acc = 0.0;
  for (std::uint64_t v = 0; v < (1ull << n); ++v) {
    Bits bits;
    for (std::size_t i = 0; i < n; ++i) {
      bits.push_back(static_cast<common::Bit>((v >> i) & 1u));
    }
    acc += std::norm(qam_map_point(bits, m));
  }
  EXPECT_NEAR(acc / static_cast<double>(1ull << n), 1.0, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(AllModulations, QamModulations,
                         ::testing::Values(Modulation::kBpsk, Modulation::kQpsk,
                                           Modulation::kQam16,
                                           Modulation::kQam64,
                                           Modulation::kQam256));

class QamSignificantBits
    : public ::testing::TestWithParam<Modulation> {};

TEST_P(QamSignificantBits, SpecSelectsExactlyTheLowestPoints) {
  const auto m = GetParam();
  const auto specs = significant_bits(m);
  const std::size_t n = bits_per_subcarrier(m);
  EXPECT_EQ(specs.size(), n - 2);  // 2, 4, 6 for QAM-16/64/256
  for (std::uint64_t v = 0; v < (1ull << n); ++v) {
    Bits bits;
    for (std::size_t i = 0; i < n; ++i) {
      bits.push_back(static_cast<common::Bit>((v >> i) & 1u));
    }
    bool matches = true;
    for (const auto& s : specs) {
      if (bits[s.offset_in_group] != s.value) matches = false;
    }
    const auto point = qam_map_point(bits, m);
    EXPECT_EQ(is_lowest_point(point, m), matches)
        << "value " << v << " for " << to_string(m);
  }
}

TEST_P(QamSignificantBits, TheoreticalPowerGap) {
  // P_avg / P_low: 7.0 dB (QAM-16), 13.2 dB (QAM-64), 19.3 dB (QAM-256).
  const auto m = GetParam();
  const double gap_db = common::linear_to_db(average_point_power_raw(m) /
                                             lowest_point_power_raw());
  if (m == Modulation::kQam16) {
    EXPECT_NEAR(gap_db, 7.0, 0.05);
  }
  if (m == Modulation::kQam64) {
    EXPECT_NEAR(gap_db, 13.2, 0.05);
  }
  if (m == Modulation::kQam256) {
    EXPECT_NEAR(gap_db, 19.3, 0.05);
  }
}

INSTANTIATE_TEST_SUITE_P(QamOnly, QamSignificantBits,
                         ::testing::Values(Modulation::kQam16,
                                           Modulation::kQam64,
                                           Modulation::kQam256));

// ----------------------------------------------------------- subcarrier map

TEST(Subcarriers, CountsAndDisjointness) {
  const auto& data = data_subcarrier_indices();
  const auto& pilots = pilot_subcarrier_indices();
  EXPECT_EQ(data.size(), 48u);
  for (int p : pilots) {
    EXPECT_EQ(data_subcarrier_position(p), -1);
  }
  EXPECT_EQ(data_subcarrier_position(0), -1);   // DC
  EXPECT_EQ(data_subcarrier_position(27), -1);  // guard band
  EXPECT_EQ(data_subcarrier_position(-26), 0);
  EXPECT_EQ(data_subcarrier_position(26), 47);
}

TEST(Subcarriers, PaperTableIiGeometry) {
  // The positions used in Table II: CH2 overlaps logical -10..-3; its data
  // subcarriers occupy positions 15..21 of the 48-entry data order.
  EXPECT_EQ(data_subcarrier_position(-10), 15);
  EXPECT_EQ(data_subcarrier_position(-9), 16);
  EXPECT_EQ(data_subcarrier_position(-8), 17);
  EXPECT_EQ(data_subcarrier_position(-7), -1);  // pilot
  EXPECT_EQ(data_subcarrier_position(-6), 18);
  EXPECT_EQ(data_subcarrier_position(-3), 21);
}

TEST(Subcarriers, PilotPolarityMatchesStandardPrefix) {
  // p_0.. = 1 1 1 1 -1 -1 -1 1 ... (17.3.5.10)
  const double expected[] = {1, 1, 1, 1, -1, -1, -1, 1};
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(pilot_polarity(i), expected[i]) << i;
  }
  EXPECT_EQ(pilot_polarity(0), pilot_polarity(127));
}

// --------------------------------------------------------------------- OFDM

TEST(Ofdm, SymbolRoundTripFlatChannel) {
  common::Rng rng(11);
  common::CplxVec points(kNumDataSubcarriers);
  for (auto& p : points) p = rng.complex_gaussian(1.0);
  const auto symbol = modulate_ofdm_symbol(points, 3);
  const auto channel = flat_channel();
  const auto recovered = demodulate_ofdm_symbol(symbol, 3, channel);
  ASSERT_EQ(recovered.size(), points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_NEAR(std::abs(recovered[i] - points[i]), 0.0, 1e-9);
  }
}

TEST(Ofdm, UnitMeanPowerForUnitConstellation) {
  common::Rng rng(12);
  const auto bits = rng.bits(kNumDataSubcarriers * 4);
  const auto points = qam_map(bits, Modulation::kQam16);
  const auto symbol = modulate_ofdm_symbol(points, 1);
  // 52 occupied bins of ~unit power with the 64/sqrt(52) time scale give a
  // unit mean-power symbol (within constellation quantisation).
  EXPECT_NEAR(common::mean_power(symbol), 1.0, 0.35);
}

TEST(Ofdm, CyclicPrefixIsCopyOfTail) {
  common::Rng rng(13);
  common::CplxVec points(kNumDataSubcarriers);
  for (auto& p : points) p = rng.complex_gaussian(1.0);
  const auto symbol = modulate_ofdm_symbol(points, 0);
  ASSERT_EQ(symbol.size(), kSymbolLen);
  for (std::size_t i = 0; i < kCyclicPrefixLen; ++i) {
    EXPECT_EQ(symbol[i], symbol[kNumSubcarriers + i]);
  }
}

// ----------------------------------------------------------------- preamble

TEST(Preamble, StfIsPeriodic16) {
  const auto& stf = short_training_field();
  ASSERT_EQ(stf.size(), kStfLen);
  for (std::size_t i = 16; i < stf.size(); ++i) {
    EXPECT_NEAR(std::abs(stf[i] - stf[i - 16]), 0.0, 1e-12);
  }
}

TEST(Preamble, LtfHasTwoIdenticalSymbols) {
  const auto& ltf = long_training_field();
  ASSERT_EQ(ltf.size(), kLtfLen);
  for (std::size_t i = 0; i < 64; ++i) {
    EXPECT_NEAR(std::abs(ltf[32 + i] - ltf[96 + i]), 0.0, 1e-12);
  }
}

TEST(Preamble, PowerComparableToDataSymbols) {
  // The standard's STS/LTS scaling keeps preamble power equal to payload
  // power (52 unit bins).
  EXPECT_NEAR(common::mean_power(long_training_symbol()), 1.0, 1e-6);
  EXPECT_NEAR(common::mean_power(short_training_field()), 1.0, 1e-6);
}

// ------------------------------------------------------------- SIGNAL field

TEST(SignalField, BitsRoundTrip) {
  SignalField f;
  f.modulation = Modulation::kQam64;
  f.rate = CodingRate::kR56;
  f.psdu_octets = 1234;
  const auto bits = encode_signal_bits(f);
  ASSERT_EQ(bits.size(), 24u);
  const auto decoded = decode_signal_bits(bits);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->modulation, Modulation::kQam64);
  EXPECT_EQ(decoded->rate, CodingRate::kR56);
  EXPECT_EQ(decoded->psdu_octets, 1234u);
}

TEST(SignalField, ParityFailureDetected) {
  SignalField f;
  f.modulation = Modulation::kQam16;
  f.rate = CodingRate::kR12;
  f.psdu_octets = 100;
  auto bits = encode_signal_bits(f);
  bits[6] ^= 1;
  EXPECT_FALSE(decode_signal_bits(bits).has_value());
}

TEST(SignalField, SymbolRoundTrip) {
  SignalField f;
  f.modulation = Modulation::kQam256;
  f.rate = CodingRate::kR34;
  f.psdu_octets = 771;
  const auto symbol = modulate_signal_symbol(f);
  const auto channel = flat_channel();
  const auto decoded = demodulate_signal_symbol(symbol, channel);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->modulation, f.modulation);
  EXPECT_EQ(decoded->rate, f.rate);
  EXPECT_EQ(decoded->psdu_octets, f.psdu_octets);
}

TEST(SignalField, AllPaperModesHaveRateCodes) {
  for (const auto& mode : paper_phy_modes()) {
    const auto code = rate_code(mode.modulation, mode.rate);
    const auto back = mode_from_rate_code(code);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->modulation, mode.modulation);
    EXPECT_EQ(back->rate, mode.rate);
  }
}

// --------------------------------------------------------------- PHY params

TEST(PhyParams, BitsPerSymbolTableIii) {
  // "No. of bits per OFDM symbol" column of Table III.
  EXPECT_EQ(data_bits_per_symbol(Modulation::kQam16, CodingRate::kR12), 96u);
  EXPECT_EQ(data_bits_per_symbol(Modulation::kQam16, CodingRate::kR34), 144u);
  EXPECT_EQ(data_bits_per_symbol(Modulation::kQam64, CodingRate::kR23), 192u);
  EXPECT_EQ(data_bits_per_symbol(Modulation::kQam64, CodingRate::kR34), 216u);
  EXPECT_EQ(data_bits_per_symbol(Modulation::kQam64, CodingRate::kR56), 240u);
  EXPECT_EQ(data_bits_per_symbol(Modulation::kQam256, CodingRate::kR34), 288u);
  EXPECT_EQ(data_bits_per_symbol(Modulation::kQam256, CodingRate::kR56), 320u);
}

}  // namespace
}  // namespace sledzig::wifi
