// Tests for the calibrated channel model and the sample-domain medium.
#include <cmath>

#include <gtest/gtest.h>

#include "channel/medium.h"
#include "channel/pathloss.h"
#include "common/rng.h"
#include "common/units.h"
#include "wifi/transmitter.h"
#include "zigbee/cc2420.h"
#include "zigbee/transmitter.h"

namespace sledzig::channel {
namespace {

TEST(PathLoss, PaperAnchors) {
  // WiFi @ gain 15: -52 dBm total at 1 m.
  EXPECT_NEAR(wifi_link().received_power_dbm(wifi_tx_power_dbm(15), 1.0).value(),
              -52.0, 1e-9);
  // ZigBee @ gain 31 (0 dBm): -75 dBm at 0.5 m (Fig 13).
  EXPECT_NEAR(
      zigbee_link().received_power_dbm(zigbee::tx_power_dbm(31), 0.5).value(),
      -75.0, 0.05);
}

TEST(PathLoss, Fig13Consistency) {
  // At 1 m / gain 15 (-7 dBm) the ZigBee signal sits near the -91 dBm floor.
  const double p =
      zigbee_link().received_power_dbm(zigbee::tx_power_dbm(15), 1.0).value();
  EXPECT_LT(p, -86.0);
  EXPECT_GT(p, -92.0);
  // At 3 m even gain 25 is submerged.
  EXPECT_LT(
      zigbee_link().received_power_dbm(zigbee::tx_power_dbm(25), 3.0).value(),
      -89.0);
}

TEST(PathLoss, Fig14CcaCutoffNear8p5m) {
  // Normal WiFi in a 2 MHz CH1-CH3 window is ~8 dB below the total power.
  // CCA at -77 dBm should clear around d ~ 8.5 m.
  const auto link = wifi_link();
  const double inband_1m =
      link.received_power_dbm(wifi_tx_power_dbm(15), 1.0).value() - 8.0;
  const double d_cutoff =
      std::pow(10.0, (inband_1m - kZigbeeCcaThresholdDbm.value()) /
                         (10.0 * kPathLossExponent));
  EXPECT_GT(d_cutoff, 7.0);
  EXPECT_LT(d_cutoff, 10.5);
}

TEST(PathLoss, MonotonicInDistance) {
  const auto link = wifi_link();
  double prev = 1e9;
  for (double d = 0.5; d < 20.0; d += 0.5) {
    const double p = link.received_power_dbm(common::Dbm{10.0}, d).value();
    EXPECT_LT(p, prev);
    prev = p;
  }
}

TEST(PathLoss, RejectsNonPositiveDistance) {
  EXPECT_THROW(wifi_link().received_power_dbm(common::Dbm{}, 0.0),
               std::invalid_argument);
}

TEST(Medium, NoiseFloorCalibrated) {
  common::Rng rng(201);
  const auto samples = mix_at_receiver({}, 1 << 14, rng);
  // 2 MHz band anywhere should measure ~-91 dBm.
  EXPECT_NEAR(rssi_2mhz_dbm(samples, 0.0), kNoiseFloor2MhzDbm.value(), 1.0);
  EXPECT_NEAR(rssi_2mhz_dbm(samples, 8e6), kNoiseFloor2MhzDbm.value(), 1.0);
  // Full band: -81 dBm.
  EXPECT_NEAR(total_power_dbm(samples), kNoiseFloor20MhzDbm.value(), 0.5);
}

TEST(Medium, EmptyEmissionRssiIsSentinelNotNan) {
  // Empty/too-short receiver captures hit the "no power" floor: a finite or
  // -inf value that stays well-ordered, never NaN.
  const common::CplxVec empty;
  const double slice = rssi_2mhz_slice_dbm(empty);
  const double total = total_power_dbm(empty);
  const double band = rssi_2mhz_dbm(empty, 0.0);
  EXPECT_EQ(slice, common::kNoPowerDb);
  EXPECT_EQ(total, common::kNoPowerDb);
  EXPECT_FALSE(std::isnan(band));
  // Downstream linear-domain averaging must not be poisoned: the sentinel
  // contributes exactly zero power, so the average of {-40 dBm, no-signal}
  // is -43.01 dBm, not NaN.
  const double avg_mw =
      (common::dbm_to_mw(-40.0) + common::dbm_to_mw(slice)) / 2.0;
  EXPECT_NEAR(common::mw_to_dbm(avg_mw), -43.0103, 1e-3);
}

TEST(Medium, SinglePowerScaledEmission) {
  common::Rng rng(202);
  common::CplxVec wave(1 << 14);
  for (auto& s : wave) s = rng.complex_gaussian(1.0);
  Emission e{&wave, -40.0, 0.0, 0};
  const auto rx = mix_at_receiver(std::vector<Emission>{e}, wave.size(), rng);
  EXPECT_NEAR(total_power_dbm(rx), -40.0, 0.5);
}

TEST(Medium, FrequencyOffsetPlacesZigbeeInItsChannel) {
  common::Rng rng(203);
  const auto tx = zigbee::zigbee_transmit(rng.bytes(40));
  // ZigBee channel 26 sits +8 MHz from WiFi channel 13.
  Emission e{&tx.samples, -55.0, 8e6, 0};
  const auto rx = mix_at_receiver(std::vector<Emission>{e},
                                  tx.samples.size(), rng);
  const double in_band = rssi_2mhz_dbm(rx, 8e6);
  const double off_band = rssi_2mhz_dbm(rx, -7e6);
  EXPECT_NEAR(in_band, -55.0, 1.5);
  // The off-channel window sees noise plus faint MSK sidelobes (~ -35 dB
  // 15 MHz away from a -55 dBm signal).
  EXPECT_NEAR(off_band, kNoiseFloor2MhzDbm.value(), 2.5);
}

TEST(Medium, EmissionsSuperpose) {
  common::Rng rng(204);
  common::CplxVec a(1 << 13), b(1 << 13);
  for (auto& s : a) s = rng.complex_gaussian(1.0);
  for (auto& s : b) s = rng.complex_gaussian(1.0);
  std::vector<Emission> both = {{&a, -40.0, -7e6, 0}, {&b, -50.0, 8e6, 0}};
  const auto rx = mix_at_receiver(both, a.size(), rng);
  // Each emission is white over the 20 MHz band, so a 2 MHz window sees
  // one tenth of its power; emission a dominates everywhere.
  EXPECT_NEAR(rssi_2mhz_dbm(rx, -7e6), -50.0, 2.0);
  // Total power dominated by the stronger emission (plus ~0.4 dB from b).
  EXPECT_NEAR(total_power_dbm(rx), -39.6, 1.0);
}

TEST(Medium, DelayedEmissionStartsLater) {
  common::Rng rng(205);
  common::CplxVec wave(4096, common::Cplx(1.0, 0.0));
  Emission e{&wave, -30.0, 0.0, 8192};
  const auto rx = mix_at_receiver(std::vector<Emission>{e}, 16384, rng);
  const double early = total_power_dbm(
      std::span<const common::Cplx>(rx).subspan(0, 4096));
  const double late = total_power_dbm(
      std::span<const common::Cplx>(rx).subspan(8192, 4096));
  EXPECT_LT(early, -75.0);
  EXPECT_NEAR(late, -30.0, 0.5);
}

TEST(Medium, SliceRssiShowsBandwidthDilution) {
  // A 2 MHz-wide signal measured with the USRP-style slice estimator reads
  // ~10 dB below its total power (the Fig 17 effect).
  common::Rng rng(206);
  const auto tx = zigbee::zigbee_transmit(rng.bytes(30));
  Emission e{&tx.samples, -75.0, 0.0, 0};
  const auto rx = mix_at_receiver(std::vector<Emission>{e},
                                  tx.samples.size(), rng,
                                  /*noise_floor_dbm=*/-120.0);
  EXPECT_NEAR(rssi_2mhz_slice_dbm(rx), -85.0, 1.0);
  EXPECT_NEAR(rssi_2mhz_dbm(rx, 0.0), -75.0, 1.5);
}

TEST(Medium, WifiPacketFillsBand) {
  common::Rng rng(207);
  wifi::WifiTxConfig cfg;
  cfg.modulation = wifi::Modulation::kQam64;
  cfg.rate = wifi::CodingRate::kR23;
  const auto packet = wifi::wifi_transmit(rng.bytes(400), cfg);
  Emission e{&packet.samples, -52.0, 0.0, 0};
  const auto rx = mix_at_receiver(std::vector<Emission>{e},
                                  packet.samples.size(), rng);
  // Each interior 2 MHz window carries roughly 1/10 of the power.
  for (double f : {-7e6, -2e6, 3e6}) {
    EXPECT_NEAR(rssi_2mhz_dbm(rx, f), -52.0 - 8.0, 2.5) << f;
  }
  // CH4 (+8 MHz) spans the guard band: noticeably weaker.
  EXPECT_LT(rssi_2mhz_dbm(rx, 8e6), rssi_2mhz_dbm(rx, 3e6) - 1.0);
}

}  // namespace
}  // namespace sledzig::channel
