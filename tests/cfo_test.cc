// Tests for carrier-frequency-offset estimation and correction.
#include <gtest/gtest.h>

#include "common/dsp.h"
#include "common/rng.h"
#include "common/units.h"
#include "wifi/receiver.h"
#include "wifi/transmitter.h"

namespace sledzig::wifi {
namespace {

common::CplxVec with_cfo(const common::CplxVec& samples, double cfo_hz,
                         double fs) {
  return common::frequency_shift(samples, cfo_hz, fs);
}

class CfoSweep : public ::testing::TestWithParam<double> {};

TEST_P(CfoSweep, EstimateAccurateWithin400Hz) {
  common::Rng rng(1101);
  WifiTxConfig tx;
  tx.modulation = Modulation::kQam64;
  tx.rate = CodingRate::kR23;
  auto packet = wifi_transmit(rng.bytes(150), tx);
  const double cfo = GetParam();
  auto shifted = with_cfo(packet.samples, cfo, kSampleRateHz);
  const double noise = common::db_to_linear(-30.0);
  for (auto& s : shifted) s += rng.complex_gaussian(noise);

  const auto sync = synchronize_packet(shifted, 0.55, ChannelWidth::k20MHz);
  ASSERT_TRUE(sync.has_value()) << cfo;
  EXPECT_NEAR(sync->cfo_hz, cfo, 400.0) << cfo;
  EXPECT_NEAR(static_cast<double>(sync->packet_start), 0.0, 2.0);
}

TEST_P(CfoSweep, FullReceiveUnderCfo) {
  common::Rng rng(1102);
  const auto psdu = rng.bytes(120);
  WifiTxConfig tx;
  tx.modulation = Modulation::kQam64;
  tx.rate = CodingRate::kR23;
  auto packet = wifi_transmit(psdu, tx);
  auto shifted = with_cfo(packet.samples, GetParam(), kSampleRateHz);
  const double noise = common::db_to_linear(-28.0);
  for (auto& s : shifted) s += rng.complex_gaussian(noise);

  const auto rx = wifi_receive(shifted, WifiRxConfig{});
  ASSERT_TRUE(rx.signal_valid) << GetParam();
  EXPECT_EQ(rx.psdu, psdu) << GetParam();
}

// +-100 kHz is +-40 ppm at 2.4 GHz (the 802.11 oscillator tolerance is
// +-20 ppm per side).
INSTANTIATE_TEST_SUITE_P(Offsets, CfoSweep,
                         ::testing::Values(-100e3, -40e3, -5e3, 0.0, 5e3,
                                           40e3, 100e3));

TEST(Cfo, UncorrectedReceiverFailsUnderLargeCfo) {
  common::Rng rng(1103);
  const auto psdu = rng.bytes(120);
  WifiTxConfig tx;
  tx.modulation = Modulation::kQam64;
  tx.rate = CodingRate::kR23;
  const auto packet = wifi_transmit(psdu, tx);
  const auto shifted = with_cfo(packet.samples, 80e3, kSampleRateHz);
  WifiRxConfig no_cfo;
  no_cfo.correct_cfo = false;
  const auto rx = wifi_receive(shifted, no_cfo);
  EXPECT_NE(rx.psdu, psdu);
}

TEST(Cfo, FortyMhzPathUnderCfo) {
  common::Rng rng(1104);
  const auto psdu = rng.bytes(150);
  WifiTxConfig tx;
  tx.modulation = Modulation::kQam16;
  tx.rate = CodingRate::kR12;
  tx.width = ChannelWidth::k40MHz;
  auto packet = wifi_transmit(psdu, tx);
  auto shifted = with_cfo(packet.samples, 60e3, 40e6);
  const double noise = common::db_to_linear(-28.0);
  for (auto& s : shifted) s += rng.complex_gaussian(noise);
  WifiRxConfig rxcfg;
  rxcfg.width = ChannelWidth::k40MHz;
  const auto rx = wifi_receive(shifted, rxcfg);
  ASSERT_TRUE(rx.signal_valid);
  EXPECT_EQ(rx.psdu, psdu);
}

TEST(Cfo, OffsetPacketWithCfo) {
  common::Rng rng(1105);
  const auto psdu = rng.bytes(80);
  WifiTxConfig tx;
  const auto packet = wifi_transmit(psdu, tx);
  common::CplxVec stream(900);
  const double noise = common::db_to_linear(-35.0);
  for (auto& s : stream) s = rng.complex_gaussian(noise);
  const auto shifted = with_cfo(packet.samples, -55e3, kSampleRateHz);
  stream.insert(stream.end(), shifted.begin(), shifted.end());
  for (int i = 0; i < 300; ++i) stream.push_back(rng.complex_gaussian(noise));

  const auto rx = wifi_receive(stream, WifiRxConfig{});
  ASSERT_TRUE(rx.signal_valid);
  EXPECT_NEAR(static_cast<double>(rx.packet_start), 900.0, 3.0);
  EXPECT_EQ(rx.psdu, psdu);
}

}  // namespace
}  // namespace sledzig::wifi
