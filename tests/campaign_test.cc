// Campaign layer suite (DESIGN.md §17): the JSON substrate, the scenario
// round trip, campaign grids, the result store, and the runner's headline
// promise — one digest for any sharding, threading, or resume history.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "campaign/json.h"
#include "campaign/result_store.h"
#include "campaign/runner.h"
#include "campaign/scenario_json.h"
#include "campaign/spec.h"
#include "common/parallel.h"
#include "common/seed_domains.h"
#include "sim/engine.h"
#include "sim/scenario.h"

namespace sledzig {
namespace {

using campaign::CampaignSpec;
using campaign::JsonArray;
using campaign::JsonObject;
using campaign::JsonParseError;
using campaign::JsonValue;
using campaign::ResultRecord;
using campaign::ResultStoreWriter;
using campaign::RunnerOptions;
using campaign::RunnerReport;
using campaign::ScanResult;
using sim::ConfigError;
using sim::ScenarioConfig;

// ---- helpers -------------------------------------------------------------

JsonValue parse_ok(const std::string& text) {
  JsonValue v;
  JsonParseError err;
  EXPECT_TRUE(campaign::json_parse(text, &v, &err)) << err.to_string();
  return v;
}

JsonParseError parse_fail(const std::string& text) {
  JsonValue v;
  JsonParseError err;
  EXPECT_FALSE(campaign::json_parse(text, &v, &err)) << text;
  return err;
}

bool has_error_field(const std::vector<ConfigError>& errors,
                     const std::string& field) {
  return std::any_of(errors.begin(), errors.end(),
                     [&](const ConfigError& e) { return e.field == field; });
}

std::string temp_path(const std::string& name) {
  const ::testing::TestInfo* info =
      ::testing::UnitTest::GetInstance()->current_test_info();
  std::string path = ::testing::TempDir() + "sledzig_" +
                     info->test_suite_name() + "_" + info->name() + "_" + name;
  std::remove(path.c_str());
  return path;
}

/// A fault-heavy two-node config: timed crash window, a random-burst
/// jammer, Poisson crash/mute processes, and clock defects on both ends.
ScenarioConfig chaos_scenario() {
  ScenarioConfig cfg = sim::two_node_paper_scenario(
      core::SledzigConfig{}, /*sledzig_on=*/true, /*wifi_duty_ratio=*/0.5,
      /*d_wz_m=*/4.0, /*d_z_m=*/1.0, /*duration_s=*/0.3, /*seed=*/11);
  sim::TimedFault crash;
  crash.kind = sim::FaultKind::kCrash;
  crash.node = 1;
  crash.at_us = 40000.0;
  crash.duration_us = 60000.0;
  cfg.faults.timed.push_back(crash);
  sim::JammerConfig jammer;
  jammer.pos = {5.0, 5.0};
  jammer.usrp_gain = 12.0;
  jammer.mean_on_us = 3000.0;
  jammer.mean_off_us = 20000.0;
  cfg.faults.jammers.push_back(jammer);
  cfg.faults.random.crash_rate_per_s = 2.0;
  cfg.faults.random.mute_rate_per_s = 3.0;
  cfg.faults.clocks = {{12.5, 40.0}, {-3.0, -80.0}};
  return cfg;
}

/// to_json -> from_json must hand back a config whose run digests
/// bit-identically to the original's.
void expect_roundtrip_digest(const ScenarioConfig& cfg) {
  const JsonValue json = campaign::scenario_to_json(cfg);
  ScenarioConfig back;
  std::vector<ConfigError> errors;
  ASSERT_TRUE(campaign::scenario_from_json(json, &back, &errors))
      << sim::describe(errors);
  // Canonical serialization is a fixed point: re-serializing the parsed
  // config reproduces the bytes the hash and store records are built on.
  EXPECT_EQ(campaign::json_dump(json),
            campaign::json_dump(campaign::scenario_to_json(back)));
  const sim::SimResult a = sim::run_scenario(cfg);
  const sim::SimResult b = sim::run_scenario(back);
  EXPECT_EQ(a.trace_digest, b.trace_digest);
  EXPECT_EQ(a.events_processed, b.events_processed);
}

// ---- JSON value / parser / writer ----------------------------------------

TEST(CampaignJson, ParseDumpRoundTrip) {
  const std::string text =
      R"({"name":"x","on":true,"off":false,"none":null,)"
      R"("n":42,"f":0.25,"neg":-17,"arr":[1,[2,3],{"k":"v"}],)"
      R"("obj":{"zeta":1,"alpha":2}})";
  const JsonValue v = parse_ok(text);
  EXPECT_EQ(campaign::json_dump(v), text);  // insertion order preserved
  EXPECT_EQ(parse_ok(campaign::json_dump(v, 2)), v);  // pretty form too
}

TEST(CampaignJson, NumbersSurviveRoundTrip) {
  for (const double d : {0.0, 1.0, -1.0, 0.1, 1e-9, 6346.0, 2.4e9,
                         1234567890123456.0, 0.015625, 1.0 / 3.0}) {
    const std::string dumped = campaign::json_dump(JsonValue(d));
    const JsonValue back = parse_ok(dumped);
    ASSERT_TRUE(back.is_number()) << dumped;
    EXPECT_EQ(back.as_number(), d) << dumped;
  }
  EXPECT_EQ(campaign::json_dump(JsonValue(42)), "42");
  EXPECT_EQ(campaign::json_dump(JsonValue(-7)), "-7");
}

TEST(CampaignJson, ErrorsCarryPosition) {
  const JsonParseError dup = parse_fail("{\"a\":1,\n\"a\":2}");
  EXPECT_EQ(dup.line, 2u);
  EXPECT_NE(dup.message.find("duplicate"), std::string::npos) << dup.message;

  const JsonParseError trail = parse_fail("{} x");
  EXPECT_NE(trail.message.find("trailing"), std::string::npos)
      << trail.message;

  parse_fail("{\"a\":1");           // truncated
  parse_fail("[1,]");               // trailing comma
  parse_fail("");                   // empty input

  std::string deep;
  for (int i = 0; i < 80; ++i) deep += "[";
  const JsonParseError depth = parse_fail(deep);
  EXPECT_NE(depth.message.find("nesting"), std::string::npos)
      << depth.message;
}

TEST(CampaignJson, UnicodeEscapesDecodeToUtf8) {
  // BMP code points, case-insensitive hex digits.
  EXPECT_EQ(parse_ok("\"\\u0041\"").as_string(), "A");
  EXPECT_EQ(parse_ok("\"\\u00e9\"").as_string(), "\xC3\xA9");    // é
  EXPECT_EQ(parse_ok("\"\\u20AC\"").as_string(), "\xE2\x82\xAC");  // €
  EXPECT_EQ(parse_ok("\"\\u0000\"").as_string(), std::string(1, '\0'));
  // Surrogate pair -> one supplementary code point (U+1F600).
  EXPECT_EQ(parse_ok("\"\\uD83D\\uDE00\"").as_string(),
            "\xF0\x9F\x98\x80");
  // Escapes compose with ordinary text and other escapes.
  EXPECT_EQ(parse_ok("\"x\\u0041\\n\"").as_string(), "xA\n");

  // Lone surrogates are parse errors, with position pointing at the
  // escape's backslash.
  const JsonParseError lone_low = parse_fail("\"\\uDC00\"");
  EXPECT_NE(lone_low.message.find("surrogate"), std::string::npos)
      << lone_low.message;
  EXPECT_EQ(lone_low.line, 1u);
  EXPECT_EQ(lone_low.column, 2u);
  const JsonParseError lone_high = parse_fail("\"\\uD83Dx\"");
  EXPECT_NE(lone_high.message.find("surrogate"), std::string::npos)
      << lone_high.message;
  parse_fail("\"\\uD83D\\u0041\"");  // high surrogate + non-low escape
  parse_fail("\"\\u12\"");           // too few hex digits
  parse_fail("\"\\uZZZZ\"");         // non-hex digits

  // The writer stays canonical: decoded UTF-8 round-trips raw (no \u
  // re-escaping), so dumps and store digests are byte-stable.
  const JsonValue v = parse_ok("\"\\u00e9\\uD83D\\uDE00\"");
  const std::string dumped = campaign::json_dump(v);
  EXPECT_EQ(dumped, "\"\xC3\xA9\xF0\x9F\x98\x80\"");
  EXPECT_EQ(parse_ok(dumped), v);
}

TEST(CampaignJson, FindSetAndEquality) {
  JsonValue v = parse_ok(R"({"a":1})");
  ASSERT_NE(v.find("a"), nullptr);
  EXPECT_EQ(v.find("b"), nullptr);
  v.set("b", JsonValue("two"));
  v.set("a", JsonValue(3));
  EXPECT_EQ(campaign::json_dump(v), R"({"a":3,"b":"two"})");
  EXPECT_EQ(v, parse_ok(R"({"a":3,"b":"two"})"));
  EXPECT_NE(v, parse_ok(R"({"b":"two","a":3})"));  // order is identity
}

TEST(CampaignJson, FnvIsStableOverEqualValues) {
  const JsonValue a = parse_ok(R"({"x":[1,2,{"y":true}]})");
  const JsonValue b = parse_ok(R"({ "x" : [ 1 , 2 , { "y" : true } ] })");
  EXPECT_EQ(campaign::json_fnv1a(a), campaign::json_fnv1a(b));
  EXPECT_NE(campaign::json_fnv1a(a),
            campaign::json_fnv1a(parse_ok(R"({"x":[1,2,{"y":false}]})")));
}

TEST(CampaignJson, Hex64RoundTrip) {
  for (const std::uint64_t v :
       {std::uint64_t{0}, std::uint64_t{0xdeadbeefcafef00dull},
        std::uint64_t{0xffffffffffffffffull}}) {
    const std::string text = campaign::hex64(v);
    EXPECT_EQ(text.size(), 16u);
    std::uint64_t back = 0;
    ASSERT_TRUE(campaign::parse_hex64(text, &back));
    EXPECT_EQ(back, v);
  }
  std::uint64_t out = 0;
  EXPECT_FALSE(campaign::parse_hex64("xyz", &out));
  EXPECT_FALSE(campaign::parse_hex64("0123", &out));  // wrong width
}

// ---- scenario round trip -------------------------------------------------

TEST(CampaignScenario, TwoNodeRoundTripDigest) {
  expect_roundtrip_digest(sim::two_node_paper_scenario(
      core::SledzigConfig{}, true, 0.5, 4.0, 1.0, 0.3, 7));
}

TEST(CampaignScenario, TwoNodeSledzigOffRoundTripDigest) {
  expect_roundtrip_digest(sim::two_node_paper_scenario(
      core::SledzigConfig{}, false, 0.8, 2.0, 1.0, 0.3, 7));
}

TEST(CampaignScenario, CampusRoundTripDigest) {
  expect_roundtrip_digest(sim::campus_scenario(2, 2, 2, 20.0, 0.05, 5));
}

TEST(CampaignScenario, ChaosFaultPlanRoundTripDigest) {
  expect_roundtrip_digest(chaos_scenario());
}

TEST(CampaignScenario, NonDefaultKnobsRoundTrip) {
  ScenarioConfig cfg = sim::two_node_paper_scenario(
      core::SledzigConfig{}, true, 0.5, 4.0, 1.0, 0.2, 3);
  cfg.impairment.cfo = true;
  cfg.impairment.cfo_hz = 11000.0;
  cfg.queue_capacity = 16;
  cfg.wifi_capture_sinr_db = common::Db{8.0};
  cfg.fastpath.prune = false;
  cfg.invariants.enabled = true;
  cfg.zigbee[0].traffic.kind = sim::TrafficKind::kPoisson;
  cfg.zigbee[0].traffic.interval_us = 9000.0;
  expect_roundtrip_digest(cfg);
}

TEST(CampaignScenario, TopologyGeneratorMatchesFactory) {
  // The two_node generator form must reproduce the factory bit-exactly.
  const std::string text = R"({
    "duration_s": 0.3, "seed": 7, "sledzig_enabled": true,
    "topology": {"generator": "two_node", "wifi_duty_ratio": 0.5,
                 "d_wz_m": 4.0, "d_z_m": 1.0}
  })";
  ScenarioConfig cfg;
  std::vector<ConfigError> errors;
  ASSERT_TRUE(campaign::scenario_from_text(text, &cfg, &errors))
      << sim::describe(errors);
  const ScenarioConfig factory = sim::two_node_paper_scenario(
      core::SledzigConfig{}, true, 0.5, 4.0, 1.0, 0.3, 7);
  EXPECT_EQ(sim::run_scenario(cfg).trace_digest,
            sim::run_scenario(factory).trace_digest);
}

TEST(CampaignScenario, ControlAbGeneratorMatchesFactoryAndOverlays) {
  const std::string text = R"({
    "duration_s": 0.3, "seed": 9,
    "topology": {"generator": "control_ab", "controlled": true}
  })";
  ScenarioConfig cfg;
  std::vector<ConfigError> errors;
  ASSERT_TRUE(campaign::scenario_from_text(text, &cfg, &errors))
      << sim::describe(errors);
  EXPECT_EQ(cfg.wifi.size(), 2u);
  EXPECT_EQ(cfg.zigbee.size(), 4u);
  EXPECT_TRUE(cfg.control.enabled);
  EXPECT_TRUE(cfg.control.hop.enabled);
  const ScenarioConfig factory = sim::control_ab_scenario(true, 0.3, 9);
  EXPECT_EQ(sim::run_scenario(cfg).trace_digest,
            sim::run_scenario(factory).trace_digest);

  // The file's own control section overlays whatever the generator armed.
  const std::string tuned = R"({
    "duration_s": 0.3, "seed": 9,
    "topology": {"generator": "control_ab", "controlled": true},
    "control": {"epoch_us": 50000.0, "hop": {"min_prr": 0.8}}
  })";
  ScenarioConfig over;
  errors.clear();
  ASSERT_TRUE(campaign::scenario_from_text(tuned, &over, &errors))
      << sim::describe(errors);
  EXPECT_EQ(over.control.epoch_us, 50000.0);
  EXPECT_EQ(over.control.hop.min_prr, 0.8);
  EXPECT_TRUE(over.control.sledzig.enabled);  // generator setting survives
}

TEST(CampaignScenario, MalformedInputsReportFieldPaths) {
  ScenarioConfig cfg;
  std::vector<ConfigError> errors;

  // Unknown key: the typo's own path.
  errors.clear();
  EXPECT_FALSE(campaign::scenario_from_text(
      R"({"durration_s": 1.0})", &cfg, &errors));
  EXPECT_TRUE(has_error_field(errors, "durration_s")) << sim::describe(errors);

  // Wrong type.
  errors.clear();
  EXPECT_FALSE(campaign::scenario_from_text(
      R"({"duration_s": "long"})", &cfg, &errors));
  EXPECT_TRUE(has_error_field(errors, "duration_s")) << sim::describe(errors);

  // Bad enum value, nested in a node list.
  errors.clear();
  EXPECT_FALSE(campaign::scenario_from_text(
      R"({"zigbee": [{"traffic": {"kind": "bursty"}}]})", &cfg, &errors));
  EXPECT_TRUE(has_error_field(errors, "zigbee[0].traffic.kind"))
      << sim::describe(errors);

  // Generator form and explicit lists are mutually exclusive.
  errors.clear();
  EXPECT_FALSE(campaign::scenario_from_text(
      R"({"topology": {"generator": "two_node"}, "wifi": []})", &cfg,
      &errors));
  EXPECT_TRUE(has_error_field(errors, "topology")) << sim::describe(errors);

  // Syntax errors surface under the "<json>" pseudo-field.
  errors.clear();
  EXPECT_FALSE(campaign::scenario_from_text("{", &cfg, &errors));
  EXPECT_TRUE(has_error_field(errors, "<json>")) << sim::describe(errors);

  // A clean parse still runs validate(): semantic findings share the call.
  errors.clear();
  EXPECT_FALSE(campaign::scenario_from_text(
      R"({"topology": {"generator": "two_node"}, "duration_s": -1.0})", &cfg,
      &errors));
  EXPECT_TRUE(has_error_field(errors, "duration_s")) << sim::describe(errors);

  // Every problem is reported, not just the first.
  errors.clear();
  EXPECT_FALSE(campaign::scenario_from_text(
      R"({"durration_s": 1.0, "seeed": 2})", &cfg, &errors));
  EXPECT_GE(errors.size(), 2u) << sim::describe(errors);
}

// ---- campaign spec and grid ----------------------------------------------

const char kCampaignText[] = R"({
  "name": "grid_smoke",
  "seed": 7,
  "replications": 2,
  "scenario": {
    "duration_s": 0.2,
    "topology": {"generator": "two_node", "wifi_duty_ratio": 0.5,
                 "d_wz_m": 4.0, "d_z_m": 1.0}
  },
  "grid": [
    {"path": "sledzig_enabled", "values": [false, true]},
    {"path": "topology.wifi_duty_ratio", "values": [0.2, 0.5, 0.8]}
  ]
})";

TEST(CampaignSpec, GridExpansion) {
  CampaignSpec spec;
  std::vector<ConfigError> errors;
  ASSERT_TRUE(campaign::campaign_from_text(kCampaignText, &spec, &errors))
      << sim::describe(errors);
  EXPECT_EQ(spec.name, "grid_smoke");
  EXPECT_EQ(campaign::cell_count(spec), 6u);
  // Row-major, last axis fastest.
  EXPECT_EQ(campaign::cell_label(spec, 0),
            "sledzig_enabled=false;topology.wifi_duty_ratio=0.2");
  EXPECT_EQ(campaign::cell_label(spec, 4),
            "sledzig_enabled=true;topology.wifi_duty_ratio=0.5");

  // The cell scenario carries the axis values and the index-derived seed.
  ScenarioConfig cfg;
  ASSERT_TRUE(campaign::cell_scenario(spec, 4, 1, &cfg, &errors))
      << sim::describe(errors);
  EXPECT_TRUE(cfg.sledzig_enabled);
  EXPECT_DOUBLE_EQ(cfg.wifi[0].traffic.duty_ratio, 0.5);
  EXPECT_EQ(cfg.seed, common::derive_seed(
                          7, common::seed_domain::kCampaign, 4, 1));
}

TEST(CampaignSpec, HashCoversEverySpecField) {
  CampaignSpec spec;
  std::vector<ConfigError> errors;
  ASSERT_TRUE(campaign::campaign_from_text(kCampaignText, &spec, &errors));
  const std::uint64_t h = campaign::campaign_hash(spec);
  CampaignSpec other = spec;
  other.replications = 3;
  EXPECT_NE(campaign::campaign_hash(other), h);
  other = spec;
  other.seed = 8;
  EXPECT_NE(campaign::campaign_hash(other), h);
  other = spec;
  other.axes[0].values.pop_back();
  EXPECT_NE(campaign::campaign_hash(other), h);
  EXPECT_EQ(campaign::campaign_hash(spec), h);  // and it is stable
}

TEST(CampaignSpec, LoadErrorsReportFieldPaths) {
  CampaignSpec spec;
  std::vector<ConfigError> errors;

  // The scenario is mandatory.
  EXPECT_FALSE(campaign::campaign_from_text(R"({"name":"x"})", &spec,
                                            &errors));
  EXPECT_TRUE(has_error_field(errors, "campaign.scenario"))
      << sim::describe(errors);

  // A broken base scenario fails at load, with its own field path.
  errors.clear();
  EXPECT_FALSE(campaign::campaign_from_text(
      R"({"scenario": {"durration_s": 1.0}})", &spec, &errors));
  EXPECT_TRUE(has_error_field(errors, "durration_s")) << sim::describe(errors);

  // Grid axes validate path and values.
  errors.clear();
  EXPECT_FALSE(campaign::campaign_from_text(
      R"({"scenario": {"topology": {"generator": "two_node"}},
          "grid": [{"path": "", "values": [1]}, {"values": [2]}]})",
      &spec, &errors));
  EXPECT_TRUE(has_error_field(errors, "campaign.grid[0].path"))
      << sim::describe(errors);
  EXPECT_TRUE(has_error_field(errors, "campaign.grid[1].path"))
      << sim::describe(errors);

  errors.clear();
  EXPECT_FALSE(campaign::campaign_from_text(
      R"({"scenario": {"topology": {"generator": "two_node"}},
          "replications": 0})",
      &spec, &errors));
  EXPECT_TRUE(has_error_field(errors, "campaign.replications"))
      << sim::describe(errors);
}

TEST(CampaignSpec, JsonSetPath) {
  JsonValue root = parse_ok(R"({"arr": [{"k": 1}]})");
  std::string err;

  // Missing object keys are created in order.
  ASSERT_TRUE(campaign::json_set_path(&root, "a.b.c", JsonValue(5), &err))
      << err;
  EXPECT_EQ(campaign::json_dump(root),
            R"({"arr":[{"k":1}],"a":{"b":{"c":5}}})");

  // Existing array elements are reachable.
  ASSERT_TRUE(campaign::json_set_path(&root, "arr[0].k", JsonValue(2), &err))
      << err;
  EXPECT_EQ(root.find("arr")->as_array()[0].find("k")->as_number(), 2.0);

  // Out-of-range indices and type mismatches are errors, not silent grows.
  EXPECT_FALSE(campaign::json_set_path(&root, "arr[5].k", JsonValue(1), &err));
  EXPECT_NE(err.find("out of range"), std::string::npos) << err;
  EXPECT_FALSE(campaign::json_set_path(&root, "a.b.c.d", JsonValue(1), &err));
  EXPECT_FALSE(campaign::json_set_path(&root, "a..b", JsonValue(1), &err));
  EXPECT_FALSE(campaign::json_set_path(&root, "a[x]", JsonValue(1), &err));
}

// ---- result store --------------------------------------------------------

ResultRecord make_record(std::uint64_t campaign_id, std::uint64_t cell,
                         std::uint64_t rep, double metric) {
  ResultRecord r;
  r.campaign = campaign_id;
  r.cell = cell;
  r.rep = rep;
  r.metrics = JsonValue(JsonObject{{"m", JsonValue(metric)}});
  return r;
}

TEST(CampaignStore, RecordLineRoundTrip) {
  const ResultRecord r = make_record(0xabcdef0123456789ull, 3, 1, 0.5);
  const std::string line = campaign::record_to_line(r);
  ResultRecord back;
  ASSERT_TRUE(campaign::record_from_line(line, &back)) << line;
  EXPECT_EQ(back.campaign, r.campaign);
  EXPECT_EQ(back.cell, 3u);
  EXPECT_EQ(back.rep, 1u);
  EXPECT_EQ(back.metrics, r.metrics);

  ResultRecord dummy;
  EXPECT_FALSE(campaign::record_from_line("{\"cell\":1}", &dummy));
  EXPECT_FALSE(campaign::record_from_line("not json", &dummy));
  EXPECT_FALSE(campaign::record_from_line(line.substr(0, 20), &dummy));
}

TEST(CampaignStore, WriteScanAndFilterForeign) {
  const std::string path = temp_path("store.jsonl");
  const std::uint64_t ours = 0x1111111111111111ull;
  const std::uint64_t theirs = 0x2222222222222222ull;
  {
    ResultStoreWriter writer(path);
    std::string err;
    ASSERT_TRUE(writer.open(&err)) << err;
    ASSERT_TRUE(writer.append(make_record(ours, 0, 0, 1.0), &err)) << err;
    ASSERT_TRUE(writer.append(make_record(theirs, 0, 0, 9.0), &err)) << err;
    ASSERT_TRUE(writer.append(make_record(ours, 1, 0, 2.0), &err)) << err;
  }
  ScanResult scan;
  std::string err;
  ASSERT_TRUE(campaign::scan_store(path, ours, &scan, &err)) << err;
  EXPECT_EQ(scan.records.size(), 2u);
  EXPECT_EQ(scan.foreign, 1u);
  EXPECT_EQ(scan.dropped_partial, 0u);

  // A missing file is an empty (fresh) store, not an error.
  ScanResult fresh;
  ASSERT_TRUE(campaign::scan_store(temp_path("absent.jsonl"), ours, &fresh,
                                   &err))
      << err;
  EXPECT_TRUE(fresh.records.empty());
}

TEST(CampaignStore, TruncatedTailToleratedInteriorCorruptionNot) {
  const std::string path = temp_path("torn.jsonl");
  const std::uint64_t id = 0x3333333333333333ull;
  {
    std::ofstream out(path, std::ios::binary);
    out << campaign::record_to_line(make_record(id, 0, 0, 1.0)) << "\n";
    out << campaign::record_to_line(make_record(id, 1, 0, 2.0)) << "\n";
    // The SIGKILL signature: a final line cut mid-record.
    const std::string torn = campaign::record_to_line(make_record(id, 2, 0,
                                                                  3.0));
    out << torn.substr(0, torn.size() / 2);
  }
  ScanResult scan;
  std::string err;
  ASSERT_TRUE(campaign::scan_store(path, id, &scan, &err)) << err;
  EXPECT_EQ(scan.records.size(), 2u);
  EXPECT_EQ(scan.dropped_partial, 1u);

  // The same tear in the middle of the file means the store is corrupt.
  const std::string bad = temp_path("corrupt.jsonl");
  {
    std::ofstream out(bad, std::ios::binary);
    out << "garbage\n";
    out << campaign::record_to_line(make_record(id, 0, 0, 1.0)) << "\n";
  }
  EXPECT_FALSE(campaign::scan_store(bad, id, &scan, &err));
  EXPECT_FALSE(err.empty());
}

TEST(CampaignStore, DigestIgnoresOrderAndDuplicates) {
  const std::uint64_t id = 0x4444444444444444ull;
  std::vector<ResultRecord> a = {make_record(id, 0, 0, 1.0),
                                 make_record(id, 0, 1, 2.0),
                                 make_record(id, 1, 0, 3.0)};
  std::vector<ResultRecord> b = {a[2], a[0], a[1]};  // permuted
  std::vector<ResultRecord> c = a;
  c.push_back(make_record(id, 1, 0, 99.0));  // late duplicate: first wins
  const std::uint64_t digest = campaign::store_digest(id, a);
  EXPECT_EQ(campaign::store_digest(id, b), digest);
  EXPECT_EQ(campaign::store_digest(id, c), digest);
  // But different content or identity means a different digest.
  std::vector<ResultRecord> d = {a[0], a[1], make_record(id, 1, 0, 4.0)};
  EXPECT_NE(campaign::store_digest(id, d), digest);
  EXPECT_NE(campaign::store_digest(id ^ 1, a), digest);
}

// ---- runner: shard / thread / resume invariance --------------------------

CampaignSpec small_campaign() {
  CampaignSpec spec;
  std::vector<ConfigError> errors;
  EXPECT_TRUE(campaign::campaign_from_text(R"({
    "name": "invariance",
    "seed": 5,
    "replications": 2,
    "scenario": {
      "duration_s": 0.1,
      "topology": {"generator": "two_node", "wifi_duty_ratio": 0.5,
                   "d_wz_m": 4.0, "d_z_m": 1.0}
    },
    "grid": [{"path": "sledzig_enabled", "values": [false, true]}]
  })",
                                           &spec, &errors))
      << sim::describe(errors);
  return spec;
}

TEST(CampaignRunner, ShardAndThreadCountNeverChangeTheDigest) {
  const CampaignSpec spec = small_campaign();
  std::vector<ConfigError> errors;

  // One shard, many threads.
  RunnerOptions one;
  one.store_path = temp_path("one.jsonl");
  one.threads = 4;
  RunnerReport ref;
  ASSERT_TRUE(campaign::run_campaign(spec, one, &ref, &errors))
      << sim::describe(errors);
  EXPECT_TRUE(ref.complete);
  EXPECT_EQ(ref.items_total, 4u);
  EXPECT_EQ(ref.items_run, 4u);

  // Three shards, one thread each, run out of order.
  RunnerOptions sharded;
  sharded.store_path = temp_path("sharded.jsonl");
  sharded.threads = 1;
  sharded.shard_count = 3;
  RunnerReport last;
  for (const std::size_t shard : {2u, 0u, 1u}) {
    sharded.shard_index = shard;
    ASSERT_TRUE(campaign::run_campaign(spec, sharded, &last, &errors))
        << sim::describe(errors);
  }
  EXPECT_TRUE(last.complete);
  EXPECT_EQ(last.digest, ref.digest);
}

TEST(CampaignRunner, ResumeSkipsStoredItemsAndMatchesCleanRun) {
  const CampaignSpec spec = small_campaign();
  std::vector<ConfigError> errors;

  RunnerOptions clean;
  clean.store_path = temp_path("clean.jsonl");
  clean.threads = 2;
  RunnerReport ref;
  ASSERT_TRUE(campaign::run_campaign(spec, clean, &ref, &errors))
      << sim::describe(errors);

  // First pass: shard 0 of 2 only — half the campaign lands in the store.
  RunnerOptions partial;
  partial.store_path = temp_path("resumed.jsonl");
  partial.threads = 2;
  partial.shard_count = 2;
  RunnerReport first;
  ASSERT_TRUE(campaign::run_campaign(spec, partial, &first, &errors))
      << sim::describe(errors);
  EXPECT_FALSE(first.complete);
  EXPECT_EQ(first.items_run, 2u);

  // Simulate the tear a SIGKILL leaves, then resume over the whole range.
  {
    std::ofstream out(partial.store_path,
                      std::ios::binary | std::ios::app);
    out << "{\"campaign\":\"feed";  // truncated final line
  }
  RunnerOptions full = partial;
  full.shard_count = 1;
  full.shard_index = 0;
  RunnerReport second;
  ASSERT_TRUE(campaign::run_campaign(spec, full, &second, &errors))
      << sim::describe(errors);
  EXPECT_TRUE(second.complete);
  EXPECT_EQ(second.items_resumed, 2u);
  EXPECT_EQ(second.items_run, 2u);
  EXPECT_EQ(second.digest, ref.digest);
}

TEST(CampaignRunner, MetricsAreDeterministicJson) {
  const ScenarioConfig cfg = sim::two_node_paper_scenario(
      core::SledzigConfig{}, true, 0.5, 4.0, 1.0, 0.1, 3);
  const JsonValue a = campaign::result_to_json(sim::run_scenario(cfg));
  const JsonValue b = campaign::result_to_json(sim::run_scenario(cfg));
  EXPECT_EQ(campaign::json_dump(a), campaign::json_dump(b));
  ASSERT_NE(a.find("wifi"), nullptr);
  ASSERT_NE(a.find("zigbee"), nullptr);
  ASSERT_NE(a.find("trace_digest"), nullptr);
  std::uint64_t digest = 0;
  EXPECT_TRUE(campaign::parse_hex64(a.find("trace_digest")->as_string(),
                                    &digest));
  EXPECT_EQ(digest, sim::run_scenario(cfg).trace_digest);
}

TEST(CampaignRunner, RejectsBadShardArguments) {
  const CampaignSpec spec = small_campaign();
  std::vector<ConfigError> errors;
  RunnerOptions opts;
  opts.store_path = temp_path("bad.jsonl");
  opts.shard_count = 2;
  opts.shard_index = 2;  // out of range
  RunnerReport report;
  EXPECT_FALSE(campaign::run_campaign(spec, opts, &report, &errors));
  EXPECT_FALSE(errors.empty());
}

}  // namespace
}  // namespace sledzig
