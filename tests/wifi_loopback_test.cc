// Integration tests: full WiFi transmitter -> (noisy) channel -> receiver.
#include <tuple>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/units.h"
#include "wifi/receiver.h"
#include "wifi/transmitter.h"

namespace sledzig::wifi {
namespace {

struct LoopbackParam {
  Modulation modulation;
  CodingRate rate;
};

class WifiLoopback : public ::testing::TestWithParam<LoopbackParam> {};

TEST_P(WifiLoopback, CleanChannelExactRecovery) {
  common::Rng rng(21);
  const auto psdu = rng.bytes(200);
  WifiTxConfig tx;
  tx.modulation = GetParam().modulation;
  tx.rate = GetParam().rate;
  const auto packet = wifi_transmit(psdu, tx);

  WifiRxConfig rx;
  const auto result = wifi_receive(packet.samples, rx);
  ASSERT_TRUE(result.detected);
  ASSERT_TRUE(result.signal_valid);
  EXPECT_EQ(result.signal.modulation, tx.modulation);
  EXPECT_EQ(result.signal.rate, tx.rate);
  EXPECT_EQ(result.psdu, psdu);
}

TEST_P(WifiLoopback, HighSnrRecovery) {
  common::Rng rng(22);
  const auto psdu = rng.bytes(120);
  WifiTxConfig tx;
  tx.modulation = GetParam().modulation;
  tx.rate = GetParam().rate;
  auto packet = wifi_transmit(psdu, tx);
  // 35 dB SNR: above the minimum for every paper mode.
  const double noise_power = common::db_to_linear(-35.0);
  for (auto& s : packet.samples) s += rng.complex_gaussian(noise_power);

  const auto result = wifi_receive(packet.samples, WifiRxConfig{});
  ASSERT_TRUE(result.detected);
  ASSERT_TRUE(result.signal_valid);
  EXPECT_EQ(result.psdu, psdu);
}

TEST_P(WifiLoopback, DetectionAtRandomOffset) {
  common::Rng rng(23);
  const auto psdu = rng.bytes(60);
  WifiTxConfig tx;
  tx.modulation = GetParam().modulation;
  tx.rate = GetParam().rate;
  const auto packet = wifi_transmit(psdu, tx);

  const std::size_t offset = 500 + static_cast<std::size_t>(rng.uniform_int(0, 300));
  common::CplxVec stream(offset, common::Cplx(0, 0));
  const double noise_power = common::db_to_linear(-40.0);
  for (auto& s : stream) s = rng.complex_gaussian(noise_power);
  stream.insert(stream.end(), packet.samples.begin(), packet.samples.end());
  for (std::size_t i = 0; i < 200; ++i) stream.push_back(rng.complex_gaussian(noise_power));

  const auto result = wifi_receive(stream, WifiRxConfig{});
  ASSERT_TRUE(result.detected);
  EXPECT_NEAR(static_cast<double>(result.packet_start),
              static_cast<double>(offset), 1.0);
  EXPECT_EQ(result.psdu, psdu);
}

INSTANTIATE_TEST_SUITE_P(
    PaperModes, WifiLoopback,
    ::testing::Values(LoopbackParam{Modulation::kQam16, CodingRate::kR12},
                      LoopbackParam{Modulation::kQam16, CodingRate::kR34},
                      LoopbackParam{Modulation::kQam64, CodingRate::kR23},
                      LoopbackParam{Modulation::kQam64, CodingRate::kR34},
                      LoopbackParam{Modulation::kQam64, CodingRate::kR56},
                      LoopbackParam{Modulation::kQam256, CodingRate::kR34},
                      LoopbackParam{Modulation::kQam256, CodingRate::kR56}),
    [](const auto& info) {
      return to_string(info.param.modulation).substr(0, 3) +
             std::to_string(coded_bits_per_symbol(info.param.modulation)) +
             "r" + std::to_string(rate_fraction(info.param.rate).num) +
             std::to_string(rate_fraction(info.param.rate).den);
    });

TEST(WifiLoopback, NoiseOnlyInputNotDetected) {
  common::Rng rng(24);
  common::CplxVec noise(4000);
  for (auto& s : noise) s = rng.complex_gaussian(1.0);
  const auto result = wifi_receive(noise, WifiRxConfig{});
  EXPECT_FALSE(result.detected);
}

TEST(WifiLoopback, ServiceFieldModeRoundTrip) {
  common::Rng rng(25);
  const auto psdu = rng.bytes(90);
  WifiTxConfig tx;
  tx.modulation = Modulation::kQam64;
  tx.rate = CodingRate::kR23;
  tx.include_service_field = true;
  const auto packet = wifi_transmit(psdu, tx);
  WifiRxConfig rx;
  rx.include_service_field = true;
  const auto result = wifi_receive(packet.samples, rx);
  ASSERT_TRUE(result.detected);
  EXPECT_EQ(result.psdu, psdu);
}

TEST(WifiLoopback, PacketDurationAccounting) {
  WifiTxConfig tx;
  tx.modulation = Modulation::kQam16;
  tx.rate = CodingRate::kR12;  // 96 data bits per symbol
  // 100 octets = 800 bits + 6 tail = 806 -> 9 symbols.
  EXPECT_EQ(num_data_symbols(800, tx), 9u);
  EXPECT_NEAR(packet_duration_us(100, tx), 16.0 + 4.0 + 36.0, 1e-9);
  const auto packet = wifi_transmit(common::Bytes(100, 0xab), tx);
  EXPECT_EQ(packet.samples.size(), 320u + 80u + 9u * 80u);
}

TEST(WifiLoopback, ScrambledStreamMatchesBetweenTxAndRx) {
  common::Rng rng(26);
  const auto psdu = rng.bytes(64);
  WifiTxConfig tx;
  tx.modulation = Modulation::kQam16;
  tx.rate = CodingRate::kR12;
  const auto packet = wifi_transmit(psdu, tx);
  const auto result = wifi_receive(packet.samples, WifiRxConfig{});
  ASSERT_TRUE(result.signal_valid);
  EXPECT_EQ(result.scrambled_stream, packet.scrambled_stream);
}

}  // namespace
}  // namespace sledzig::wifi
