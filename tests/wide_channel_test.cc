// Tests for the 40 MHz extension: plan geometry, wide-channel WiFi PHY
// loopback and SledZig over explicit windows (the paper's footnote 1:
// "the similar idea can be easily extended to wider channel scenarios").
#include <gtest/gtest.h>

#include "common/dsp.h"
#include "common/rng.h"
#include "common/units.h"
#include "sledzig/encoder.h"
#include "wifi/interleaver.h"
#include "wifi/preamble.h"
#include "wifi/qam.h"
#include "wifi/receiver.h"
#include "wifi/transmitter.h"

namespace sledzig {
namespace {

using wifi::ChannelWidth;
using wifi::CodingRate;
using wifi::Modulation;

const wifi::ChannelPlan& plan40() {
  return wifi::channel_plan(ChannelWidth::k40MHz);
}

TEST(Plan40, Geometry) {
  const auto& p = plan40();
  EXPECT_EQ(p.fft_size, 128u);
  EXPECT_EQ(p.cp_len, 32u);
  EXPECT_EQ(p.num_data(), 108u);
  EXPECT_EQ(p.pilot_indices.size(), 6u);
  EXPECT_NEAR(p.subcarrier_spacing_hz(), 312500.0, 1e-6);
  EXPECT_EQ(p.symbol_len(), 160u);  // still 4 us at 40 MS/s
  // DC nulls and pilots are not data subcarriers.
  for (int l : {-1, 0, 1, -53, -25, -11, 11, 25, 53}) {
    EXPECT_EQ(p.data_position(l), -1) << l;
  }
  EXPECT_EQ(p.data_position(-58), 0);
  EXPECT_EQ(p.data_position(58), 107);
}

TEST(Plan40, Plan20MatchesLegacyConstants) {
  const auto& p = wifi::channel_plan(ChannelWidth::k20MHz);
  EXPECT_EQ(p.fft_size, wifi::kNumSubcarriers);
  EXPECT_EQ(p.num_data(), wifi::kNumDataSubcarriers);
  EXPECT_EQ(p.cp_len, wifi::kCyclicPrefixLen);
  for (std::size_t i = 0; i < 48; ++i) {
    EXPECT_EQ(p.data_indices[i], wifi::data_subcarrier_indices()[i]);
  }
}

TEST(Plan40, BitCounts) {
  EXPECT_EQ(wifi::coded_bits_per_symbol(Modulation::kQam64, plan40()), 648u);
  EXPECT_EQ(
      wifi::data_bits_per_symbol(Modulation::kQam64, CodingRate::kR23, plan40()),
      432u);
  EXPECT_EQ(wifi::coded_bits_per_symbol(Modulation::kQam256, plan40()), 864u);
}

TEST(Plan40, InterleaverBijective) {
  for (auto m : {Modulation::kBpsk, Modulation::kQam16, Modulation::kQam64,
                 Modulation::kQam256}) {
    const auto perm = wifi::interleaver_permutation(m, plan40());
    std::vector<bool> seen(perm.size(), false);
    for (auto j : perm) {
      ASSERT_LT(j, perm.size());
      EXPECT_FALSE(seen[j]);
      seen[j] = true;
    }
  }
}

TEST(Plan40, PreambleStructure) {
  EXPECT_EQ(wifi::preamble_len(ChannelWidth::k40MHz), 640u);  // 16 us at 40 MS/s
  const auto& stf = wifi::short_training_field(ChannelWidth::k40MHz);
  ASSERT_EQ(stf.size(), 320u);
  // Periodic with period 32 (fft/4).
  for (std::size_t i = 32; i < stf.size(); ++i) {
    EXPECT_NEAR(std::abs(stf[i] - stf[i - 32]), 0.0, 1e-9);
  }
  EXPECT_NEAR(common::mean_power(wifi::long_training_symbol(ChannelWidth::k40MHz)),
              104.0 / 114.0, 0.02);
}

class Wide40Loopback
    : public ::testing::TestWithParam<std::pair<Modulation, CodingRate>> {};

TEST_P(Wide40Loopback, CleanChannelExactRecovery) {
  common::Rng rng(501);
  const auto psdu = rng.bytes(400);
  wifi::WifiTxConfig tx;
  tx.modulation = GetParam().first;
  tx.rate = GetParam().second;
  tx.width = ChannelWidth::k40MHz;
  const auto packet = wifi::wifi_transmit(psdu, tx);

  wifi::WifiRxConfig rx;
  rx.width = ChannelWidth::k40MHz;
  const auto result = wifi::wifi_receive(packet.samples, rx);
  ASSERT_TRUE(result.detected);
  ASSERT_TRUE(result.signal_valid);
  EXPECT_EQ(result.signal.modulation, tx.modulation);
  EXPECT_EQ(result.psdu, psdu);
}

TEST_P(Wide40Loopback, NoisyRecovery) {
  common::Rng rng(502);
  const auto psdu = rng.bytes(200);
  wifi::WifiTxConfig tx;
  tx.modulation = GetParam().first;
  tx.rate = GetParam().second;
  tx.width = ChannelWidth::k40MHz;
  auto packet = wifi::wifi_transmit(psdu, tx);
  const double noise = common::db_to_linear(-38.0);
  for (auto& s : packet.samples) s += rng.complex_gaussian(noise);

  wifi::WifiRxConfig rx;
  rx.width = ChannelWidth::k40MHz;
  const auto result = wifi::wifi_receive(packet.samples, rx);
  ASSERT_TRUE(result.detected);
  EXPECT_EQ(result.psdu, psdu);
}

INSTANTIATE_TEST_SUITE_P(
    Modes, Wide40Loopback,
    ::testing::Values(std::pair{Modulation::kQam16, CodingRate::kR12},
                      std::pair{Modulation::kQam64, CodingRate::kR23},
                      std::pair{Modulation::kQam64, CodingRate::kR56},
                      std::pair{Modulation::kQam256, CodingRate::kR34}));

// --------------------------------------------------------- SledZig on 40 MHz

core::SledzigConfig wide_config(double window_offset_hz) {
  core::SledzigConfig cfg;
  cfg.modulation = Modulation::kQam64;
  cfg.rate = CodingRate::kR23;
  cfg.width = ChannelWidth::k40MHz;
  cfg.window_offsets_hz = {window_offset_hz};
  return cfg;
}

TEST(Sledzig40, WindowSelection) {
  // A 40 MHz channel centred between WiFi channels overlaps up to 8 ZigBee
  // channels; a window at +13 MHz covers subcarriers ~37.4..45.8.
  const auto subs = core::window_data_subcarriers(plan40(), 13e6);
  EXPECT_FALSE(subs.empty());
  for (int s : subs) {
    EXPECT_GE(s, 37);
    EXPECT_LE(s, 46);
  }
  // The 20 MHz rule reproduces the paper's defaults.
  const auto& p20 = wifi::channel_plan(ChannelWidth::k20MHz);
  EXPECT_EQ(core::window_data_subcarriers(p20, -2e6),
            core::forced_data_subcarriers(core::OverlapChannel::kCh2));
  EXPECT_EQ(core::window_data_subcarriers(p20, 8e6),
            core::forced_data_subcarriers(core::OverlapChannel::kCh4));
}

TEST(Sledzig40, ZigbeeOffsetHelper) {
  // ZigBee channel 22 (2460 MHz) from a 2462 MHz 40 MHz-centre: -2 MHz.
  EXPECT_NEAR(core::zigbee_offset_hz(22, 2462e6), -2e6, 1);
}

TEST(Sledzig40, EncodeDecodeRoundTrip) {
  common::Rng rng(503);
  const auto cfg = wide_config(13e6);
  for (std::size_t len : {1u, 60u, 300u}) {
    const auto payload = rng.bytes(len);
    const auto enc = core::sledzig_encode(payload, cfg);
    EXPECT_EQ(enc.num_collisions, 0u) << len;
    EXPECT_EQ(enc.num_violations, 0u) << len;
    const auto dec = core::sledzig_decode(enc.transmit_psdu, cfg);
    ASSERT_TRUE(dec.has_value()) << len;
    EXPECT_EQ(*dec, payload) << len;
  }
}

TEST(Sledzig40, ForcedSubcarriersCarryLowestPoints) {
  common::Rng rng(504);
  const auto cfg = wide_config(-17e6);  // window near the lower band edge
  const auto enc = core::sledzig_encode(rng.bytes(400), cfg);

  wifi::WifiTxConfig tx;
  tx.modulation = cfg.modulation;
  tx.rate = cfg.rate;
  tx.width = ChannelWidth::k40MHz;
  const auto packet = wifi::wifi_transmit(enc.transmit_psdu, tx);

  const auto& plan = plan40();
  const std::size_t dbps =
      wifi::data_bits_per_symbol(cfg.modulation, cfg.rate, plan);
  const std::size_t full_symbols = (enc.transmit_psdu.size() * 8) / dbps;
  const std::size_t first = enc.num_unforced_head > 0 ? 1 : 0;
  ASSERT_GE(full_symbols, 2u);
  for (std::size_t s = first; s < full_symbols; ++s) {
    for (int logical : cfg.forced_subcarrier_set()) {
      const int pos = plan.data_position(logical);
      ASSERT_GE(pos, 0);
      EXPECT_TRUE(wifi::is_lowest_point(
          packet.data_points[s * plan.num_data() + static_cast<std::size_t>(pos)],
          cfg.modulation))
          << "symbol " << s << " sc " << logical;
    }
  }
}

TEST(Sledzig40, InbandPowerReduced) {
  // Spectrum-level check at 40 MS/s: the protected window loses ~6+ dB.
  common::Rng rng(505);
  const auto cfg = wide_config(13e6);
  const auto enc = core::sledzig_encode(rng.bytes(600), cfg);

  wifi::WifiTxConfig tx;
  tx.modulation = cfg.modulation;
  tx.rate = cfg.rate;
  tx.width = ChannelWidth::k40MHz;
  const auto sled = wifi::wifi_transmit(enc.transmit_psdu, tx);
  const auto normal = wifi::wifi_transmit(rng.bytes(enc.transmit_psdu.size()), tx);

  const std::size_t payload_start =
      wifi::preamble_len(ChannelWidth::k40MHz) + plan40().symbol_len();
  auto band = [&](const common::CplxVec& samples) {
    return common::linear_to_db(common::band_power(
        std::span<const common::Cplx>(samples).subspan(payload_start), 40e6,
        12e6, 14e6));
  };
  EXPECT_GT(band(normal.samples) - band(sled.samples), 5.0);
}

TEST(Sledzig40, MultiWindow) {
  common::Rng rng(506);
  auto cfg = wide_config(13e6);
  cfg.window_offsets_hz.push_back(-12e6);
  const auto payload = rng.bytes(150);
  const auto enc = core::sledzig_encode(payload, cfg);
  EXPECT_EQ(enc.num_collisions, 0u);
  const auto dec = core::sledzig_decode(enc.transmit_psdu, cfg);
  ASSERT_TRUE(dec.has_value());
  EXPECT_EQ(*dec, payload);
}

TEST(Sledzig40, WideWithoutWindowThrows) {
  core::SledzigConfig cfg;
  cfg.width = ChannelWidth::k40MHz;
  EXPECT_THROW(cfg.forced_subcarrier_set(), std::invalid_argument);
}

}  // namespace
}  // namespace sledzig
