// Full sample-domain integration: WiFi and ZigBee waveforms superposed on
// one medium, both receivers running their complete PHYs.  This exercises
// the paper's headline mechanism end to end with no MAC-level abstraction:
// a ZigBee frame that dies under a normal WiFi packet survives when the
// WiFi transmitter switches to SledZig.
#include <gtest/gtest.h>

#include "channel/medium.h"
#include "channel/pathloss.h"
#include "coex/experiment.h"
#include "common/rng.h"
#include "common/units.h"
#include "wifi/preamble.h"
#include "sledzig/encoder.h"
#include "wifi/receiver.h"
#include "wifi/transmitter.h"
#include "zigbee/receiver.h"
#include "zigbee/transmitter.h"

namespace sledzig {
namespace {

using coex::Scheme;

struct AirResult {
  zigbee::ZigbeeRxResult zigbee;
  common::Bytes zigbee_payload;
};

/// Puts one WiFi packet (normal or SledZig on CH4) and one ZigBee frame on
/// channel 26 into the air simultaneously and runs the ZigBee receiver.
AirResult run_over_the_air(Scheme scheme, double wifi_power_dbm,
                           double zigbee_power_dbm, std::uint64_t seed) {
  common::Rng rng(seed);
  core::SledzigConfig cfg;
  cfg.modulation = wifi::Modulation::kQam256;
  cfg.rate = wifi::CodingRate::kR34;
  cfg.channel = core::OverlapChannel::kCh4;

  wifi::WifiTxConfig tx;
  tx.modulation = cfg.modulation;
  tx.rate = cfg.rate;

  // A long WiFi packet so its payload covers most of the ZigBee frame.
  common::Bytes psdu = rng.bytes(4000);
  if (scheme == Scheme::kSledzig) {
    psdu = core::sledzig_encode(rng.bytes(3400), cfg).transmit_psdu;
  }
  const auto wifi_packet = wifi::wifi_transmit(psdu, tx);

  AirResult result;
  result.zigbee_payload = rng.bytes(12);
  const auto zb = zigbee::zigbee_transmit(result.zigbee_payload);

  // The ZigBee frame starts after the WiFi preamble + SIGNAL so only the
  // (possibly SledZig-reduced) payload interferes — the paper's Fig 4(b)
  // steady-state case.
  const std::size_t zb_start = wifi::kPreambleLen + wifi::kSymbolLen + 400;
  const std::size_t total =
      std::max(wifi_packet.samples.size(), zb_start + zb.samples.size() + 1600);

  std::vector<channel::Emission> emissions = {
      {&wifi_packet.samples, wifi_power_dbm, 0.0, 0},
      {&zb.samples, zigbee_power_dbm,
       core::channel_center_offset_hz(core::OverlapChannel::kCh4), zb_start},
  };
  auto rx_samples = channel::mix_at_receiver(emissions, total, rng);

  // The ZigBee receiver sees its own channel: downconvert CH4 to baseband.
  const auto baseband = common::frequency_shift(
      rx_samples, -core::channel_center_offset_hz(core::OverlapChannel::kCh4),
      channel::kMediumSampleRateHz);
  result.zigbee = zigbee::zigbee_receive(baseband);
  return result;
}

TEST(FullStack, SledzigRescuesZigbeeFrame) {
  // WiFi at -55 dBm total: its CH4 in-band level is ~-66 dBm normal
  // (drowns a -75 dBm ZigBee frame) vs ~-81 dBm under SledZig QAM-256.
  int normal_ok = 0, sled_ok = 0;
  const int trials = 5;
  for (std::uint64_t seed = 1; seed <= trials; ++seed) {
    const auto normal =
        run_over_the_air(Scheme::kNormalWifi, -55.0, -75.0, seed);
    if (normal.zigbee.crc_ok &&
        normal.zigbee.payload == normal.zigbee_payload) {
      ++normal_ok;
    }
    const auto sled = run_over_the_air(Scheme::kSledzig, -55.0, -75.0, seed);
    if (sled.zigbee.crc_ok && sled.zigbee.payload == sled.zigbee_payload) {
      ++sled_ok;
    }
  }
  EXPECT_LE(normal_ok, 1);
  EXPECT_GE(sled_ok, 4);
}

TEST(FullStack, WeakWifiHarmlessEitherWay) {
  // Far-away WiFi (-80 dBm total): ZigBee decodes under both schemes.
  const auto normal = run_over_the_air(Scheme::kNormalWifi, -80.0, -70.0, 7);
  const auto sled = run_over_the_air(Scheme::kSledzig, -80.0, -70.0, 7);
  EXPECT_TRUE(normal.zigbee.crc_ok);
  EXPECT_TRUE(sled.zigbee.crc_ok);
}

TEST(FullStack, WifiDecodesDespiteZigbeeInterference) {
  // Section V-D2: the ZigBee signal never threatens the WiFi link.  Put a
  // ZigBee frame *inside* the WiFi band during a WiFi packet and check the
  // WiFi receiver still decodes cleanly.
  common::Rng rng(11);
  wifi::WifiTxConfig tx;
  tx.modulation = wifi::Modulation::kQam64;
  tx.rate = wifi::CodingRate::kR23;
  const auto psdu = rng.bytes(500);
  const auto packet = wifi::wifi_transmit(psdu, tx);
  const auto zb = zigbee::zigbee_transmit(rng.bytes(60));

  std::vector<channel::Emission> emissions = {
      {&packet.samples, -55.0, 0.0, 0},
      // ZigBee 30 dB below WiFi, as Fig 17 measures at comparable distance.
      {&zb.samples, -85.0,
       core::channel_center_offset_hz(core::OverlapChannel::kCh2), 500},
  };
  const auto rx_samples = channel::mix_at_receiver(
      emissions, packet.samples.size(), rng);

  // Normalise the receive scale back to ~unit power for the WiFi receiver.
  common::CplxVec scaled(rx_samples.size());
  const double gain = std::sqrt(common::dbm_to_mw(-55.0));
  for (std::size_t i = 0; i < rx_samples.size(); ++i) {
    scaled[i] = rx_samples[i] / gain;
  }
  const auto rx = wifi::wifi_receive(scaled, wifi::WifiRxConfig{});
  ASSERT_TRUE(rx.signal_valid);
  EXPECT_EQ(rx.psdu, psdu);
}

TEST(FullStack, SledzigSurvivesItsOwnJourney) {
  // SledZig payload end-to-end over a noisy channel: WiFi RX -> extra-bit
  // removal -> original payload.
  common::Rng rng(13);
  core::SledzigConfig cfg;
  cfg.modulation = wifi::Modulation::kQam64;
  cfg.rate = wifi::CodingRate::kR23;
  cfg.channel = core::OverlapChannel::kCh1;

  const auto payload = rng.bytes(256);
  const auto enc = core::sledzig_encode(payload, cfg);
  wifi::WifiTxConfig tx;
  tx.modulation = cfg.modulation;
  tx.rate = cfg.rate;
  auto packet = wifi::wifi_transmit(enc.transmit_psdu, tx);
  const double noise = common::db_to_linear(-30.0);
  for (auto& s : packet.samples) s += rng.complex_gaussian(noise);

  const auto rx = wifi::wifi_receive(packet.samples, wifi::WifiRxConfig{});
  ASSERT_TRUE(rx.signal_valid);
  const auto decoded = core::sledzig_decode(rx.psdu, cfg);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, payload);
}

}  // namespace
}  // namespace sledzig
