// Tests for the SledZig core: channel geometry, significant-bit pipeline
// (exact Table II reproduction), the extra-bit encoder/decoder and the
// end-to-end lowest-point property through the *unmodified* WiFi chain.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "sledzig/channels.h"
#include "sledzig/encoder.h"
#include "sledzig/power_analysis.h"
#include "sledzig/significant_bits.h"
#include "wifi/qam.h"
#include "wifi/subcarriers.h"
#include "wifi/transmitter.h"

namespace sledzig::core {
namespace {

using common::Bytes;
using wifi::CodingRate;
using wifi::Modulation;

// ------------------------------------------------------------ channel maps

TEST(Channels, SubcarrierWindows) {
  // CH1 window -26..-19 (pilot -21), CH2 -10..-3 (pilot -7),
  // CH3 +6..+13 (pilot +7), CH4 +22..+26 data (27..29 are null).
  EXPECT_EQ(forced_data_subcarriers(OverlapChannel::kCh1),
            (std::vector<int>{-26, -25, -24, -23, -22, -20, -19}));
  EXPECT_EQ(forced_data_subcarriers(OverlapChannel::kCh2),
            (std::vector<int>{-10, -9, -8, -6, -5, -4, -3}));
  EXPECT_EQ(forced_data_subcarriers(OverlapChannel::kCh3),
            (std::vector<int>{6, 8, 9, 10, 11, 12, 13}));
  EXPECT_EQ(forced_data_subcarriers(OverlapChannel::kCh4),
            (std::vector<int>{22, 23, 24, 25, 26}));
}

TEST(Channels, DefaultCounts) {
  EXPECT_EQ(default_forced_count(OverlapChannel::kCh1), 7u);
  EXPECT_EQ(default_forced_count(OverlapChannel::kCh2), 7u);
  EXPECT_EQ(default_forced_count(OverlapChannel::kCh3), 7u);
  EXPECT_EQ(default_forced_count(OverlapChannel::kCh4), 5u);
}

TEST(Channels, PilotMembership) {
  EXPECT_TRUE(window_contains_pilot(OverlapChannel::kCh1));
  EXPECT_TRUE(window_contains_pilot(OverlapChannel::kCh2));
  EXPECT_TRUE(window_contains_pilot(OverlapChannel::kCh3));
  EXPECT_FALSE(window_contains_pilot(OverlapChannel::kCh4));
}

TEST(Channels, FrequencyOffsets) {
  EXPECT_NEAR(channel_center_offset_hz(OverlapChannel::kCh1), -7e6, 1);
  EXPECT_NEAR(channel_center_offset_hz(OverlapChannel::kCh4), 8e6, 1);
  // WiFi channel 13 at 2472 MHz; ZigBee 23..26 at 2465/2470/2475/2480:
  EXPECT_NEAR(wifi_channel_frequency_hz(13), 2472e6, 1);
  for (OverlapChannel ch : kAllOverlapChannels) {
    const double zb =
        2405e6 + 5e6 * static_cast<double>(testbed_zigbee_channel(ch) - 11);
    EXPECT_NEAR(wifi_channel_frequency_hz(13) + channel_center_offset_hz(ch),
                zb, 1);
  }
}

TEST(Channels, OverlapInverse) {
  for (OverlapChannel ch : kAllOverlapChannels) {
    const auto back = overlap_for_zigbee_channel(testbed_zigbee_channel(ch));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, ch);
  }
  EXPECT_FALSE(overlap_for_zigbee_channel(11).has_value());
}

TEST(Channels, Fig11SweepCounts) {
  for (OverlapChannel ch : kAllOverlapChannels) {
    for (std::size_t count : {5u, 6u, 7u, 8u}) {
      const auto subs = forced_data_subcarriers(ch, count);
      EXPECT_EQ(subs.size(), count);
      // All chosen subcarriers are data subcarriers.
      for (int s : subs) {
        EXPECT_GE(wifi::data_subcarrier_position(s), 0);
      }
    }
  }
}

// --------------------------------------------------------------- Table II

TEST(SignificantBits, TableIiExactReproduction) {
  // Paper Table II: QAM-16, CH2, first OFDM symbol, 1-based positions p_k in
  // the coded stream and encoder steps n.
  SledzigConfig cfg;
  cfg.modulation = Modulation::kQam16;
  cfg.rate = CodingRate::kR12;
  cfg.channel = OverlapChannel::kCh2;

  const auto bits = significant_bits_for_symbol(cfg, 0);
  ASSERT_EQ(bits.size(), 14u);

  const std::size_t expected_p[] = {29, 30, 41, 42, 77, 78, 89,
                                    90, 125, 138, 172, 173, 183, 186};
  const std::size_t expected_n[] = {15, 15, 21, 21, 39, 39, 45,
                                    45, 63, 69, 86, 87, 92, 93};
  for (std::size_t k = 0; k < bits.size(); ++k) {
    EXPECT_EQ(bits[k].punctured_pos + 1, expected_p[k]) << "k=" << k + 1;
    EXPECT_EQ(bits[k].step + 1, expected_n[k]) << "k=" << k + 1;
  }
}

TEST(SignificantBits, TableIiTwinStructure) {
  SledzigConfig cfg;
  cfg.modulation = Modulation::kQam16;
  cfg.rate = CodingRate::kR12;
  cfg.channel = OverlapChannel::kCh2;
  const auto plan = build_constraint_plan(cfg, 0, 96);  // first symbol
  // Steps 15/21/39/45 (1-based) are twins; 63, 69, 86, 87, 92, 93 singles.
  EXPECT_EQ(plan.num_twins, 4u);
  EXPECT_EQ(plan.num_singles, 6u);
  EXPECT_EQ(plan.extra_positions.size(), 14u);
  EXPECT_EQ(plan.num_unforced(), 0u);
}

TEST(SignificantBits, LoneTwinUsesPaperExtraPositions) {
  // Algorithm 1 of the paper inserts a twin's extra bits at x_{n-5} and
  // x_{n-1}.  Table II's first twin is at step n = 15 (1-based): the extras
  // go to 0-based stream positions 9 and 13.
  SledzigConfig cfg;
  cfg.modulation = Modulation::kQam16;
  cfg.rate = CodingRate::kR12;
  cfg.channel = OverlapChannel::kCh2;
  const auto plan = build_constraint_plan(cfg, 0, 96);
  ASSERT_FALSE(plan.clusters.empty());
  // Table II's first two twins (steps 15 and 21, 1-based) are 6 steps apart,
  // so they form one cluster; each twin takes its paper positions
  // (n-5, n-1): {9, 13} and {15, 19}.
  const auto& first = plan.clusters.front();
  ASSERT_EQ(first.equations.size(), 4u);
  EXPECT_EQ(first.equations[0].step, 14u);
  EXPECT_EQ(first.equations[2].step, 20u);
  EXPECT_EQ(first.positions, (std::vector<std::size_t>{9, 13, 15, 19}));
  // And a lone single forces x_n itself.
  for (const auto& cluster : plan.clusters) {
    if (cluster.equations.size() == 1) {
      EXPECT_EQ(cluster.positions[0], cluster.equations[0].step);
    }
  }
}

// -------------------------------------------------- Table III (extra bits)

struct TableIiiRow {
  Modulation m;
  CodingRate r;
  std::size_t bits_per_symbol;
  std::size_t extra_ch13;
  std::size_t extra_ch4;
};

class TableIii : public ::testing::TestWithParam<TableIiiRow> {};

TEST_P(TableIii, ExtraBitCounts) {
  const auto& row = GetParam();
  EXPECT_EQ(wifi::data_bits_per_symbol(row.m, row.r), row.bits_per_symbol);
  for (OverlapChannel ch :
       {OverlapChannel::kCh1, OverlapChannel::kCh2, OverlapChannel::kCh3}) {
    SledzigConfig cfg{row.m, row.r, ch};
    EXPECT_EQ(extra_bits_per_symbol(cfg), row.extra_ch13) << to_string(ch);
  }
  SledzigConfig cfg4{row.m, row.r, OverlapChannel::kCh4};
  EXPECT_EQ(extra_bits_per_symbol(cfg4), row.extra_ch4);
}

// Note: the paper's Table III prints 24 for QAM-64 rate 2/3 CH1-CH3, but its
// own Table IV loss (14.58% of 192) and the subcarrier math (7 x 4) give 28.
// The paper's "QAM-16, 2/3" row carries 144 bits/symbol, i.e. rate 3/4.
INSTANTIATE_TEST_SUITE_P(
    PaperRows, TableIii,
    ::testing::Values(TableIiiRow{Modulation::kQam16, CodingRate::kR12, 96, 14, 10},
                      TableIiiRow{Modulation::kQam16, CodingRate::kR34, 144, 14, 10},
                      TableIiiRow{Modulation::kQam64, CodingRate::kR23, 192, 28, 20},
                      TableIiiRow{Modulation::kQam64, CodingRate::kR34, 216, 28, 20},
                      TableIiiRow{Modulation::kQam64, CodingRate::kR56, 240, 28, 20},
                      TableIiiRow{Modulation::kQam256, CodingRate::kR34, 288, 42, 30},
                      TableIiiRow{Modulation::kQam256, CodingRate::kR56, 320, 42, 30}));

// ------------------------------------------------ Table IV (throughput loss)

TEST(TableIv, ThroughputLossMatchesPaper) {
  const auto pct = [](const SledzigConfig& cfg) {
    return throughput_loss(cfg) * 100.0;
  };
  using M = Modulation;
  using R = CodingRate;
  using C = OverlapChannel;
  EXPECT_NEAR(pct({M::kQam16, R::kR12, C::kCh1}), 14.58, 0.01);
  EXPECT_NEAR(pct({M::kQam16, R::kR12, C::kCh4}), 10.42, 0.01);
  EXPECT_NEAR(pct({M::kQam16, R::kR34, C::kCh1}), 9.72, 0.01);
  EXPECT_NEAR(pct({M::kQam16, R::kR34, C::kCh4}), 6.94, 0.01);
  EXPECT_NEAR(pct({M::kQam64, R::kR23, C::kCh2}), 14.58, 0.01);
  EXPECT_NEAR(pct({M::kQam64, R::kR23, C::kCh4}), 10.42, 0.01);
  EXPECT_NEAR(pct({M::kQam64, R::kR34, C::kCh3}), 12.96, 0.01);
  EXPECT_NEAR(pct({M::kQam64, R::kR34, C::kCh4}), 9.26, 0.01);
  EXPECT_NEAR(pct({M::kQam64, R::kR56, C::kCh1}), 11.67, 0.01);
  EXPECT_NEAR(pct({M::kQam64, R::kR56, C::kCh4}), 8.33, 0.01);
  EXPECT_NEAR(pct({M::kQam256, R::kR34, C::kCh2}), 14.58, 0.01);
  // Paper prints 11.72% here; 30/288 = 10.42% is the arithmetic value.
  EXPECT_NEAR(pct({M::kQam256, R::kR34, C::kCh4}), 10.42, 0.01);
  EXPECT_NEAR(pct({M::kQam256, R::kR56, C::kCh3}), 13.12, 0.01);
  EXPECT_NEAR(pct({M::kQam256, R::kR56, C::kCh4}), 9.37, 0.01);
}

// ------------------------------------------------------------ power theory

TEST(PowerAnalysis, ConstellationGaps) {
  EXPECT_NEAR(constellation_gap_db(Modulation::kQam16).value(), 7.0, 0.05);
  EXPECT_NEAR(constellation_gap_db(Modulation::kQam64).value(), 13.2, 0.05);
  EXPECT_NEAR(constellation_gap_db(Modulation::kQam256).value(), 19.3, 0.05);
}

TEST(PowerAnalysis, PilotLimitsCh1Ch3Reduction) {
  for (auto m : {Modulation::kQam16, Modulation::kQam64, Modulation::kQam256}) {
    SledzigConfig with_pilot{m, CodingRate::kR12, OverlapChannel::kCh2};
    SledzigConfig no_pilot{m, CodingRate::kR12, OverlapChannel::kCh4};
    EXPECT_LT(ideal_inband_reduction_db(with_pilot),
              ideal_inband_reduction_db(no_pilot));
    // Without a pilot the reduction equals the constellation gap.
    EXPECT_NEAR(ideal_inband_reduction_db(no_pilot).value(),
                constellation_gap_db(m).value(), 1e-9);
  }
  // CH1-CH3 reductions saturate around 5-9 dB because of the pilot.
  SledzigConfig q64{Modulation::kQam64, CodingRate::kR12, OverlapChannel::kCh1};
  EXPECT_NEAR(ideal_inband_reduction_db(q64).value(), 7.78, 0.05);
}

// ----------------------------------------------------- encoder / decoder

struct ComboParam {
  Modulation m;
  CodingRate r;
  OverlapChannel ch;
};

class SledzigCombos : public ::testing::TestWithParam<ComboParam> {};

TEST_P(SledzigCombos, EncodeDecodeRoundTrip) {
  common::Rng rng(101);
  const auto& p = GetParam();
  SledzigConfig cfg{p.m, p.r, p.ch};
  for (std::size_t len : {1u, 17u, 100u, 400u}) {
    const auto payload = rng.bytes(len);
    const auto enc = sledzig_encode(payload, cfg);
    EXPECT_EQ(enc.num_collisions, 0u) << len;
    EXPECT_EQ(enc.num_violations, 0u) << len;
    const auto dec = sledzig_decode(enc.transmit_psdu, cfg);
    ASSERT_TRUE(dec.has_value()) << len;
    EXPECT_EQ(*dec, payload) << len;
  }
}

TEST_P(SledzigCombos, ForcedSubcarriersCarryLowestPoints) {
  common::Rng rng(102);
  const auto& p = GetParam();
  SledzigConfig cfg{p.m, p.r, p.ch};
  const auto payload = rng.bytes(300);
  const auto enc = sledzig_encode(payload, cfg);

  wifi::WifiTxConfig tx;
  tx.modulation = p.m;
  tx.rate = p.r;
  tx.scrambler_seed = cfg.scrambler_seed;
  const auto packet = wifi_transmit(enc.transmit_psdu, tx);

  const auto subcarriers = forced_data_subcarriers(p.ch);
  // Every symbol whose uncoded bits lie wholly inside the payload region
  // must carry lowest points on all forced subcarriers.  The final symbol
  // contains tail/pad bits, which SledZig cannot force.
  const std::size_t dbps = wifi::data_bits_per_symbol(p.m, p.r);
  const std::size_t payload_bits = enc.transmit_psdu.size() * 8;
  const std::size_t full_symbols = payload_bits / dbps;
  ASSERT_GE(full_symbols, 1u);
  // Head-unforced constraints (twins inside the first five encoder steps)
  // only affect symbol 0.
  const std::size_t first = enc.num_unforced_head > 0 ? 1 : 0;
  for (std::size_t s = first; s < full_symbols; ++s) {
    for (int logical : subcarriers) {
      const int pos = wifi::data_subcarrier_position(logical);
      const auto& point =
          packet.data_points[s * wifi::kNumDataSubcarriers +
                             static_cast<std::size_t>(pos)];
      EXPECT_TRUE(wifi::is_lowest_point(point, p.m))
          << "symbol " << s << " subcarrier " << logical;
    }
  }
}

TEST_P(SledzigCombos, NonOverlappedSubcarriersUnconstrained) {
  // The encoder must not touch subcarriers outside the window: their points
  // should span the full constellation, not just low-power points.
  common::Rng rng(103);
  const auto& p = GetParam();
  SledzigConfig cfg{p.m, p.r, p.ch};
  const auto enc = sledzig_encode(rng.bytes(400), cfg);

  wifi::WifiTxConfig tx;
  tx.modulation = p.m;
  tx.rate = p.r;
  const auto packet = wifi_transmit(enc.transmit_psdu, tx);

  const auto forced = forced_data_subcarriers(p.ch);
  std::size_t outside_total = 0, outside_lowest = 0;
  const std::size_t num_symbols =
      packet.data_points.size() / wifi::kNumDataSubcarriers;
  for (std::size_t s = 0; s < num_symbols; ++s) {
    for (int logical : wifi::data_subcarrier_indices()) {
      if (std::find(forced.begin(), forced.end(), logical) != forced.end()) {
        continue;
      }
      const int pos = wifi::data_subcarrier_position(logical);
      const auto& point =
          packet.data_points[s * wifi::kNumDataSubcarriers +
                             static_cast<std::size_t>(pos)];
      ++outside_total;
      if (wifi::is_lowest_point(point, p.m)) ++outside_lowest;
    }
  }
  // Random payloads put ~4/M of points on the lowest set (M = 16/64/256).
  const double fraction = static_cast<double>(outside_lowest) /
                          static_cast<double>(outside_total);
  EXPECT_LT(fraction, 0.35);
}

TEST_P(SledzigCombos, ExtraBitCountMatchesPlanAndClosedForm) {
  common::Rng rng(104);
  const auto& p = GetParam();
  SledzigConfig cfg{p.m, p.r, p.ch};
  const auto enc = sledzig_encode(rng.bytes(200), cfg);
  // Over full symbols, extras per symbol equal the closed form.
  const std::size_t dbps = wifi::data_bits_per_symbol(p.m, p.r);
  const std::size_t payload_bits = enc.transmit_psdu.size() * 8;
  const std::size_t full_symbols = payload_bits / dbps;
  EXPECT_GE(enc.num_extra_bits, full_symbols * extra_bits_per_symbol(cfg));
}

TEST_P(SledzigCombos, ChannelDetection) {
  common::Rng rng(105);
  const auto& p = GetParam();
  SledzigConfig cfg{p.m, p.r, p.ch};
  const auto enc = sledzig_encode(rng.bytes(300), cfg);
  wifi::WifiTxConfig tx;
  tx.modulation = p.m;
  tx.rate = p.r;
  const auto packet = wifi_transmit(enc.transmit_psdu, tx);
  // Use only the full-payload symbols for detection.
  const std::size_t dbps = wifi::data_bits_per_symbol(p.m, p.r);
  const std::size_t full_symbols = (enc.transmit_psdu.size() * 8) / dbps;
  const auto detected = detect_channel_from_points(
      std::span<const common::Cplx>(packet.data_points)
          .first(full_symbols * wifi::kNumDataSubcarriers),
      p.m);
  ASSERT_TRUE(detected.has_value());
  EXPECT_EQ(*detected, p.ch);
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, SledzigCombos,
    ::testing::Values(
        ComboParam{Modulation::kQam16, CodingRate::kR12, OverlapChannel::kCh1},
        ComboParam{Modulation::kQam16, CodingRate::kR12, OverlapChannel::kCh2},
        ComboParam{Modulation::kQam16, CodingRate::kR12, OverlapChannel::kCh3},
        ComboParam{Modulation::kQam16, CodingRate::kR12, OverlapChannel::kCh4},
        ComboParam{Modulation::kQam16, CodingRate::kR34, OverlapChannel::kCh2},
        ComboParam{Modulation::kQam16, CodingRate::kR34, OverlapChannel::kCh4},
        ComboParam{Modulation::kQam64, CodingRate::kR23, OverlapChannel::kCh1},
        ComboParam{Modulation::kQam64, CodingRate::kR23, OverlapChannel::kCh4},
        ComboParam{Modulation::kQam64, CodingRate::kR34, OverlapChannel::kCh2},
        ComboParam{Modulation::kQam64, CodingRate::kR34, OverlapChannel::kCh4},
        ComboParam{Modulation::kQam64, CodingRate::kR56, OverlapChannel::kCh3},
        ComboParam{Modulation::kQam64, CodingRate::kR56, OverlapChannel::kCh4},
        ComboParam{Modulation::kQam256, CodingRate::kR34, OverlapChannel::kCh1},
        ComboParam{Modulation::kQam256, CodingRate::kR34, OverlapChannel::kCh4},
        ComboParam{Modulation::kQam256, CodingRate::kR56, OverlapChannel::kCh2},
        ComboParam{Modulation::kQam256, CodingRate::kR56, OverlapChannel::kCh4}),
    [](const auto& info) {
      return to_string(info.param.m).substr(4) + "_" +
             std::to_string(wifi::rate_fraction(info.param.r).num) +
             std::to_string(wifi::rate_fraction(info.param.r).den) + "_" +
             to_string(info.param.ch);
    });

TEST(SledzigEncoder, NoTwinConflictsInAnyPaperCombination) {
  // The paper argues (section IV-D) that deinterleaving scatters significant
  // bits far enough apart that twin insertions never collide.  Verify over
  // long streams for every combination.
  for (const auto& mode : wifi::paper_phy_modes()) {
    for (OverlapChannel ch : kAllOverlapChannels) {
      SledzigConfig cfg{mode.modulation, mode.rate, ch};
      const std::size_t dbps =
          wifi::data_bits_per_symbol(cfg.modulation, cfg.rate);
      const auto plan = build_constraint_plan(cfg, 0, dbps * 50);
      EXPECT_EQ(plan.num_collisions, 0u)
          << to_string(mode.modulation) << " " << to_string(mode.rate) << " "
          << to_string(ch);
      EXPECT_EQ(plan.num_unforced_tail, 0u)
          << to_string(mode.modulation) << " " << to_string(mode.rate) << " "
          << to_string(ch);
      // Head-unforced constraints can only come from twins within the first
      // five encoder steps of the very first symbol.
      EXPECT_LE(plan.num_unforced_head, 2u)
          << to_string(mode.modulation) << " " << to_string(mode.rate) << " "
          << to_string(ch);
    }
  }
}

TEST(SledzigEncoder, ServiceFieldModeRoundTrip) {
  common::Rng rng(106);
  SledzigConfig cfg;
  cfg.modulation = Modulation::kQam64;
  cfg.rate = CodingRate::kR23;
  cfg.channel = OverlapChannel::kCh4;
  cfg.include_service_field = true;
  const auto payload = rng.bytes(150);
  const auto enc = sledzig_encode(payload, cfg);
  const auto dec = sledzig_decode(enc.transmit_psdu, cfg);
  ASSERT_TRUE(dec.has_value());
  EXPECT_EQ(*dec, payload);
}

TEST(SledzigEncoder, EmptyPayload) {
  SledzigConfig cfg;
  const auto enc = sledzig_encode({}, cfg);
  const auto dec = sledzig_decode(enc.transmit_psdu, cfg);
  ASSERT_TRUE(dec.has_value());
  EXPECT_TRUE(dec->empty());
}

TEST(SledzigEncoder, DecodeRejectsTruncatedPsdu) {
  common::Rng rng(107);
  SledzigConfig cfg;
  const auto enc = sledzig_encode(rng.bytes(100), cfg);
  common::Bytes truncated(enc.transmit_psdu.begin(),
                          enc.transmit_psdu.begin() + 20);
  const auto dec = sledzig_decode(truncated, cfg);
  EXPECT_FALSE(dec.has_value());
}

TEST(SledzigEncoder, DifferentSeedsProduceDifferentTransmitBits) {
  common::Rng rng(108);
  const auto payload = rng.bytes(60);
  SledzigConfig a, b;
  a.scrambler_seed = 0x5d;
  b.scrambler_seed = 0x23;
  EXPECT_NE(sledzig_encode(payload, a).transmit_psdu,
            sledzig_encode(payload, b).transmit_psdu);
}

TEST(SledzigEncoder, NormalWifiDoesNotTriggerChannelDetection) {
  common::Rng rng(109);
  wifi::WifiTxConfig tx;
  tx.modulation = Modulation::kQam64;
  tx.rate = CodingRate::kR23;
  const auto packet = wifi_transmit(rng.bytes(300), tx);
  const auto detected =
      detect_channel_from_points(packet.data_points, tx.modulation);
  EXPECT_FALSE(detected.has_value());
}

}  // namespace
}  // namespace sledzig::core
