// Tests for the dense-deployment fast path (DESIGN.md §15): the link
// cache, interference-graph pruning, segment-run delivery, the notify
// adjacency, and the multi-channel topology layer.
//
// The headline property is *exact equivalence*: with pruning inert (the
// default 30 dB floor never fires at office ranges) the fast path must
// reproduce the per-symbol reference path bit-for-bit — same digest, same
// event count — on every scenario shape we ship.  Active pruning is an
// approximation by construction, so it is validated statistically instead,
// with the engine's own cross-check armed.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>

#include "common/parallel.h"
#include "sim/engine.h"
#include "sim/event_queue.h"
#include "sim/link_cache.h"

namespace sledzig::sim {
namespace {

/// Runs a scenario with the fast path fully on (the default) or fully off
/// (per-symbol reference, no pruning) and returns the trace digest.
std::uint64_t digest_of(ScenarioConfig cfg, bool fast) {
  cfg.fastpath.segment_runs = fast;
  cfg.fastpath.prune = fast;
  return run_scenario(cfg).trace_digest;
}

void expect_fast_matches_reference(const ScenarioConfig& cfg,
                                   const char* context) {
  EXPECT_EQ(digest_of(cfg, true), digest_of(cfg, false)) << context;
}

TEST(FastPath, TwoNodePaperScenarioIsBitIdentical) {
  for (const bool sledzig_on : {false, true}) {
    for (const double duty : {1.0, 0.5}) {
      const auto cfg = two_node_paper_scenario(
          core::SledzigConfig{}, sledzig_on, duty, /*d_wz_m=*/4.0,
          /*d_z_m=*/1.0, /*duration_s=*/3.0, /*seed=*/17);
      expect_fast_matches_reference(
          cfg, sledzig_on ? "sledzig on" : "sledzig off");
    }
  }
}

TEST(FastPath, MultiNodeGridWithJammerAndFaultsIsBitIdentical) {
  ScenarioConfig cfg;
  cfg.duration_s = 2.0;
  cfg.seed = 23;
  for (int i = 0; i < 3; ++i) {
    WifiNodeConfig ap;
    ap.tx = {3.0 * i, 0.0};
    ap.rx = {3.0 * i, 2.0};
    ap.traffic = {TrafficKind::kDutyCycle, 0.0, 0.4};
    cfg.wifi.push_back(ap);
  }
  for (int j = 0; j < 3; ++j) {
    ZigbeeNodeConfig mote;
    mote.tx = {1.5 + 3.0 * j, 1.0};
    mote.rx = {1.5 + 3.0 * j, 1.5};
    cfg.zigbee.push_back(mote);
  }
  JammerConfig jam;
  jam.pos = {4.0, 4.0};
  jam.mean_on_us = 3000.0;
  jam.mean_off_us = 40000.0;
  cfg.faults.jammers.push_back(jam);
  cfg.faults.random.crash_rate_per_s = 0.5;
  cfg.faults.random.mean_downtime_us = 200000.0;
  expect_fast_matches_reference(cfg, "grid + jammer + crashes");
}

TEST(FastPath, CampusScenarioIsBitIdentical) {
  const auto cfg = campus_scenario(/*ap_grid_x=*/2, /*ap_grid_y=*/2,
                                   /*sensors_per_ap=*/3, /*spacing_m=*/20.0,
                                   /*duration_s=*/1.0, /*seed=*/31);
  // At 20 m spacing nothing reaches the default prune floor, so even with
  // pruning armed the fast path must be exact here.
  expect_fast_matches_reference(cfg, "campus 2x2x3");
}

TEST(FastPath, ReplicationDigestsAreThreadCountInvariant) {
  // The replication runner shares one link cache and reuses per-worker
  // workspaces; neither may leak state between runs or threads.
  const auto cfg = campus_scenario(2, 2, 2, 20.0, /*duration_s=*/0.5,
                                   /*seed=*/41);
  constexpr std::size_t kReps = 8;
  std::vector<std::vector<std::uint64_t>> digests;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    common::ThreadPool pool(threads);
    const auto runs = run_replications(pool, cfg, kReps);
    std::vector<std::uint64_t> d;
    for (const auto& r : runs) d.push_back(r.trace_digest);
    digests.push_back(std::move(d));
  }
  EXPECT_EQ(digests[0], digests[1]);
}

TEST(FastPath, ActivePruningMatchesReferenceStatistically) {
  // A WiFi duty source 600 m out: its mean power at the mote lands ~20 dB
  // under even a zeroed prune floor, so with prune_floor_db = 0 the link
  // is genuinely cut from the interference graph — while physically its
  // -110 dBm barely perturbs a -91 dBm noise floor.  Delivered rates with
  // and without pruning must agree to statistical noise.
  ScenarioConfig cfg;
  cfg.duration_s = 2.0;
  cfg.seed = 57;
  WifiNodeConfig ap;
  ap.tx = {600.0, 0.0};
  ap.rx = {600.0, 2.0};
  ap.traffic = {TrafficKind::kDutyCycle, 0.0, 0.8};
  cfg.wifi.push_back(ap);
  ZigbeeNodeConfig mote;
  mote.tx = {0.0, 0.0};
  mote.rx = {0.0, 0.5};
  cfg.zigbee.push_back(mote);
  cfg.fastpath.prune_floor_db = common::Db{};

  constexpr std::size_t kReps = 40;
  const auto mean_prr = [&](bool prune) {
    ScenarioConfig c = cfg;
    c.fastpath.prune = prune;
    c.fastpath.cross_check = prune;  // armed: a bad prune would throw
    const auto runs = run_replications(c, kReps);
    double sum = 0.0;
    for (const auto& r : runs) sum += r.zigbee[0].prr;
    return sum / static_cast<double>(kReps);
  };
  const double pruned = mean_prr(true);
  const double reference = mean_prr(false);
  EXPECT_GT(reference, 0.5);  // the link itself must be healthy
  EXPECT_NEAR(pruned, reference, 0.02);
}

TEST(FastPath, CrossChannelWifiCellsDoNotDefer) {
  // Two saturated BSSs 2 m apart: on one channel they share the medium
  // (airtime sum ~1); on channels 1 and 11 their bands are disjoint, the
  // links are structurally zero, and both fill their channel.
  const auto airtime_sum = [](unsigned ch_a, unsigned ch_b) {
    ScenarioConfig cfg;
    cfg.duration_s = 2.0;
    cfg.seed = 5;
    for (const unsigned ch : {ch_a, ch_b}) {
      WifiNodeConfig ap;
      ap.tx = {cfg.wifi.size() * 2.0, 0.0};
      ap.rx = {cfg.wifi.size() * 2.0, 1.0};
      ap.channel = ch;
      cfg.wifi.push_back(ap);
    }
    const auto r = run_scenario(cfg);
    return r.wifi[0].airtime_fraction + r.wifi[1].airtime_fraction;
  };
  EXPECT_LT(airtime_sum(6, 6), 1.2);
  EXPECT_GT(airtime_sum(1, 11), 1.5);
}

TEST(FastPath, OverlapChannelMappingMatchesThePaperLayout) {
  using core::OverlapChannel;
  EXPECT_EQ(overlapping_zigbee_channel(1, OverlapChannel::kCh1), 11u);
  EXPECT_EQ(overlapping_zigbee_channel(1, OverlapChannel::kCh4), 14u);
  EXPECT_EQ(overlapping_zigbee_channel(6, OverlapChannel::kCh1), 16u);
  EXPECT_EQ(overlapping_zigbee_channel(6, OverlapChannel::kCh4), 19u);
  EXPECT_EQ(overlapping_zigbee_channel(11, OverlapChannel::kCh1), 21u);
  EXPECT_EQ(overlapping_zigbee_channel(11, OverlapChannel::kCh4), 24u);
  // The legacy sentinel is channel 6.
  EXPECT_EQ(overlapping_zigbee_channel(0, OverlapChannel::kCh2), 17u);
}

TEST(FastPath, ChannelValidationRejectsOutOfRangeChannels) {
  ScenarioConfig cfg;
  cfg.wifi.push_back(WifiNodeConfig{});
  cfg.wifi[0].channel = 14;  // only 1..13 modelled (20 MHz plan)
  cfg.zigbee.push_back(ZigbeeNodeConfig{});
  cfg.zigbee[0].channel = 5;  // 802.15.4 2.4 GHz band starts at 11
  const auto errs = cfg.validate();
  ASSERT_EQ(errs.size(), 2u);
  EXPECT_EQ(errs[0].field, "wifi[0].channel");
  EXPECT_EQ(errs[1].field, "zigbee[0].channel");
}

TEST(FastPath, CampusGeneratorShapesAndValidates) {
  const auto cfg = campus_scenario(3, 2, 4, 25.0, 1.0, /*seed=*/7);
  EXPECT_EQ(cfg.wifi.size(), 6u);
  EXPECT_EQ(cfg.zigbee.size(), 24u);
  EXPECT_TRUE(cfg.validate().empty());
  for (const auto& ap : cfg.wifi) {
    EXPECT_TRUE(ap.channel == 1 || ap.channel == 6 || ap.channel == 11);
  }
  for (const auto& mote : cfg.zigbee) {
    EXPECT_GE(mote.channel, 11u);
    EXPECT_LE(mote.channel, 26u);
  }
}

TEST(FastPath, LinkCacheZeroesDisjointAndKeepsLegacyLinks) {
  ScenarioConfig cfg;
  cfg.duration_s = 1.0;
  WifiNodeConfig a;
  a.channel = 1;
  WifiNodeConfig b;
  b.tx = {2.0, 0.0};
  b.rx = {2.0, 1.0};
  b.channel = 11;
  cfg.wifi.push_back(a);
  cfg.wifi.push_back(b);
  const auto cache = LinkCache::build(cfg);
  // Disjoint bands: structurally silent both ways.
  EXPECT_EQ(cache->at(0, 1).state, LinkState::kZero);
  EXPECT_EQ(cache->at(1, 0).state, LinkState::kZero);
  // Own receive link: live (and never prunable).
  EXPECT_EQ(cache->at(2, 0).state, LinkState::kLive);
  EXPECT_EQ(cache->at(3, 1).state, LinkState::kLive);
}

TEST(FastPath, EventQueueStorageRecyclesWithoutLeakingState) {
  EventQueue q;
  q.push(3.0, EventType::kArrival, 1);
  q.push(1.0, EventType::kTimer, 2);
  q.push(2.0, EventType::kTxEnd, 3);
  EXPECT_EQ(q.pop().node, 2u);
  auto storage = q.release();
  EXPECT_TRUE(q.empty());

  EventQueue q2(std::move(storage));
  EXPECT_TRUE(q2.empty());  // recycled capacity, no recycled events
  q2.push(5.0, EventType::kArrival, 7);
  q2.push(4.0, EventType::kArrival, 8);
  EXPECT_EQ(q2.pop().node, 8u);
  EXPECT_EQ(q2.pop().node, 7u);
  EXPECT_TRUE(q2.empty());
}

}  // namespace
}  // namespace sledzig::sim
