// Tests for the WiFi timeline generator and the ZigBee CSMA/CA +
// symbol-error simulation.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "mac/wifi_timeline.h"
#include "mac/zigbee_csma.h"

namespace sledzig::mac {
namespace {

WifiMacParams default_wifi() {
  WifiMacParams p;
  p.airtime_us = 2500.0;
  return p;
}

TEST(WifiTimeline, SaturatedTrafficFillsChannel) {
  common::Rng rng(301);
  WifiTimeline tl(default_wifi(), 5e6, rng);
  EXPECT_GT(tl.busy_fraction(), 0.9);
  EXPECT_LT(tl.busy_fraction(), 1.0);
}

class DutyRatios : public ::testing::TestWithParam<double> {};

TEST_P(DutyRatios, BusyFractionTracksDutyRatio) {
  common::Rng rng(302);
  auto params = default_wifi();
  params.duty_ratio = GetParam();
  WifiTimeline tl(params, 20e6, rng);
  EXPECT_NEAR(tl.busy_fraction(), GetParam(), 0.06);
}

INSTANTIATE_TEST_SUITE_P(Sweep, DutyRatios,
                         ::testing::Values(0.2, 0.3, 0.5, 0.7, 0.9));

TEST(WifiTimeline, ZeroDutyRatioMeansSilence) {
  common::Rng rng(303);
  auto params = default_wifi();
  params.duty_ratio = 0.0;
  WifiTimeline tl(params, 1e6, rng);
  EXPECT_TRUE(tl.bursts().empty());
  EXPECT_FALSE(tl.busy_in(0, 1e6));
}

TEST(WifiTimeline, BurstsAreOrderedAndDisjoint) {
  common::Rng rng(304);
  auto params = default_wifi();
  params.duty_ratio = 0.6;
  WifiTimeline tl(params, 10e6, rng);
  ASSERT_GT(tl.bursts().size(), 100u);
  for (std::size_t i = 0; i < tl.bursts().size(); ++i) {
    const auto& b = tl.bursts()[i];
    EXPECT_LT(b.start_us, b.payload_start_us);
    EXPECT_LT(b.payload_start_us, b.end_us);
    if (i > 0) {
      EXPECT_GE(b.start_us, tl.bursts()[i - 1].end_us);
    }
  }
}

TEST(WifiTimeline, OverlapQueries) {
  common::Rng rng(305);
  WifiTimeline tl(default_wifi(), 2e6, rng);
  ASSERT_FALSE(tl.bursts().empty());
  const auto& b = tl.bursts()[0];
  EXPECT_TRUE(tl.busy_at((b.start_us + b.end_us) / 2));
  EXPECT_FALSE(tl.busy_at(b.start_us - 1.0));
  const auto [lo, hi] = tl.overlapping(b.start_us, b.end_us);
  EXPECT_EQ(hi - lo, 1u);
}

TEST(WifiTimeline, RejectsBadDutyRatio) {
  common::Rng rng(306);
  auto params = default_wifi();
  params.duty_ratio = 1.5;
  EXPECT_THROW(WifiTimeline(params, 1e6, rng), std::invalid_argument);
}

TEST(SymbolErrorModel, MonotoneInSinr) {
  SymbolErrorModel m;
  double prev = 1.0;
  for (double sinr = -20.0; sinr <= 20.0; sinr += 1.0) {
    const double p = m.symbol_error_prob(common::Db{sinr}, false);
    EXPECT_LE(p, prev);
    prev = p;
  }
  EXPECT_NEAR(m.symbol_error_prob(common::Db{-40.0}, false), 1.0, 1e-6);
  EXPECT_NEAR(m.symbol_error_prob(common::Db{40.0}, false), 0.0, 1e-6);
}

TEST(SymbolErrorModel, PreambleIsHarsherThanPayloadAtModerateSinr) {
  // In the -6..0 dB region (the paper's operating points) a preamble burst
  // is several times more damaging than payload interference; at deeply
  // negative SINR the payload (which covers the whole symbol) dominates
  // while the 16 us preamble caps out at preamble_max_error.
  SymbolErrorModel m;
  for (double sinr = -6.0; sinr <= 0.0; sinr += 1.0) {
    EXPECT_GT(m.symbol_error_prob(common::Db{sinr}, true),
              m.symbol_error_prob(common::Db{sinr}, false));
  }
  EXPECT_NEAR(m.symbol_error_prob(common::Db{-40.0}, true),
              m.preamble_max_error, 1e-6);
}

TEST(SymbolErrorModel, SensitivityCliff) {
  SymbolErrorModel m;
  EXPECT_GT(m.sensitivity_loss_prob(common::Dbm{-86.0}, common::Dbm{-85.0}),
            0.9);
  EXPECT_LT(m.sensitivity_loss_prob(common::Dbm{-84.0}, common::Dbm{-85.0}),
            0.1);
  EXPECT_NEAR(
      m.sensitivity_loss_prob(common::Dbm{-85.0}, common::Dbm{-85.0}), 0.5,
      1e-9);
}

ZigbeeLinkBudget quiet_budget() {
  ZigbeeLinkBudget b;
  b.signal_dbm = common::Dbm{-80.0};
  b.wifi_payload_inband_dbm = common::Dbm{-200.0};
  b.wifi_preamble_inband_dbm = common::Dbm{-200.0};
  return b;
}

TEST(ZigbeeCsma, InterferenceFreeThroughputNear63Kbps) {
  // The paper's standalone ZigBee throughput (section V-C1).
  common::Rng rng(307);
  auto params = default_wifi();
  params.duty_ratio = 0.0;
  WifiTimeline tl(params, 30e6, rng);
  const auto result = simulate_zigbee_link(tl, ZigbeeMacParams{},
                                           quiet_budget(), SymbolErrorModel{},
                                           rng);
  EXPECT_NEAR(result.throughput_kbps, 63.0, 4.0);
  EXPECT_EQ(result.packets_sent, result.packets_delivered);
}

TEST(ZigbeeCsma, StrongWifiBlocksChannelAccess) {
  // In-band power far above the CCA threshold + saturated WiFi: the ZigBee
  // node cannot win the channel (Fig 4(a) scenario).
  common::Rng rng(308);
  WifiTimeline tl(default_wifi(), 30e6, rng);
  auto budget = quiet_budget();
  budget.wifi_payload_inband_dbm = common::Dbm{-60.0};
  budget.wifi_preamble_inband_dbm = common::Dbm{-59.0};
  const auto result = simulate_zigbee_link(tl, ZigbeeMacParams{}, budget,
                                           SymbolErrorModel{}, rng);
  EXPECT_LT(result.throughput_kbps, 8.0);
  EXPECT_GT(result.packets_dropped_cca, result.packets_delivered);
}

TEST(ZigbeeCsma, WeakWifiBelowCcaAndSinrHarmless) {
  // WiFi audible but far below both CCA and harmful SINR.
  common::Rng rng(309);
  WifiTimeline tl(default_wifi(), 30e6, rng);
  auto budget = quiet_budget();
  budget.wifi_payload_inband_dbm = common::Dbm{-95.0};
  budget.wifi_preamble_inband_dbm = common::Dbm{-93.0};
  const auto result = simulate_zigbee_link(tl, ZigbeeMacParams{}, budget,
                                           SymbolErrorModel{}, rng);
  EXPECT_NEAR(result.throughput_kbps, 63.0, 4.0);
}

TEST(ZigbeeCsma, InterferenceKillsFramesWhenSinrLow) {
  // CCA clears (in-band just below -77) but the payload SINR is hopeless:
  // frames transmit and die (Fig 4(b) scenario).
  common::Rng rng(310);
  WifiTimeline tl(default_wifi(), 30e6, rng);
  auto budget = quiet_budget();
  budget.signal_dbm = common::Dbm{-85.0};
  budget.wifi_payload_inband_dbm = common::Dbm{-78.0};   // SINR ~ -7 dB
  budget.wifi_preamble_inband_dbm = common::Dbm{-78.0};
  const auto result = simulate_zigbee_link(tl, ZigbeeMacParams{}, budget,
                                           SymbolErrorModel{}, rng);
  EXPECT_GT(result.packets_sent, 100u);
  EXPECT_LT(result.throughput_kbps, 10.0);
}

TEST(ZigbeeCsma, DeterministicGivenSeed) {
  auto run = [] {
    common::Rng rng(311);
    WifiTimeline tl(default_wifi(), 10e6, rng);
    auto budget = quiet_budget();
    budget.wifi_payload_inband_dbm = common::Dbm{-80.0};
    return simulate_zigbee_link(tl, ZigbeeMacParams{}, budget,
                                SymbolErrorModel{}, rng);
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.packets_delivered, b.packets_delivered);
  EXPECT_EQ(a.throughput_kbps, b.throughput_kbps);
}

TEST(ZigbeeCsma, DutyRatioGapsEnableDelivery) {
  // Strong in-band WiFi but only 30% duty: frames squeeze into the gaps.
  common::Rng rng(312);
  auto params = default_wifi();
  params.duty_ratio = 0.3;
  WifiTimeline tl(params, 30e6, rng);
  auto budget = quiet_budget();
  budget.signal_dbm = common::Dbm{-75.0};
  budget.wifi_payload_inband_dbm = common::Dbm{-65.0};
  budget.wifi_preamble_inband_dbm = common::Dbm{-63.0};
  const auto result = simulate_zigbee_link(tl, ZigbeeMacParams{}, budget,
                                           SymbolErrorModel{}, rng);
  EXPECT_GT(result.throughput_kbps, 10.0);
  EXPECT_LT(result.throughput_kbps, 60.0);
}

TEST(ZigbeeCsma, FrameAirtimeMatchesPhy) {
  EXPECT_NEAR(zigbee_frame_airtime_us(100), 3456.0, 1e-9);
}

// --- event-driven machines (the src/sim promotion) ---

TEST(ZigbeeCsmaMachine, InitialBackoffExponentIsMacMinBE) {
  ZigbeeMacParams p;  // min_be 3, max_be 5
  ZigbeeCsmaMachine m(p, 42);
  const auto step = m.frame_ready(0.0);
  EXPECT_EQ(step.kind, ZigbeeCsmaMachine::Step::Kind::kCcaEndAt);
  EXPECT_EQ(m.backoff_exponent(), 3u);
  // First CCA ends within [cca, (2^3 - 1) * backoff + cca].
  EXPECT_GE(step.at, p.cca_us);
  EXPECT_LE(step.at, 7.0 * p.backoff_period_us + p.cca_us);
}

TEST(ZigbeeCsmaMachine, BackoffExponentClampsToMacMaxBE) {
  ZigbeeMacParams p;
  p.max_backoffs = 10;  // enough busy rounds to hit the ceiling
  ZigbeeCsmaMachine m(p, 43);
  double t = 0.0;
  auto step = m.frame_ready(t);
  // BE sequence on busy CCAs: 3, 4, 5, 5, 5, ... (clamped, never 6).
  for (unsigned round = 0; round < 6; ++round) {
    t = step.at;
    step = m.cca_result(t, /*busy=*/true);
    ASSERT_EQ(step.kind, ZigbeeCsmaMachine::Step::Kind::kCcaEndAt);
    EXPECT_EQ(m.backoff_exponent(), std::min(3u + round + 1, 5u));
  }
}

TEST(ZigbeeCsmaMachine, MisconfiguredMinBEAboveMaxBEClampsDown) {
  // 802.15.4 6.2.5.1: BE lives in [macMinBE, macMaxBE]; a config with
  // macMinBE > macMaxBE must not start above the ceiling.
  ZigbeeMacParams p;
  p.min_be = 7;
  p.max_be = 5;
  ZigbeeCsmaMachine m(p, 44);
  const auto step = m.frame_ready(0.0);
  EXPECT_EQ(step.kind, ZigbeeCsmaMachine::Step::Kind::kCcaEndAt);
  EXPECT_EQ(m.backoff_exponent(), 5u);
  m.cca_result(step.at, /*busy=*/true);
  EXPECT_EQ(m.backoff_exponent(), 5u);
}

TEST(ZigbeeCsmaMachine, DropsAfterExactlyMaxBackoffsPlusOneBusyCcas) {
  ZigbeeMacParams p;  // max_backoffs 4
  ZigbeeCsmaMachine m(p, 45);
  double t = 0.0;
  auto step = m.frame_ready(t);
  // Busy CCAs 1..4 keep retrying; the 5th (== macMaxCSMABackoffs + 1)
  // declares channel-access failure.
  for (unsigned cca = 1; cca <= p.max_backoffs; ++cca) {
    t = step.at;
    step = m.cca_result(t, /*busy=*/true);
    ASSERT_EQ(step.kind, ZigbeeCsmaMachine::Step::Kind::kCcaEndAt)
        << "busy CCA " << cca;
  }
  step = m.cca_result(step.at, /*busy=*/true);
  EXPECT_EQ(step.kind, ZigbeeCsmaMachine::Step::Kind::kDropCca);
  EXPECT_EQ(m.awaiting(), ZigbeeCsmaMachine::Awaiting::kNone);
}

TEST(ZigbeeCsmaMachine, ZeroMaxBackoffsDropsOnFirstBusyCca) {
  ZigbeeMacParams p;
  p.max_backoffs = 0;
  ZigbeeCsmaMachine m(p, 46);
  const auto cca = m.frame_ready(0.0);
  const auto step = m.cca_result(cca.at, /*busy=*/true);
  EXPECT_EQ(step.kind, ZigbeeCsmaMachine::Step::Kind::kDropCca);
}

TEST(ZigbeeCsmaMachine, ClearCcaLeadsToTurnaroundThenTx) {
  ZigbeeMacParams p;
  ZigbeeCsmaMachine m(p, 47);
  const auto cca = m.frame_ready(0.0);
  const auto step = m.cca_result(cca.at, /*busy=*/false);
  ASSERT_EQ(step.kind, ZigbeeCsmaMachine::Step::Kind::kTxStartAt);
  EXPECT_DOUBLE_EQ(step.at, cca.at + p.turnaround_us);
  EXPECT_EQ(m.awaiting(), ZigbeeCsmaMachine::Awaiting::kTxStart);
  m.tx_started();
  const auto done = m.tx_done(step.at + 1856.0, /*delivered=*/true);
  EXPECT_EQ(done.kind, ZigbeeCsmaMachine::Step::Kind::kNone);
}

TEST(ZigbeeCsmaMachine, LostFrameRetriesThroughFreshCsma) {
  ZigbeeMacParams p;
  p.max_frame_retries = 2;
  ZigbeeCsmaMachine m(p, 48);
  auto step = m.frame_ready(0.0);
  step = m.cca_result(step.at, false);
  m.tx_started();
  // Loss 1 and 2 re-enter CSMA (with NB and BE reset); loss 3 gives up.
  step = m.tx_done(step.at + 1856.0, /*delivered=*/false);
  ASSERT_EQ(step.kind, ZigbeeCsmaMachine::Step::Kind::kCcaEndAt);
  EXPECT_EQ(m.backoff_exponent(), 3u);
  EXPECT_EQ(m.retries_left(), 1u);
  step = m.cca_result(step.at, false);
  m.tx_started();
  step = m.tx_done(step.at + 1856.0, false);
  ASSERT_EQ(step.kind, ZigbeeCsmaMachine::Step::Kind::kCcaEndAt);
  step = m.cca_result(step.at, false);
  m.tx_started();
  step = m.tx_done(step.at + 1856.0, false);
  EXPECT_EQ(step.kind, ZigbeeCsmaMachine::Step::Kind::kNone);
}

WifiCsmaMachine wifi_machine_with_slots(unsigned min_slots,
                                        const WifiMacParams& p) {
  // Seed-hunt for a first backoff draw with at least `min_slots` slots —
  // deterministic, and keeps the tests independent of the RNG mapping.
  for (std::uint64_t seed = 1;; ++seed) {
    WifiCsmaMachine m(p, seed);
    if (m.frame_ready(0.0, false).kind == WifiCsmaMachine::Step::Kind::kTimerAt &&
        m.slots_left() >= min_slots) {
      return m;
    }
  }
}

TEST(WifiCsmaMachine, IdleMediumArmsDifsPlusBackoffTimer) {
  WifiMacParams p;
  WifiCsmaMachine fresh(p, 1);
  const auto step = fresh.frame_ready(0.0, false);
  ASSERT_EQ(step.kind, WifiCsmaMachine::Step::Kind::kTimerAt);
  EXPECT_DOUBLE_EQ(step.at,
                   p.difs_us + p.slot_us * static_cast<double>(fresh.slots_left()));
  EXPECT_EQ(fresh.timer_fired(step.at).kind,
            WifiCsmaMachine::Step::Kind::kTransmit);
}

TEST(WifiCsmaMachine, FreezeKeepsUnconsumedSlots) {
  WifiMacParams p;  // difs 28, slot 9
  WifiCsmaMachine m = wifi_machine_with_slots(3, p);
  const unsigned s0 = m.slots_left();
  // Medium turns busy 1.5 slots into the countdown: exactly 1 whole slot
  // was consumed; the partial slot and the DIFS are repeated on resume.
  const double busy_at = p.difs_us + 1.5 * p.slot_us;
  EXPECT_EQ(m.medium_busy(busy_at).kind, WifiCsmaMachine::Step::Kind::kNone);
  EXPECT_EQ(m.slots_left(), s0 - 1);
  const auto resume = m.medium_idle(5000.0);
  ASSERT_EQ(resume.kind, WifiCsmaMachine::Step::Kind::kTimerAt);
  EXPECT_DOUBLE_EQ(resume.at,
                   5000.0 + p.difs_us + p.slot_us * static_cast<double>(s0 - 1));
}

TEST(WifiCsmaMachine, BusyDuringDifsConsumesNoSlots) {
  WifiMacParams p;
  WifiCsmaMachine m = wifi_machine_with_slots(2, p);
  const unsigned s0 = m.slots_left();
  m.medium_busy(p.difs_us / 2.0);
  EXPECT_EQ(m.slots_left(), s0);
}

TEST(WifiCsmaMachine, SameSlotNotificationCollidesInsteadOfDeferring) {
  // Another node's transmission starting exactly when this countdown
  // completes means both picked the same slot: this node transmits too.
  WifiMacParams p;
  WifiCsmaMachine m = wifi_machine_with_slots(1, p);
  const double defer_until =
      p.difs_us + p.slot_us * static_cast<double>(m.slots_left());
  EXPECT_EQ(m.medium_busy(defer_until).kind,
            WifiCsmaMachine::Step::Kind::kTransmit);
}

TEST(WifiCsmaMachine, IdleNotificationMidCountdownRearmsSameDeadline) {
  // An inaudible transmission ending elsewhere must not disturb a running
  // countdown — but the engine invalidates timers on every notification,
  // so the machine re-arms the same deadline.
  WifiMacParams p;
  WifiCsmaMachine m = wifi_machine_with_slots(2, p);
  const double defer_until =
      p.difs_us + p.slot_us * static_cast<double>(m.slots_left());
  const auto rearm = m.medium_idle(defer_until / 2.0);
  ASSERT_EQ(rearm.kind, WifiCsmaMachine::Step::Kind::kTimerAt);
  EXPECT_DOUBLE_EQ(rearm.at, defer_until);
  EXPECT_EQ(m.timer_fired(rearm.at).kind,
            WifiCsmaMachine::Step::Kind::kTransmit);
}

TEST(ZigbeeCsmaMachine, RetryWaitsOutTheFullAckTimeout) {
  // 802.15.4 6.4.3: the retry's CSMA round begins only after
  // macAckWaitDuration expires.  Two machines with the same seed draw the
  // same backoff slots, so the retry CCA deadlines differ by exactly the
  // ack_wait delta.
  ZigbeeMacParams p1;
  p1.max_frame_retries = 1;
  ZigbeeMacParams p2 = p1;
  p2.ack_wait_us = 3000.0;
  ZigbeeCsmaMachine m1(p1, 91);
  ZigbeeCsmaMachine m2(p2, 91);
  auto s1 = m1.frame_ready(0.0);
  auto s2 = m2.frame_ready(0.0);
  ASSERT_DOUBLE_EQ(s1.at, s2.at);
  s1 = m1.cca_result(s1.at, false);
  s2 = m2.cca_result(s2.at, false);
  m1.tx_started();
  m2.tx_started();
  s1 = m1.tx_done(s1.at + 1856.0, /*delivered=*/false);
  s2 = m2.tx_done(s2.at + 1856.0, /*delivered=*/false);
  ASSERT_EQ(s1.kind, ZigbeeCsmaMachine::Step::Kind::kCcaEndAt);
  ASSERT_EQ(s2.kind, ZigbeeCsmaMachine::Step::Kind::kCcaEndAt);
  EXPECT_DOUBLE_EQ(s2.at - s1.at, p2.ack_wait_us - p1.ack_wait_us);
  EXPECT_GE(s1.at, p1.ack_wait_us + p1.cca_us);
}

TEST(ZigbeeCsmaMachine, LostFrameWithRetriesInHandIsNeverTerminal) {
  // Regression: a lost ACK used to count terminal even with
  // macMaxFrameRetries remaining.  For every retry budget, a frame must
  // survive exactly `retries` losses before tx_done finally returns kNone.
  for (unsigned retries = 0; retries <= 4; ++retries) {
    ZigbeeMacParams p;
    p.max_frame_retries = retries;
    ZigbeeCsmaMachine m(p, 92);
    auto step = m.frame_ready(0.0);
    unsigned losses = 0;
    for (;;) {
      ASSERT_EQ(step.kind, ZigbeeCsmaMachine::Step::Kind::kCcaEndAt);
      step = m.cca_result(step.at, false);
      ASSERT_EQ(step.kind, ZigbeeCsmaMachine::Step::Kind::kTxStartAt);
      m.tx_started();
      step = m.tx_done(step.at + 1856.0, /*delivered=*/false);
      if (step.kind == ZigbeeCsmaMachine::Step::Kind::kNone) break;
      ASSERT_LE(++losses, retries) << "machine retried past its budget";
    }
    EXPECT_EQ(losses, retries) << "a loss with retries in hand was terminal";
    EXPECT_EQ(m.retries_left(), 0u);
  }
}

TEST(ZigbeeCsmaMachine, ResetDropsProtocolStateAndRetryBudget) {
  ZigbeeMacParams p;
  p.max_frame_retries = 2;
  ZigbeeCsmaMachine m(p, 93);
  auto step = m.frame_ready(0.0);
  step = m.cca_result(step.at, false);
  m.tx_started();
  step = m.tx_done(step.at + 1856.0, false);  // one retry consumed
  ASSERT_EQ(m.retries_left(), 1u);
  ASSERT_EQ(m.awaiting(), ZigbeeCsmaMachine::Awaiting::kCca);
  m.reset();
  EXPECT_EQ(m.awaiting(), ZigbeeCsmaMachine::Awaiting::kNone);
  EXPECT_EQ(m.backoffs(), 0u);
  EXPECT_EQ(m.retries_left(), 0u);
  // The next frame gets a full, fresh retry budget.
  step = m.frame_ready(10000.0);
  EXPECT_EQ(step.kind, ZigbeeCsmaMachine::Step::Kind::kCcaEndAt);
  EXPECT_EQ(m.retries_left(), 2u);
}

TEST(ZigbeeCsmaMachine, ResetDoesNotRewindTheBackoffRng) {
  // A rebooted node must not replay its pre-crash draws.  Hunt for a seed
  // whose first two backoff draws differ, then check that draw #2 after a
  // reset matches a twin machine's draw #2 — not draw #1 again.
  ZigbeeMacParams p;
  for (std::uint64_t seed = 1;; ++seed) {
    ZigbeeCsmaMachine twin(p, seed);
    const auto d1 = twin.frame_ready(0.0);
    const auto d2 = twin.frame_ready(0.0);
    if (d1.at == d2.at) continue;
    ZigbeeCsmaMachine m(p, seed);
    ASSERT_DOUBLE_EQ(m.frame_ready(0.0).at, d1.at);
    m.reset();
    EXPECT_DOUBLE_EQ(m.frame_ready(0.0).at, d2.at)
        << "reset rewound the RNG to the pre-crash stream";
    break;
  }
}

TEST(WifiCsmaMachine, ResetReturnsToIdleDiscardingFrozenCountdown) {
  WifiMacParams p;
  WifiCsmaMachine m = wifi_machine_with_slots(2, p);
  m.medium_busy(p.difs_us + 1.5 * p.slot_us);  // freeze mid-countdown
  ASSERT_GT(m.slots_left(), 0u);
  m.reset();
  EXPECT_TRUE(m.idle());
  EXPECT_EQ(m.slots_left(), 0u);
  // The machine accepts a fresh frame as if the crash never happened.
  const auto step = m.frame_ready(9000.0, /*medium_busy_now=*/false);
  EXPECT_EQ(step.kind, WifiCsmaMachine::Step::Kind::kTimerAt);
  EXPECT_GE(step.at, 9000.0 + p.difs_us);
}

TEST(ZigbeeCsma, LegacyLinkHonoursFrameRetries) {
  // Same lossy-SINR geometry as InterferenceKillsFramesWhenSinrLow: CCA
  // clears but roughly half the fully-overlapped attempts die.  With
  // retries each frame gets up to four attempts, so the per-frame delivery
  // ratio must rise and retransmissions must appear in packets_sent.
  auto budget = quiet_budget();
  budget.signal_dbm = common::Dbm{-85.0};
  budget.wifi_payload_inband_dbm = common::Dbm{-78.0};
  budget.wifi_preamble_inband_dbm = common::Dbm{-78.0};
  const auto run = [&](unsigned retries) {
    common::Rng rng(313);
    WifiTimeline tl(default_wifi(), 30e6, rng);
    ZigbeeMacParams mac;
    mac.max_frame_retries = retries;
    return simulate_zigbee_link(tl, mac, budget, SymbolErrorModel{}, rng);
  };
  const auto none = run(0);
  const auto three = run(3);
  ASSERT_GT(none.packets_attempted, 100u);
  ASSERT_GT(three.packets_attempted, 100u);
  // Retransmissions happened: without retries, packets_sent can never
  // exceed one TX per frame; with them it must.
  EXPECT_LE(none.packets_sent,
            none.packets_attempted - none.packets_dropped_cca);
  EXPECT_GT(three.packets_sent,
            three.packets_attempted - three.packets_dropped_cca);
  const double prr_none = static_cast<double>(none.packets_delivered) /
                          static_cast<double>(none.packets_attempted);
  const double prr_three = static_cast<double>(three.packets_delivered) /
                           static_cast<double>(three.packets_attempted);
  EXPECT_GT(prr_three, prr_none * 1.2)
      << "retries did not raise per-frame delivery";
}

TEST(WifiCsmaMachine, WaitsWhenMediumBusyAtFrameReady) {
  WifiMacParams p;
  WifiCsmaMachine m(p, 7);
  EXPECT_EQ(m.frame_ready(0.0, true).kind, WifiCsmaMachine::Step::Kind::kNone);
  const auto resume = m.medium_idle(100.0);
  EXPECT_EQ(resume.kind, WifiCsmaMachine::Step::Kind::kTimerAt);
  EXPECT_GE(resume.at, 100.0 + p.difs_us);
}

}  // namespace
}  // namespace sledzig::mac
