// Tests for the observability layer (src/obs): registry semantics, trace
// rendering, profiling hooks — and the two contracts the rest of the repo
// leans on: golden metrics are exact and run-stable, and attaching any obs
// sink never perturbs a digest-checked result.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "sim/engine.h"

namespace sledzig::obs {
namespace {

TEST(Metrics, CounterGaugeHistogramBasics) {
  if (!kEnabled) GTEST_SKIP() << "obs compiled out";
  Registry reg;
  auto c = reg.counter("c");
  c.inc();
  c.add(41);
  auto g = reg.gauge("g");
  g.record(2.5);
  g.record(7.0);
  g.record(3.0);  // high-water: the max survives
  constexpr double kBounds[] = {1.0, 10.0, 100.0};
  auto h = reg.histogram("h", kBounds);
  h.observe(0.5);    // bucket 0 (<= 1)
  h.observe(10.0);   // bucket 1 (<= 10, inclusive upper bound)
  h.observe(50.0);   // bucket 2
  h.observe(1e9);    // overflow bucket
  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.counter("c"), 42u);
  EXPECT_DOUBLE_EQ(snap.gauge("g"), 7.0);
  const auto* hd = snap.histogram("h");
  ASSERT_NE(hd, nullptr);
  ASSERT_EQ(hd->counts.size(), 4u);  // 3 bounds + overflow
  EXPECT_EQ(hd->counts[0], 1u);
  EXPECT_EQ(hd->counts[1], 1u);
  EXPECT_EQ(hd->counts[2], 1u);
  EXPECT_EQ(hd->counts[3], 1u);
  EXPECT_EQ(hd->total, 4u);
  // Never-registered names read as zero/null, not as errors.
  EXPECT_EQ(snap.counter("missing"), 0u);
  EXPECT_EQ(snap.histogram("missing"), nullptr);
}

TEST(Metrics, SameNameSharesTheMetricAndBoundsMustMatch) {
  if (!kEnabled) GTEST_SKIP() << "obs compiled out";
  Registry reg;
  auto a = reg.counter("shared");
  auto b = reg.counter("shared");
  a.inc();
  b.inc();
  EXPECT_EQ(reg.snapshot().counter("shared"), 2u);
  constexpr double kBounds[] = {1.0, 2.0};
  (void)reg.histogram("hist", kBounds);
  constexpr double kOther[] = {1.0, 3.0};
  EXPECT_THROW((void)reg.histogram("hist", kOther), std::invalid_argument);
}

TEST(Metrics, ParallelWritesSumExactlyForAnyThreadCount) {
  if (!kEnabled) GTEST_SKIP() << "obs compiled out";
  // The sharded cells must aggregate to the same exact integers whether one
  // thread did all the work or many shared it.
  constexpr std::size_t kItems = 10000;
  std::vector<std::string> jsons;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    Registry reg;
    auto c = reg.counter("work.items");
    constexpr double kBounds[] = {100.0, 1000.0, 5000.0};
    auto h = reg.histogram("work.index", kBounds);
    common::ThreadPool pool(threads);
    pool.for_each_index(kItems, [&](std::size_t i) {
      c.inc();
      h.observe(static_cast<double>(i));
    });
    const auto snap = reg.snapshot();
    EXPECT_EQ(snap.counter("work.items"), kItems);
    jsons.push_back(snap.to_json());
  }
  EXPECT_EQ(jsons[0], jsons[1]);
}

TEST(Metrics, ResetZeroesEverything) {
  if (!kEnabled) GTEST_SKIP() << "obs compiled out";
  Registry reg;
  reg.counter("c").add(5);
  constexpr double kBounds[] = {1.0};
  reg.histogram("h", kBounds).observe(0.5);
  reg.reset();
  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.counter("c"), 0u);
  const auto* hd = snap.histogram("h");
  ASSERT_NE(hd, nullptr);
  EXPECT_EQ(hd->total, 0u);
}

TEST(Trace, ChromeJsonCarriesTracksSpansAndInstants) {
  if (!kEnabled) GTEST_SKIP() << "obs compiled out";
  TraceLog log;
  log.set_track_name(0, "wifi0");
  log.complete("tx", 0, 100, 250);
  log.instant("delivered", 0, 250);
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log.events()[0].phase, 'X');
  EXPECT_EQ(log.events()[0].dur_us, 150u);
  EXPECT_EQ(log.events()[1].phase, 'i');
  const std::string json = log.chrome_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("thread_name"), std::string::npos);
  EXPECT_NE(json.find("wifi0"), std::string::npos);
  std::ostringstream jsonl;
  log.write_jsonl(jsonl);
  const std::string lines = jsonl.str();
  EXPECT_EQ(std::count(lines.begin(), lines.end(), '\n'), 2);
}

TEST(Profile, ScopeAndReportAreSafeWhereverEnabled) {
  // Must be callable in every build mode; the report is empty or textual,
  // never a crash.  (Wall-clock values are unasserted by design.)
  {
    SLEDZIG_PROF_SCOPE("obs_test.scope");
  }
  std::ostringstream report;
  profile_report(report);
  SUCCEED() << report.str().size();
}

/// The repo's reference scenario (Fig 4 geometry), short horizon.
sim::ScenarioConfig paper_scenario() {
  return sim::two_node_paper_scenario(core::SledzigConfig{}, true,
                                      /*wifi_duty_ratio=*/1.0, /*d_wz_m=*/4.0,
                                      /*d_z_m=*/1.0, /*duration_s=*/1.0,
                                      /*seed=*/11);
}

TEST(GoldenMetrics, TwoNodeScenarioCountersMatchNodeStatsExactly) {
  if (!kEnabled) GTEST_SKIP() << "obs compiled out";
  Registry reg;
  auto cfg = paper_scenario();
  cfg.metrics = &reg;
  const auto r = sim::run_scenario(cfg);
  const auto snap = reg.snapshot();

  sim::NodeStats sum;
  for (const auto* side : {&r.wifi, &r.zigbee}) {
    for (const auto& n : *side) {
      sum.generated += n.generated;
      sum.delivered += n.delivered;
      sum.queue_dropped += n.queue_dropped;
      sum.cca_dropped += n.cca_dropped;
      sum.retry_exhausted += n.retry_exhausted;
      sum.in_flight_at_end += n.in_flight_at_end;
      sum.sent += n.sent;
      sum.retries += n.retries;
    }
  }
  EXPECT_EQ(snap.counter("sim.runs"), 1u);
  EXPECT_EQ(snap.counter("sim.events"), r.events_processed);
  EXPECT_EQ(snap.counter("sim.frames.generated"), sum.generated);
  EXPECT_EQ(snap.counter("sim.frames.delivered"), sum.delivered);
  EXPECT_EQ(snap.counter("sim.frames.queue_dropped"), sum.queue_dropped);
  EXPECT_EQ(snap.counter("sim.frames.cca_dropped"), sum.cca_dropped);
  EXPECT_EQ(snap.counter("sim.frames.retry_exhausted"), sum.retry_exhausted);
  EXPECT_EQ(snap.counter("sim.frames.in_flight_at_end"),
            sum.in_flight_at_end);
  EXPECT_EQ(snap.counter("sim.tx.attempts"), sum.sent);
  EXPECT_EQ(snap.counter("sim.tx.retries"), sum.retries);
  // The flushed counters obey the same conservation identity as NodeStats.
  EXPECT_EQ(snap.counter("sim.frames.generated"),
            snap.counter("sim.frames.delivered") +
                snap.counter("sim.frames.queue_dropped") +
                snap.counter("sim.frames.cca_dropped") +
                snap.counter("sim.frames.retry_exhausted") +
                snap.counter("sim.frames.in_flight_at_end"));
}

TEST(GoldenMetrics, SnapshotJsonIsBitIdenticalAcrossRunsAndThreadCounts) {
  if (!kEnabled) GTEST_SKIP() << "obs compiled out";
  // Same scenario, same seed: every run must flush the same exact integers
  // regardless of the replication pool width.
  std::vector<std::string> jsons;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    Registry reg;
    auto cfg = paper_scenario();
    cfg.metrics = &reg;
    common::ThreadPool pool(threads);
    (void)sim::run_replications(pool, cfg, 6);
    jsons.push_back(reg.snapshot().to_json());
  }
  ASSERT_EQ(jsons.size(), 2u);
  EXPECT_EQ(jsons[0], jsons[1]);
  EXPECT_NE(jsons[0].find("sim.frames.generated"), std::string::npos);
}

TEST(DigestInvariance, ObsSinksNeverPerturbTheTraceDigest) {
  // The PR-2 determinism contract: trace digests are a pure function of
  // (config, seed).  Attaching metrics, detaching them, or recording spans
  // must leave the digest bit-identical.
  auto detached = paper_scenario();
  detached.metrics = nullptr;
  const auto base = sim::run_scenario(detached);

  Registry reg;
  auto with_metrics = paper_scenario();
  with_metrics.metrics = &reg;
  const auto metered = sim::run_scenario(with_metrics);

  TraceLog spans;
  auto with_spans = paper_scenario();
  with_spans.metrics = &reg;
  with_spans.span_log = &spans;
  const auto spanned = sim::run_scenario(with_spans);

  EXPECT_EQ(metered.trace_digest, base.trace_digest);
  EXPECT_EQ(spanned.trace_digest, base.trace_digest);
  EXPECT_EQ(metered.events_processed, base.events_processed);
  EXPECT_EQ(spanned.events_processed, base.events_processed);
  if (kEnabled) {
    // The span log actually recorded the run (in virtual time).
    EXPECT_GT(spans.size(), 0u);
    for (const auto& e : spans.events()) {
      EXPECT_LE(e.ts_us, 1'100'000u) << e.name;  // horizon + tail tx
    }
  }
}

}  // namespace
}  // namespace sledzig::obs
