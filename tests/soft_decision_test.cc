// Tests for the soft-decision (LLR) receive path.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/units.h"
#include "wifi/convolutional.h"
#include "wifi/qam.h"
#include "wifi/receiver.h"
#include "wifi/transmitter.h"

namespace sledzig::wifi {
namespace {

TEST(SoftDemap, SignsMatchHardDecisionsOnCleanPoints) {
  common::Rng rng(1001);
  for (auto m : {Modulation::kBpsk, Modulation::kQpsk, Modulation::kQam16,
                 Modulation::kQam64, Modulation::kQam256}) {
    const auto bits = rng.bits(bits_per_subcarrier(m) * 16);
    const auto points = qam_map(bits, m);
    const auto llrs = qam_demap_soft(points, m);
    ASSERT_EQ(llrs.size(), bits.size());
    for (std::size_t i = 0; i < bits.size(); ++i) {
      EXPECT_EQ(llrs[i] > 0.0, bits[i] == 1)
          << to_string(m) << " bit " << i;
      EXPECT_GT(std::abs(llrs[i]), 1e-6);
    }
  }
}

TEST(SoftDemap, ConfidenceScalesWithDistance) {
  // A point near a decision boundary yields a smaller |LLR| than a point
  // deep inside a decision region.
  const double k = 1.0 / std::sqrt(10.0);
  const auto mid = qam_demap_soft(common::Cplx(0.05 * k, k), Modulation::kQam16);
  const auto deep = qam_demap_soft(common::Cplx(3 * k, k), Modulation::kQam16);
  // Bit 0 is the I-axis sign-ish bit: much more confident for the deep point.
  EXPECT_GT(std::abs(deep[0]), 5.0 * std::abs(mid[0]));
}

TEST(SoftViterbi, MatchesHardOnCleanStream) {
  common::Rng rng(1002);
  common::Bits in = rng.bits(300);
  for (std::size_t i = 0; i < kTailBits; ++i) in.push_back(0);
  const auto coded = convolutional_encode(in);
  std::vector<double> llrs(coded.size());
  for (std::size_t i = 0; i < coded.size(); ++i) {
    llrs[i] = coded[i] ? 4.0 : -4.0;
  }
  EXPECT_EQ(viterbi_decode_soft(llrs), in);
}

TEST(SoftViterbi, ExploitsConfidence) {
  // Flip a low-confidence bit and keep a conflicting high-confidence one:
  // the decoder should trust the confident bits.
  common::Rng rng(1003);
  common::Bits in = rng.bits(120);
  for (std::size_t i = 0; i < kTailBits; ++i) in.push_back(0);
  const auto coded = convolutional_encode(in);
  std::vector<double> llrs(coded.size());
  for (std::size_t i = 0; i < coded.size(); ++i) {
    llrs[i] = coded[i] ? 4.0 : -4.0;
  }
  // Inject weak wrong values at scattered positions.
  for (std::size_t pos = 11; pos < llrs.size(); pos += 37) {
    llrs[pos] = coded[pos] ? -0.4 : 0.4;  // wrong sign, low confidence
  }
  EXPECT_EQ(viterbi_decode_soft(llrs), in);
}

TEST(SoftViterbi, ZeroLlrIsErasure) {
  common::Rng rng(1004);
  common::Bits in = rng.bits(200);
  for (std::size_t i = 0; i < kTailBits; ++i) in.push_back(0);
  const auto coded = convolutional_encode(in);
  std::vector<double> llrs(coded.size());
  for (std::size_t i = 0; i < coded.size(); ++i) {
    llrs[i] = coded[i] ? 3.0 : -3.0;
  }
  // Erase every 4th value (like rate-3/4 puncturing).
  for (std::size_t i = 3; i < llrs.size(); i += 4) llrs[i] = 0.0;
  EXPECT_EQ(viterbi_decode_soft(llrs), in);
}

TEST(SoftDecision, BeatsHardAtMarginalSnr) {
  // At 1 dB below the paper threshold the soft receiver should deliver
  // more packets than the hard receiver.
  common::Rng rng(1005);
  int soft_ok = 0, hard_ok = 0;
  const int trials = 8;
  for (int t = 0; t < trials; ++t) {
    const auto psdu = rng.bytes(200);
    WifiTxConfig tx;
    tx.modulation = Modulation::kQam64;
    tx.rate = CodingRate::kR23;
    auto packet = wifi_transmit(psdu, tx);
    const double noise = common::db_to_linear(-17.0);
    for (auto& s : packet.samples) s += rng.complex_gaussian(noise);
    WifiRxConfig soft_cfg, hard_cfg;
    hard_cfg.soft_decision = false;
    if (wifi_receive(packet.samples, soft_cfg).psdu == psdu) ++soft_ok;
    if (wifi_receive(packet.samples, hard_cfg).psdu == psdu) ++hard_ok;
  }
  EXPECT_GT(soft_ok, hard_ok);
  EXPECT_GE(soft_ok, trials - 2);
}

TEST(SoftDecision, FortyMhzPathAlsoSoft) {
  common::Rng rng(1006);
  const auto psdu = rng.bytes(150);
  WifiTxConfig tx;
  tx.modulation = Modulation::kQam64;
  tx.rate = CodingRate::kR34;
  tx.width = ChannelWidth::k40MHz;
  auto packet = wifi_transmit(psdu, tx);
  const double noise = common::db_to_linear(-22.0);
  for (auto& s : packet.samples) s += rng.complex_gaussian(noise);
  WifiRxConfig rx;
  rx.width = ChannelWidth::k40MHz;
  EXPECT_EQ(wifi_receive(packet.samples, rx).psdu, psdu);
}

}  // namespace
}  // namespace sledzig::wifi
