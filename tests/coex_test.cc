// Integration tests for the coexistence experiment harness: link budgets,
// PHY-measured in-band offsets and end-to-end scenario behaviour.
#include <gtest/gtest.h>

#include "coex/experiment.h"
#include "sledzig/power_analysis.h"

namespace sledzig::coex {
namespace {

using core::OverlapChannel;
using wifi::CodingRate;
using wifi::Modulation;

core::SledzigConfig cfg(Modulation m, CodingRate r, OverlapChannel ch) {
  core::SledzigConfig c;
  c.modulation = m;
  c.rate = r;
  c.channel = ch;
  return c;
}

TEST(Inband, SledzigReducesPayloadNotPreamble) {
  for (auto ch : {OverlapChannel::kCh2, OverlapChannel::kCh4}) {
    const auto c = cfg(Modulation::kQam64, CodingRate::kR23, ch);
    const auto normal = measure_inband_offsets(c, false);
    const auto sled = measure_inband_offsets(c, true);
    EXPECT_LT(sled.payload_offset_db.value(), normal.payload_offset_db.value() - 4.0)
        << to_string(ch);
    EXPECT_NEAR(sled.preamble_offset_db.value(), normal.preamble_offset_db.value(),
                0.7)
        << to_string(ch);
  }
}

TEST(Inband, ReductionOrderedByModulation) {
  for (auto ch : core::kAllOverlapChannels) {
    const auto r16 = measure_inband_offsets(
        cfg(Modulation::kQam16, CodingRate::kR12, ch), true);
    const auto r64 = measure_inband_offsets(
        cfg(Modulation::kQam64, CodingRate::kR23, ch), true);
    const auto r256 = measure_inband_offsets(
        cfg(Modulation::kQam256, CodingRate::kR34, ch), true);
    EXPECT_LT(r64.payload_offset_db.value(), r16.payload_offset_db.value())
        << to_string(ch);
    EXPECT_LT(r256.payload_offset_db.value(), r64.payload_offset_db.value())
        << to_string(ch);
  }
}

TEST(Inband, Ch4ReductionNearPaper14dB) {
  // The paper's headline: up to 14 dB decrease (QAM-256 on CH4, where
  // spectral leakage caps the 19.3 dB constellation gap).
  const auto c = cfg(Modulation::kQam256, CodingRate::kR34, OverlapChannel::kCh4);
  const auto normal = measure_inband_offsets(c, false);
  const auto sled = measure_inband_offsets(c, true);
  const double reduction =
      (normal.payload_offset_db - sled.payload_offset_db).value();
  EXPECT_GT(reduction, 12.0);
  EXPECT_LT(reduction, 17.0);
}

TEST(Inband, MeasuredReductionTracksIdealWithLeakageLoss) {
  // Measured reduction <= ideal (leakage + pilot), within a few dB.
  for (auto ch : core::kAllOverlapChannels) {
    for (auto m : {Modulation::kQam16, Modulation::kQam64}) {
      const auto c = cfg(m, CodingRate::kR34, ch);
      const auto normal = measure_inband_offsets(c, false);
      const auto sled = measure_inband_offsets(c, true);
      const double measured =
          (normal.payload_offset_db - sled.payload_offset_db).value();
      const double ideal = core::ideal_inband_reduction_db(c).value();
      EXPECT_LT(measured, ideal + 0.8) << to_string(ch) << wifi::to_string(m);
      EXPECT_GT(measured, ideal - 3.5) << to_string(ch) << wifi::to_string(m);
    }
  }
}

TEST(Experiment, LinkBudgetAnchors) {
  Scenario s;
  s.sledzig = cfg(Modulation::kQam64, CodingRate::kR23, OverlapChannel::kCh2);
  s.scheme = Scheme::kNormalWifi;
  s.d_wz_m = 1.0;
  s.d_z_m = 1.0;
  const auto budget = scenario_link_budget(s);
  // Normal WiFi in a CH1-CH3 window at 1 m: about -60 dBm (Fig 12).
  EXPECT_NEAR(budget.wifi_payload_inband_dbm.value(), -61.0, 2.0);
  // ZigBee link at 1 m, gain 31: about -80 dBm (Fig 13).
  EXPECT_NEAR(budget.signal_dbm.value(), -80.4, 0.5);
}

TEST(Experiment, SledzigLowersInbandBudget) {
  Scenario s;
  s.sledzig = cfg(Modulation::kQam256, CodingRate::kR34, OverlapChannel::kCh4);
  s.d_wz_m = 2.0;
  s.scheme = Scheme::kNormalWifi;
  const auto normal = scenario_link_budget(s);
  s.scheme = Scheme::kSledzig;
  const auto sled = scenario_link_budget(s);
  EXPECT_LT(sled.wifi_payload_inband_dbm.value(),
            normal.wifi_payload_inband_dbm.value() - 12.0);
  EXPECT_NEAR(sled.wifi_preamble_inband_dbm.value(),
              normal.wifi_preamble_inband_dbm.value(), 0.7);
}

TEST(Experiment, NormalWifiBlocksCloseZigbee) {
  // Fig 14(a): under saturated normal WiFi at short d_WZ the ZigBee link is
  // CCA-silenced.
  Scenario s;
  s.sledzig = cfg(Modulation::kQam64, CodingRate::kR23, OverlapChannel::kCh2);
  s.scheme = Scheme::kNormalWifi;
  s.d_wz_m = 3.0;
  s.duration_s = 20.0;
  const auto result = run_throughput_experiment(s);
  EXPECT_LT(result.throughput_kbps, 8.0);
}

TEST(Experiment, NormalWifiFarAwayIsHarmless) {
  Scenario s;
  s.sledzig = cfg(Modulation::kQam64, CodingRate::kR23, OverlapChannel::kCh2);
  s.scheme = Scheme::kNormalWifi;
  s.d_wz_m = 14.0;
  s.duration_s = 20.0;
  const auto result = run_throughput_experiment(s);
  EXPECT_GT(result.throughput_kbps, 40.0);
}

TEST(Experiment, SledzigEnablesCloserCoexistence) {
  // The headline mechanism: at a distance where normal WiFi silences the
  // ZigBee link, SledZig (QAM-256) restores most of its throughput.
  Scenario s;
  s.sledzig = cfg(Modulation::kQam256, CodingRate::kR34, OverlapChannel::kCh4);
  s.d_wz_m = 4.0;
  s.duration_s = 20.0;
  s.scheme = Scheme::kNormalWifi;
  const auto normal = run_throughput_experiment(s);
  s.scheme = Scheme::kSledzig;
  const auto sled = run_throughput_experiment(s);
  EXPECT_GT(sled.throughput_kbps, normal.throughput_kbps + 20.0);
}

TEST(Experiment, RssiExperimentsMatchPaperLevels) {
  // Fig 12 anchor points (QAM-64, 1 m, gain 15), averaged over the
  // shadowing jitter.
  const auto c2 = cfg(Modulation::kQam64, CodingRate::kR23, OverlapChannel::kCh2);
  double normal = 0.0, sled = 0.0;
  const int runs = 5;
  for (int s = 0; s < runs; ++s) {
    normal += measure_wifi_rssi_at_zigbee(c2, Scheme::kNormalWifi, 15, 1.0,
                                          100 + s);
    sled += measure_wifi_rssi_at_zigbee(c2, Scheme::kSledzig, 15, 1.0, 100 + s);
  }
  EXPECT_NEAR(normal / runs, -61.0, 2.5);
  EXPECT_NEAR(sled / runs, -67.5, 2.5);
}

TEST(Experiment, ZigbeeRssiMatchesFig13) {
  EXPECT_NEAR(measure_zigbee_rssi(31, 0.5, 6), -75.0, 3.0);
  // Low gain at 1 m is buried in the noise floor.
  EXPECT_NEAR(measure_zigbee_rssi(3, 1.0, 6), -91.0, 2.0);
}

TEST(Experiment, WifiRxSeesZigbee30dBBelowWifi) {
  // Fig 17: at 0.5 m the ZigBee signal at the WiFi receiver is ~30 dB below
  // the WiFi signal and near the noise floor by 2 m.  Averaged over the
  // shadowing jitter.
  double wifi_half = 0.0, zb_half = 0.0, zb_two = 0.0;
  const int runs = 5;
  for (int s = 0; s < runs; ++s) {
    const auto at_half = measure_rssi_at_wifi_rx(15, 31, 0.5, 200 + s);
    wifi_half += at_half.wifi_dbm.value();
    zb_half += at_half.zigbee_dbm.value();
    zb_two += measure_rssi_at_wifi_rx(15, 31, 2.0, 200 + s).zigbee_dbm.value();
  }
  EXPECT_NEAR(wifi_half / runs, -56.6, 2.5);
  EXPECT_NEAR(zb_half / runs, -84.3, 2.5);
  EXPECT_GT(wifi_half / runs - zb_half / runs, 24.0);
  EXPECT_LT(zb_two / runs, -87.0);
}

TEST(Experiment, WifiThroughputLossMatchesTableIv) {
  const auto c = cfg(Modulation::kQam16, CodingRate::kR34, OverlapChannel::kCh4);
  const double normal = wifi_throughput_mbps(c, Scheme::kNormalWifi);
  const double sled = wifi_throughput_mbps(c, Scheme::kSledzig);
  EXPECT_NEAR(normal, 36.0, 1e-9);  // 144 bits / 4 us
  EXPECT_NEAR((normal - sled) / normal, 0.0694, 1e-3);
}

}  // namespace
}  // namespace sledzig::coex
