// Tests for the ZigBee-activity detector, the adaptive controller and the
// multi-channel protection extension.
#include <gtest/gtest.h>

#include "channel/medium.h"
#include "coex/detector.h"
#include "common/rng.h"
#include "sledzig/encoder.h"
#include "wifi/qam.h"
#include "wifi/subcarriers.h"
#include "wifi/transmitter.h"
#include "zigbee/transmitter.h"

namespace sledzig::coex {
namespace {

using core::OverlapChannel;

common::CplxVec zigbee_on_air(OverlapChannel ch, double power_dbm,
                              common::Rng& rng, std::size_t total = 40000) {
  const auto tx = zigbee::zigbee_transmit(rng.bytes(40));
  channel::Emission e{&tx.samples, power_dbm,
                      core::channel_center_offset_hz(ch), 1000};
  return channel::mix_at_receiver(std::vector<channel::Emission>{e}, total,
                                  rng);
}

TEST(Detector, FindsActiveChannel) {
  common::Rng rng(401);
  for (OverlapChannel ch : core::kAllOverlapChannels) {
    const auto rx = zigbee_on_air(ch, -70.0, rng);
    const auto detections = detect_zigbee_activity(rx);
    ASSERT_FALSE(detections.empty()) << core::to_string(ch);
    EXPECT_EQ(detections.front().channel, ch);
    EXPECT_NEAR(detections.front().band_power_dbm, -70.0, 3.0);
    EXPECT_GT(detections.front().chip_correlation, 0.35);
  }
}

TEST(Detector, SilentBandYieldsNothing) {
  common::Rng rng(402);
  const auto rx = channel::mix_at_receiver({}, 40000, rng);
  EXPECT_TRUE(detect_zigbee_activity(rx).empty());
}

TEST(Detector, RejectsWifiEnergy) {
  // A WiFi packet has plenty of in-band energy on every ZigBee channel but
  // must not be classified as ZigBee (the correlation gate).
  common::Rng rng(403);
  wifi::WifiTxConfig tx;
  tx.modulation = wifi::Modulation::kQam64;
  tx.rate = wifi::CodingRate::kR23;
  const auto packet = wifi::wifi_transmit(rng.bytes(600), tx);
  channel::Emission e{&packet.samples, -55.0, 0.0, 0};
  const auto rx = channel::mix_at_receiver(std::vector<channel::Emission>{e},
                                           packet.samples.size(), rng);
  const auto detections = detect_zigbee_activity(rx);
  EXPECT_TRUE(detections.empty());
}

TEST(Detector, TwoSimultaneousChannels) {
  common::Rng rng(404);
  const auto tx1 = zigbee::zigbee_transmit(rng.bytes(30));
  const auto tx2 = zigbee::zigbee_transmit(rng.bytes(30));
  std::vector<channel::Emission> emissions = {
      {&tx1.samples, -68.0,
       core::channel_center_offset_hz(OverlapChannel::kCh1), 500},
      {&tx2.samples, -72.0,
       core::channel_center_offset_hz(OverlapChannel::kCh4), 500},
  };
  const auto rx = channel::mix_at_receiver(emissions, 40000, rng);
  const auto detections = detect_zigbee_activity(rx);
  ASSERT_EQ(detections.size(), 2u);
  EXPECT_EQ(detections[0].channel, OverlapChannel::kCh1);  // stronger first
  EXPECT_EQ(detections[1].channel, OverlapChannel::kCh4);
}

TEST(Detector, BelowEnergyThresholdIgnored) {
  common::Rng rng(405);
  const auto rx = zigbee_on_air(OverlapChannel::kCh2, -89.0, rng);
  DetectorConfig cfg;
  cfg.energy_threshold_dbm = -85.0;
  EXPECT_TRUE(detect_zigbee_activity(rx, cfg).empty());
}

TEST(AdaptiveController, HysteresisOnOff) {
  AdaptiveController ctrl(AdaptiveController::Params{2, 3, 2});
  const std::vector<ZigbeeDetection> ch2 = {
      {OverlapChannel::kCh2, -70.0, 0.8}};
  const std::vector<ZigbeeDetection> none;

  EXPECT_FALSE(ctrl.observe(ch2));  // 1st sighting: not yet
  EXPECT_TRUE(ctrl.protected_channels().empty());
  EXPECT_TRUE(ctrl.observe(ch2));   // 2nd: protect
  ASSERT_EQ(ctrl.protected_channels().size(), 1u);
  EXPECT_EQ(ctrl.protected_channels()[0], OverlapChannel::kCh2);

  EXPECT_FALSE(ctrl.observe(none));  // idle 1
  EXPECT_FALSE(ctrl.observe(none));  // idle 2
  EXPECT_TRUE(ctrl.observe(none));   // idle 3: release
  EXPECT_TRUE(ctrl.protected_channels().empty());
}

TEST(AdaptiveController, ConfigCarriesExtraChannels) {
  AdaptiveController ctrl(AdaptiveController::Params{1, 3, 2});
  const std::vector<ZigbeeDetection> both = {
      {OverlapChannel::kCh1, -65.0, 0.8},
      {OverlapChannel::kCh4, -70.0, 0.7}};
  ctrl.observe(both);
  const auto cfg =
      ctrl.config(wifi::Modulation::kQam64, wifi::CodingRate::kR23);
  ASSERT_TRUE(cfg.has_value());
  EXPECT_EQ(cfg->channel, OverlapChannel::kCh1);
  ASSERT_EQ(cfg->extra_channels.size(), 1u);
  EXPECT_EQ(cfg->extra_channels[0], OverlapChannel::kCh4);
}

TEST(AdaptiveController, RespectsMaxChannels) {
  AdaptiveController ctrl(AdaptiveController::Params{1, 3, 2});
  std::vector<ZigbeeDetection> three = {
      {OverlapChannel::kCh1, -65.0, 0.8},
      {OverlapChannel::kCh2, -66.0, 0.8},
      {OverlapChannel::kCh3, -67.0, 0.8}};
  ctrl.observe(three);
  EXPECT_EQ(ctrl.protected_channels().size(), 2u);
}

TEST(AdaptiveController, NoDetectionsNoConfig) {
  AdaptiveController ctrl;
  EXPECT_FALSE(
      ctrl.config(wifi::Modulation::kQam16, wifi::CodingRate::kR12).has_value());
}

TEST(AdaptiveController, OrderingIsStrengthDescThenChannelAsc) {
  // The protected list must be a pure function of the observation history:
  // strongest activity first, equal strengths broken by channel id.  The
  // order the detections arrive in must not matter.
  AdaptiveController ctrl(AdaptiveController::Params{1, 5, 4});
  const std::vector<ZigbeeDetection> shuffled = {
      {OverlapChannel::kCh2, -70.0, 0.8},
      {OverlapChannel::kCh4, -65.0, 0.8},
      {OverlapChannel::kCh1, -70.0, 0.8},
      {OverlapChannel::kCh3, -60.0, 0.8}};
  EXPECT_TRUE(ctrl.observe(shuffled));
  const auto& prot = ctrl.protected_channels();
  ASSERT_EQ(prot.size(), 4u);
  EXPECT_EQ(prot[0], OverlapChannel::kCh3);  // -60: strongest
  EXPECT_EQ(prot[1], OverlapChannel::kCh4);  // -65
  EXPECT_EQ(prot[2], OverlapChannel::kCh1);  // -70 tie: lower channel first
  EXPECT_EQ(prot[3], OverlapChannel::kCh2);  // -70 tie
}

TEST(AdaptiveController, OffThresholdCountingSurvivesRankRebuild) {
  // Regression: a rank change on *another* channel rebuilds the protected
  // list; the rebuild must not restart the idle count of a channel that is
  // on its way out.  Release happens exactly at off_threshold idle scans.
  AdaptiveController ctrl(AdaptiveController::Params{1, 3, 2});
  const std::vector<ZigbeeDetection> both = {
      {OverlapChannel::kCh1, -60.0, 0.8},
      {OverlapChannel::kCh2, -65.0, 0.8}};
  EXPECT_TRUE(ctrl.observe(both));
  ASSERT_EQ(ctrl.protected_channels().size(), 2u);
  EXPECT_EQ(ctrl.protected_channels()[0], OverlapChannel::kCh1);

  // Ch2 goes idle; Ch1 stays at full strength.  Rank unchanged.
  const std::vector<ZigbeeDetection> ch1_strong = {
      {OverlapChannel::kCh1, -60.0, 0.8}};
  EXPECT_FALSE(ctrl.observe(ch1_strong));  // Ch2 idle 1

  // Ch1 weakens below Ch2's last strength: rank flips, forcing a rebuild
  // while Ch2 is mid-count.
  const std::vector<ZigbeeDetection> ch1_weak = {
      {OverlapChannel::kCh1, -72.0, 0.8}};
  EXPECT_TRUE(ctrl.observe(ch1_weak));  // Ch2 idle 2, now ranked first
  ASSERT_EQ(ctrl.protected_channels().size(), 2u);
  EXPECT_EQ(ctrl.protected_channels()[0], OverlapChannel::kCh2);
  EXPECT_EQ(ctrl.protected_channels()[1], OverlapChannel::kCh1);

  // Third consecutive idle scan == off_threshold: released exactly now,
  // not three scans after the rebuild.
  EXPECT_TRUE(ctrl.observe(ch1_weak));  // Ch2 idle 3: release
  ASSERT_EQ(ctrl.protected_channels().size(), 1u);
  EXPECT_EQ(ctrl.protected_channels()[0], OverlapChannel::kCh1);
}

TEST(AdaptiveController, OffThresholdCountingSurvivesTruncation) {
  // A stronger newcomer can push a protected channel past max_channels.
  // Truncation out of the visible list must not restart its idle count
  // either: once idle scans hit off_threshold the state fully releases.
  AdaptiveController ctrl(AdaptiveController::Params{1, 2, 2});
  const std::vector<ZigbeeDetection> both = {
      {OverlapChannel::kCh1, -60.0, 0.8},
      {OverlapChannel::kCh2, -65.0, 0.8}};
  EXPECT_TRUE(ctrl.observe(both));
  ASSERT_EQ(ctrl.protected_channels().size(), 2u);

  // Ch3 arrives stronger than everything while Ch2 goes idle: Ch2 is
  // truncated out of the two-slot list on the same scan.
  const std::vector<ZigbeeDetection> newcomer = {
      {OverlapChannel::kCh1, -60.0, 0.8},
      {OverlapChannel::kCh3, -55.0, 0.8}};
  EXPECT_TRUE(ctrl.observe(newcomer));  // Ch2 idle 1, truncated
  ASSERT_EQ(ctrl.protected_channels().size(), 2u);
  EXPECT_EQ(ctrl.protected_channels()[0], OverlapChannel::kCh3);
  EXPECT_EQ(ctrl.protected_channels()[1], OverlapChannel::kCh1);

  // One more idle scan reaches off_threshold == 2: Ch2's protection state
  // is gone, so a single fresh sighting re-admits it (on_threshold == 1)
  // rather than resuming a half-released entry.
  EXPECT_FALSE(ctrl.observe(newcomer));  // Ch2 idle 2: releases (invisible)
  const std::vector<ZigbeeDetection> ch2_back = {
      {OverlapChannel::kCh2, -50.0, 0.8}};
  EXPECT_TRUE(ctrl.observe(ch2_back));
  ASSERT_EQ(ctrl.protected_channels().size(), 2u);
  EXPECT_EQ(ctrl.protected_channels()[0], OverlapChannel::kCh2);
}

// ------------------------------------------------- multi-channel encoding

TEST(MultiChannel, UnionSubcarrierSet) {
  core::SledzigConfig cfg;
  cfg.channel = OverlapChannel::kCh1;
  cfg.extra_channels = {OverlapChannel::kCh4};
  const auto set = cfg.forced_subcarrier_set();
  EXPECT_EQ(set.size(), 12u);  // 7 (CH1) + 5 (CH4)
  EXPECT_EQ(core::significant_bits_per_symbol(
                core::SledzigConfig{wifi::Modulation::kQam64,
                                    wifi::CodingRate::kR23,
                                    OverlapChannel::kCh1,
                                    {OverlapChannel::kCh4}}),
            12u * 4u);
}

TEST(MultiChannel, EncodeDecodeRoundTrip) {
  common::Rng rng(406);
  core::SledzigConfig cfg;
  cfg.modulation = wifi::Modulation::kQam64;
  cfg.rate = wifi::CodingRate::kR23;
  cfg.channel = OverlapChannel::kCh2;
  cfg.extra_channels = {OverlapChannel::kCh4};
  const auto payload = rng.bytes(200);
  const auto enc = core::sledzig_encode(payload, cfg);
  EXPECT_EQ(enc.num_collisions, 0u);
  EXPECT_EQ(enc.num_violations, 0u);
  const auto dec = core::sledzig_decode(enc.transmit_psdu, cfg);
  ASSERT_TRUE(dec.has_value());
  EXPECT_EQ(*dec, payload);
}

TEST(MultiChannel, BothWindowsForcedOnAir) {
  common::Rng rng(407);
  core::SledzigConfig cfg;
  cfg.modulation = wifi::Modulation::kQam64;
  cfg.rate = wifi::CodingRate::kR23;
  cfg.channel = OverlapChannel::kCh2;
  cfg.extra_channels = {OverlapChannel::kCh4};
  const auto enc = core::sledzig_encode(rng.bytes(300), cfg);

  wifi::WifiTxConfig tx;
  tx.modulation = cfg.modulation;
  tx.rate = cfg.rate;
  const auto packet = wifi::wifi_transmit(enc.transmit_psdu, tx);
  const std::size_t dbps =
      wifi::data_bits_per_symbol(cfg.modulation, cfg.rate);
  const std::size_t full_symbols = (enc.transmit_psdu.size() * 8) / dbps;
  const std::size_t first = enc.num_unforced_head > 0 ? 1 : 0;
  for (std::size_t s = first; s < full_symbols; ++s) {
    for (int logical : cfg.forced_subcarrier_set()) {
      const int pos = wifi::data_subcarrier_position(logical);
      EXPECT_TRUE(wifi::is_lowest_point(
          packet.data_points[s * wifi::kNumDataSubcarriers +
                             static_cast<std::size_t>(pos)],
          cfg.modulation))
          << "symbol " << s << " sc " << logical;
    }
  }
}

TEST(MultiChannel, CostGrowsWithChannels) {
  core::SledzigConfig one{wifi::Modulation::kQam64, wifi::CodingRate::kR23,
                          OverlapChannel::kCh2};
  core::SledzigConfig two = one;
  two.extra_channels = {OverlapChannel::kCh4};
  EXPECT_GT(core::throughput_loss(two), core::throughput_loss(one));
  EXPECT_NEAR(core::throughput_loss(two),
              core::throughput_loss(one) + 20.0 / 192.0, 1e-9);
}

}  // namespace
}  // namespace sledzig::coex
