// Chaos suite for the fault-injection layer (DESIGN.md §14).
//
// The headline test sweeps ~200 seeded random fault schedules — crashes,
// reboots, mute/deaf windows, jammer bursts, traffic surges, clock defects
// all enabled at once — with runtime invariant checking on, and asserts
// every schedule (a) holds all invariants, (b) conserves packets exactly,
// and (c) produces bit-identical trace digests across pools of 1, 2 and 8
// threads.  Any failure prints the replication's derived seed; re-running
// the same config with that seed reproduces the violation bit-for-bit.
//
// The rest of the file pins down each fault family in isolation: timed
// crash/reboot semantics, TX abort on the air, mute/deaf windows, surges,
// jammers, clock drift, and FaultScheduler compile determinism.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "obs/trace.h"
#include "sim/engine.h"
#include "sim/faults.h"
#include "sim/invariants.h"

namespace sledzig::sim {
namespace {

constexpr std::size_t kSweepSchedules = 200;

void expect_conservation(const SimResult& r, const std::string& context) {
  std::size_t node = 0;
  for (const auto* side : {&r.wifi, &r.zigbee}) {
    for (const auto& n : *side) {
      EXPECT_EQ(n.generated, n.delivered + n.queue_dropped + n.cca_dropped +
                                 n.retry_exhausted + n.lost_to_crash +
                                 n.in_flight_at_end)
          << context << " node " << node;
      ++node;
    }
  }
}

/// Three nodes (one WiFi link, two ZigBee pairs) under every random fault
/// process at once, plus a bursty jammer and skewed/drifting clocks.
/// Invariants are on with a watchdog wider than the horizon, so the gap
/// check is armed but can only fire on genuine time travel.
ScenarioConfig chaos_scenario(std::uint64_t seed, double duration_s = 0.4) {
  auto cfg = two_node_paper_scenario(core::SledzigConfig{}, true,
                                     /*wifi_duty_ratio=*/0.5, /*d_wz_m=*/4.0,
                                     /*d_z_m=*/1.0, duration_s, seed);
  ZigbeeNodeConfig mote2;
  mote2.tx = {6.0, 2.0};
  mote2.rx = {6.0, 3.0};
  mote2.mac.max_frame_retries = 3;
  mote2.traffic = {TrafficKind::kPoisson, 8000.0, 1.0};
  cfg.zigbee.push_back(mote2);

  auto& rnd = cfg.faults.random;
  rnd.crash_rate_per_s = 4.0;
  rnd.mean_downtime_us = 30000.0;
  rnd.mute_rate_per_s = 3.0;
  rnd.mean_mute_us = 15000.0;
  rnd.deaf_rate_per_s = 3.0;
  rnd.mean_deaf_us = 15000.0;
  rnd.surge_rate_per_s = 2.0;
  rnd.mean_surge_us = 40000.0;
  rnd.surge_magnitude = 4.0;

  JammerConfig jam;
  jam.pos = {5.0, 1.0};
  jam.mean_on_us = 2000.0;
  jam.mean_off_us = 30000.0;
  cfg.faults.jammers.push_back(jam);

  cfg.faults.clocks = {{/*skew_us=*/120.0, /*drift_ppm=*/80.0},
                       {-40.0, -120.0},
                       {15.0, 200.0}};

  cfg.invariants.enabled = true;
  cfg.invariants.max_event_gap_us = 2.0 * duration_s * 1e6;
  cfg.metrics = nullptr;  // sweeps share the process registry otherwise
  return cfg;
}

void run_sweep(std::size_t schedules, const std::vector<std::size_t>& pools) {
  const auto cfg = chaos_scenario(0xC0FFEE);
  std::vector<std::vector<SimResult>> by_pool;
  for (const std::size_t threads : pools) {
    common::ThreadPool pool(threads);
    try {
      by_pool.push_back(run_replications(pool, cfg, schedules));
    } catch (const InvariantViolation& v) {
      FAIL() << "invariant violated with " << threads
             << " thread(s) — replay: chaos_scenario config, seed "
             << v.seed() << ", t=" << v.time_us() << " us\n  " << v.what();
    }
  }
  std::size_t crashed_schedules = 0;
  std::size_t jam_or_mute_traffic = 0;
  for (std::size_t rep = 0; rep < schedules; ++rep) {
    const std::uint64_t rep_seed = common::derive_seed(cfg.seed, rep);
    const auto& base = by_pool.front()[rep];
    const std::string ctx =
        "schedule " + std::to_string(rep) + " (replay seed " +
        std::to_string(rep_seed) + ")";
    expect_conservation(base, ctx);
    for (std::size_t p = 1; p < by_pool.size(); ++p) {
      ASSERT_EQ(base.trace_digest, by_pool[p][rep].trace_digest)
          << ctx << ": digest differs between " << pools[0] << " and "
          << pools[p] << " threads";
    }
    std::size_t lost = 0;
    std::size_t failed = 0;
    for (const auto* side : {&base.wifi, &base.zigbee}) {
      for (const auto& n : *side) {
        lost += n.lost_to_crash;
        failed += n.retry_exhausted;
      }
    }
    if (lost > 0) ++crashed_schedules;
    if (failed > 0) ++jam_or_mute_traffic;
  }
  // The sweep must actually bite: with these rates a large majority of
  // schedules crash at least one frame out of a queue and lose traffic to
  // the channel.  A quiet sweep means the fault plan silently stopped
  // compiling, not that the engine got lucky.
  EXPECT_GT(crashed_schedules, schedules / 4) << "sweep barely crashed";
  EXPECT_GT(jam_or_mute_traffic, schedules / 4) << "sweep barely interfered";
}

TEST(ChaosSweep, SchedulesHoldInvariantsWithIdenticalDigestsAcross1_2_8Threads) {
  run_sweep(kSweepSchedules, {1, 2, 8});
}

// Nightly-depth sweep: 1000 schedules, opt-in via SLEDZIG_CHAOS_LONG=1
// (the CI nightly matrix leg sets it; default runs skip).
TEST(ChaosSweep, LongSweepBehindEnvFlag) {
  if (std::getenv("SLEDZIG_CHAOS_LONG") == nullptr) {
    GTEST_SKIP() << "set SLEDZIG_CHAOS_LONG=1 for the nightly-depth sweep";
  }
  run_sweep(1000, {1, 8});
}

TEST(ChaosSweep, ReplayFromSeedIsBitIdentical) {
  auto cfg = chaos_scenario(0xBADC0DE);
  const auto a = run_scenario(cfg);
  const auto b = run_scenario(cfg);
  EXPECT_EQ(a.trace_digest, b.trace_digest);
  cfg.seed = 0xBADC0DF;
  const auto c = run_scenario(cfg);
  EXPECT_NE(a.trace_digest, c.trace_digest)
      << "different seed produced the same fault timeline";
}

TEST(FaultCompile, ScheduleIsDeterministicSortedAndSeedSensitive) {
  const auto cfg = chaos_scenario(7);
  const double horizon_us = cfg.duration_s * 1e6;
  const auto a = FaultScheduler::compile(cfg.faults, 7, horizon_us, 3);
  const auto b = FaultScheduler::compile(cfg.faults, 7, horizon_us, 3);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].at_us, b[i].at_us);
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_EQ(a[i].node, b[i].node);
    EXPECT_EQ(a[i].magnitude, b[i].magnitude);
  }
  ASSERT_FALSE(a.empty());
  for (std::size_t i = 1; i < a.size(); ++i) {
    EXPECT_LE(a[i - 1].at_us, a[i].at_us) << "schedule not time-sorted";
  }
  for (const auto& act : a) {
    EXPECT_GE(act.at_us, 0.0);
    EXPECT_LT(act.at_us, horizon_us);
  }
  const auto c = FaultScheduler::compile(cfg.faults, 8, horizon_us, 3);
  EXPECT_TRUE(c.size() != a.size() ||
              !std::equal(a.begin(), a.end(), c.begin(),
                          [](const FaultAction& x, const FaultAction& y) {
                            return x.at_us == y.at_us && x.kind == y.kind;
                          }))
      << "seed does not reach the fault streams";
}

TEST(FaultCompile, TimedWindowEmitsItsRecoveryInsideTheHorizon) {
  FaultPlanConfig plan;
  plan.timed.push_back(
      {FaultKind::kCrash, /*node=*/0, /*at_us=*/1000.0, /*duration_us=*/500.0,
       /*magnitude=*/4.0});
  plan.timed.push_back(  // recovery would land past the horizon: dropped
      {FaultKind::kMuteOn, 1, 9800.0, 5000.0, 4.0});
  const auto acts = FaultScheduler::compile(plan, 1, /*duration_us=*/10000.0,
                                            /*num_nodes=*/2);
  ASSERT_EQ(acts.size(), 3u);
  EXPECT_EQ(acts[0].kind, FaultKind::kCrash);
  EXPECT_EQ(acts[0].at_us, 1000.0);
  EXPECT_EQ(acts[1].kind, FaultKind::kReboot);
  EXPECT_EQ(acts[1].at_us, 1500.0);
  EXPECT_EQ(acts[2].kind, FaultKind::kMuteOn);
  EXPECT_EQ(acts[2].at_us, 9800.0);  // stays muted until the horizon
}

/// Saturated two-node baseline for the targeted fault-family tests: WiFi is
/// always backlogged, so a crash at any instant catches it mid-service.
ScenarioConfig saturated_scenario(std::uint64_t seed) {
  auto cfg = two_node_paper_scenario(core::SledzigConfig{}, true,
                                     /*wifi_duty_ratio=*/1.0, 4.0, 1.0,
                                     /*duration_s=*/1.0, seed);
  cfg.invariants.enabled = true;
  cfg.record_trace = true;
  cfg.metrics = nullptr;
  return cfg;
}

std::size_t count_trace(const SimResult& r, TraceType type) {
  std::size_t n = 0;
  for (const auto& e : r.trace) n += (e.type == type) ? 1 : 0;
  return n;
}

TEST(FaultFamilies, CrashAbortsTheInFlightBurstAndDrainsTheQueue) {
  auto cfg = saturated_scenario(5);
  cfg.faults.timed.push_back(
      {FaultKind::kCrash, /*node=*/0, 3.0e5, 2.0e5, 4.0});
  const auto r = run_scenario(cfg);
  expect_conservation(r, "timed-crash");
  EXPECT_EQ(count_trace(r, TraceType::kNodeCrash), 1u);
  EXPECT_EQ(count_trace(r, TraceType::kNodeReboot), 1u);
  // Saturated WiFi is mid-burst at any instant: the crash must abort it.
  EXPECT_EQ(count_trace(r, TraceType::kTxAborted), 1u);
  EXPECT_GE(r.wifi[0].lost_to_crash, 1u);
  // The dead half-second transmits nothing: airtime is well below the
  // fault-free saturated run's.
  cfg.faults.timed.clear();
  const auto clean = run_scenario(cfg);
  EXPECT_LT(r.wifi[0].airtime_us, clean.wifi[0].airtime_us);
  EXPECT_NE(r.trace_digest, clean.trace_digest);
  // No transmissions may start inside the dead window.
  for (const auto& e : r.trace) {
    if (e.node == 0 && e.type == TraceType::kTxStart) {
      EXPECT_FALSE(e.time_us > 3.0e5 && e.time_us < 5.0e5)
          << "dead node transmitted at t=" << e.time_us;
    }
  }
}

TEST(FaultFamilies, CrashWithoutRebootLeavesTheNodeDownUntilHorizon) {
  auto cfg = saturated_scenario(6);
  cfg.faults.timed.push_back(
      {FaultKind::kCrash, /*node=*/1, 2.0e5, /*duration_us=*/0.0, 4.0});
  const auto r = run_scenario(cfg);
  expect_conservation(r, "crash-no-reboot");
  EXPECT_EQ(count_trace(r, TraceType::kNodeCrash), 1u);
  EXPECT_EQ(count_trace(r, TraceType::kNodeReboot), 0u);
  for (const auto& e : r.trace) {
    if (e.node == 1 && e.type == TraceType::kArrival) {
      EXPECT_LE(e.time_us, 2.0e5) << "dead node kept generating traffic";
    }
  }
}

TEST(FaultFamilies, MutedTransmitterBurnsAttemptsWithoutAirtime) {
  auto cfg = saturated_scenario(7);
  cfg.faults.timed.push_back(
      {FaultKind::kMuteOn, /*node=*/0, 2.0e5, 4.0e5, 4.0});
  const auto r = run_scenario(cfg);
  expect_conservation(r, "mute-window");
  EXPECT_EQ(count_trace(r, TraceType::kMute), 2u);  // on + off
  const std::size_t muted = count_trace(r, TraceType::kTxMuted);
  EXPECT_GT(muted, 0u);
  // WiFi never retries: every muted attempt is terminal.
  EXPECT_GE(r.wifi[0].retry_exhausted, muted);
  cfg.faults.timed.clear();
  const auto clean = run_scenario(cfg);
  EXPECT_LT(r.wifi[0].airtime_us, clean.wifi[0].airtime_us);
}

TEST(FaultFamilies, DeafReceiverLosesDeliveriesWithoutTouchingTheAir) {
  auto cfg = saturated_scenario(8);
  // Quiet channel for the mote: push WiFi far away so only deafness loses
  // frames.
  cfg.wifi[0].tx = {40.0, 0.0};
  cfg.wifi[0].rx = {40.0, 3.0};
  cfg.zigbee[0].mac.max_frame_retries = 0;
  const auto clean = run_scenario(cfg);
  cfg.faults.timed.push_back(
      {FaultKind::kDeafOn, /*node=*/1, 1.0e5, 6.0e5, 4.0});
  const auto r = run_scenario(cfg);
  expect_conservation(r, "deaf-window");
  EXPECT_EQ(count_trace(r, TraceType::kDeaf), 2u);
  EXPECT_LT(r.zigbee[0].delivered, clean.zigbee[0].delivered);
  // TX side is untouched: the mote keeps transmitting into its deaf ear.
  EXPECT_EQ(r.zigbee[0].sent, clean.zigbee[0].sent);
}

TEST(FaultFamilies, SurgeMultipliesTheArrivalRateInsideItsWindow) {
  auto cfg = saturated_scenario(9);
  cfg.faults.timed.push_back(
      {FaultKind::kSurgeOn, /*node=*/1, 1.0e5, 8.0e5, /*magnitude=*/5.0});
  const auto r = run_scenario(cfg);
  expect_conservation(r, "surge-window");
  EXPECT_EQ(count_trace(r, TraceType::kSurge), 2u);
  cfg.faults.timed.clear();
  const auto clean = run_scenario(cfg);
  EXPECT_GT(r.zigbee[0].generated, clean.zigbee[0].generated * 3 / 2)
      << "surge did not visibly raise the offered load";
}

TEST(FaultFamilies, JammerBurstsDegradeTheNearbyZigbeeLink) {
  auto cfg = saturated_scenario(10);
  // Quiet channel again, then park a jammer on top of the mote's receiver.
  cfg.wifi[0].tx = {40.0, 0.0};
  cfg.wifi[0].rx = {40.0, 3.0};
  const auto clean = run_scenario(cfg);
  JammerConfig jam;
  jam.pos = cfg.zigbee[0].rx;
  jam.mean_on_us = 4000.0;
  jam.mean_off_us = 4000.0;
  cfg.faults.jammers.push_back(jam);
  const auto r = run_scenario(cfg);
  expect_conservation(r, "jammer");
  EXPECT_GT(count_trace(r, TraceType::kJam), 0u);
  EXPECT_LT(r.zigbee[0].delivered, clean.zigbee[0].delivered)
      << "a co-located 50% duty jammer must cost deliveries";
  const auto r2 = run_scenario(cfg);
  EXPECT_EQ(r.trace_digest, r2.trace_digest);
}

TEST(FaultFamilies, ClockDriftPerturbsTimingButConservesEveryFrame) {
  auto cfg = saturated_scenario(11);
  const auto nominal = run_scenario(cfg);
  cfg.faults.clocks = {{0.0, 0.0}, {/*skew_us=*/500.0, /*drift_ppm=*/5000.0}};
  const auto skewed = run_scenario(cfg);
  expect_conservation(skewed, "clock-drift");
  EXPECT_NE(nominal.trace_digest, skewed.trace_digest);
  const auto skewed2 = run_scenario(cfg);
  EXPECT_EQ(skewed.trace_digest, skewed2.trace_digest);
}

TEST(FaultFamilies, FaultInstantsLandInTheObsTraceLog) {
  obs::TraceLog log;
  auto cfg = saturated_scenario(12);
  cfg.span_log = &log;
  cfg.faults.timed.push_back({FaultKind::kCrash, 0, 3.0e5, 2.0e5, 4.0});
  const auto r = run_scenario(cfg);
  expect_conservation(r, "obs-instants");
  if (log.size() == 0) GTEST_SKIP() << "obs layer compiled out";
  bool saw_crash = false;
  bool saw_reboot = false;
  for (const auto& e : log.events()) {
    saw_crash |= (e.name == "crash");
    saw_reboot |= (e.name == "reboot");
  }
  EXPECT_TRUE(saw_crash);
  EXPECT_TRUE(saw_reboot);
}

TEST(FaultFamilies, FaultFreePlanLeavesTheDigestUntouched) {
  // A FaultPlanConfig that exists but cannot fire (rates all zero, no timed
  // entries, nominal clocks) must not perturb the run at all.
  auto cfg = saturated_scenario(13);
  const auto clean = run_scenario(cfg);
  cfg.faults.clocks = {{0.0, 0.0}, {0.0, 0.0}};
  cfg.invariants.enabled = true;
  const auto armed = run_scenario(cfg);
  EXPECT_EQ(clean.trace_digest, armed.trace_digest);
}

}  // namespace
}  // namespace sledzig::sim
