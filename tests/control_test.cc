// Control-plane suite (DESIGN.md §18).
//
// Three layers, matching the architecture: the Controller's pure decision
// logic (hysteresis, hop patience/rotation/cooldown, duty shaping) fed
// hand-built epoch snapshots; the engine wiring (epoch events on the
// queue, actions applied at boundaries, inactive control leaving digests
// untouched); and the acceptance criteria — the controlled arm of the
// mixed-load A/B strictly improves aggregate ZigBee PRR without costing
// WiFi more than 5% throughput, and controlled runs (chaos included) stay
// bit-identical across 1/2/8-thread pools.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "control/controller.h"
#include "sim/engine.h"
#include "sim/invariants.h"

namespace sledzig::control {
namespace {

EpochSnapshot make_snapshot(std::uint64_t epoch, double epoch_us,
                            const std::vector<NodeObservation>& wifi,
                            const std::vector<NodeObservation>& zigbee) {
  EpochSnapshot s;
  s.epoch = epoch;
  s.time_us = static_cast<double>(epoch + 1) * epoch_us;
  s.epoch_us = epoch_us;
  s.wifi = wifi;
  s.zigbee = zigbee;
  return s;
}

NodeObservation mote_obs(std::uint64_t sent, std::uint64_t delivered,
                         double airtime_us) {
  NodeObservation o;
  o.generated = sent;
  o.sent = sent;
  o.delivered = delivered;
  o.airtime_us = airtime_us;
  return o;
}

TEST(Controller, SledzigHysteresisTogglesOnWindowActivity) {
  ControlConfig cfg;
  cfg.enabled = true;
  cfg.epoch_us = 100000.0;
  cfg.sledzig.enabled = true;
  cfg.sledzig.on_threshold = 2;
  cfg.sledzig.off_threshold = 3;
  cfg.sledzig.busy_airtime_fraction = 0.01;
  std::vector<ZigbeeNodeContext> ctx(1);
  ctx[0].overlap = 0;
  Controller ctrl(cfg, ctx, /*num_wifi=*/1, /*sledzig_engaged=*/false);

  const std::vector<NodeObservation> wifi(1);
  const std::vector<NodeObservation> busy = {mote_obs(10, 10, 5000.0)};
  const std::vector<NodeObservation> idle(1);

  // One busy epoch is not enough (on_threshold == 2).
  EXPECT_TRUE(ctrl.on_epoch(make_snapshot(0, cfg.epoch_us, wifi, busy)).empty());
  EXPECT_FALSE(ctrl.sledzig_engaged());
  // Second consecutive busy epoch engages.
  auto actions = ctrl.on_epoch(make_snapshot(1, cfg.epoch_us, wifi, busy));
  ASSERT_EQ(actions.size(), 1u);
  EXPECT_EQ(actions[0].kind, ActionKind::kSledzig);
  EXPECT_EQ(actions[0].value, 1.0);
  EXPECT_TRUE(ctrl.sledzig_engaged());
  // Release needs off_threshold == 3 consecutive idle epochs, exactly.
  EXPECT_TRUE(ctrl.on_epoch(make_snapshot(2, cfg.epoch_us, wifi, idle)).empty());
  EXPECT_TRUE(ctrl.on_epoch(make_snapshot(3, cfg.epoch_us, wifi, idle)).empty());
  actions = ctrl.on_epoch(make_snapshot(4, cfg.epoch_us, wifi, idle));
  ASSERT_EQ(actions.size(), 1u);
  EXPECT_EQ(actions[0].kind, ActionKind::kSledzig);
  EXPECT_EQ(actions[0].value, 0.0);
  EXPECT_FALSE(ctrl.sledzig_engaged());
}

TEST(Controller, BelowBusyFractionCountsAsIdle) {
  ControlConfig cfg;
  cfg.enabled = true;
  cfg.epoch_us = 100000.0;
  cfg.sledzig.enabled = true;
  cfg.sledzig.on_threshold = 1;
  cfg.sledzig.off_threshold = 1;
  cfg.sledzig.busy_airtime_fraction = 0.05;
  std::vector<ZigbeeNodeContext> ctx(1);
  ctx[0].overlap = 2;
  Controller ctrl(cfg, ctx, 1, false);

  const std::vector<NodeObservation> wifi(1);
  // 2% of the epoch on air: under the 5% activity bar, never engages.
  const std::vector<NodeObservation> faint = {mote_obs(3, 3, 2000.0)};
  EXPECT_TRUE(ctrl.on_epoch(make_snapshot(0, cfg.epoch_us, wifi, faint)).empty());
  EXPECT_FALSE(ctrl.sledzig_engaged());
  // 6% clears it.
  const std::vector<NodeObservation> busy = {mote_obs(3, 3, 6000.0)};
  const auto actions =
      ctrl.on_epoch(make_snapshot(1, cfg.epoch_us, wifi, busy));
  ASSERT_EQ(actions.size(), 1u);
  EXPECT_EQ(actions[0].value, 1.0);
}

TEST(Controller, HopWaitsForPatienceRotatesCandidatesAndCoolsDown) {
  ControlConfig cfg;
  cfg.enabled = true;
  cfg.epoch_us = 100000.0;
  cfg.hop.enabled = true;
  cfg.hop.min_prr = 0.85;
  cfg.hop.patience = 2;
  cfg.hop.cooldown_epochs = 3;
  std::vector<ZigbeeNodeContext> ctx(1);
  ctx[0].candidates = {21, 22};
  Controller ctrl(cfg, ctx, 0, true);

  const std::vector<NodeObservation> wifi;
  const std::vector<NodeObservation> bad = {mote_obs(10, 1, 4000.0)};
  const std::vector<NodeObservation> silent(1);  // sent == 0: no PRR signal

  // Busy epoch under min_prr: below = 1 < patience.
  EXPECT_TRUE(ctrl.on_epoch(make_snapshot(0, cfg.epoch_us, wifi, bad)).empty());
  // An idle epoch carries no signal either way.
  EXPECT_TRUE(
      ctrl.on_epoch(make_snapshot(1, cfg.epoch_us, wifi, silent)).empty());
  // Second bad busy epoch: hop to the first (quietest) candidate.
  auto actions = ctrl.on_epoch(make_snapshot(2, cfg.epoch_us, wifi, bad));
  ASSERT_EQ(actions.size(), 1u);
  EXPECT_EQ(actions[0].kind, ActionKind::kZigbeeChannel);
  EXPECT_EQ(actions[0].node, 0u);
  EXPECT_EQ(actions[0].value, 21.0);
  // Cooldown holds even though the PRR stays terrible...
  EXPECT_TRUE(ctrl.on_epoch(make_snapshot(3, cfg.epoch_us, wifi, bad)).empty());
  EXPECT_TRUE(ctrl.on_epoch(make_snapshot(4, cfg.epoch_us, wifi, bad)).empty());
  // ...and once it expires the rotation tries the next candidate.
  actions = ctrl.on_epoch(make_snapshot(5, cfg.epoch_us, wifi, bad));
  ASSERT_EQ(actions.size(), 1u);
  EXPECT_EQ(actions[0].value, 22.0);
}

TEST(Controller, HealthyPrrResetsHopPatience) {
  ControlConfig cfg;
  cfg.enabled = true;
  cfg.epoch_us = 100000.0;
  cfg.hop.enabled = true;
  cfg.hop.min_prr = 0.85;
  cfg.hop.patience = 2;
  cfg.hop.cooldown_epochs = 0;
  std::vector<ZigbeeNodeContext> ctx(1);
  ctx[0].candidates = {16};
  Controller ctrl(cfg, ctx, 0, true);

  const std::vector<NodeObservation> wifi;
  const std::vector<NodeObservation> bad = {mote_obs(10, 1, 4000.0)};
  const std::vector<NodeObservation> good = {mote_obs(10, 10, 4000.0)};
  EXPECT_TRUE(ctrl.on_epoch(make_snapshot(0, cfg.epoch_us, wifi, bad)).empty());
  // A healthy epoch wipes the consecutive-below count.
  EXPECT_TRUE(ctrl.on_epoch(make_snapshot(1, cfg.epoch_us, wifi, good)).empty());
  EXPECT_TRUE(ctrl.on_epoch(make_snapshot(2, cfg.epoch_us, wifi, bad)).empty());
  EXPECT_EQ(ctrl.on_epoch(make_snapshot(3, cfg.epoch_us, wifi, bad)).size(),
            1u);
}

TEST(Controller, DutyShapingThrottlesEveryWifiSourceAndReleases) {
  ControlConfig cfg;
  cfg.enabled = true;
  cfg.epoch_us = 100000.0;
  cfg.duty.enabled = true;
  cfg.duty.min_zigbee_prr = 0.9;
  cfg.duty.rate_scale = 0.5;
  cfg.duty.patience = 2;
  cfg.duty.release = 2;
  std::vector<ZigbeeNodeContext> ctx(1);
  Controller ctrl(cfg, ctx, /*num_wifi=*/2, true);

  const std::vector<NodeObservation> wifi(2);
  const std::vector<NodeObservation> bad = {mote_obs(10, 5, 4000.0)};
  const std::vector<NodeObservation> good = {mote_obs(10, 10, 4000.0)};

  EXPECT_TRUE(ctrl.on_epoch(make_snapshot(0, cfg.epoch_us, wifi, bad)).empty());
  EXPECT_FALSE(ctrl.shaping());
  auto actions = ctrl.on_epoch(make_snapshot(1, cfg.epoch_us, wifi, bad));
  ASSERT_EQ(actions.size(), 2u);  // one throttle per WiFi source
  for (std::size_t i = 0; i < actions.size(); ++i) {
    EXPECT_EQ(actions[i].kind, ActionKind::kWifiRateScale);
    EXPECT_EQ(actions[i].node, i);
    EXPECT_EQ(actions[i].value, 0.5);
  }
  EXPECT_TRUE(ctrl.shaping());

  EXPECT_TRUE(ctrl.on_epoch(make_snapshot(2, cfg.epoch_us, wifi, good)).empty());
  actions = ctrl.on_epoch(make_snapshot(3, cfg.epoch_us, wifi, good));
  ASSERT_EQ(actions.size(), 2u);
  EXPECT_EQ(actions[0].value, 1.0);
  EXPECT_FALSE(ctrl.shaping());
}

}  // namespace
}  // namespace sledzig::control

namespace sledzig::sim {
namespace {

std::size_t count_trace(const SimResult& r, TraceType type) {
  std::size_t n = 0;
  for (const auto& e : r.trace) n += (e.type == type) ? 1 : 0;
  return n;
}

void expect_conservation(const SimResult& r, const std::string& context) {
  std::size_t node = 0;
  for (const auto* side : {&r.wifi, &r.zigbee}) {
    for (const auto& n : *side) {
      EXPECT_EQ(n.generated, n.delivered + n.queue_dropped + n.cca_dropped +
                                 n.retry_exhausted + n.lost_to_crash +
                                 n.in_flight_at_end)
          << context << " node " << node;
      ++node;
    }
  }
}

double aggregate_zigbee_prr(const SimResult& r) {
  double sent = 0.0;
  double delivered = 0.0;
  for (const auto& n : r.zigbee) {
    sent += static_cast<double>(n.sent);
    delivered += static_cast<double>(n.delivered);
  }
  return sent > 0.0 ? delivered / sent : 0.0;
}

double total_wifi_throughput_kbps(const SimResult& r) {
  double sum = 0.0;
  for (const auto& n : r.wifi) sum += n.throughput_kbps;
  return sum;
}

TEST(ControlPlane, InactiveControlLeavesDigestsUntouched) {
  // control.enabled without any policy is a no-op by contract: no epoch
  // events on the queue, digest byte-identical to the pre-control engine.
  auto base = control_ab_scenario(false, /*duration_s=*/0.5, 33);
  base.metrics = nullptr;
  const auto plain = run_scenario(base);
  auto armed = base;
  armed.control.enabled = true;  // active() still false: no policy on
  armed.control.epoch_us = 50000.0;
  const auto r = run_scenario(armed);
  EXPECT_EQ(plain.trace_digest, r.trace_digest);
  EXPECT_EQ(plain.events_processed, r.events_processed);
}

TEST(ControlPlane, EpochEventsAndActionsLandInTheTrace) {
  auto cfg = control_ab_scenario(true, /*duration_s=*/1.0, 7);
  cfg.record_trace = true;
  cfg.metrics = nullptr;
  const auto r = run_scenario(cfg);
  expect_conservation(r, "controlled-ab");
  // Epoch boundaries at 0.1s .. 0.9s (the horizon itself is not observed).
  EXPECT_EQ(count_trace(r, TraceType::kControlEpoch), 9u);
  // The congested motes must actually hop in this topology.
  EXPECT_GT(count_trace(r, TraceType::kControlHop), 0u);
  for (const auto& e : r.trace) {
    if (e.type == TraceType::kControlHop) {
      EXPECT_GE(e.aux, 11);
      EXPECT_LE(e.aux, 26);
    }
  }
}

TEST(ControlPlane, ControlledRunsAreBitIdenticalAcrossThreadCounts) {
  auto cfg = control_ab_scenario(true, /*duration_s=*/0.5, 11);
  cfg.metrics = nullptr;
  const auto once = run_scenario(cfg);
  const auto again = run_scenario(cfg);
  ASSERT_EQ(once.trace_digest, again.trace_digest);

  constexpr std::size_t kReps = 8;
  std::vector<std::vector<SimResult>> by_pool;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    common::ThreadPool pool(threads);
    by_pool.push_back(run_replications(pool, cfg, kReps));
  }
  for (std::size_t rep = 0; rep < kReps; ++rep) {
    for (std::size_t p = 1; p < by_pool.size(); ++p) {
      EXPECT_EQ(by_pool[0][rep].trace_digest, by_pool[p][rep].trace_digest)
          << "replication " << rep << " differs between pools";
    }
  }
}

/// The A/B topology under every fault family at once with all three
/// policies armed — the control-plane chaos leg.
ScenarioConfig controlled_chaos_scenario(std::uint64_t seed) {
  auto cfg = control_ab_scenario(true, /*duration_s=*/0.4, seed);
  cfg.control.duty.enabled = true;
  cfg.control.duty.min_zigbee_prr = 0.9;
  cfg.control.duty.rate_scale = 0.5;
  cfg.control.duty.patience = 2;
  cfg.control.duty.release = 4;

  auto& rnd = cfg.faults.random;
  rnd.crash_rate_per_s = 4.0;
  rnd.mean_downtime_us = 30000.0;
  rnd.mute_rate_per_s = 2.0;
  rnd.mean_mute_us = 15000.0;
  rnd.surge_rate_per_s = 2.0;
  rnd.mean_surge_us = 40000.0;
  rnd.surge_magnitude = 4.0;

  JammerConfig jam;
  jam.pos = {3.0, 1.5};  // on top of the congested motes
  jam.mean_on_us = 2000.0;
  jam.mean_off_us = 30000.0;
  cfg.faults.jammers.push_back(jam);
  cfg.faults.clocks = {{/*skew_us=*/120.0, /*drift_ppm=*/80.0},
                       {-40.0, -120.0},
                       {15.0, 200.0}};

  cfg.invariants.enabled = true;
  cfg.invariants.max_event_gap_us = 2.0 * cfg.duration_s * 1e6;
  cfg.metrics = nullptr;
  return cfg;
}

TEST(ControlPlane, ChaosSchedulesWithPoliciesHoldInvariantsAcross1_2_8Threads) {
  constexpr std::size_t kSchedules = 30;
  const auto cfg = controlled_chaos_scenario(0xC0A71);
  const std::vector<std::size_t> pools = {1, 2, 8};
  std::vector<std::vector<SimResult>> by_pool;
  for (const std::size_t threads : pools) {
    common::ThreadPool pool(threads);
    try {
      by_pool.push_back(run_replications(pool, cfg, kSchedules));
    } catch (const InvariantViolation& v) {
      FAIL() << "invariant violated with " << threads
             << " thread(s) — replay: controlled_chaos_scenario, seed "
             << v.seed() << ", t=" << v.time_us() << " us\n  " << v.what();
    }
  }
  std::size_t crashed = 0;
  for (std::size_t rep = 0; rep < kSchedules; ++rep) {
    const auto& base = by_pool.front()[rep];
    const std::string ctx = "schedule " + std::to_string(rep);
    expect_conservation(base, ctx);
    for (std::size_t p = 1; p < by_pool.size(); ++p) {
      ASSERT_EQ(base.trace_digest, by_pool[p][rep].trace_digest)
          << ctx << ": digest differs between " << pools[0] << " and "
          << pools[p] << " threads";
    }
    for (const auto* side : {&base.wifi, &base.zigbee}) {
      for (const auto& n : *side) crashed += n.lost_to_crash;
    }
  }
  EXPECT_GT(crashed, 0u) << "chaos sweep never crashed a frame";
}

TEST(ControlPlane, ControllerBeatsStaticSledzigOnMixedWorkload) {
  // The acceptance A/B (ISSUE 10): same topology, traffic and seed; the
  // only difference is the runtime controller.  The controlled arm must
  // strictly improve aggregate ZigBee PRR and keep WiFi within 5%.
  constexpr double kDuration = 2.0;
  constexpr std::uint64_t kSeed = 2026;
  auto fixed = control_ab_scenario(false, kDuration, kSeed);
  auto controlled = control_ab_scenario(true, kDuration, kSeed);
  fixed.metrics = nullptr;
  controlled.metrics = nullptr;
  const auto a = run_scenario(fixed);
  const auto b = run_scenario(controlled);
  expect_conservation(a, "static arm");
  expect_conservation(b, "controlled arm");

  const double static_prr = aggregate_zigbee_prr(a);
  const double controlled_prr = aggregate_zigbee_prr(b);
  const double static_wifi = total_wifi_throughput_kbps(a);
  const double controlled_wifi = total_wifi_throughput_kbps(b);
  EXPECT_GT(controlled_prr, static_prr)
      << "controller failed to improve aggregate ZigBee PRR ("
      << controlled_prr << " vs " << static_prr << ")";
  EXPECT_GE(controlled_wifi, 0.95 * static_wifi)
      << "controller cost WiFi more than 5% throughput ("
      << controlled_wifi << " vs " << static_wifi << " kbps)";
}

}  // namespace
}  // namespace sledzig::sim
