// Failure-injection tests: corrupted inputs, truncated buffers and hostile
// conditions must degrade gracefully (clean error returns, never crashes or
// silently wrong successes).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "channel/medium.h"
#include "common/rng.h"
#include "common/units.h"
#include "mac/zigbee_csma.h"
#include "sledzig/encoder.h"
#include "wifi/convolutional.h"
#include "wifi/interleaver.h"
#include "wifi/ofdm.h"
#include "wifi/preamble.h"
#include "wifi/qam.h"
#include "wifi/receiver.h"
#include "wifi/signal_field.h"
#include "wifi/transmitter.h"
#include "zigbee/receiver.h"
#include "zigbee/transmitter.h"

namespace sledzig {
namespace {

TEST(FailureInjection, WifiReceiverAtHopelessSnr) {
  common::Rng rng(701);
  wifi::WifiTxConfig tx;
  tx.modulation = wifi::Modulation::kQam256;
  tx.rate = wifi::CodingRate::kR56;
  const auto psdu = rng.bytes(100);
  auto packet = wifi::wifi_transmit(psdu, tx);
  // 5 dB SNR against a 31 dB requirement: preamble may still correlate but
  // the payload must not silently "succeed".
  for (auto& s : packet.samples) {
    s += rng.complex_gaussian(common::db_to_linear(-5.0));
  }
  const auto rx = wifi::wifi_receive(packet.samples, wifi::WifiRxConfig{});
  if (rx.signal_valid) {
    EXPECT_NE(rx.psdu, psdu);  // CRC-less PHY: garbage out is acceptable,
                               // silent success is not expected here.
  }
}

TEST(FailureInjection, WifiReceiverOnTruncatedPacket) {
  common::Rng rng(702);
  wifi::WifiTxConfig tx;
  const auto packet = wifi::wifi_transmit(rng.bytes(200), tx);
  for (std::size_t keep :
       {std::size_t{10}, std::size_t{320}, std::size_t{420},
        packet.samples.size() / 2}) {
    const auto rx = wifi::wifi_receive(
        std::span<const common::Cplx>(packet.samples).first(keep),
        wifi::WifiRxConfig{});
    EXPECT_TRUE(rx.psdu.empty()) << keep;
  }
}

TEST(FailureInjection, WifiReceiverWrongWidthDoesNotCrash) {
  common::Rng rng(703);
  wifi::WifiTxConfig tx;
  tx.width = wifi::ChannelWidth::k40MHz;
  const auto packet = wifi::wifi_transmit(rng.bytes(100), tx);
  wifi::WifiRxConfig rx20;  // mismatch on purpose
  const auto rx = wifi::wifi_receive(packet.samples, rx20);
  EXPECT_TRUE(rx.psdu.empty());
}

TEST(FailureInjection, SledzigDecodeCorruptedLengthHeader) {
  common::Rng rng(704);
  core::SledzigConfig cfg;
  const auto enc = core::sledzig_encode(rng.bytes(50), cfg);
  // Flipping transmit bits may corrupt the embedded length; the decoder
  // must either return the wrong payload or nullopt — never crash.
  for (int trial = 0; trial < 50; ++trial) {
    auto corrupted = enc.transmit_psdu;
    corrupted[static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(corrupted.size()) - 1))] ^=
        static_cast<std::uint8_t>(1 << rng.uniform_int(0, 7));
    const auto dec = core::sledzig_decode(corrupted, cfg);
    (void)dec;
  }
  SUCCEED();
}

TEST(FailureInjection, SledzigDecodeEmptyAndTiny) {
  core::SledzigConfig cfg;
  EXPECT_FALSE(core::sledzig_decode({}, cfg).has_value());
  EXPECT_FALSE(core::sledzig_decode({0xff}, cfg).has_value());
}

TEST(FailureInjection, SledzigDecodeWrongChannelConfig) {
  // Decoding with the wrong channel strips the wrong positions; the result
  // must not equal the payload (and usually fails the length check).
  common::Rng rng(705);
  core::SledzigConfig enc_cfg;
  enc_cfg.channel = core::OverlapChannel::kCh1;
  const auto payload = rng.bytes(100);
  const auto enc = core::sledzig_encode(payload, enc_cfg);
  core::SledzigConfig dec_cfg = enc_cfg;
  dec_cfg.channel = core::OverlapChannel::kCh3;
  const auto dec = core::sledzig_decode(enc.transmit_psdu, dec_cfg);
  if (dec.has_value()) {
    EXPECT_NE(*dec, payload);
  }
}

TEST(FailureInjection, SledzigDecodeWrongSeed) {
  common::Rng rng(706);
  core::SledzigConfig cfg;
  const auto payload = rng.bytes(80);
  const auto enc = core::sledzig_encode(payload, cfg);
  core::SledzigConfig wrong = cfg;
  wrong.scrambler_seed = 0x11;
  const auto dec = core::sledzig_decode(enc.transmit_psdu, wrong);
  if (dec.has_value()) {
    EXPECT_NE(*dec, payload);
  }
}

TEST(FailureInjection, ZigbeeReceiverMidFrameCut) {
  common::Rng rng(707);
  const auto tx = zigbee::zigbee_transmit(rng.bytes(60));
  const auto rx = zigbee::zigbee_receive(
      std::span<const common::Cplx>(tx.samples)
          .first(tx.samples.size() / 2));
  EXPECT_FALSE(rx.crc_ok);
}

TEST(FailureInjection, ZigbeeReceiverCorruptedSfd) {
  common::Rng rng(708);
  auto tx = zigbee::zigbee_transmit(rng.bytes(30));
  // Blank out the SFD symbol region (octet 4 => samples 4*640..5*640).
  for (std::size_t i = 4 * 640; i < 5 * 640 && i < tx.samples.size(); ++i) {
    tx.samples[i] = common::Cplx(0.0, 0.0);
  }
  const auto rx = zigbee::zigbee_receive(tx.samples);
  EXPECT_FALSE(rx.crc_ok);
}

TEST(FailureInjection, ZigbeeJammedBeyondRecovery) {
  // Note: the channel-select filter buys back ~9 dB against wideband noise,
  // so -10 dB SNR is actually recoverable; -22 dB is not.
  common::Rng rng(709);
  const auto payload = rng.bytes(30);
  const auto tx = zigbee::zigbee_transmit(payload);
  common::CplxVec jammed(tx.samples);
  for (auto& s : jammed) {
    s += rng.complex_gaussian(common::db_to_linear(22.0));  // -22 dB SNR
  }
  const auto rx = zigbee::zigbee_receive(jammed);
  EXPECT_FALSE(rx.crc_ok && rx.payload == payload);
}

TEST(FailureInjection, ChannelFilterBuysProcessingGain) {
  // Companion positive case: -10 dB wideband SNR decodes *because of* the
  // channel filter, and fails without it.
  common::Rng rng(712);
  const auto payload = rng.bytes(30);
  const auto tx = zigbee::zigbee_transmit(payload);
  common::CplxVec jammed(tx.samples);
  for (auto& s : jammed) {
    s += rng.complex_gaussian(common::db_to_linear(10.0));
  }
  const auto with_filter = zigbee::zigbee_receive(jammed);
  EXPECT_TRUE(with_filter.crc_ok);
  EXPECT_EQ(with_filter.payload, payload);
  zigbee::ZigbeeRxConfig no_filter;
  no_filter.channel_filter_cutoff_hz = 0.0;
  const auto without = zigbee::zigbee_receive(jammed, no_filter);
  EXPECT_FALSE(without.crc_ok && without.payload == payload);
}

TEST(FailureInjection, MacSimDegenerateParams) {
  common::Rng rng(710);
  mac::WifiMacParams wifi_params;
  wifi_params.duty_ratio = 1.0;
  wifi_params.airtime_us = 100.0;  // tiny bursts
  const mac::WifiTimeline tl(wifi_params, 1e6, rng);
  mac::ZigbeeMacParams zb;
  zb.payload_octets = 1;
  zb.processing_us = 0.0;
  const auto result = mac::simulate_zigbee_link(
      tl, zb, mac::ZigbeeLinkBudget{}, mac::SymbolErrorModel{}, rng);
  EXPECT_GE(result.throughput_kbps, 0.0);
}

TEST(FailureInjection, EncoderRejectsOversizedPayload) {
  core::SledzigConfig cfg;
  EXPECT_THROW(
      core::sledzig_encode(common::Bytes(core::kMaxSledzigPayload + 1, 0), cfg),
      std::invalid_argument);
}

TEST(FailureInjection, MediumRejectsNullEmission) {
  common::Rng rng(711);
  std::vector<channel::Emission> bad = {{nullptr, -50.0, 0.0, 0}};
  EXPECT_THROW(channel::mix_at_receiver(bad, 1000, rng),
               std::invalid_argument);
}

// --- Hostile SIGNAL fields ------------------------------------------------

TEST(FailureInjection, FuzzedSignalWordsParseInvalidWithoutBlowups) {
  // Every 24-bit word must either parse to a mode in the RATE table with a
  // 12-bit LENGTH, or cleanly return nullopt -- never throw or mis-size.
  common::Rng rng(720);
  std::size_t accepted = 0;
  for (int trial = 0; trial < 5000; ++trial) {
    const auto bits = rng.bits(24);
    const auto field = wifi::decode_signal_bits(bits);
    if (field) {
      ++accepted;
      EXPECT_LE(field->psdu_octets, 4095u);
    }
  }
  // Parity + RATE-table screening rejects the bulk of random words.
  EXPECT_LT(accepted, 2500u);
}

TEST(FailureInjection, SignalWordBadParityRejected) {
  wifi::SignalField f;
  f.modulation = wifi::Modulation::kQam64;
  f.rate = wifi::CodingRate::kR23;
  f.psdu_octets = 600;
  auto bits = wifi::encode_signal_bits(f);
  ASSERT_TRUE(wifi::decode_signal_bits(bits).has_value());
  bits[17] ^= 1;  // parity bit
  EXPECT_FALSE(wifi::decode_signal_bits(bits).has_value());
  bits[17] ^= 1;
  bits[3] ^= 1;  // RATE bit: parity now stale
  EXPECT_FALSE(wifi::decode_signal_bits(bits).has_value());
}

TEST(FailureInjection, SignalWordUnknownRateRejected) {
  // RATE codes 0x0 and 0xB..0xF have no table entry; build words with
  // correct parity so only the RATE screening can reject them.
  for (std::uint8_t code : {0x0, 0xB, 0xC, 0xD, 0xE, 0xF}) {
    common::Bits bits;
    common::append_uint(bits, code, 4);
    bits.push_back(0);  // reserved
    common::append_uint(bits, 1500, 12);
    bits.push_back(common::parity(bits));
    for (int i = 0; i < 6; ++i) bits.push_back(0);
    EXPECT_FALSE(wifi::decode_signal_bits(bits).has_value()) << int(code);
  }
}

TEST(FailureInjection, MaximalSignalLengthDoesNotBlowUpReceiver) {
  // A parity-correct SIGNAL claiming the maximal 4095-octet LENGTH over a
  // buffer that carries no data symbols: the receiver must classify it as
  // truncated, not allocate for it.
  wifi::SignalField f;
  f.modulation = wifi::Modulation::kBpsk;  // largest symbol count per octet
  f.rate = wifi::CodingRate::kR12;
  f.psdu_octets = 4095;
  const auto& preamble = wifi::full_preamble(wifi::ChannelWidth::k20MHz);
  common::CplxVec samples(preamble.begin(), preamble.end());
  const auto sig = wifi::modulate_signal_symbol(f);
  samples.insert(samples.end(), sig.begin(), sig.end());

  wifi::WifiRxConfig cfg;
  cfg.correct_cfo = false;  // clean waveform; keep sync trivial
  const auto rx = wifi::wifi_receive(samples, cfg);
  EXPECT_TRUE(rx.detected);
  EXPECT_TRUE(rx.signal_valid);
  EXPECT_EQ(rx.signal.psdu_octets, 4095u);
  EXPECT_EQ(rx.error, common::RxError::kTruncatedPayload);
  EXPECT_TRUE(rx.psdu.empty());

  // With a receiver-side cap below the claimed LENGTH the structured reason
  // is the cap itself.
  cfg.max_psdu_octets = 1024;
  const auto capped = wifi::wifi_receive(samples, cfg);
  EXPECT_EQ(capped.error, common::RxError::kSignalLengthCap);
  EXPECT_TRUE(capped.psdu.empty());
}

TEST(FailureInjection, BadParitySignalSymbolReportsSignalParity) {
  // Modulate a SIGNAL word whose parity bit is deliberately wrong (same
  // chain as modulate_signal_symbol, bits corrupted before encoding): a
  // clean channel then delivers exactly the bad word to the receiver.
  const auto& plan = wifi::channel_plan(wifi::ChannelWidth::k20MHz);
  wifi::SignalField f;
  f.modulation = wifi::Modulation::kQam16;
  f.rate = wifi::CodingRate::kR12;
  f.psdu_octets = 100;
  auto bits = wifi::encode_signal_bits(f);
  bits[17] ^= 1;  // break even parity
  bits.resize(wifi::coded_bits_per_symbol(wifi::Modulation::kBpsk, plan) / 2, 0);
  const auto coded = wifi::convolutional_encode(bits);
  const auto interleaved = wifi::interleave(coded, wifi::Modulation::kBpsk, plan);
  const auto points = wifi::qam_map(interleaved, wifi::Modulation::kBpsk);
  const auto symbol = wifi::modulate_ofdm_symbol(points, /*symbol_index=*/0, plan);

  const auto& preamble = wifi::full_preamble(wifi::ChannelWidth::k20MHz);
  common::CplxVec samples(preamble.begin(), preamble.end());
  samples.insert(samples.end(), symbol.begin(), symbol.end());

  wifi::WifiRxConfig cfg;
  cfg.correct_cfo = false;
  const auto rx = wifi::wifi_receive(samples, cfg);
  EXPECT_TRUE(rx.detected);
  EXPECT_FALSE(rx.signal_valid);
  EXPECT_EQ(rx.error, common::RxError::kSignalParity);
}

// --- Structured RxError reasons -------------------------------------------

TEST(FailureInjection, WifiTruncationReportsStructuredReason) {
  common::Rng rng(721);
  wifi::WifiTxConfig tx;
  const auto packet = wifi::wifi_transmit(rng.bytes(200), tx);
  const auto rx = wifi::wifi_receive(
      std::span<const common::Cplx>(packet.samples)
          .first(packet.samples.size() / 2),
      wifi::WifiRxConfig{});
  EXPECT_TRUE(rx.psdu.empty());
  EXPECT_NE(rx.error, common::RxError::kNone);
  if (rx.signal_valid) {
    EXPECT_EQ(rx.error, common::RxError::kTruncatedPayload);
  }
}

TEST(FailureInjection, NanSamplesRefusedUpFront) {
  common::Rng rng(722);
  wifi::WifiTxConfig tx;
  auto packet = wifi::wifi_transmit(rng.bytes(50), tx);
  packet.samples[123] = common::Cplx(std::numeric_limits<double>::quiet_NaN(), 0.0);
  const auto rx = wifi::wifi_receive(packet.samples, wifi::WifiRxConfig{});
  EXPECT_EQ(rx.error, common::RxError::kNanSamples);
  EXPECT_FALSE(rx.detected);

  auto ztx = zigbee::zigbee_transmit(rng.bytes(20));
  ztx.samples[77] = common::Cplx(0.0, std::numeric_limits<double>::infinity());
  const auto zrx = zigbee::zigbee_receive(ztx.samples);
  EXPECT_EQ(zrx.error, common::RxError::kNanSamples);
  EXPECT_FALSE(zrx.crc_ok);
}

TEST(FailureInjection, ZigbeeErrorsNameTheFailingStage) {
  common::Rng rng(723);
  // Noise only: no preamble.
  common::CplxVec noise(4000);
  for (auto& s : noise) s = rng.complex_gaussian(1.0);
  EXPECT_EQ(zigbee::zigbee_receive(noise).error, common::RxError::kNoPreamble);

  // Mid-frame cut after the header: payload truncated.
  const auto tx = zigbee::zigbee_transmit(rng.bytes(60));
  const auto cut = zigbee::zigbee_receive(
      std::span<const common::Cplx>(tx.samples).first(tx.samples.size() / 2));
  EXPECT_FALSE(cut.crc_ok);
  EXPECT_NE(cut.error, common::RxError::kNone);

  // Successful decode carries kNone.
  const auto ok = zigbee::zigbee_receive(tx.samples);
  EXPECT_TRUE(ok.crc_ok);
  EXPECT_EQ(ok.error, common::RxError::kNone);
  EXPECT_TRUE(ok.ok());
}

// --- Power-measurement guards ---------------------------------------------

TEST(FailureInjection, PowerStatsSurviveEmptyAndNonFiniteInput) {
  const common::CplxVec empty;
  EXPECT_EQ(channel::total_power_dbm(empty),
            -std::numeric_limits<double>::infinity());
  EXPECT_EQ(channel::rssi_2mhz_slice_dbm(empty),
            -std::numeric_limits<double>::infinity());
  EXPECT_EQ(channel::rssi_2mhz_dbm(empty, 0.0),
            -std::numeric_limits<double>::infinity());

  common::CplxVec one{common::Cplx(1.0, 0.0)};
  EXPECT_EQ(channel::rssi_2mhz_dbm(one, 0.0),
            -std::numeric_limits<double>::infinity());

  common::Rng rng(724);
  common::CplxVec polluted(512);
  for (auto& s : polluted) s = rng.complex_gaussian(1.0);
  polluted[17] = common::Cplx(std::numeric_limits<double>::quiet_NaN(), 0.0);
  polluted[400] = common::Cplx(std::numeric_limits<double>::infinity(), 1.0);
  EXPECT_TRUE(std::isfinite(channel::total_power_dbm(polluted)));
  EXPECT_TRUE(std::isfinite(channel::rssi_2mhz_slice_dbm(polluted)));
  EXPECT_TRUE(std::isfinite(channel::rssi_2mhz_dbm(polluted, 0.0)));

  common::CplxVec all_nan(
      64, common::Cplx(std::numeric_limits<double>::quiet_NaN(),
                       std::numeric_limits<double>::quiet_NaN()));
  EXPECT_EQ(channel::total_power_dbm(all_nan),
            -std::numeric_limits<double>::infinity());
}

}  // namespace
}  // namespace sledzig
