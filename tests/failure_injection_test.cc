// Failure-injection tests: corrupted inputs, truncated buffers and hostile
// conditions must degrade gracefully (clean error returns, never crashes or
// silently wrong successes).
#include <gtest/gtest.h>

#include "channel/medium.h"
#include "common/rng.h"
#include "common/units.h"
#include "mac/zigbee_csma.h"
#include "sledzig/encoder.h"
#include "wifi/receiver.h"
#include "wifi/transmitter.h"
#include "zigbee/receiver.h"
#include "zigbee/transmitter.h"

namespace sledzig {
namespace {

TEST(FailureInjection, WifiReceiverAtHopelessSnr) {
  common::Rng rng(701);
  wifi::WifiTxConfig tx;
  tx.modulation = wifi::Modulation::kQam256;
  tx.rate = wifi::CodingRate::kR56;
  const auto psdu = rng.bytes(100);
  auto packet = wifi::wifi_transmit(psdu, tx);
  // 5 dB SNR against a 31 dB requirement: preamble may still correlate but
  // the payload must not silently "succeed".
  for (auto& s : packet.samples) {
    s += rng.complex_gaussian(common::db_to_linear(-5.0));
  }
  const auto rx = wifi::wifi_receive(packet.samples, wifi::WifiRxConfig{});
  if (rx.signal_valid) {
    EXPECT_NE(rx.psdu, psdu);  // CRC-less PHY: garbage out is acceptable,
                               // silent success is not expected here.
  }
}

TEST(FailureInjection, WifiReceiverOnTruncatedPacket) {
  common::Rng rng(702);
  wifi::WifiTxConfig tx;
  const auto packet = wifi::wifi_transmit(rng.bytes(200), tx);
  for (std::size_t keep :
       {std::size_t{10}, std::size_t{320}, std::size_t{420},
        packet.samples.size() / 2}) {
    const auto rx = wifi::wifi_receive(
        std::span<const common::Cplx>(packet.samples).first(keep),
        wifi::WifiRxConfig{});
    EXPECT_TRUE(rx.psdu.empty()) << keep;
  }
}

TEST(FailureInjection, WifiReceiverWrongWidthDoesNotCrash) {
  common::Rng rng(703);
  wifi::WifiTxConfig tx;
  tx.width = wifi::ChannelWidth::k40MHz;
  const auto packet = wifi::wifi_transmit(rng.bytes(100), tx);
  wifi::WifiRxConfig rx20;  // mismatch on purpose
  const auto rx = wifi::wifi_receive(packet.samples, rx20);
  EXPECT_TRUE(rx.psdu.empty());
}

TEST(FailureInjection, SledzigDecodeCorruptedLengthHeader) {
  common::Rng rng(704);
  core::SledzigConfig cfg;
  const auto enc = core::sledzig_encode(rng.bytes(50), cfg);
  // Flipping transmit bits may corrupt the embedded length; the decoder
  // must either return the wrong payload or nullopt — never crash.
  for (int trial = 0; trial < 50; ++trial) {
    auto corrupted = enc.transmit_psdu;
    corrupted[static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(corrupted.size()) - 1))] ^=
        static_cast<std::uint8_t>(1 << rng.uniform_int(0, 7));
    const auto dec = core::sledzig_decode(corrupted, cfg);
    (void)dec;
  }
  SUCCEED();
}

TEST(FailureInjection, SledzigDecodeEmptyAndTiny) {
  core::SledzigConfig cfg;
  EXPECT_FALSE(core::sledzig_decode({}, cfg).has_value());
  EXPECT_FALSE(core::sledzig_decode({0xff}, cfg).has_value());
}

TEST(FailureInjection, SledzigDecodeWrongChannelConfig) {
  // Decoding with the wrong channel strips the wrong positions; the result
  // must not equal the payload (and usually fails the length check).
  common::Rng rng(705);
  core::SledzigConfig enc_cfg;
  enc_cfg.channel = core::OverlapChannel::kCh1;
  const auto payload = rng.bytes(100);
  const auto enc = core::sledzig_encode(payload, enc_cfg);
  core::SledzigConfig dec_cfg = enc_cfg;
  dec_cfg.channel = core::OverlapChannel::kCh3;
  const auto dec = core::sledzig_decode(enc.transmit_psdu, dec_cfg);
  if (dec.has_value()) {
    EXPECT_NE(*dec, payload);
  }
}

TEST(FailureInjection, SledzigDecodeWrongSeed) {
  common::Rng rng(706);
  core::SledzigConfig cfg;
  const auto payload = rng.bytes(80);
  const auto enc = core::sledzig_encode(payload, cfg);
  core::SledzigConfig wrong = cfg;
  wrong.scrambler_seed = 0x11;
  const auto dec = core::sledzig_decode(enc.transmit_psdu, wrong);
  if (dec.has_value()) {
    EXPECT_NE(*dec, payload);
  }
}

TEST(FailureInjection, ZigbeeReceiverMidFrameCut) {
  common::Rng rng(707);
  const auto tx = zigbee::zigbee_transmit(rng.bytes(60));
  const auto rx = zigbee::zigbee_receive(
      std::span<const common::Cplx>(tx.samples)
          .first(tx.samples.size() / 2));
  EXPECT_FALSE(rx.crc_ok);
}

TEST(FailureInjection, ZigbeeReceiverCorruptedSfd) {
  common::Rng rng(708);
  auto tx = zigbee::zigbee_transmit(rng.bytes(30));
  // Blank out the SFD symbol region (octet 4 => samples 4*640..5*640).
  for (std::size_t i = 4 * 640; i < 5 * 640 && i < tx.samples.size(); ++i) {
    tx.samples[i] = common::Cplx(0.0, 0.0);
  }
  const auto rx = zigbee::zigbee_receive(tx.samples);
  EXPECT_FALSE(rx.crc_ok);
}

TEST(FailureInjection, ZigbeeJammedBeyondRecovery) {
  // Note: the channel-select filter buys back ~9 dB against wideband noise,
  // so -10 dB SNR is actually recoverable; -22 dB is not.
  common::Rng rng(709);
  const auto payload = rng.bytes(30);
  const auto tx = zigbee::zigbee_transmit(payload);
  common::CplxVec jammed(tx.samples);
  for (auto& s : jammed) {
    s += rng.complex_gaussian(common::db_to_linear(22.0));  // -22 dB SNR
  }
  const auto rx = zigbee::zigbee_receive(jammed);
  EXPECT_FALSE(rx.crc_ok && rx.payload == payload);
}

TEST(FailureInjection, ChannelFilterBuysProcessingGain) {
  // Companion positive case: -10 dB wideband SNR decodes *because of* the
  // channel filter, and fails without it.
  common::Rng rng(712);
  const auto payload = rng.bytes(30);
  const auto tx = zigbee::zigbee_transmit(payload);
  common::CplxVec jammed(tx.samples);
  for (auto& s : jammed) {
    s += rng.complex_gaussian(common::db_to_linear(10.0));
  }
  const auto with_filter = zigbee::zigbee_receive(jammed);
  EXPECT_TRUE(with_filter.crc_ok);
  EXPECT_EQ(with_filter.payload, payload);
  zigbee::ZigbeeRxConfig no_filter;
  no_filter.channel_filter_cutoff_hz = 0.0;
  const auto without = zigbee::zigbee_receive(jammed, no_filter);
  EXPECT_FALSE(without.crc_ok && without.payload == payload);
}

TEST(FailureInjection, MacSimDegenerateParams) {
  common::Rng rng(710);
  mac::WifiMacParams wifi_params;
  wifi_params.duty_ratio = 1.0;
  wifi_params.airtime_us = 100.0;  // tiny bursts
  const mac::WifiTimeline tl(wifi_params, 1e6, rng);
  mac::ZigbeeMacParams zb;
  zb.payload_octets = 1;
  zb.processing_us = 0.0;
  const auto result = mac::simulate_zigbee_link(
      tl, zb, mac::ZigbeeLinkBudget{}, mac::SymbolErrorModel{}, rng);
  EXPECT_GE(result.throughput_kbps, 0.0);
}

TEST(FailureInjection, EncoderRejectsOversizedPayload) {
  core::SledzigConfig cfg;
  EXPECT_THROW(
      core::sledzig_encode(common::Bytes(core::kMaxSledzigPayload + 1, 0), cfg),
      std::invalid_argument);
}

TEST(FailureInjection, MediumRejectsNullEmission) {
  common::Rng rng(711);
  std::vector<channel::Emission> bad = {{nullptr, -50.0, 0.0, 0}};
  EXPECT_THROW(channel::mix_at_receiver(bad, 1000, rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace sledzig
