// Tests for the fragmentation/reassembly layer.
#include <algorithm>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "sledzig/stream.h"

namespace sledzig::core {
namespace {

SledzigConfig test_cfg() {
  SledzigConfig cfg;
  cfg.modulation = wifi::Modulation::kQam64;
  cfg.rate = wifi::CodingRate::kR23;
  cfg.channel = OverlapChannel::kCh4;
  return cfg;
}

TEST(Stream, SingleChunkMessage) {
  common::Rng rng(801);
  const auto cfg = test_cfg();
  const auto message = rng.bytes(100);
  const auto psdus = stream_encode(message, 7, cfg, 1024);
  ASSERT_EQ(psdus.size(), 1u);
  StreamReassembler rx;
  const auto out = rx.push(psdus[0], cfg);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, message);
  EXPECT_EQ(rx.pending_streams(), 0u);
}

TEST(Stream, MultiChunkInOrder) {
  common::Rng rng(802);
  const auto cfg = test_cfg();
  const auto message = rng.bytes(3000);
  const auto psdus = stream_encode(message, 42, cfg, 512);
  ASSERT_EQ(psdus.size(), 6u);
  StreamReassembler rx;
  for (std::size_t i = 0; i + 1 < psdus.size(); ++i) {
    EXPECT_FALSE(rx.push(psdus[i], cfg).has_value());
  }
  const auto out = rx.push(psdus.back(), cfg);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, message);
}

TEST(Stream, OutOfOrderAndDuplicates) {
  common::Rng rng(803);
  const auto cfg = test_cfg();
  const auto message = rng.bytes(2000);
  auto psdus = stream_encode(message, 1, cfg, 300);
  ASSERT_EQ(psdus.size(), 7u);

  std::vector<std::size_t> order = {6, 2, 2, 0, 4, 1, 5, 0, 3};
  StreamReassembler rx;
  std::optional<common::Bytes> out;
  for (std::size_t idx : order) {
    auto result = rx.push(psdus[idx], cfg);
    if (result) {
      EXPECT_FALSE(out.has_value());  // completes exactly once
      out = result;
    }
  }
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, message);
}

TEST(Stream, InterleavedStreams) {
  common::Rng rng(804);
  const auto cfg = test_cfg();
  const auto msg_a = rng.bytes(700);
  const auto msg_b = rng.bytes(900);
  const auto psdus_a = stream_encode(msg_a, 10, cfg, 256);
  const auto psdus_b = stream_encode(msg_b, 11, cfg, 256);

  StreamReassembler rx;
  std::optional<common::Bytes> out_a, out_b;
  const std::size_t rounds = std::max(psdus_a.size(), psdus_b.size());
  for (std::size_t i = 0; i < rounds; ++i) {
    if (i < psdus_a.size()) {
      if (auto r = rx.push(psdus_a[i], cfg)) out_a = r;
    }
    if (i < psdus_b.size()) {
      if (auto r = rx.push(psdus_b[i], cfg)) out_b = r;
    }
  }
  ASSERT_TRUE(out_a.has_value());
  ASSERT_TRUE(out_b.has_value());
  EXPECT_EQ(*out_a, msg_a);
  EXPECT_EQ(*out_b, msg_b);
}

TEST(Stream, EmptyMessage) {
  const auto cfg = test_cfg();
  const auto psdus = stream_encode({}, 3, cfg);
  ASSERT_EQ(psdus.size(), 1u);
  StreamReassembler rx;
  const auto out = rx.push(psdus[0], cfg);
  ASSERT_TRUE(out.has_value());
  EXPECT_TRUE(out->empty());
}

TEST(Stream, MissingChunkNeverCompletes) {
  common::Rng rng(805);
  const auto cfg = test_cfg();
  const auto psdus = stream_encode(rng.bytes(1500), 5, cfg, 256);
  StreamReassembler rx;
  for (std::size_t i = 0; i < psdus.size(); ++i) {
    if (i == 2) continue;  // drop one chunk
    EXPECT_FALSE(rx.push(psdus[i], cfg).has_value());
  }
  EXPECT_EQ(rx.pending_streams(), 1u);
  rx.abort_stream(5);
  EXPECT_EQ(rx.pending_streams(), 0u);
}

TEST(Stream, ParseRejectsBadHeaders) {
  EXPECT_FALSE(parse_stream_chunk({1, 2, 3}).has_value());  // too short
  // total == 0:
  EXPECT_FALSE(parse_stream_chunk({0, 0, 0, 0, 0, 0}).has_value());
  // seq >= total:
  EXPECT_FALSE(parse_stream_chunk({0, 0, 5, 0, 2, 0}).has_value());
  // minimal valid:
  EXPECT_TRUE(parse_stream_chunk({0, 0, 0, 0, 1, 0}).has_value());
}

TEST(Stream, RejectsDegenerateParams) {
  const auto cfg = test_cfg();
  EXPECT_THROW(stream_encode({1, 2, 3}, 0, cfg, 0), std::invalid_argument);
  EXPECT_THROW(stream_encode(common::Bytes(70000, 0), 0, cfg, 1),
               std::invalid_argument);
}

TEST(Stream, CorruptedChunkIgnored) {
  common::Rng rng(806);
  const auto cfg = test_cfg();
  const auto message = rng.bytes(600);
  auto psdus = stream_encode(message, 9, cfg, 256);
  StreamReassembler rx;
  // A chunk decoded with the wrong config (wrong channel) is rejected or at
  // worst becomes an unrelated stream fragment; the true stream still
  // completes.
  auto wrong = cfg;
  wrong.channel = OverlapChannel::kCh1;
  (void)rx.push(psdus[0], wrong);
  std::optional<common::Bytes> out;
  for (const auto& p : psdus) {
    if (auto r = rx.push(p, cfg)) out = r;
  }
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, message);
}

}  // namespace
}  // namespace sledzig::core
