// Property-based tests: randomized sweeps over the algebraic invariants the
// system relies on.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "sledzig/encoder.h"
#include "wifi/convolutional.h"
#include "wifi/interleaver.h"
#include "wifi/puncture.h"
#include "wifi/qam.h"
#include "wifi/scrambler.h"
#include "zigbee/chips.h"
#include "zigbee/frame.h"

namespace sledzig {
namespace {

using common::Bits;
using common::Bytes;

// Every nonzero 7-bit scrambler seed generates a period-127 keystream and a
// self-inverse scrambler.
class AllScramblerSeeds : public ::testing::TestWithParam<int> {};

TEST_P(AllScramblerSeeds, SelfInverseAndPeriodic) {
  const auto seed = static_cast<std::uint8_t>(GetParam());
  common::Rng rng(static_cast<std::uint64_t>(GetParam()));
  const auto data = rng.bits(300);
  EXPECT_EQ(wifi::descramble(wifi::scramble(data, seed), seed), data);
  const auto seq = wifi::scrambler_sequence(seed, 254);
  for (std::size_t i = 0; i < 127; ++i) {
    EXPECT_EQ(seq[i], seq[i + 127]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AllScramblerSeeds,
                         ::testing::Range(1, 128, 9));

TEST(Property, ConvolutionalCodeIsLinear) {
  // enc(a ^ b) == enc(a) ^ enc(b) over GF(2) — the property the SledZig
  // GF(2) solver depends on.
  common::Rng rng(601);
  for (int trial = 0; trial < 25; ++trial) {
    const auto a = rng.bits(200);
    const auto b = rng.bits(200);
    Bits ab(200);
    for (std::size_t i = 0; i < 200; ++i) ab[i] = (a[i] ^ b[i]) & 1u;
    const auto ea = wifi::convolutional_encode(a);
    const auto eb = wifi::convolutional_encode(b);
    const auto eab = wifi::convolutional_encode(ab);
    for (std::size_t i = 0; i < eab.size(); ++i) {
      EXPECT_EQ(eab[i], (ea[i] ^ eb[i]) & 1u);
    }
  }
}

TEST(Property, ViterbiIsLeftInverseOfEncoder) {
  common::Rng rng(602);
  for (int trial = 0; trial < 20; ++trial) {
    const auto len = 32 + static_cast<std::size_t>(rng.uniform_int(0, 400));
    Bits in = rng.bits(len);
    for (std::size_t i = 0; i < wifi::kTailBits; ++i) in.push_back(0);
    const auto coded = wifi::convolutional_encode(in);
    const std::vector<std::int8_t> soft(coded.begin(), coded.end());
    EXPECT_EQ(wifi::viterbi_decode(soft), in) << "len " << len;
  }
}

TEST(Property, PunctureDepunctureComposeAcrossRates) {
  common::Rng rng(603);
  for (auto rate : {wifi::CodingRate::kR12, wifi::CodingRate::kR23,
                    wifi::CodingRate::kR34, wifi::CodingRate::kR56}) {
    for (int trial = 0; trial < 10; ++trial) {
      const auto mask = wifi::puncture_mask(rate);
      const std::size_t periods = 5 + static_cast<std::size_t>(rng.uniform_int(0, 40));
      const auto coded = rng.bits(periods * mask.size());
      const auto punctured = wifi::puncture(coded, rate);
      const auto soft = wifi::depuncture(punctured, rate);
      ASSERT_EQ(soft.size(), coded.size());
      for (std::size_t i = 0; i < coded.size(); ++i) {
        if (soft[i] != wifi::kErased) {
          EXPECT_EQ(soft[i], static_cast<std::int8_t>(coded[i]));
        }
      }
    }
  }
}

TEST(Property, QamGrayNeighboursDifferByOneBit) {
  // Adjacent constellation points along each axis differ in exactly one
  // bit — the Gray property that bounds demap bit errors.
  for (auto m : {wifi::Modulation::kQam16, wifi::Modulation::kQam64,
                 wifi::Modulation::kQam256}) {
    const std::size_t half = wifi::bits_per_subcarrier(m) / 2;
    const double k = wifi::qam_norm(m);
    const int levels = 1 << half;
    for (int a = 0; a < levels - 1; ++a) {
      const double va = (2 * a - (levels - 1)) * k;
      const double vb = (2 * (a + 1) - (levels - 1)) * k;
      const auto bits_a =
          wifi::qam_demap_point(common::Cplx(va, va), m);
      const auto bits_b =
          wifi::qam_demap_point(common::Cplx(vb, va), m);
      EXPECT_EQ(common::hamming_distance(bits_a, bits_b), 1u)
          << wifi::to_string(m) << " level " << a;
    }
  }
}

TEST(Property, SledzigFuzzRoundTrip) {
  // Random (mode, channel, seed, length) combinations must round-trip and
  // never report collisions or violations.
  common::Rng rng(604);
  const auto& modes = wifi::paper_phy_modes();
  for (int trial = 0; trial < 30; ++trial) {
    const auto& mode = modes[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(modes.size()) - 1))];
    core::SledzigConfig cfg;
    cfg.modulation = mode.modulation;
    cfg.rate = mode.rate;
    cfg.channel = static_cast<core::OverlapChannel>(rng.uniform_int(0, 3));
    cfg.scrambler_seed =
        static_cast<std::uint8_t>(rng.uniform_int(1, 127));
    const auto payload =
        rng.bytes(static_cast<std::size_t>(rng.uniform_int(0, 600)));
    const auto enc = core::sledzig_encode(payload, cfg);
    EXPECT_EQ(enc.num_collisions, 0u) << trial;
    EXPECT_EQ(enc.num_violations, 0u) << trial;
    const auto dec = core::sledzig_decode(enc.transmit_psdu, cfg);
    ASSERT_TRUE(dec.has_value()) << trial;
    EXPECT_EQ(*dec, payload) << trial;
  }
}

TEST(Property, SledzigExtraPositionsAreDataIndependent) {
  // The decoder recomputes the plan with no knowledge of the payload: two
  // different payloads of the same size must use identical positions.
  common::Rng rng(605);
  core::SledzigConfig cfg;
  cfg.modulation = wifi::Modulation::kQam64;
  cfg.rate = wifi::CodingRate::kR34;
  cfg.channel = core::OverlapChannel::kCh3;
  const auto a = core::sledzig_encode(rng.bytes(120), cfg);
  const auto b = core::sledzig_encode(rng.bytes(120), cfg);
  EXPECT_EQ(a.transmit_psdu.size(), b.transmit_psdu.size());
  EXPECT_EQ(a.num_extra_bits, b.num_extra_bits);
}

TEST(Property, InterleaverBlocksAreIndependent) {
  common::Rng rng(606);
  const auto m = wifi::Modulation::kQam64;
  const std::size_t n_cbps = wifi::coded_bits_per_symbol(m);
  const auto block1 = rng.bits(n_cbps);
  const auto block2 = rng.bits(n_cbps);
  Bits both = block1;
  both.insert(both.end(), block2.begin(), block2.end());
  const auto interleaved = wifi::interleave(both, m);
  const auto only1 = wifi::interleave(block1, m);
  for (std::size_t i = 0; i < n_cbps; ++i) {
    EXPECT_EQ(interleaved[i], only1[i]);
  }
}

TEST(Property, ChipSequencesBalanced) {
  // Every 802.15.4 chip sequence is exactly half ones (DC-free after
  // O-QPSK mapping).
  for (const auto& seq : zigbee::chip_table()) {
    std::size_t ones = 0;
    for (auto c : seq) ones += c;
    EXPECT_EQ(ones, zigbee::kChipsPerSymbol / 2);
  }
}

TEST(Property, CrcDetectsAllSingleBitErrors) {
  common::Rng rng(607);
  const auto payload = rng.bytes(40);
  const auto good = zigbee::crc16_ccitt(payload);
  for (std::size_t byte = 0; byte < payload.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      auto corrupted = payload;
      corrupted[byte] ^= static_cast<std::uint8_t>(1 << bit);
      EXPECT_NE(zigbee::crc16_ccitt(corrupted), good);
    }
  }
}

TEST(Property, TransmitBitsLookRandom) {
  // SledZig output should not introduce long runs (the scrambler still
  // whitens it): check the longest run of identical bits stays modest.
  common::Rng rng(608);
  core::SledzigConfig cfg;
  cfg.modulation = wifi::Modulation::kQam16;
  cfg.rate = wifi::CodingRate::kR12;
  cfg.channel = core::OverlapChannel::kCh2;
  const auto enc = core::sledzig_encode(rng.bytes(500), cfg);
  const auto bits = common::bytes_to_bits(enc.transmit_psdu);
  std::size_t longest = 0, run = 0;
  common::Bit prev = 2;
  for (auto b : bits) {
    run = (b == prev) ? run + 1 : 1;
    prev = b;
    longest = std::max(longest, run);
  }
  EXPECT_LT(longest, 30u);
}

}  // namespace
}  // namespace sledzig
