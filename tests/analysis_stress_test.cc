// Concurrency stress harness for the `analysis` ctest label.
//
// These tests exist to be run under ThreadSanitizer (SLEDZIG_TSAN=ON): they
// hammer every piece of shared mutable state in the library — the FFT plan
// cache, the default thread pool, the in-band offset memo cache — from many
// threads at once, and simultaneously assert that the results are
// bit-identical to a serial run.  In a plain build they double as cheap
// determinism/regression checks, so they run in tier-1 as well.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "coex/inband.h"
#include "common/fft.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "sledzig/significant_bits.h"

namespace sledzig {
namespace {

// ---------------------------------------------------------------------------
// SLEDZIG_THREADS parsing hardening (satellite: garbage / 0 / negative /
// huge values must clamp to a sane pool size, never UB).
// ---------------------------------------------------------------------------

class ThreadEnvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const char* prev = std::getenv("SLEDZIG_THREADS");
    if (prev != nullptr) saved_ = prev;
  }
  void TearDown() override {
    if (saved_.empty()) {
      ::unsetenv("SLEDZIG_THREADS");
    } else {
      ::setenv("SLEDZIG_THREADS", saved_.c_str(), 1);
    }
  }
  static std::size_t count_with(const char* value) {
    ::setenv("SLEDZIG_THREADS", value, 1);
    return common::default_thread_count();
  }
  static std::size_t hardware_default() {
    ::unsetenv("SLEDZIG_THREADS");
    return common::default_thread_count();
  }

 private:
  std::string saved_;
};

TEST_F(ThreadEnvTest, ValidValuesAreHonoured) {
  EXPECT_EQ(count_with("1"), 1u);
  EXPECT_EQ(count_with("7"), 7u);
  EXPECT_EQ(count_with("16"), 16u);
  EXPECT_EQ(count_with("16\n"), 16u);  // trailing whitespace tolerated
}

TEST_F(ThreadEnvTest, HugeValuesClampToCeiling) {
  EXPECT_EQ(count_with("1000000"), common::kMaxThreadCount);
  // Out of long range entirely.
  EXPECT_EQ(count_with("999999999999999999999999"), hardware_default());
}

TEST_F(ThreadEnvTest, GarbageFallsBackToHardwareDefault) {
  const std::size_t fallback = hardware_default();
  EXPECT_GE(fallback, 1u);
  EXPECT_LE(fallback, common::kMaxThreadCount);
  EXPECT_EQ(count_with(""), fallback);
  EXPECT_EQ(count_with("abc"), fallback);
  EXPECT_EQ(count_with("8abc"), fallback);  // partial parse rejected
  EXPECT_EQ(count_with("0"), fallback);
  EXPECT_EQ(count_with("-4"), fallback);
  EXPECT_EQ(count_with("0x10"), fallback);
}

// ---------------------------------------------------------------------------
// FFT plan cache: concurrent first-touch of every size, concurrent
// transforms, and bit-identical results vs a serial run.
// ---------------------------------------------------------------------------

TEST(AnalysisStressTest, FftPlanCacheConcurrentFirstTouch) {
  // Serial reference transforms, computed before the hammering so every
  // thread races on plan construction for at least the larger sizes.
  const std::vector<std::size_t> sizes{8, 16, 32, 64, 128, 256, 512, 1024};
  std::vector<common::CplxVec> inputs;
  inputs.reserve(sizes.size());
  for (std::size_t s = 0; s < sizes.size(); ++s) {
    common::Rng rng(common::derive_seed(0xff7a11, s));
    common::CplxVec v(sizes[s]);
    for (auto& c : v) c = {rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
    inputs.push_back(std::move(v));
  }
  std::vector<common::CplxVec> reference;
  reference.reserve(sizes.size());
  for (const auto& v : inputs) reference.push_back(common::fft(v));

  const unsigned n_threads = 8;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(n_threads);
  for (unsigned t = 0; t < n_threads; ++t) {
    threads.emplace_back([&] {
      for (int rep = 0; rep < 16; ++rep) {
        for (std::size_t s = 0; s < sizes.size(); ++s) {
          const common::CplxVec out = common::fft(inputs[s]);
          if (out != reference[s]) mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
}

// ---------------------------------------------------------------------------
// Thread pool: many submitter threads sharing the default pool, nested
// parallel calls, and thread-count invariance of a mixed workload.
// ---------------------------------------------------------------------------

namespace {

/// A deterministic per-index workload touching the FFT cache and RNG
/// derivation — the same shape the Monte-Carlo sweeps have.
double trial_value(std::uint64_t base_seed, std::size_t i) {
  common::Rng rng(common::derive_seed(base_seed, i));
  common::CplxVec v(64);
  for (auto& c : v) c = {rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
  const common::CplxVec spec = common::fft(v);
  double acc = 0.0;
  for (const auto& c : spec) acc += std::norm(c);
  return acc;
}

}  // namespace

TEST(AnalysisStressTest, ParallelMapMatchesSerialForAnyThreadCount) {
  constexpr std::size_t kTrials = 200;
  constexpr std::uint64_t kSeed = 0x5eed;
  common::ThreadPool serial(1);
  const auto reference = common::parallel_map(
      serial, kTrials, [&](std::size_t i) { return trial_value(kSeed, i); });
  for (const std::size_t threads : {2u, 4u, 8u}) {
    common::ThreadPool pool(threads);
    const auto out = common::parallel_map(
        pool, kTrials, [&](std::size_t i) { return trial_value(kSeed, i); });
    EXPECT_EQ(out, reference) << "thread count " << threads;
  }
}

TEST(AnalysisStressTest, ConcurrentSubmittersShareOnePool) {
  // Multiple external threads queueing batches on one pool exercises the
  // batch_in_flight hand-off path that a single-submitter run never hits.
  common::ThreadPool pool(4);
  constexpr std::size_t kTrials = 64;
  const auto reference = [&] {
    common::ThreadPool serial(1);
    return common::parallel_map(serial, kTrials, [&](std::size_t i) {
      return trial_value(0xabcd, i);
    });
  }();

  std::atomic<int> mismatches{0};
  std::vector<std::thread> submitters;
  submitters.reserve(4);
  for (int t = 0; t < 4; ++t) {
    submitters.emplace_back([&] {
      for (int rep = 0; rep < 8; ++rep) {
        const auto out = common::parallel_map(pool, kTrials, [&](std::size_t i) {
          return trial_value(0xabcd, i);
        });
        if (out != reference) mismatches.fetch_add(1);
      }
    });
  }
  for (auto& th : submitters) th.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(AnalysisStressTest, NestedParallelCallsStayDeterministic) {
  common::ThreadPool pool(4);
  const auto run = [&](common::ThreadPool& p) {
    return common::parallel_map(p, 16, [&](std::size_t i) {
      // Inner parallel_map degrades to a serial loop on the same thread.
      const auto inner = common::parallel_map(p, 8, [&](std::size_t j) {
        return trial_value(i, j);
      });
      double acc = 0.0;
      for (const double v : inner) acc += v;
      return acc;
    });
  };
  common::ThreadPool serial(1);
  EXPECT_EQ(run(pool), run(serial));
}

// ---------------------------------------------------------------------------
// In-band offset memo cache: concurrent misses on identical and distinct
// keys must neither race nor change the cached values.
// ---------------------------------------------------------------------------

TEST(AnalysisStressTest, InbandOffsetsCacheConcurrentAccess) {
  std::vector<core::SledzigConfig> configs(4);
  configs[0].channel = core::OverlapChannel::kCh1;
  configs[1].channel = core::OverlapChannel::kCh2;
  configs[2].channel = core::OverlapChannel::kCh3;
  configs[3].channel = core::OverlapChannel::kCh4;

  // Serial reference first — this also warms the cache for configs[0..3]
  // with sledzig=true, so the threads below mix warm hits (same keys) with
  // cold misses (sledzig=false) under contention.
  std::vector<coex::InbandOffsets> reference;
  reference.reserve(configs.size());
  for (const auto& cfg : configs) {
    reference.push_back(coex::measure_inband_offsets(cfg, /*sledzig=*/true));
  }

  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(8);
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      for (std::size_t s = 0; s < configs.size(); ++s) {
        // Half the threads start on the cold (sledzig=false) keys.
        const bool cold_first = (t % 2) == 0;
        (void)coex::measure_inband_offsets(configs[s], !cold_first);
        const auto warm =
            coex::measure_inband_offsets(configs[s], /*sledzig=*/true);
        if (warm.payload_offset_db != reference[s].payload_offset_db ||
            warm.preamble_offset_db != reference[s].preamble_offset_db) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
}

}  // namespace
}  // namespace sledzig
