// Unit tests for src/common: bit utilities, FFT, PSD/band power, stats.
#include <algorithm>
#include <cmath>
#include <limits>
#include <numbers>
#include <type_traits>
#include <utility>

#include <gtest/gtest.h>

#include "common/bits.h"
#include "common/dsp.h"
#include "common/fft.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/units.h"

namespace sledzig::common {
namespace {

TEST(Bits, BytesToBitsLsbFirst) {
  const Bytes bytes = {0x01, 0x80, 0xa5};
  const Bits bits = bytes_to_bits(bytes);
  ASSERT_EQ(bits.size(), 24u);
  EXPECT_EQ(bits[0], 1);  // 0x01 LSB first
  for (int i = 1; i < 8; ++i) EXPECT_EQ(bits[i], 0);
  for (int i = 8; i < 15; ++i) EXPECT_EQ(bits[i], 0);
  EXPECT_EQ(bits[15], 1);  // 0x80 MSB last
  // 0xa5 = 1010 0101 -> LSB first: 1,0,1,0,0,1,0,1
  const Bits expected_a5 = {1, 0, 1, 0, 0, 1, 0, 1};
  for (int i = 0; i < 8; ++i) EXPECT_EQ(bits[16 + i], expected_a5[i]);
}

TEST(Bits, RoundTrip) {
  Rng rng(42);
  for (int trial = 0; trial < 20; ++trial) {
    const Bytes bytes = rng.bytes(1 + static_cast<std::size_t>(trial) * 7);
    EXPECT_EQ(bits_to_bytes(bytes_to_bits(bytes)), bytes);
  }
}

TEST(Bits, BitsToBytesRejectsPartialOctets) {
  EXPECT_THROW(bits_to_bytes(Bits{1, 0, 1}), std::invalid_argument);
}

TEST(Bits, UintRoundTrip) {
  Bits bits;
  append_uint(bits, 0x5a3, 12);
  EXPECT_EQ(bits.size(), 12u);
  EXPECT_EQ(bits_to_uint(bits, 12), 0x5a3u);
}

TEST(Bits, Parity) {
  EXPECT_EQ(parity(Bits{1, 1, 0}), 0);
  EXPECT_EQ(parity(Bits{1, 1, 1}), 1);
  EXPECT_EQ(parity(Bits{}), 0);
}

TEST(Bits, HammingDistance) {
  EXPECT_EQ(hamming_distance(Bits{1, 0, 1, 1}, Bits{1, 1, 1, 0}), 2u);
  EXPECT_THROW(hamming_distance(Bits{1}, Bits{1, 0}), std::invalid_argument);
}

TEST(Fft, DeltaIsFlat) {
  CplxVec x(64, Cplx(0, 0));
  x[0] = Cplx(1, 0);
  const auto y = fft(x);
  for (const auto& v : y) {
    EXPECT_NEAR(v.real(), 1.0, 1e-12);
    EXPECT_NEAR(v.imag(), 0.0, 1e-12);
  }
}

TEST(Fft, SingleToneLandsInOneBin) {
  const std::size_t n = 128;
  CplxVec x(n);
  const int k0 = 5;
  for (std::size_t t = 0; t < n; ++t) {
    const double angle = 2.0 * std::numbers::pi * k0 * static_cast<double>(t) /
                         static_cast<double>(n);
    x[t] = Cplx(std::cos(angle), std::sin(angle));
  }
  const auto y = fft(x);
  for (std::size_t k = 0; k < n; ++k) {
    if (k == static_cast<std::size_t>(k0)) {
      EXPECT_NEAR(std::abs(y[k]), static_cast<double>(n), 1e-9);
    } else {
      EXPECT_NEAR(std::abs(y[k]), 0.0, 1e-9);
    }
  }
}

TEST(Fft, RoundTrip) {
  Rng rng(7);
  CplxVec x(256);
  for (auto& v : x) v = rng.complex_gaussian(1.0);
  const auto y = ifft(fft(x));
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(std::abs(y[i] - x[i]), 0.0, 1e-9);
  }
}

TEST(Fft, ParsevalHolds) {
  Rng rng(9);
  CplxVec x(512);
  for (auto& v : x) v = rng.complex_gaussian(2.0);
  const auto y = fft(x);
  EXPECT_NEAR(energy(y) / static_cast<double>(x.size()), energy(x),
              1e-6 * energy(x));
}

TEST(Fft, RejectsNonPowerOfTwo) {
  CplxVec x(48);
  EXPECT_THROW(fft(x), std::invalid_argument);
}

TEST(Units, DbConversions) {
  EXPECT_NEAR(db_to_linear(10.0), 10.0, 1e-12);
  EXPECT_NEAR(db_to_linear(3.0), 1.9952623, 1e-6);
  EXPECT_NEAR(linear_to_db(100.0), 20.0, 1e-12);
  EXPECT_NEAR(dbm_to_mw(0.0), 1.0, 1e-12);
  EXPECT_NEAR(mw_to_dbm(0.001), -30.0, 1e-12);
}

TEST(Units, ZeroAndNegativePowerHitTheSentinel) {
  // Non-positive linear power is "no signal", not NaN/UB.
  EXPECT_EQ(linear_to_db(0.0), kNoPowerDb);
  EXPECT_EQ(linear_to_db(-0.0), kNoPowerDb);
  EXPECT_EQ(linear_to_db(-1.0), kNoPowerDb);
  EXPECT_EQ(mw_to_dbm(0.0), kNoPowerDb);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(linear_to_db(nan), kNoPowerDb);
  // The sentinel stays well-ordered: threshold comparisons are false, not
  // poisoned, and min/max behave.
  EXPECT_FALSE(kNoPowerDb > -200.0);
  EXPECT_EQ(std::max(kNoPowerDb, -85.0), -85.0);
}

TEST(Units, SentinelRoundTripsToZeroPower) {
  // Inverse guard: -inf and NaN both map back to exactly zero power, so a
  // dB -> linear -> dB round trip is stable at the sentinel.
  EXPECT_EQ(db_to_linear(kNoPowerDb), 0.0);
  EXPECT_EQ(db_to_linear(std::numeric_limits<double>::quiet_NaN()), 0.0);
  EXPECT_EQ(linear_to_db(db_to_linear(kNoPowerDb)), kNoPowerDb);
}

TEST(Units, MeanPower) {
  CplxVec x = {{1, 0}, {0, 1}, {1, 1}};
  EXPECT_NEAR(mean_power(x), (1.0 + 1.0 + 2.0) / 3.0, 1e-12);
  EXPECT_EQ(mean_power(CplxVec{}), 0.0);
}

// --- strong unit types ----------------------------------------------------

// Detection idiom: does `A op B` compile?  The point of the strong types
// is as much what they forbid as what they allow, so the forbidden
// operations are pinned here as compile-time facts.
template <typename A, typename B, typename = void>
struct CanAdd : std::false_type {};
template <typename A, typename B>
struct CanAdd<A, B, std::void_t<decltype(std::declval<A>() + std::declval<B>())>>
    : std::true_type {};

template <typename A, typename B, typename = void>
struct CanSub : std::false_type {};
template <typename A, typename B>
struct CanSub<A, B, std::void_t<decltype(std::declval<A>() - std::declval<B>())>>
    : std::true_type {};

template <typename A, typename B, typename = void>
struct CanDiv : std::false_type {};
template <typename A, typename B>
struct CanDiv<A, B, std::void_t<decltype(std::declval<A>() / std::declval<B>())>>
    : std::true_type {};

template <typename A, typename B, typename = void>
struct CanCompare : std::false_type {};
template <typename A, typename B>
struct CanCompare<A, B,
                  std::void_t<decltype(std::declval<A>() < std::declval<B>())>>
    : std::true_type {};

TEST(StrongTypes, PhysicallyMeaningfulAlgebra) {
  // Offsetting an absolute level by a gain stays absolute.
  EXPECT_DOUBLE_EQ((Dbm{-70.0} + Db{3.0}).value(), -67.0);
  EXPECT_DOUBLE_EQ((Dbm{-70.0} - Db{3.0}).value(), -73.0);
  // Two absolute levels differ by a gap.
  EXPECT_DOUBLE_EQ((Dbm{-60.0} - Dbm{-70.0}).value(), 10.0);
  // Gains add, scale, and ratio out to plain numbers.
  EXPECT_DOUBLE_EQ((Db{2.0} + Db{3.0}).value(), 5.0);
  EXPECT_DOUBLE_EQ((2.0 * Db{3.0}).value(), 6.0);
  EXPECT_DOUBLE_EQ(Db{6.0} / Db{3.0}, 2.0);
  // Linear powers add; their ratio is a plain SINR argument.
  EXPECT_DOUBLE_EQ((MilliWatt{1.0} + MilliWatt{2.0}).value(), 3.0);
  EXPECT_DOUBLE_EQ(MilliWatt{4.0} / MilliWatt{2.0}, 2.0);
  // Frequencies subtract and ratio; MHz converts exactly.
  EXPECT_DOUBLE_EQ((Hz{5e6} - Hz{2e6}).value(), 3e6);
  EXPECT_DOUBLE_EQ(Hz{2e6} / Hz{4e6}, 0.5);
  EXPECT_DOUBLE_EQ(MHz{20.0}.to_hz().value(), 20e6);

  Dbm level{-80.0};
  level += Db{5.0};
  EXPECT_DOUBLE_EQ(level.value(), -75.0);
  MilliWatt acc{1.5};
  acc += MilliWatt{0.5};
  EXPECT_DOUBLE_EQ(acc.value(), 2.0);
}

TEST(StrongTypes, MeaninglessOperationsDoNotCompile) {
  // Adding two absolute log-domain powers is never physical.
  static_assert(!CanAdd<Dbm, Dbm>::value);
  static_assert(!CanAdd<Db, Dbm>::value);
  // Log and linear domains never mix without an explicit conversion.
  static_assert(!CanAdd<Dbm, MilliWatt>::value);
  static_assert(!CanAdd<MilliWatt, Db>::value);
  static_assert(!CanSub<MilliWatt, Dbm>::value);
  static_assert(!CanCompare<Dbm, MilliWatt>::value);
  static_assert(!CanCompare<Dbm, Db>::value);
  // Nothing converts silently from or to bare double.
  static_assert(!std::is_convertible_v<double, Dbm>);
  static_assert(!std::is_convertible_v<Dbm, double>);
  static_assert(!std::is_convertible_v<double, MilliWatt>);
  static_assert(!CanAdd<Dbm, double>::value);
  static_assert(!CanDiv<Dbm, Dbm>::value);
  // The allowed cross-type ops (pinned so a refactor can't drop them).
  static_assert(CanAdd<Dbm, Db>::value);
  static_assert(CanSub<Dbm, Dbm>::value);
  static_assert(CanDiv<MilliWatt, MilliWatt>::value);
}

TEST(StrongTypes, SentinelRoundTripsThroughTypedConversions) {
  // kNoPowerDbm is "no measurable power": exactly 0 mW in the linear
  // domain, and 0 mW comes back as exactly kNoPowerDbm.
  EXPECT_EQ(to_mw(kNoPowerDbm).value(), 0.0);
  EXPECT_EQ(to_dbm(MilliWatt{0.0}), kNoPowerDbm);
  EXPECT_EQ(to_dbm(MilliWatt{-1.0}), kNoPowerDbm);
  EXPECT_EQ(to_dbm(to_mw(kNoPowerDbm)), kNoPowerDbm);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(to_mw(Dbm{nan}).value(), 0.0);
  EXPECT_EQ(ratio_to_db(0.0).value(), kNoPowerDb);
  // The sentinel stays well-ordered in the typed domain too.
  EXPECT_LT(kNoPowerDbm, Dbm{-200.0});
  EXPECT_EQ(std::max(kNoPowerDbm, Dbm{-85.0}), Dbm{-85.0});
  // And an ordinary level survives the typed round trip.
  EXPECT_NEAR(to_dbm(to_mw(Dbm{-30.0})).value(), -30.0, 1e-12);
}

TEST(StrongTypes, ZeroOverheadLayout) {
  // The wrappers must compile away: a vector<MilliWatt> is memcpy-able
  // and bit-identical in layout to a vector<double>.
  static_assert(sizeof(Db) == sizeof(double));
  static_assert(sizeof(Dbm) == sizeof(double));
  static_assert(sizeof(MilliWatt) == sizeof(double));
  static_assert(sizeof(Hz) == sizeof(double));
  static_assert(std::is_trivially_copyable_v<Dbm>);
  static_assert(std::is_trivially_copyable_v<MilliWatt>);
  static_assert(alignof(Dbm) == alignof(double));
  // Value-initialised wrappers read exactly zero (aggregate tables are
  // assign()-filled with MilliWatt{} and must mean 0 mW).
  EXPECT_EQ(MilliWatt{}.value(), 0.0);
  EXPECT_EQ(Db{}.value(), 0.0);
  EXPECT_EQ(Dbm{}.value(), 0.0);
}

TEST(Psd, WhiteNoiseTotalPowerMatches) {
  Rng rng(123);
  CplxVec x(1 << 14);
  const double power = 0.5;
  for (auto& v : x) v = rng.complex_gaussian(power);
  const auto psd = welch_psd(x, 20e6, 256);
  double total = 0.0;
  for (double b : psd.bins) total += b;
  EXPECT_NEAR(total, power, 0.05 * power);
}

TEST(Psd, ToneShowsUpInTheRightBand) {
  const double fs = 20e6;
  const double f0 = 3e6;
  CplxVec x(1 << 14);
  for (std::size_t t = 0; t < x.size(); ++t) {
    const double angle = 2.0 * std::numbers::pi * f0 *
                         static_cast<double>(t) / fs;
    x[t] = Cplx(std::cos(angle), std::sin(angle));
  }
  const auto psd = welch_psd(x, fs, 256);
  const double in_band = psd.band_power(2.5e6, 3.5e6);
  const double out_band = psd.band_power(-9e6, 2e6);
  EXPECT_GT(in_band, 0.9);
  EXPECT_LT(out_band, 0.05);
}

TEST(Psd, BandPowerSplitsProportionally) {
  Rng rng(55);
  CplxVec x(1 << 14);
  for (auto& v : x) v = rng.complex_gaussian(1.0);
  const auto psd = welch_psd(x, 20e6, 256);
  // A 2 MHz slice of white noise over 20 MHz carries ~10% of the power.
  const double band = psd.band_power(-1e6, 1e6);
  EXPECT_NEAR(band, 0.1, 0.03);
}

TEST(Dsp, FrequencyShiftMovesTone) {
  const double fs = 20e6;
  CplxVec x(1 << 13, Cplx(1.0, 0.0));  // DC tone
  const auto shifted = frequency_shift(x, 5e6, fs);
  const auto psd = welch_psd(shifted, fs, 256);
  EXPECT_GT(psd.band_power(4.5e6, 5.5e6), 0.9);
  EXPECT_LT(psd.band_power(-1e6, 1e6), 0.05);
}

TEST(Dsp, FrequencyShiftPreservesPower) {
  Rng rng(3);
  CplxVec x(1 << 12);
  for (auto& v : x) v = rng.complex_gaussian(1.0);
  const auto shifted = frequency_shift(x, -7e6, 20e6);
  EXPECT_NEAR(mean_power(shifted), mean_power(x), 1e-9);
}

TEST(Stats, Quantiles) {
  const std::vector<double> xs = {5, 1, 3, 2, 4};
  EXPECT_NEAR(quantile(xs, 0.0), 1.0, 1e-12);
  EXPECT_NEAR(quantile(xs, 0.5), 3.0, 1e-12);
  EXPECT_NEAR(quantile(xs, 1.0), 5.0, 1e-12);
  EXPECT_NEAR(quantile(xs, 0.25), 2.0, 1e-12);
}

TEST(Stats, BoxStats) {
  const std::vector<double> xs = {1, 2, 3, 4, 100};
  const auto b = box_stats(xs);
  EXPECT_EQ(b.min, 1.0);
  EXPECT_EQ(b.max, 100.0);
  EXPECT_EQ(b.median, 3.0);
  EXPECT_NEAR(b.mean, 22.0, 1e-12);
}

TEST(Stats, MeanAndStddev) {
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_NEAR(mean(xs), 5.0, 1e-12);
  EXPECT_NEAR(stddev(xs), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Rng, Deterministic) {
  Rng a(99), b(99);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.bit(), b.bit());
  }
}

TEST(Rng, ComplexGaussianPower) {
  Rng rng(4);
  double acc = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) acc += std::norm(rng.complex_gaussian(3.0));
  EXPECT_NEAR(acc / n, 3.0, 0.15);
}

}  // namespace
}  // namespace sledzig::common
