// Randomized robustness sweep: the full WiFi and ZigBee loopbacks run
// through hundreds of sampled impairment configurations.  Invariants:
//
//   1. No crashes / sanitizer reports (the suite runs under ASan+UBSan in
//      the `robustness` ctest label).
//   2. No silent wrong-success: a decode reported as fully valid (RxError
//      kNone plus the integrity check -- CRC-32 carried inside the WiFi
//      payload, the FCS for ZigBee) never yields a payload different from
//      what was sent.
//   3. Packet success rate degrades monotonically along a severity axis.
//   4. Determinism: identical (ImpairmentConfig, seed) reproduces the
//      identical waveform bit-for-bit.
#include <gtest/gtest.h>

#include <cstring>

#include "channel/impairments.h"
#include "channel/medium.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "wifi/receiver.h"
#include "wifi/transmitter.h"
#include "zigbee/receiver.h"
#include "zigbee/transmitter.h"

namespace sledzig {
namespace {

/// Bitwise CRC-32 (IEEE reflected, poly 0xEDB88320).  The WiFi PHY has no
/// FCS, so the sweep carries one inside the payload to tell "pipeline
/// completed on garbage" apart from a genuinely correct decode.
std::uint32_t crc32(const common::Bytes& data) {
  std::uint32_t crc = 0xffffffffu;
  for (std::uint8_t byte : data) {
    crc ^= byte;
    for (int k = 0; k < 8; ++k) {
      crc = (crc >> 1) ^ (0xedb88320u & (0u - (crc & 1u)));
    }
  }
  return ~crc;
}

common::Bytes with_crc(const common::Bytes& payload) {
  common::Bytes out = payload;
  const std::uint32_t c = crc32(payload);
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>((c >> (8 * i)) & 0xffu));
  }
  return out;
}

bool crc_checks(const common::Bytes& psdu) {
  if (psdu.size() < 4) return false;
  common::Bytes payload(psdu.begin(), psdu.end() - 4);
  std::uint32_t c = 0;
  for (int i = 0; i < 4; ++i) {
    c |= static_cast<std::uint32_t>(psdu[psdu.size() - 4 +
                                         static_cast<std::size_t>(i)])
         << (8 * i);
  }
  return crc32(payload) == c;
}

struct TrialOutcome {
  bool valid_success = false;  // error == kNone and integrity check passed
  bool payload_match = false;
  bool contract_ok = false;  // receiver's ok()/output invariant held
  common::RxError error = common::RxError::kNone;
};

/// One WiFi loopback through the impaired medium at ~36 dB clean SNR (all
/// paper modes decode comfortably when the chain is idle).
TrialOutcome run_wifi_trial(const channel::ImpairmentConfig& imp,
                            std::uint64_t seed, wifi::Modulation m,
                            wifi::CodingRate r) {
  common::Rng rng(seed);
  const auto sent = with_crc(rng.bytes(40));

  wifi::WifiTxConfig tx;
  tx.modulation = m;
  tx.rate = r;
  const auto packet = wifi::wifi_transmit(sent, tx);

  channel::Emission e{&packet.samples, -45.0, 0.0, 160, &imp, seed};
  const auto rx_samples = channel::mix_at_receiver(
      std::vector<channel::Emission>{e}, packet.samples.size() + 480, rng);
  const auto rx = wifi::wifi_receive(rx_samples, wifi::WifiRxConfig{});

  TrialOutcome out;
  out.error = rx.error;
  out.valid_success = rx.ok() && crc_checks(rx.psdu);
  out.payload_match = rx.psdu == sent;
  // Contract: kNone iff a PSDU was produced.  Recorded, not EXPECTed, so
  // trials may run inside the thread pool (gtest assertions are not
  // thread-safe); the callers assert serially.
  out.contract_ok = rx.ok() == !rx.psdu.empty();
  return out;
}

TrialOutcome run_zigbee_trial(const channel::ImpairmentConfig& imp,
                              std::uint64_t seed) {
  common::Rng rng(seed);
  const auto sent = rng.bytes(16);
  const auto tx = zigbee::zigbee_transmit(sent);

  channel::Emission e{&tx.samples, -60.0, 0.0, 320, &imp, seed};
  const auto rx_samples = channel::mix_at_receiver(
      std::vector<channel::Emission>{e}, tx.samples.size() + 960, rng);
  const auto rx = zigbee::zigbee_receive(rx_samples);

  TrialOutcome out;
  out.error = rx.error;
  out.valid_success = rx.ok();
  out.payload_match = rx.payload == sent;
  out.contract_ok = rx.ok() == rx.crc_ok;
  return out;
}

/// Draws a random impairment configuration spanning mild to hostile.
channel::ImpairmentConfig sample_config(common::Rng& rng) {
  channel::ImpairmentConfig c;
  if (rng.uniform() < 0.3) {
    c.iq_imbalance = true;
    c.iq_gain_mismatch_db = rng.uniform(-1.0, 1.0);
    c.iq_phase_error_deg = rng.uniform(-5.0, 5.0);
  }
  if (rng.uniform() < 0.3) {
    c.clipping = true;
    c.clip_level_rms = rng.uniform(0.5, 3.0);
  }
  if (rng.uniform() < 0.3) {
    c.multipath = true;
    c.multipath_taps = static_cast<std::size_t>(rng.uniform_int(2, 6));
    c.delay_spread_samples = rng.uniform(0.5, 3.0);
  }
  if (rng.uniform() < 0.3) {
    c.interference = true;
    c.interferer_power_db = rng.uniform(-25.0, 0.0);
    c.interferer_freq_offset_hz = rng.uniform(-8e6, 8e6);
    c.interferer_bandwidth_hz = rng.uniform(1e6, 4e6);
    c.burst_duty = rng.uniform(0.1, 0.9);
    c.mean_burst_samples = rng.uniform(100.0, 1000.0);
  }
  if (rng.uniform() < 0.4) {
    c.cfo = true;
    c.cfo_hz = rng.uniform(-2e5, 2e5);
    c.cfo_drift_hz_per_s = rng.uniform(-1e6, 1e6);
    c.phase_noise_std_rad = rng.uniform(0.0, 0.01);
  }
  if (rng.uniform() < 0.3) {
    c.clock_offset = true;
    c.clock_offset_ppm = rng.uniform(-200.0, 200.0);
  }
  if (rng.uniform() < 0.3) {
    c.quantization = true;
    c.quant_bits = static_cast<unsigned>(rng.uniform_int(4, 12));
  }
  if (rng.uniform() < 0.2) {
    c.faults = true;
    c.truncate_fraction = rng.uniform(0.3, 1.0);
    c.sample_drop_prob = rng.uniform(0.0, 0.005);
  }
  return c;
}

TEST(ImpairmentSweep, WifiRandomConfigsNeverCrashOrSilentlySucceedWrong) {
  const std::pair<wifi::Modulation, wifi::CodingRate> modes[] = {
      {wifi::Modulation::kQam16, wifi::CodingRate::kR12},
      {wifi::Modulation::kQam64, wifi::CodingRate::kR23},
      {wifi::Modulation::kQam256, wifi::CodingRate::kR34},
  };
  // The 210 trials run through the pool; all gtest assertions stay on this
  // thread, evaluated over the gathered outcomes.
  const auto outcomes = common::parallel_map(210, [&](std::size_t i) {
    common::Rng cfg_rng(9000 + i);
    const auto cfg = sample_config(cfg_rng);
    const auto& [m, r] = modes[i % 3];
    return run_wifi_trial(cfg, 50000 + i, m, r);
  });
  std::size_t wrong_success = 0, successes = 0;
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const auto& out = outcomes[i];
    SCOPED_TRACE(i);
    EXPECT_TRUE(out.contract_ok);
    if (out.valid_success) {
      ++successes;
      if (!out.payload_match) ++wrong_success;
    } else {
      // A failed decode must carry a structured reason (possibly kNone with
      // a bad CRC -- "pipeline completed on garbage" -- which is precisely
      // why the integrity check exists; everything else names its stage).
      EXPECT_TRUE(out.error != common::RxError::kNone || !out.payload_match);
    }
  }
  EXPECT_EQ(wrong_success, 0u);
  EXPECT_EQ(outcomes.size(), 210u);
  // Sanity: the ranges must not be so hostile that nothing ever decodes.
  EXPECT_GT(successes, 20u);
}

TEST(ImpairmentSweep, ZigbeeRandomConfigsNeverCrashOrSilentlySucceedWrong) {
  const auto outcomes = common::parallel_map(30, [](std::size_t i) {
    common::Rng cfg_rng(7000 + i);
    const auto cfg = sample_config(cfg_rng);
    return run_zigbee_trial(cfg, 60000 + i);
  });
  std::size_t wrong_success = 0, successes = 0;
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const auto& out = outcomes[i];
    SCOPED_TRACE(i);
    EXPECT_TRUE(out.contract_ok);
    if (out.valid_success) {
      ++successes;
      if (!out.payload_match) ++wrong_success;
    }
  }
  EXPECT_EQ(wrong_success, 0u);
  EXPECT_GT(successes, 3u);
}

/// Packet success rate vs in-band interferer power.  The interferer
/// realization per seed is a scaled version of the same draw sequence, so
/// per-trial outcomes -- and hence the rate -- degrade monotonically.
TEST(ImpairmentSweep, SuccessRateMonotoneInInterfererPower) {
  const double severities_db[] = {-30.0, -16.0, -6.0, 2.0, 10.0};
  const std::size_t kTrials = 20;
  // Flatten (severity, trial) and fan the whole grid out at once.
  const auto outcomes =
      common::parallel_map(std::size(severities_db) * kTrials,
                           [&](std::size_t i) {
                             channel::ImpairmentConfig cfg;
                             cfg.interference = true;
                             cfg.interferer_power_db = severities_db[i / kTrials];
                             cfg.interferer_freq_offset_hz = 0.0;
                             cfg.interferer_bandwidth_hz = 0.0;  // full band
                             cfg.burst_duty = 1.0;  // continuous: pure SINR axis
                             return run_wifi_trial(cfg, 81000 + i % kTrials,
                                                   wifi::Modulation::kQam16,
                                                   wifi::CodingRate::kR12);
                           });
  std::vector<double> psr;
  for (std::size_t s = 0; s < std::size(severities_db); ++s) {
    std::size_t ok = 0;
    for (std::size_t t = 0; t < kTrials; ++t) {
      const auto& out = outcomes[s * kTrials + t];
      if (out.valid_success && out.payload_match) ++ok;
    }
    psr.push_back(static_cast<double>(ok) / kTrials);
  }
  for (std::size_t i = 0; i + 1 < psr.size(); ++i) {
    EXPECT_LE(psr[i + 1], psr[i]) << "severity step " << i;
  }
  EXPECT_EQ(psr.front(), 1.0);
  EXPECT_EQ(psr.back(), 0.0);
}

/// Same monotonicity along a PA clipping axis (smaller clip level = more
/// severe) for the clipping-sensitive 256-QAM mode.
TEST(ImpairmentSweep, SuccessRateMonotoneInClippingSeverity) {
  const double levels[] = {3.0, 1.2, 0.9, 0.7, 0.4};
  const std::size_t kTrials = 20;
  const auto outcomes = common::parallel_map(
      std::size(levels) * kTrials, [&](std::size_t i) {
        channel::ImpairmentConfig cfg;
        cfg.clipping = true;
        cfg.clip_level_rms = levels[i / kTrials];
        return run_wifi_trial(cfg, 82000 + i % kTrials,
                              wifi::Modulation::kQam256,
                              wifi::CodingRate::kR34);
      });
  std::vector<double> psr;
  for (std::size_t s = 0; s < std::size(levels); ++s) {
    std::size_t ok = 0;
    for (std::size_t t = 0; t < kTrials; ++t) {
      const auto& out = outcomes[s * kTrials + t];
      if (out.valid_success && out.payload_match) ++ok;
    }
    psr.push_back(static_cast<double>(ok) / kTrials);
  }
  for (std::size_t i = 0; i + 1 < psr.size(); ++i) {
    EXPECT_LE(psr[i + 1], psr[i]) << "clip level step " << i;
  }
  EXPECT_GT(psr.front(), psr.back());
}

TEST(ImpairmentDeterminism, ConfigAndSeedReproduceWaveformBitForBit) {
  common::Rng rng(4242);
  common::CplxVec waveform(2000);
  for (auto& s : waveform) s = rng.complex_gaussian(1.0);

  channel::ImpairmentConfig cfg;
  cfg.iq_imbalance = true;
  cfg.iq_gain_mismatch_db = 0.5;
  cfg.iq_phase_error_deg = 2.0;
  cfg.clipping = true;
  cfg.clip_level_rms = 1.5;
  cfg.multipath = true;
  cfg.interference = true;
  cfg.interferer_power_db = -8.0;
  cfg.cfo = true;
  cfg.cfo_hz = 37e3;
  cfg.phase_noise_std_rad = 0.004;
  cfg.clock_offset = true;
  cfg.clock_offset_ppm = 80.0;
  cfg.quantization = true;
  cfg.quant_bits = 10;
  cfg.faults = true;
  cfg.truncate_fraction = 0.9;
  cfg.sample_drop_prob = 0.001;

  const auto a = channel::apply_impairments(waveform, cfg, 123);
  const auto b = channel::apply_impairments(waveform, cfg, 123);
  ASSERT_EQ(a.size(), b.size());
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(0, std::memcmp(a.data(), b.data(), a.size() * sizeof(common::Cplx)));

  // A different seed must not reproduce the same waveform.
  const auto c = channel::apply_impairments(waveform, cfg, 124);
  EXPECT_TRUE(c.size() != a.size() ||
              std::memcmp(a.data(), c.data(), a.size() * sizeof(common::Cplx)) != 0);

  // Stage independence: disabling one stage leaves another stage's draws
  // untouched (multipath taps under seed 123 with vs without interference).
  channel::ImpairmentConfig only_mp;
  only_mp.multipath = true;
  channel::ImpairmentConfig mp_plus_iq = only_mp;
  mp_plus_iq.iq_imbalance = true;
  mp_plus_iq.iq_gain_mismatch_db = 0.0;  // identity-valued stage
  const auto d = channel::apply_impairments(waveform, only_mp, 123);
  const auto f = channel::apply_impairments(waveform, mp_plus_iq, 123);
  ASSERT_EQ(d.size(), f.size());
  for (std::size_t i = 0; i < d.size(); ++i) {
    EXPECT_NEAR(std::abs(d[i] - f[i]), 0.0, 1e-12);
  }
}

TEST(ImpairmentDeterminism, MediumMixWithImpairmentsIsReproducible) {
  common::Rng payload_rng(7);
  const auto sent = payload_rng.bytes(30);
  const auto tx = zigbee::zigbee_transmit(sent);

  channel::ImpairmentConfig cfg;
  cfg.cfo = true;
  cfg.cfo_hz = 15e3;
  cfg.clipping = true;
  cfg.clip_level_rms = 1.8;

  auto run = [&] {
    common::Rng rng(99);
    channel::Emission e{&tx.samples, -60.0, 0.0, 100, &cfg, 55};
    return channel::mix_at_receiver(std::vector<channel::Emission>{e},
                                    tx.samples.size() + 200, rng);
  };
  const auto a = run();
  const auto b = run();
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(0, std::memcmp(a.data(), b.data(), a.size() * sizeof(common::Cplx)));
}

TEST(ImpairmentSweep, FaultStagesProduceStructuredErrors) {
  // Truncation deep into the packet must surface as a truncated-payload (or
  // earlier) error, never as success.
  channel::ImpairmentConfig cfg;
  cfg.faults = true;
  cfg.truncate_fraction = 0.5;
  const auto out = run_wifi_trial(cfg, 91000, wifi::Modulation::kQam16,
                                  wifi::CodingRate::kR12);
  EXPECT_TRUE(out.contract_ok);
  EXPECT_FALSE(out.valid_success);
  EXPECT_NE(out.error, common::RxError::kNone);
}

}  // namespace
}  // namespace sledzig
