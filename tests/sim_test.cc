// Tests for the discrete-event multi-node coexistence engine: determinism
// (golden trace, repeated runs, replication thread-invariance) and the
// paper's headline trends emerging from the event sequence.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <string>
#include <thread>

#include "common/parallel.h"
#include "obs/metrics.h"
#include "sim/engine.h"
#include "sim/event_queue.h"

namespace sledzig::sim {
namespace {

/// Asserts the per-node packet-conservation identity: every generated
/// frame ends in exactly one terminal bucket.
void expect_conservation(const SimResult& r, const char* context) {
  std::size_t node = 0;
  for (const auto* side : {&r.wifi, &r.zigbee}) {
    for (const auto& n : *side) {
      EXPECT_EQ(n.generated, n.delivered + n.queue_dropped + n.cca_dropped +
                                 n.retry_exhausted + n.lost_to_crash +
                                 n.in_flight_at_end)
          << context << " node " << node;
      ++node;
    }
  }
}

/// One saturated WiFi link 4 m from one ZigBee pair — the paper's Fig 4
/// geometry, strong margins everywhere (no verdict rides on a borderline
/// libm result).
ScenarioConfig fig4_scenario(bool sledzig_on, double duration_s = 5.0) {
  return two_node_paper_scenario(core::SledzigConfig{}, sledzig_on,
                                 /*wifi_duty_ratio=*/1.0, /*d_wz_m=*/4.0,
                                 /*d_z_m=*/1.0, duration_s, /*seed=*/11);
}

TEST(SimEngine, SaturatedWifiAloneFillsTheChannel) {
  ScenarioConfig cfg;
  cfg.wifi.push_back(WifiNodeConfig{});
  cfg.wifi[0].rx = {0.0, 3.0};
  cfg.duration_s = 2.0;
  cfg.seed = 3;
  const auto r = run_scenario(cfg);
  ASSERT_EQ(r.wifi.size(), 1u);
  EXPECT_GT(r.wifi[0].airtime_fraction, 0.9);
  EXPECT_DOUBLE_EQ(r.wifi[0].prr, 1.0);  // nothing to collide with
  EXPECT_GT(r.wifi[0].throughput_kbps, 1000.0);
}

TEST(SimEngine, TwoContendingWifiNodesShareAndSometimesCollide) {
  ScenarioConfig cfg;
  for (int i = 0; i < 2; ++i) {
    WifiNodeConfig ap;
    ap.tx = {2.0 * i, 0.0};
    ap.rx = {2.0 * i, 3.0};
    cfg.wifi.push_back(ap);
  }
  cfg.duration_s = 5.0;
  cfg.seed = 5;
  const auto r = run_scenario(cfg);
  const double total =
      r.wifi[0].airtime_fraction + r.wifi[1].airtime_fraction;
  // Energy-detect deferral shares the channel roughly evenly; same-slot
  // picks overlap, so the sum can exceed 1 slightly and PRR dips below 1.
  EXPECT_GT(total, 0.9);
  EXPECT_GT(r.wifi[0].airtime_fraction, 0.3);
  EXPECT_GT(r.wifi[1].airtime_fraction, 0.3);
  EXPECT_LT(r.wifi[0].prr, 1.0);
  EXPECT_GT(r.wifi[0].prr, 0.7);
}

TEST(SimEngine, NormalWifiBlocksZigbeeSledzigUnblocksIt) {
  // Fig 4 end to end: under normal WiFi the ZigBee CCA almost never
  // clears (channel-access failures, queue drops, ~0 throughput); under
  // SledZig the payload presents 20+ dB less in-band energy and the mote
  // runs at its interference-free ~63 Kbps.
  const auto normal = run_scenario(fig4_scenario(false));
  const auto sled = run_scenario(fig4_scenario(true));
  ASSERT_EQ(normal.zigbee.size(), 1u);
  EXPECT_GT(normal.zigbee[0].cca_dropped, 100u);
  EXPECT_GT(normal.zigbee[0].queue_dropped, 100u);
  EXPECT_LT(normal.zigbee[0].throughput_kbps, 10.0);
  EXPECT_EQ(sled.zigbee[0].cca_dropped, 0u);
  // Default config is QAM-16, whose smaller power reduction leaves some
  // symbol errors (the paper's Fig 14 QAM-16 case) — well short of the
  // 63 Kbps ceiling but an order of magnitude above the blocked channel.
  EXPECT_GT(sled.zigbee[0].throughput_kbps, 45.0);
  EXPECT_GT(sled.zigbee[0].throughput_kbps,
            10.0 * normal.zigbee[0].throughput_kbps);
  // The WiFi node never hears the mote (Fig 17): its schedule is
  // identical whether or not the mote transmits.
  EXPECT_EQ(normal.wifi[0].sent, sled.wifi[0].sent);
}

TEST(SimEngine, Fig16TrendZigbeeThroughputHigherWithSledzigAtEveryRatio) {
  for (const double ratio : {0.2, 0.4, 0.6, 0.8, 1.0}) {
    const auto off = run_scenario(two_node_paper_scenario(
        core::SledzigConfig{}, false, ratio, 4.0, 1.0, 5.0, 11));
    const auto on = run_scenario(two_node_paper_scenario(
        core::SledzigConfig{}, true, ratio, 4.0, 1.0, 5.0, 11));
    EXPECT_GT(on.zigbee[0].throughput_kbps, off.zigbee[0].throughput_kbps)
        << "wifi traffic ratio " << ratio;
    EXPECT_GT(on.zigbee[0].throughput_kbps, 50.0) << "ratio " << ratio;
  }
}

TEST(SimEngine, QueueDropAccountingBalances) {
  auto cfg = fig4_scenario(false, 2.0);
  cfg.queue_capacity = 2;
  const auto r = run_scenario(cfg);
  const auto& z = r.zigbee[0];
  EXPECT_GT(z.queue_dropped, 0u);
  // Exact conservation, not bounds: every generated frame is delivered,
  // dropped at the queue, dropped by CCA, lost on its final attempt, or
  // still queued/in flight at the horizon — nothing vanishes, nothing is
  // double-counted.
  expect_conservation(r, "queue-drop");
  // `sent` counts attempts: first transmissions plus one per retry.
  EXPECT_EQ(z.sent - z.retries,
            z.delivered + z.retry_exhausted +
                (z.generated - z.delivered - z.queue_dropped - z.cca_dropped -
                 z.retry_exhausted - z.in_flight_at_end));
}

TEST(SimEngine, ConservationHoldsAtEveryFig16TrafficRatio) {
  // The identity must survive every traffic regime: light WiFi (idle
  // channel, frames mostly delivered), heavy WiFi (CCA drops and queue
  // drops dominate), and the transition in between — for both schemes.
  for (const bool sledzig_on : {false, true}) {
    for (const double ratio : {0.2, 0.4, 0.6, 0.8, 1.0}) {
      const auto r = run_scenario(two_node_paper_scenario(
          core::SledzigConfig{}, sledzig_on, ratio, 4.0, 1.0, 2.0, 11));
      expect_conservation(
          r, (std::string("ratio ") + std::to_string(ratio) +
              (sledzig_on ? " sledzig" : " normal"))
                 .c_str());
    }
  }
}

TEST(SimEngine, ConservationHoldsUnderRetriesAndCollisions) {
  // Two contending WiFi pairs plus a mote: collisions force WiFi losses
  // (retry_exhausted, no retries) and ZigBee retries; the identity must
  // hold with every bucket populated.
  ScenarioConfig cfg = fig4_scenario(false, 3.0);
  WifiNodeConfig second;
  second.tx = {1.0, 0.0};
  second.rx = {1.0, 3.0};
  cfg.wifi.push_back(second);
  const auto r = run_scenario(cfg);
  expect_conservation(r, "collisions");
  // WiFi never retries: a lost frame lands in retry_exhausted directly.
  EXPECT_EQ(r.wifi[0].retries, 0u);
  EXPECT_EQ(r.wifi[0].sent,
            r.wifi[0].delivered + r.wifi[0].retry_exhausted);
}

TEST(SimEngine, RepeatedRunsAreBitIdentical) {
  auto cfg = fig4_scenario(true, 2.0);
  cfg.record_trace = true;
  const auto a = run_scenario(cfg);
  const auto b = run_scenario(cfg);
  EXPECT_EQ(a.trace_digest, b.trace_digest);
  EXPECT_EQ(a.events_processed, b.events_processed);
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (std::size_t i = 0; i < a.trace.size(); ++i) {
    EXPECT_EQ(a.trace[i].time_us, b.trace[i].time_us) << "event " << i;
    EXPECT_EQ(a.trace[i].node, b.trace[i].node) << "event " << i;
    EXPECT_EQ(a.trace[i].type, b.trace[i].type) << "event " << i;
  }
}

TEST(SimEngine, DigestMatchesWithAndWithoutTraceRecording) {
  auto cfg = fig4_scenario(true, 2.0);
  cfg.record_trace = false;
  const auto quiet = run_scenario(cfg);
  cfg.record_trace = true;
  const auto traced = run_scenario(cfg);
  EXPECT_EQ(quiet.trace_digest, traced.trace_digest);
  EXPECT_TRUE(quiet.trace.empty());
  EXPECT_FALSE(traced.trace.empty());
}

TEST(SimEngine, GoldenEventTraceOpensAsExpected) {
  // The run's opening sentence is fixed by construction: the saturated
  // WiFi node's frame arrives at t=0, it wins DIFS + backoff on an idle
  // medium and transmits; the ZigBee mote's first CBR arrival follows.
  auto cfg = fig4_scenario(true, 1.0);
  cfg.record_trace = true;
  const auto r = run_scenario(cfg);
  ASSERT_GE(r.trace.size(), 3u);
  EXPECT_EQ(r.trace[0].type, TraceType::kArrival);
  EXPECT_EQ(r.trace[0].node, 0u);
  EXPECT_EQ(r.trace[0].time_us, 0.0);
  // First transmission on air is the WiFi node's, after DIFS (28) +
  // 0..15 backoff slots (9 each); the mote's first CBR arrival may land
  // in between but its CCA + turnaround take >= 320 us.
  const auto first_tx = std::find_if(
      r.trace.begin(), r.trace.end(),
      [](const TraceEvent& e) { return e.type == TraceType::kTxStart; });
  ASSERT_NE(first_tx, r.trace.end());
  EXPECT_EQ(first_tx->node, 0u);
  EXPECT_GE(first_tx->time_us, 28.0);
  EXPECT_LE(first_tx->time_us, 28.0 + 15.0 * 9.0);
  // Every trace timestamp is non-decreasing and inside the horizon.
  double prev = 0.0;
  for (const auto& e : r.trace) {
    EXPECT_GE(e.time_us, prev);
    prev = e.time_us;
  }
  EXPECT_LE(prev, 1e6 + 5000.0);  // tail transmissions may cross the horizon
}

TEST(SimEngine, ReplicationsAreThreadInvariant) {
  const auto cfg = fig4_scenario(true, 1.0);
  constexpr std::size_t kReps = 8;

  std::vector<std::vector<SimResult>> runs;
  const std::size_t hw =
      std::max(1u, std::thread::hardware_concurrency());
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}, hw}) {
    common::ThreadPool pool(threads);
    runs.push_back(run_replications(pool, cfg, kReps));
  }
  for (std::size_t t = 1; t < runs.size(); ++t) {
    ASSERT_EQ(runs[t].size(), kReps);
    for (std::size_t i = 0; i < kReps; ++i) {
      EXPECT_EQ(runs[t][i].trace_digest, runs[0][i].trace_digest)
          << "replication " << i << " pool " << t;
      EXPECT_EQ(runs[t][i].zigbee[0].delivered, runs[0][i].zigbee[0].delivered);
      EXPECT_EQ(runs[t][i].wifi[0].delivered, runs[0][i].wifi[0].delivered);
    }
  }
}

TEST(SimEngine, ReplicationsDifferFromEachOther) {
  const auto cfg = fig4_scenario(true, 1.0);
  const auto runs = run_replications(cfg, 4);
  ASSERT_EQ(runs.size(), 4u);
  EXPECT_NE(runs[0].trace_digest, runs[1].trace_digest);
  EXPECT_NE(runs[1].trace_digest, runs[2].trace_digest);
}

TEST(SimEngine, RejectsBadConfigs) {
  ScenarioConfig cfg;
  cfg.wifi.push_back(WifiNodeConfig{});
  cfg.duration_s = 0.0;
  EXPECT_THROW(run_scenario(cfg), std::invalid_argument);
  cfg.duration_s = 1.0;
  cfg.queue_capacity = 0;
  EXPECT_THROW(run_scenario(cfg), std::invalid_argument);
}

TEST(SimEngine, DistanceFloorsAtTenCentimetres) {
  EXPECT_DOUBLE_EQ(distance_m({1.0, 1.0}, {1.0, 1.0}), 0.1);
  EXPECT_DOUBLE_EQ(distance_m({0.0, 0.0}, {3.0, 4.0}), 5.0);
}

TEST(EventQueue, EqualTimeEventsPopInPushOrder) {
  EventQueue q;
  for (std::uint32_t n = 0; n < 100; ++n) {
    q.push(42.0, EventType::kArrival, n);
  }
  // FIFO at equal timestamps: node order == push order, seq strictly
  // increasing — heap internals never leak into the pop order.
  std::uint64_t prev_seq = 0;
  for (std::uint32_t n = 0; n < 100; ++n) {
    ASSERT_FALSE(q.empty());
    const Event e = q.pop();
    EXPECT_EQ(e.node, n);
    if (n > 0) {
      EXPECT_GT(e.seq, prev_seq);
    }
    prev_seq = e.seq;
  }
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, PushedCountsAndSeqsNeverAlias) {
  EventQueue q;
  std::vector<std::uint64_t> seqs;
  // Interleave pushes and pops: seq allocation must stay monotone across
  // the drains, so pushed() == number of distinct seqs ever handed out.
  for (int round = 0; round < 5; ++round) {
    for (std::uint32_t n = 0; n < 20; ++n) {
      q.push(static_cast<double>(round), EventType::kTimer, n,
             /*token=*/static_cast<std::uint64_t>(round));
    }
    while (!q.empty()) seqs.push_back(q.pop().seq);
  }
  EXPECT_EQ(q.pushed(), seqs.size());
  std::sort(seqs.begin(), seqs.end());
  EXPECT_EQ(std::adjacent_find(seqs.begin(), seqs.end()), seqs.end())
      << "duplicate seq handed out";
}

TEST(EventQueue, CancelledTimersNeverMatchTheRearmedToken) {
  // The engine's cancellation protocol: re-arming bumps the node token,
  // orphaning every earlier timer.  Flood one node with arm/cancel cycles
  // and verify exactly the final arm survives the staleness check.
  EventQueue q;
  std::uint64_t node_token = 0;
  for (int cycle = 0; cycle < 1000; ++cycle) {
    ++node_token;  // re-arm: cancels the previous timer
    q.push(5.0, EventType::kTimer, 0, node_token);
  }
  std::size_t fired = 0;
  std::size_t stale = 0;
  while (!q.empty()) {
    const Event e = q.pop();
    if (e.token == node_token) {
      ++fired;
    } else {
      ++stale;
      EXPECT_LT(e.token, node_token) << "a cancelled timer aliased a re-arm";
    }
  }
  EXPECT_EQ(fired, 1u);
  EXPECT_EQ(stale, 999u);
}

TEST(SimEngine, StaleTimersAreDiscardedAndCounted) {
  // Two contending WiFi nodes cancel each other's backoff timers through
  // medium_busy/medium_idle re-arms all run long.  The stale events must
  // be discarded (the run stays deterministic and conservative) and show
  // up in the sim.timer.stale counter.
  obs::Registry reg;
  ScenarioConfig cfg;
  for (int i = 0; i < 2; ++i) {
    WifiNodeConfig ap;
    ap.tx = {2.0 * i, 0.0};
    ap.rx = {2.0 * i, 3.0};
    cfg.wifi.push_back(ap);
  }
  cfg.duration_s = 2.0;
  cfg.seed = 7;
  cfg.metrics = &reg;
  const auto r = run_scenario(cfg);
  expect_conservation(r, "stale-timer flood");
  if (obs::kEnabled) {
    const auto snap = reg.snapshot();
    EXPECT_GT(snap.counter("sim.timer.stale"), 0u);
    // Processed events cannot exceed pushes, and the event census adds up.
    EXPECT_EQ(snap.counter("sim.events"),
              snap.counter("sim.events.arrival") +
                  snap.counter("sim.events.timer") +
                  snap.counter("sim.events.tx_end"));
  }
}

TEST(ScenarioValidate, CleanConfigHasNoErrors) {
  const auto cfg = two_node_paper_scenario(core::SledzigConfig{}, true, 0.5,
                                           4.0, 1.0, 1.0, 1);
  EXPECT_TRUE(cfg.validate().empty());
}

TEST(ScenarioValidate, ReportsEveryProblemWithItsFieldPath) {
  // One config, many defects: validate() must return all of them in one
  // pass, each tagged with the dotted path of the offending field.
  ScenarioConfig cfg;
  cfg.duration_s = -1.0;           // bad
  cfg.queue_capacity = 0;          // bad
  // empty topology                // bad
  const auto errors = cfg.validate();
  ASSERT_EQ(errors.size(), 3u) << describe(errors);
  const auto has = [&](const std::string& field) {
    for (const auto& e : errors) {
      if (e.field == field) return true;
    }
    return false;
  };
  EXPECT_TRUE(has("duration_s"));
  EXPECT_TRUE(has("queue_capacity"));
  EXPECT_TRUE(has("wifi/zigbee"));
  // describe() folds everything into one human-readable blob.
  EXPECT_NE(describe(errors).find("duration_s"), std::string::npos);
}

TEST(ScenarioValidate, RejectsNanPowersAndZeroDutyCycle) {
  ScenarioConfig cfg;
  WifiNodeConfig ap;
  ap.usrp_gain = std::numeric_limits<double>::quiet_NaN();
  ap.traffic = {TrafficKind::kDutyCycle, 0.0, 0.0};  // on-fraction == 0
  cfg.wifi.push_back(ap);
  ZigbeeNodeConfig mote;
  mote.tx = {std::numeric_limits<double>::infinity(), 0.0};
  mote.traffic = {TrafficKind::kCbr, -5.0, 1.0};
  cfg.zigbee.push_back(mote);
  const auto errors = cfg.validate();
  EXPECT_EQ(errors.size(), 4u) << describe(errors);
  EXPECT_THROW(run_scenario(cfg), std::invalid_argument);
}

TEST(ScenarioValidate, RejectsMalformedFaultPlans) {
  auto cfg = two_node_paper_scenario(core::SledzigConfig{}, true, 0.5, 4.0,
                                     1.0, 1.0, 1);
  cfg.faults.timed.push_back({FaultKind::kCrash, /*node=*/99, 1e5, 0.0, 4.0});
  cfg.faults.random.crash_rate_per_s = -1.0;
  cfg.faults.random.mute_rate_per_s = 2.0;
  cfg.faults.random.mean_mute_us = 0.0;  // enabled process, degenerate mean
  JammerConfig jam;
  jam.mean_on_us = 100.0;  // on without off
  cfg.faults.jammers.push_back(jam);
  cfg.faults.clocks.assign(3, ClockConfig{});  // more clocks than nodes
  const auto errors = cfg.validate();
  EXPECT_EQ(errors.size(), 5u) << describe(errors);
}

TEST(ScenarioValidate, RunReplicationsValidatesBeforeFanOut) {
  ScenarioConfig cfg;  // empty topology + nothing else set
  cfg.duration_s = 0.0;
  EXPECT_THROW(run_replications(cfg, 4), std::invalid_argument);
}

TEST(EventQueue, CancelWhilePoppedDoesNotResurrectTheTimer) {
  // The crash/reboot pattern: a timer is popped, and the handler itself
  // bumps the token (the node dies mid-handling).  Any sibling timer still
  // in the heap with the pre-crash token must come out stale.
  EventQueue q;
  std::uint64_t token = 1;
  q.push(1.0, EventType::kTimer, 0, token);
  q.push(2.0, EventType::kTimer, 0, token);  // sibling, same arm generation
  const Event first = q.pop();
  ASSERT_EQ(first.token, token);
  ++token;  // crash during handling
  q.push(3.0, EventType::kTimer, 0, token);  // reboot re-arms
  const Event sibling = q.pop();
  EXPECT_NE(sibling.token, token) << "pre-crash sibling survived the bump";
  const Event rearmed = q.pop();
  EXPECT_EQ(rearmed.token, token);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, ArrivalEpochOrphansWholeChainAcrossCrashRebootChurn) {
  // Arrival events carry the node's epoch in the same token field.  Crash
  // (bump), reboot (push with new epoch), crash again, reboot again — only
  // arrivals stamped with the final epoch may be processed.
  EventQueue q;
  std::uint64_t epoch = 0;
  for (int cycle = 0; cycle < 50; ++cycle) {
    q.push(10.0 * cycle, EventType::kArrival, 0, epoch);
    q.push(10.0 * cycle + 5.0, EventType::kArrival, 0, epoch);
    ++epoch;  // crash: both pending arrivals orphaned
  }
  q.push(1000.0, EventType::kArrival, 0, epoch);  // final reboot's chain
  std::size_t live = 0;
  std::size_t stale = 0;
  while (!q.empty()) {
    const Event e = q.pop();
    (e.token == epoch ? live : stale)++;
  }
  EXPECT_EQ(live, 1u);
  EXPECT_EQ(stale, 100u);
}

TEST(SimEngine, HorizonInsideRetryBackoffCountsFrameInFlight) {
  // A mote with retries enabled against a strong interferer: losses are
  // common, so some replication ends with the head frame mid-retry-backoff
  // (its next CCA timer suppressed by the horizon).  That frame must land
  // in in_flight_at_end — not vanish, not count as retry_exhausted.
  auto cfg = two_node_paper_scenario(core::SledzigConfig{}, false, 1.0, 4.0,
                                     1.8, 0.35, 21);
  for (auto& z : cfg.zigbee) z.mac.max_frame_retries = 3;
  bool saw_in_flight_with_retries = false;
  for (std::uint64_t seed = 1; seed <= 40 && !saw_in_flight_with_retries;
       ++seed) {
    cfg.seed = seed;
    const auto r = run_scenario(cfg);
    expect_conservation(r, "horizon-in-backoff");
    const auto& z = r.zigbee[0];
    if (z.in_flight_at_end > 0 && z.retries > 0) {
      saw_in_flight_with_retries = true;
    }
  }
  EXPECT_TRUE(saw_in_flight_with_retries)
      << "no seed ended inside a retry backoff; weaken the geometry";
}

}  // namespace
}  // namespace sledzig::sim
