// Tests for the discrete-event multi-node coexistence engine: determinism
// (golden trace, repeated runs, replication thread-invariance) and the
// paper's headline trends emerging from the event sequence.
#include <gtest/gtest.h>

#include <algorithm>
#include <thread>

#include "common/parallel.h"
#include "sim/engine.h"

namespace sledzig::sim {
namespace {

/// One saturated WiFi link 4 m from one ZigBee pair — the paper's Fig 4
/// geometry, strong margins everywhere (no verdict rides on a borderline
/// libm result).
ScenarioConfig fig4_scenario(bool sledzig_on, double duration_s = 5.0) {
  return two_node_paper_scenario(core::SledzigConfig{}, sledzig_on,
                                 /*wifi_duty_ratio=*/1.0, /*d_wz_m=*/4.0,
                                 /*d_z_m=*/1.0, duration_s, /*seed=*/11);
}

TEST(SimEngine, SaturatedWifiAloneFillsTheChannel) {
  ScenarioConfig cfg;
  cfg.wifi.push_back(WifiNodeConfig{});
  cfg.wifi[0].rx = {0.0, 3.0};
  cfg.duration_s = 2.0;
  cfg.seed = 3;
  const auto r = run_scenario(cfg);
  ASSERT_EQ(r.wifi.size(), 1u);
  EXPECT_GT(r.wifi[0].airtime_fraction, 0.9);
  EXPECT_DOUBLE_EQ(r.wifi[0].prr, 1.0);  // nothing to collide with
  EXPECT_GT(r.wifi[0].throughput_kbps, 1000.0);
}

TEST(SimEngine, TwoContendingWifiNodesShareAndSometimesCollide) {
  ScenarioConfig cfg;
  for (int i = 0; i < 2; ++i) {
    WifiNodeConfig ap;
    ap.tx = {2.0 * i, 0.0};
    ap.rx = {2.0 * i, 3.0};
    cfg.wifi.push_back(ap);
  }
  cfg.duration_s = 5.0;
  cfg.seed = 5;
  const auto r = run_scenario(cfg);
  const double total =
      r.wifi[0].airtime_fraction + r.wifi[1].airtime_fraction;
  // Energy-detect deferral shares the channel roughly evenly; same-slot
  // picks overlap, so the sum can exceed 1 slightly and PRR dips below 1.
  EXPECT_GT(total, 0.9);
  EXPECT_GT(r.wifi[0].airtime_fraction, 0.3);
  EXPECT_GT(r.wifi[1].airtime_fraction, 0.3);
  EXPECT_LT(r.wifi[0].prr, 1.0);
  EXPECT_GT(r.wifi[0].prr, 0.7);
}

TEST(SimEngine, NormalWifiBlocksZigbeeSledzigUnblocksIt) {
  // Fig 4 end to end: under normal WiFi the ZigBee CCA almost never
  // clears (channel-access failures, queue drops, ~0 throughput); under
  // SledZig the payload presents 20+ dB less in-band energy and the mote
  // runs at its interference-free ~63 Kbps.
  const auto normal = run_scenario(fig4_scenario(false));
  const auto sled = run_scenario(fig4_scenario(true));
  ASSERT_EQ(normal.zigbee.size(), 1u);
  EXPECT_GT(normal.zigbee[0].cca_dropped, 100u);
  EXPECT_GT(normal.zigbee[0].queue_dropped, 100u);
  EXPECT_LT(normal.zigbee[0].throughput_kbps, 10.0);
  EXPECT_EQ(sled.zigbee[0].cca_dropped, 0u);
  // Default config is QAM-16, whose smaller power reduction leaves some
  // symbol errors (the paper's Fig 14 QAM-16 case) — well short of the
  // 63 Kbps ceiling but an order of magnitude above the blocked channel.
  EXPECT_GT(sled.zigbee[0].throughput_kbps, 45.0);
  EXPECT_GT(sled.zigbee[0].throughput_kbps,
            10.0 * normal.zigbee[0].throughput_kbps);
  // The WiFi node never hears the mote (Fig 17): its schedule is
  // identical whether or not the mote transmits.
  EXPECT_EQ(normal.wifi[0].sent, sled.wifi[0].sent);
}

TEST(SimEngine, Fig16TrendZigbeeThroughputHigherWithSledzigAtEveryRatio) {
  for (const double ratio : {0.2, 0.4, 0.6, 0.8, 1.0}) {
    const auto off = run_scenario(two_node_paper_scenario(
        core::SledzigConfig{}, false, ratio, 4.0, 1.0, 5.0, 11));
    const auto on = run_scenario(two_node_paper_scenario(
        core::SledzigConfig{}, true, ratio, 4.0, 1.0, 5.0, 11));
    EXPECT_GT(on.zigbee[0].throughput_kbps, off.zigbee[0].throughput_kbps)
        << "wifi traffic ratio " << ratio;
    EXPECT_GT(on.zigbee[0].throughput_kbps, 50.0) << "ratio " << ratio;
  }
}

TEST(SimEngine, QueueDropAccountingBalances) {
  auto cfg = fig4_scenario(false, 2.0);
  cfg.queue_capacity = 2;
  const auto r = run_scenario(cfg);
  const auto& z = r.zigbee[0];
  EXPECT_GT(z.queue_dropped, 0u);
  // Every arrival is accounted for: dropped at the queue, dropped by CCA,
  // completed on air, or still queued/in flight at the horizon.
  const std::size_t completed = z.sent - z.retries;  // first transmissions
  EXPECT_LE(z.queue_dropped + z.cca_dropped + completed, z.arrivals);
  EXPECT_GE(z.queue_dropped + z.cca_dropped + completed + cfg.queue_capacity + 1,
            z.arrivals);
}

TEST(SimEngine, RepeatedRunsAreBitIdentical) {
  auto cfg = fig4_scenario(true, 2.0);
  cfg.record_trace = true;
  const auto a = run_scenario(cfg);
  const auto b = run_scenario(cfg);
  EXPECT_EQ(a.trace_digest, b.trace_digest);
  EXPECT_EQ(a.events_processed, b.events_processed);
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (std::size_t i = 0; i < a.trace.size(); ++i) {
    EXPECT_EQ(a.trace[i].time_us, b.trace[i].time_us) << "event " << i;
    EXPECT_EQ(a.trace[i].node, b.trace[i].node) << "event " << i;
    EXPECT_EQ(a.trace[i].type, b.trace[i].type) << "event " << i;
  }
}

TEST(SimEngine, DigestMatchesWithAndWithoutTraceRecording) {
  auto cfg = fig4_scenario(true, 2.0);
  cfg.record_trace = false;
  const auto quiet = run_scenario(cfg);
  cfg.record_trace = true;
  const auto traced = run_scenario(cfg);
  EXPECT_EQ(quiet.trace_digest, traced.trace_digest);
  EXPECT_TRUE(quiet.trace.empty());
  EXPECT_FALSE(traced.trace.empty());
}

TEST(SimEngine, GoldenEventTraceOpensAsExpected) {
  // The run's opening sentence is fixed by construction: the saturated
  // WiFi node's frame arrives at t=0, it wins DIFS + backoff on an idle
  // medium and transmits; the ZigBee mote's first CBR arrival follows.
  auto cfg = fig4_scenario(true, 1.0);
  cfg.record_trace = true;
  const auto r = run_scenario(cfg);
  ASSERT_GE(r.trace.size(), 3u);
  EXPECT_EQ(r.trace[0].type, TraceType::kArrival);
  EXPECT_EQ(r.trace[0].node, 0u);
  EXPECT_EQ(r.trace[0].time_us, 0.0);
  // First transmission on air is the WiFi node's, after DIFS (28) +
  // 0..15 backoff slots (9 each); the mote's first CBR arrival may land
  // in between but its CCA + turnaround take >= 320 us.
  const auto first_tx = std::find_if(
      r.trace.begin(), r.trace.end(),
      [](const TraceEvent& e) { return e.type == TraceType::kTxStart; });
  ASSERT_NE(first_tx, r.trace.end());
  EXPECT_EQ(first_tx->node, 0u);
  EXPECT_GE(first_tx->time_us, 28.0);
  EXPECT_LE(first_tx->time_us, 28.0 + 15.0 * 9.0);
  // Every trace timestamp is non-decreasing and inside the horizon.
  double prev = 0.0;
  for (const auto& e : r.trace) {
    EXPECT_GE(e.time_us, prev);
    prev = e.time_us;
  }
  EXPECT_LE(prev, 1e6 + 5000.0);  // tail transmissions may cross the horizon
}

TEST(SimEngine, ReplicationsAreThreadInvariant) {
  const auto cfg = fig4_scenario(true, 1.0);
  constexpr std::size_t kReps = 8;

  std::vector<std::vector<SimResult>> runs;
  const std::size_t hw =
      std::max(1u, std::thread::hardware_concurrency());
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}, hw}) {
    common::ThreadPool pool(threads);
    runs.push_back(run_replications(pool, cfg, kReps));
  }
  for (std::size_t t = 1; t < runs.size(); ++t) {
    ASSERT_EQ(runs[t].size(), kReps);
    for (std::size_t i = 0; i < kReps; ++i) {
      EXPECT_EQ(runs[t][i].trace_digest, runs[0][i].trace_digest)
          << "replication " << i << " pool " << t;
      EXPECT_EQ(runs[t][i].zigbee[0].delivered, runs[0][i].zigbee[0].delivered);
      EXPECT_EQ(runs[t][i].wifi[0].delivered, runs[0][i].wifi[0].delivered);
    }
  }
}

TEST(SimEngine, ReplicationsDifferFromEachOther) {
  const auto cfg = fig4_scenario(true, 1.0);
  const auto runs = run_replications(cfg, 4);
  ASSERT_EQ(runs.size(), 4u);
  EXPECT_NE(runs[0].trace_digest, runs[1].trace_digest);
  EXPECT_NE(runs[1].trace_digest, runs[2].trace_digest);
}

TEST(SimEngine, RejectsBadConfigs) {
  ScenarioConfig cfg;
  cfg.wifi.push_back(WifiNodeConfig{});
  cfg.duration_s = 0.0;
  EXPECT_THROW(run_scenario(cfg), std::invalid_argument);
  cfg.duration_s = 1.0;
  cfg.queue_capacity = 0;
  EXPECT_THROW(run_scenario(cfg), std::invalid_argument);
}

TEST(SimEngine, DistanceFloorsAtTenCentimetres) {
  EXPECT_DOUBLE_EQ(distance_m({1.0, 1.0}, {1.0, 1.0}), 0.1);
  EXPECT_DOUBLE_EQ(distance_m({0.0, 0.0}, {3.0, 4.0}), 5.0);
}

}  // namespace
}  // namespace sledzig::sim
