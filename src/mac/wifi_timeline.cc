#include "mac/wifi_timeline.h"

#include <algorithm>
#include <stdexcept>

namespace sledzig::mac {

WifiTimeline::WifiTimeline(const WifiMacParams& params, double duration_us,
                           common::Rng& rng)
    : duration_us_(duration_us) {
  if (params.duty_ratio < 0.0 || params.duty_ratio > 1.0) {
    throw std::invalid_argument("WifiTimeline: duty_ratio in [0, 1]");
  }
  if (params.duty_ratio == 0.0) return;

  const double burst_len = params.preamble_us + params.airtime_us;
  // Mean extra idle per burst so that airtime / cycle = duty_ratio
  // (beyond the unavoidable DIFS + mean backoff).
  const double csma_gap =
      params.difs_us + params.slot_us * (params.cw - 1) / 2.0;
  const double target_cycle = burst_len / params.duty_ratio;
  const double queue_idle =
      std::max(0.0, target_cycle - burst_len - csma_gap);

  double t = 0.0;
  double busy = 0.0;
  while (t < duration_us_) {
    // Queue idle time (exponential-ish jitter around the mean keeps bursts
    // from locking into a grid).
    if (queue_idle > 0.0) {
      t += queue_idle * (0.5 + rng.uniform());
    }
    // DIFS + uniform backoff.
    t += params.difs_us +
         params.slot_us *
             static_cast<double>(rng.uniform_int(0, params.cw - 1));
    if (t >= duration_us_) break;
    WifiBurst burst;
    burst.start_us = t;
    burst.payload_start_us = t + params.preamble_us;
    burst.end_us = t + burst_len;
    busy += std::min(burst.end_us, duration_us_) - burst.start_us;
    bursts_.push_back(burst);
    t = burst.end_us;
  }
  busy_fraction_ = busy / duration_us_;
}

WifiCsmaMachine::WifiCsmaMachine(const WifiMacParams& params,
                                 std::uint64_t seed)
    : params_(params), rng_(seed) {
  if (params_.cw < 1) {
    throw std::invalid_argument("WifiCsmaMachine: cw must be >= 1");
  }
}

WifiCsmaMachine::Step WifiCsmaMachine::start_defer(double now) {
  state_ = State::kDefer;
  wait_start_ = now;
  defer_until_ = now + params_.difs_us +
                 params_.slot_us * static_cast<double>(slots_left_);
  return {Step::Kind::kTimerAt, defer_until_};
}

WifiCsmaMachine::Step WifiCsmaMachine::frame_ready(double now,
                                                   bool medium_busy_now) {
  slots_left_ = static_cast<unsigned>(
      rng_.uniform_int(0, static_cast<std::int64_t>(params_.cw) - 1));
  if (medium_busy_now) {
    state_ = State::kWaitIdle;
    return {};
  }
  return start_defer(now);
}

WifiCsmaMachine::Step WifiCsmaMachine::timer_fired(double now) {
  if (state_ != State::kDefer) return {};  // stale timer, defensively ignored
  state_ = State::kTx;
  return {Step::Kind::kTransmit, now};
}

WifiCsmaMachine::Step WifiCsmaMachine::medium_busy(double now) {
  if (state_ != State::kDefer) return {};
  if (now >= defer_until_) {
    // The countdown completes at this very instant: both this node and the
    // one whose transmission triggered the notification chose the same
    // slot, so this node transmits too and the frames collide on air.
    state_ = State::kTx;
    return {Step::Kind::kTransmit, now};
  }
  // Freeze: whole slots consumed after DIFS survive, the partial one and
  // the DIFS itself are repeated after the medium clears (802.11 resumes
  // the countdown rather than redrawing).
  const double idle_after_difs = now - wait_start_ - params_.difs_us;
  if (idle_after_difs > 0.0) {
    const auto consumed =
        static_cast<unsigned>(idle_after_difs / params_.slot_us);
    slots_left_ -= std::min(slots_left_, consumed);
  }
  state_ = State::kWaitIdle;
  return {};
}

WifiCsmaMachine::Step WifiCsmaMachine::medium_idle(double now) {
  if (state_ == State::kDefer) {
    // The ended transmission was never audible here (an audible start would
    // have frozen the countdown), so the countdown stands — but the caller
    // invalidates every pending timer on notification, so re-arm it.
    return {Step::Kind::kTimerAt, defer_until_};
  }
  if (state_ != State::kWaitIdle) return {};
  return start_defer(now);
}

void WifiCsmaMachine::tx_done() { state_ = State::kIdle; }

bool WifiTimeline::busy_at(double t_us) const {
  return busy_in(t_us, t_us);
}

bool WifiTimeline::busy_in(double t0_us, double t1_us) const {
  const auto [lo, hi] = overlapping(t0_us, t1_us);
  return lo < hi;
}

std::pair<std::size_t, std::size_t> WifiTimeline::overlapping(
    double t0_us, double t1_us) const {
  // First burst with end > t0.
  const auto lo = std::lower_bound(
      bursts_.begin(), bursts_.end(), t0_us,
      [](const WifiBurst& b, double t) { return b.end_us <= t; });
  // First burst with start > t1.
  const auto hi = std::upper_bound(
      lo, bursts_.end(), t1_us,
      [](double t, const WifiBurst& b) { return t < b.start_us; });
  return {static_cast<std::size_t>(lo - bursts_.begin()),
          static_cast<std::size_t>(hi - bursts_.begin())};
}

}  // namespace sledzig::mac
