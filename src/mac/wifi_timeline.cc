#include "mac/wifi_timeline.h"

#include <algorithm>
#include <stdexcept>

namespace sledzig::mac {

WifiTimeline::WifiTimeline(const WifiMacParams& params, double duration_us,
                           common::Rng& rng)
    : duration_us_(duration_us) {
  if (params.duty_ratio < 0.0 || params.duty_ratio > 1.0) {
    throw std::invalid_argument("WifiTimeline: duty_ratio in [0, 1]");
  }
  if (params.duty_ratio == 0.0) return;

  const double burst_len = params.preamble_us + params.airtime_us;
  // Mean extra idle per burst so that airtime / cycle = duty_ratio
  // (beyond the unavoidable DIFS + mean backoff).
  const double csma_gap =
      params.difs_us + params.slot_us * (params.cw - 1) / 2.0;
  const double target_cycle = burst_len / params.duty_ratio;
  const double queue_idle =
      std::max(0.0, target_cycle - burst_len - csma_gap);

  double t = 0.0;
  double busy = 0.0;
  while (t < duration_us_) {
    // Queue idle time (exponential-ish jitter around the mean keeps bursts
    // from locking into a grid).
    if (queue_idle > 0.0) {
      t += queue_idle * (0.5 + rng.uniform());
    }
    // DIFS + uniform backoff.
    t += params.difs_us +
         params.slot_us *
             static_cast<double>(rng.uniform_int(0, params.cw - 1));
    if (t >= duration_us_) break;
    WifiBurst burst;
    burst.start_us = t;
    burst.payload_start_us = t + params.preamble_us;
    burst.end_us = t + burst_len;
    busy += std::min(burst.end_us, duration_us_) - burst.start_us;
    bursts_.push_back(burst);
    t = burst.end_us;
  }
  busy_fraction_ = busy / duration_us_;
}

bool WifiTimeline::busy_at(double t_us) const {
  return busy_in(t_us, t_us);
}

bool WifiTimeline::busy_in(double t0_us, double t1_us) const {
  const auto [lo, hi] = overlapping(t0_us, t1_us);
  return lo < hi;
}

std::pair<std::size_t, std::size_t> WifiTimeline::overlapping(
    double t0_us, double t1_us) const {
  // First burst with end > t0.
  const auto lo = std::lower_bound(
      bursts_.begin(), bursts_.end(), t0_us,
      [](const WifiBurst& b, double t) { return b.end_us <= t; });
  // First burst with start > t1.
  const auto hi = std::upper_bound(
      lo, bursts_.end(), t1_us,
      [](double t, const WifiBurst& b) { return t < b.start_us; });
  return {static_cast<std::size_t>(lo - bursts_.begin()),
          static_cast<std::size_t>(hi - bursts_.begin())};
}

}  // namespace sledzig::mac
