// ZigBee unslotted CSMA/CA (802.15.4) simulated against a WiFi timeline,
// with a per-symbol SINR packet-error model.
//
// Link-budget inputs come from the calibrated channel model plus the
// in-band power offsets measured on the sample-domain PHY (src/coex).  The
// error model treats the WiFi preamble separately from the (possibly
// SledZig-reduced) payload: the preamble is always at full band power and
// its bursty structure is harsher on the O-QPSK demodulator than the
// noise-like OFDM payload, which the paper highlights in sections IV-F and
// V-C3.
#pragma once

#include "common/rng.h"
#include "mac/wifi_timeline.h"

namespace sledzig::mac {

struct ZigbeeMacParams {
  double backoff_period_us = 320.0;  // aUnitBackoffPeriod
  double cca_us = 128.0;             // 8 symbols
  double turnaround_us = 192.0;      // aTurnaroundTime
  unsigned min_be = 3;
  unsigned max_be = 5;
  unsigned max_backoffs = 4;
  std::size_t payload_octets = 50;
  /// Per-packet application overhead (serial link to the host etc.) that
  /// limits the paper's interference-free throughput to ~63 Kbps:
  /// 400 payload bits / (processing + mean backoff 1120 + CCA 128 +
  /// turnaround 192 + frame 1856 us) = 63 Kbps.
  double processing_us = 3050.0;
};

/// Received powers at the ZigBee receiver / clear-channel levels at the
/// ZigBee transmitter, all in dBm.
struct ZigbeeLinkBudget {
  double signal_dbm = -80.0;          // ZigBee Tx -> Rx
  double wifi_payload_inband_dbm = -200.0;  // WiFi payload inside the 2 MHz channel
  double wifi_preamble_inband_dbm = -200.0; // WiFi preamble inside the channel
  double noise_dbm = -91.0;
  double cca_threshold_dbm = -77.0;
  /// Practical receiver sensitivity: frames below this fail regardless of
  /// interference.  The CC2420 datasheet requires -85 dBm; the paper's
  /// Fig 15 link collapses once the signal drops to about that level
  /// (d_Z ~ 1.6-1.8 m), well above the -91 dBm RSSI noise floor.
  double sensitivity_dbm = -85.0;
};

/// Error-model parameters, calibrated against the sample-domain DSSS
/// receiver and the paper's Figs 14-16 crossovers.
struct SymbolErrorModel {
  /// Logistic midpoint for symbols jammed by the (noise-like OFDM) WiFi
  /// payload: DSSS despreading survives down to roughly -11 dB SINR with a
  /// sharp cliff — calibrated so the paper's Fig 14 curves jump to full
  /// throughput right at their CCA cutoffs while Fig 16's QAM-16 case
  /// (SINR ~ -9 dB) still fails.
  double payload_midpoint_db = -11.0;
  double payload_width_db = 0.8;
  /// Midpoint of the preamble-collision penalty: the full-power 16 us
  /// preamble burst is harsher per overlapped chip than the (possibly
  /// SledZig-attenuated) OFDM payload.
  double preamble_midpoint_db = -6.0;
  double preamble_width_db = 1.2;
  /// A preamble burst overlaps at most ~32 chips of a symbol, so even a
  /// hopeless SINR only corrupts the symbol with this probability (the
  /// paper's Fig 14(b) requires ZigBee frames to usually survive preamble
  /// hits).
  double preamble_max_error = 0.25;
  /// Width of the frame-level sensitivity cliff.
  double sensitivity_width_db = 0.4;

  /// Symbol error probability given SINR against a given interferer kind.
  double symbol_error_prob(double sinr_db, bool preamble) const;

  /// Probability the whole frame is lost because the signal sits at or
  /// below the receiver sensitivity.
  double sensitivity_loss_prob(double signal_dbm, double sensitivity_dbm) const;
};

struct ZigbeeSimResult {
  std::size_t packets_attempted = 0;   // CSMA attempts started
  std::size_t packets_sent = 0;        // actually transmitted
  std::size_t packets_delivered = 0;   // CRC-clean at the receiver
  std::size_t packets_dropped_cca = 0; // channel-access failures
  double throughput_kbps = 0.0;        // delivered payload bits / duration
};

/// Runs the ZigBee transmitter's CSMA/CA against the WiFi timeline for its
/// full duration and evaluates every transmitted frame at the receiver.
ZigbeeSimResult simulate_zigbee_link(const WifiTimeline& wifi,
                                     const ZigbeeMacParams& mac,
                                     const ZigbeeLinkBudget& budget,
                                     const SymbolErrorModel& error_model,
                                     common::Rng& rng);

/// Frame airtime including PHY header, in microseconds.
double zigbee_frame_airtime_us(std::size_t payload_octets);

}  // namespace sledzig::mac
