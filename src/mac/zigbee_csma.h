// ZigBee unslotted CSMA/CA (802.15.4) simulated against a WiFi timeline,
// with a per-symbol SINR packet-error model.
//
// Link-budget inputs come from the calibrated channel model plus the
// in-band power offsets measured on the sample-domain PHY (src/coex).  The
// error model treats the WiFi preamble separately from the (possibly
// SledZig-reduced) payload: the preamble is always at full band power and
// its bursty structure is harsher on the O-QPSK demodulator than the
// noise-like OFDM payload, which the paper highlights in sections IV-F and
// V-C3.
#pragma once

#include "common/rng.h"
#include "common/units.h"
#include "mac/wifi_timeline.h"

namespace sledzig::mac {

struct ZigbeeMacParams {
  double backoff_period_us = 320.0;  // aUnitBackoffPeriod
  double cca_us = 128.0;             // 8 symbols
  double turnaround_us = 192.0;      // aTurnaroundTime
  unsigned min_be = 3;       // macMinBE
  unsigned max_be = 5;       // macMaxBE
  unsigned max_backoffs = 4; // macMaxCSMABackoffs
  /// macMaxFrameRetries: CSMA re-runs after a frame is transmitted but not
  /// delivered.  0 matches the paper's open-loop accounting (no ACKs); the
  /// event-driven machine honours any value.
  unsigned max_frame_retries = 0;
  /// macAckWaitDuration: how long the transmitter waits for an ACK that
  /// never comes before re-entering CSMA on a retry (54 symbols = 864 us).
  /// Only the retry path pays it — a delivered frame completes immediately,
  /// so retries=0 behaviour (the paper's) is bit-identical with any value.
  double ack_wait_us = 864.0;
  std::size_t payload_octets = 50;
  /// Per-packet application overhead (serial link to the host etc.) that
  /// limits the paper's interference-free throughput to ~63 Kbps:
  /// 400 payload bits / (processing + mean backoff 1120 + CCA 128 +
  /// turnaround 192 + frame 1856 us) = 63 Kbps.
  double processing_us = 3050.0;
};

/// Received powers at the ZigBee receiver / clear-channel levels at the
/// ZigBee transmitter.
struct ZigbeeLinkBudget {
  common::Dbm signal_dbm{-80.0};  // ZigBee Tx -> Rx
  // WiFi payload / preamble power inside the 2 MHz channel.
  common::Dbm wifi_payload_inband_dbm{-200.0};
  common::Dbm wifi_preamble_inband_dbm{-200.0};
  common::Dbm noise_dbm{-91.0};
  common::Dbm cca_threshold_dbm{-77.0};
  /// Practical receiver sensitivity: frames below this fail regardless of
  /// interference.  The CC2420 datasheet requires -85 dBm; the paper's
  /// Fig 15 link collapses once the signal drops to about that level
  /// (d_Z ~ 1.6-1.8 m), well above the -91 dBm RSSI noise floor.
  common::Dbm sensitivity_dbm{-85.0};
};

/// Error-model parameters, calibrated against the sample-domain DSSS
/// receiver and the paper's Figs 14-16 crossovers.
struct SymbolErrorModel {
  /// Logistic midpoint for symbols jammed by the (noise-like OFDM) WiFi
  /// payload: DSSS despreading survives down to roughly -11 dB SINR with a
  /// sharp cliff — calibrated so the paper's Fig 14 curves jump to full
  /// throughput right at their CCA cutoffs while Fig 16's QAM-16 case
  /// (SINR ~ -9 dB) still fails.
  common::Db payload_midpoint_db{-11.0};
  common::Db payload_width_db{0.8};
  /// Midpoint of the preamble-collision penalty: the full-power 16 us
  /// preamble burst is harsher per overlapped chip than the (possibly
  /// SledZig-attenuated) OFDM payload.
  common::Db preamble_midpoint_db{-6.0};
  common::Db preamble_width_db{1.2};
  /// A preamble burst overlaps at most ~32 chips of a symbol, so even a
  /// hopeless SINR only corrupts the symbol with this probability (the
  /// paper's Fig 14(b) requires ZigBee frames to usually survive preamble
  /// hits).
  double preamble_max_error = 0.25;
  /// Width of the frame-level sensitivity cliff.
  common::Db sensitivity_width_db{0.4};

  /// Symbol error probability given SINR against a given interferer kind.
  double symbol_error_prob(common::Db sinr_db, bool preamble) const;

  /// Probability the whole frame is lost because the signal sits at or
  /// below the receiver sensitivity.
  double sensitivity_loss_prob(common::Dbm signal_dbm,
                               common::Dbm sensitivity_dbm) const;
};

/// Event-driven 802.15.4 unslotted CSMA/CA state machine, advanced by an
/// external discrete-event scheduler (src/sim).  The machine owns protocol
/// state (NB, BE, retries) and the backoff RNG; the scheduler owns time and
/// answers each CCA from the actual power on the medium.  Unlike the WiFi
/// machine, this one never listens between CCAs — unslotted CSMA/CA is
/// oblivious to the medium outside its 8-symbol windows.
///
/// 802.15.4 boundary behaviour (6.2.5.1): BE is clamped to
/// [macMinBE, macMaxBE] at every step (including a misconfigured
/// macMinBE > macMaxBE, which clamps down to macMaxBE), and channel access
/// fails once NB exceeds macMaxCSMABackoffs — i.e. after exactly
/// macMaxCSMABackoffs + 1 busy CCAs.
class ZigbeeCsmaMachine {
 public:
  struct Step {
    enum class Kind {
      kNone,      ///< machine is idle (frame finished or dropped)
      kCcaEndAt,  ///< evaluate CCA over [at - cca_us, at] and call cca_result
      kTxStartAt, ///< turnaround ends at `at`: start transmitting then
      kDropCca,   ///< channel-access failure (NB exceeded macMaxCSMABackoffs)
    };
    Kind kind = Kind::kNone;
    double at = 0.0;
  };

  /// What the next timer_fired-style callback should be, for dispatch.
  enum class Awaiting { kNone, kCca, kTxStart };

  ZigbeeCsmaMachine(const ZigbeeMacParams& params, std::uint64_t seed);

  /// A frame reached the head of the queue: start CSMA/CA round 1.
  Step frame_ready(double now);

  /// CCA verdict for the window that ended at `now`.
  Step cca_result(double now, bool busy);

  /// The turnaround timer fired; the caller starts the transmission.
  void tx_started();

  /// Transmission finished.  Returns a retry Step (re-entering CSMA after
  /// the ACK timeout) when the frame was lost and retries remain, kNone
  /// otherwise — a lost frame with retries in hand is never terminal.
  Step tx_done(double now, bool delivered);

  /// Crash/reboot hook: drops all per-frame protocol state (NB, BE,
  /// pending CCA/turnaround, remaining retries) as a power cycle would.
  /// The backoff RNG is deliberately NOT reset — it is the node's seeded
  /// entropy stream, and rewinding it would let a rebooted node replay the
  /// exact draws it made before dying.
  void reset();

  Awaiting awaiting() const { return awaiting_; }
  unsigned backoff_exponent() const { return be_; }  // test hooks
  unsigned backoffs() const { return nb_; }
  unsigned retries_left() const { return retries_left_; }

 private:
  Step begin_csma(double now);
  Step schedule_cca(double now);

  ZigbeeMacParams params_;
  common::Rng rng_;
  Awaiting awaiting_ = Awaiting::kNone;
  unsigned nb_ = 0;
  unsigned be_ = 0;
  unsigned retries_left_ = 0;
};

struct ZigbeeSimResult {
  std::size_t packets_attempted = 0;   // CSMA attempts started
  std::size_t packets_sent = 0;        // actually transmitted
  std::size_t packets_delivered = 0;   // CRC-clean at the receiver
  std::size_t packets_dropped_cca = 0; // channel-access failures
  double throughput_kbps = 0.0;        // delivered payload bits / duration
};

/// Runs the ZigBee transmitter's CSMA/CA against the WiFi timeline for its
/// full duration and evaluates every transmitted frame at the receiver.
ZigbeeSimResult simulate_zigbee_link(const WifiTimeline& wifi,
                                     const ZigbeeMacParams& mac,
                                     const ZigbeeLinkBudget& budget,
                                     const SymbolErrorModel& error_model,
                                     common::Rng& rng);

/// Frame airtime including PHY header, in microseconds.
double zigbee_frame_airtime_us(std::size_t payload_octets);

}  // namespace sledzig::mac
