#include "mac/zigbee_csma.h"

#include <algorithm>
#include <cmath>

#include "common/units.h"
#include "zigbee/chips.h"
#include "zigbee/frame.h"

namespace sledzig::mac {

double SymbolErrorModel::symbol_error_prob(common::Db sinr_db,
                                           bool preamble) const {
  const common::Db mid = preamble ? preamble_midpoint_db : payload_midpoint_db;
  const common::Db width = preamble ? preamble_width_db : payload_width_db;
  const double p = 1.0 / (1.0 + std::exp((sinr_db - mid) / width));
  return preamble ? preamble_max_error * p : p;
}

double SymbolErrorModel::sensitivity_loss_prob(
    common::Dbm signal_dbm, common::Dbm sensitivity_dbm) const {
  return 1.0 /
         (1.0 + std::exp((signal_dbm - sensitivity_dbm) / sensitivity_width_db));
}

double zigbee_frame_airtime_us(std::size_t payload_octets) {
  return zigbee::frame_duration_us(payload_octets);
}

ZigbeeCsmaMachine::ZigbeeCsmaMachine(const ZigbeeMacParams& params,
                                     std::uint64_t seed)
    : params_(params), rng_(seed) {}

ZigbeeCsmaMachine::Step ZigbeeCsmaMachine::begin_csma(double now) {
  nb_ = 0;
  be_ = std::min(params_.min_be, params_.max_be);
  return schedule_cca(now);
}

ZigbeeCsmaMachine::Step ZigbeeCsmaMachine::schedule_cca(double now) {
  const auto slots =
      rng_.uniform_int(0, (std::int64_t{1} << be_) - 1);
  awaiting_ = Awaiting::kCca;
  return {Step::Kind::kCcaEndAt,
          now + static_cast<double>(slots) * params_.backoff_period_us +
              params_.cca_us};
}

ZigbeeCsmaMachine::Step ZigbeeCsmaMachine::frame_ready(double now) {
  retries_left_ = params_.max_frame_retries;
  return begin_csma(now);
}

ZigbeeCsmaMachine::Step ZigbeeCsmaMachine::cca_result(double now, bool busy) {
  if (!busy) {
    awaiting_ = Awaiting::kTxStart;
    return {Step::Kind::kTxStartAt, now + params_.turnaround_us};
  }
  ++nb_;
  be_ = std::min(be_ + 1, params_.max_be);
  if (nb_ > params_.max_backoffs) {
    awaiting_ = Awaiting::kNone;
    return {Step::Kind::kDropCca, now};
  }
  return schedule_cca(now);
}

void ZigbeeCsmaMachine::tx_started() { awaiting_ = Awaiting::kNone; }

ZigbeeCsmaMachine::Step ZigbeeCsmaMachine::tx_done(double now,
                                                   bool delivered) {
  if (!delivered && retries_left_ > 0) {
    --retries_left_;
    // The ACK never arrives; CSMA for the retry starts only after the full
    // macAckWaitDuration has elapsed (802.15.4 6.4.3).
    return begin_csma(now + params_.ack_wait_us);
  }
  awaiting_ = Awaiting::kNone;
  return {};
}

void ZigbeeCsmaMachine::reset() {
  awaiting_ = Awaiting::kNone;
  nb_ = 0;
  be_ = 0;
  retries_left_ = 0;
}

namespace {

/// Per-simulation precomputation: the link budget and error model are fixed
/// for a whole run, so every dBm->mW conversion and — because a symbol sees
/// exactly one of three interference states (idle, WiFi preamble, WiFi
/// payload) — every symbol-error probability is evaluated once here instead
/// of per symbol/CCA.  The cached values come from the same expressions the
/// per-symbol code used, so simulation results are bit-identical.
struct BudgetTables {
  common::MilliWatt noise_mw;
  common::MilliWatt signal_mw;
  common::MilliWatt payload_mw;
  common::MilliWatt preamble_mw;
  double sensitivity_loss;
  double p_err_idle;      // no WiFi overlap
  double p_err_preamble;  // worst interferer = full-power preamble
  double p_err_payload;   // worst interferer = (power-reduced) payload

  BudgetTables(const ZigbeeLinkBudget& budget, const SymbolErrorModel& model) {
    noise_mw = common::to_mw(budget.noise_dbm);
    signal_mw = common::to_mw(budget.signal_dbm);
    payload_mw = common::to_mw(budget.wifi_payload_inband_dbm);
    preamble_mw = common::to_mw(budget.wifi_preamble_inband_dbm);
    sensitivity_loss =
        model.sensitivity_loss_prob(budget.signal_dbm, budget.sensitivity_dbm);
    const auto p_err = [&](common::MilliWatt interference_mw, bool preamble) {
      const common::Db sinr_db =
          common::ratio_to_db(signal_mw / (interference_mw + noise_mw));
      return model.symbol_error_prob(sinr_db, preamble);
    };
    p_err_idle = p_err(common::MilliWatt{}, false);
    p_err_preamble = p_err(preamble_mw, true);
    p_err_payload = p_err(payload_mw, false);
  }
};

/// True when the CCA window [t0, t1] detects energy above threshold.
///
/// CCA-ED *averages* energy over the 8-symbol window (802.15.4 6.9.9),
/// which is why a 16-20 us full-power WiFi preamble inside a 128 us window
/// of otherwise power-reduced payload barely moves the needle — the paper's
/// section IV-F argument.  We therefore integrate overlap-time-weighted
/// power rather than peak-detecting.
bool cca_busy(const WifiTimeline& wifi, const ZigbeeLinkBudget& budget,
              const BudgetTables& tables, double t0, double t1) {
  const double window = t1 - t0;
  if (window <= 0.0) return false;
  double energy = 0.0;  // mW * us
  const auto [lo, hi] = wifi.overlapping(t0, t1);
  for (std::size_t i = lo; i < hi; ++i) {
    const auto& b = wifi.bursts()[i];
    const double pre =
        std::max(0.0, std::min(t1, b.payload_start_us) - std::max(t0, b.start_us));
    const double pay =
        std::max(0.0, std::min(t1, b.end_us) - std::max(t0, b.payload_start_us));
    energy += pre * tables.preamble_mw.value() + pay * tables.payload_mw.value();
  }
  const common::Dbm avg_dbm =
      common::to_dbm(common::MilliWatt{energy / window} + tables.noise_mw);
  return avg_dbm >= budget.cca_threshold_dbm;
}

/// Evaluates one transmitted frame at the receiver: symbol-by-symbol SINR
/// against the overlapping WiFi bursts.
bool frame_delivered(const WifiTimeline& wifi, const BudgetTables& tables,
                     double tx_start, double airtime, common::Rng& rng) {
  // Frame-level sensitivity cliff (CC2420 practical sensitivity).
  if (rng.uniform() < tables.sensitivity_loss) {
    return false;
  }

  const double symbol_us = zigbee::kSymbolDurationUs;
  const auto num_symbols = static_cast<std::size_t>(airtime / symbol_us);
  for (std::size_t s = 0; s < num_symbols; ++s) {
    const double s0 = tx_start + static_cast<double>(s) * symbol_us;
    const double s1 = s0 + symbol_us;
    // Worst interferer over this symbol.
    common::MilliWatt interference_mw{};
    bool preamble_hit = false;
    const auto [lo, hi] = wifi.overlapping(s0, s1);
    for (std::size_t i = lo; i < hi; ++i) {
      const auto& b = wifi.bursts()[i];
      if (std::min(s1, b.payload_start_us) > std::max(s0, b.start_us) &&
          tables.preamble_mw > interference_mw) {
        interference_mw = tables.preamble_mw;
        preamble_hit = true;
      }
      if (std::min(s1, b.end_us) > std::max(s0, b.payload_start_us) &&
          tables.payload_mw > interference_mw) {
        interference_mw = tables.payload_mw;
        preamble_hit = false;
      }
    }
    const double p_err = preamble_hit ? tables.p_err_preamble
                         : interference_mw == common::MilliWatt{}
                             ? tables.p_err_idle
                             : tables.p_err_payload;
    if (rng.uniform() < p_err) return false;
  }
  return true;
}

}  // namespace

ZigbeeSimResult simulate_zigbee_link(const WifiTimeline& wifi,
                                     const ZigbeeMacParams& mac,
                                     const ZigbeeLinkBudget& budget,
                                     const SymbolErrorModel& error_model,
                                     common::Rng& rng) {
  ZigbeeSimResult result;
  const double airtime = zigbee_frame_airtime_us(mac.payload_octets);
  const double duration = wifi.duration_us();
  const BudgetTables tables(budget, error_model);

  double t = 0.0;
  while (t < duration) {
    // New frame arrives after the application-side processing delay.
    t += mac.processing_us;
    ++result.packets_attempted;

    // The frame lives until delivered, dropped by channel access, or out
    // of retries — a lost frame with macMaxFrameRetries remaining re-runs
    // CSMA after the ACK timeout instead of counting terminal.
    unsigned retries_left = mac.max_frame_retries;
    while (t < duration) {
      // Unslotted CSMA/CA.  BE starts clamped into [macMinBE, macMaxBE]
      // (802.15.4 6.2.5.1; a misconfigured macMinBE > macMaxBE clamps
      // down).  NB and BE restart fresh on every retry (6.4.3).
      unsigned nb = 0;
      unsigned be = std::min(mac.min_be, mac.max_be);
      bool channel_clear = false;
      while (t < duration) {
        const auto slots = rng.uniform_int(0, (1 << be) - 1);
        t += static_cast<double>(slots) * mac.backoff_period_us;
        const double cca_start = t;
        t += mac.cca_us;
        if (!cca_busy(wifi, budget, tables, cca_start, t)) {
          channel_clear = true;
          break;
        }
        ++nb;
        be = std::min(be + 1, mac.max_be);
        if (nb > mac.max_backoffs) break;
      }
      if (t >= duration) break;
      if (!channel_clear) {
        ++result.packets_dropped_cca;
        break;
      }

      t += mac.turnaround_us;
      const double tx_start = t;
      t += airtime;
      ++result.packets_sent;
      if (frame_delivered(wifi, tables, tx_start, airtime, rng)) {
        ++result.packets_delivered;
        break;
      }
      if (retries_left == 0) break;
      --retries_left;
      t += mac.ack_wait_us;  // the ACK never comes; wait it out, then retry
    }
  }

  result.throughput_kbps =
      static_cast<double>(result.packets_delivered * mac.payload_octets * 8) /
      duration * 1e3;  // bits per us -> kbps
  return result;
}

}  // namespace sledzig::mac
