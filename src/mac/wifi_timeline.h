// WiFi MAC for the coexistence simulation, in two forms:
//
//  * WifiTimeline — the paper's closed-form generator.  In every scenario
//    of the paper the ZigBee signal at the WiFi device is 20-30 dB below
//    the 802.11 energy-detect threshold (Fig 17), so a single WiFi
//    transmitter never defers and its channel activity can be generated
//    up-front: bursts of [preamble+SIGNAL | payload] separated by DIFS,
//    contention backoff and (for duty ratios < 1) queue idle time.
//
//  * WifiCsmaMachine — the event-driven promotion of the same MAC for the
//    multi-node discrete-event engine (src/sim), where several WiFi nodes
//    contend and energy-detect deferral actually matters.
#pragma once

#include <vector>

#include "common/rng.h"

namespace sledzig::mac {

struct WifiMacParams {
  double difs_us = 28.0;        // paper section II-B
  double slot_us = 9.0;
  unsigned cw = 16;             // fixed contention window (single BSS)
  double preamble_us = 20.0;    // PLCP preamble (16 us) + SIGNAL symbol
  double airtime_us = 4000.0;   // payload airtime per burst (A-MPDU-like)
  /// Fraction of time the channel carries WiFi data (Fig 16's
  /// "duration ratio").  1.0 = saturated back-to-back traffic.
  double duty_ratio = 1.0;
};

struct WifiBurst {
  double start_us = 0.0;         // preamble start
  double payload_start_us = 0.0; // preamble end
  double end_us = 0.0;
};

/// Event-driven 802.11 CSMA state machine, advanced by an external
/// discrete-event scheduler (src/sim).  Where WifiTimeline pre-generates a
/// whole schedule assuming a single unopposed transmitter, this machine
/// reacts to what the shared medium actually does: it defers behind other
/// transmissions it can hear (energy detect), freezes its backoff when the
/// medium turns busy mid-countdown, and resumes with the remaining slots —
/// so WiFi/WiFi contention emerges from the timeline instead of being
/// assumed away.
///
/// The machine owns protocol state and its own backoff RNG; the scheduler
/// owns time and the medium.  Every transition returns a `Step` telling the
/// scheduler what to do next: arm a timer, start transmitting now, or wait
/// for a medium notification.  Timers invalidated by a medium transition
/// must be discarded by the caller (the sim engine uses a per-node token).
class WifiCsmaMachine {
 public:
  struct Step {
    enum class Kind {
      kNone,     ///< nothing to schedule (idle or waiting for medium_idle)
      kTimerAt,  ///< call timer_fired() at time `at`
      kTransmit, ///< begin the frame's transmission now
    };
    Kind kind = Kind::kNone;
    double at = 0.0;
  };

  WifiCsmaMachine(const WifiMacParams& params, std::uint64_t seed);

  /// A frame reached the head of the queue while the machine was idle.
  /// `medium_busy_now` is the scheduler's energy-detect verdict at `now`.
  Step frame_ready(double now, bool medium_busy_now);

  /// The armed timer fired (and was not invalidated): DIFS + backoff
  /// completed on an idle medium, so the frame transmits.
  Step timer_fired(double now);

  /// An audible transmission started at `now`.  Freezes the countdown,
  /// keeping the slots not yet consumed.  If the countdown was due to
  /// complete exactly at `now`, the machine transmits anyway — two nodes
  /// picking the same slot collide instead of politely serialising.
  Step medium_busy(double now);

  /// A transmission ended and the medium is idle at this node: resume
  /// DIFS + remaining slots if frozen.  If the countdown is running (the
  /// ended transmission was inaudible here), re-arms the countdown timer —
  /// callers invalidate all pending timers on every notification.
  Step medium_idle(double now);

  /// The transmission completed; the machine returns to idle.
  void tx_done();

  /// Crash/reboot hook: back to kIdle, discarding the frozen countdown and
  /// any armed timer (the scheduler invalidates pending timers by token).
  /// The backoff RNG survives — rewinding it would let a rebooted node
  /// replay its pre-crash draws.
  void reset() {
    state_ = State::kIdle;
    wait_start_ = 0.0;
    defer_until_ = 0.0;
    slots_left_ = 0;
  }

  bool idle() const { return state_ == State::kIdle; }
  /// True when the machine is waiting on the medium (deferring or counting
  /// down): the only states in which medium_idle() is not a stateless
  /// no-op.  In kIdle and kTx medium_idle() returns Step{kNone} and no
  /// valid timer is pending (every path into those states bumps the
  /// scheduler token), so a scheduler may skip non-waiting machines when
  /// broadcasting idle notifications without changing any outcome — the
  /// engine's O(degree) fast path (DESIGN.md §15) relies on exactly this.
  bool waiting() const {
    return state_ == State::kWaitIdle || state_ == State::kDefer;
  }
  /// Backoff slots not yet consumed (test hook for the freeze semantics).
  unsigned slots_left() const { return slots_left_; }

 private:
  enum class State { kIdle, kWaitIdle, kDefer, kTx };

  Step start_defer(double now);

  WifiMacParams params_;
  common::Rng rng_;
  State state_ = State::kIdle;
  double wait_start_ = 0.0;  // when the current DIFS+backoff wait began
  double defer_until_ = 0.0; // when the armed countdown completes
  unsigned slots_left_ = 0;
};

class WifiTimeline {
 public:
  WifiTimeline(const WifiMacParams& params, double duration_us,
               common::Rng& rng);

  const std::vector<WifiBurst>& bursts() const { return bursts_; }

  /// True when a burst covers time t.
  bool busy_at(double t_us) const;

  /// True when any burst overlaps [t0, t1].
  bool busy_in(double t0_us, double t1_us) const;

  /// Bursts overlapping [t0, t1] (indices into bursts()).
  std::pair<std::size_t, std::size_t> overlapping(double t0_us,
                                                  double t1_us) const;

  /// Fraction of the simulated duration covered by bursts (payload +
  /// preamble).
  double busy_fraction() const { return busy_fraction_; }

  double duration_us() const { return duration_us_; }

 private:
  std::vector<WifiBurst> bursts_;
  double duration_us_ = 0.0;
  double busy_fraction_ = 0.0;
};

}  // namespace sledzig::mac
