// WiFi transmission timeline for the coexistence simulation.
//
// In every scenario of the paper the ZigBee signal at the WiFi device is
// 20-30 dB below the 802.11 energy-detect threshold (Fig 17), so the WiFi
// transmitter never defers to ZigBee and its channel activity can be
// generated up-front: bursts of [preamble+SIGNAL | payload] separated by
// DIFS, contention backoff and (for duty ratios < 1) queue idle time.
#pragma once

#include <vector>

#include "common/rng.h"

namespace sledzig::mac {

struct WifiMacParams {
  double difs_us = 28.0;        // paper section II-B
  double slot_us = 9.0;
  unsigned cw = 16;             // fixed contention window (single BSS)
  double preamble_us = 20.0;    // PLCP preamble (16 us) + SIGNAL symbol
  double airtime_us = 4000.0;   // payload airtime per burst (A-MPDU-like)
  /// Fraction of time the channel carries WiFi data (Fig 16's
  /// "duration ratio").  1.0 = saturated back-to-back traffic.
  double duty_ratio = 1.0;
};

struct WifiBurst {
  double start_us = 0.0;         // preamble start
  double payload_start_us = 0.0; // preamble end
  double end_us = 0.0;
};

class WifiTimeline {
 public:
  WifiTimeline(const WifiMacParams& params, double duration_us,
               common::Rng& rng);

  const std::vector<WifiBurst>& bursts() const { return bursts_; }

  /// True when a burst covers time t.
  bool busy_at(double t_us) const;

  /// True when any burst overlaps [t0, t1].
  bool busy_in(double t0_us, double t1_us) const;

  /// Bursts overlapping [t0, t1] (indices into bursts()).
  std::pair<std::size_t, std::size_t> overlapping(double t0_us,
                                                  double t1_us) const;

  /// Fraction of the simulated duration covered by bursts (payload +
  /// preamble).
  double busy_fraction() const { return busy_fraction_; }

  double duration_us() const { return duration_us_; }

 private:
  std::vector<WifiBurst> bursts_;
  double duration_us_ = 0.0;
  double busy_fraction_ = 0.0;
};

}  // namespace sledzig::mac
