// Closed-form power accounting (section III-B and IV-E of the paper).
#pragma once

#include "common/units.h"
#include "sledzig/significant_bits.h"

namespace sledzig::core {

/// P_avg / P_low of the constellation in dB: 7.0 (QAM-16), 13.2 (QAM-64),
/// 19.3 (QAM-256).
common::Db constellation_gap_db(wifi::Modulation m);

/// Ideal (leakage-free) in-band power reduction over the 8-subcarrier window
/// of the ZigBee channel, accounting for the pilot in CH1-CH3 and the null
/// subcarriers in CH4.  The pilot keeps full power, so CH1-CH3 saturate well
/// below the constellation gap — the effect Fig 12 measures.
common::Db ideal_inband_reduction_db(const SledzigConfig& cfg);

/// Expected per-subcarrier power (normalised to the average constellation
/// power) of a forced subcarrier: P_low / P_avg.
double forced_subcarrier_power(wifi::Modulation m);

}  // namespace sledzig::core
