#include "sledzig/channels.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "wifi/subcarriers.h"

namespace sledzig::core {

std::string to_string(OverlapChannel ch) {
  switch (ch) {
    case OverlapChannel::kCh1: return "CH1";
    case OverlapChannel::kCh2: return "CH2";
    case OverlapChannel::kCh3: return "CH3";
    case OverlapChannel::kCh4: return "CH4";
  }
  return "?";
}

double channel_center_offset_hz(OverlapChannel ch) {
  switch (ch) {
    case OverlapChannel::kCh1: return -7e6;
    case OverlapChannel::kCh2: return -2e6;
    case OverlapChannel::kCh3: return 3e6;
    case OverlapChannel::kCh4: return 8e6;
  }
  throw std::invalid_argument("channel_center_offset_hz: bad channel");
}

double channel_center_subcarriers(OverlapChannel ch) {
  return channel_center_offset_hz(ch) / wifi::kSubcarrierSpacingHz;
}

std::size_t default_forced_count(OverlapChannel ch) {
  return ch == OverlapChannel::kCh4 ? 5 : 7;
}

std::vector<int> forced_data_subcarriers(OverlapChannel ch, std::size_t count) {
  if (count > wifi::kNumDataSubcarriers) {
    throw std::invalid_argument("forced_data_subcarriers: count > 48");
  }
  const double center = channel_center_subcarriers(ch);
  std::vector<int> by_distance(wifi::data_subcarrier_indices().begin(),
                               wifi::data_subcarrier_indices().end());
  std::stable_sort(by_distance.begin(), by_distance.end(),
                   [center](int a, int b) {
                     return std::abs(a - center) < std::abs(b - center);
                   });
  std::vector<int> chosen(by_distance.begin(), by_distance.begin() + count);
  std::sort(chosen.begin(), chosen.end());
  return chosen;
}

std::vector<int> forced_data_subcarriers(OverlapChannel ch) {
  return forced_data_subcarriers(ch, default_forced_count(ch));
}

bool window_contains_pilot(OverlapChannel ch) {
  return ch != OverlapChannel::kCh4;
}

unsigned testbed_zigbee_channel(OverlapChannel ch) {
  switch (ch) {
    case OverlapChannel::kCh1: return 23;
    case OverlapChannel::kCh2: return 24;
    case OverlapChannel::kCh3: return 25;
    case OverlapChannel::kCh4: return 26;
  }
  throw std::invalid_argument("testbed_zigbee_channel: bad channel");
}

std::optional<OverlapChannel> overlap_for_zigbee_channel(unsigned channel) {
  switch (channel) {
    case 23: return OverlapChannel::kCh1;
    case 24: return OverlapChannel::kCh2;
    case 25: return OverlapChannel::kCh3;
    case 26: return OverlapChannel::kCh4;
    default: return std::nullopt;
  }
}

std::vector<int> forced_data_subcarriers(
    std::span<const OverlapChannel> channels) {
  std::vector<int> all;
  for (OverlapChannel ch : channels) {
    const auto subs = forced_data_subcarriers(ch);
    all.insert(all.end(), subs.begin(), subs.end());
  }
  std::sort(all.begin(), all.end());
  all.erase(std::unique(all.begin(), all.end()), all.end());
  return all;
}

double wifi_channel_frequency_hz(unsigned channel) {
  if (channel < 1 || channel > 13) {
    throw std::invalid_argument("wifi_channel_frequency_hz: channel 1..13");
  }
  return (2412.0 + 5.0 * static_cast<double>(channel - 1)) * 1e6;
}

std::vector<int> window_data_subcarriers(const wifi::ChannelPlan& plan,
                                         double center_offset_hz,
                                         double bandwidth_hz) {
  if (bandwidth_hz <= 0.0) {
    throw std::invalid_argument("window_data_subcarriers: bandwidth > 0");
  }
  const double spacing = plan.subcarrier_spacing_hz();
  const double center = center_offset_hz / spacing;
  // Half the victim bandwidth plus one subcarrier of leakage margin
  // (section IV-B's "two adjacent subcarriers" argument).
  const double margin = bandwidth_hz / 2.0 / spacing + 1.0;
  std::vector<int> out;
  for (int idx : plan.data_indices) {
    if (std::abs(static_cast<double>(idx) - center) <= margin) {
      out.push_back(idx);
    }
  }
  return out;
}

double zigbee_offset_hz(unsigned zigbee_channel, double wifi_center_hz) {
  const double zb =
      (2405.0 + 5.0 * static_cast<double>(zigbee_channel - 11)) * 1e6;
  return zb - wifi_center_hz;
}

double ble_advertising_offset_hz(unsigned adv_channel, double wifi_center_hz) {
  double freq = 0.0;
  switch (adv_channel) {
    case 37: freq = 2402e6; break;
    case 38: freq = 2426e6; break;
    case 39: freq = 2480e6; break;
    default:
      throw std::invalid_argument(
          "ble_advertising_offset_hz: channel 37, 38 or 39");
  }
  return freq - wifi_center_hz;
}

}  // namespace sledzig::core
