// SledZig encoder (Algorithm 1): turns an application payload into WiFi
// transmit bytes such that, when those bytes pass through the *unmodified*
// 802.11 transmit chain, every forced subcarrier of every (full) data symbol
// carries a lowest-power QAM point.
//
// Framing: the transmit payload embeds [len_lo, len_hi, payload..., filler]
// in the scrambled domain with the deterministic extra bits of the
// constraint plan interleaved.  The decoder reverses this with nothing but
// the shared SledzigConfig (channel / modulation / rate / seed) — exactly
// the information the paper's receiver recovers from the PLCP header plus
// QAM-point inspection.
#pragma once

#include <optional>
#include <span>

#include "common/bits.h"
#include "common/fft.h"
#include "sledzig/significant_bits.h"

namespace sledzig::core {

struct SledzigEncodeResult {
  /// Bytes to hand to the standard WiFi transmitter as the PSDU.
  common::Bytes transmit_psdu;
  /// Scrambled-domain uncoded stream for the whole payload region (service
  /// prefix included), before tail/pad are appended by the WiFi TX.
  common::Bits scrambled_payload;
  std::size_t num_extra_bits = 0;
  std::size_t num_twins = 0;
  /// Constraints in the tail/pad region of the final OFDM symbol, which the
  /// standard WiFi TX appends after the payload — SledZig cannot force
  /// these, so the last symbol's window power is slightly higher (at most
  /// one symbol's worth; the paper's per-packet accounting ignores this).
  std::size_t num_unforced_tail = 0;
  /// Constraints unforcible at the stream head (SERVICE-field region, or a
  /// twin within the first 5 encoder steps).
  std::size_t num_unforced_head = 0;
  /// Extra-position collisions.  The paper argues deinterleaving makes these
  /// impossible; zero in every supported configuration (tested).
  std::size_t num_collisions = 0;
  /// Constraints whose verification failed after solving (should be zero;
  /// counted defensively).
  std::size_t num_violations = 0;
};

/// Maximum payload the 2-byte length framing supports.
inline constexpr std::size_t kMaxSledzigPayload = 0xffff;

SledzigEncodeResult sledzig_encode(const common::Bytes& payload,
                                   const SledzigConfig& cfg);

/// Recovers the original payload from the transmit PSDU (as decoded by the
/// standard WiFi receiver).  nullopt when the embedded length is
/// inconsistent with the PSDU size.
std::optional<common::Bytes> sledzig_decode(const common::Bytes& transmit_psdu,
                                            const SledzigConfig& cfg);

/// Extra bits inserted per OFDM symbol for this configuration (Table III).
std::size_t extra_bits_per_symbol(const SledzigConfig& cfg);

/// Fractional WiFi throughput loss = extra bits / data bits per symbol
/// (Table IV).
double throughput_loss(const SledzigConfig& cfg);

/// Blind ZigBee-channel detection from the received QAM points (section
/// IV-G): returns the channel whose forced subcarriers all carry
/// lowest-power points, or nullopt.  `points` is symbol-major (48 per data
/// symbol); partial final symbols may be excluded by the caller.
std::optional<OverlapChannel> detect_channel_from_points(
    std::span<const common::Cplx> points, wifi::Modulation modulation,
    double min_fraction = 0.97);

}  // namespace sledzig::core
