#include "sledzig/significant_bits.h"

#include <algorithm>
#include <map>
#include <set>
#include <stdexcept>

#include "wifi/convolutional.h"
#include "wifi/interleaver.h"
#include "wifi/puncture.h"
#include "wifi/qam.h"
#include "wifi/subcarriers.h"

namespace sledzig::core {

std::vector<int> SledzigConfig::forced_subcarrier_set() const {
  if (!window_offsets_hz.empty()) {
    std::vector<int> all;
    for (double offset : window_offsets_hz) {
      const auto subs =
          window_data_subcarriers(plan(), offset, window_bandwidth_hz);
      all.insert(all.end(), subs.begin(), subs.end());
    }
    std::sort(all.begin(), all.end());
    all.erase(std::unique(all.begin(), all.end()), all.end());
    return all;
  }
  if (width != wifi::ChannelWidth::k20MHz) {
    throw std::invalid_argument(
        "SledzigConfig: wide channels need explicit window_offsets_hz");
  }
  if (extra_channels.empty()) {
    return forced_data_subcarriers(channel, forced_count());
  }
  std::vector<OverlapChannel> all;
  all.push_back(channel);
  all.insert(all.end(), extra_channels.begin(), extra_channels.end());
  return forced_data_subcarriers(all);
}

std::size_t significant_bits_per_symbol(const SledzigConfig& cfg) {
  return cfg.forced_subcarrier_set().size() *
         wifi::significant_bits(cfg.modulation).size();
}

std::vector<SignificantBit> significant_bits_for_symbol(
    const SledzigConfig& cfg, std::size_t symbol) {
  const auto& plan = cfg.plan();
  const auto subcarriers = cfg.forced_subcarrier_set();
  const auto specs = wifi::significant_bits(cfg.modulation);
  // Gather convention: QAM-input bit j reads pre-interleaver position perm[j].
  const auto perm = wifi::interleaver_permutation(cfg.modulation, plan);
  const std::size_t n_bpsc = wifi::bits_per_subcarrier(cfg.modulation);
  const std::size_t n_cbps = wifi::coded_bits_per_symbol(cfg.modulation, plan);

  std::vector<SignificantBit> bits;
  bits.reserve(subcarriers.size() * specs.size());
  for (int logical : subcarriers) {
    const int pos = plan.data_position(logical);
    if (pos < 0) {
      throw std::logic_error("significant_bits: non-data subcarrier chosen");
    }
    for (const auto& spec : specs) {
      // Post-interleaver index within the symbol, traced to the interleaver
      // input, then through the puncturer to the encoder step.
      const std::size_t j =
          static_cast<std::size_t>(pos) * n_bpsc + spec.offset_in_group;
      const std::size_t punctured_in_symbol = perm[j];
      const std::size_t punctured_global = symbol * n_cbps + punctured_in_symbol;
      const std::size_t coded =
          wifi::punctured_to_coded_index(cfg.rate, punctured_global);
      SignificantBit bit;
      bit.punctured_pos = punctured_global;
      bit.value = spec.value;
      bit.step = coded / 2;
      bit.branch = static_cast<unsigned>(coded % 2);
      bits.push_back(bit);
    }
  }
  std::sort(bits.begin(), bits.end(), [](const auto& a, const auto& b) {
    return std::tie(a.step, a.branch) < std::tie(b.step, b.branch);
  });
  return bits;
}

std::vector<SignificantBit> significant_bits(const SledzigConfig& cfg,
                                             std::size_t num_symbols) {
  std::vector<SignificantBit> all;
  all.reserve(num_symbols * significant_bits_per_symbol(cfg));
  for (std::size_t s = 0; s < num_symbols; ++s) {
    const auto symbol_bits = significant_bits_for_symbol(cfg, s);
    all.insert(all.end(), symbol_bits.begin(), symbol_bits.end());
  }
  std::sort(all.begin(), all.end(), [](const auto& a, const auto& b) {
    return std::tie(a.step, a.branch) < std::tie(b.step, b.branch);
  });
  return all;
}

namespace {

common::Bit gen_coeff(unsigned branch, std::size_t step, std::size_t pos) {
  const unsigned gen = branch == 0 ? wifi::kGen0 : wifi::kGen1;
  if (pos > step || step - pos > 6) return 0;
  return static_cast<common::Bit>((gen >> (6 - (step - pos))) & 1u);
}

/// Chooses one unknown stream position per equation of a cluster via GF(2)
/// Gaussian elimination, preferring each equation's own tap positions in the
/// paper's offset order.  Equations that cannot get an independent unknown
/// are dropped and reported through `unforced`.
void solve_cluster_positions(Cluster& cluster, std::size_t payload_begin,
                             std::size_t payload_end,
                             std::vector<Equation>& unforced) {
  // Candidate positions: the union of all tap windows, restricted to the
  // payload region.
  std::vector<std::size_t> candidates;
  for (const auto& eq : cluster.equations) {
    for (unsigned o = 0; o <= 6; ++o) {
      if (eq.step < o) continue;
      const std::size_t pos = eq.step - o;
      if (pos < payload_begin || pos >= payload_end) continue;
      if (gen_coeff(eq.branch, eq.step, pos)) candidates.push_back(pos);
    }
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());

  const auto candidate_index = [&](std::size_t pos) -> int {
    const auto it = std::lower_bound(candidates.begin(), candidates.end(), pos);
    if (it == candidates.end() || *it != pos) return -1;
    return static_cast<int>(it - candidates.begin());
  };

  // Paper-preferred offsets per generator: a single forces x_n first, and a
  // twin's g0 equation forces x_{n-5} (Algorithm 1 of the paper); the
  // remaining taps are fallbacks (g0 lacks x_{n-1}/x_{n-4}, g1 lacks
  // x_{n-4}/x_{n-5}).
  static constexpr unsigned kSingleOffsets[2][5] = {{0, 5, 2, 3, 6},
                                                    {0, 1, 2, 3, 6}};
  static constexpr unsigned kTwinOffsets[2][5] = {{5, 0, 2, 3, 6},
                                                  {1, 0, 2, 3, 6}};
  std::map<std::size_t, unsigned> step_counts;
  for (const auto& eq : cluster.equations) ++step_counts[eq.step];

  std::vector<std::vector<common::Bit>> reduced_rows;
  std::vector<int> pivot_cols;
  std::vector<Equation> kept;
  std::vector<std::size_t> positions;

  for (const auto& eq : cluster.equations) {
    std::vector<common::Bit> row(candidates.size(), 0);
    for (std::size_t c = 0; c < candidates.size(); ++c) {
      row[c] = gen_coeff(eq.branch, eq.step, candidates[c]);
    }
    // Reduce against earlier pivots.
    for (std::size_t r = 0; r < reduced_rows.size(); ++r) {
      if (row[static_cast<std::size_t>(pivot_cols[r])]) {
        for (std::size_t c = 0; c < row.size(); ++c) {
          row[c] ^= reduced_rows[r][c];
        }
      }
    }
    // Pick a pivot: the equation's own taps in preference order first, then
    // any remaining set column (descending position for determinism).
    int pivot = -1;
    const auto& prefs =
        step_counts[eq.step] == 2 ? kTwinOffsets : kSingleOffsets;
    for (unsigned o : prefs[eq.branch]) {
      if (eq.step < o) continue;
      const int idx = candidate_index(eq.step - o);
      if (idx >= 0 && row[static_cast<std::size_t>(idx)]) {
        pivot = idx;
        break;
      }
    }
    if (pivot < 0) {
      for (std::size_t c = candidates.size(); c-- > 0;) {
        if (row[c]) {
          pivot = static_cast<int>(c);
          break;
        }
      }
    }
    if (pivot < 0) {
      unforced.push_back(eq);
      continue;
    }
    reduced_rows.push_back(std::move(row));
    pivot_cols.push_back(pivot);
    kept.push_back(eq);
    positions.push_back(candidates[static_cast<std::size_t>(pivot)]);
  }
  cluster.equations = std::move(kept);
  cluster.positions = std::move(positions);
}

}  // namespace

ConstraintPlan build_constraint_plan(const SledzigConfig& cfg,
                                     std::size_t payload_begin,
                                     std::size_t payload_end) {
  if (payload_end < payload_begin) {
    throw std::invalid_argument("build_constraint_plan: bad payload bounds");
  }
  const std::size_t dbps =
      wifi::data_bits_per_symbol(cfg.modulation, cfg.rate, cfg.plan());
  // Steps < payload_end live in symbols < ceil(payload_end / dbps).
  const std::size_t num_symbols = (payload_end + dbps - 1) / dbps;
  const auto sig = significant_bits(cfg, num_symbols);

  ConstraintPlan plan;

  // Count singles/twins and split off the tail region.
  std::map<std::size_t, unsigned> outputs_per_step;
  std::vector<Equation> equations;
  for (const auto& bit : sig) {
    ++outputs_per_step[bit.step];
    if (bit.step >= payload_end) {
      ++plan.num_unforced_tail;
      continue;
    }
    equations.push_back(Equation{bit.step, bit.branch, bit.value});
  }
  for (const auto& [step, count] : outputs_per_step) {
    if (count == 1) {
      ++plan.num_singles;
    } else if (count == 2) {
      ++plan.num_twins;
    } else {
      throw std::logic_error("build_constraint_plan: >2 outputs per step");
    }
  }

  // Cluster equations whose 7-bit tap windows can interact, then choose the
  // unknowns cluster by cluster.
  std::vector<Equation> unforced;
  for (std::size_t i = 0; i < equations.size();) {
    Cluster cluster;
    cluster.equations.push_back(equations[i]);
    std::size_t last_step = equations[i].step;
    std::size_t jmp = i + 1;
    while (jmp < equations.size() && equations[jmp].step <= last_step + 6) {
      last_step = std::max(last_step, equations[jmp].step);
      cluster.equations.push_back(equations[jmp]);
      ++jmp;
    }
    i = jmp;
    solve_cluster_positions(cluster, payload_begin, payload_end, unforced);
    if (!cluster.equations.empty()) {
      plan.extra_positions.insert(plan.extra_positions.end(),
                                  cluster.positions.begin(),
                                  cluster.positions.end());
      plan.clusters.push_back(std::move(cluster));
    }
  }
  for (const auto& eq : unforced) {
    // Equations near the stream head (or the SERVICE field) simply lack
    // room for an unknown; anything else would be a genuine rank collision.
    if (eq.step < payload_begin + 7) {
      ++plan.num_unforced_head;
    } else {
      ++plan.num_collisions;
    }
  }
  std::sort(plan.extra_positions.begin(), plan.extra_positions.end());
  return plan;
}

}  // namespace sledzig::core
