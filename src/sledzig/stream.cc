#include "sledzig/stream.h"

#include <stdexcept>

namespace sledzig::core {

namespace {

void put_u16(common::Bytes& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xff));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

std::uint16_t get_u16(const common::Bytes& in, std::size_t at) {
  return static_cast<std::uint16_t>(in[at] |
                                    (static_cast<std::uint16_t>(in[at + 1]) << 8));
}

}  // namespace

std::vector<common::Bytes> stream_encode(const common::Bytes& message,
                                         std::uint16_t stream_id,
                                         const SledzigConfig& cfg,
                                         std::size_t max_fragment) {
  if (max_fragment == 0) {
    throw std::invalid_argument("stream_encode: max_fragment must be > 0");
  }
  const std::size_t total =
      message.empty() ? 1 : (message.size() + max_fragment - 1) / max_fragment;
  if (total > 0xffff) {
    throw std::invalid_argument("stream_encode: message needs too many chunks");
  }

  std::vector<common::Bytes> psdus;
  psdus.reserve(total);
  for (std::size_t seq = 0; seq < total; ++seq) {
    const std::size_t begin = seq * max_fragment;
    const std::size_t end = std::min(message.size(), begin + max_fragment);
    common::Bytes chunk;
    chunk.reserve(kStreamHeaderOctets + (end - begin));
    put_u16(chunk, stream_id);
    put_u16(chunk, static_cast<std::uint16_t>(seq));
    put_u16(chunk, static_cast<std::uint16_t>(total));
    chunk.insert(chunk.end(), message.begin() + static_cast<long>(begin),
                 message.begin() + static_cast<long>(end));
    psdus.push_back(sledzig_encode(chunk, cfg).transmit_psdu);
  }
  return psdus;
}

std::optional<StreamChunk> parse_stream_chunk(const common::Bytes& chunk) {
  if (chunk.size() < kStreamHeaderOctets) return std::nullopt;
  StreamChunk out;
  out.stream_id = get_u16(chunk, 0);
  out.seq = get_u16(chunk, 2);
  out.total = get_u16(chunk, 4);
  if (out.total == 0 || out.seq >= out.total) return std::nullopt;
  out.fragment.assign(chunk.begin() + kStreamHeaderOctets, chunk.end());
  return out;
}

std::optional<common::Bytes> StreamReassembler::push(
    const common::Bytes& transmit_psdu, const SledzigConfig& cfg) {
  const auto decoded = sledzig_decode(transmit_psdu, cfg);
  if (!decoded) return std::nullopt;
  const auto chunk = parse_stream_chunk(*decoded);
  if (!chunk) return std::nullopt;
  return push_chunk(*chunk);
}

std::optional<common::Bytes> StreamReassembler::push_chunk(
    const StreamChunk& chunk) {
  auto& pending = pending_[chunk.stream_id];
  if (pending.total == 0) {
    pending.total = chunk.total;
  } else if (pending.total != chunk.total) {
    // Conflicting totals: restart the stream with the newer header.
    pending = Pending{chunk.total, {}};
  }
  pending.fragments.emplace(chunk.seq, chunk.fragment);  // dedupes
  if (pending.fragments.size() < pending.total) return std::nullopt;

  common::Bytes message;
  for (const auto& [seq, frag] : pending.fragments) {
    message.insert(message.end(), frag.begin(), frag.end());
  }
  pending_.erase(chunk.stream_id);
  return message;
}

}  // namespace sledzig::core
