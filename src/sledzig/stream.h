// Fragmentation / reassembly on top of the SledZig codec.
//
// A single PSDU is capped by the 12-bit SIGNAL LENGTH field (4095 octets)
// and large payloads also amortise badly against the per-symbol extra-bit
// cost near packet tails.  This layer splits an application message into
// chunks — each an independent SledZig packet — and reassembles them
// out-of-order on the receive side:
//
//   chunk payload = [stream_id:2][seq:2][total:2][fragment bytes]
//
// all little-endian, wrapped by sledzig_encode()/sledzig_decode().
#pragma once

#include <cstdint>
#include <map>
#include <optional>

#include "sledzig/encoder.h"

namespace sledzig::core {

inline constexpr std::size_t kStreamHeaderOctets = 6;

struct StreamChunk {
  std::uint16_t stream_id = 0;
  std::uint16_t seq = 0;
  std::uint16_t total = 0;
  common::Bytes fragment;
};

/// Splits `message` into chunks of at most `max_fragment` payload octets and
/// returns one transmit PSDU per chunk.  Throws if the message would need
/// more than 65535 chunks.
std::vector<common::Bytes> stream_encode(const common::Bytes& message,
                                         std::uint16_t stream_id,
                                         const SledzigConfig& cfg,
                                         std::size_t max_fragment = 1024);

/// Parses one received chunk (after sledzig_decode); nullopt when the
/// header is inconsistent.
std::optional<StreamChunk> parse_stream_chunk(const common::Bytes& chunk);

/// Reassembles chunks into messages.  Multiple interleaved streams are
/// supported; duplicates are ignored.
class StreamReassembler {
 public:
  /// Feeds one received transmit PSDU.  Returns the completed message when
  /// this chunk was the last missing piece of its stream.
  std::optional<common::Bytes> push(const common::Bytes& transmit_psdu,
                                    const SledzigConfig& cfg);

  /// Feeds an already-decoded chunk payload.
  std::optional<common::Bytes> push_chunk(const StreamChunk& chunk);

  /// Streams currently partially assembled.
  std::size_t pending_streams() const { return pending_.size(); }

  /// Drops the partial state of one stream (e.g. on timeout).
  void abort_stream(std::uint16_t stream_id) { pending_.erase(stream_id); }

 private:
  struct Pending {
    std::uint16_t total = 0;
    std::map<std::uint16_t, common::Bytes> fragments;
  };
  std::map<std::uint16_t, Pending> pending_;
};

}  // namespace sledzig::core
