#include "sledzig/encoder.h"

#include <algorithm>
#include <set>
#include <stdexcept>

#include "wifi/convolutional.h"
#include "wifi/qam.h"
#include "wifi/scrambler.h"
#include "wifi/subcarriers.h"

namespace sledzig::core {

namespace {

constexpr common::Bit kUnset = 2;

unsigned gen_of(unsigned branch) {
  return branch == 0 ? wifi::kGen0 : wifi::kGen1;
}

/// XOR of the generator taps over the *known* stream positions of
/// [step-6 .. step]; unknown (kUnset) positions are skipped — their
/// contribution is carried by the cluster system's coefficient matrix.
/// Positions before the stream start read as 0 (encoder initial state).
common::Bit known_tap_sum(const common::Bits& x, std::size_t step,
                          unsigned branch) {
  const unsigned gen = gen_of(branch);
  common::Bit acc = 0;
  for (unsigned i = 0; i <= 6; ++i) {
    if (((gen >> (6 - i)) & 1u) == 0) continue;  // gen bit for x_{n-i}
    if (step < i) continue;                      // before stream start: 0
    const std::size_t pos = step - i;
    if (x[pos] == kUnset) continue;
    acc = static_cast<common::Bit>(acc ^ (x[pos] & 1u));
  }
  return acc;
}

/// Generator coefficient of stream position `pos` in the equation of step
/// `step`: 1 when the generator taps x_{step-pos}.
common::Bit gen_coeff(unsigned branch, std::size_t step, std::size_t pos) {
  if (pos > step || step - pos > 6) return 0;
  return static_cast<common::Bit>((gen_of(branch) >> (6 - (step - pos))) & 1u);
}

/// Solves the square GF(2) system of one cluster and writes the unknowns
/// into the stream.  The plan guarantees invertibility.
void solve_cluster(const Cluster& cluster, common::Bits& x) {
  const std::size_t k = cluster.equations.size();
  // Augmented matrix [A | r].
  std::vector<std::vector<common::Bit>> m(k,
                                          std::vector<common::Bit>(k + 1, 0));
  for (std::size_t e = 0; e < k; ++e) {
    const auto& eq = cluster.equations[e];
    for (std::size_t u = 0; u < k; ++u) {
      m[e][u] = gen_coeff(eq.branch, eq.step, cluster.positions[u]);
    }
    m[e][k] = static_cast<common::Bit>(
        (eq.value ^ known_tap_sum(x, eq.step, eq.branch)) & 1u);
  }
  // Gauss-Jordan over GF(2).
  for (std::size_t col = 0; col < k; ++col) {
    std::size_t pivot = col;
    while (pivot < k && m[pivot][col] == 0) ++pivot;
    if (pivot == k) {
      throw std::logic_error("sledzig: singular cluster system");
    }
    std::swap(m[col], m[pivot]);
    for (std::size_t r = 0; r < k; ++r) {
      if (r != col && m[r][col]) {
        for (std::size_t c = col; c <= k; ++c) m[r][c] ^= m[col][c];
      }
    }
  }
  for (std::size_t u = 0; u < k; ++u) {
    x[cluster.positions[u]] = m[u][k];
  }
}

/// Encoder outputs (y_{2n-1}, y_{2n}) for step n over the finished stream.
std::pair<common::Bit, common::Bit> encode_outputs(const common::Bits& x,
                                                   std::size_t step) {
  common::Bit a = 0, b = 0;
  for (unsigned i = 0; i <= 6; ++i) {
    if (step < i) continue;
    const common::Bit bit = x[step - i] & 1u;
    if ((wifi::kGen0 >> (6 - i)) & 1u) a ^= bit;
    if ((wifi::kGen1 >> (6 - i)) & 1u) b ^= bit;
  }
  return {a, b};
}

std::size_t round_up8(std::size_t v) { return (v + 7) / 8 * 8; }

}  // namespace

std::size_t extra_bits_per_symbol(const SledzigConfig& cfg) {
  return significant_bits_per_symbol(cfg);
}

double throughput_loss(const SledzigConfig& cfg) {
  return static_cast<double>(extra_bits_per_symbol(cfg)) /
         static_cast<double>(
             wifi::data_bits_per_symbol(cfg.modulation, cfg.rate, cfg.plan()));
}

SledzigEncodeResult sledzig_encode(const common::Bytes& payload,
                                   const SledzigConfig& cfg) {
  if (payload.size() > kMaxSledzigPayload) {
    throw std::invalid_argument("sledzig_encode: payload too long");
  }
  // Inner data: 2-byte little-endian length header + payload.
  common::Bytes inner;
  inner.reserve(payload.size() + 2);
  inner.push_back(static_cast<std::uint8_t>(payload.size() & 0xff));
  inner.push_back(static_cast<std::uint8_t>(payload.size() >> 8));
  inner.insert(inner.end(), payload.begin(), payload.end());
  const auto data_bits = common::bytes_to_bits(inner);

  const std::size_t svc = cfg.include_service_field ? 16 : 0;

  // Find the smallest multiple-of-8 payload-region size T whose capacity
  // (after removing extra-bit positions) fits the inner data.
  std::size_t t = round_up8(data_bits.size());
  ConstraintPlan plan;
  for (int iter = 0; iter < 64; ++iter) {
    plan = build_constraint_plan(cfg, svc, svc + t);
    const std::size_t capacity = t - plan.extra_positions.size();
    if (capacity >= data_bits.size()) break;
    t = round_up8(data_bits.size() + plan.extra_positions.size() + 8);
  }
  const std::size_t capacity = t - plan.extra_positions.size();
  if (capacity < data_bits.size()) {
    throw std::logic_error("sledzig_encode: sizing did not converge");
  }

  // Scrambled-domain stream: service prefix (scrambled zeros = keystream),
  // data bits (scrambled with a data-indexed keystream), extra positions.
  const auto key_abs = wifi::scrambler_sequence(cfg.scrambler_seed, svc + t);
  const auto key_data = wifi::scrambler_sequence(cfg.scrambler_seed, capacity);
  const std::set<std::size_t> extras(plan.extra_positions.begin(),
                                     plan.extra_positions.end());

  common::Bits x(svc + t, kUnset);
  for (std::size_t p = 0; p < svc; ++p) x[p] = key_abs[p];
  std::size_t j = 0;
  for (std::size_t p = svc; p < svc + t; ++p) {
    if (extras.contains(p)) continue;
    const common::Bit data = j < data_bits.size() ? data_bits[j] : 0;
    x[p] = static_cast<common::Bit>((data ^ key_data[j]) & 1u);
    ++j;
  }

  // Solve the clusters in stream order.
  SledzigEncodeResult result;
  result.num_twins = plan.num_twins;
  result.num_unforced_tail = plan.num_unforced_tail;
  result.num_unforced_head = plan.num_unforced_head;
  result.num_collisions = plan.num_collisions;
  for (const auto& cluster : plan.clusters) {
    solve_cluster(cluster, x);
    result.num_extra_bits += cluster.positions.size();
  }
  for (auto& bit : x) {
    if (bit == kUnset) bit = 0;  // defensive; plan covers all extras
  }

  // Verify every forced equation against a real encode pass.
  for (const auto& cluster : plan.clusters) {
    for (const auto& eq : cluster.equations) {
      const auto [a, b] = encode_outputs(x, eq.step);
      if ((eq.branch == 0 ? a : b) != eq.value) ++result.num_violations;
    }
  }

  // Descramble the payload region into transmit bytes.
  common::Bits t_bits(t);
  for (std::size_t p = svc; p < svc + t; ++p) {
    t_bits[p - svc] = static_cast<common::Bit>((x[p] ^ key_abs[p]) & 1u);
  }
  result.transmit_psdu = common::bits_to_bytes(t_bits);
  result.scrambled_payload = std::move(x);
  return result;
}

std::optional<common::Bytes> sledzig_decode(const common::Bytes& transmit_psdu,
                                            const SledzigConfig& cfg) {
  const std::size_t t = transmit_psdu.size() * 8;
  if (t == 0) return std::nullopt;
  const std::size_t svc = cfg.include_service_field ? 16 : 0;
  const auto plan = build_constraint_plan(cfg, svc, svc + t);
  const auto key_abs = wifi::scrambler_sequence(cfg.scrambler_seed, svc + t);
  const auto t_bits = common::bytes_to_bits(transmit_psdu);

  const std::set<std::size_t> extras(plan.extra_positions.begin(),
                                     plan.extra_positions.end());
  common::Bits residual;
  residual.reserve(t);
  for (std::size_t p = svc; p < svc + t; ++p) {
    if (extras.contains(p)) continue;
    residual.push_back(
        static_cast<common::Bit>((t_bits[p - svc] ^ key_abs[p]) & 1u));
  }
  const auto key_data =
      wifi::scrambler_sequence(cfg.scrambler_seed, residual.size());
  for (std::size_t i = 0; i < residual.size(); ++i) {
    residual[i] = static_cast<common::Bit>((residual[i] ^ key_data[i]) & 1u);
  }
  if (residual.size() < 16) return std::nullopt;
  const std::size_t len = static_cast<std::size_t>(
      common::bits_to_uint(residual, 16));
  if (16 + len * 8 > residual.size()) return std::nullopt;
  common::Bits payload_bits(residual.begin() + 16,
                            residual.begin() + 16 + len * 8);
  return common::bits_to_bytes(payload_bits);
}

std::optional<OverlapChannel> detect_channel_from_points(
    std::span<const common::Cplx> points, wifi::Modulation modulation,
    double min_fraction) {
  if (points.empty() || points.size() % wifi::kNumDataSubcarriers != 0) {
    return std::nullopt;
  }
  const std::size_t num_symbols = points.size() / wifi::kNumDataSubcarriers;
  std::optional<OverlapChannel> best;
  double best_fraction = 0.0;
  for (OverlapChannel ch : kAllOverlapChannels) {
    const auto subcarriers = forced_data_subcarriers(ch);
    std::size_t lowest = 0, total = 0;
    for (std::size_t s = 0; s < num_symbols; ++s) {
      for (int logical : subcarriers) {
        const int pos = wifi::data_subcarrier_position(logical);
        const auto& point =
            points[s * wifi::kNumDataSubcarriers + static_cast<std::size_t>(pos)];
        ++total;
        // Snap to the nearest constellation point so the test is robust to
        // noise: a point "is lowest" when its hard decision is.
        const auto ideal = wifi::qam_map_point(
            wifi::qam_demap_point(point, modulation), modulation);
        if (wifi::is_lowest_point(ideal, modulation)) ++lowest;
      }
    }
    const double fraction =
        total == 0 ? 0.0 : static_cast<double>(lowest) / static_cast<double>(total);
    if (fraction > best_fraction) {
      best_fraction = fraction;
      best = ch;
    }
  }
  if (best_fraction < min_fraction) return std::nullopt;
  return best;
}

}  // namespace sledzig::core
