#include "sledzig/power_analysis.h"

#include "common/units.h"
#include "wifi/qam.h"

namespace sledzig::core {

common::Db constellation_gap_db(wifi::Modulation m) {
  return common::ratio_to_db(wifi::average_point_power_raw(m) /
                             wifi::lowest_point_power_raw());
}

double forced_subcarrier_power(wifi::Modulation m) {
  return wifi::lowest_point_power_raw() / wifi::average_point_power_raw(m);
}

common::Db ideal_inband_reduction_db(const SledzigConfig& cfg) {
  const double p_low = forced_subcarrier_power(cfg.modulation);
  const double forced = static_cast<double>(cfg.forced_count());
  // Window contents: forced data subcarriers plus (for CH1-CH3) one
  // full-power pilot.  Null subcarriers contribute nothing either way.
  const double pilot = window_contains_pilot(cfg.channel) ? 1.0 : 0.0;
  const double normal = forced + pilot;
  const double sled = forced * p_low + pilot;
  return common::ratio_to_db(normal / sled);
}

}  // namespace sledzig::core
