// Geometry of the four ZigBee channels overlapping one 20 MHz WiFi channel
// (Fig 2 / section IV-B of the paper).
//
// At WiFi channel 13 (2472 MHz) the overlapped ZigBee channels 23..26 sit at
// subcarrier offsets -22.4, -6.4, +9.6 and +25.6.  Each 2 MHz ZigBee channel
// covers 6.4 subcarriers; with the leakage of the two adjacent subcarriers
// the paper forces 8 subcarriers per channel, of which 7 are data + 1 pilot
// for CH1-CH3 and 5 are data + 3 null for CH4.
#pragma once

#include <array>
#include <optional>
#include <span>
#include <vector>

#include "wifi/phy_params.h"
#include "wifi/subcarriers.h"

namespace sledzig::core {

enum class OverlapChannel { kCh1, kCh2, kCh3, kCh4 };

inline constexpr std::array<OverlapChannel, 4> kAllOverlapChannels = {
    OverlapChannel::kCh1, OverlapChannel::kCh2, OverlapChannel::kCh3,
    OverlapChannel::kCh4};

std::string to_string(OverlapChannel ch);

/// Centre of the ZigBee channel in subcarrier units relative to the WiFi
/// channel centre (-22.4, -6.4, +9.6, +25.6).
double channel_center_subcarriers(OverlapChannel ch);

/// Centre frequency offset in Hz from the WiFi channel centre
/// (-7, -2, +3, +8 MHz).
double channel_center_offset_hz(OverlapChannel ch);

/// Number of data subcarriers the paper forces to lowest-power points:
/// 7 for CH1-CH3 (the 8-subcarrier window contains one pilot), 5 for CH4
/// (the window contains three nulls).
std::size_t default_forced_count(OverlapChannel ch);

/// The `count` data subcarriers nearest the ZigBee channel centre, as
/// logical indices sorted ascending.  `count` up to 48; Fig 11 sweeps 5..8.
std::vector<int> forced_data_subcarriers(OverlapChannel ch, std::size_t count);

/// Same as above with the paper's default count.
std::vector<int> forced_data_subcarriers(OverlapChannel ch);

/// True when the pilot at -21/-7/+7 falls inside the channel's 8-subcarrier
/// window (CH1-CH3).
bool window_contains_pilot(OverlapChannel ch);

/// Maps WiFi channel 13 to the paper's testbed ZigBee channel numbers:
/// CH1 -> 23, CH2 -> 24, CH3 -> 25, CH4 -> 26.
unsigned testbed_zigbee_channel(OverlapChannel ch);

/// Inverse of the above for ZigBee channels 23..26.
std::optional<OverlapChannel> overlap_for_zigbee_channel(unsigned channel);

/// Centre frequency in Hz of WiFi channel 1..13 (2.4 GHz band).
double wifi_channel_frequency_hz(unsigned channel);

/// Union of the forced data subcarriers of several channels (sorted,
/// deduplicated).  SledZig can protect multiple ZigBee channels in one
/// packet at proportionally higher extra-bit cost (extension; the paper
/// protects one channel at a time).
std::vector<int> forced_data_subcarriers(std::span<const OverlapChannel> channels);

/// General window rule for any channel plan (including 40 MHz) and victim
/// bandwidth: all data subcarriers within bandwidth/2 plus one
/// adjacent-leakage subcarrier of the window centre.  With the default
/// 2 MHz (ZigBee) bandwidth on the 20 MHz plan this reproduces the paper's
/// 7/5 defaults exactly; pass 1 MHz for a classic-Bluetooth hop channel or
/// 2 MHz for a BLE channel.
std::vector<int> window_data_subcarriers(const wifi::ChannelPlan& plan,
                                         double center_offset_hz,
                                         double bandwidth_hz = 2e6);

/// Frequency offset of a ZigBee channel (11..26) from a WiFi centre
/// frequency — for placing windows on wide channels.
double zigbee_offset_hz(unsigned zigbee_channel, double wifi_center_hz);

/// Frequency offset of a BLE advertising channel (37, 38, 39 at 2402, 2426,
/// 2480 MHz) from a WiFi centre frequency.  SledZig can guard BLE
/// advertising exactly like a ZigBee channel (the BlueFi-adjacent use case
/// in the paper's related work).
double ble_advertising_offset_hz(unsigned adv_channel, double wifi_center_hz);

}  // namespace sledzig::core
