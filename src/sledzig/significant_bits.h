// The significant-bit pipeline (sections IV-A..IV-D of the paper).
//
// Significant bits are defined at the QAM mapper input: forcing them selects
// lowest-power constellation points on the subcarriers overlapped with the
// ZigBee channel.  This module traces them backwards through the interleaver
// (deinterleaving) and the puncturer to convolutional-encoder steps, and
// derives the deterministic *extra-bit positions* in the uncoded scrambled
// stream that Algorithm 1 fills:
//   - a "single" significant bit at encoder step n costs one extra bit x_n;
//   - "twin" significant bits (both outputs of step n) cost two extra bits
//     placed at x_{n-1} and x_{n-5} (solvable because g0 taps x_{n-5} but
//     not x_{n-1}, and g1 taps x_{n-1} but not x_{n-5}).
#pragma once

#include <cstdint>
#include <vector>

#include "common/bits.h"
#include "sledzig/channels.h"
#include "wifi/phy_params.h"

namespace sledzig::core {

struct SledzigConfig {
  wifi::Modulation modulation = wifi::Modulation::kQam16;
  wifi::CodingRate rate = wifi::CodingRate::kR12;
  OverlapChannel channel = OverlapChannel::kCh2;
  /// Additional ZigBee channels to protect in the same packet (extension;
  /// the paper protects one).  Extra-bit cost grows with the union of the
  /// forced subcarriers; `forced_subcarriers` is ignored when set.
  std::vector<OverlapChannel> extra_channels;
  /// Data subcarriers forced per symbol; 0 selects the paper default
  /// (7 for CH1-CH3, 5 for CH4).  Fig 11 sweeps this.
  std::size_t forced_subcarriers = 0;
  std::uint8_t scrambler_seed = 0x5d;
  bool include_service_field = false;
  /// Channel bandwidth.  The paper evaluates 20 MHz; on the 40 MHz plan the
  /// protected window is given by `window_offsets_hz` instead of `channel`.
  wifi::ChannelWidth width = wifi::ChannelWidth::k20MHz;
  /// Explicit window centres (Hz from the WiFi channel centre).  When
  /// non-empty these override `channel`/`extra_channels`; required for
  /// 40 MHz, optional for 20 MHz.
  std::vector<double> window_offsets_hz;
  /// Bandwidth of the explicit windows (2 MHz = ZigBee/BLE; 1 MHz =
  /// classic-Bluetooth hop channel).
  double window_bandwidth_hz = 2e6;

  const wifi::ChannelPlan& plan() const { return wifi::channel_plan(width); }

  std::size_t forced_count() const {
    return forced_subcarriers == 0 ? default_forced_count(channel)
                                   : forced_subcarriers;
  }

  /// The forced data-subcarrier set (single window, multi-channel union, or
  /// explicit window offsets on any plan).
  std::vector<int> forced_subcarrier_set() const;
};

/// One significant bit traced back to the convolutional encoder.
struct SignificantBit {
  std::size_t punctured_pos;  // 0-based position in the transmitted coded
                              // stream (interleaver input), global
  common::Bit value;          // required value
  std::size_t step;           // encoder step n (0-based uncoded position)
  unsigned branch;            // 0 = y_{2n-1} (g0), 1 = y_{2n} (g1)
};

/// Significant bits of OFDM data symbol `symbol` (0-based), sorted by
/// (step, branch).  Positions are global (offset by symbol * N_CBPS).
std::vector<SignificantBit> significant_bits_for_symbol(
    const SledzigConfig& cfg, std::size_t symbol);

/// Significant bits of symbols [0, num_symbols), sorted by (step, branch).
std::vector<SignificantBit> significant_bits(const SledzigConfig& cfg,
                                             std::size_t num_symbols);

/// Number of significant bits per OFDM symbol = forced subcarriers *
/// significant bits per point (2/4/6).  This is also the number of extra
/// bits per symbol (Table III).
std::size_t significant_bits_per_symbol(const SledzigConfig& cfg);

/// One linear equation over the uncoded stream: output y of `branch` at
/// encoder step `step` must equal `value`.  A "single" significant bit is
/// one equation; a "twin" contributes two equations at the same step.
struct Equation {
  std::size_t step = 0;
  unsigned branch = 0;  // 0 = y_{2n-1} (g0), 1 = y_{2n} (g1)
  common::Bit value = 0;
};

/// A maximal group of equations whose 7-bit tap windows overlap.  The
/// cluster is solved jointly: `positions` are the extra-bit stream positions
/// chosen as unknowns, one per equation, such that the square GF(2) system
/// is invertible.  Most clusters are a lone single (position n, the paper's
/// choice) or a lone twin (positions n-5 and n-1); the general solver also
/// handles the denser patterns that QAM-256 produces on some channels.
struct Cluster {
  std::vector<Equation> equations;
  std::vector<std::size_t> positions;  // same length as equations
};

struct ConstraintPlan {
  std::vector<Cluster> clusters;
  /// Union of all chosen extra positions, sorted ascending.
  std::vector<std::size_t> extra_positions;
  std::size_t num_singles = 0;
  std::size_t num_twins = 0;
  /// Equations at/after payload_end (tail/pad region appended by the WiFi
  /// TX) — unforcible by design, expected in the final symbol only.
  std::size_t num_unforced_tail = 0;
  /// Equations that could not get an unknown inside [payload_begin,
  /// payload_end) (SERVICE-field region or the first encoder steps).
  std::size_t num_unforced_head = 0;
  /// Equations dropped because the cluster system was rank-deficient.
  /// Zero in every supported configuration (tested).
  std::size_t num_collisions = 0;

  std::size_t num_unforced() const {
    return num_unforced_tail + num_unforced_head + num_collisions;
  }
};

/// Builds the deterministic constraint plan for an uncoded stream of
/// `stream_len` bits ([fixed service][payload]...; positions >= payload_end
/// belong to tail/pad and are not forcible).  Both the encoder and the
/// decoder derive the identical plan from the config alone.
ConstraintPlan build_constraint_plan(const SledzigConfig& cfg,
                                     std::size_t payload_begin,
                                     std::size_t payload_end);

}  // namespace sledzig::core
