// 802.15.4 2.4 GHz DSSS: each 4-bit symbol is spread to one of sixteen
// 32-chip pseudo-noise sequences (Table 73 of the standard).  Symbols 1..7
// are 4-chip right rotations of symbol 0; symbols 8..15 invert the
// odd-indexed chips of symbols 0..7.
#pragma once

#include <array>
#include <cstdint>

#include "common/bits.h"

namespace sledzig::zigbee {

inline constexpr std::size_t kChipsPerSymbol = 32;
inline constexpr std::size_t kBitsPerSymbol = 4;
inline constexpr std::size_t kNumSymbols = 16;
inline constexpr double kChipRateHz = 2e6;
inline constexpr double kSymbolDurationUs = 16.0;
inline constexpr double kBitRateBps = 250e3;

using ChipSeq = std::array<common::Bit, kChipsPerSymbol>;

/// The full 16-entry chip table.
const std::array<ChipSeq, kNumSymbols>& chip_table();

/// Spreads a bit stream (length multiple of 4; LSB-first symbol packing per
/// the standard) into chips.
common::Bits spread(const common::Bits& bits);

/// Hard-decision despreading: picks the symbol with the smallest chip
/// Hamming distance.  Also reports that distance for link-quality metrics.
struct DespreadResult {
  common::Bits bits;
  std::size_t total_chip_errors = 0;
};
DespreadResult despread(const common::Bits& chips);

}  // namespace sledzig::zigbee
