// O-QPSK modulation with half-sine pulse shaping (802.15.4 2.4 GHz PHY).
//
// Even-indexed chips modulate the I phase, odd-indexed chips the Q phase,
// offset by one chip period Tc = 0.5 us.  Each chip is shaped by a half-sine
// pulse spanning 2*Tc, so the envelope is MSK-like (constant modulus).
// At the common simulation rate of 20 MS/s each chip spans 10 samples.
#pragma once

#include "common/bits.h"
#include "common/fft.h"

namespace sledzig::zigbee {

inline constexpr double kOqpskSampleRateHz = 20e6;
inline constexpr std::size_t kSamplesPerChip = 10;  // 20 MS/s / 2 Mchip/s

/// Samples occupied by one 32-chip symbol (320 at 20 MS/s).
inline constexpr std::size_t kSamplesPerSymbol = 32 * kSamplesPerChip;

/// Modulates a chip stream (multiple of 32 chips) into complex baseband.
/// The waveform is scaled to unit mean power.  The final Q pulse spills one
/// chip period past the nominal end; the tail is included, so the output is
/// chips*10 + 10 samples long.
common::CplxVec oqpsk_modulate(const common::Bits& chips);

/// Coherent chip decisions by integrating over each half-sine pulse.  The
/// input must be aligned to the start of the first chip.
common::Bits oqpsk_demodulate_chips(std::span<const common::Cplx> samples,
                                    std::size_t num_chips);

/// Correlates `samples` against the modulated reference of `chips` and
/// returns the normalised complex correlation magnitude in [0, 1].
/// Used for preamble detection and per-symbol quality metrics.
double oqpsk_correlate(std::span<const common::Cplx> samples,
                       const common::Bits& chips);

/// Soft matched-filter despreading: correlates each 32-chip symbol window
/// (coherently, so the input must be phase-corrected) against the 16
/// reference symbol waveforms and picks the best.  ~4-6 dB more robust than
/// hard chip decisions + Hamming despreading — this is how correlator-based
/// radios like the CC2420 behave.  Returns 4 bits per symbol.
common::Bits oqpsk_despread_soft(std::span<const common::Cplx> samples,
                                 std::size_t num_symbols);

}  // namespace sledzig::zigbee
