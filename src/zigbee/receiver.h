// ZigBee receiver: preamble correlation sync, phase correction, chip
// demodulation, despreading, framing and FCS check.
#pragma once

#include <optional>

#include "common/bits.h"
#include "common/fft.h"
#include "common/rx_error.h"

namespace sledzig::zigbee {

struct ZigbeeRxConfig {
  /// Normalised correlation threshold for preamble detection.
  double detection_threshold = 0.35;
  /// Sample stride of the coarse search (refined to +-stride afterwards).
  std::size_t search_stride = 2;
  /// Channel-select filter cutoff (the CC2420 filters to its 2 MHz channel
  /// before demodulation; without this, wideband interferers leak into the
  /// chip correlator).  Set to 0 to disable.
  double channel_filter_cutoff_hz = 1.2e6;
  std::size_t channel_filter_taps = 63;
  /// Soft matched-filter despreading (correlator bank over the 16 symbol
  /// waveforms, as correlator radios do) instead of hard chip decisions +
  /// Hamming despreading.  Worth ~4-6 dB of interference tolerance.
  bool soft_despread = true;
};

struct ZigbeeRxResult {
  bool detected = false;
  bool crc_ok = false;
  common::Bytes payload;
  std::size_t frame_start = 0;   // sample index of the first preamble chip
  std::size_t chip_errors = 0;   // despreading Hamming distance over the frame
  /// Why decoding stopped; kNone iff crc_ok (the FCS is the success gate).
  common::RxError error = common::RxError::kNoPreamble;

  bool ok() const { return error == common::RxError::kNone; }
};

ZigbeeRxResult zigbee_receive(std::span<const common::Cplx> samples,
                              const ZigbeeRxConfig& cfg = {});

}  // namespace sledzig::zigbee
