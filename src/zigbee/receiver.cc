#include "zigbee/receiver.h"

#include "common/dsp.h"
#include "common/rx_tally.h"

#include <cmath>

#include "zigbee/chips.h"
#include "zigbee/frame.h"
#include "zigbee/oqpsk.h"
#include "zigbee/transmitter.h"

namespace sledzig::zigbee {

namespace {

const common::CplxVec& preamble_reference() {
  static const common::CplxVec ref =
      modulate_octets(common::Bytes(kPreambleOctets, 0x00));
  return ref;
}

struct SyncResult {
  std::size_t offset;
  common::Cplx gain;
  double corr;
};

std::optional<SyncResult> synchronise(std::span<const common::Cplx> samples,
                                      const ZigbeeRxConfig& cfg) {
  const auto& ref = preamble_reference();
  if (samples.size() < ref.size()) return std::nullopt;
  const double ref_energy = [&] {
    double e = 0.0;
    for (const auto& s : ref) e += std::norm(s);
    return e;
  }();

  double best_corr = 0.0;
  std::size_t best_pos = 0;
  const std::size_t stride = std::max<std::size_t>(cfg.search_stride, 1);
  const std::size_t last = samples.size() - ref.size();

  const auto corr_at = [&](std::size_t t) {
    common::Cplx acc(0.0, 0.0);
    double e = 0.0;
    for (std::size_t i = 0; i < ref.size(); ++i) {
      acc += samples[t + i] * std::conj(ref[i]);
      e += std::norm(samples[t + i]);
    }
    const double denom = std::sqrt(std::max(e, 1e-30) * ref_energy);
    return std::abs(acc) / denom;
  };

  for (std::size_t t = 0; t <= last; t += stride) {
    const double c = corr_at(t);
    if (c > best_corr) {
      best_corr = c;
      best_pos = t;
    }
  }
  // Refine around the coarse peak.
  for (std::size_t t = (best_pos > stride ? best_pos - stride : 0);
       t <= std::min(best_pos + stride, last); ++t) {
    const double c = corr_at(t);
    if (c > best_corr) {
      best_corr = c;
      best_pos = t;
    }
  }
  if (best_corr < cfg.detection_threshold) return std::nullopt;

  common::Cplx acc(0.0, 0.0);
  for (std::size_t i = 0; i < ref.size(); ++i) {
    acc += samples[best_pos + i] * std::conj(ref[i]);
  }
  return SyncResult{best_pos, acc / ref_energy, best_corr};
}

const common::RxTally& rx_tally() {
  // lint: allow(static-state): cached metric handles, registered once
  static const common::RxTally tally("zigbee");
  return tally;
}

ZigbeeRxResult zigbee_receive_impl(std::span<const common::Cplx> raw_samples,
                                   const ZigbeeRxConfig& cfg) {
  ZigbeeRxResult result;
  // Non-finite samples would propagate through the FIR filter and the chip
  // correlators into meaningless comparisons; refuse them up front.
  for (const auto& s : raw_samples) {
    if (!std::isfinite(s.real()) || !std::isfinite(s.imag())) {
      result.error = common::RxError::kNanSamples;
      return result;
    }
  }
  // Channel-select filtering (see ZigbeeRxConfig).  The FIR group delay is
  // compensated when reporting frame_start.
  common::CplxVec filtered;
  std::span<const common::Cplx> samples = raw_samples;
  std::size_t group_delay = 0;
  if (cfg.channel_filter_cutoff_hz > 0.0 && cfg.channel_filter_taps >= 3) {
    const auto taps = common::fir_lowpass_taps(
        cfg.channel_filter_taps, cfg.channel_filter_cutoff_hz,
        kOqpskSampleRateHz);
    group_delay = (cfg.channel_filter_taps - 1) / 2;
    // Pad by the group delay so a frame ending at the buffer edge is not
    // truncated by the filter's shift.
    common::CplxVec padded(raw_samples.begin(), raw_samples.end());
    padded.resize(padded.size() + group_delay, common::Cplx(0.0, 0.0));
    filtered = common::fir_filter(padded, taps);
    samples = filtered;
  }
  const auto sync = synchronise(samples, cfg);
  if (!sync) return result;  // error stays kNoPreamble
  result.detected = true;
  result.frame_start =
      sync->offset >= group_delay ? sync->offset - group_delay : 0;

  // Phase/amplitude correction from the preamble estimate.  A vanishing
  // gain means the correlator locked onto nothing usable.
  const double mag = std::abs(sync->gain);
  if (mag < 1e-12) return result;
  const common::Cplx inv = std::conj(sync->gain) / (mag * mag);

  // Demodulate octet by octet: first the SFD + length (2 octets after the
  // preamble), then the PSDU.
  const auto demod_octets = [&](std::size_t octet_index,
                          std::size_t count) -> std::optional<common::Bytes> {
    // Each octet = 2 symbols = 64 chips = 640 samples.
    const std::size_t start =
        sync->offset + octet_index * 2 * kSamplesPerSymbol;
    const std::size_t need = count * 2 * kSamplesPerSymbol + kSamplesPerChip;
    if (start + need > samples.size()) return std::nullopt;
    common::CplxVec corrected(samples.begin() + start,
                              samples.begin() + start + need);
    for (auto& s : corrected) s *= inv;
    if (cfg.soft_despread) {
      const auto bits = oqpsk_despread_soft(corrected, count * 2);
      // Approximate chip-error metric: distance between the hard chip
      // decisions and the re-spread soft decisions.
      const auto hard =
          oqpsk_demodulate_chips(corrected, count * 2 * kChipsPerSymbol);
      const auto ideal = spread(bits);
      result.chip_errors += common::hamming_distance(hard, ideal);
      return common::bits_to_bytes(bits);
    }
    const auto chips = oqpsk_demodulate_chips(
        corrected, count * 2 * kChipsPerSymbol);
    const auto despread_result = despread(chips);
    result.chip_errors += despread_result.total_chip_errors;
    return common::bits_to_bytes(despread_result.bits);
  };

  // The all-zeros preamble is self-similar, so under partial interference
  // the correlator can lock a few symbols late (or early).  Scan for the
  // SFD around the nominal position instead of trusting it blindly.
  std::size_t sfd_octet = 0;
  bool sfd_found = false;
  for (std::size_t i = 0; i <= kPreambleOctets + 2; ++i) {
    const auto octet = demod_octets(i, 1);
    if (!octet) break;
    if ((*octet)[0] == kSfd) {
      sfd_octet = i;
      sfd_found = true;
      break;
    }
  }
  if (!sfd_found) {
    result.error = common::RxError::kNoSfd;
    return result;
  }

  const auto len_octet = demod_octets(sfd_octet + 1, 1);
  if (!len_octet) {
    result.error = common::RxError::kTruncatedPayload;
    return result;
  }
  const std::size_t psdu_len = (*len_octet)[0] & 0x7f;
  if (psdu_len < kFcsOctets) {
    result.error = common::RxError::kBadLength;
    return result;
  }

  const auto psdu = demod_octets(sfd_octet + 2, psdu_len);
  if (!psdu) {
    result.error = common::RxError::kTruncatedPayload;
    return result;
  }

  common::Bytes ppdu(kPreambleOctets, 0x00);
  ppdu.push_back(kSfd);
  ppdu.push_back(static_cast<std::uint8_t>(psdu_len));
  ppdu.insert(ppdu.end(), psdu->begin(), psdu->end());
  const auto payload = parse_ppdu(ppdu);
  if (payload) {
    result.crc_ok = true;
    result.payload = *payload;
    result.error = common::RxError::kNone;
  } else {
    result.error = common::RxError::kCrcFailed;
  }
  return result;
}

}  // namespace

ZigbeeRxResult zigbee_receive(std::span<const common::Cplx> raw_samples,
                              const ZigbeeRxConfig& cfg) {
  ZigbeeRxResult result = zigbee_receive_impl(raw_samples, cfg);
  // One counter bump per decode, keyed by outcome stage
  // (rx.zigbee.<error>, rx.zigbee.none for clean decodes).
  rx_tally().count(result.error);
  return result;
}

}  // namespace sledzig::zigbee
