#include "zigbee/frame.h"

#include <stdexcept>

namespace sledzig::zigbee {

std::uint16_t crc16_ccitt(std::span<const std::uint8_t> data) {
  std::uint16_t crc = 0x0000;
  for (std::uint8_t byte : data) {
    for (int i = 0; i < 8; ++i) {
      const std::uint16_t bit = static_cast<std::uint16_t>((byte >> i) & 1u);
      const std::uint16_t fb = (crc ^ bit) & 1u;
      crc >>= 1;
      if (fb) crc ^= 0x8408;  // reversed 0x1021
    }
  }
  return crc;
}

common::Bytes build_ppdu(const common::Bytes& payload) {
  if (payload.size() + kFcsOctets > kMaxPsduOctets) {
    throw std::invalid_argument("build_ppdu: payload too long");
  }
  common::Bytes ppdu;
  ppdu.reserve(kPreambleOctets + 2 + payload.size() + kFcsOctets);
  for (std::size_t i = 0; i < kPreambleOctets; ++i) ppdu.push_back(0x00);
  ppdu.push_back(kSfd);
  ppdu.push_back(static_cast<std::uint8_t>(payload.size() + kFcsOctets));
  ppdu.insert(ppdu.end(), payload.begin(), payload.end());
  const std::uint16_t fcs = crc16_ccitt(payload);
  ppdu.push_back(static_cast<std::uint8_t>(fcs & 0xff));
  ppdu.push_back(static_cast<std::uint8_t>(fcs >> 8));
  return ppdu;
}

std::optional<common::Bytes> parse_ppdu(const common::Bytes& octets) {
  if (octets.size() < kPreambleOctets + 2 + kFcsOctets) return std::nullopt;
  for (std::size_t i = 0; i < kPreambleOctets; ++i) {
    if (octets[i] != 0x00) return std::nullopt;
  }
  if (octets[kPreambleOctets] != kSfd) return std::nullopt;
  const std::size_t psdu_len = octets[kPreambleOctets + 1] & 0x7f;
  if (psdu_len < kFcsOctets) return std::nullopt;
  const std::size_t psdu_start = kPreambleOctets + 2;
  if (octets.size() < psdu_start + psdu_len) return std::nullopt;

  common::Bytes payload(octets.begin() + psdu_start,
                        octets.begin() + psdu_start + psdu_len - kFcsOctets);
  const std::uint16_t fcs = crc16_ccitt(payload);
  const std::uint16_t rx_fcs = static_cast<std::uint16_t>(
      octets[psdu_start + psdu_len - 2] |
      (static_cast<std::uint16_t>(octets[psdu_start + psdu_len - 1]) << 8));
  if (fcs != rx_fcs) return std::nullopt;
  return payload;
}

double frame_duration_us(std::size_t payload_octets) {
  const std::size_t total = kPreambleOctets + 2 + payload_octets + kFcsOctets;
  return static_cast<double>(total) * 32.0;  // 2 symbols / octet, 16 us each
}

}  // namespace sledzig::zigbee
