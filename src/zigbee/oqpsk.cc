#include "zigbee/oqpsk.h"

#include "zigbee/chips.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "common/units.h"

namespace sledzig::zigbee {

namespace {

/// Half-sine pulse sample i of the 2*Tc (= 2*kSamplesPerChip samples) pulse.
double pulse(std::size_t i) {
  return std::sin(std::numbers::pi * static_cast<double>(i) /
                  (2.0 * static_cast<double>(kSamplesPerChip)));
}

}  // namespace

common::CplxVec oqpsk_modulate(const common::Bits& chips) {
  if (chips.empty() || chips.size() % 2 != 0) {
    throw std::invalid_argument("oqpsk_modulate: need an even chip count");
  }
  const std::size_t total = chips.size() * kSamplesPerChip + kSamplesPerChip;
  std::vector<double> i_phase(total, 0.0), q_phase(total, 0.0);
  for (std::size_t k = 0; k < chips.size(); ++k) {
    const double a = chips[k] ? 1.0 : -1.0;
    auto& phase = (k % 2 == 0) ? i_phase : q_phase;
    const std::size_t start = k * kSamplesPerChip;
    for (std::size_t i = 0; i < 2 * kSamplesPerChip; ++i) {
      if (start + i < total) phase[start + i] += a * pulse(i);
    }
  }
  common::CplxVec out(total);
  // 1/sqrt(2) so that |I|^2 + |Q|^2 -> unit mean power for the MSK-like
  // constant envelope of sqrt(2) amplitude... the half-sine pair gives
  // I^2 + Q^2 = 1, so no extra scale is required.
  for (std::size_t i = 0; i < total; ++i) {
    out[i] = common::Cplx(i_phase[i], q_phase[i]);
  }
  return out;
}

common::Bits oqpsk_demodulate_chips(std::span<const common::Cplx> samples,
                                    std::size_t num_chips) {
  common::Bits chips(num_chips);
  for (std::size_t k = 0; k < num_chips; ++k) {
    const std::size_t start = k * kSamplesPerChip;
    double acc = 0.0;
    for (std::size_t i = 0; i < 2 * kSamplesPerChip; ++i) {
      if (start + i >= samples.size()) break;
      const double w = pulse(i);
      const double v = (k % 2 == 0) ? samples[start + i].real()
                                    : samples[start + i].imag();
      acc += w * v;
    }
    chips[k] = acc >= 0.0 ? 1 : 0;
  }
  return chips;
}

common::Bits oqpsk_despread_soft(std::span<const common::Cplx> samples,
                                 std::size_t num_symbols) {
  // Reference waveforms for the 16 symbols, built once.  Each covers the
  // 320-sample symbol window plus the 10-sample Q-phase tail.
  static const auto kRefs = [] {
    std::array<common::CplxVec, kNumSymbols> refs;
    const auto& table = chip_table();
    for (std::size_t s = 0; s < kNumSymbols; ++s) {
      const common::Bits chips(table[s].begin(), table[s].end());
      refs[s] = oqpsk_modulate(chips);
    }
    return refs;
  }();

  common::Bits bits;
  bits.reserve(num_symbols * kBitsPerSymbol);
  for (std::size_t sym = 0; sym < num_symbols; ++sym) {
    const std::size_t start = sym * kSamplesPerSymbol;
    std::size_t best = 0;
    double best_metric = -1e300;
    for (std::size_t s = 0; s < kNumSymbols; ++s) {
      const auto& ref = kRefs[s];
      double metric = 0.0;
      for (std::size_t i = 0; i < ref.size(); ++i) {
        const std::size_t t = start + i;
        if (t >= samples.size()) break;
        // Coherent correlation: input is phase-corrected upstream.
        metric += samples[t].real() * ref[i].real() +
                  samples[t].imag() * ref[i].imag();
      }
      if (metric > best_metric) {
        best_metric = metric;
        best = s;
      }
    }
    for (std::size_t b = 0; b < kBitsPerSymbol; ++b) {
      bits.push_back(static_cast<common::Bit>((best >> b) & 1u));
    }
  }
  return bits;
}

double oqpsk_correlate(std::span<const common::Cplx> samples,
                       const common::Bits& chips) {
  const auto ref = oqpsk_modulate(chips);
  const std::size_t n = std::min(samples.size(), ref.size());
  if (n == 0) return 0.0;
  common::Cplx acc(0.0, 0.0);
  double ex = 0.0, er = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += samples[i] * std::conj(ref[i]);
    ex += std::norm(samples[i]);
    er += std::norm(ref[i]);
  }
  if (ex <= 0.0 || er <= 0.0) return 0.0;
  return std::abs(acc) / std::sqrt(ex * er);
}

}  // namespace sledzig::zigbee
