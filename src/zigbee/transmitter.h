// ZigBee transmitter: payload -> PPDU octets -> DSSS chips -> O-QPSK
// waveform at 20 MS/s, unit mean power (the channel model applies the
// CC2420 gain).
#pragma once

#include "common/bits.h"
#include "common/fft.h"

namespace sledzig::zigbee {

struct ZigbeeTxResult {
  common::CplxVec samples;
  common::Bytes ppdu;        // octets on the air
  std::size_t num_symbols = 0;
};

ZigbeeTxResult zigbee_transmit(const common::Bytes& payload);

/// Waveform for arbitrary raw octets (no framing) — used for CCA /
/// interference probes in tests.
common::CplxVec modulate_octets(const common::Bytes& octets);

}  // namespace sledzig::zigbee
