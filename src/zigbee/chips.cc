#include "zigbee/chips.h"

#include <limits>
#include <stdexcept>

namespace sledzig::zigbee {

namespace {

constexpr const char* kSymbol0 = "11011001110000110101001000101110";

std::array<ChipSeq, kNumSymbols> build_table() {
  std::array<ChipSeq, kNumSymbols> table{};
  for (std::size_t i = 0; i < kChipsPerSymbol; ++i) {
    table[0][i] = static_cast<common::Bit>(kSymbol0[i] - '0');
  }
  // Symbols 1..7: cyclic right rotation by 4 chips per step.
  for (std::size_t s = 1; s < 8; ++s) {
    for (std::size_t i = 0; i < kChipsPerSymbol; ++i) {
      table[s][i] = table[s - 1][(i + kChipsPerSymbol - 4) % kChipsPerSymbol];
    }
  }
  // Symbols 8..15: odd-indexed chips inverted (I/Q conjugation).
  for (std::size_t s = 8; s < kNumSymbols; ++s) {
    for (std::size_t i = 0; i < kChipsPerSymbol; ++i) {
      table[s][i] = (i % 2 == 1) ? static_cast<common::Bit>(table[s - 8][i] ^ 1u)
                                 : table[s - 8][i];
    }
  }
  return table;
}

}  // namespace

const std::array<ChipSeq, kNumSymbols>& chip_table() {
  static const auto table = build_table();
  return table;
}

common::Bits spread(const common::Bits& bits) {
  if (bits.size() % kBitsPerSymbol != 0) {
    throw std::invalid_argument("spread: bit count not a multiple of 4");
  }
  const auto& table = chip_table();
  common::Bits chips;
  chips.reserve(bits.size() / kBitsPerSymbol * kChipsPerSymbol);
  for (std::size_t i = 0; i < bits.size(); i += kBitsPerSymbol) {
    std::size_t symbol = 0;
    for (std::size_t b = 0; b < kBitsPerSymbol; ++b) {
      symbol |= static_cast<std::size_t>(bits[i + b] & 1u) << b;
    }
    const auto& seq = table[symbol];
    chips.insert(chips.end(), seq.begin(), seq.end());
  }
  return chips;
}

DespreadResult despread(const common::Bits& chips) {
  if (chips.size() % kChipsPerSymbol != 0) {
    throw std::invalid_argument("despread: chip count not a multiple of 32");
  }
  const auto& table = chip_table();
  DespreadResult result;
  result.bits.reserve(chips.size() / kChipsPerSymbol * kBitsPerSymbol);
  for (std::size_t i = 0; i < chips.size(); i += kChipsPerSymbol) {
    std::size_t best_symbol = 0;
    std::size_t best_dist = std::numeric_limits<std::size_t>::max();
    for (std::size_t s = 0; s < kNumSymbols; ++s) {
      std::size_t dist = 0;
      for (std::size_t c = 0; c < kChipsPerSymbol; ++c) {
        dist += static_cast<std::size_t>((chips[i + c] ^ table[s][c]) & 1u);
      }
      if (dist < best_dist) {
        best_dist = dist;
        best_symbol = s;
      }
    }
    result.total_chip_errors += best_dist;
    for (std::size_t b = 0; b < kBitsPerSymbol; ++b) {
      result.bits.push_back(static_cast<common::Bit>((best_symbol >> b) & 1u));
    }
  }
  return result;
}

}  // namespace sledzig::zigbee
