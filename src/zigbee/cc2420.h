// CC2420 (TelosB radio) behavioural model: transmit power vs gain setting,
// RSSI averaging, CCA threshold and 802.15.4 MAC timing constants.  These
// are the parameters the paper's TelosB nodes expose.
#pragma once

#include <cstddef>

#include "common/units.h"

namespace sledzig::zigbee {

/// Maximum transmit power (gain 31) in dBm.
inline constexpr common::Dbm kMaxTxPowerDbm{0.0};

/// CC2420 default CCA threshold (energy detect) in dBm, measured over the
/// 2 MHz channel.
inline constexpr common::Dbm kCcaThresholdDbm{-77.0};

/// RSSI / CCA averaging window: 8 symbol periods = 128 us (802.15.4 6.9.9).
inline constexpr double kCcaWindowUs = 128.0;

/// 802.15.4 unslotted CSMA/CA timing.
inline constexpr double kBackoffPeriodUs = 320.0;  // aUnitBackoffPeriod
inline constexpr double kTurnaroundUs = 192.0;     // aTurnaroundTime
inline constexpr unsigned kMacMinBe = 3;
inline constexpr unsigned kMacMaxBe = 5;
inline constexpr unsigned kMaxCsmaBackoffs = 4;

/// Transmit power in dBm for a CC2420 PA_LEVEL-style gain setting 0..31,
/// linearly interpolated between the datasheet's calibration points
/// (31 -> 0 dBm, 27 -> -1, 23 -> -3, 19 -> -5, 15 -> -7, 11 -> -10,
///  7 -> -15, 3 -> -25).
common::Dbm tx_power_dbm(unsigned gain);

/// ZigBee channel centre frequency in Hz (channels 11..26).
double channel_frequency_hz(unsigned channel);

}  // namespace sledzig::zigbee
