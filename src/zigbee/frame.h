// 802.15.4 framing: PPDU = preamble (4 zero octets), SFD (0xA7), 7-bit frame
// length, PSDU.  The MPDU carries a 16-bit FCS (CRC-16-CCITT, as computed by
// the CC2420 hardware).
#pragma once

#include <cstdint>
#include <optional>

#include "common/bits.h"

namespace sledzig::zigbee {

inline constexpr std::size_t kPreambleOctets = 4;  // eight '0' symbols, 128 us
inline constexpr std::uint8_t kSfd = 0xa7;
inline constexpr std::size_t kMaxPsduOctets = 127;
inline constexpr std::size_t kFcsOctets = 2;
inline constexpr double kPreambleDurationUs = 128.0;

/// ITU-T CRC-16 used for the FCS (poly x^16 + x^12 + x^5 + 1, init 0,
/// LSB-first as the radio serialises it).
std::uint16_t crc16_ccitt(std::span<const std::uint8_t> data);

/// Builds the PPDU octets: preamble | SFD | length | payload | FCS.
common::Bytes build_ppdu(const common::Bytes& payload);

/// Parses a PPDU back into the MAC payload; nullopt when the SFD, length or
/// FCS check fails.  `octets` must start at the first preamble octet.
std::optional<common::Bytes> parse_ppdu(const common::Bytes& octets);

/// On-air duration of a payload-octet MPDU including preamble/SFD/PHR,
/// at 250 kb/s (32 us per octet).
double frame_duration_us(std::size_t payload_octets);

}  // namespace sledzig::zigbee
