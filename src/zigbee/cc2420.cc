#include "zigbee/cc2420.h"

#include <array>
#include <stdexcept>

namespace sledzig::zigbee {

common::Dbm tx_power_dbm(unsigned gain) {
  if (gain > 31) throw std::invalid_argument("tx_power_dbm: gain 0..31");
  // Datasheet calibration points (PA_LEVEL, dBm).
  constexpr std::array<std::pair<unsigned, double>, 8> kPoints = {{
      {3, -25.0}, {7, -15.0}, {11, -10.0}, {15, -7.0},
      {19, -5.0}, {23, -3.0}, {27, -1.0}, {31, 0.0},
  }};
  if (gain <= kPoints.front().first) {
    // Extrapolate below the lowest calibration point (very weak output).
    const double slope = -10.0 / 3.0;  // dB per step toward zero
    return common::Dbm{kPoints.front().second +
                       slope *
                           static_cast<double>(kPoints.front().first - gain)};
  }
  for (std::size_t i = 1; i < kPoints.size(); ++i) {
    if (gain <= kPoints[i].first) {
      const auto [g0, p0] = kPoints[i - 1];
      const auto [g1, p1] = kPoints[i];
      const double frac = static_cast<double>(gain - g0) /
                          static_cast<double>(g1 - g0);
      return common::Dbm{p0 + frac * (p1 - p0)};
    }
  }
  return common::Dbm{0.0};
}

double channel_frequency_hz(unsigned channel) {
  if (channel < 11 || channel > 26) {
    throw std::invalid_argument("channel_frequency_hz: channel 11..26");
  }
  return (2405.0 + 5.0 * static_cast<double>(channel - 11)) * 1e6;
}

}  // namespace sledzig::zigbee
