#include "zigbee/transmitter.h"

#include "zigbee/chips.h"
#include "zigbee/frame.h"
#include "zigbee/oqpsk.h"

namespace sledzig::zigbee {

common::CplxVec modulate_octets(const common::Bytes& octets) {
  const auto bits = common::bytes_to_bits(octets);
  const auto chips = spread(bits);
  return oqpsk_modulate(chips);
}

ZigbeeTxResult zigbee_transmit(const common::Bytes& payload) {
  ZigbeeTxResult result;
  result.ppdu = build_ppdu(payload);
  result.num_symbols = result.ppdu.size() * 2;
  result.samples = modulate_octets(result.ppdu);
  return result;
}

}  // namespace sledzig::zigbee
