// In-band power offsets of a WiFi transmission inside one ZigBee channel,
// measured on the sample-domain PHY (not assumed): a packet is synthesised
// through the full transmit chain and its PSD integrated over the 2 MHz
// window.  These offsets bridge the bit-exact PHY into the analytic link
// budget the MAC simulation uses.
#pragma once

#include "common/units.h"
#include "sledzig/significant_bits.h"

namespace sledzig::coex {

struct InbandOffsets {
  /// Payload in-band power relative to the total power of a normal payload
  /// (negative).
  common::Db payload_offset_db{};
  /// Preamble in-band power relative to the same reference (negative).
  /// Identical for normal and SledZig packets — the preamble is untouched.
  common::Db preamble_offset_db{};
};

/// Measures (and caches) the offsets for one configuration.  `sledzig`
/// selects a SledZig-encoded payload vs a random normal payload;
/// `forced_subcarriers` follows SledzigConfig semantics (0 = paper default).
InbandOffsets measure_inband_offsets(const core::SledzigConfig& cfg,
                                     bool sledzig);

}  // namespace sledzig::coex
