#include "coex/inband.h"

#include <map>
#include <mutex>
#include <tuple>

#include "channel/medium.h"
#include "common/dsp.h"
#include "common/rng.h"
#include "common/units.h"
#include "obs/metrics.h"
#include "sledzig/encoder.h"
#include "wifi/phy_params.h"
#include "wifi/preamble.h"
#include "wifi/transmitter.h"

namespace sledzig::coex {

namespace {

/// Observes the per-subcarrier payload power inside the protected +/-1 MHz
/// window into a scheme-keyed histogram.  A 64-point Welch PSD puts one bin
/// per OFDM subcarrier (20 MHz / 64 = 312.5 kHz), so the histogram shape is
/// the paper's Fig. 4 power-suppression picture: with SledZig on, the bins
/// under the ZigBee channel collapse toward the noise bound.  Observational
/// only; runs once per memoised config, never on a result path.
void observe_subcarrier_power(std::span<const common::Cplx> payload_samples,
                              common::Hz center_offset_hz, bool sledzig) {
  constexpr double kDbmBounds[] = {-80, -75, -70, -65, -60, -55, -50, -45,
                                   -40, -35, -30, -25, -20, -15, -10, -5, 0};
  auto hist = obs::Registry::global().histogram(
      sledzig ? "coex.inband.subcarrier_dbm.sledzig"
              : "coex.inband.subcarrier_dbm.normal",
      kDbmBounds);
  const auto psd =
      common::welch_psd(payload_samples, wifi::kSampleRateHz, 64);
  for (std::size_t b = 0; b < psd.bins.size(); ++b) {
    const double fb = psd.bin_frequency(b);
    if (fb < center_offset_hz.value() - 1e6 ||
        fb > center_offset_hz.value() + 1e6) {
      continue;
    }
    // Zero-power bins map to the -inf sentinel, which lands in the lowest
    // bucket rather than poisoning the histogram with NaN.
    hist.observe(common::mw_to_dbm(psd.bins[b]));
  }
}

InbandOffsets measure_uncached(const core::SledzigConfig& cfg, bool sledzig) {
  common::Rng rng(0xc0ffee);
  const auto payload = rng.bytes(600);

  wifi::WifiTxConfig tx;
  tx.modulation = cfg.modulation;
  tx.rate = cfg.rate;
  tx.scrambler_seed = cfg.scrambler_seed;
  tx.include_service_field = cfg.include_service_field;

  common::Bytes psdu = payload;
  if (sledzig) {
    psdu = core::sledzig_encode(payload, cfg).transmit_psdu;
  }
  const auto packet = wifi::wifi_transmit(psdu, tx);

  // Separate the payload samples (after preamble + SIGNAL) from the
  // preamble.
  const std::size_t payload_start = wifi::kPreambleLen + wifi::kSymbolLen;
  const std::span<const common::Cplx> samples(packet.samples);
  const auto payload_samples = samples.subspan(payload_start);

  const double f = core::channel_center_offset_hz(cfg.channel);
  observe_subcarrier_power(payload_samples, common::Hz{f}, sledzig);
  // Reference: total power of a *normal* payload at the same transmit
  // scale.  Measured once per modulation/rate from a random payload.
  const auto normal = wifi::wifi_transmit(rng.bytes(600), tx);
  const double reference_dbm = channel::total_power_dbm(
      std::span<const common::Cplx>(normal.samples).subspan(payload_start));

  InbandOffsets offsets;
  offsets.payload_offset_db =
      common::Db{channel::rssi_2mhz_dbm(payload_samples, f) - reference_dbm};
  offsets.preamble_offset_db = common::Db{
      channel::rssi_2mhz_dbm(samples.first(wifi::kPreambleLen), f) -
      reference_dbm};
  return offsets;
}

}  // namespace

InbandOffsets measure_inband_offsets(const core::SledzigConfig& cfg,
                                     bool sledzig) {
  using Key = std::tuple<int, int, int, unsigned, std::size_t, bool>;
  // lint: allow(static-state): memo for a pure function; guarded by mutex
  static std::mutex mutex;
  // lint: allow(static-state): memo for a pure function; guarded by mutex
  static std::map<Key, InbandOffsets> cache;
  unsigned extra_mask = 0;
  for (core::OverlapChannel ch : cfg.extra_channels) {
    extra_mask |= 1u << static_cast<unsigned>(ch);
  }
  const Key key{static_cast<int>(cfg.modulation), static_cast<int>(cfg.rate),
                static_cast<int>(cfg.channel), extra_mask, cfg.forced_count(),
                sledzig};
  {
    std::scoped_lock lock(mutex);
    const auto it = cache.find(key);
    if (it != cache.end()) return it->second;
  }
  // Miss: run the full transmit/measure pipeline with no lock held, so
  // parallel sweeps hitting distinct configs do not serialize behind one
  // another.  measure_uncached is a pure function of (cfg, sledzig); if two
  // threads race on the same key they compute identical values and
  // emplace keeps the first — determinism is unaffected, only a little
  // duplicate work on a cold cache.
  const InbandOffsets computed = measure_uncached(cfg, sledzig);
  std::scoped_lock lock(mutex);
  return cache.emplace(key, computed).first->second;
}

}  // namespace sledzig::coex
