#include "coex/experiment.h"

#include <cmath>

#include "common/units.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "sledzig/encoder.h"
#include "wifi/preamble.h"
#include "wifi/transmitter.h"
#include "zigbee/cc2420.h"
#include "zigbee/transmitter.h"

namespace sledzig::coex {

mac::ZigbeeLinkBudget scenario_link_budget(const Scenario& s) {
  const auto zigbee_link = channel::zigbee_link();

  mac::ZigbeeLinkBudget budget;
  budget.signal_dbm = zigbee_link.received_power_dbm(
      zigbee::tx_power_dbm(s.zigbee_gain), s.d_z_m);
  budget.noise_dbm = channel::kNoiseFloor2MhzDbm;
  budget.cca_threshold_dbm = channel::kZigbeeCcaThresholdDbm;

  const auto inband =
      wifi_inband_power(s.sledzig, s.scheme, s.wifi_gain, s.d_wz_m);
  budget.wifi_payload_inband_dbm = inband.payload_dbm;
  budget.wifi_preamble_inband_dbm = inband.preamble_dbm;
  return budget;
}

WifiInbandPower wifi_inband_power(const core::SledzigConfig& cfg,
                                  Scheme scheme, double wifi_gain,
                                  double distance_m) {
  const common::Dbm wifi_total = channel::wifi_link().received_power_dbm(
      channel::wifi_tx_power_dbm(wifi_gain), distance_m);
  const auto offsets =
      measure_inband_offsets(cfg, scheme == Scheme::kSledzig);
  return {wifi_total + offsets.payload_offset_db,
          wifi_total + offsets.preamble_offset_db};
}

mac::ZigbeeSimResult run_throughput_experiment(const Scenario& s) {
  SLEDZIG_PROF_SCOPE("coex.run_throughput_experiment");
  common::Rng rng(s.seed);
  mac::WifiMacParams wifi_mac = s.wifi_mac;
  wifi_mac.duty_ratio = s.wifi_duty_ratio;
  const mac::WifiTimeline timeline(wifi_mac, s.duration_s * 1e6, rng);

  auto budget = scenario_link_budget(s);
  // Lognormal shadowing jitter per run (the paper's 1-3 dB RSSI variation);
  // the WiFi payload and preamble share one path, so one jitter draw.
  budget.signal_dbm +=
      common::Db{rng.gaussian(channel::kShadowingSigmaDb.value())};
  // No sample domain here: fold the impairment chain into the link budget
  // as its first-order SNR penalty on the ZigBee signal.
  budget.signal_dbm -= common::Db{s.impairment.snr_penalty_db()};
  const common::Db wifi_jitter{
      rng.gaussian(channel::kShadowingSigmaDb.value())};
  budget.wifi_payload_inband_dbm += wifi_jitter;
  budget.wifi_preamble_inband_dbm += wifi_jitter;

  return mac::simulate_zigbee_link(timeline, s.zigbee_mac, budget,
                                   s.error_model, rng);
}

namespace {

/// Measured-RSSI distribution histograms, one per measurement chain.  The
/// handles are resolved once; each measure_* call observes a single value.
/// Observational only — nothing reads these back into results.
obs::Histogram rssi_histogram(const char* name) {
  constexpr double kDbmBounds[] = {-100, -95, -90, -85, -80, -75, -70, -65,
                                   -60,  -55, -50, -45, -40, -35, -30};
  return obs::Registry::global().histogram(name, kDbmBounds);
}

/// Emits `samples` at received power `power_dbm`, centred `freq_offset_hz`
/// from the receiver, over AWGN and the given impairment chain; returns the
/// receiver baseband.
common::CplxVec through_channel(const common::CplxVec& samples,
                                common::Dbm power_dbm,
                                common::Hz freq_offset_hz, common::Rng& rng,
                                const channel::ImpairmentConfig& impairment = {},
                                std::uint64_t impairment_seed = 0) {
  channel::Emission e{&samples, power_dbm.value(), freq_offset_hz.value(), 0,
                      &impairment, impairment_seed};
  return channel::mix_at_receiver(std::vector<channel::Emission>{e},
                                  samples.size(), rng);
}

}  // namespace

double measure_wifi_rssi_at_zigbee(const core::SledzigConfig& cfg,
                                   Scheme scheme, double wifi_gain,
                                   double distance_m, std::uint64_t seed,
                                   std::size_t forced_subcarriers,
                                   const channel::ImpairmentConfig& impairment) {
  SLEDZIG_PROF_SCOPE("coex.measure_wifi_rssi_at_zigbee");
  common::Rng rng(seed);
  core::SledzigConfig sz = cfg;
  if (forced_subcarriers != 0) sz.forced_subcarriers = forced_subcarriers;

  wifi::WifiTxConfig tx;
  tx.modulation = sz.modulation;
  tx.rate = sz.rate;
  tx.scrambler_seed = sz.scrambler_seed;

  const auto payload = rng.bytes(600);
  common::Bytes psdu = payload;
  if (scheme == Scheme::kSledzig) {
    psdu = core::sledzig_encode(payload, sz).transmit_psdu;
  }
  const auto packet = wifi::wifi_transmit(psdu, tx);

  const common::Dbm rx_power =
      channel::wifi_link().received_power_dbm(
          channel::wifi_tx_power_dbm(wifi_gain), distance_m) +
      common::Db{rng.gaussian(channel::kShadowingSigmaDb.value())};
  const auto rx = through_channel(packet.samples, rx_power, common::Hz{0.0},
                                  rng, impairment, seed);

  // The CC2420 averages RSSI over the packet payload; skip preamble+SIGNAL.
  const std::size_t payload_start = wifi::kPreambleLen + wifi::kSymbolLen;
  const double rssi = channel::rssi_2mhz_dbm(
      std::span<const common::Cplx>(rx).subspan(payload_start),
      core::channel_center_offset_hz(sz.channel));
  rssi_histogram("coex.rssi.wifi_at_zigbee_dbm").observe(rssi);
  return rssi;
}

double measure_zigbee_rssi(unsigned zigbee_gain, double distance_m,
                           std::uint64_t seed,
                           const channel::ImpairmentConfig& impairment) {
  common::Rng rng(seed);
  const auto tx = zigbee::zigbee_transmit(rng.bytes(60));
  const common::Dbm rx_power =
      channel::zigbee_link().received_power_dbm(
          zigbee::tx_power_dbm(zigbee_gain), distance_m) +
      common::Db{rng.gaussian(channel::kShadowingSigmaDb.value())};
  const auto rx = through_channel(tx.samples, rx_power, common::Hz{0.0}, rng,
                                  impairment, seed);
  const double rssi = channel::rssi_2mhz_dbm(rx, 0.0);
  rssi_histogram("coex.rssi.zigbee_dbm").observe(rssi);
  return rssi;
}

WifiRxRssi measure_rssi_at_wifi_rx(double wifi_gain, unsigned zigbee_gain,
                                   double distance_m, std::uint64_t seed,
                                   const channel::ImpairmentConfig& impairment) {
  common::Rng rng(seed);
  WifiRxRssi result{};
  {
    wifi::WifiTxConfig tx;
    tx.modulation = wifi::Modulation::kQam64;
    tx.rate = wifi::CodingRate::kR23;
    const auto packet = wifi::wifi_transmit(rng.bytes(400), tx);
    const common::Dbm rx_power =
        channel::wifi_link().received_power_dbm(
            channel::wifi_tx_power_dbm(wifi_gain), distance_m) +
        common::Db{rng.gaussian(channel::kShadowingSigmaDb.value())};
    const auto rx = through_channel(packet.samples, rx_power, common::Hz{0.0},
                                    rng, impairment, seed);
    result.wifi_dbm = common::Dbm{channel::rssi_2mhz_slice_dbm(rx)};
  }
  {
    const auto tx = zigbee::zigbee_transmit(rng.bytes(60));
    const common::Dbm rx_power =
        channel::zigbee_link().received_power_dbm(
            zigbee::tx_power_dbm(zigbee_gain), distance_m) +
        common::Db{rng.gaussian(channel::kShadowingSigmaDb.value())};
    // The ZigBee device sits on channel 26 (+8 MHz from the WiFi centre in
    // the paper's setup); the USRP's wideband RSSI sees it wherever it is.
    // lint: allow(seed-derivation): legacy `seed + 1` decorrelates the two
    // impairment chains of this figure; rerouting it through derive_seed
    // would shift every Fig 17 digest for zero behavioural gain.
    const auto rx = through_channel(tx.samples, rx_power, common::Hz{8e6}, rng,
                                    impairment, seed + 1);
    result.zigbee_dbm = common::Dbm{channel::rssi_2mhz_slice_dbm(rx)};
  }
  return result;
}

double wifi_throughput_mbps(const core::SledzigConfig& cfg, Scheme scheme,
                            double duty_ratio) {
  // PHY rate: N_DBPS per 4 us symbol.
  const double dbps = static_cast<double>(
      wifi::data_bits_per_symbol(cfg.modulation, cfg.rate));
  double rate_mbps = dbps / wifi::kSymbolDurationUs;
  if (scheme == Scheme::kSledzig) {
    rate_mbps *= 1.0 - core::throughput_loss(cfg);
  }
  return rate_mbps * duty_ratio;
}

}  // namespace sledzig::coex
