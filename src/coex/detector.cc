#include "coex/detector.h"

#include <algorithm>

#include "channel/medium.h"
#include "common/units.h"
#include "zigbee/chips.h"
#include "zigbee/frame.h"
#include "zigbee/oqpsk.h"
#include "zigbee/transmitter.h"

namespace sledzig::coex {

namespace {

/// Reference waveform of the 802.15.4 preamble (two '0' symbols are enough
/// for a correlation fingerprint: 64 chips, 32 us).
const common::CplxVec& preamble_fingerprint() {
  static const common::CplxVec ref = [] {
    common::Bits bits(8, 0);  // two '0000' symbols
    return zigbee::oqpsk_modulate(zigbee::spread(bits));
  }();
  return ref;
}

/// Max normalised correlation of the fingerprint over the (downconverted)
/// channel samples, searched at 2-sample steps.
double max_fingerprint_correlation(const common::CplxVec& baseband) {
  const auto& ref = preamble_fingerprint();
  if (baseband.size() < ref.size()) return 0.0;
  const double ref_energy = common::energy(ref);
  double best = 0.0;
  for (std::size_t t = 0; t + ref.size() <= baseband.size(); t += 2) {
    common::Cplx acc(0.0, 0.0);
    double e = 0.0;
    for (std::size_t i = 0; i < ref.size(); ++i) {
      acc += baseband[t + i] * std::conj(ref[i]);
      e += std::norm(baseband[t + i]);
    }
    if (e <= 0.0) continue;
    best = std::max(best, std::abs(acc) / std::sqrt(e * ref_energy));
  }
  return best;
}

}  // namespace

std::vector<ZigbeeDetection> detect_zigbee_activity(
    std::span<const common::Cplx> samples, const DetectorConfig& cfg) {
  std::vector<ZigbeeDetection> detections;
  for (core::OverlapChannel ch : core::kAllOverlapChannels) {
    const double offset = core::channel_center_offset_hz(ch);
    const double power = channel::rssi_2mhz_dbm(samples, offset);
    if (power < cfg.energy_threshold_dbm) continue;
    // Downconvert the window to baseband and correlate against the
    // 802.15.4 preamble shape.
    const auto baseband =
        common::frequency_shift(samples, -offset, channel::kMediumSampleRateHz);
    const double corr = max_fingerprint_correlation(baseband);
    if (corr < cfg.correlation_threshold) continue;
    detections.push_back(ZigbeeDetection{ch, power, corr});
  }
  std::sort(detections.begin(), detections.end(),
            [](const auto& a, const auto& b) {
              return a.band_power_dbm > b.band_power_dbm;
            });
  return detections;
}

bool AdaptiveController::observe(
    std::span<const ZigbeeDetection> detections) {
  std::array<bool, 4> seen{};
  std::array<double, 4> power{};
  for (const auto& d : detections) {
    const auto i = static_cast<std::size_t>(d.channel);
    if (!seen[i] || d.band_power_dbm > power[i]) power[i] = d.band_power_dbm;
    seen[i] = true;
  }
  for (std::size_t i = 0; i < state_.size(); ++i) {
    auto& s = state_[i];
    if (seen[i]) {
      s.idle_scans = 0;
      s.strength_dbm = power[i];
      if (s.active_scans < params_.on_threshold) ++s.active_scans;
      if (s.active_scans >= params_.on_threshold) s.protected_now = true;
    } else {
      s.active_scans = 0;
      if (s.protected_now && ++s.idle_scans >= params_.off_threshold) {
        s.protected_now = false;
        s.idle_scans = 0;
        s.strength_dbm = -300.0;
      }
    }
  }
  // Rebuild unconditionally: a strength change can reorder (and, at the
  // max_channels boundary, re-select) the list even when no channel's
  // protected_now flag flipped this scan.
  const std::vector<core::OverlapChannel> before = std::move(protected_);
  rebuild_protected_list();
  return protected_ != before;
}

void AdaptiveController::rebuild_protected_list() {
  protected_.clear();
  for (std::size_t i = 0; i < state_.size(); ++i) {
    if (state_[i].protected_now) {
      protected_.push_back(static_cast<core::OverlapChannel>(i));
    }
  }
  std::sort(protected_.begin(), protected_.end(),
            [this](core::OverlapChannel a, core::OverlapChannel b) {
              const auto& sa = state_[static_cast<std::size_t>(a)];
              const auto& sb = state_[static_cast<std::size_t>(b)];
              if (sa.strength_dbm != sb.strength_dbm) {
                return sa.strength_dbm > sb.strength_dbm;
              }
              return a < b;
            });
  if (protected_.size() > params_.max_channels) {
    protected_.resize(params_.max_channels);
  }
}

std::optional<core::SledzigConfig> AdaptiveController::config(
    wifi::Modulation m, wifi::CodingRate r) const {
  if (protected_.empty()) return std::nullopt;
  core::SledzigConfig cfg;
  cfg.modulation = m;
  cfg.rate = r;
  cfg.channel = protected_.front();
  cfg.extra_channels.assign(protected_.begin() + 1, protected_.end());
  return cfg;
}

}  // namespace sledzig::coex
