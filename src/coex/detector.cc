#include "coex/detector.h"

#include <algorithm>

#include "channel/medium.h"
#include "common/units.h"
#include "zigbee/chips.h"
#include "zigbee/frame.h"
#include "zigbee/oqpsk.h"
#include "zigbee/transmitter.h"

namespace sledzig::coex {

namespace {

/// Reference waveform of the 802.15.4 preamble (two '0' symbols are enough
/// for a correlation fingerprint: 64 chips, 32 us).
const common::CplxVec& preamble_fingerprint() {
  static const common::CplxVec ref = [] {
    common::Bits bits(8, 0);  // two '0000' symbols
    return zigbee::oqpsk_modulate(zigbee::spread(bits));
  }();
  return ref;
}

/// Max normalised correlation of the fingerprint over the (downconverted)
/// channel samples, searched at 2-sample steps.
double max_fingerprint_correlation(const common::CplxVec& baseband) {
  const auto& ref = preamble_fingerprint();
  if (baseband.size() < ref.size()) return 0.0;
  const double ref_energy = common::energy(ref);
  double best = 0.0;
  for (std::size_t t = 0; t + ref.size() <= baseband.size(); t += 2) {
    common::Cplx acc(0.0, 0.0);
    double e = 0.0;
    for (std::size_t i = 0; i < ref.size(); ++i) {
      acc += baseband[t + i] * std::conj(ref[i]);
      e += std::norm(baseband[t + i]);
    }
    if (e <= 0.0) continue;
    best = std::max(best, std::abs(acc) / std::sqrt(e * ref_energy));
  }
  return best;
}

}  // namespace

std::vector<ZigbeeDetection> detect_zigbee_activity(
    std::span<const common::Cplx> samples, const DetectorConfig& cfg) {
  std::vector<ZigbeeDetection> detections;
  for (core::OverlapChannel ch : core::kAllOverlapChannels) {
    const double offset = core::channel_center_offset_hz(ch);
    const double power = channel::rssi_2mhz_dbm(samples, offset);
    if (power < cfg.energy_threshold_dbm) continue;
    // Downconvert the window to baseband and correlate against the
    // 802.15.4 preamble shape.
    const auto baseband =
        common::frequency_shift(samples, -offset, channel::kMediumSampleRateHz);
    const double corr = max_fingerprint_correlation(baseband);
    if (corr < cfg.correlation_threshold) continue;
    detections.push_back(ZigbeeDetection{ch, power, corr});
  }
  std::sort(detections.begin(), detections.end(),
            [](const auto& a, const auto& b) {
              return a.band_power_dbm > b.band_power_dbm;
            });
  return detections;
}

bool AdaptiveController::observe(
    std::span<const ZigbeeDetection> detections) {
  std::array<bool, 4> seen{};
  for (const auto& d : detections) {
    seen[static_cast<std::size_t>(d.channel)] = true;
  }
  bool changed = false;
  for (std::size_t i = 0; i < state_.size(); ++i) {
    auto& s = state_[i];
    if (seen[i]) {
      s.idle_scans = 0;
      if (s.active_scans < params_.on_threshold) ++s.active_scans;
      if (!s.protected_now && s.active_scans >= params_.on_threshold) {
        s.protected_now = true;
        changed = true;
      }
    } else {
      s.active_scans = 0;
      if (s.protected_now && ++s.idle_scans >= params_.off_threshold) {
        s.protected_now = false;
        s.idle_scans = 0;
        changed = true;
      }
    }
  }
  if (changed) rebuild_protected_list();
  return changed;
}

void AdaptiveController::rebuild_protected_list() {
  protected_.clear();
  for (std::size_t i = 0; i < state_.size(); ++i) {
    if (state_[i].protected_now &&
        protected_.size() < params_.max_channels) {
      protected_.push_back(static_cast<core::OverlapChannel>(i));
    }
  }
}

std::optional<core::SledzigConfig> AdaptiveController::config(
    wifi::Modulation m, wifi::CodingRate r) const {
  if (protected_.empty()) return std::nullopt;
  core::SledzigConfig cfg;
  cfg.modulation = m;
  cfg.rate = r;
  cfg.channel = protected_.front();
  cfg.extra_channels.assign(protected_.begin() + 1, protected_.end());
  return cfg;
}

}  // namespace sledzig::coex
