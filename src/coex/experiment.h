// High-level experiment harness reproducing the paper's Fig 10 testbed:
// one WiFi link and one ZigBee link at configurable geometry, with SledZig
// on or off.
//
// RSSI experiments (Figs 11-13, 17) run fully in the sample domain: real
// transmit chains, calibrated path loss, AWGN and band-power measurement.
// Throughput experiments (Figs 14-16) run the discrete-event MAC with link
// budgets derived from the same calibrated models plus PHY-measured in-band
// offsets.
#pragma once

#include "channel/impairments.h"
#include "channel/medium.h"
#include "channel/pathloss.h"
#include "coex/inband.h"
#include "mac/zigbee_csma.h"
#include "sledzig/significant_bits.h"

namespace sledzig::coex {

/// Scheme under test: standard WiFi payload or SledZig-encoded payload.
enum class Scheme { kNormalWifi, kSledzig };

struct Scenario {
  core::SledzigConfig sledzig;      // modulation / rate / channel
  Scheme scheme = Scheme::kSledzig;
  double wifi_gain = 15.0;          // USRP Tx gain (Fig 10 setting)
  unsigned zigbee_gain = 31;        // CC2420 PA level
  double d_wz_m = 4.0;              // WiFi Tx <-> ZigBee link distance
  double d_z_m = 1.0;               // ZigBee Tx <-> Rx distance
  double wifi_duty_ratio = 1.0;     // Fig 16 sweeps this
  double duration_s = 30.0;
  std::uint64_t seed = 1;
  mac::WifiMacParams wifi_mac;      // airtime etc.
  mac::ZigbeeMacParams zigbee_mac;
  mac::SymbolErrorModel error_model;
  /// RF impairments applied to the links.  Sample-domain experiments run
  /// every waveform through the chain; the discrete-event MAC experiment
  /// (no sample domain) degrades the ZigBee link budget by the chain's
  /// first-order SNR penalty instead.
  channel::ImpairmentConfig impairment;
};

/// Link budget at the ZigBee side for a scenario (shadowing not included —
/// the MAC simulation is run repeatedly with jittered budgets for spread).
mac::ZigbeeLinkBudget scenario_link_budget(const Scenario& s);

/// In-band WiFi interference inside the protected 2 MHz channel at
/// `distance_m` from the WiFi transmitter: total received power folded
/// through the PHY-measured offsets for the payload (reduced under
/// SledZig) and the always-full-power preamble, in dBm.  Shared by the
/// closed-form MAC experiment and the discrete-event engine (src/sim).
struct WifiInbandPower {
  common::Dbm payload_dbm{};
  common::Dbm preamble_dbm{};
};
WifiInbandPower wifi_inband_power(const core::SledzigConfig& cfg,
                                  Scheme scheme, double wifi_gain,
                                  double distance_m);

/// Runs the MAC-level coexistence simulation.
mac::ZigbeeSimResult run_throughput_experiment(const Scenario& s);

/// RSSI of a WiFi packet measured in the ZigBee channel at distance d from
/// the WiFi transmitter (Figs 11 and 12).  Sample-domain: synthesises the
/// packet, applies path loss + AWGN + lognormal shadowing, integrates the
/// 2 MHz band.
double measure_wifi_rssi_at_zigbee(const core::SledzigConfig& cfg,
                                   Scheme scheme, double wifi_gain,
                                   double distance_m, std::uint64_t seed,
                                   std::size_t forced_subcarriers = 0,
                                   const channel::ImpairmentConfig& impairment = {});

/// RSSI of a ZigBee frame at its receiver (Fig 13).
double measure_zigbee_rssi(unsigned zigbee_gain, double distance_m,
                           std::uint64_t seed,
                           const channel::ImpairmentConfig& impairment = {});

/// "2 MHz-slice" RSSI of WiFi / ZigBee signals at the WiFi receiver
/// (Fig 17).
struct WifiRxRssi {
  common::Dbm wifi_dbm{};
  common::Dbm zigbee_dbm{};
};
WifiRxRssi measure_rssi_at_wifi_rx(double wifi_gain, unsigned zigbee_gain,
                                   double distance_m, std::uint64_t seed,
                                   const channel::ImpairmentConfig& impairment = {});

/// WiFi application throughput in Mbps for a mode, with or without the
/// SledZig extra-bit overhead (Table IV's throughput-loss accounting).
double wifi_throughput_mbps(const core::SledzigConfig& cfg, Scheme scheme,
                            double duty_ratio = 1.0);

}  // namespace sledzig::coex
