// ZigBee-activity detection at the WiFi device and an adaptive SledZig
// controller.
//
// The paper (section VI-A) notes that signal-identification mechanisms like
// SoNIC / LoFi "can work with SledZig ... as the WiFi devices can decrease
// signal power adaptively according to the identified ZigBee channel".
// This module implements that integration: a detector that classifies which
// overlapped ZigBee channel carries 802.15.4 traffic from raw baseband
// samples, and a controller that turns the detections into a SledZig
// configuration with hysteresis.
#pragma once

#include <optional>

#include "common/dsp.h"
#include "sledzig/significant_bits.h"

namespace sledzig::coex {

struct ZigbeeDetection {
  core::OverlapChannel channel;
  double band_power_dbm;    // energy in the 2 MHz window
  double chip_correlation;  // O-QPSK preamble correlation in [0, 1]
};

struct DetectorConfig {
  /// Minimum band power above the noise floor to consider a channel.
  double energy_threshold_dbm = -85.0;
  /// Minimum normalised correlation against the 802.15.4 preamble waveform
  /// to classify the energy as ZigBee (rejects WiFi leakage / noise).
  double correlation_threshold = 0.35;
};

/// Scans all four overlapped ZigBee channels in `samples` (receiver
/// baseband centred on the WiFi channel, 20 MS/s) and returns detections
/// sorted by band power, strongest first.
std::vector<ZigbeeDetection> detect_zigbee_activity(
    std::span<const common::Cplx> samples, const DetectorConfig& cfg = {});

/// Adaptive controller: feeds detections into a per-channel activity score
/// with hysteresis and exposes the SledZig channel set to protect.
class AdaptiveController {
 public:
  struct Params {
    /// Scans a channel must be seen active in before protection starts.
    unsigned on_threshold = 2;
    /// Consecutive idle scans before protection stops.
    unsigned off_threshold = 5;
    /// Maximum number of channels protected at once (extra-bit budget).
    std::size_t max_channels = 2;
  };

  AdaptiveController() : AdaptiveController(Params{}) {}
  explicit AdaptiveController(Params params) : params_(params) {}

  /// Ingests one scan's detections; returns true if the ordered protected
  /// list changed (membership or rank).
  bool observe(std::span<const ZigbeeDetection> detections);

  /// Channels currently protected, strongest activity first; equal
  /// strengths break by channel id (ascending) so the list is a pure,
  /// stable function of the observation history.
  const std::vector<core::OverlapChannel>& protected_channels() const {
    return protected_;
  }

  /// Builds the SledZig configuration for the current protected set, or
  /// nullopt when no channel needs protection.
  std::optional<core::SledzigConfig> config(wifi::Modulation m,
                                            wifi::CodingRate r) const;

 private:
  Params params_;
  struct ChannelState {
    unsigned active_scans = 0;
    unsigned idle_scans = 0;
    bool protected_now = false;
    /// Band power of the latest active scan — the sort key for the
    /// protected list.  -300 dBm marks "never seen" (below any signal).
    double strength_dbm = -300.0;
  };
  std::array<ChannelState, 4> state_{};
  std::vector<core::OverlapChannel> protected_;

  /// Recomputes protected_ from state_: (strength desc, channel asc),
  /// truncated to max_channels.  Pure over the hysteresis counters — a
  /// rebuild never restarts off_threshold counting.
  void rebuild_protected_list();
};

}  // namespace sledzig::coex
