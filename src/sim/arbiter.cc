#include "sim/arbiter.h"

#include <algorithm>
#include <cmath>

#include "common/units.h"

namespace sledzig::sim {

Arbiter::Arbiter(ArbiterTables tables) : tables_(std::move(tables)) {}

std::uint32_t Arbiter::begin_tx(std::uint32_t node, NodeKind kind,
                                double start_us, double payload_start_us,
                                double end_us) {
  const auto id = static_cast<std::uint32_t>(txs_.size());
  txs_.push_back(
      Transmission{node, kind, start_us, payload_start_us, end_us, true});
  active_.push_back(id);
  max_duration_us_ = std::max(max_duration_us_, end_us - start_us);
  return id;
}

void Arbiter::end_tx(std::uint32_t tx_id) {
  txs_[tx_id].active = false;
  active_.erase(std::remove(active_.begin(), active_.end(), tx_id),
                active_.end());
}

void Arbiter::abort_tx(std::uint32_t tx_id, double now_us) {
  auto& x = txs_[tx_id];
  if (!x.active) return;
  x.aborted = true;
  x.end_us = std::max(x.start_us, now_us);
  // Truncating can only shrink the payload window; clamp its start too so
  // the segment arithmetic in zigbee_cca_busy stays non-negative.
  x.payload_start_us = std::min(x.payload_start_us, x.end_us);
  end_tx(tx_id);
}

bool Arbiter::busy_at(std::uint32_t listener, double t_us) const {
  for (const auto id : active_) {
    const auto& x = txs_[id];
    if (x.node == listener) continue;
    if (!audible(listener, x.node)) continue;
    if (x.start_us <= t_us && t_us < x.end_us) return true;
  }
  return false;
}

std::pair<std::size_t, std::size_t> Arbiter::overlap_range(
    double t0_us, double t1_us) const {
  // Starts are sorted but ends are not (transmissions overlap), so scan
  // back by the longest duration seen: any transmission overlapping t0
  // must have started within that window.
  const double lo_start = t0_us - max_duration_us_;
  const auto lo = std::lower_bound(
      txs_.begin(), txs_.end(), lo_start,
      [](const Transmission& x, double t) { return x.start_us < t; });
  const auto hi = std::upper_bound(
      lo, txs_.end(), t1_us,
      [](double t, const Transmission& x) { return t < x.start_us; });
  return {static_cast<std::size_t>(lo - txs_.begin()),
          static_cast<std::size_t>(hi - txs_.begin())};
}

bool Arbiter::zigbee_cca_busy(std::uint32_t listener, double t0_us,
                              double t1_us) const {
  const double window = t1_us - t0_us;
  if (window <= 0.0) return false;
  double energy = 0.0;  // mW * us
  const auto [lo, hi] = overlap_range(t0_us, t1_us);
  for (std::size_t i = lo; i < hi; ++i) {
    const auto& x = txs_[i];
    if (x.node == listener) continue;
    const auto& p = cca_power(listener, x.node);
    const double pre =
        std::max(0.0, std::min(t1_us, x.payload_start_us) -
                          std::max(t0_us, x.start_us));
    const double pay = std::max(
        0.0, std::min(t1_us, x.end_us) - std::max(t0_us, x.payload_start_us));
    energy += pre * p.preamble_mw + pay * p.payload_mw;
  }
  const double avg_dbm =
      common::mw_to_dbm(energy / window + tables_.cca_noise_mw[listener]);
  return avg_dbm >= tables_.cca_threshold_dbm[listener];
}

}  // namespace sledzig::sim
