#include "sim/arbiter.h"

#include <algorithm>
#include <cmath>

#include "common/units.h"

namespace sledzig::sim {

Arbiter::Arbiter(ArbiterTables tables) : tables_(std::move(tables)) {
  by_comp_.resize(std::max<std::size_t>(1, tables_.num_comps));
}

Arbiter::Arbiter(ArbiterStorage storage)
    : tables_(std::move(storage.tables)),
      txs_(std::move(storage.txs)),
      active_(std::move(storage.active)),
      by_comp_(std::move(storage.by_comp)) {
  txs_.clear();
  active_.clear();
  for (auto& v : by_comp_) v.clear();  // keep each ledger's capacity
  by_comp_.resize(std::max<std::size_t>(1, tables_.num_comps));
}

ArbiterStorage Arbiter::release() {
  ArbiterStorage out{std::move(tables_), std::move(txs_), std::move(active_),
                     std::move(by_comp_)};
  tables_ = ArbiterTables{};
  txs_ = std::vector<Transmission>();
  active_ = std::vector<std::uint32_t>();
  by_comp_ = std::vector<std::vector<std::uint32_t>>();
  return out;
}

// NOLINTBEGIN(bugprone-easily-swappable-parameters)
std::uint32_t Arbiter::begin_tx(std::uint32_t node, NodeKind kind,
                                double start_us, double payload_start_us,
                                double end_us) {
  // NOLINTEND(bugprone-easily-swappable-parameters)
  const auto id = static_cast<std::uint32_t>(txs_.size());
  txs_.push_back(
      Transmission{node, kind, start_us, payload_start_us, end_us, true});
  active_.push_back(id);
  by_comp_[comp_of(node)].push_back(id);
  max_duration_us_ = std::max(max_duration_us_, end_us - start_us);
  return id;
}

void Arbiter::end_tx(std::uint32_t tx_id) {
  txs_[tx_id].active = false;
  active_.erase(std::remove(active_.begin(), active_.end(), tx_id),
                active_.end());
}

void Arbiter::abort_tx(std::uint32_t tx_id, double now_us) {
  auto& x = txs_[tx_id];
  if (!x.active) return;
  x.aborted = true;
  x.end_us = std::max(x.start_us, now_us);
  // Truncating can only shrink the payload window; clamp its start too so
  // the segment arithmetic in zigbee_cca_busy stays non-negative.
  x.payload_start_us = std::min(x.payload_start_us, x.end_us);
  end_tx(tx_id);
}

bool Arbiter::busy_at(std::uint32_t listener, double t_us) const {
  for (const auto id : active_) {
    const auto& x = txs_[id];
    if (x.node == listener) continue;
    if (!audible(listener, x.node)) continue;
    if (x.start_us <= t_us && t_us < x.end_us) return true;
  }
  return false;
}

std::pair<const std::uint32_t*, const std::uint32_t*> Arbiter::overlap_ids(
    std::uint32_t listener, double t0_us, double t1_us) const {
  // Starts are sorted but ends are not (transmissions overlap), so scan
  // back by the longest duration seen: any transmission overlapping t0
  // must have started within that window.
  const auto& v = by_comp_[comp_of(listener)];
  const double lo_start = t0_us - max_duration_us_;
  const auto lo = std::lower_bound(
      v.begin(), v.end(), lo_start,
      [this](std::uint32_t id, double t) { return txs_[id].start_us < t; });
  const auto hi = std::upper_bound(
      lo, v.end(), t1_us,
      [this](double t, std::uint32_t id) { return t < txs_[id].start_us; });
  return {v.data() + (lo - v.begin()), v.data() + (hi - v.begin())};
}

bool Arbiter::zigbee_cca_busy(std::uint32_t listener, double t0_us,
                              double t1_us) const {
  const double window = t1_us - t0_us;
  if (window <= 0.0) return false;
  double energy = 0.0;  // mW * us
  const auto [lo, hi] = overlap_ids(listener, t0_us, t1_us);
  const bool indexed = has_link_index();
  for (const std::uint32_t* it = lo; it != hi; ++it) {
    const auto& x = txs_[*it];
    if (x.node == listener) continue;
    // Zero-power links (pruned or channel-disjoint) contribute exactly
    // 0.0 mW*us; with the index built, skip them without touching the
    // (cache-cold at campus scale) power table.
    if (indexed && !cca_nonzero(listener, x.node)) continue;
    const double pre =
        std::max(0.0, std::min(t1_us, x.payload_start_us) -
                          std::max(t0_us, x.start_us));
    const double pay = std::max(
        0.0, std::min(t1_us, x.end_us) - std::max(t0_us, x.payload_start_us));
    // Ledger entries that ended before the window (the scan looks back by
    // the longest duration seen) contribute exactly nothing — skip them
    // before the power-table read, which is the expensive part.
    if (pre <= 0.0 && pay <= 0.0) continue;
    const auto& p = cca_power(listener, x.node);
    energy += pre * p.preamble_mw.value() + pay * p.payload_mw.value();
  }
  const common::Dbm avg_dbm = common::to_dbm(
      common::MilliWatt{energy / window} + tables_.cca_noise_mw[listener]);
  return avg_dbm >= tables_.cca_threshold_dbm[listener];
}

}  // namespace sledzig::sim
