// Per-scenario link cache and interference graph (DESIGN.md §15).
//
// Pathloss and the PHY-measured in-band offsets (coex::wifi_inband_power)
// are pure per (transmitter, listening point, scheme, gain, distance,
// channel pair) — nothing about them depends on the run's seed.  The cache
// precomputes that *mean* (pre-shadowing) received power once per scenario;
// each run only adds its lognormal shadowing draw and converts to mW, so
// replications share all the expensive geometry/PHY work through one
// shared_ptr in ScenarioConfig.
//
// The cache is also where the interference graph is decided.  Every entry
// carries a LinkState:
//
//   kLive    — filled into the run's power table as usual;
//   kZero    — structurally silent (a node's own CCA point, or two bands
//              that do not spectrally overlap at all): exactly 0 mW;
//   kPruned  — epsilon-pruned (FastPathConfig::prune): the mean power plus
//              a 10-sigma shadowing margin still lands more than
//              prune_floor_db below the listener's noise floor, so the
//              link is zeroed at table-build time.  Zero entries are inert
//              downstream: they add exactly 0.0 to CCA energy sums and can
//              never win the strict-> worst-interferer comparison, which
//              is why pruning needs no code-path change at query time.
//
// Multi-channel coupling: each node carries a channel (WifiNodeConfig /
// ZigbeeNodeConfig, 0 = the legacy single-BSS sentinel).  A ZigBee node
// sitting exactly in a WiFi transmitter's protected window resolves
// through coex::wifi_inband_power (the SledZig-aware PHY measurement);
// every other overlap uses a flat-PSD band-fraction term applied *after*
// the shadowing draw, so legacy scenarios (all channels 0) reproduce the
// original power tables bit-exactly (coupling_db == 0.0 on every legacy
// path, and x + jitter + 0.0 == x + jitter).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/units.h"
#include "sledzig/channels.h"
#include "sledzig/significant_bits.h"

namespace sledzig::sim {

struct ScenarioConfig;

enum class LinkState : std::uint8_t {
  kLive = 0,  ///< normal link: fill power = dbm_to_mw(mean + jitter + cpl)
  kZero,      ///< structurally silent (self-CCA or disjoint bands): 0 mW
  kPruned,    ///< epsilon-pruned interference-graph edge: 0 mW (approx.)
};

/// Mean (pre-shadowing) received power of one transmitter at one listening
/// point, split by frame segment, plus the spectral-overlap coupling
/// applied after the per-run shadowing draw.
struct LinkEntry {
  common::Dbm payload_dbm{};
  common::Dbm preamble_dbm{};
  common::Db coupling_db{};
  LinkState state = LinkState::kZero;
  /// Does this pair consume a shadowing draw from the run's jitter stream?
  /// True for every pair the legacy single-channel fill drew for (which is
  /// *all* pairs when every node uses channel 0, keeping legacy streams —
  /// and so legacy digests — bit-exact), false only for spectrally
  /// disjoint pairs, which cannot exist in a legacy scenario.  Pruning
  /// never clears it: a pruned link still draws, so the stream is
  /// identical whether or not the interference graph is enabled.
  bool coupled = false;
};

/// One coupled (listening point, transmitter) pair in the compact
/// row-major link list: the LinkEntry fields plus the transmitter id.
struct CoupledLink {
  common::Dbm payload_dbm{};
  common::Dbm preamble_dbm{};
  common::Db coupling_db{};
  std::uint32_t tx = 0;
  LinkState state = LinkState::kZero;
};

struct LinkCache {
  std::size_t num_wifi = 0;
  std::size_t num_nodes = 0;  ///< wifi + zigbee
  std::size_t num_total = 0;  ///< nodes + jammer pseudo-nodes
  /// The coupled pairs only, as CSR rows over listening points (rows
  /// 0..T-1 are CCA points, T..2T-1 receiver points, matching the
  /// ArbiterTables::power layout; ascending tx within a row).  Uncoupled
  /// pairs — spectrally disjoint bands — are simply absent: the per-run
  /// fill walks this list in order, so it neither scans nor draws for
  /// them.  In a legacy all-channel-0 scenario every pair is coupled and
  /// the walk degenerates to the original dense row-major loop.
  std::vector<CoupledLink> coupled;
  std::vector<std::uint32_t> coupled_off;  ///< 2T + 1 row offsets
  /// Per listening node: the prune epsilon (listener-band noise floor
  /// minus FastPathConfig::prune_floor_db); 0 mW when pruning is off.
  /// The fast path's cross-check compares shadow powers against this.
  std::vector<common::MilliWatt> eps_mw;
  /// Spectral coupling components: comp[node] in 0..num_comps-1 for every
  /// node (jammer pseudo-nodes included).  Two nodes share a component iff
  /// they are connected through live-or-pruned coupled links, so received
  /// power across components is exactly 0 mW at every listening point —
  /// which is what lets the arbiter keep one transmission ledger per
  /// component and scan only the listener's.  One component in any legacy
  /// single-channel scenario (and whenever a wideband jammer is present,
  /// since it couples to everything).
  std::vector<std::uint32_t> comp;
  std::size_t num_comps = 1;

  /// Entry lookup (tests / introspection; the engine walks the CSR rows
  /// directly).  Absent pairs come back as the uncoupled kZero entry.
  LinkEntry at(std::size_t point, std::size_t tx) const;

  /// Builds the cache for a topology.  Pure per config — no seed, no RNG —
  /// so one cache serves every replication of a scenario.
  static std::shared_ptr<const LinkCache> build(const ScenarioConfig& cfg);
};

/// Centre frequency of a WiFi node's channel; 0 (the legacy sentinel) maps
/// to channel 6 (2437 MHz).
double wifi_node_center_hz(unsigned channel);

/// Centre frequency of a ZigBee node's channel (11..26); 0 maps to the
/// legacy protected window: the channel-0 WiFi centre plus the configured
/// overlap-channel offset.
double zigbee_node_center_hz(unsigned channel,
                             const core::SledzigConfig& sledzig);

/// The 802.15.4 channel whose 2 MHz band sits at overlap window `ch` of
/// 20 MHz WiFi channel `wifi_channel` (e.g. channel 1 overlaps ZigBee
/// 11..14, channel 6 overlaps 16..19, channel 11 overlaps 21..24).
unsigned overlapping_zigbee_channel(unsigned wifi_channel,
                                    core::OverlapChannel ch);

/// Mean (pre-shadowing) link entry of transmitter `tx` (a real node or a
/// jammer pseudo-node) heard at the listening point of real node
/// `listener` (`rx_point` picks its receiver vs CCA position), with the
/// listener's band centred at `listener_center` and `sledzig_on` selecting
/// the scheme inside protected windows.  Pure per (cfg, arguments), no
/// prune decision — exactly the arithmetic build() fills the cache with,
/// exported so the engine's control plane can retune entries at runtime
/// (ZigBee channel hops, SledZig toggles) with zero drift from the
/// build-time tables.
LinkEntry mean_link_entry(const ScenarioConfig& cfg, std::size_t listener,
                          bool rx_point, std::size_t tx,
                          common::Hz listener_center, bool sledzig_on);

}  // namespace sledzig::sim
