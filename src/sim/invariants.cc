#include "sim/invariants.h"

namespace sledzig::sim {

InvariantViolation::InvariantViolation(const std::string& what,
                                       std::uint64_t seed, double time_us)
    : std::runtime_error("sim invariant violated: " + what + " [seed=" +
                         std::to_string(seed) +
                         " t_us=" + std::to_string(time_us) + "]"),
      seed_(seed),
      time_us_(time_us) {}

void SimInvariants::fail(const std::string& what, double t_us) const {
  throw InvariantViolation(what, seed_, t_us);
}

void SimInvariants::on_event(double t_us) {
  if (!cfg_.enabled) return;
  if (seen_event_) {
    if (t_us < last_time_us_) {
      fail("event time moved backwards (prev " +
               std::to_string(last_time_us_) + " us)",
           t_us);
    }
    if (cfg_.max_event_gap_us > 0.0 &&
        t_us - last_time_us_ > cfg_.max_event_gap_us) {
      fail("liveness watchdog: " + std::to_string(t_us - last_time_us_) +
               " us without an event (deadline " +
               std::to_string(cfg_.max_event_gap_us) + ")",
           t_us);
    }
  }
  seen_event_ = true;
  last_time_us_ = t_us;
}

void SimInvariants::on_queue_depth(std::uint32_t node, std::size_t depth,
                                   std::size_t capacity, double t_us) {
  if (!cfg_.enabled) return;
  if (depth > capacity) {
    fail("node " + std::to_string(node) + " queue depth " +
             std::to_string(depth) + " exceeds capacity " +
             std::to_string(capacity),
         t_us);
  }
}

void SimInvariants::on_node_drained(std::uint32_t node, bool alive,
                                    bool serving, bool horizon_cut,
                                    bool tx_in_flight, double t_us) {
  if (!cfg_.enabled) return;
  // A dead node holds no schedulable state, and an idle one owes nothing.
  // A serving node must either still have work on the scheduler (the event
  // queue drained, so only an in-flight transmission's kTxEnd could remain
  // — it cannot here) or have been cut off by the horizon.
  if (alive && serving && !horizon_cut && !tx_in_flight) {
    fail("node " + std::to_string(node) +
             " wedged: serving with no scheduled step and no horizon cut",
         t_us);
  }
}

void SimInvariants::on_conservation(std::uint32_t node, std::size_t generated,
                                    std::size_t accounted, double t_us) {
  if (!cfg_.enabled) return;
  if (generated != accounted) {
    fail("node " + std::to_string(node) + " conservation broken: generated " +
             std::to_string(generated) + " != accounted " +
             std::to_string(accounted),
         t_us);
  }
}

}  // namespace sledzig::sim
