#include "sim/traffic.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sledzig::sim {

namespace {
/// Floor on any inter-arrival draw: a zero gap (uniform() returning
/// exactly 0 in the exponential inverse-CDF) must not wedge the event loop
/// at one instant.
constexpr double kMinGapUs = 1e-3;
}  // namespace

TrafficSource::TrafficSource(const TrafficConfig& cfg, double burst_us,
                             double csma_gap_us, std::uint64_t seed)
    : cfg_(cfg), rng_(seed) {
  switch (cfg_.kind) {
    case TrafficKind::kSaturated:
      break;
    case TrafficKind::kCbr:
    case TrafficKind::kPoisson:
      if (!(cfg_.interval_us > 0.0)) {
        throw std::invalid_argument("TrafficSource: interval_us must be > 0");
      }
      break;
    case TrafficKind::kDutyCycle: {
      if (!(cfg_.duty_ratio > 0.0) || cfg_.duty_ratio > 1.0) {
        throw std::invalid_argument("TrafficSource: duty_ratio in (0, 1]");
      }
      // Mean extra idle per burst so that airtime / cycle = duty_ratio
      // beyond the unavoidable DIFS + mean backoff — the same accounting
      // as the closed-form WifiTimeline generator.
      const double cycle = burst_us / cfg_.duty_ratio;
      mean_idle_us_ = std::max(0.0, cycle - burst_us - csma_gap_us);
      break;
    }
  }
}

double TrafficSource::gap() {
  switch (cfg_.kind) {
    case TrafficKind::kSaturated:
      return 0.0;
    case TrafficKind::kCbr:
      return std::max(kMinGapUs, cfg_.interval_us / rate_scale_);
    case TrafficKind::kPoisson:
      return std::max(kMinGapUs, -(cfg_.interval_us / rate_scale_) *
                                     std::log(1.0 - rng_.uniform()));
    case TrafficKind::kDutyCycle:
      // Exponential-ish jitter around the mean keeps bursts off a grid
      // (mirrors WifiTimeline's queue-idle draw).  No kMinGapUs floor:
      // completion-clocked arrivals cannot wedge the loop, and a zero idle
      // gap (duty ratio 1.0) must stay exactly zero.
      return (mean_idle_us_ / rate_scale_) * (0.5 + rng_.uniform());
  }
  return 0.0;
}

double TrafficSource::first_arrival() {
  if (cfg_.kind == TrafficKind::kSaturated) return 0.0;
  if (cfg_.kind == TrafficKind::kCbr) {
    // Random phase: identical CBR nodes must not start in lockstep.
    return std::max(kMinGapUs, cfg_.interval_us * rng_.uniform());
  }
  return gap();
}

double TrafficSource::next_after(double now) { return now + gap(); }

}  // namespace sledzig::sim
