// Runtime invariant checking for the discrete-event engine (DESIGN.md §14).
//
// The simulator's correctness story is a handful of global properties that
// must hold for *every* (config, seed) — including hostile fault plans that
// crash nodes mid-transmission, jam the band, or warp node clocks:
//
//   * event-time monotonicity — the scheduler never travels backwards;
//   * liveness — a node that is serving a frame always has a next step
//     scheduled, unless the horizon cut it off (a wedged node would
//     otherwise sit in `serving` forever and silently leak its queue);
//   * bounded inter-event gaps — an optional per-scenario watchdog deadline
//     on scheduler progress (chaos configs size it to their traffic);
//   * queue-depth bounds — no FIFO ever exceeds the configured capacity;
//   * crash-aware packet conservation — at the horizon every generated
//     frame is in exactly one terminal bucket (delivered, queue_dropped,
//     cca_dropped, retry_exhausted, lost_to_crash, in_flight_at_end).
//
// SimInvariants is the in-engine hook: cheap enough to run on every event
// in chaos/debug builds, compiled to nothing when `enabled` is false (the
// default in optimized builds).  A violation throws InvariantViolation
// whose message carries the scenario seed and virtual time, so any chaos
// failure is replayable from the printed seed alone.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace sledzig::sim {

/// Per-scenario invariant-checking knobs (ScenarioConfig::invariants).
struct InvariantConfig {
  /// Master switch.  Off by default so release digests and hot-path cost
  /// are untouched; the chaos suite and debug builds turn it on.
  bool enabled = false;
  /// Liveness watchdog: maximum virtual µs between consecutively processed
  /// events.  0 disables the gap check (idle scenarios legitimately pause
  /// for arbitrary inter-arrival times); chaos configs set it to a bound
  /// derived from their traffic and fault plan.
  double max_event_gap_us = 0.0;
};

/// Thrown on any invariant breach.  what() embeds the scenario seed —
/// re-running the same config with that seed reproduces the violation
/// bit-for-bit (the engine is a pure function of (config, seed)).
class InvariantViolation : public std::runtime_error {
 public:
  InvariantViolation(const std::string& what, std::uint64_t seed,
                     double time_us);

  std::uint64_t seed() const { return seed_; }
  double time_us() const { return time_us_; }

 private:
  std::uint64_t seed_;
  double time_us_;
};

/// The engine-side checker.  All methods are no-ops when the config is
/// disabled; the engine additionally guards the per-event calls behind
/// enabled() so a disabled checker costs one branch.
class SimInvariants {
 public:
  SimInvariants(const InvariantConfig& cfg, std::uint64_t seed)
      : cfg_(cfg), seed_(seed) {}

  bool enabled() const { return cfg_.enabled; }

  /// Every popped event passes through here: monotonic time + gap bound.
  void on_event(double t_us);

  /// FIFO depth after an enqueue.
  void on_queue_depth(std::uint32_t node, std::size_t depth,
                      std::size_t capacity, double t_us);

  /// End-of-run liveness verdict for one node: `serving` with no scheduled
  /// work is only legal when the horizon suppressed the node's next step.
  void on_node_drained(std::uint32_t node, bool alive, bool serving,
                       bool horizon_cut, bool tx_in_flight, double t_us);

  /// End-of-run conservation: generated vs the sum of terminal buckets.
  void on_conservation(std::uint32_t node, std::size_t generated,
                       std::size_t accounted, double t_us);

 private:
  [[noreturn]] void fail(const std::string& what, double t_us) const;

  InvariantConfig cfg_;
  std::uint64_t seed_;
  bool seen_event_ = false;
  double last_time_us_ = 0.0;
};

}  // namespace sledzig::sim
