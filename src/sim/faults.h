// Compiles a declarative FaultPlanConfig into a deterministic action list.
//
// The engine never draws fault randomness at runtime: FaultScheduler
// expands every timed window, seeded-random fault process and jammer burst
// schedule up front into one time-sorted vector of FaultAction.  The engine
// queues each action as an ordinary kFault event on the (time, seq) queue,
// so a run with faults is exactly as deterministic as one without — the
// whole schedule is a pure function of (config, seed), bit-identical for
// any thread count.
//
// All fault randomness comes from derive_seed streams rooted at a
// fault-only branch of the scenario seed, disjoint from the per-node MAC /
// delivery / traffic streams the engine owns.  Enabling a fault process
// therefore perturbs only what the faults themselves touch; it never
// reshuffles the surviving nodes' backoff or traffic draws.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/scenario.h"

namespace sledzig::sim {

/// One compiled fault instant.  `magnitude` is kind-specific: the arrival
/// multiplier for kSurgeOn, the burst length in µs for kJamOn, unused
/// otherwise.
struct FaultAction {
  double at_us = 0.0;
  FaultKind kind = FaultKind::kCrash;
  std::uint32_t node = 0;  ///< global node index; jammer index for kJamOn
  double magnitude = 0.0;
};

class FaultScheduler {
 public:
  /// Expands `plan` into a schedule sorted by (at_us, emission order).
  /// Window kinds emit their recovery action automatically; a recovery that
  /// would land at or past `duration_us` is dropped (the node stays in the
  /// faulted state until the horizon).  `num_nodes` is the global node
  /// count (WiFi + ZigBee) the random processes draw targets from.
  static std::vector<FaultAction> compile(const FaultPlanConfig& plan,
                                          std::uint64_t seed,
                                          double duration_us,
                                          std::size_t num_nodes);
};

}  // namespace sledzig::sim
