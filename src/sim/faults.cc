#include "sim/faults.h"

#include <algorithm>
#include <cmath>

#include "common/parallel.h"
#include "common/rng.h"
#include "common/seed_domains.h"

namespace sledzig::sim {

namespace {

// Root of the fault-only seed branch.  Everything below is derived from
// derive_seed(config.seed, kFaultBranch), so fault streams can never alias
// the engine's per-node streams (indices 0 .. 4*num_nodes+3 of the raw
// scenario seed).  The tag itself lives in the seed-domain registry
// (common/seed_domains.h) so no other subsystem can collide with it.
constexpr std::uint64_t kFaultBranch = common::seed_domain::kFaultPlan;

// Per-node stream indices under the fault branch: 8 slots per node (four
// fault families plus headroom), jammers after all nodes.
constexpr std::uint64_t kStreamsPerNode = 8;
constexpr std::uint64_t kCrashStream = 0;
constexpr std::uint64_t kMuteStream = 1;
constexpr std::uint64_t kDeafStream = 2;
constexpr std::uint64_t kSurgeStream = 3;

/// Inverse-CDF exponential draw; uniform() < 1 keeps the log argument
/// positive, so the result is finite and >= 0.
double exp_draw(common::Rng& rng, double mean) {
  return -mean * std::log(1.0 - rng.uniform());
}

/// Walks one Poisson on/off fault process for one node: exponential gaps
/// between onsets (mean 1e6/rate µs), exponential window lengths.  Windows
/// never overlap themselves — the next onset gap starts where the previous
/// window ended.  A recovery landing at/past the horizon is dropped; the
/// node stays faulted to the end.
// NOLINTBEGIN(bugprone-easily-swappable-parameters)
void emit_windows(std::vector<FaultAction>& out, common::Rng& rng,
                  std::uint32_t node, double rate_per_s, double mean_len_us,
                  double duration_us, FaultKind on, FaultKind off,
                  double magnitude) {
  // NOLINTEND(bugprone-easily-swappable-parameters)
  if (!(rate_per_s > 0.0)) return;
  const double mean_gap_us = 1e6 / rate_per_s;
  double t = exp_draw(rng, mean_gap_us);
  while (t < duration_us) {
    out.push_back({t, on, node, magnitude});
    const double end = t + exp_draw(rng, mean_len_us);
    if (end < duration_us) out.push_back({end, off, node, 0.0});
    t = end + exp_draw(rng, mean_gap_us);
  }
}

}  // namespace

std::vector<FaultAction> FaultScheduler::compile(const FaultPlanConfig& plan,
                                                 std::uint64_t seed,
                                                 double duration_us,
                                                 std::size_t num_nodes) {
  std::vector<FaultAction> out;
  const std::uint64_t fault_seed = common::derive_seed(seed, kFaultBranch);

  // 1. Explicit timed windows, expanded to On + recovery pairs.
  for (const auto& f : plan.timed) {
    if (f.at_us >= duration_us) continue;
    if (f.kind == FaultKind::kJamOn) {
      // A jam burst carries its length in `magnitude`; it retires through
      // its own kTxEnd, so no Off action exists.
      const double len =
          f.duration_us > 0.0 ? f.duration_us : duration_us - f.at_us;
      out.push_back({f.at_us, f.kind, f.node, len});
      continue;
    }
    out.push_back({f.at_us, f.kind, f.node, f.magnitude});
    FaultKind off;
    switch (f.kind) {
      case FaultKind::kCrash:
        off = FaultKind::kReboot;
        break;
      case FaultKind::kMuteOn:
        off = FaultKind::kMuteOff;
        break;
      case FaultKind::kDeafOn:
        off = FaultKind::kDeafOff;
        break;
      case FaultKind::kSurgeOn:
        off = FaultKind::kSurgeOff;
        break;
      default:
        continue;  // explicit recovery entries pass through unpaired
    }
    if (f.duration_us > 0.0 && f.at_us + f.duration_us < duration_us) {
      out.push_back({f.at_us + f.duration_us, off, f.node, 0.0});
    }
  }

  // 2. Seeded-random per-node fault processes, one RNG stream per
  // (node, family) so changing one rate re-rolls nothing else.
  const auto& r = plan.random;
  for (std::size_t g = 0; g < num_nodes; ++g) {
    const std::uint32_t node = static_cast<std::uint32_t>(g);
    if (r.crash_rate_per_s > 0.0) {
      common::Rng rng(common::derive_seed(
          fault_seed, kStreamsPerNode * g + kCrashStream));
      emit_windows(out, rng, node, r.crash_rate_per_s, r.mean_downtime_us,
                   duration_us, FaultKind::kCrash, FaultKind::kReboot, 0.0);
    }
    if (r.mute_rate_per_s > 0.0) {
      common::Rng rng(
          common::derive_seed(fault_seed, kStreamsPerNode * g + kMuteStream));
      emit_windows(out, rng, node, r.mute_rate_per_s, r.mean_mute_us,
                   duration_us, FaultKind::kMuteOn, FaultKind::kMuteOff, 0.0);
    }
    if (r.deaf_rate_per_s > 0.0) {
      common::Rng rng(
          common::derive_seed(fault_seed, kStreamsPerNode * g + kDeafStream));
      emit_windows(out, rng, node, r.deaf_rate_per_s, r.mean_deaf_us,
                   duration_us, FaultKind::kDeafOn, FaultKind::kDeafOff, 0.0);
    }
    if (r.surge_rate_per_s > 0.0) {
      common::Rng rng(
          common::derive_seed(fault_seed, kStreamsPerNode * g + kSurgeStream));
      emit_windows(out, rng, node, r.surge_rate_per_s, r.mean_surge_us,
                   duration_us, FaultKind::kSurgeOn, FaultKind::kSurgeOff,
                   r.surge_magnitude);
    }
  }

  // 3. Jammer burst schedules: alternating exponential off/on periods,
  // starting off so a burst never begins at exactly t=0.
  for (std::size_t j = 0; j < plan.jammers.size(); ++j) {
    const auto& jm = plan.jammers[j];
    if (!(jm.mean_on_us > 0.0) || !(jm.mean_off_us > 0.0)) continue;
    common::Rng rng(
        common::derive_seed(fault_seed, kStreamsPerNode * num_nodes + j));
    double t = exp_draw(rng, jm.mean_off_us);
    while (t < duration_us) {
      const double on = exp_draw(rng, jm.mean_on_us);
      out.push_back(
          {t, FaultKind::kJamOn, static_cast<std::uint32_t>(j), on});
      t += on + exp_draw(rng, jm.mean_off_us);
    }
  }

  // Stable sort on time alone: equal-time actions fire in emission order,
  // which is itself deterministic (timed entries first, then node-major
  // random processes, then jammers).
  std::stable_sort(out.begin(), out.end(),
                   [](const FaultAction& a, const FaultAction& b) {
                     return a.at_us < b.at_us;
                   });
  return out;
}

}  // namespace sledzig::sim
