// Deterministic event scheduler for the discrete-event coexistence engine.
//
// Events pop in (time, insertion sequence) order: two events at the same
// instant dequeue in the order they were pushed, on every platform and for
// every thread count.  That sequence key is what makes whole-run event
// traces bit-identical — std::priority_queue alone leaves equal-time
// ordering to heap internals.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <utility>
#include <vector>

namespace sledzig::sim {

enum class EventType : std::uint8_t {
  kArrival,  ///< the node's traffic source delivers a frame
  kTimer,    ///< a MAC state-machine timer (validated against the node token)
  kTxEnd,    ///< a transmission leaves the air; delivery is evaluated
  kFault,    ///< a compiled FaultScheduler action fires (tx_id = action index)
  kControl,  ///< a control-plane epoch boundary (observation + actions)
};

struct Event {
  double time_us = 0.0;
  std::uint64_t seq = 0;    ///< global insertion order: deterministic ties
  EventType type = EventType::kArrival;
  std::uint32_t node = 0;   ///< owning node (global index)
  /// Staleness guard: the node's timer token for kTimer, its arrival epoch
  /// for kArrival (a crash bumps the epoch, orphaning the pending arrival
  /// chain so a reboot can start a fresh one without double-clocking).
  std::uint64_t token = 0;
  std::uint32_t tx_id = 0;  ///< ledger id for kTxEnd / action index for kFault
};

struct EventAfter {
  bool operator()(const Event& a, const Event& b) const {
    if (a.time_us != b.time_us) return a.time_us > b.time_us;
    return a.seq > b.seq;
  }
};

/// Min-heap on (time_us, seq).
///
/// Timer-cancellation hygiene: the queue never removes events.  A node
/// "cancels" a pending kTimer by bumping its own token before re-arming;
/// the engine discards any popped kTimer whose token no longer matches.
/// Because node tokens are monotone 64-bit counters and every pushed timer
/// carries the token current at push time, a cancelled timer can never
/// alias a later re-arm's token, so it can never fire on the re-armed node.
///
/// The heap lives in an owned vector (std::push_heap / std::pop_heap over
/// the same EventAfter comparator — (time, seq) is a total order, so the
/// pop sequence is identical to std::priority_queue's) so the backing
/// storage can be recycled across runs: adopt a previous run's vector via
/// the storage constructor, hand it back with release().  Only capacity
/// survives — contents are cleared on adoption, so reuse cannot leak state
/// between runs.
class EventQueue {
 public:
  EventQueue() = default;
  /// Adopts `storage`'s capacity for the heap; its contents are discarded.
  explicit EventQueue(std::vector<Event>&& storage)
      : heap_(std::move(storage)) {
    heap_.clear();
  }

  void reserve(std::size_t n) { heap_.reserve(n); }

  void push(double time_us, EventType type, std::uint32_t node,
            std::uint64_t token = 0, std::uint32_t tx_id = 0) {
    heap_.push_back(Event{time_us, next_seq_++, type, node, token, tx_id});
    std::push_heap(heap_.begin(), heap_.end(), EventAfter{});
  }

  bool empty() const { return heap_.empty(); }

  Event pop() {
    // Popping an empty heap would be UB; fail loudly in debug.
    assert(!heap_.empty());
    std::pop_heap(heap_.begin(), heap_.end(), EventAfter{});
    Event e = heap_.back();
    heap_.pop_back();
    return e;
  }

  /// Total events ever pushed (monotone).  Each push consumes one unique
  /// seq value, so pushed() equals the count of distinct seqs handed out —
  /// the two cannot alias or double-count.
  std::uint64_t pushed() const { return next_seq_; }

  /// Hands the backing storage back for reuse by a later run.  The queue
  /// is left empty; pushed() keeps counting monotonically.
  std::vector<Event> release() {
    std::vector<Event> out = std::move(heap_);
    heap_ = std::vector<Event>();
    out.clear();
    return out;
  }

 private:
  std::vector<Event> heap_;  // min-heap via EventAfter
  std::uint64_t next_seq_ = 0;
};

}  // namespace sledzig::sim
