// Discrete-event multi-node coexistence engine.
//
// A ScenarioConfig goes in; a deterministic timeline of arrivals, CCAs,
// deferrals, transmissions and deliveries comes out.  The scheduler
// (src/sim/event_queue.h) advances the event-driven MAC state machines in
// src/mac; the airtime arbiter (src/sim/arbiter.h) resolves concurrent
// transmissions through the calibrated path-loss model and the
// PHY-measured in-band offsets, so CCA outcomes and capture are driven by
// actual received power — including SledZig's reduced in-band payload.
//
// Determinism contract: run_scenario is a pure function of its config
// (seed included).  Event order is fixed by the (time, sequence) queue
// key, every RNG stream is derived per node with common::derive_seed, and
// replication fan-out is index-addressed — so results are bit-identical
// across repeated runs and for any SLEDZIG_THREADS.
#pragma once

#include <cstdint>
#include <vector>

#include "common/parallel.h"
#include "sim/scenario.h"

namespace sledzig::sim {

enum class TraceType : std::uint8_t {
  kArrival = 0,   ///< traffic source delivered a frame
  kQueueDrop,     ///< FIFO full, frame discarded
  kCcaClear,      ///< ZigBee CCA found the channel idle (aux = NB)
  kCcaBusy,       ///< ZigBee CCA found the channel busy (aux = NB)
  kCcaDrop,       ///< channel-access failure after macMaxCSMABackoffs + 1
  kTxStart,       ///< frame on air
  kTxDelivered,   ///< frame evaluated clean at its receiver
  kTxLost,        ///< frame corrupted (SINR) or below sensitivity
  kRetry,         ///< frame lost, CSMA re-entered (macMaxFrameRetries)
  // Fault-injection instants (DESIGN.md §14).  Values are appended, never
  // reordered, so fault-free digests are unchanged from earlier revisions.
  kNodeCrash,     ///< node died (aux = frames lost from its queue)
  kNodeReboot,    ///< node returned cold
  kMute,          ///< TX chain toggled (aux: 1 = on, 0 = off)
  kDeaf,          ///< RX chain toggled (aux: 1 = on, 0 = off)
  kJam,           ///< jammer burst started (node = jammer pseudo-index)
  kSurge,         ///< traffic surge toggled (aux: 1 = on, 0 = off)
  kTxAborted,     ///< in-flight transmission cut short by a crash
  kTxMuted,       ///< transmit attempt swallowed by a muted TX chain
  // Control-plane instants (DESIGN.md §18).  Appended, never reordered:
  // runs without an active policy keep their pre-control digests.
  kControlEpoch,  ///< epoch boundary observed (aux = actions issued)
  kControlSledzig,///< runtime SledZig toggle (aux: 1 = engaged, 0 = off)
  kControlHop,    ///< ZigBee channel hop (aux = new 802.15.4 channel)
  kControlShape,  ///< WiFi rate shaping (aux = scale in parts per thousand)
};

struct TraceEvent {
  double time_us = 0.0;
  std::uint32_t node = 0;  ///< global index: WiFi nodes first, then ZigBee
  TraceType type = TraceType::kArrival;
  std::int32_t aux = 0;
};

/// Per-node frame accounting.  Every generated frame ends in exactly one
/// terminal bucket, so the conservation identity
///
///   generated == delivered + queue_dropped + cca_dropped
///                + retry_exhausted + lost_to_crash + in_flight_at_end
///
/// holds exactly for every node in every scenario — fault plans included
/// (asserted across the whole sim suite in tests/sim_test.cc and for every
/// chaos schedule in tests/chaos_test.cc).  `sent` and `retries` count
/// *attempts*, not frames — a frame retried twice contributes 3 to `sent`
/// — so they deliberately stay outside the identity.
struct NodeStats {
  std::size_t generated = 0;  ///< frames produced by the traffic source
  std::size_t queue_dropped = 0;
  std::size_t cca_dropped = 0;
  std::size_t sent = 0;       ///< transmissions put on air (retries included)
  std::size_t delivered = 0;  ///< clean at the receiver
  std::size_t retries = 0;    ///< CSMA re-entries after a lost attempt
  /// Frames abandoned after their final permitted attempt was lost (for
  /// WiFi, which never retries, this is simply every lost frame).
  std::size_t retry_exhausted = 0;
  /// Frames destroyed by a node crash: everything queued at the instant the
  /// node died, including the frame being served (an in-flight transmission
  /// is aborted on the air and lands here, not in retry_exhausted).
  std::size_t lost_to_crash = 0;
  /// Frames still queued (or mid-service) when the horizon cut them off.
  std::size_t in_flight_at_end = 0;
  double airtime_us = 0.0;
  double airtime_fraction = 0.0;
  double prr = 0.0;              ///< delivered / sent
  double throughput_kbps = 0.0;  ///< delivered payload bits / duration
};

struct SimResult {
  std::vector<NodeStats> wifi;
  std::vector<NodeStats> zigbee;
  std::uint64_t events_processed = 0;
  /// FNV-1a over every state transition of the run.  Two runs are
  /// bit-identical iff their digests match, whether or not the full trace
  /// was recorded.
  std::uint64_t trace_digest = 0;
  std::vector<TraceEvent> trace;  ///< populated when config.record_trace
};

/// Runs one scenario to completion.
SimResult run_scenario(const ScenarioConfig& config);

/// Runs `replications` independent copies of the scenario with seeds
/// derive_seed(config.seed, rep), fanned out over the pool into
/// index-addressed slots: bit-identical for any thread count.
std::vector<SimResult> run_replications(common::ThreadPool& pool,
                                        const ScenarioConfig& config,
                                        std::size_t replications);

/// Same, over the process-wide default pool (SLEDZIG_THREADS).
std::vector<SimResult> run_replications(const ScenarioConfig& config,
                                        std::size_t replications);

}  // namespace sledzig::sim
