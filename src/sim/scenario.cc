#include "sim/scenario.h"

#include <algorithm>
#include <cmath>

namespace sledzig::sim {

double distance_m(const Position& a, const Position& b) {
  return std::max(0.1, std::hypot(a.x_m - b.x_m, a.y_m - b.y_m));
}

ScenarioConfig two_node_paper_scenario(const core::SledzigConfig& sledzig,
                                       bool sledzig_on,
                                       double wifi_duty_ratio, double d_wz_m,
                                       double d_z_m, double duration_s,
                                       std::uint64_t seed) {
  ScenarioConfig cfg;
  cfg.sledzig = sledzig;
  cfg.sledzig_enabled = sledzig_on;
  cfg.duration_s = duration_s;
  cfg.seed = seed;

  WifiNodeConfig ap;
  ap.tx = {0.0, 0.0};
  ap.rx = {0.0, 3.0};  // the served station; uncontested in this geometry
  if (wifi_duty_ratio >= 1.0) {
    ap.traffic = {TrafficKind::kSaturated, 0.0, 1.0};
  } else {
    ap.traffic = {TrafficKind::kDutyCycle, 0.0, wifi_duty_ratio};
  }
  cfg.wifi.push_back(ap);

  ZigbeeNodeConfig mote;
  mote.tx = {d_wz_m, 0.0};
  mote.rx = {d_wz_m, d_z_m};
  // The paper's closed-loop source: ~one frame per 6.3 ms (processing +
  // mean CSMA + frame airtime), the 63 Kbps interference-free ceiling.
  mote.traffic = {TrafficKind::kCbr, 6346.0, 1.0};
  cfg.zigbee.push_back(mote);
  return cfg;
}

}  // namespace sledzig::sim
