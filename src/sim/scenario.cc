#include "sim/scenario.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "sim/link_cache.h"

namespace sledzig::sim {

double distance_m(const Position& a, const Position& b) {
  return std::max(0.1, std::hypot(a.x_m - b.x_m, a.y_m - b.y_m));
}

bool FaultPlanConfig::any() const {
  if (!timed.empty() || !jammers.empty()) return true;
  for (const auto& c : clocks) {
    if (c.skew_us != 0.0 || c.drift_ppm != 0.0) return true;
  }
  const auto& r = random;
  return r.crash_rate_per_s > 0.0 || r.mute_rate_per_s > 0.0 ||
         r.deaf_rate_per_s > 0.0 || r.surge_rate_per_s > 0.0;
}

std::string describe(const std::vector<ConfigError>& errors) {
  std::string out = "ScenarioConfig invalid:";
  for (const auto& e : errors) {
    out += "\n  " + e.field + ": " + e.message;
  }
  return out;
}

namespace {

bool finite(double x) { return std::isfinite(x); }

void check_position(std::vector<ConfigError>& errs, const std::string& field,
                    const Position& p) {
  if (!finite(p.x_m) || !finite(p.y_m)) {
    errs.push_back({field, "position must be finite"});
  }
}

void check_traffic(std::vector<ConfigError>& errs, const std::string& field,
                   const TrafficConfig& t) {
  switch (t.kind) {
    case TrafficKind::kSaturated:
      break;
    case TrafficKind::kCbr:
    case TrafficKind::kPoisson:
      if (!(t.interval_us > 0.0) || !finite(t.interval_us)) {
        errs.push_back({field + ".interval_us", "must be finite and > 0"});
      }
      break;
    case TrafficKind::kDutyCycle:
      // duty_ratio == 0 means "a source that is on 0% of the time", i.e. a
      // run that silently produces nothing — reject it here instead.
      if (!(t.duty_ratio > 0.0) || t.duty_ratio > 1.0 ||
          !finite(t.duty_ratio)) {
        errs.push_back({field + ".duty_ratio", "must be in (0, 1]"});
      }
      break;
  }
}

}  // namespace

std::vector<ConfigError> ScenarioConfig::validate() const {
  std::vector<ConfigError> errs;
  if (!(duration_s > 0.0) || !finite(duration_s)) {
    errs.push_back({"duration_s", "must be finite and > 0"});
  }
  if (queue_capacity < 1) {
    errs.push_back({"queue_capacity", "must be >= 1"});
  }
  if (wifi.empty() && zigbee.empty()) {
    errs.push_back({"wifi/zigbee", "topology is empty: nothing to simulate"});
  }
  if (!finite(shadowing_sigma_db.value()) || shadowing_sigma_db.value() < 0.0) {
    errs.push_back({"shadowing_sigma_db", "must be finite and >= 0"});
  }
  if (!finite(wifi_capture_sinr_db.value())) {
    errs.push_back({"wifi_capture_sinr_db", "must be finite"});
  }

  const std::size_t num_nodes = wifi.size() + zigbee.size();
  for (std::size_t i = 0; i < wifi.size(); ++i) {
    const std::string field = "wifi[" + std::to_string(i) + "]";
    const auto& n = wifi[i];
    check_position(errs, field + ".tx", n.tx);
    check_position(errs, field + ".rx", n.rx);
    if (!finite(n.usrp_gain)) {
      errs.push_back({field + ".usrp_gain", "must be finite (NaN power)"});
    }
    if (!(n.mac.airtime_us > 0.0) || !finite(n.mac.airtime_us)) {
      errs.push_back({field + ".mac.airtime_us", "must be finite and > 0"});
    }
    if (n.channel > 13) {
      errs.push_back({field + ".channel", "must be 0 (legacy) or 1..13"});
    }
    check_traffic(errs, field + ".traffic", n.traffic);
  }
  for (std::size_t j = 0; j < zigbee.size(); ++j) {
    const std::string field = "zigbee[" + std::to_string(j) + "]";
    const auto& n = zigbee[j];
    check_position(errs, field + ".tx", n.tx);
    check_position(errs, field + ".rx", n.rx);
    if (!finite(n.sensitivity_dbm.value())) {
      errs.push_back({field + ".sensitivity_dbm", "must be finite"});
    }
    if (n.mac.payload_octets == 0) {
      errs.push_back({field + ".mac.payload_octets", "must be >= 1"});
    }
    if (n.channel != 0 && (n.channel < 11 || n.channel > 26)) {
      errs.push_back({field + ".channel", "must be 0 (legacy) or 11..26"});
    }
    check_traffic(errs, field + ".traffic", n.traffic);
  }

  if (!finite(fastpath.prune_floor_db.value())) {
    errs.push_back({"fastpath.prune_floor_db", "must be finite"});
  }

  // --- fault plan ---
  for (std::size_t k = 0; k < faults.timed.size(); ++k) {
    const std::string field = "faults.timed[" + std::to_string(k) + "]";
    const auto& f = faults.timed[k];
    if (!finite(f.at_us) || f.at_us < 0.0) {
      errs.push_back({field + ".at_us", "must be finite and >= 0"});
    }
    if (!finite(f.duration_us)) {
      errs.push_back({field + ".duration_us", "must be finite"});
    }
    const bool is_jam = f.kind == FaultKind::kJamOn;
    const std::size_t domain = is_jam ? faults.jammers.size() : num_nodes;
    if (f.node >= domain) {
      errs.push_back({field + ".node",
                      is_jam ? "jammer index out of range"
                             : "node index out of range"});
    }
    if (f.kind == FaultKind::kSurgeOn &&
        (!(f.magnitude > 0.0) || !finite(f.magnitude))) {
      errs.push_back({field + ".magnitude", "must be finite and > 0"});
    }
  }
  for (std::size_t k = 0; k < faults.jammers.size(); ++k) {
    const std::string field = "faults.jammers[" + std::to_string(k) + "]";
    const auto& jm = faults.jammers[k];
    check_position(errs, field + ".pos", jm.pos);
    if (!finite(jm.usrp_gain)) {
      errs.push_back({field + ".usrp_gain", "must be finite (NaN power)"});
    }
    if (!finite(jm.mean_on_us) || !finite(jm.mean_off_us) ||
        jm.mean_on_us < 0.0 || jm.mean_off_us < 0.0 ||
        (jm.mean_on_us > 0.0) != (jm.mean_off_us > 0.0)) {
      errs.push_back({field + ".mean_on_us/mean_off_us",
                      "must be finite, >= 0, and enabled together"});
    }
  }
  {
    const auto& r = faults.random;
    const auto check_process = [&](const char* name, double rate,
                                   double mean) {
      if (!finite(rate) || rate < 0.0) {
        errs.push_back({std::string("faults.random.") + name + "_rate_per_s",
                        "must be finite and >= 0"});
      }
      if (rate > 0.0 && (!finite(mean) || !(mean > 0.0))) {
        errs.push_back({std::string("faults.random.mean_") + name + "_us",
                        "must be finite and > 0 when the rate is > 0"});
      }
    };
    check_process("crash", r.crash_rate_per_s, r.mean_downtime_us);
    check_process("mute", r.mute_rate_per_s, r.mean_mute_us);
    check_process("deaf", r.deaf_rate_per_s, r.mean_deaf_us);
    check_process("surge", r.surge_rate_per_s, r.mean_surge_us);
    if (r.surge_rate_per_s > 0.0 &&
        (!finite(r.surge_magnitude) || !(r.surge_magnitude > 0.0))) {
      errs.push_back(
          {"faults.random.surge_magnitude", "must be finite and > 0"});
    }
  }
  if (faults.clocks.size() > num_nodes) {
    errs.push_back({"faults.clocks", "more clock entries than nodes"});
  }
  for (std::size_t k = 0; k < faults.clocks.size(); ++k) {
    const std::string field = "faults.clocks[" + std::to_string(k) + "]";
    const auto& c = faults.clocks[k];
    if (!finite(c.skew_us)) {
      errs.push_back({field + ".skew_us", "must be finite"});
    }
    // The drift factor 1 + ppm * 1e-6 must stay positive or timers would
    // fire in the past.
    if (!finite(c.drift_ppm) || c.drift_ppm <= -1e6) {
      errs.push_back({field + ".drift_ppm", "must be finite and > -1e6"});
    }
  }
  if (invariants.max_event_gap_us < 0.0 ||
      !finite(invariants.max_event_gap_us)) {
    errs.push_back({"invariants.max_event_gap_us", "must be finite and >= 0"});
  }

  // --- control plane ---
  if (control.enabled) {
    if (!(control.epoch_us > 0.0) || !finite(control.epoch_us)) {
      errs.push_back({"control.epoch_us", "must be finite and > 0"});
    }
    if (control.sledzig.enabled) {
      if (control.sledzig.on_threshold < 1) {
        errs.push_back({"control.sledzig.on_threshold", "must be >= 1"});
      }
      if (control.sledzig.off_threshold < 1) {
        errs.push_back({"control.sledzig.off_threshold", "must be >= 1"});
      }
      if (!finite(control.sledzig.busy_airtime_fraction) ||
          control.sledzig.busy_airtime_fraction < 0.0) {
        errs.push_back({"control.sledzig.busy_airtime_fraction",
                        "must be finite and >= 0"});
      }
    }
    if (control.hop.enabled) {
      if (!finite(control.hop.min_prr) || control.hop.min_prr < 0.0 ||
          control.hop.min_prr > 1.0) {
        errs.push_back({"control.hop.min_prr", "must be in [0, 1]"});
      }
      if (control.hop.patience < 1) {
        errs.push_back({"control.hop.patience", "must be >= 1"});
      }
    }
    if (control.duty.enabled) {
      if (!finite(control.duty.min_zigbee_prr) ||
          control.duty.min_zigbee_prr < 0.0 ||
          control.duty.min_zigbee_prr > 1.0) {
        errs.push_back({"control.duty.min_zigbee_prr", "must be in [0, 1]"});
      }
      if (!(control.duty.rate_scale > 0.0) ||
          control.duty.rate_scale > 1.0 ||
          !finite(control.duty.rate_scale)) {
        errs.push_back({"control.duty.rate_scale", "must be in (0, 1]"});
      }
      if (control.duty.patience < 1) {
        errs.push_back({"control.duty.patience", "must be >= 1"});
      }
      if (control.duty.release < 1) {
        errs.push_back({"control.duty.release", "must be >= 1"});
      }
    }
  }
  return errs;
}

// NOLINTBEGIN(bugprone-easily-swappable-parameters)
ScenarioConfig two_node_paper_scenario(const core::SledzigConfig& sledzig,
                                       bool sledzig_on,
                                       double wifi_duty_ratio, double d_wz_m,
                                       double d_z_m, double duration_s,
                                       std::uint64_t seed) {
  // NOLINTEND(bugprone-easily-swappable-parameters)
  ScenarioConfig cfg;
  cfg.sledzig = sledzig;
  cfg.sledzig_enabled = sledzig_on;
  cfg.duration_s = duration_s;
  cfg.seed = seed;

  WifiNodeConfig ap;
  ap.tx = {0.0, 0.0};
  ap.rx = {0.0, 3.0};  // the served station; uncontested in this geometry
  if (wifi_duty_ratio >= 1.0) {
    ap.traffic = {TrafficKind::kSaturated, 0.0, 1.0};
  } else {
    ap.traffic = {TrafficKind::kDutyCycle, 0.0, wifi_duty_ratio};
  }
  cfg.wifi.push_back(ap);

  ZigbeeNodeConfig mote;
  mote.tx = {d_wz_m, 0.0};
  mote.rx = {d_wz_m, d_z_m};
  // The paper's closed-loop source: ~one frame per 6.3 ms (processing +
  // mean CSMA + frame airtime), the 63 Kbps interference-free ceiling.
  mote.traffic = {TrafficKind::kCbr, 6346.0, 1.0};
  cfg.zigbee.push_back(mote);
  return cfg;
}

ScenarioConfig control_ab_scenario(bool controlled, double duration_s,
                                   std::uint64_t seed) {
  ScenarioConfig cfg;
  cfg.sledzig_enabled = true;
  cfg.duration_s = duration_s;
  cfg.seed = seed;

  // The congested cell: an 80% duty BSS with four ZigBee pairs 2..5 m from
  // its transmitter, one per 2 MHz overlap window.  Only the window
  // cfg.sledzig.channel selects is SledZig-protected, so three of the four
  // motes face the full-power flat-PSD slice — the coexistence gap the
  // controller exists to close.
  WifiNodeConfig heavy;
  heavy.tx = {0.0, 0.0};
  heavy.rx = {0.0, 3.0};
  heavy.channel = 1;
  heavy.traffic = {TrafficKind::kDutyCycle, 0.0, 0.8};
  cfg.wifi.push_back(heavy);

  // The quiet cell, far enough that its windows are attractive hop targets
  // but close enough that its spectrum is genuinely shared.
  WifiNodeConfig light;
  light.tx = {16.0, 0.0};
  light.rx = {16.0, 3.0};
  light.channel = 11;
  light.traffic = {TrafficKind::kDutyCycle, 0.0, 0.1};
  cfg.wifi.push_back(light);

  for (std::size_t k = 0; k < core::kAllOverlapChannels.size(); ++k) {
    ZigbeeNodeConfig mote;
    mote.tx = {2.0 + static_cast<double>(k), 1.0};
    mote.rx = {2.0 + static_cast<double>(k), 2.0};
    mote.channel = overlapping_zigbee_channel(heavy.channel,
                                              core::kAllOverlapChannels[k]);
    mote.traffic = {TrafficKind::kCbr, 25000.0, 1.0};
    cfg.zigbee.push_back(mote);
  }

  if (controlled) {
    cfg.control.enabled = true;
    cfg.control.epoch_us = 100000.0;
    cfg.control.sledzig.enabled = true;
    cfg.control.sledzig.on_threshold = 1;  // no first-epoch disengage blip
    cfg.control.sledzig.off_threshold = 3;
    cfg.control.hop.enabled = true;
    cfg.control.hop.min_prr = 0.9;
    cfg.control.hop.patience = 2;
    cfg.control.hop.cooldown_epochs = 5;
  }
  return cfg;
}

// NOLINTBEGIN(bugprone-easily-swappable-parameters)
ScenarioConfig campus_scenario(std::size_t ap_grid_x, std::size_t ap_grid_y,
                               std::size_t sensors_per_ap, double spacing_m,
                               double duration_s, std::uint64_t seed) {
  // NOLINTEND(bugprone-easily-swappable-parameters)
  ScenarioConfig cfg;
  cfg.sledzig_enabled = true;
  cfg.duration_s = duration_s;
  cfg.seed = seed;
  cfg.wifi.reserve(ap_grid_x * ap_grid_y);
  cfg.zigbee.reserve(ap_grid_x * ap_grid_y * sensors_per_ap);

  // The classic dense-deployment plan: the three non-overlapping 20 MHz
  // channels tiled so adjacent cells never share one.
  constexpr unsigned kChannelPlan[3] = {1, 6, 11};

  for (std::size_t iy = 0; iy < ap_grid_y; ++iy) {
    for (std::size_t ix = 0; ix < ap_grid_x; ++ix) {
      const double x = static_cast<double>(ix) * spacing_m;
      const double y = static_cast<double>(iy) * spacing_m;
      WifiNodeConfig ap;
      ap.tx = {x, y};
      ap.rx = {x + 2.0, y + 1.0};
      ap.channel = kChannelPlan[(ix + iy) % 3];
      ap.traffic = {TrafficKind::kDutyCycle, 0.0, 0.35};
      cfg.wifi.push_back(ap);

      // Sensors ring the AP, each parked in one of the four 2 MHz overlap
      // windows of its cell's WiFi channel — the SledZig coexistence
      // geometry, repeated per cell.
      for (std::size_t s = 0; s < sensors_per_ap; ++s) {
        const double dx = 2.0 + 3.0 * static_cast<double>(s % 3);
        const double dy = 3.0 + 3.0 * static_cast<double>(s / 3);
        ZigbeeNodeConfig mote;
        mote.tx = {x + dx, y + dy};
        mote.rx = {x + dx, y + dy + 1.0};
        mote.channel = overlapping_zigbee_channel(
            ap.channel, core::kAllOverlapChannels[s % 4]);
        mote.traffic = {TrafficKind::kCbr, 25000.0, 1.0};
        cfg.zigbee.push_back(mote);
      }
    }
  }
  return cfg;
}

}  // namespace sledzig::sim
