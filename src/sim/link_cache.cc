#include "sim/link_cache.h"

#include <algorithm>
#include <cmath>

#include "channel/pathloss.h"
#include "coex/experiment.h"
#include "common/units.h"
#include "sim/scenario.h"
#include "zigbee/cc2420.h"

namespace sledzig::sim {
namespace {

/// A flat wideband jammer presents 2/20 MHz of its power to a ZigBee
/// listener's measurement band (same constant the engine always used).
constexpr common::Db kJammerBandFractionDb{-10.0};

constexpr double kWifiBandHz = 20e6;
constexpr double kZigbeeBandHz = 2e6;

/// Overlap in Hz of two bands centred at c1/c2 with widths w1/w2.
/// Symmetric in the (centre, width) pairs, so a swap is harmless.
// NOLINTNEXTLINE(bugprone-easily-swappable-parameters)
double band_overlap_hz(double c1, double w1, double c2, double w2) {
  return std::max(0.0, std::min(c1 + w1 / 2.0, c2 + w2 / 2.0) -
                           std::max(c1 - w1 / 2.0, c2 - w2 / 2.0));
}

}  // namespace

double wifi_node_center_hz(unsigned channel) {
  return core::wifi_channel_frequency_hz(channel == 0 ? 6u : channel);
}

double zigbee_node_center_hz(unsigned channel,
                             const core::SledzigConfig& sledzig) {
  if (channel == 0) {
    // Legacy sentinel: the protected window of the (channel-0) WiFi band.
    return wifi_node_center_hz(0) +
           core::channel_center_offset_hz(sledzig.channel);
  }
  return 2405e6 + 5e6 * static_cast<double>(channel - 11);
}

unsigned overlapping_zigbee_channel(unsigned wifi_channel,
                                    core::OverlapChannel ch) {
  const double f = wifi_node_center_hz(wifi_channel) +
                   core::channel_center_offset_hz(ch);
  return 11u + static_cast<unsigned>(std::lround((f - 2405e6) / 5e6));
}

// NOLINTNEXTLINE(bugprone-easily-swappable-parameters)
LinkEntry mean_link_entry(const ScenarioConfig& cfg, std::size_t listener,
                          bool rx_point, std::size_t tx,
                          common::Hz listener_center, bool sledzig_on) {
  const std::size_t num_wifi = cfg.wifi.size();
  const std::size_t num_nodes = num_wifi + cfg.zigbee.size();
  const coex::Scheme scheme =
      sledzig_on ? coex::Scheme::kSledzig : coex::Scheme::kNormalWifi;
  const auto wifi_link = channel::wifi_link();

  LinkEntry e;
  if (tx == listener && !rx_point) return e;  // own CCA point: silent
  Position pos;
  if (listener < num_wifi) {
    pos = rx_point ? cfg.wifi[listener].rx : cfg.wifi[listener].tx;
  } else {
    const auto& z = cfg.zigbee[listener - num_wifi];
    pos = rx_point ? z.rx : z.tx;
  }
  const bool listener_is_zigbee = listener >= num_wifi;
  const double f_listener = listener_center.value();

  if (tx < num_wifi) {
    const auto& w = cfg.wifi[tx];
    const double d = distance_m(w.tx, pos);
    const double f_tx = wifi_node_center_hz(w.channel);
    if (listener_is_zigbee) {
      const double protected_hz =
          f_tx + core::channel_center_offset_hz(cfg.sledzig.channel);
      if (std::abs(f_listener - protected_hz) < 0.5e6) {
        // The listener sits in this transmitter's protected window:
        // the PHY-measured in-band offsets (SledZig payload 20+ dB
        // down, preamble at full power).
        const auto inband =
            coex::wifi_inband_power(cfg.sledzig, scheme, w.usrp_gain, d);
        e = {inband.payload_dbm, inband.preamble_dbm, common::Db{},
             LinkState::kLive};
      } else {
        const double ov =
            band_overlap_hz(f_tx, kWifiBandHz, f_listener, kZigbeeBandHz);
        if (ov > 0.0) {
          // Flat-PSD slice of the 20 MHz band (a full 2 MHz slice is
          // -10 dB, matching the jammer band fraction).
          const common::Dbm total = wifi_link.received_power_dbm(
              channel::wifi_tx_power_dbm(w.usrp_gain), d);
          e = {total, total, common::Db{10.0 * std::log10(ov / kWifiBandHz)},
               LinkState::kLive};
        }
      }
    } else {
      const double ov =
          band_overlap_hz(f_tx, kWifiBandHz, f_listener, kWifiBandHz);
      if (ov > 0.0) {
        const common::Dbm total = wifi_link.received_power_dbm(
            channel::wifi_tx_power_dbm(w.usrp_gain), d);
        // Co-channel: coupling is exactly 0.0 (legacy bit-exact).
        e = {total, total, common::Db{10.0 * std::log10(ov / kWifiBandHz)},
             LinkState::kLive};
      }
    }
  } else if (tx < num_nodes) {
    const auto& z = cfg.zigbee[tx - num_wifi];
    const double d = distance_m(z.tx, pos);
    const double f_tx = zigbee_node_center_hz(z.channel, cfg.sledzig);
    const double ov =
        band_overlap_hz(f_tx, kZigbeeBandHz, f_listener,
                        listener_is_zigbee ? kZigbeeBandHz : kWifiBandHz);
    if (ov > 0.0) {
      const common::Dbm total = channel::zigbee_link().received_power_dbm(
          zigbee::tx_power_dbm(z.gain), d);
      // Fraction of the 2 MHz frame inside the listener's band; a
      // fully-contained frame couples at exactly 0.0 dB (legacy).
      e = {total, total, common::Db{10.0 * std::log10(ov / kZigbeeBandHz)},
           LinkState::kLive};
    }
  } else {
    // Jammer: flat wideband burst through the WiFi link model — full
    // power at a 20 MHz listener, the band fraction at a ZigBee one,
    // whatever the listener's channel (it jams all of them).
    const auto& jm = cfg.faults.jammers[tx - num_nodes];
    const double d = distance_m(jm.pos, pos);
    const common::Dbm total = wifi_link.received_power_dbm(
        channel::wifi_tx_power_dbm(jm.usrp_gain), d);
    e = {total, total,
         listener_is_zigbee ? kJammerBandFractionDb : common::Db{},
         LinkState::kLive};
  }
  return e;
}

LinkEntry LinkCache::at(std::size_t point, std::size_t tx) const {
  const auto* row = coupled.data();
  const auto lo = row + coupled_off[point];
  const auto hi = row + coupled_off[point + 1];
  const auto it = std::lower_bound(
      lo, hi, tx, [](const CoupledLink& c, std::size_t t) { return c.tx < t; });
  if (it == hi || it->tx != tx) return LinkEntry{};  // uncoupled kZero
  return {it->payload_dbm, it->preamble_dbm, it->coupling_db, it->state, true};
}

std::shared_ptr<const LinkCache> LinkCache::build(const ScenarioConfig& cfg) {
  auto lc = std::make_shared<LinkCache>();
  lc->num_wifi = cfg.wifi.size();
  lc->num_nodes = cfg.wifi.size() + cfg.zigbee.size();
  lc->num_total = lc->num_nodes + cfg.faults.jammers.size();
  const std::size_t num_wifi = lc->num_wifi;
  const std::size_t num_nodes = lc->num_nodes;
  const std::size_t T = lc->num_total;
  lc->coupled_off.assign(2 * T + 1, 0);
  lc->eps_mw.assign(T, common::MilliWatt{});

  // Union-find over spectral coupling (live or pruned links both couple —
  // pruning approximates, it does not decouple), folded into the fill
  // loop below; compressed to dense component ids at the end.
  std::vector<std::uint32_t> parent(T);
  for (std::size_t n = 0; n < T; ++n) {
    parent[n] = static_cast<std::uint32_t>(n);
  }
  const auto find = [&parent](std::uint32_t a) {
    while (parent[a] != a) {
      parent[a] = parent[parent[a]];
      a = parent[a];
    }
    return a;
  };
  const auto unite = [&](std::uint32_t a, std::uint32_t b) {
    a = find(a);
    b = find(b);
    if (a != b) parent[std::max(a, b)] = std::min(a, b);
  };

  // Per-node band centres (jammers are wideband and carry none).
  std::vector<double> center_hz(num_nodes, 0.0);
  for (std::size_t w = 0; w < num_wifi; ++w) {
    center_hz[w] = wifi_node_center_hz(cfg.wifi[w].channel);
  }
  for (std::size_t z = 0; z < cfg.zigbee.size(); ++z) {
    center_hz[num_wifi + z] =
        zigbee_node_center_hz(cfg.zigbee[z].channel, cfg.sledzig);
  }

  // Prune epsilons: `prune_floor_db` under the listener's noise floor.
  // The decision below adds a 10-sigma shadowing margin on top, so a
  // pruned link stays under epsilon for any jitter draw short of a
  // ~1e-23-probability tail (the cross-check would catch even that).
  for (std::size_t n = 0; n < T && cfg.fastpath.prune; ++n) {
    const bool is_zigbee = n >= num_wifi && n < num_nodes;
    const common::Dbm noise_dbm = is_zigbee ? channel::kNoiseFloor2MhzDbm
                                            : channel::kNoiseFloor20MhzDbm;
    lc->eps_mw[n] = common::to_mw(noise_dbm - cfg.fastpath.prune_floor_db);
  }
  const common::Db margin_db = 10.0 * cfg.shadowing_sigma_db;

  for (std::size_t p = 0; p < 2 * T; ++p) {
    const std::size_t listener = p % T;
    const bool rx_point = p >= T;
    // Jammer pseudo-nodes transmit but never listen: their listener rows
    // stay kZero (the engine never queries them) but remain coupled — the
    // legacy fill drew jitter for them, and the stream must not move.
    if (listener >= num_nodes) {
      for (std::size_t t = 0; t < T; ++t) {
        lc->coupled.push_back({common::Dbm{}, common::Dbm{}, common::Db{},
                               static_cast<std::uint32_t>(t),
                               LinkState::kZero});
      }
      lc->coupled_off[p + 1] = static_cast<std::uint32_t>(lc->coupled.size());
      continue;
    }
    const bool listener_is_zigbee = listener >= num_wifi;
    const double f_listener = center_hz[listener];

    for (std::size_t t = 0; t < T; ++t) {
      if (t == listener && !rx_point) {
        // Own CCA point: silent, but the legacy fill drew for it.
        lc->coupled.push_back({common::Dbm{}, common::Dbm{}, common::Db{},
                               static_cast<std::uint32_t>(t),
                               LinkState::kZero});
        continue;
      }
      LinkEntry e = mean_link_entry(cfg, listener, rx_point, t,
                                    common::Hz{f_listener},
                                    cfg.sledzig_enabled);

      // Every spectrally-overlapping pair enters the compact list (and so
      // consumes a jitter draw in the per-run fill); a disjoint pair never
      // does (and never did — no legacy scenario has one).  The list is
      // built before the prune decision so pruning cannot move the stream.
      if (e.state != LinkState::kLive) continue;

      // Interference-graph decision.  A node's own receive link (its
      // signal) is never pruned — pruning is for interference edges only.
      if (lc->eps_mw[listener] > common::MilliWatt{} &&
          !(rx_point && t == listener)) {
        const common::Dbm best_dbm =
            std::max(e.payload_dbm, e.preamble_dbm) + e.coupling_db +
            margin_db;
        const common::Dbm noise_dbm = listener_is_zigbee
                                          ? channel::kNoiseFloor2MhzDbm
                                          : channel::kNoiseFloor20MhzDbm;
        if (best_dbm < noise_dbm - cfg.fastpath.prune_floor_db) {
          e.state = LinkState::kPruned;
        }
      }
      lc->coupled.push_back({e.payload_dbm, e.preamble_dbm, e.coupling_db,
                             static_cast<std::uint32_t>(t), e.state});
      unite(static_cast<std::uint32_t>(listener), static_cast<std::uint32_t>(t));
    }
    lc->coupled_off[p + 1] = static_cast<std::uint32_t>(lc->coupled.size());
  }

  lc->comp.assign(T, 0);
  std::vector<std::uint32_t> dense(T, UINT32_MAX);
  std::uint32_t n_comps = 0;
  for (std::size_t n = 0; n < T; ++n) {
    const std::uint32_t r = find(static_cast<std::uint32_t>(n));
    if (dense[r] == UINT32_MAX) dense[r] = n_comps++;
    lc->comp[n] = dense[r];
  }
  lc->num_comps = std::max<std::size_t>(1, n_comps);
  return lc;
}

}  // namespace sledzig::sim
