// One struct describes a full multi-node coexistence experiment: node
// placements, traffic loads, SledZig on/off, impairments, duration, seed.
//
// The engine (src/sim/engine.h) turns a ScenarioConfig into a timeline:
// every CCA verdict, deferral and packet overlap follows from the actual
// received power between the placed nodes, so the paper's headline effects
// (more ZigBee transmission opportunities, fewer corrupted packets under
// SledZig) emerge from the event sequence instead of closed-form loops.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "channel/impairments.h"
#include "channel/pathloss.h"
#include "mac/wifi_timeline.h"
#include "mac/zigbee_csma.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/invariants.h"
#include "sledzig/significant_bits.h"

namespace sledzig::sim {

/// Planar placement in metres (the paper's 10 m x 15 m office).
struct Position {
  double x_m = 0.0;
  double y_m = 0.0;
};

/// Euclidean distance, floored at 10 cm — the log-distance path-loss model
/// diverges for co-located nodes.
double distance_m(const Position& a, const Position& b);

enum class TrafficKind : std::uint8_t {
  kSaturated,  ///< always backlogged: next frame arrives at completion
  kCbr,        ///< open loop, fixed inter-arrival `interval_us`
  kPoisson,    ///< open loop, exponential inter-arrival, mean `interval_us`
  kDutyCycle,  ///< closed loop: idle gaps sized to hit `duty_ratio` airtime
};

struct TrafficConfig {
  TrafficKind kind = TrafficKind::kSaturated;
  /// kCbr period / kPoisson mean, microseconds.
  double interval_us = 10000.0;
  /// kDutyCycle target airtime fraction in (0, 1] (Fig 16's traffic ratio).
  double duty_ratio = 1.0;
};

/// One WiFi transmitter and the station it serves.
struct WifiNodeConfig {
  Position tx{};
  Position rx{};
  double usrp_gain = 15.0;  // maps to dBm via channel::wifi_tx_power_dbm
  mac::WifiMacParams mac{};
  TrafficConfig traffic{};
};

/// One ZigBee transmitter/receiver pair.
struct ZigbeeNodeConfig {
  Position tx{};
  Position rx{};
  unsigned gain = 31;  // CC2420 PA level
  double sensitivity_dbm = -85.0;
  mac::ZigbeeMacParams mac{};
  TrafficConfig traffic{TrafficKind::kCbr, 6346.0, 1.0};
};

// --- fault model (DESIGN.md §14) -----------------------------------------
//
// A FaultPlanConfig declares *what can go wrong* during a run: explicit
// timed faults, seeded-random fault processes, bursty jammers, and per-node
// clock defects.  FaultScheduler (sim/faults.h) compiles the plan into a
// time-sorted action list that the engine replays as ordinary events on the
// (time, seq) queue, so every fault schedule is a pure function of
// (config, seed) and bit-identical for any thread count.

enum class FaultKind : std::uint8_t {
  kCrash,     ///< node dies: queue/CSMA state lost, in-flight TX aborted
  kReboot,    ///< node returns with a cold MAC and a fresh arrival chain
  kMuteOn,    ///< TX chain off: transmit attempts fail silently
  kMuteOff,
  kDeafOn,    ///< RX chain off: frames addressed to the node are lost
  kDeafOff,
  kJamOn,     ///< jammer burst begins (node = jammer index)
  kSurgeOn,   ///< traffic surge: arrival rate multiplied by `magnitude`
  kSurgeOff,
};

/// One explicitly scheduled fault window.  Window kinds (crash, mute, deaf,
/// jam, surge) use `duration_us`; the matching recovery action is emitted
/// by the compiler, so a plan never has to pair On/Off entries by hand.
struct TimedFault {
  FaultKind kind = FaultKind::kCrash;
  std::uint32_t node = 0;   ///< global node index (jammer index for kJamOn)
  double at_us = 0.0;
  /// Window length; <= 0 means "until the horizon" (no recovery emitted).
  double duration_us = 0.0;
  /// kSurgeOn arrival-rate multiplier; ignored by other kinds.
  double magnitude = 4.0;
};

/// A bursty wideband interferer with no MAC: it transmits whenever its
/// on/off process says so, ignoring the medium entirely.  Jammers join the
/// arbiter's power tables as extra pseudo-nodes, so CCA verdicts, WiFi
/// deferral and per-symbol delivery all see their energy through the same
/// path-loss model as real nodes.
struct JammerConfig {
  Position pos{};
  double usrp_gain = 15.0;  ///< same dBm mapping as a WiFi transmitter
  /// Seeded-random burst process: exponential on/off durations.  Both must
  /// be > 0 for the random schedule; leave 0 to drive the jammer purely
  /// from TimedFault kJamOn entries.
  double mean_on_us = 0.0;
  double mean_off_us = 0.0;
};

/// Seeded-random fault processes, applied per node.  Every rate is a
/// Poisson intensity in events per simulated second; windows draw
/// exponential lengths around the configured means.  All randomness comes
/// from derive_seed(config.seed, ...) streams, never from the nodes' MAC
/// or traffic RNGs, so enabling faults perturbs only what faults touch.
struct RandomFaultConfig {
  double crash_rate_per_s = 0.0;
  double mean_downtime_us = 50000.0;
  double mute_rate_per_s = 0.0;
  double mean_mute_us = 20000.0;
  double deaf_rate_per_s = 0.0;
  double mean_deaf_us = 20000.0;
  double surge_rate_per_s = 0.0;
  double mean_surge_us = 50000.0;
  double surge_magnitude = 4.0;
};

/// Per-node clock defects, applied at the timer layer: `drift_ppm`
/// stretches every MAC timer interval the node arms (a +100 ppm node's
/// backoffs run 0.01% long) and `skew_us` offsets its first arrival.
/// Event timestamps stay global truth — only the node's *own* timing warps.
struct ClockConfig {
  double skew_us = 0.0;
  double drift_ppm = 0.0;
};

struct FaultPlanConfig {
  std::vector<TimedFault> timed;
  std::vector<JammerConfig> jammers;
  RandomFaultConfig random{};
  /// Indexed by global node (WiFi first, then ZigBee); shorter vectors
  /// leave the remaining nodes with nominal clocks.
  std::vector<ClockConfig> clocks;

  /// True when the plan can produce any fault at all.
  bool any() const;
};

/// One structured validation finding from ScenarioConfig::validate().
struct ConfigError {
  std::string field;    ///< dotted path, e.g. "zigbee[2].traffic.interval_us"
  std::string message;
};

std::string describe(const std::vector<ConfigError>& errors);

struct ScenarioConfig {
  std::vector<WifiNodeConfig> wifi;
  std::vector<ZigbeeNodeConfig> zigbee;
  /// Modulation / rate / protected channel the WiFi nodes use; the
  /// protected 2 MHz window is the one the ZigBee nodes occupy.
  core::SledzigConfig sledzig{};
  bool sledzig_enabled = true;
  /// RF impairment chain, folded into link budgets as its first-order SNR
  /// penalty (same treatment as coex::run_throughput_experiment).
  channel::ImpairmentConfig impairment{};
  mac::SymbolErrorModel error_model{};
  double shadowing_sigma_db = channel::kShadowingSigmaDb;
  /// Minimum SINR at a WiFi receiver below which an overlapped WiFi frame
  /// is lost (simple capture model for WiFi/WiFi collisions).
  double wifi_capture_sinr_db = 10.0;
  /// Per-node FIFO depth; arrivals beyond it are counted as queue drops.
  std::size_t queue_capacity = 64;
  double duration_s = 10.0;
  std::uint64_t seed = 1;
  /// Record the full per-transition trace in SimResult (the run digest is
  /// always computed, trace or not).
  bool record_trace = false;
  /// Metrics sink: per-run tallies (event counts, frame accounting, stale
  /// timers) flush here once at the end of run_scenario.  Observational
  /// only — nothing digest-checked reads metrics back.  nullptr disables.
  obs::Registry* metrics = &obs::Registry::global();
  /// Virtual-time span sink (per-node csma/tx spans, arrival/drop
  /// instants).  Single-writer: run_replications nulls it in its
  /// per-replication copies, so set it only for individual runs.
  obs::TraceLog* span_log = nullptr;
  /// Fault-injection plan (empty by default: no faults, digests untouched).
  FaultPlanConfig faults{};
  /// Runtime invariant checking (sim/invariants.h).  Disabled by default;
  /// the chaos suite and debug harnesses switch it on.
  InvariantConfig invariants{};

  /// Structural validation: rejects configs that would otherwise fail deep
  /// inside the engine or silently produce empty runs (zero/negative
  /// durations, empty topologies, NaN powers/positions, zero-rate traffic,
  /// malformed fault plans).  Returns every problem found, not just the
  /// first; empty means the config is runnable.  run_scenario and
  /// run_replications both call this up front and throw
  /// std::invalid_argument with describe(errors) on failure.
  std::vector<ConfigError> validate() const;
};

/// The paper's Fig 14-16 testbed as a two-node ScenarioConfig: one WiFi
/// link at `d_wz_m` from a ZigBee pair spaced `d_z_m`, the WiFi node
/// loaded at `wifi_duty_ratio` and the ZigBee mote running the paper's
/// ~63 Kbps closed-loop source.
ScenarioConfig two_node_paper_scenario(const core::SledzigConfig& sledzig,
                                       bool sledzig_on,
                                       double wifi_duty_ratio, double d_wz_m,
                                       double d_z_m, double duration_s,
                                       std::uint64_t seed);

}  // namespace sledzig::sim
