// One struct describes a full multi-node coexistence experiment: node
// placements, traffic loads, SledZig on/off, impairments, duration, seed.
//
// The engine (src/sim/engine.h) turns a ScenarioConfig into a timeline:
// every CCA verdict, deferral and packet overlap follows from the actual
// received power between the placed nodes, so the paper's headline effects
// (more ZigBee transmission opportunities, fewer corrupted packets under
// SledZig) emerge from the event sequence instead of closed-form loops.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "channel/impairments.h"
#include "channel/pathloss.h"
#include "common/units.h"
#include "control/controller.h"
#include "mac/wifi_timeline.h"
#include "mac/zigbee_csma.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/invariants.h"
#include "sledzig/significant_bits.h"

namespace sledzig::sim {

struct LinkCache;  // sim/link_cache.h: per-scenario mean received powers

/// Planar placement in metres (the paper's 10 m x 15 m office).
struct Position {
  double x_m = 0.0;
  double y_m = 0.0;
};

/// Euclidean distance, floored at 10 cm — the log-distance path-loss model
/// diverges for co-located nodes.
double distance_m(const Position& a, const Position& b);

enum class TrafficKind : std::uint8_t {
  kSaturated,  ///< always backlogged: next frame arrives at completion
  kCbr,        ///< open loop, fixed inter-arrival `interval_us`
  kPoisson,    ///< open loop, exponential inter-arrival, mean `interval_us`
  kDutyCycle,  ///< closed loop: idle gaps sized to hit `duty_ratio` airtime
};

struct TrafficConfig {
  TrafficKind kind = TrafficKind::kSaturated;
  /// kCbr period / kPoisson mean, microseconds.
  double interval_us = 10000.0;
  /// kDutyCycle target airtime fraction in (0, 1] (Fig 16's traffic ratio).
  double duty_ratio = 1.0;
};

/// One WiFi transmitter and the station it serves.
struct WifiNodeConfig {
  Position tx{};
  Position rx{};
  double usrp_gain = 15.0;  // maps to dBm via channel::wifi_tx_power_dbm
  mac::WifiMacParams mac{};
  TrafficConfig traffic{};
  /// 2.4 GHz WiFi channel 1..13.  0 is the legacy single-BSS default:
  /// channel 6, with every channel-0 ZigBee node sitting in the protected
  /// window — which reproduces the original single-channel power model
  /// bit-exactly (DESIGN.md §15).
  unsigned channel = 0;
};

/// One ZigBee transmitter/receiver pair.
struct ZigbeeNodeConfig {
  Position tx{};
  Position rx{};
  unsigned gain = 31;  // CC2420 PA level
  common::Dbm sensitivity_dbm{-85.0};
  mac::ZigbeeMacParams mac{};
  TrafficConfig traffic{TrafficKind::kCbr, 6346.0, 1.0};
  /// 802.15.4 channel 11..26.  0 is the legacy default: the protected
  /// 2 MHz window (the channel-0 WiFi centre plus the configured
  /// sledzig.channel offset), exactly where the paper's mote sits.
  unsigned channel = 0;
};

/// Hybrid-fidelity fast-path knobs (DESIGN.md §15).  The defaults are safe
/// for every scenario: segment runs are bit-exact, and the prune epsilon
/// sits `prune_floor_db` under the listener's noise floor with a 10-sigma
/// shadowing margin, so a pruned link could never have moved a SINR by a
/// measurable amount.
struct FastPathConfig {
  /// Segment-run delivery: the interferer set is piecewise-constant
  /// between transmission boundaries, so the worst interferer is resolved
  /// once per segment instead of once per 16 us symbol.  Exact: the
  /// per-symbol RNG stream and every delivery verdict are bit-identical
  /// to the per-symbol reference (turn off to time the reference path).
  bool segment_runs = true;
  /// Interference-graph pruning: zero out links whose received power can
  /// never come within `prune_floor_db` of the listener's noise floor
  /// (10-sigma shadowing margin included), so delivery and CCA iterate
  /// over O(degree) neighbors.  Conservative approximation; cross-checked
  /// when `cross_check` is set.
  bool prune = true;
  common::Db prune_floor_db{30.0};
  /// Debug: keep a shadow table of the true (unpruned) powers and throw
  /// std::logic_error if a pruned link ever shows up above the prune
  /// epsilon at a delivery — i.e. if it could have won worst-interferer.
  bool cross_check = false;
};

// --- fault model (DESIGN.md §14) -----------------------------------------
//
// A FaultPlanConfig declares *what can go wrong* during a run: explicit
// timed faults, seeded-random fault processes, bursty jammers, and per-node
// clock defects.  FaultScheduler (sim/faults.h) compiles the plan into a
// time-sorted action list that the engine replays as ordinary events on the
// (time, seq) queue, so every fault schedule is a pure function of
// (config, seed) and bit-identical for any thread count.

enum class FaultKind : std::uint8_t {
  kCrash,     ///< node dies: queue/CSMA state lost, in-flight TX aborted
  kReboot,    ///< node returns with a cold MAC and a fresh arrival chain
  kMuteOn,    ///< TX chain off: transmit attempts fail silently
  kMuteOff,
  kDeafOn,    ///< RX chain off: frames addressed to the node are lost
  kDeafOff,
  kJamOn,     ///< jammer burst begins (node = jammer index)
  kSurgeOn,   ///< traffic surge: arrival rate multiplied by `magnitude`
  kSurgeOff,
};

/// One explicitly scheduled fault window.  Window kinds (crash, mute, deaf,
/// jam, surge) use `duration_us`; the matching recovery action is emitted
/// by the compiler, so a plan never has to pair On/Off entries by hand.
struct TimedFault {
  FaultKind kind = FaultKind::kCrash;
  std::uint32_t node = 0;   ///< global node index (jammer index for kJamOn)
  double at_us = 0.0;
  /// Window length; <= 0 means "until the horizon" (no recovery emitted).
  double duration_us = 0.0;
  /// kSurgeOn arrival-rate multiplier; ignored by other kinds.
  double magnitude = 4.0;
};

/// A bursty wideband interferer with no MAC: it transmits whenever its
/// on/off process says so, ignoring the medium entirely.  Jammers join the
/// arbiter's power tables as extra pseudo-nodes, so CCA verdicts, WiFi
/// deferral and per-symbol delivery all see their energy through the same
/// path-loss model as real nodes.
struct JammerConfig {
  Position pos{};
  double usrp_gain = 15.0;  ///< same dBm mapping as a WiFi transmitter
  /// Seeded-random burst process: exponential on/off durations.  Both must
  /// be > 0 for the random schedule; leave 0 to drive the jammer purely
  /// from TimedFault kJamOn entries.
  double mean_on_us = 0.0;
  double mean_off_us = 0.0;
};

/// Seeded-random fault processes, applied per node.  Every rate is a
/// Poisson intensity in events per simulated second; windows draw
/// exponential lengths around the configured means.  All randomness comes
/// from derive_seed(config.seed, ...) streams, never from the nodes' MAC
/// or traffic RNGs, so enabling faults perturbs only what faults touch.
struct RandomFaultConfig {
  double crash_rate_per_s = 0.0;
  double mean_downtime_us = 50000.0;
  double mute_rate_per_s = 0.0;
  double mean_mute_us = 20000.0;
  double deaf_rate_per_s = 0.0;
  double mean_deaf_us = 20000.0;
  double surge_rate_per_s = 0.0;
  double mean_surge_us = 50000.0;
  double surge_magnitude = 4.0;
};

/// Per-node clock defects, applied at the timer layer: `drift_ppm`
/// stretches every MAC timer interval the node arms (a +100 ppm node's
/// backoffs run 0.01% long) and `skew_us` offsets its first arrival.
/// Event timestamps stay global truth — only the node's *own* timing warps.
struct ClockConfig {
  double skew_us = 0.0;
  double drift_ppm = 0.0;
};

struct FaultPlanConfig {
  std::vector<TimedFault> timed;
  std::vector<JammerConfig> jammers;
  RandomFaultConfig random{};
  /// Indexed by global node (WiFi first, then ZigBee); shorter vectors
  /// leave the remaining nodes with nominal clocks.
  std::vector<ClockConfig> clocks;

  /// True when the plan can produce any fault at all.
  bool any() const;
};

/// One structured validation finding from ScenarioConfig::validate().
struct ConfigError {
  std::string field;    ///< dotted path, e.g. "zigbee[2].traffic.interval_us"
  std::string message;
};

std::string describe(const std::vector<ConfigError>& errors);

struct ScenarioConfig {
  std::vector<WifiNodeConfig> wifi;
  std::vector<ZigbeeNodeConfig> zigbee;
  /// Modulation / rate / protected channel the WiFi nodes use; the
  /// protected 2 MHz window is the one the ZigBee nodes occupy.
  core::SledzigConfig sledzig{};
  bool sledzig_enabled = true;
  /// RF impairment chain, folded into link budgets as its first-order SNR
  /// penalty (same treatment as coex::run_throughput_experiment).
  channel::ImpairmentConfig impairment{};
  mac::SymbolErrorModel error_model{};
  common::Db shadowing_sigma_db = channel::kShadowingSigmaDb;
  /// Minimum SINR at a WiFi receiver below which an overlapped WiFi frame
  /// is lost (simple capture model for WiFi/WiFi collisions).
  common::Db wifi_capture_sinr_db{10.0};
  /// Per-node FIFO depth; arrivals beyond it are counted as queue drops.
  std::size_t queue_capacity = 64;
  double duration_s = 10.0;
  std::uint64_t seed = 1;
  /// Record the full per-transition trace in SimResult (the run digest is
  /// always computed, trace or not).
  bool record_trace = false;
  /// Metrics sink: per-run tallies (event counts, frame accounting, stale
  /// timers) flush here once at the end of run_scenario.  Observational
  /// only — nothing digest-checked reads metrics back.  nullptr disables.
  obs::Registry* metrics = &obs::Registry::global();
  /// Virtual-time span sink (per-node csma/tx spans, arrival/drop
  /// instants).  Single-writer: run_replications nulls it in its
  /// per-replication copies, so set it only for individual runs.
  obs::TraceLog* span_log = nullptr;
  /// Hybrid-fidelity fast path (DESIGN.md §15): segment-run delivery and
  /// interference-graph pruning.  Defaults on; the two-node flagship
  /// digests are bit-identical either way (asserted in tests).
  FastPathConfig fastpath{};
  /// Optional shared per-scenario link cache: the mean (pre-shadowing)
  /// received power of every transmitter at every listening point, which
  /// is seed-independent and therefore identical across replications.
  /// run_replications builds one and shares it across the fan-out; leave
  /// null to let each run build its own.  Rebuilt automatically if the
  /// dimensions don't match the topology, so a stale handle can degrade
  /// performance but never correctness.
  std::shared_ptr<const LinkCache> link_cache;
  /// Fault-injection plan (empty by default: no faults, digests untouched).
  FaultPlanConfig faults{};
  /// Runtime adaptive control plane (DESIGN.md §18): epoch observation of
  /// per-node counters driving SledZig engage/disengage, ZigBee channel
  /// hops and WiFi airtime shaping.  Disabled by default: a run without an
  /// active policy is byte-identical to one built before the control plane
  /// existed.
  control::ControlConfig control{};
  /// Runtime invariant checking (sim/invariants.h).  Disabled by default;
  /// the chaos suite and debug harnesses switch it on.
  InvariantConfig invariants{};

  /// Structural validation: rejects configs that would otherwise fail deep
  /// inside the engine or silently produce empty runs (zero/negative
  /// durations, empty topologies, NaN powers/positions, zero-rate traffic,
  /// malformed fault plans).  Returns every problem found, not just the
  /// first; empty means the config is runnable.  run_scenario and
  /// run_replications both call this up front and throw
  /// std::invalid_argument with describe(errors) on failure.
  std::vector<ConfigError> validate() const;
};

/// The paper's Fig 14-16 testbed as a two-node ScenarioConfig: one WiFi
/// link at `d_wz_m` from a ZigBee pair spaced `d_z_m`, the WiFi node
/// loaded at `wifi_duty_ratio` and the ZigBee mote running the paper's
/// ~63 Kbps closed-loop source.
// NOLINTBEGIN(bugprone-easily-swappable-parameters)
ScenarioConfig two_node_paper_scenario(const core::SledzigConfig& sledzig,
                                       bool sledzig_on,
                                       double wifi_duty_ratio, double d_wz_m,
                                       double d_z_m, double duration_s,
                                       std::uint64_t seed);
// NOLINTEND(bugprone-easily-swappable-parameters)

/// The control-plane A/B testbed (DESIGN.md §18): a heavily loaded WiFi
/// BSS on channel 1 with four ZigBee pairs parked in its four overlap
/// windows, plus a lightly loaded BSS on channel 11 whose quiet windows
/// are the natural hop targets.  `controlled` arms the runtime policies
/// (ZigBee channel hopping plus SledZig engage/disengage hysteresis);
/// false is the static arm the paper evaluates — SledZig permanently on,
/// no controller.  Both arms share topology, traffic and seed, so any
/// metric delta is the controller's doing.
ScenarioConfig control_ab_scenario(bool controlled, double duration_s,
                                   std::uint64_t seed);

/// A generated campus: `ap_grid_x` x `ap_grid_y` WiFi APs on a
/// `spacing_m` grid cycling channels 1/6/11 (the classic non-overlapping
/// plan), each surrounded by `sensors_per_ap` ZigBee pairs cycling the
/// four 802.15.4 channels that overlap their AP's 20 MHz band.  APs run a
/// closed-loop 35% duty load; sensors run a moderate CBR.  This is the
/// dense multi-channel topology bench_sim_scaling pushes past 1000 nodes
/// (EXPERIMENTS.md).
// NOLINTBEGIN(bugprone-easily-swappable-parameters)
ScenarioConfig campus_scenario(std::size_t ap_grid_x, std::size_t ap_grid_y,
                               std::size_t sensors_per_ap, double spacing_m,
                               double duration_s, std::uint64_t seed);
// NOLINTEND(bugprone-easily-swappable-parameters)

}  // namespace sledzig::sim
