// One struct describes a full multi-node coexistence experiment: node
// placements, traffic loads, SledZig on/off, impairments, duration, seed.
//
// The engine (src/sim/engine.h) turns a ScenarioConfig into a timeline:
// every CCA verdict, deferral and packet overlap follows from the actual
// received power between the placed nodes, so the paper's headline effects
// (more ZigBee transmission opportunities, fewer corrupted packets under
// SledZig) emerge from the event sequence instead of closed-form loops.
#pragma once

#include <cstdint>
#include <vector>

#include "channel/impairments.h"
#include "channel/pathloss.h"
#include "mac/wifi_timeline.h"
#include "mac/zigbee_csma.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sledzig/significant_bits.h"

namespace sledzig::sim {

/// Planar placement in metres (the paper's 10 m x 15 m office).
struct Position {
  double x_m = 0.0;
  double y_m = 0.0;
};

/// Euclidean distance, floored at 10 cm — the log-distance path-loss model
/// diverges for co-located nodes.
double distance_m(const Position& a, const Position& b);

enum class TrafficKind : std::uint8_t {
  kSaturated,  ///< always backlogged: next frame arrives at completion
  kCbr,        ///< open loop, fixed inter-arrival `interval_us`
  kPoisson,    ///< open loop, exponential inter-arrival, mean `interval_us`
  kDutyCycle,  ///< closed loop: idle gaps sized to hit `duty_ratio` airtime
};

struct TrafficConfig {
  TrafficKind kind = TrafficKind::kSaturated;
  /// kCbr period / kPoisson mean, microseconds.
  double interval_us = 10000.0;
  /// kDutyCycle target airtime fraction in (0, 1] (Fig 16's traffic ratio).
  double duty_ratio = 1.0;
};

/// One WiFi transmitter and the station it serves.
struct WifiNodeConfig {
  Position tx{};
  Position rx{};
  double usrp_gain = 15.0;  // maps to dBm via channel::wifi_tx_power_dbm
  mac::WifiMacParams mac{};
  TrafficConfig traffic{};
};

/// One ZigBee transmitter/receiver pair.
struct ZigbeeNodeConfig {
  Position tx{};
  Position rx{};
  unsigned gain = 31;  // CC2420 PA level
  double sensitivity_dbm = -85.0;
  mac::ZigbeeMacParams mac{};
  TrafficConfig traffic{TrafficKind::kCbr, 6346.0, 1.0};
};

struct ScenarioConfig {
  std::vector<WifiNodeConfig> wifi;
  std::vector<ZigbeeNodeConfig> zigbee;
  /// Modulation / rate / protected channel the WiFi nodes use; the
  /// protected 2 MHz window is the one the ZigBee nodes occupy.
  core::SledzigConfig sledzig{};
  bool sledzig_enabled = true;
  /// RF impairment chain, folded into link budgets as its first-order SNR
  /// penalty (same treatment as coex::run_throughput_experiment).
  channel::ImpairmentConfig impairment{};
  mac::SymbolErrorModel error_model{};
  double shadowing_sigma_db = channel::kShadowingSigmaDb;
  /// Minimum SINR at a WiFi receiver below which an overlapped WiFi frame
  /// is lost (simple capture model for WiFi/WiFi collisions).
  double wifi_capture_sinr_db = 10.0;
  /// Per-node FIFO depth; arrivals beyond it are counted as queue drops.
  std::size_t queue_capacity = 64;
  double duration_s = 10.0;
  std::uint64_t seed = 1;
  /// Record the full per-transition trace in SimResult (the run digest is
  /// always computed, trace or not).
  bool record_trace = false;
  /// Metrics sink: per-run tallies (event counts, frame accounting, stale
  /// timers) flush here once at the end of run_scenario.  Observational
  /// only — nothing digest-checked reads metrics back.  nullptr disables.
  obs::Registry* metrics = &obs::Registry::global();
  /// Virtual-time span sink (per-node csma/tx spans, arrival/drop
  /// instants).  Single-writer: run_replications nulls it in its
  /// per-replication copies, so set it only for individual runs.
  obs::TraceLog* span_log = nullptr;
};

/// The paper's Fig 14-16 testbed as a two-node ScenarioConfig: one WiFi
/// link at `d_wz_m` from a ZigBee pair spaced `d_z_m`, the WiFi node
/// loaded at `wifi_duty_ratio` and the ZigBee mote running the paper's
/// ~63 Kbps closed-loop source.
ScenarioConfig two_node_paper_scenario(const core::SledzigConfig& sledzig,
                                       bool sledzig_on,
                                       double wifi_duty_ratio, double d_wz_m,
                                       double d_z_m, double duration_s,
                                       std::uint64_t seed);

}  // namespace sledzig::sim
