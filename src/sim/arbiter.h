// Airtime arbiter: the ledger of every transmission in a run, plus the
// power-driven medium queries the MAC state machines are advanced with.
//
// All queries resolve through received power between placed nodes — the
// engine precomputes a (listening point x transmitter) table from
// channel::pathloss and the PHY-measured in-band offsets
// (coex::wifi_inband_power), so a SledZig payload really does present
// 20+ dB less energy to a ZigBee CCA than a normal payload, while the
// preamble stays at full power.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/units.h"

namespace sledzig::sim {

enum class NodeKind : std::uint8_t { kWifi, kZigbee, kJammer };

/// Received power of one transmitter at one listening point, split by
/// frame segment, in the listener's measurement band (2 MHz for ZigBee
/// listeners, the full 20 MHz for WiFi listeners).
struct SegmentPower {
  common::MilliWatt payload_mw{};
  common::MilliWatt preamble_mw{};  // == payload_mw for ZigBee transmitters
};

struct Transmission {
  std::uint32_t node = 0;  // global node index
  NodeKind kind = NodeKind::kWifi;
  double start_us = 0.0;
  double payload_start_us = 0.0;  // == start_us for ZigBee frames
  double end_us = 0.0;
  bool active = false;
  /// Cut short by a node crash: the already-queued kTxEnd is stale and the
  /// engine skips delivery when it pops.
  bool aborted = false;
};

/// Power tables the arbiter resolves transmissions against, for N nodes.
/// Listening points are indexed 0..N-1 for node transmitter positions
/// (CCA / energy detect) and N..2N-1 for node receiver positions
/// (delivery): power[point * N + tx_node].
struct ArbiterTables {
  std::size_t num_nodes = 0;
  std::vector<SegmentPower> power;        // 2N x N
  std::vector<char> audible;  // N x N: ED-visible at tx point
  std::vector<common::MilliWatt> cca_noise_mw;     // per node, in its CCA band
  std::vector<common::Dbm> cca_threshold_dbm;      // per node
  /// Interference-graph index (fast path only): bit `tx` of row `point`
  /// is set iff power[point * num_nodes + tx] is nonzero.  At dense node
  /// counts the power table outgrows every cache level while this index
  /// stays resident, so medium queries test the bit before touching the
  /// table.  Skipping an exactly-zero entry changes no arithmetic (it
  /// contributes exactly 0.0 energy and can never win a strict-> power
  /// comparison), so queries stay bit-identical.  Empty (bit_words == 0)
  /// when the fast path is off — queries then scan the table directly,
  /// which is the pre-graph behaviour.
  std::vector<std::uint64_t> nonzero_bits;  // 2N x bit_words
  std::size_t bit_words = 0;                // (num_nodes + 63) / 64, or 0
  /// Spectral coupling component per node (see LinkCache::comp): the
  /// arbiter keeps one transmission ledger per component and medium
  /// queries scan only the listener's — exact, because cross-component
  /// received power is 0 mW everywhere.  Empty means "one component"
  /// (legacy / fast path off): a single global ledger, scanned in full.
  std::vector<std::uint32_t> comp;
  std::size_t num_comps = 1;
};

/// Everything an Arbiter owns, as recyclable storage: the power tables and
/// the ledger vectors.  A run hands its storage back via release() and the
/// next run adopts the capacity through the storage constructor — only
/// capacity survives (tables are refilled, ledgers cleared), so reuse can
/// never leak state between runs.
struct ArbiterStorage {
  ArbiterTables tables;
  std::vector<Transmission> txs;
  std::vector<std::uint32_t> active;
  std::vector<std::vector<std::uint32_t>> by_comp;
};

class Arbiter {
 public:
  explicit Arbiter(ArbiterTables tables);
  /// Adopts recycled storage: `storage.tables` must already be filled for
  /// this run; the ledger vectors are cleared (capacity kept).
  explicit Arbiter(ArbiterStorage storage);
  /// Hands all storage back for reuse.  The arbiter is left empty.
  ArbiterStorage release();

  /// Registers a transmission starting now.  Starts are non-decreasing
  /// (event time only moves forward), which keeps the ledger sorted.
  /// The time triple is ordered (start <= payload_start <= end), so the
  /// params are not really swappable despite sharing a type.
  // NOLINTBEGIN(bugprone-easily-swappable-parameters)
  std::uint32_t begin_tx(std::uint32_t node, NodeKind kind, double start_us,
                         double payload_start_us, double end_us);
  // NOLINTEND(bugprone-easily-swappable-parameters)
  void end_tx(std::uint32_t tx_id);

  /// Retires a transmission early (the transmitter died mid-air at `now`):
  /// truncates its end to `now` so later medium queries stop seeing its
  /// energy, and marks it aborted so the stale kTxEnd is skipped.  No-op on
  /// an already-finished transmission.
  void abort_tx(std::uint32_t tx_id, double now_us);

  const Transmission& tx(std::uint32_t tx_id) const { return txs_[tx_id]; }
  std::size_t tx_count() const { return txs_.size(); }

  /// Energy detect at `listener`'s transmitter position: is any audible
  /// foreign transmission on air at `t`?  (Single-source ED: a source is
  /// audible when it alone clears the listener's threshold — sub-threshold
  /// sources summing past it is ignored, which matches the 20+ dB margins
  /// of the paper's geometries.)
  bool busy_at(std::uint32_t listener, double t_us) const;

  /// 802.15.4 CCA-ED over [t0, t1]: *time-averaged* in-band energy at the
  /// listener against its threshold.  Averaging is why a 16-20 us
  /// full-power WiFi preamble inside a 128 us window of power-reduced
  /// payload barely moves the needle (paper section IV-F).
  bool zigbee_cca_busy(std::uint32_t listener, double t0_us,
                       double t1_us) const;

  /// Transmission ids, in start order, from `listener`'s coupling
  /// component possibly overlapping [t0, t1] (callers re-check exact
  /// endpoints).  With one component this is the whole ledger — the
  /// pre-component behaviour.
  std::pair<const std::uint32_t*, const std::uint32_t*> overlap_ids(
      std::uint32_t listener, double t0_us, double t1_us) const;

  /// Received power of `tx_node` at `listener`'s receiver position.
  const SegmentPower& rx_power(std::uint32_t listener,
                               std::uint32_t tx_node) const {
    return tables_.power[(tables_.num_nodes + listener) * tables_.num_nodes +
                         tx_node];
  }
  /// ... at `listener`'s transmitter (CCA) position.
  const SegmentPower& cca_power(std::uint32_t listener,
                                std::uint32_t tx_node) const {
    return tables_.power[listener * tables_.num_nodes + tx_node];
  }

  bool audible(std::uint32_t listener, std::uint32_t tx_node) const {
    return tables_.audible[listener * tables_.num_nodes + tx_node] != 0;
  }

  /// Control-plane hook (DESIGN.md §18): the engine retunes power /
  /// audibility / index entries in place when a runtime action changes the
  /// spectrum picture (SledZig toggle, ZigBee channel hop).  Mutations are
  /// the engine's responsibility to keep consistent (bits must track
  /// nonzero powers); nothing else may write through this.
  ArbiterTables& mutable_tables() { return tables_; }

  /// Was the interference-graph bit index built for this run?
  bool has_link_index() const { return tables_.bit_words != 0; }
  /// Index queries (only meaningful when has_link_index()): is the link's
  /// table power nonzero at the listener's receiver / CCA point?
  bool rx_nonzero(std::uint32_t listener, std::uint32_t tx_node) const {
    return link_bit(tables_.num_nodes + listener, tx_node);
  }
  bool cca_nonzero(std::uint32_t listener, std::uint32_t tx_node) const {
    return link_bit(listener, tx_node);
  }

 private:
  bool link_bit(std::size_t point, std::size_t tx_node) const {
    return (tables_.nonzero_bits[point * tables_.bit_words + (tx_node >> 6)] >>
            (tx_node & 63)) &
           1u;
  }
  std::uint32_t comp_of(std::uint32_t node) const {
    return tables_.comp.empty() ? 0 : tables_.comp[node];
  }

  ArbiterTables tables_;
  std::vector<Transmission> txs_;  // sorted by start_us (event order)
  std::vector<std::uint32_t> active_;
  /// Per-component transmission ids, each in start order (appended as
  /// transmissions begin, and starts are non-decreasing).
  std::vector<std::vector<std::uint32_t>> by_comp_;
  double max_duration_us_ = 0.0;
};

}  // namespace sledzig::sim
