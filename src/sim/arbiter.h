// Airtime arbiter: the ledger of every transmission in a run, plus the
// power-driven medium queries the MAC state machines are advanced with.
//
// All queries resolve through received power between placed nodes — the
// engine precomputes a (listening point x transmitter) table from
// channel::pathloss and the PHY-measured in-band offsets
// (coex::wifi_inband_power), so a SledZig payload really does present
// 20+ dB less energy to a ZigBee CCA than a normal payload, while the
// preamble stays at full power.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

namespace sledzig::sim {

enum class NodeKind : std::uint8_t { kWifi, kZigbee, kJammer };

/// Received power of one transmitter at one listening point, split by
/// frame segment, in the listener's measurement band (2 MHz for ZigBee
/// listeners, the full 20 MHz for WiFi listeners), in mW.
struct SegmentPower {
  double payload_mw = 0.0;
  double preamble_mw = 0.0;  // == payload_mw for ZigBee transmitters
};

struct Transmission {
  std::uint32_t node = 0;  // global node index
  NodeKind kind = NodeKind::kWifi;
  double start_us = 0.0;
  double payload_start_us = 0.0;  // == start_us for ZigBee frames
  double end_us = 0.0;
  bool active = false;
  /// Cut short by a node crash: the already-queued kTxEnd is stale and the
  /// engine skips delivery when it pops.
  bool aborted = false;
};

/// Power tables the arbiter resolves transmissions against, for N nodes.
/// Listening points are indexed 0..N-1 for node transmitter positions
/// (CCA / energy detect) and N..2N-1 for node receiver positions
/// (delivery): power[point * N + tx_node].
struct ArbiterTables {
  std::size_t num_nodes = 0;
  std::vector<SegmentPower> power;        // 2N x N
  std::vector<char> audible;              // N x N: ED-visible at tx point
  std::vector<double> cca_noise_mw;       // per node, in its CCA band
  std::vector<double> cca_threshold_dbm;  // per node
};

class Arbiter {
 public:
  explicit Arbiter(ArbiterTables tables);

  /// Registers a transmission starting now.  Starts are non-decreasing
  /// (event time only moves forward), which keeps the ledger sorted.
  std::uint32_t begin_tx(std::uint32_t node, NodeKind kind, double start_us,
                         double payload_start_us, double end_us);
  void end_tx(std::uint32_t tx_id);

  /// Retires a transmission early (the transmitter died mid-air at `now`):
  /// truncates its end to `now` so later medium queries stop seeing its
  /// energy, and marks it aborted so the stale kTxEnd is skipped.  No-op on
  /// an already-finished transmission.
  void abort_tx(std::uint32_t tx_id, double now_us);

  const Transmission& tx(std::uint32_t tx_id) const { return txs_[tx_id]; }
  std::size_t tx_count() const { return txs_.size(); }

  /// Energy detect at `listener`'s transmitter position: is any audible
  /// foreign transmission on air at `t`?  (Single-source ED: a source is
  /// audible when it alone clears the listener's threshold — sub-threshold
  /// sources summing past it is ignored, which matches the 20+ dB margins
  /// of the paper's geometries.)
  bool busy_at(std::uint32_t listener, double t_us) const;

  /// 802.15.4 CCA-ED over [t0, t1]: *time-averaged* in-band energy at the
  /// listener against its threshold.  Averaging is why a 16-20 us
  /// full-power WiFi preamble inside a 128 us window of power-reduced
  /// payload barely moves the needle (paper section IV-F).
  bool zigbee_cca_busy(std::uint32_t listener, double t0_us,
                       double t1_us) const;

  /// Ledger indices [lo, hi) of transmissions possibly overlapping
  /// [t0, t1] (callers re-check exact endpoints).
  std::pair<std::size_t, std::size_t> overlap_range(double t0_us,
                                                    double t1_us) const;

  /// Received power of `tx_node` at `listener`'s receiver position.
  const SegmentPower& rx_power(std::uint32_t listener,
                               std::uint32_t tx_node) const {
    return tables_.power[(tables_.num_nodes + listener) * tables_.num_nodes +
                         tx_node];
  }
  /// ... at `listener`'s transmitter (CCA) position.
  const SegmentPower& cca_power(std::uint32_t listener,
                                std::uint32_t tx_node) const {
    return tables_.power[listener * tables_.num_nodes + tx_node];
  }

  bool audible(std::uint32_t listener, std::uint32_t tx_node) const {
    return tables_.audible[listener * tables_.num_nodes + tx_node] != 0;
  }

 private:
  ArbiterTables tables_;
  std::vector<Transmission> txs_;  // sorted by start_us (event order)
  std::vector<std::uint32_t> active_;
  double max_duration_us_ = 0.0;
};

}  // namespace sledzig::sim
