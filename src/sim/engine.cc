#include "sim/engine.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <deque>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>

#include "channel/pathloss.h"
#include "common/rng.h"
#include "common/seed_domains.h"
#include "common/units.h"
#include "control/controller.h"
#include "obs/profile.h"
#include "sim/arbiter.h"
#include "sim/event_queue.h"
#include "sim/faults.h"
#include "sim/invariants.h"
#include "sim/link_cache.h"
#include "sim/traffic.h"
#include "sledzig/encoder.h"
#include "wifi/phy_params.h"
#include "zigbee/cc2420.h"
#include "zigbee/chips.h"

namespace sledzig::sim {
namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t fnv_mix(std::uint64_t digest, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    digest = (digest ^ (value & 0xffu)) * kFnvPrime;
    value >>= 8;
  }
  return digest;
}

/// Virtual µs for the span log (deterministic rounding; observational
/// only, the digest keeps full double precision).
std::uint64_t vus(double t) {
  return static_cast<std::uint64_t>(std::llround(t));
}

/// One frame-relevant interferer, staged flat for the delivery scan: the
/// transmission's segment times plus its received powers and the
/// precomputed symbol error probabilities it would impose.  A frame's
/// staging (a few dozen entries) lives in L1 across every window the
/// delivery loop evaluates, where chasing the ledger and the power table
/// per window re-missed cache on each of the ~40 entries every time.
/// Kept in ledger (start-time) order so the worst-interferer scan visits
/// entries exactly as the per-symbol reference does.
struct RelevantTx {
  double start_us;
  double payload_start_us;
  double end_us;
  common::MilliWatt preamble_mw;
  common::MilliWatt payload_mw;
  double p_err_preamble;
  double p_err_payload;
};

/// Recyclable heap storage for one run: the event heap, the arbiter's
/// tables and ledger, the perr cache, the notify adjacency lists, and the
/// delivery scratch vectors.  A run adopts the capacity on entry and hands
/// it back on exit; every buffer is resized or cleared before use, so only
/// *capacity* survives between runs — contents never do, which keeps
/// workspace reuse invisible to the digest.
struct RunWorkspace {
  std::vector<Event> events;
  ArbiterStorage arb;
  std::vector<double> perr;
  std::vector<std::uint32_t> adj;      // CSR: audible wifi listeners per tx
  std::vector<std::uint32_t> adj_off;  // num_total + 1 offsets into adj
  std::vector<RelevantTx> rel;         // delivery scratch: staged interferers
  std::vector<double> bounds;          // delivery scratch: segment boundaries
};

/// Does a prebuilt cache describe this config's topology?  (Guards against
/// a stale shared cache being carried into a differently-shaped scenario.)
bool cache_matches(const LinkCache* cache, const ScenarioConfig& cfg) {
  return cache != nullptr && cache->num_wifi == cfg.wifi.size() &&
         cache->num_nodes == cfg.wifi.size() + cfg.zigbee.size() &&
         cache->num_total ==
             cfg.wifi.size() + cfg.zigbee.size() + cfg.faults.jammers.size();
}

/// Everything one run owns.  Constructed per call, so run_scenario holds
/// no global state and replications can fan out freely.
class Engine {
 public:
  Engine(const ScenarioConfig& cfg, RunWorkspace& ws);
  SimResult run();

 private:
  struct WifiNode {
    WifiNodeConfig cfg;
    mac::WifiCsmaMachine machine;
    TrafficSource traffic;
    std::deque<double> queue;  // arrival times of queued frames
    std::uint64_t token = 0;
    bool serving = false;  // a frame is between frame_ready and completion
    NodeStats stats;
    double burst_us = 0.0;
    double bits_per_frame = 0.0;
    // Own frame's power at the served station.
    common::MilliWatt signal_mw{};
    double serve_start_us = 0.0;  // when the head frame entered CSMA
    /// Payload bits actually delivered, accumulated at the per-frame rate
    /// current at delivery time — the throughput source of truth when the
    /// control plane can retoggle SledZig (and the frame rate) mid-run.
    double delivered_bits = 0.0;
  };

  struct ZigbeeNode {
    ZigbeeNodeConfig cfg;
    mac::ZigbeeCsmaMachine machine;
    TrafficSource traffic;
    common::Rng delivery_rng;
    std::deque<double> queue;
    std::uint64_t token = 0;
    bool serving = false;
    NodeStats stats;
    double airtime_us = 0.0;  // frame duration
    double bits_per_frame = 0.0;
    common::MilliWatt signal_mw{};
    double sensitivity_loss = 0.0;
    double p_err_idle = 0.0;
    double serve_start_us = 0.0;  // when the head frame (re-)entered CSMA
    // CCA assessment tallies, observed by the control plane as per-epoch
    // deltas (a deterministic in-engine stand-in for a busy-channel scan).
    std::uint64_t cca_busy_count = 0;
    std::uint64_t cca_clear_count = 0;
  };

  /// Fault-layer state for one real node, kept beside (not inside) the node
  /// structs so the aggregate initializers above stay untouched.
  struct NodeFaultState {
    bool alive = true;
    bool muted = false;  ///< TX chain off: transmit attempts fail silently
    bool deaf = false;   ///< RX chain off: frames at this receiver are lost
    /// Arrival-chain epoch: a crash bumps it, orphaning every pending
    /// kArrival carrying the old value (mirror of the timer token).
    std::uint64_t arrival_epoch = 0;
    /// A scheduled step for this node was suppressed because it landed past
    /// the horizon — the liveness invariant's alibi for `serving` at end.
    bool horizon_cut = false;
    double drift = 1.0;    ///< timer-interval stretch (1 + drift_ppm * 1e-6)
    double skew_us = 0.0;  ///< first-arrival clock offset
    std::uint32_t active_tx = UINT32_MAX;  ///< in-flight ledger id, if any
  };

  std::uint32_t global(std::size_t wifi_i) const {
    return static_cast<std::uint32_t>(wifi_i);
  }
  std::uint32_t global_z(std::size_t zig_j) const {
    return static_cast<std::uint32_t>(num_wifi_ + zig_j);
  }
  std::uint32_t jammer_index(std::size_t jam_k) const {
    return static_cast<std::uint32_t>(num_nodes_ + jam_k);
  }

  void trace(double t, std::uint32_t node, TraceType type,
             std::int32_t aux = 0);
  void push_arrival(std::uint32_t node, double t);
  void push_timer(std::uint32_t node, double t, std::uint64_t token);

  void on_arrival(std::uint32_t node, double t);
  void on_wifi_timer(std::size_t i, double t);
  void on_zigbee_timer(std::size_t j, double t);
  void on_tx_end(std::uint32_t tx_id, double t);
  void on_fault(const FaultAction& action, double t);
  void on_control(double t);

  // --- control-plane actuation (DESIGN.md §18) ---
  void apply_sledzig(bool engage, double t);
  void apply_hop(std::size_t j, unsigned channel, double t);
  /// Recomputes one power-table entry (and its audibility / index bit) for
  /// the current channels and scheme, re-applying the pair's stored
  /// shadowing jitter — bit-identical to what the constructor fill would
  /// have produced for the same spectrum picture.
  void retune_pair(ArbiterTables& tables, std::size_t point, std::size_t tx);
  void rebuild_adjacency(const ArbiterTables& tables);
  double zig_symbol_perr(const ZigbeeNode& zn, common::MilliWatt interference,
                         bool preamble) const;
  /// Refreshes perr_ row j from the current rx-point power row (used after
  /// a retune; zero-power links recompute to the exact same shared values).
  void refresh_zigbee_perr_row(std::size_t j);

  void crash_node(std::uint32_t g, double t);
  void reboot_node(std::uint32_t g, double t);
  void start_jam_burst(std::size_t jam_k, double t, double len_us);

  void apply_wifi_step(std::size_t i, mac::WifiCsmaMachine::Step step,
                       double now);
  void apply_zigbee_step(std::size_t j, mac::ZigbeeCsmaMachine::Step step,
                         double now);
  void serve_next(std::uint32_t node, double t);
  void start_wifi_tx(std::size_t i, double now);
  void start_zigbee_tx(std::size_t j, double now);
  void notify_busy(std::uint32_t tx_node, double now);
  void notify_idle(double now);

  bool wifi_frame_delivered(std::size_t i, const Transmission& tx) const;
  bool zigbee_frame_delivered(std::size_t j, const Transmission& tx);

  double perr(std::size_t zig_j, std::uint32_t tx_node, bool preamble) const {
    return perr_[(zig_j * num_total_ + tx_node) * 2 + (preamble ? 1 : 0)];
  }

  /// A node's own-clock mapping of an absolute step time: the interval the
  /// MAC asked for, stretched by the node's drift factor.
  double warp(std::uint32_t g, double now, double at) const {
    const double d = fstate_[g].drift;
    return d == 1.0 ? at : now + (at - now) * d;
  }

  ScenarioConfig cfg_;
  double duration_us_;
  std::size_t num_wifi_;
  std::size_t num_zigbee_;
  std::size_t num_nodes_;
  std::size_t num_jammers_;
  std::size_t num_total_;  // nodes + jammer pseudo-nodes (power-table dim)
  std::vector<WifiNode> wifi_;
  std::vector<ZigbeeNode> zigbee_;
  std::vector<NodeFaultState> fstate_;  // per real node
  std::vector<FaultAction> actions_;    // compiled fault schedule
  std::vector<double> perr_;  // M x num_total x {payload, preamble segment}
  common::MilliWatt noise20_mw_;
  common::MilliWatt noise2_mw_;
  common::Db impair_penalty_db_;
  std::shared_ptr<const LinkCache> cache_;
  /// True powers of pruned links, filled only under fastpath.cross_check
  /// (same 2T x T layout as the arbiter tables; empty otherwise).
  std::vector<SegmentPower> shadow_;
  RunWorkspace* ws_;
  Arbiter arbiter_;
  EventQueue queue_;
  SimInvariants inv_;
  std::uint64_t digest_ = kFnvOffset;
  std::uint64_t events_ = 0;
  // Per-run tallies, flushed to cfg_.metrics once at the end of run() so
  // the event loop never touches the registry.
  std::uint64_t arrival_events_ = 0;
  std::uint64_t timer_events_ = 0;
  std::uint64_t tx_end_events_ = 0;
  std::uint64_t fault_events_ = 0;
  std::uint64_t stale_timers_ = 0;
  std::uint64_t stale_arrivals_ = 0;
  std::uint64_t crashes_ = 0;
  std::uint64_t reboots_ = 0;
  std::uint64_t jam_bursts_ = 0;
  std::uint64_t tx_aborted_ = 0;
  std::uint64_t tx_muted_ = 0;
  std::vector<TraceEvent> trace_;

  // --- control plane (DESIGN.md §18), inert unless cfg.control.active() ---
  /// Cumulative counter values at the previous epoch boundary; the epoch
  /// observation is the delta against these.
  struct PrevCounters {
    std::uint64_t generated = 0;
    std::uint64_t sent = 0;
    std::uint64_t delivered = 0;
    std::uint64_t retry_exhausted = 0;
    std::uint64_t cca_busy = 0;
    std::uint64_t cca_clear = 0;
    double airtime_us = 0.0;
  };
  bool control_active_ = false;
  bool sledzig_on_ = false;  ///< runtime scheme (starts at cfg.sledzig_enabled)
  std::unique_ptr<control::Controller> controller_;
  std::uint64_t control_epoch_ = 0;
  std::vector<control::NodeObservation> obs_wifi_, obs_zigbee_;
  std::vector<PrevCounters> prev_wifi_, prev_zigbee_;
  /// Current band centre per real node (hops update it); only filled when
  /// the control plane is active.
  std::vector<double> center_hz_;
  /// Stored shadowing jitter per (point, tx) pair, 2T x T, so a retuned
  /// entry re-applies the exact draw the constructor fill consumed.  Hops
  /// overwrite affected pairs with the pure-function kControl draw.  Only
  /// allocated when a policy can retune (SledZig toggle / channel hop).
  std::vector<double> jitter_db_;
  /// Traffic-rate factors composed multiplicatively per node: the fault
  /// layer's surge factor and the control plane's shaping factor must not
  /// clobber each other.  Allocated only when the control plane is active;
  /// otherwise the surge handler writes the traffic source directly
  /// (legacy path, bit-identical).
  std::vector<double> surge_scale_;  // per real node
  std::vector<double> shape_scale_;  // per wifi node
  std::uint64_t control_events_ = 0;
  std::uint64_t control_actions_ = 0;

  void flush_metrics() const;
};

Engine::Engine(const ScenarioConfig& cfg, RunWorkspace& ws)
    : cfg_(cfg),
      duration_us_(cfg.duration_s * 1e6),
      num_wifi_(cfg.wifi.size()),
      num_zigbee_(cfg.zigbee.size()),
      num_nodes_(num_wifi_ + num_zigbee_),
      num_jammers_(cfg.faults.jammers.size()),
      num_total_(num_nodes_ + num_jammers_),
      noise20_mw_(common::to_mw(channel::kNoiseFloor20MhzDbm)),
      noise2_mw_(common::to_mw(channel::kNoiseFloor2MhzDbm)),
      impair_penalty_db_(cfg.impairment.snr_penalty_db()),
      ws_(&ws),
      arbiter_(ArbiterTables{}),
      queue_(std::move(ws.events)),
      inv_(cfg.invariants, cfg.seed) {
  if (!(cfg_.duration_s > 0.0)) {
    throw std::invalid_argument("ScenarioConfig: duration_s must be > 0");
  }
  if (cfg_.queue_capacity < 1) {
    throw std::invalid_argument("ScenarioConfig: queue_capacity must be >= 1");
  }

  // --- nodes, their machines and RNG streams (all index-derived) ---
  wifi_.reserve(num_wifi_);
  for (std::size_t i = 0; i < num_wifi_; ++i) {
    const auto& nc = cfg_.wifi[i];
    const std::uint64_t g = global(i);
    const double burst = nc.mac.preamble_us + nc.mac.airtime_us;
    const double csma_gap =
        nc.mac.difs_us +
        nc.mac.slot_us * static_cast<double>(nc.mac.cw - 1) / 2.0;
    double bits = static_cast<double>(wifi::data_bits_per_symbol(
                      cfg_.sledzig.modulation, cfg_.sledzig.rate)) *
                  (nc.mac.airtime_us / wifi::kSymbolDurationUs);
    if (cfg_.sledzig_enabled) bits *= 1.0 - core::throughput_loss(cfg_.sledzig);
    wifi_.push_back(WifiNode{
        nc,
        mac::WifiCsmaMachine(nc.mac, common::derive_seed(cfg_.seed, 4 * g)),
        TrafficSource(nc.traffic, burst, csma_gap,
                      common::derive_seed(cfg_.seed, 4 * g + 2)),
        {},
        0,
        false,
        {},
        burst,
        bits,
        {}});
  }
  zigbee_.reserve(num_zigbee_);
  for (std::size_t j = 0; j < num_zigbee_; ++j) {
    const auto& nc = cfg_.zigbee[j];
    const std::uint64_t g = global_z(j);
    const double airtime = mac::zigbee_frame_airtime_us(nc.mac.payload_octets);
    zigbee_.push_back(ZigbeeNode{
        nc,
        mac::ZigbeeCsmaMachine(nc.mac, common::derive_seed(cfg_.seed, 4 * g)),
        TrafficSource(nc.traffic, airtime, 0.0,
                      common::derive_seed(cfg_.seed, 4 * g + 2)),
        common::Rng(common::derive_seed(cfg_.seed, 4 * g + 1)),
        {},
        0,
        false,
        {},
        airtime,
        static_cast<double>(nc.mac.payload_octets) * 8.0,
        {},
        0.0,
        0.0});
  }

  // --- fault layer: per-node state, clocks and the compiled schedule ---
  fstate_.assign(num_nodes_, NodeFaultState{});
  for (std::size_t n = 0;
       n < std::min(cfg_.faults.clocks.size(), num_nodes_); ++n) {
    fstate_[n].skew_us = cfg_.faults.clocks[n].skew_us;
    fstate_[n].drift = 1.0 + cfg_.faults.clocks[n].drift_ppm * 1e-6;
  }
  if (cfg_.faults.any()) {
    actions_ = FaultScheduler::compile(cfg_.faults, cfg_.seed, duration_us_,
                                       num_nodes_);
  }

  // --- control plane: observation buffers, jitter capture, contexts ---
  // All of it is inert (nothing allocated, no branch taken anywhere on the
  // hot path) unless a policy is enabled, so legacy runs keep their exact
  // event streams and digests.
  control_active_ = cfg_.control.active();
  sledzig_on_ = cfg_.sledzig_enabled;
  const bool needs_retune =
      control_active_ &&
      (cfg_.control.sledzig.enabled || cfg_.control.hop.enabled);
  if (control_active_) {
    prev_wifi_.assign(num_wifi_, PrevCounters{});
    prev_zigbee_.assign(num_zigbee_, PrevCounters{});
    obs_wifi_.assign(num_wifi_, control::NodeObservation{});
    obs_zigbee_.assign(num_zigbee_, control::NodeObservation{});
    surge_scale_.assign(num_nodes_, 1.0);
    shape_scale_.assign(num_wifi_, 1.0);
    center_hz_.assign(num_nodes_, 0.0);
    for (std::size_t w = 0; w < num_wifi_; ++w) {
      center_hz_[w] = wifi_node_center_hz(cfg_.wifi[w].channel);
    }
    for (std::size_t j = 0; j < num_zigbee_; ++j) {
      center_hz_[num_wifi_ + j] =
          zigbee_node_center_hz(cfg_.zigbee[j].channel, cfg_.sledzig);
    }
  }
  if (needs_retune) jitter_db_.assign(2 * num_total_ * num_total_, 0.0);

  // --- power tables: every transmitter heard at every listening point ---
  // Point p in [0, T) is entry p's transmitter position (CCA); point T + p
  // is its receiver position (delivery), where T = nodes + jammers (a
  // jammer is a pseudo-node: it transmits through the same tables but
  // never listens).  The mean powers come from the scenario's LinkCache
  // (shared across replications); this run only adds its lognormal
  // shadowing draw — one per spectrally-coupled (point, transmitter) path,
  // in fixed iteration order, drawn even for self-CCA and pruned entries
  // so the RNG stream (and therefore every digest) is independent of the
  // interference graph and bit-exact with the legacy fill on every
  // single-channel scenario (where all pairs are coupled).
  cache_ = cache_matches(cfg_.link_cache.get(), cfg_)
               ? cfg_.link_cache
               : LinkCache::build(cfg_);
  common::Rng shadow_rng(
      common::derive_seed(cfg_.seed, 4 * num_nodes_ + 3));
  ArbiterStorage storage = std::move(ws.arb);
  ArbiterTables& tables = storage.tables;
  tables.num_nodes = num_total_;
  tables.power.assign(2 * num_total_ * num_total_, SegmentPower{});
  tables.audible.assign(num_total_ * num_total_, 0);
  tables.cca_noise_mw.assign(num_total_, common::MilliWatt{});
  tables.cca_threshold_dbm.assign(num_total_, common::Dbm{});
  const bool keep_shadow = cfg_.fastpath.cross_check;
  shadow_.clear();
  if (keep_shadow) shadow_.assign(2 * num_total_ * num_total_, SegmentPower{});
  // The interference-graph bit index rides with the fast path; without it
  // medium queries fall back to scanning the table (pre-graph behaviour).
  const bool build_index = cfg_.fastpath.segment_runs || cfg_.fastpath.prune;
  tables.bit_words = build_index ? (num_total_ + 63) / 64 : 0;
  tables.nonzero_bits.assign(2 * num_total_ * tables.bit_words, 0);
  // Coupling components partition the transmission ledger; off the fast
  // path everything shares component 0 (one global ledger, the pre-split
  // behaviour).
  // A runtime channel hop can couple nodes across the cache's static
  // components, so with the hop policy armed the run keeps one global
  // ledger (the exact pre-component behaviour — cross-component power is
  // 0 mW, so splitting is a scan optimisation, never a semantic one).
  const bool static_components =
      build_index && !(control_active_ && cfg_.control.hop.enabled);
  if (static_components) {
    tables.comp.assign(cache_->comp.begin(), cache_->comp.end());
    tables.num_comps = cache_->num_comps;
  } else {
    tables.comp.clear();
    tables.num_comps = 1;
  }

  // Walk the cache's compact coupled-pair rows: only spectrally-coupled
  // pairs consume a draw — which is every pair in a single-channel
  // (legacy) scenario, so those streams are untouched; disjoint-band pairs
  // skip both the scan and the (dominant, at 1000 nodes) gaussian cost.
  // Pruned pairs still draw: the stream is invariant to the interference
  // graph.
  for (std::size_t p = 0; p < 2 * num_total_; ++p) {
    for (std::size_t k = cache_->coupled_off[p]; k < cache_->coupled_off[p + 1];
         ++k) {
      const CoupledLink& e = cache_->coupled[k];
      const common::Db jitter{
          shadow_rng.gaussian(cfg_.shadowing_sigma_db.value())};
      // Retuning policies replay the exact draw later, so capture it.
      if (!jitter_db_.empty()) {
        jitter_db_[p * num_total_ + e.tx] = jitter.value();
      }
      if (e.state == LinkState::kLive) {
        SegmentPower sp;
        // The coupling term is applied after the jitter so legacy paths
        // (coupling_db == 0) reproduce the pre-cache sums bit-exactly.
        sp.payload_mw =
            common::to_mw((e.payload_dbm + jitter) + e.coupling_db);
        sp.preamble_mw =
            e.preamble_dbm == e.payload_dbm
                ? sp.payload_mw
                : common::to_mw((e.preamble_dbm + jitter) + e.coupling_db);
        tables.power[p * num_total_ + e.tx] = sp;
        if (build_index) {
          tables.nonzero_bits[p * tables.bit_words + (e.tx >> 6)] |=
              std::uint64_t{1} << (e.tx & 63);
        }
      } else if (keep_shadow && e.state == LinkState::kPruned) {
        // What the table *would* have held: the cross-check compares this
        // against the prune epsilon at every delivery.
        SegmentPower sp;
        sp.payload_mw =
            common::to_mw((e.payload_dbm + jitter) + e.coupling_db);
        sp.preamble_mw =
            common::to_mw((e.preamble_dbm + jitter) + e.coupling_db);
        shadow_[p * num_total_ + e.tx] = sp;
      }
      // kZero (and kPruned): the table entry stays exactly 0 mW — inert in
      // CCA energy sums and unable to win a strict-> worst-interferer.
    }
  }

  for (std::size_t n = 0; n < num_total_; ++n) {
    const bool is_zigbee = n >= num_wifi_ && n < num_nodes_;
    tables.cca_noise_mw[n] = common::to_mw(
        is_zigbee ? channel::kNoiseFloor2MhzDbm : channel::kNoiseFloor20MhzDbm);
    tables.cca_threshold_dbm[n] = is_zigbee ? channel::kZigbeeCcaThresholdDbm
                                            : channel::kWifiCcaThresholdDbm;
    const common::MilliWatt threshold_mw =
        common::to_mw(tables.cca_threshold_dbm[n]);
    // Energy-detect audibility (WiFi listeners defer on this; ZigBee
    // listeners use the averaged-energy CCA instead).  A zero-power link
    // can never clear the (positive) threshold, so with the bit index
    // built only the set bits need the table read.
    if (build_index) {
      for (std::size_t w = 0; w < tables.bit_words; ++w) {
        std::uint64_t bits = tables.nonzero_bits[n * tables.bit_words + w];
        while (bits != 0) {
          const std::size_t t =
              w * 64 + static_cast<std::size_t>(std::countr_zero(bits));
          bits &= bits - 1;
          if (t == n) continue;
          tables.audible[n * num_total_ + t] =
              tables.power[n * num_total_ + t].payload_mw >= threshold_mw ? 1
                                                                          : 0;
        }
      }
    } else {
      for (std::size_t t = 0; t < num_total_; ++t) {
        if (t == n) continue;
        tables.audible[n * num_total_ + t] =
            tables.power[n * num_total_ + t].payload_mw >= threshold_mw ? 1
                                                                        : 0;
      }
    }
  }

  // --- notify adjacency: the audible WiFi listeners of each transmitter ---
  rebuild_adjacency(tables);

  // --- own-link budgets and cached per-interferer symbol error probs ---
  for (std::size_t i = 0; i < num_wifi_; ++i) {
    wifi_[i].signal_mw =
        tables.power[(num_total_ + i) * num_total_ + i].payload_mw;
  }
  perr_ = std::move(ws.perr);
  perr_.assign(num_zigbee_ * num_total_ * 2, 0.0);
  for (std::size_t j = 0; j < num_zigbee_; ++j) {
    auto& zn = zigbee_[j];
    const std::size_t g = global_z(j);
    const common::Dbm signal_dbm =
        common::to_dbm(
            tables.power[(num_total_ + g) * num_total_ + g].payload_mw) -
        impair_penalty_db_;
    zn.signal_mw = common::to_mw(signal_dbm);
    zn.sensitivity_loss = cfg_.error_model.sensitivity_loss_prob(
        signal_dbm, zn.cfg.sensitivity_dbm);
    const auto p_err = [&](common::MilliWatt interference_mw, bool preamble) {
      return zig_symbol_perr(zn, interference_mw, preamble);
    };
    zn.p_err_idle = p_err(common::MilliWatt{}, false);
    // Zeroed links (pruned edges, disjoint channels) all share the same
    // two values; evaluating the error model once per shape instead of
    // per link is what keeps dense-campus construction O(edges).
    const double p0_payload = zn.p_err_idle;
    const double p0_preamble = p_err(common::MilliWatt{}, true);
    // The "preamble" shape of the error model is calibrated for the
    // bursty WiFi preamble; a ZigBee interferer's whole frame — and a
    // jammer's noise-like burst — behaves like payload.
    if (build_index) {
      // Default every link to the shared zero-power values without touching
      // the power table, then overwrite the (few, at campus scale) nonzero
      // links the bit index names.
      for (std::size_t t = 0; t < num_total_; ++t) {
        if (t == g) continue;
        perr_[(j * num_total_ + t) * 2 + 0] = p0_payload;
        perr_[(j * num_total_ + t) * 2 + 1] =
            t < num_wifi_ ? p0_preamble : p0_payload;
      }
      const std::size_t pr = num_total_ + g;
      for (std::size_t w = 0; w < tables.bit_words; ++w) {
        std::uint64_t bits = tables.nonzero_bits[pr * tables.bit_words + w];
        while (bits != 0) {
          const std::size_t t =
              w * 64 + static_cast<std::size_t>(std::countr_zero(bits));
          bits &= bits - 1;
          if (t == g) continue;
          const auto& sp = tables.power[pr * num_total_ + t];
          perr_[(j * num_total_ + t) * 2 + 0] = p_err(sp.payload_mw, false);
          perr_[(j * num_total_ + t) * 2 + 1] =
              p_err(sp.preamble_mw, t < num_wifi_);
        }
      }
    } else {
      for (std::size_t t = 0; t < num_total_; ++t) {
        if (t == g) continue;
        const auto& sp = tables.power[(num_total_ + g) * num_total_ + t];
        const bool wifi_tx = t < num_wifi_;
        if (sp.payload_mw == common::MilliWatt{} &&
            sp.preamble_mw == common::MilliWatt{}) {
          perr_[(j * num_total_ + t) * 2 + 0] = p0_payload;
          perr_[(j * num_total_ + t) * 2 + 1] =
              wifi_tx ? p0_preamble : p0_payload;
          continue;
        }
        perr_[(j * num_total_ + t) * 2 + 0] = p_err(sp.payload_mw, false);
        perr_[(j * num_total_ + t) * 2 + 1] = p_err(sp.preamble_mw, wifi_tx);
      }
    }
  }

  arbiter_ = Arbiter(std::move(storage));

  // --- the decision layer, with per-mote static context ---
  if (control_active_) {
    std::vector<control::ZigbeeNodeContext> ctx(num_zigbee_);
    // Every overlap window of every BSS is a potential hop target.
    std::vector<unsigned> all_windows;
    for (const auto& w : cfg_.wifi) {
      for (const auto win : core::kAllOverlapChannels) {
        all_windows.push_back(overlapping_zigbee_channel(w.channel, win));
      }
    }
    std::sort(all_windows.begin(), all_windows.end());
    all_windows.erase(std::unique(all_windows.begin(), all_windows.end()),
                      all_windows.end());
    for (std::size_t j = 0; j < num_zigbee_; ++j) {
      const std::size_t g = global_z(j);
      // Which overlap window (of any BSS) does the mote sit in?  First
      // match in (wifi index, window index) order — deterministic.
      for (std::size_t w = 0; w < num_wifi_ && ctx[j].overlap < 0; ++w) {
        const double base = wifi_node_center_hz(cfg_.wifi[w].channel);
        for (std::size_t win = 0; win < core::kAllOverlapChannels.size();
             ++win) {
          const double f =
              base + core::channel_center_offset_hz(
                         static_cast<core::OverlapChannel>(win));
          if (std::abs(center_hz_[g] - f) < 0.5e6) {
            ctx[j].overlap = static_cast<int>(win);
            break;
          }
        }
      }
      // Hop candidates: every window except the mote's own band, ranked
      // by the static WiFi interference it would hear there (mean link
      // power, no jitter — pure per config), quietest first.
      std::vector<std::pair<double, unsigned>> ranked;
      for (const unsigned c : all_windows) {
        const double f = zigbee_node_center_hz(c, cfg_.sledzig);
        if (std::abs(f - center_hz_[g]) < 0.5e6) continue;
        double cost = 0.0;
        for (std::size_t t = 0; t < num_wifi_; ++t) {
          const LinkEntry e = mean_link_entry(cfg_, g, true, t, common::Hz{f},
                                              cfg_.sledzig_enabled);
          if (e.state == LinkState::kLive) {
            cost += common::to_mw(e.payload_dbm + e.coupling_db).value();
          }
        }
        ranked.emplace_back(cost, c);
      }
      std::sort(ranked.begin(), ranked.end());
      ctx[j].candidates.reserve(ranked.size());
      for (const auto& [cost, c] : ranked) ctx[j].candidates.push_back(c);
    }
    controller_ = std::make_unique<control::Controller>(
        cfg_.control, std::move(ctx), num_wifi_, sledzig_on_);
  }
}

void Engine::trace(double t, std::uint32_t node, TraceType type,
                   std::int32_t aux) {
  digest_ = fnv_mix(digest_, std::bit_cast<std::uint64_t>(t));
  digest_ = fnv_mix(digest_,
                    (static_cast<std::uint64_t>(node) << 40) |
                        (static_cast<std::uint64_t>(type) << 32) |
                        static_cast<std::uint32_t>(aux));
  if (cfg_.record_trace) trace_.push_back(TraceEvent{t, node, type, aux});
}

void Engine::push_arrival(std::uint32_t node, double t) {
  // The arrival carries the node's current epoch; a crash bumps the epoch,
  // so the whole pending chain goes stale at once.
  if (t < duration_us_) {
    queue_.push(t, EventType::kArrival, node, fstate_[node].arrival_epoch);
  }
}

// lint: allow(token-lifecycle): the single funnel for timer arming; every
// caller passes the node's live token and cancellation happens by epoch
// bump (the stale event is dropped at pop), not by queue removal.
void Engine::push_timer(std::uint32_t node, double t, std::uint64_t token) {
  if (t < duration_us_) {
    queue_.push(t, EventType::kTimer, node, token);
  } else {
    // The node's next MAC step lands past the horizon: remember that the
    // run (not a bug) cut it off, for the end-of-run liveness check.
    fstate_[node].horizon_cut = true;
  }
}

void Engine::apply_wifi_step(std::size_t i, mac::WifiCsmaMachine::Step step,
                             double now) {
  using Kind = mac::WifiCsmaMachine::Step::Kind;
  switch (step.kind) {
    case Kind::kNone:
      break;
    case Kind::kTimerAt:
      push_timer(global(i), warp(global(i), now, step.at), wifi_[i].token);
      break;
    case Kind::kTransmit:
      start_wifi_tx(i, now);
      break;
  }
}

void Engine::apply_zigbee_step(std::size_t j,
                               mac::ZigbeeCsmaMachine::Step step,
                               double now) {
  using Kind = mac::ZigbeeCsmaMachine::Step::Kind;
  auto& n = zigbee_[j];
  const std::uint32_t g = global_z(j);
  switch (step.kind) {
    case Kind::kNone:
      break;
    case Kind::kCcaEndAt:
    case Kind::kTxStartAt:
      push_timer(g, warp(g, now, step.at), n.token);
      break;
    case Kind::kDropCca:
      ++n.stats.cca_dropped;
      trace(now, g, TraceType::kCcaDrop,
            static_cast<std::int32_t>(n.machine.backoffs()));
      if (cfg_.span_log != nullptr) {
        cfg_.span_log->complete("csma", g, vus(n.serve_start_us), vus(now));
        cfg_.span_log->instant("cca_drop", g, vus(now));
      }
      n.queue.pop_front();
      n.serving = false;
      serve_next(g, now);
      break;
  }
}

void Engine::serve_next(std::uint32_t node, double t) {
  if (!fstate_[node].alive) return;  // a dead node schedules nothing
  if (node < num_wifi_) {
    auto& n = wifi_[node];
    if (!n.queue.empty()) {
      n.serving = true;
      n.serve_start_us = t;
      ++n.token;
      apply_wifi_step(node, n.machine.frame_ready(t, arbiter_.busy_at(node, t)),
                      t);
    } else if (n.traffic.completion_clocked()) {
      push_arrival(node, n.traffic.next_after(t));
    }
  } else {
    const std::size_t j = node - num_wifi_;
    auto& n = zigbee_[j];
    if (!n.queue.empty()) {
      n.serving = true;
      n.serve_start_us = t;
      ++n.token;
      apply_zigbee_step(j, n.machine.frame_ready(t), t);
    } else if (n.traffic.completion_clocked()) {
      push_arrival(node, n.traffic.next_after(t));
    }
  }
}

void Engine::on_arrival(std::uint32_t node, double t) {
  auto& stats =
      node < num_wifi_ ? wifi_[node].stats : zigbee_[node - num_wifi_].stats;
  auto& queue =
      node < num_wifi_ ? wifi_[node].queue : zigbee_[node - num_wifi_].queue;
  auto& traffic = node < num_wifi_ ? wifi_[node].traffic
                                   : zigbee_[node - num_wifi_].traffic;
  const bool serving =
      node < num_wifi_ ? wifi_[node].serving : zigbee_[node - num_wifi_].serving;

  ++stats.generated;
  trace(t, node, TraceType::kArrival);
  if (cfg_.span_log != nullptr) {
    cfg_.span_log->instant("arrival", node, vus(t));
  }
  if (!traffic.completion_clocked()) {
    push_arrival(node, traffic.next_after(t));
  }
  if (queue.size() >= cfg_.queue_capacity) {
    ++stats.queue_dropped;
    trace(t, node, TraceType::kQueueDrop);
    if (cfg_.span_log != nullptr) {
      cfg_.span_log->instant("queue_drop", node, vus(t));
    }
    return;
  }
  queue.push_back(t);
  if (inv_.enabled()) {
    inv_.on_queue_depth(node, queue.size(), cfg_.queue_capacity, t);
  }
  if (!serving) serve_next(node, t);
}

void Engine::on_wifi_timer(std::size_t i, double t) {
  auto& n = wifi_[i];
  ++n.token;
  apply_wifi_step(i, n.machine.timer_fired(t), t);
}

void Engine::on_zigbee_timer(std::size_t j, double t) {
  auto& n = zigbee_[j];
  const std::uint32_t g = global_z(j);
  switch (n.machine.awaiting()) {
    case mac::ZigbeeCsmaMachine::Awaiting::kCca: {
      const bool busy =
          arbiter_.zigbee_cca_busy(g, t - n.cfg.mac.cca_us, t);
      if (busy) {
        ++n.cca_busy_count;
      } else {
        ++n.cca_clear_count;
      }
      trace(t, g, busy ? TraceType::kCcaBusy : TraceType::kCcaClear,
            static_cast<std::int32_t>(n.machine.backoffs()));
      ++n.token;
      apply_zigbee_step(j, n.machine.cca_result(t, busy), t);
      break;
    }
    case mac::ZigbeeCsmaMachine::Awaiting::kTxStart:
      ++n.token;
      start_zigbee_tx(j, t);
      break;
    case mac::ZigbeeCsmaMachine::Awaiting::kNone:
      break;  // unreachable with valid tokens
  }
}

void Engine::start_wifi_tx(std::size_t i, double now) {
  auto& n = wifi_[i];
  const std::uint32_t g = global(i);
  ++n.stats.sent;
  if (cfg_.span_log != nullptr) {
    cfg_.span_log->complete("csma", g, vus(n.serve_start_us), vus(now));
  }
  if (fstate_[g].muted) {
    // TX chain is off: the attempt never reaches the air.  WiFi does not
    // retry, so the frame is terminal — it exhausted its zero retries.
    ++tx_muted_;
    ++n.stats.retry_exhausted;
    trace(now, g, TraceType::kTxMuted);
    if (cfg_.span_log != nullptr) {
      cfg_.span_log->instant("tx_muted", g, vus(now));
    }
    n.machine.tx_done();
    ++n.token;
    n.queue.pop_front();
    n.serving = false;
    serve_next(g, now);
    return;
  }
  n.stats.airtime_us += n.burst_us;
  trace(now, g, TraceType::kTxStart);
  const std::uint32_t tx_id =
      arbiter_.begin_tx(g, NodeKind::kWifi, now, now + n.cfg.mac.preamble_us,
                        now + n.burst_us);
  fstate_[g].active_tx = tx_id;
  queue_.push(now + n.burst_us, EventType::kTxEnd, g, 0, tx_id);
  notify_busy(g, now);
}

void Engine::start_zigbee_tx(std::size_t j, double now) {
  auto& n = zigbee_[j];
  const std::uint32_t g = global_z(j);
  n.machine.tx_started();
  ++n.stats.sent;
  if (cfg_.span_log != nullptr) {
    cfg_.span_log->complete("csma", g, vus(n.serve_start_us), vus(now));
  }
  if (fstate_[g].muted) {
    // TX chain is off: no energy leaves the node and no ACK will come.
    // The machine sees an undelivered attempt, so macMaxFrameRetries
    // still applies (a muted window shorter than the retry budget only
    // delays the frame).
    ++tx_muted_;
    trace(now, g, TraceType::kTxMuted);
    if (cfg_.span_log != nullptr) {
      cfg_.span_log->instant("tx_muted", g, vus(now));
    }
    ++n.token;
    const auto step = n.machine.tx_done(now, false);
    if (step.kind != mac::ZigbeeCsmaMachine::Step::Kind::kNone) {
      ++n.stats.retries;
      n.serve_start_us = now;
      trace(now, g, TraceType::kRetry,
            static_cast<std::int32_t>(n.machine.retries_left()));
      apply_zigbee_step(j, step, now);
    } else {
      ++n.stats.retry_exhausted;
      n.queue.pop_front();
      n.serving = false;
      serve_next(g, now);
    }
    return;
  }
  n.stats.airtime_us += n.airtime_us;
  trace(now, g, TraceType::kTxStart);
  const std::uint32_t tx_id =
      arbiter_.begin_tx(g, NodeKind::kZigbee, now, now, now + n.airtime_us);
  fstate_[g].active_tx = tx_id;
  queue_.push(now + n.airtime_us, EventType::kTxEnd, g, 0, tx_id);
  notify_busy(g, now);
}

void Engine::notify_busy(std::uint32_t tx_node, double now) {
  // Only WiFi nodes carrier-sense between their own transmissions;
  // unslotted 802.15.4 is oblivious outside its CCA windows.  The
  // adjacency list holds exactly the audible listeners, in the ascending
  // order the old all-pairs loop visited them, so this is O(degree).
  const auto lo = ws_->adj_off[tx_node];
  const auto hi = ws_->adj_off[tx_node + 1];
  for (auto a = lo; a < hi; ++a) {
    const std::size_t w = ws_->adj[a];
    if (!fstate_[w].alive) continue;
    ++wifi_[w].token;
    apply_wifi_step(w, wifi_[w].machine.medium_busy(now), now);
  }
}

void Engine::notify_idle(double now) {
  for (std::size_t w = 0; w < num_wifi_; ++w) {
    // In kIdle and kTx medium_idle() is a stateless no-op and no valid
    // timer is pending (every path into those states bumps the token), so
    // skipping non-waiting machines skips only an unobservable token bump
    // — the busy_at scan runs just for the few nodes actually deferring.
    if (!wifi_[w].machine.waiting()) continue;
    const auto g = global(w);
    if (!fstate_[g].alive || arbiter_.busy_at(g, now)) continue;
    ++wifi_[w].token;
    apply_wifi_step(w, wifi_[w].machine.medium_idle(now), now);
  }
}

bool Engine::wifi_frame_delivered(std::size_t i, const Transmission& tx) const {
  const auto& n = wifi_[i];
  const std::uint32_t g = global(i);
  // A deaf station cannot decode anything, interference or not.
  if (fstate_[g].deaf) return false;
  const auto [lo, hi] = arbiter_.overlap_ids(g, tx.start_us, tx.end_us);
  const bool indexed = arbiter_.has_link_index();
  for (const std::uint32_t* it = lo; it != hi; ++it) {
    const auto& x = arbiter_.tx(*it);
    if (x.node == g) continue;
    // Zero-power links can only yield worst_mw <= 0.0 below; the index
    // skips them without the (cache-cold at campus scale) table read.
    if (indexed && !arbiter_.rx_nonzero(g, x.node)) continue;
    const auto& sp = arbiter_.rx_power(g, x.node);
    const bool pre_overlap =
        std::min(tx.end_us, x.payload_start_us) >
        std::max(tx.start_us, x.start_us);
    const bool pay_overlap =
        std::min(tx.end_us, x.end_us) > std::max(tx.start_us, x.payload_start_us);
    const common::MilliWatt worst_mw =
        std::max(pre_overlap ? sp.preamble_mw : common::MilliWatt{},
                 pay_overlap ? sp.payload_mw : common::MilliWatt{});
    if (worst_mw <= common::MilliWatt{}) continue;
    const common::Db sinr_db =
        common::ratio_to_db(n.signal_mw / (worst_mw + noise20_mw_));
    if (sinr_db < cfg_.wifi_capture_sinr_db) return false;
  }
  return true;
}

bool Engine::zigbee_frame_delivered(std::size_t j, const Transmission& tx) {
  auto& n = zigbee_[j];
  const std::uint32_t g = global_z(j);
  // A deaf receiver loses the frame outright (and draws nothing from the
  // delivery stream — faults only perturb what they touch).
  if (fstate_[g].deaf) return false;
  // Frame-level sensitivity cliff (CC2420 practical sensitivity).
  if (n.delivery_rng.uniform() < n.sensitivity_loss) return false;

  const double symbol_us = zigbee::kSymbolDurationUs;
  const auto num_symbols =
      static_cast<std::size_t>((tx.end_us - tx.start_us) / symbol_us);
  const auto [lo, hi] = arbiter_.overlap_ids(g, tx.start_us, tx.end_us);

  if (!cfg_.fastpath.segment_runs) {
    // Reference path: resolve the worst interferer per 16 us symbol (same
    // precedence as the closed-form model: a payload segment displaces a
    // preamble hit only at strictly higher power).
    for (std::size_t s = 0; s < num_symbols; ++s) {
      const double s0 = tx.start_us + static_cast<double>(s) * symbol_us;
      const double s1 = s0 + symbol_us;
      common::MilliWatt worst_mw{};
      bool preamble_seg = false;
      std::uint32_t worst_tx = UINT32_MAX;
      for (const std::uint32_t* it = lo; it != hi; ++it) {
        const auto& x = arbiter_.tx(*it);
        if (x.node == g) continue;
        const auto& sp = arbiter_.rx_power(g, x.node);
        if (std::min(s1, x.payload_start_us) > std::max(s0, x.start_us) &&
            sp.preamble_mw > worst_mw) {
          worst_mw = sp.preamble_mw;
          preamble_seg = true;
          worst_tx = x.node;
        }
        if (std::min(s1, x.end_us) > std::max(s0, x.payload_start_us) &&
            sp.payload_mw > worst_mw) {
          worst_mw = sp.payload_mw;
          preamble_seg = false;
          worst_tx = x.node;
        }
      }
      const double p = worst_tx == UINT32_MAX ? n.p_err_idle
                                              : perr(j, worst_tx, preamble_seg);
      if (n.delivery_rng.uniform() < p) return false;
    }
    return true;
  }

  // Fast path (DESIGN.md §15).  Exactness: between consecutive boundary
  // times (every overlapping transmission's start, payload start and end,
  // clamped to the frame) each interval endpoint used by the per-symbol
  // overlap tests is either <= the segment's left edge or >= its right
  // edge, so every symbol fully inside a segment reaches the identical
  // worst-interferer verdict — compute it once and reuse it.  Symbols that
  // straddle a boundary fall back to the per-symbol scan.  One uniform()
  // is still drawn per symbol, stopping at the first failure, so the RNG
  // stream and the digest are bit-identical to the reference path.
  if (!shadow_.empty()) {
    // Cross-check: would any pruned link have been worth hearing here?
    // (Pruned links couple, so they are inside the listener's component.)
    for (const std::uint32_t* it = lo; it != hi; ++it) {
      const auto& x = arbiter_.tx(*it);
      if (x.node == g) continue;
      const auto& sh = shadow_[(num_total_ + g) * num_total_ + x.node];
      if (std::max(sh.payload_mw, sh.preamble_mw) > cache_->eps_mw[g]) {
        throw std::logic_error(
            "fastpath cross-check: pruned link above the prune epsilon at "
            "listener " +
            std::to_string(g) + " (tx " + std::to_string(x.node) + ")");
      }
    }
  }

  // Zero-power ledger entries (pruned or channel-disjoint interferers,
  // which the table holds as exactly 0 mW) can never win the strict->
  // comparison; dropping them up front is what makes the scan O(degree).
  // The bit index (always built on this branch) answers "is the link
  // nonzero" without touching the power table at all.
  auto& rel = ws_->rel;
  rel.clear();
  for (const std::uint32_t* it = lo; it != hi; ++it) {
    const auto& x = arbiter_.tx(*it);
    if (x.node == g) continue;
    if (!arbiter_.rx_nonzero(g, x.node)) continue;
    const auto& sp = arbiter_.rx_power(g, x.node);
    rel.push_back({x.start_us, x.payload_start_us, x.end_us, sp.preamble_mw,
                   sp.payload_mw, perr(j, x.node, true), perr(j, x.node, false)});
  }
  if (rel.empty()) {
    for (std::size_t s = 0; s < num_symbols; ++s) {
      if (n.delivery_rng.uniform() < n.p_err_idle) return false;
    }
    return true;
  }

  auto& b = ws_->bounds;
  b.clear();
  b.push_back(tx.start_us);
  for (const auto& e : rel) {
    for (const double v : {e.start_us, e.payload_start_us, e.end_us}) {
      if (v > tx.start_us && v < tx.end_us) b.push_back(v);
    }
  }
  b.push_back(tx.end_us);
  std::sort(b.begin(), b.end());
  b.erase(std::unique(b.begin(), b.end()), b.end());

  // Identical scan to the reference inner loop, over the staged entries:
  // same order, same strict-> comparisons — the tracked probability is
  // exactly the perr() value of the tracked (worst_tx, segment) pair.
  // Entries are start-ordered, so once one starts at/after the window
  // nothing later can overlap it and the scan stops early.
  const auto window_p = [&](double w0, double w1) {
    common::MilliWatt worst_mw{};
    double p = n.p_err_idle;
    for (const auto& e : rel) {
      if (e.start_us >= w1) break;
      if (std::min(w1, e.payload_start_us) > std::max(w0, e.start_us) &&
          e.preamble_mw > worst_mw) {
        worst_mw = e.preamble_mw;
        p = e.p_err_preamble;
      }
      if (std::min(w1, e.end_us) > std::max(w0, e.payload_start_us) &&
          e.payload_mw > worst_mw) {
        worst_mw = e.payload_mw;
        p = e.p_err_payload;
      }
    }
    return p;
  };

  std::size_t bi = 0;
  double seg_p = 0.0;
  bool seg_valid = false;
  for (std::size_t s = 0; s < num_symbols; ++s) {
    const double s0 = tx.start_us + static_cast<double>(s) * symbol_us;
    const double s1 = s0 + symbol_us;
    while (bi + 2 < b.size() && b[bi + 1] <= s0) {
      ++bi;
      seg_valid = false;
    }
    double p;
    if (s1 <= b[bi + 1]) {
      if (!seg_valid) {
        seg_p = window_p(b[bi], b[bi + 1]);
        seg_valid = true;
      }
      p = seg_p;
    } else {
      p = window_p(s0, s1);  // straddles a boundary (or FP end overshoot)
    }
    if (n.delivery_rng.uniform() < p) return false;
  }
  return true;
}

void Engine::on_tx_end(std::uint32_t tx_id, double t) {
  const Transmission tx = arbiter_.tx(tx_id);
  // The transmitter died mid-air: abort_tx already retired the emission and
  // accounted the frame (lost_to_crash), so this kTxEnd is stale.
  if (tx.aborted) return;
  arbiter_.end_tx(tx_id);
  if (tx.kind == NodeKind::kJammer) {
    // Burst over; no stats — jammers have no frames, only energy.
    notify_idle(t);
    return;
  }
  fstate_[tx.node].active_tx = UINT32_MAX;
  if (tx.kind == NodeKind::kWifi) {
    const std::size_t i = tx.node;
    auto& n = wifi_[i];
    const bool ok = wifi_frame_delivered(i, tx);
    // WiFi never retries, so a lost frame is terminal: it exhausted its
    // zero permitted retries.  Without this bucket, lost WiFi frames
    // vanished from the per-node accounting entirely.
    if (ok) {
      ++n.stats.delivered;
      n.delivered_bits += n.bits_per_frame;
    } else {
      ++n.stats.retry_exhausted;
    }
    trace(t, tx.node, ok ? TraceType::kTxDelivered : TraceType::kTxLost);
    if (cfg_.span_log != nullptr) {
      cfg_.span_log->complete("tx", tx.node, vus(tx.start_us), vus(t));
      cfg_.span_log->instant(ok ? "delivered" : "lost", tx.node, vus(t));
    }
    n.machine.tx_done();
    ++n.token;
    n.queue.pop_front();
    n.serving = false;
    serve_next(tx.node, t);
  } else {
    const std::size_t j = tx.node - num_wifi_;
    auto& n = zigbee_[j];
    const bool ok = zigbee_frame_delivered(j, tx);
    if (ok) ++n.stats.delivered;
    trace(t, tx.node, ok ? TraceType::kTxDelivered : TraceType::kTxLost);
    if (cfg_.span_log != nullptr) {
      cfg_.span_log->complete("tx", tx.node, vus(tx.start_us), vus(t));
      cfg_.span_log->instant(ok ? "delivered" : "lost", tx.node, vus(t));
    }
    ++n.token;
    const auto step = n.machine.tx_done(t, ok);
    if (step.kind != mac::ZigbeeCsmaMachine::Step::Kind::kNone) {
      // Lost with retries left: the frame stays at the queue front and
      // re-enters CSMA — count the retry once, here only (`sent` picks up
      // the extra attempt when it actually reaches the air).
      ++n.stats.retries;
      n.serve_start_us = t;
      trace(t, tx.node, TraceType::kRetry,
            static_cast<std::int32_t>(n.machine.retries_left()));
      if (cfg_.span_log != nullptr) {
        cfg_.span_log->instant("retry", tx.node, vus(t));
      }
      apply_zigbee_step(j, step, t);
    } else {
      // Terminal: delivered, or lost with macMaxFrameRetries exhausted.
      if (!ok) ++n.stats.retry_exhausted;
      n.queue.pop_front();
      n.serving = false;
      serve_next(tx.node, t);
    }
  }
  notify_idle(t);
}

void Engine::crash_node(std::uint32_t g, double t) {
  auto& fs = fstate_[g];
  if (!fs.alive) return;  // overlapping crash windows: already dead
  fs.alive = false;
  ++crashes_;
  const bool is_wifi = g < num_wifi_;
  auto& queue = is_wifi ? wifi_[g].queue : zigbee_[g - num_wifi_].queue;
  auto& stats = is_wifi ? wifi_[g].stats : zigbee_[g - num_wifi_].stats;

  // Abort any in-flight emission: the carrier drops dead at t, and the
  // airtime that never flew is refunded.
  bool aborted = false;
  if (fs.active_tx != UINT32_MAX) {
    const Transmission tx = arbiter_.tx(fs.active_tx);
    arbiter_.abort_tx(fs.active_tx, t);
    ++tx_aborted_;
    trace(t, g, TraceType::kTxAborted);
    if (cfg_.span_log != nullptr) {
      cfg_.span_log->complete("tx", g, vus(tx.start_us), vus(t));
      cfg_.span_log->instant("tx_aborted", g, vus(t));
    }
    stats.airtime_us -= std::max(0.0, tx.end_us - std::max(tx.start_us, t));
    fs.active_tx = UINT32_MAX;
    aborted = true;
  }

  // Queue state is volatile: every held frame dies with the node.  The
  // head frame stays at the queue front until terminal, so this also
  // accounts the frame that was mid-CSMA or mid-air.
  stats.lost_to_crash += queue.size();
  trace(t, g, TraceType::kNodeCrash,
        static_cast<std::int32_t>(queue.size()));
  if (cfg_.span_log != nullptr) {
    cfg_.span_log->instant("crash", g, vus(t));
  }
  queue.clear();
  if (is_wifi) {
    wifi_[g].serving = false;
    ++wifi_[g].token;  // cancel pending MAC timers
    wifi_[g].machine.reset();
  } else {
    zigbee_[g - num_wifi_].serving = false;
    ++zigbee_[g - num_wifi_].token;
    zigbee_[g - num_wifi_].machine.reset();
  }
  ++fs.arrival_epoch;  // orphan the pending arrival chain
  // Our aborted emission may have been what kept the others deferring.
  if (aborted) notify_idle(t);
}

void Engine::reboot_node(std::uint32_t g, double t) {
  auto& fs = fstate_[g];
  if (fs.alive) return;  // duplicate recovery: already up
  fs.alive = true;
  ++reboots_;
  trace(t, g, TraceType::kNodeReboot);
  if (cfg_.span_log != nullptr) {
    cfg_.span_log->instant("reboot", g, vus(t));
  }
  // Cold MAC (reset at crash time) and a fresh arrival chain under the
  // current epoch — the pre-crash chain stays orphaned.
  auto& traffic =
      g < num_wifi_ ? wifi_[g].traffic : zigbee_[g - num_wifi_].traffic;
  push_arrival(g, traffic.next_after(t));
}

void Engine::start_jam_burst(std::size_t jam_k, double t, double len_us) {
  const std::uint32_t g = jammer_index(jam_k);
  ++jam_bursts_;
  trace(t, g, TraceType::kJam);
  if (cfg_.span_log != nullptr) {
    cfg_.span_log->instant("jam", g, vus(t));
  }
  // The burst is an ordinary ledger entry (kind kJammer): CCA, WiFi
  // deferral and per-symbol delivery all see its energy through the same
  // power tables as a real transmitter.  Its kTxEnd retires it.
  const std::uint32_t tx_id =
      arbiter_.begin_tx(g, NodeKind::kJammer, t, t, t + len_us);
  queue_.push(t + len_us, EventType::kTxEnd, g, 0, tx_id);
  notify_busy(g, t);
}

void Engine::on_fault(const FaultAction& a, double t) {
  switch (a.kind) {
    case FaultKind::kCrash:
      crash_node(a.node, t);
      break;
    case FaultKind::kReboot:
      reboot_node(a.node, t);
      break;
    case FaultKind::kMuteOn:
    case FaultKind::kMuteOff: {
      const bool on = a.kind == FaultKind::kMuteOn;
      if (fstate_[a.node].muted != on) {
        fstate_[a.node].muted = on;
        trace(t, a.node, TraceType::kMute, on ? 1 : 0);
        if (cfg_.span_log != nullptr) {
          cfg_.span_log->instant(on ? "mute_on" : "mute_off", a.node, vus(t));
        }
      }
      break;
    }
    case FaultKind::kDeafOn:
    case FaultKind::kDeafOff: {
      const bool on = a.kind == FaultKind::kDeafOn;
      if (fstate_[a.node].deaf != on) {
        fstate_[a.node].deaf = on;
        trace(t, a.node, TraceType::kDeaf, on ? 1 : 0);
        if (cfg_.span_log != nullptr) {
          cfg_.span_log->instant(on ? "deaf_on" : "deaf_off", a.node, vus(t));
        }
      }
      break;
    }
    case FaultKind::kJamOn:
      start_jam_burst(a.node, t, a.magnitude);
      break;
    case FaultKind::kSurgeOn:
    case FaultKind::kSurgeOff: {
      const bool on = a.kind == FaultKind::kSurgeOn;
      auto& traffic = a.node < num_wifi_ ? wifi_[a.node].traffic
                                         : zigbee_[a.node - num_wifi_].traffic;
      const double surge = on ? a.magnitude : 1.0;
      // Compose with the control plane's shaping factor (the two layers
      // must not clobber each other); without an active control plane the
      // vectors are empty and this is the legacy direct write.
      if (!surge_scale_.empty()) surge_scale_[a.node] = surge;
      const double shape = (a.node < num_wifi_ && !shape_scale_.empty())
                               ? shape_scale_[a.node]
                               : 1.0;
      traffic.set_rate_scale(surge * shape);
      trace(t, a.node, TraceType::kSurge, on ? 1 : 0);
      if (cfg_.span_log != nullptr) {
        cfg_.span_log->instant(on ? "surge_on" : "surge_off", a.node, vus(t));
      }
      break;
    }
  }
}

void Engine::rebuild_adjacency(const ArbiterTables& tables) {
  // CSR lists in ascending listener order, exactly the order the old
  // all-pairs notify_busy loop visited, so skipping inaudible listeners
  // changes nothing but the iteration count.
  ws_->adj.clear();
  ws_->adj_off.assign(num_total_ + 1, 0);
  for (std::size_t t = 0; t < num_total_; ++t) {
    for (std::size_t w = 0; w < num_wifi_; ++w) {
      if (w == t) continue;  // audible(w, w) is 0 anyway
      if (tables.audible[w * num_total_ + t] != 0) {
        ws_->adj.push_back(static_cast<std::uint32_t>(w));
      }
    }
    ws_->adj_off[t + 1] = static_cast<std::uint32_t>(ws_->adj.size());
  }
}

double Engine::zig_symbol_perr(const ZigbeeNode& zn,
                               common::MilliWatt interference,
                               bool preamble) const {
  const common::Db sinr_db =
      common::ratio_to_db(zn.signal_mw / (interference + noise2_mw_));
  return cfg_.error_model.symbol_error_prob(sinr_db, preamble);
}

void Engine::refresh_zigbee_perr_row(std::size_t j) {
  const auto& tables = arbiter_.mutable_tables();
  const auto& zn = zigbee_[j];
  const std::size_t g = global_z(j);
  const std::size_t pr = num_total_ + g;
  for (std::size_t t = 0; t < num_total_; ++t) {
    if (t == g) continue;
    const auto& sp = tables.power[pr * num_total_ + t];
    perr_[(j * num_total_ + t) * 2 + 0] = zig_symbol_perr(zn, sp.payload_mw,
                                                          false);
    perr_[(j * num_total_ + t) * 2 + 1] =
        zig_symbol_perr(zn, sp.preamble_mw, t < num_wifi_);
  }
}

void Engine::retune_pair(ArbiterTables& tables, std::size_t point,
                         std::size_t tx) {
  const bool rx_point = point >= num_total_;
  const std::size_t listener = rx_point ? point - num_total_ : point;
  if (listener >= num_nodes_) return;            // jammer points never listen
  if (tx == listener && !rx_point) return;       // own CCA point: silent
  const LinkEntry e =
      mean_link_entry(cfg_, listener, rx_point, tx,
                      common::Hz{center_hz_[listener]}, sledzig_on_);
  SegmentPower sp{};
  if (e.state == LinkState::kLive) {
    // Retuned entries are never pruned — the prune decision was made
    // against the build-time spectrum picture and a retune must only make
    // links audible, never silently drop one.
    const common::Db jitter{jitter_db_[point * num_total_ + tx]};
    sp.payload_mw = common::to_mw((e.payload_dbm + jitter) + e.coupling_db);
    sp.preamble_mw =
        e.preamble_dbm == e.payload_dbm
            ? sp.payload_mw
            : common::to_mw((e.preamble_dbm + jitter) + e.coupling_db);
  }
  tables.power[point * num_total_ + tx] = sp;
  if (tables.bit_words != 0) {
    const std::size_t word = point * tables.bit_words + (tx >> 6);
    const std::uint64_t bit = std::uint64_t{1} << (tx & 63);
    if (sp.payload_mw > common::MilliWatt{} ||
        sp.preamble_mw > common::MilliWatt{}) {
      tables.nonzero_bits[word] |= bit;
    } else {
      tables.nonzero_bits[word] &= ~bit;
    }
  }
  if (!rx_point) {
    tables.audible[point * num_total_ + tx] =
        sp.payload_mw >= common::to_mw(tables.cca_threshold_dbm[point]) ? 1
                                                                        : 0;
  }
  // The entry is live (or exactly zero) now; any pruned-link shadow from
  // the build-time picture is stale, and the cross-check must not trip on
  // a pair the control plane has since retuned.
  if (!shadow_.empty()) shadow_[point * num_total_ + tx] = SegmentPower{};
}

void Engine::apply_sledzig(bool engage, double t) {
  if (engage == sledzig_on_) return;
  sledzig_on_ = engage;
  auto& tables = arbiter_.mutable_tables();
  // Only ZigBee listening points hear the scheme difference (the
  // protected-window payload offset); WiFi-listener entries and all
  // ZigBee-transmitter entries are scheme-invariant, so rows outside the
  // retuned set keep their exact build-time values.
  for (std::size_t j = 0; j < num_zigbee_; ++j) {
    const std::size_t g = global_z(j);
    for (std::size_t w = 0; w < num_wifi_; ++w) {
      retune_pair(tables, g, w);
      retune_pair(tables, num_total_ + g, w);
    }
    refresh_zigbee_perr_row(j);
  }
  // The WiFi frame keeps its airtime; the scheme trades payload bits for
  // coexistence, so the per-frame bit budget follows the toggle.
  for (auto& n : wifi_) {
    double bits = static_cast<double>(wifi::data_bits_per_symbol(
                      cfg_.sledzig.modulation, cfg_.sledzig.rate)) *
                  (n.cfg.mac.airtime_us / wifi::kSymbolDurationUs);
    if (engage) bits *= 1.0 - core::throughput_loss(cfg_.sledzig);
    n.bits_per_frame = bits;
  }
  trace(t, 0, TraceType::kControlSledzig, engage ? 1 : 0);
}

void Engine::apply_hop(std::size_t j, unsigned channel, double t) {
  if (cfg_.zigbee[j].channel == channel) return;  // rotation met itself
  auto& zn = zigbee_[j];
  const std::size_t g = global_z(j);
  cfg_.zigbee[j].channel = channel;
  zn.cfg.channel = channel;
  center_hz_[g] = zigbee_node_center_hz(channel, cfg_.sledzig);
  auto& tables = arbiter_.mutable_tables();
  const double sigma = cfg_.shadowing_sigma_db.value();
  // Every retuned pair re-draws its shadowing as the pure function
  // derive_seed(seed, kControl, point, tx, channel) — no stateful stream,
  // so the tables after any action history are a function of (config,
  // seed, history), bit-identical across thread counts and replays.
  const auto fresh_jitter = [&](std::size_t point, std::size_t tx) {
    jitter_db_[point * num_total_ + tx] =
        common::Rng(common::derive_seed(cfg_.seed,
                                        common::seed_domain::kControl, point,
                                        tx, channel))
            .gaussian(sigma);
  };
  // The mote hears the whole world anew (its two listening points)...
  for (const std::size_t p : {g, num_total_ + g}) {
    for (std::size_t tx = 0; tx < num_total_; ++tx) {
      if (tx == g) continue;
      fresh_jitter(p, tx);
      retune_pair(tables, p, tx);
    }
  }
  // ...and the whole world hears the mote anew (its column, own link
  // included at the receiver point).
  for (std::size_t p = 0; p < 2 * num_total_; ++p) {
    const bool rx_point = p >= num_total_;
    const std::size_t listener = rx_point ? p - num_total_ : p;
    if (listener >= num_nodes_) continue;
    if (listener == g && !rx_point) continue;
    fresh_jitter(p, g);
    retune_pair(tables, p, g);
  }
  rebuild_adjacency(tables);
  // Own-link budget and the cached symbol-error row move with the band.
  const common::Dbm signal_dbm =
      common::to_dbm(
          tables.power[(num_total_ + g) * num_total_ + g].payload_mw) -
      impair_penalty_db_;
  zn.signal_mw = common::to_mw(signal_dbm);
  zn.sensitivity_loss = cfg_.error_model.sensitivity_loss_prob(
      signal_dbm, zn.cfg.sensitivity_dbm);
  zn.p_err_idle = zig_symbol_perr(zn, common::MilliWatt{}, false);
  refresh_zigbee_perr_row(j);
  for (std::size_t k = 0; k < num_zigbee_; ++k) {
    if (k == j) continue;
    const auto& sp =
        tables.power[(num_total_ + global_z(k)) * num_total_ + g];
    // A ZigBee interferer's whole frame behaves like payload (both
    // segments share the payload error shape).
    perr_[(k * num_total_ + g) * 2 + 0] =
        zig_symbol_perr(zigbee_[k], sp.payload_mw, false);
    perr_[(k * num_total_ + g) * 2 + 1] =
        zig_symbol_perr(zigbee_[k], sp.preamble_mw, false);
  }
  trace(t, static_cast<std::uint32_t>(g), TraceType::kControlHop,
        static_cast<std::int32_t>(channel));
  // The spectrum picture moved: deferring WiFi machines re-check the
  // medium against the new tables (in-flight frames are re-evaluated at
  // their kTxEnd through the same tables — documented behaviour).
  notify_idle(t);
}

void Engine::on_control(double t) {
  // Per-epoch deltas against the previous boundary's cumulative counters.
  for (std::size_t i = 0; i < num_wifi_; ++i) {
    const auto& s = wifi_[i].stats;
    auto& p = prev_wifi_[i];
    auto& o = obs_wifi_[i];
    o.generated = s.generated - p.generated;
    o.sent = s.sent - p.sent;
    o.delivered = s.delivered - p.delivered;
    o.retry_exhausted = s.retry_exhausted - p.retry_exhausted;
    o.cca_busy = 0;
    o.cca_clear = 0;
    o.airtime_us = s.airtime_us - p.airtime_us;
    p = PrevCounters{s.generated, s.sent, s.delivered, s.retry_exhausted, 0, 0,
                     s.airtime_us};
  }
  for (std::size_t j = 0; j < num_zigbee_; ++j) {
    const auto& n = zigbee_[j];
    const auto& s = n.stats;
    auto& p = prev_zigbee_[j];
    auto& o = obs_zigbee_[j];
    o.generated = s.generated - p.generated;
    o.sent = s.sent - p.sent;
    o.delivered = s.delivered - p.delivered;
    o.retry_exhausted = s.retry_exhausted - p.retry_exhausted;
    o.cca_busy = n.cca_busy_count - p.cca_busy;
    o.cca_clear = n.cca_clear_count - p.cca_clear;
    o.airtime_us = s.airtime_us - p.airtime_us;
    p = PrevCounters{s.generated,     s.sent,          s.delivered,
                     s.retry_exhausted, n.cca_busy_count, n.cca_clear_count,
                     s.airtime_us};
  }
  const control::EpochSnapshot snap{control_epoch_, t, cfg_.control.epoch_us,
                                    obs_wifi_, obs_zigbee_};
  const std::vector<control::Action> actions = controller_->on_epoch(snap);
  trace(t, 0, TraceType::kControlEpoch,
        static_cast<std::int32_t>(actions.size()));
  control_actions_ += actions.size();
  for (const auto& a : actions) {
    switch (a.kind) {
      case control::ActionKind::kSledzig:
        apply_sledzig(a.value != 0.0, t);
        break;
      case control::ActionKind::kZigbeeChannel:
        apply_hop(a.node, static_cast<unsigned>(a.value), t);
        break;
      case control::ActionKind::kWifiRateScale: {
        shape_scale_[a.node] = a.value;
        wifi_[a.node].traffic.set_rate_scale(surge_scale_[a.node] * a.value);
        trace(t, static_cast<std::uint32_t>(a.node), TraceType::kControlShape,
              static_cast<std::int32_t>(std::lround(a.value * 1000.0)));
        break;
      }
    }
  }
  ++control_epoch_;
  const double next =
      cfg_.control.epoch_us * static_cast<double>(control_epoch_ + 1);
  if (next < duration_us_) queue_.push(next, EventType::kControl, 0);
}

SimResult Engine::run() {
  SLEDZIG_PROF_SCOPE("sim.run");
  if (cfg_.span_log != nullptr) {
    for (std::size_t i = 0; i < num_wifi_; ++i) {
      cfg_.span_log->set_track_name(global(i),
                                    "wifi" + std::to_string(i));
    }
    for (std::size_t j = 0; j < num_zigbee_; ++j) {
      cfg_.span_log->set_track_name(global_z(j),
                                    "zigbee" + std::to_string(j));
    }
  }
  for (std::size_t n = 0; n < num_nodes_; ++n) {
    auto& traffic =
        n < num_wifi_ ? wifi_[n].traffic : zigbee_[n - num_wifi_].traffic;
    // Clock skew offsets the node's first arrival (its boot-time phase);
    // everything after is interval-relative and governed by drift.
    push_arrival(static_cast<std::uint32_t>(n),
                 std::max(0.0, traffic.first_arrival() + fstate_[n].skew_us));
  }
  for (std::size_t a = 0; a < actions_.size(); ++a) {
    queue_.push(actions_[a].at_us, EventType::kFault, 0, 0,
                static_cast<std::uint32_t>(a));
  }
  if (controller_ != nullptr && cfg_.control.epoch_us < duration_us_) {
    queue_.push(cfg_.control.epoch_us, EventType::kControl, 0);
  }

  while (!queue_.empty()) {
    const Event e = queue_.pop();
    ++events_;
    if (inv_.enabled()) inv_.on_event(e.time_us);
    switch (e.type) {
      case EventType::kArrival:
        ++arrival_events_;
        if (e.token != fstate_[e.node].arrival_epoch) {
          ++stale_arrivals_;  // chain orphaned by a crash
          break;
        }
        on_arrival(e.node, e.time_us);
        break;
      case EventType::kTimer: {
        ++timer_events_;
        const std::uint64_t current = e.node < num_wifi_
                                          ? wifi_[e.node].token
                                          : zigbee_[e.node - num_wifi_].token;
        if (e.token != current) {
          ++stale_timers_;  // invalidated by a later transition
          break;
        }
        if (e.node < num_wifi_) {
          on_wifi_timer(e.node, e.time_us);
        } else {
          on_zigbee_timer(e.node - num_wifi_, e.time_us);
        }
        break;
      }
      case EventType::kTxEnd:
        ++tx_end_events_;
        on_tx_end(e.tx_id, e.time_us);
        break;
      case EventType::kFault:
        ++fault_events_;
        on_fault(actions_[e.tx_id], e.time_us);
        break;
      case EventType::kControl:
        ++control_events_;
        on_control(e.time_us);
        break;
    }
  }

  // Frames cut off by the horizon — still queued, or mid-service with
  // their next timer suppressed (push_timer drops timers past the
  // horizon).  The head frame stays at the queue front until terminal, so
  // queue.size() is exactly the in-flight count.
  for (auto& n : wifi_) n.stats.in_flight_at_end = n.queue.size();
  for (auto& n : zigbee_) n.stats.in_flight_at_end = n.queue.size();

  if (inv_.enabled()) {
    for (std::size_t g = 0; g < num_nodes_; ++g) {
      const bool is_wifi = g < num_wifi_;
      const auto& fs = fstate_[g];
      const auto& s = is_wifi ? wifi_[g].stats : zigbee_[g - num_wifi_].stats;
      const bool serving =
          is_wifi ? wifi_[g].serving : zigbee_[g - num_wifi_].serving;
      inv_.on_node_drained(static_cast<std::uint32_t>(g), fs.alive, serving,
                           fs.horizon_cut, fs.active_tx != UINT32_MAX,
                           duration_us_);
      inv_.on_conservation(static_cast<std::uint32_t>(g), s.generated,
                           s.delivered + s.queue_dropped + s.cca_dropped +
                               s.retry_exhausted + s.lost_to_crash +
                               s.in_flight_at_end,
                           duration_us_);
    }
  }

  SimResult result;
  result.events_processed = events_;
  result.trace_digest = digest_;
  result.trace = std::move(trace_);
  const auto finalize = [&](NodeStats& s, double bits_per_frame) {
    s.airtime_fraction = s.airtime_us / duration_us_;
    s.prr = s.sent > 0
                ? static_cast<double>(s.delivered) / static_cast<double>(s.sent)
                : 0.0;
    s.throughput_kbps =
        static_cast<double>(s.delivered) * bits_per_frame / duration_us_ * 1e3;
  };
  result.wifi.reserve(num_wifi_);
  for (auto& n : wifi_) {
    finalize(n.stats, n.bits_per_frame);
    if (control_active_) {
      // The per-frame bit budget can change mid-run (SledZig retoggles),
      // so throughput comes from the bits actually accumulated at each
      // delivery, not a single end-of-run rate.
      n.stats.throughput_kbps = n.delivered_bits / duration_us_ * 1e3;
    }
    result.wifi.push_back(n.stats);
  }
  result.zigbee.reserve(num_zigbee_);
  for (auto& n : zigbee_) {
    finalize(n.stats, n.bits_per_frame);
    result.zigbee.push_back(n.stats);
  }
  flush_metrics();
  // Hand the heap storage back for the next run on this thread (capacity-
  // only reuse; see RunWorkspace).  On a throw the buffers simply die with
  // the engine and the next run reallocates.
  ws_->events = queue_.release();
  ws_->arb = arbiter_.release();
  ws_->perr = std::move(perr_);
  return result;
}

/// One registry touch per run (the event loop only bumps plain members),
/// so observability costs nothing measurable on the hot path.  All flushed
/// values are integers summed over deterministic per-run tallies —
/// thread-count invariant under replication fan-out.
void Engine::flush_metrics() const {
  obs::Registry* reg = cfg_.metrics;
  if (reg == nullptr) return;
  NodeStats sum;
  const auto accumulate = [&sum](const NodeStats& s) {
    sum.generated += s.generated;
    sum.queue_dropped += s.queue_dropped;
    sum.cca_dropped += s.cca_dropped;
    sum.sent += s.sent;
    sum.delivered += s.delivered;
    sum.retries += s.retries;
    sum.retry_exhausted += s.retry_exhausted;
    sum.lost_to_crash += s.lost_to_crash;
    sum.in_flight_at_end += s.in_flight_at_end;
  };
  for (const auto& n : wifi_) accumulate(n.stats);
  for (const auto& n : zigbee_) accumulate(n.stats);

  reg->counter("sim.runs").inc();
  reg->counter("sim.events").add(events_);
  reg->counter("sim.events.arrival").add(arrival_events_);
  reg->counter("sim.events.timer").add(timer_events_);
  reg->counter("sim.events.tx_end").add(tx_end_events_);
  reg->counter("sim.timer.stale").add(stale_timers_);
  reg->counter("sim.frames.generated").add(sum.generated);
  reg->counter("sim.frames.delivered").add(sum.delivered);
  reg->counter("sim.frames.queue_dropped").add(sum.queue_dropped);
  reg->counter("sim.frames.cca_dropped").add(sum.cca_dropped);
  reg->counter("sim.frames.retry_exhausted").add(sum.retry_exhausted);
  reg->counter("sim.frames.lost_to_crash").add(sum.lost_to_crash);
  reg->counter("sim.frames.in_flight_at_end").add(sum.in_flight_at_end);
  reg->counter("sim.tx.attempts").add(sum.sent);
  reg->counter("sim.tx.retries").add(sum.retries);
  // Control-plane tallies: absent entirely without an active policy.
  if (control_events_ > 0) {
    reg->counter("sim.events.control").add(control_events_);
    reg->counter("sim.control.actions").add(control_actions_);
  }
  // Fault-layer tallies: all zero (and free) without a fault plan.
  if (fault_events_ > 0 || stale_arrivals_ > 0) {
    reg->counter("sim.events.fault").add(fault_events_);
    reg->counter("sim.arrival.stale").add(stale_arrivals_);
    reg->counter("sim.faults.crashes").add(crashes_);
    reg->counter("sim.faults.reboots").add(reboots_);
    reg->counter("sim.faults.jam_bursts").add(jam_bursts_);
    reg->counter("sim.faults.tx_aborted").add(tx_aborted_);
    reg->counter("sim.faults.tx_muted").add(tx_muted_);
  }
}

}  // namespace

SimResult run_scenario(const ScenarioConfig& config) {
  if (auto errors = config.validate(); !errors.empty()) {
    throw std::invalid_argument(describe(errors));
  }
  RunWorkspace ws;
  return Engine(config, ws).run();
}

std::vector<SimResult> run_replications(common::ThreadPool& pool,
                                        const ScenarioConfig& config,
                                        std::size_t replications) {
  // Validate once, before any worker touches the config: a structurally
  // broken scenario fails fast with every finding, instead of surfacing as
  // a worker-thread exception deep inside the first replication.
  if (auto errors = config.validate(); !errors.empty()) {
    throw std::invalid_argument(describe(errors));
  }
  // The link cache is pure per topology (no seed in it), so every
  // replication shares one build instead of redoing the O(T^2) geometry
  // and PHY work per seed.
  std::shared_ptr<const LinkCache> cache =
      cache_matches(config.link_cache.get(), config)
          ? config.link_cache
          : LinkCache::build(config);
  return common::parallel_map(pool, replications, [&](std::size_t rep) {
    // Each pool worker keeps one workspace across the replications it
    // runs.  Reuse is capacity-only (every buffer is refilled or cleared
    // per run), so results stay bit-identical for any thread count.
    thread_local RunWorkspace ws;
    ScenarioConfig c = config;
    c.seed = common::derive_seed(config.seed, rep);
    // A TraceLog is single-writer; replications would race on a shared
    // sink, so spans are a single-run feature.  Metrics stay attached —
    // the registry is thread-safe and its sums are commutative.
    c.span_log = nullptr;
    c.link_cache = cache;
    return Engine(c, ws).run();
  });
}

std::vector<SimResult> run_replications(const ScenarioConfig& config,
                                        std::size_t replications) {
  return run_replications(common::default_pool(), config, replications);
}

}  // namespace sledzig::sim
