// Deterministic traffic generators for the discrete-event engine.
#pragma once

#include <cstdint>

#include "common/rng.h"
#include "sim/scenario.h"

namespace sledzig::sim {

/// Arrival process for one node.  Open-loop kinds (CBR, Poisson) are
/// arrival-clocked: each arrival schedules the next, independent of how
/// the MAC is doing — queues grow and drop under outage.  Closed-loop
/// kinds (saturated, duty-cycle) are completion-clocked: the next frame
/// appears relative to the previous frame's completion, which is how the
/// paper's sources behave.
///
/// All randomness comes from the per-node seed, so the process is a pure
/// function of (config, seed).
class TrafficSource {
 public:
  /// `burst_us` is the node's on-air time per frame and `csma_gap_us` its
  /// mean channel-access overhead; kDutyCycle uses both to size the idle
  /// gap that hits the target airtime fraction.
  TrafficSource(const TrafficConfig& cfg, double burst_us,
                double csma_gap_us, std::uint64_t seed);

  bool completion_clocked() const {
    return cfg_.kind == TrafficKind::kSaturated ||
           cfg_.kind == TrafficKind::kDutyCycle;
  }

  /// Time of the run's first arrival.
  double first_arrival();

  /// Open loop: next arrival after the arrival at `now`.
  /// Closed loop: next arrival after the completion at `now`.
  double next_after(double now);

  /// Traffic-surge hook (FaultKind::kSurgeOn/kSurgeOff): multiplies the
  /// arrival rate by `scale` from the next draw on.  CBR/Poisson intervals
  /// and duty-cycle idle gaps shrink by 1/scale; a saturated source is
  /// already at the ceiling and is unaffected.  1.0 restores nominal.
  void set_rate_scale(double scale) { rate_scale_ = scale; }

 private:
  double gap();

  TrafficConfig cfg_;
  double mean_idle_us_ = 0.0;  // kDutyCycle queue-idle mean
  double rate_scale_ = 1.0;
  common::Rng rng_;
};

}  // namespace sledzig::sim
