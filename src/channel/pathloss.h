// Log-distance path-loss model calibrated to the paper's testbed anchors.
//
// The paper's experiments run USRP N210s (WiFi) and TelosB motes (ZigBee) in
// a 10 m x 15 m office with a -91 dBm noise floor.  We fit one log-distance
// model per transmitter type:
//
//   P_rx(d) = P_tx + G_sys - 10 * n * log10(d / 1 m)
//
// with exponent n = 1.8 (office LOS) and per-device system gains G_sys
// chosen so the model reproduces the paper's own measurements:
//   * WiFi @ USRP gain 15: -52 dBm total at 1 m  ->  about -60 dBm in a
//     2 MHz ZigBee channel (Fig 12 normal-WiFi level) and the 8.5 m CCA
//     cutoff of Fig 14 against the CC2420's -77 dBm threshold.
//   * ZigBee @ gain 31 (0 dBm): -75 dBm at 0.5 m (Fig 13), submerged in the
//     -91 dBm floor at 3 m — and ~-85 dBm "2 MHz-slice" RSSI at a WiFi
//     receiver 0.5 m away (Fig 17; the 10 dB gap is bandwidth dilution).
#pragma once

#include "common/units.h"

namespace sledzig::channel {

inline constexpr double kPathLossExponent = 1.8;
/// Thermal + receiver noise integrated over a 2 MHz ZigBee channel.
inline constexpr common::Dbm kNoiseFloor2MhzDbm{-91.0};
/// The same noise density integrated over the full 20 MHz band.
inline constexpr common::Dbm kNoiseFloor20MhzDbm{-81.0};
/// CC2420 energy-detect CCA threshold (2 MHz).
inline constexpr common::Dbm kZigbeeCcaThresholdDbm{-77.0};
/// 802.11 energy-detect CCA threshold (20 MHz).
inline constexpr common::Dbm kWifiCcaThresholdDbm{-62.0};

/// Lognormal shadowing spread reproducing the paper's 1-3 dB RSSI jitter.
inline constexpr common::Db kShadowingSigmaDb{1.0};

struct LinkModel {
  common::Db system_gain_db{};
  double exponent = kPathLossExponent;

  /// Mean received power for a transmit power and distance (no shadowing).
  common::Dbm received_power_dbm(common::Dbm tx_power_dbm,
                                 double distance_m) const;
};

/// USRP WiFi transmitter: "Tx gain" g maps to g dBm (gain 15 -> 15 dBm).
common::Dbm wifi_tx_power_dbm(double usrp_gain);

/// Link models calibrated to the paper (see header comment).
LinkModel wifi_link();    // WiFi transmitter -> any receiver
LinkModel zigbee_link();  // ZigBee transmitter -> any receiver

}  // namespace sledzig::channel
