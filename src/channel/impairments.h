// Composable RF impairment & fault-injection pipeline.
//
// The paper's testbed numbers (Figs 11-17) were measured over real USRP and
// CC2420 front-ends: oscillators that drift, channels with delay spread,
// PAs that clip and ADCs that quantise.  This module makes those hostile
// conditions first-class, *reproducible* inputs to the simulation: an
// `ImpairmentChain` transforms any baseband waveform through a configurable
// sequence of physically-ordered stages, with every random draw derived from
// a single user seed.  The determinism contract is:
//
//     identical (ImpairmentConfig, seed)  =>  bit-identical output waveform
//
// so any failure found by a randomized sweep reproduces from its (config,
// seed) pair alone.  Each stage draws from its own sub-seeded RNG, so
// enabling/disabling one stage never perturbs another stage's randomness.
//
// Stage order follows the physical signal path:
//   TX IQ imbalance -> PA clipping -> multipath channel -> bursty in-band
//   interference -> CFO drift + phase noise (RX LO) -> sample-clock offset
//   (RX ADC timebase) -> ADC quantisation -> capture faults (truncation /
//   sample drops).
#pragma once

#include <cstdint>
#include <utility>

#include "common/fft.h"
#include "common/rng.h"

namespace sledzig::channel {

struct ImpairmentConfig {
  // --- TX IQ imbalance (quadrature modulator gain/phase mismatch). ---
  bool iq_imbalance = false;
  double iq_gain_mismatch_db = 0.0;  // I arm vs Q arm amplitude mismatch
  double iq_phase_error_deg = 0.0;   // quadrature skew

  // --- PA clipping: envelope limited at clip_level_rms * RMS(x). ---
  // Smaller is more severe; OFDM's ~10 dB PAPR makes this the dominant
  // high-order-QAM impairment on real front-ends.
  bool clipping = false;
  double clip_level_rms = 2.0;

  // --- Frequency-selective multipath: tapped delay line, exponential power
  // delay profile, Rayleigh block fading (taps drawn once per packet). ---
  bool multipath = false;
  std::size_t multipath_taps = 4;            // TDL length, sample-spaced
  double delay_spread_samples = 1.5;         // exponential PDP decay constant

  // --- Bursty in-band interferer: gated complex noise bursts at
  // `interferer_power_db` relative to the waveform's mean power. ---
  bool interference = false;
  double interferer_power_db = -10.0;
  double interferer_freq_offset_hz = 0.0;    // centre relative to baseband
  double interferer_bandwidth_hz = 2e6;      // 0 = full band (white)
  double burst_duty = 0.3;                   // fraction of time bursts are on
  double mean_burst_samples = 400.0;         // geometric burst/gap lengths

  // --- RX oscillator: static CFO + linear drift + Wiener phase noise. ---
  bool cfo = false;
  double cfo_hz = 0.0;
  double cfo_drift_hz_per_s = 0.0;
  double phase_noise_std_rad = 0.0;          // random-walk step per sample

  // --- Sample-clock offset: TX/RX ADC timebases differ by `ppm` parts per
  // million; implemented as fractional-delay linear resampling. ---
  bool clock_offset = false;
  double clock_offset_ppm = 0.0;

  // --- ADC quantisation to `quant_bits` per rail, full scale at
  // quant_full_scale_rms * RMS(x). ---
  bool quantization = false;
  unsigned quant_bits = 8;
  double quant_full_scale_rms = 4.0;

  // --- Capture faults: packet truncation and i.i.d. sample drops (USRP
  // overflow-style), both of which shorten and de-align the stream. ---
  bool faults = false;
  double truncate_fraction = 1.0;            // keep the first fraction (0, 1]
  double sample_drop_prob = 0.0;             // per-sample drop probability

  /// Sample rate the time-denominated parameters (CFO drift, interferer
  /// bandwidth) are interpreted at.
  double sample_rate_hz = 20e6;

  /// True when no stage is enabled (apply() is the identity).
  bool is_identity() const {
    return !iq_imbalance && !clipping && !multipath && !interference &&
           !cfo && !clock_offset && !quantization && !faults;
  }

  /// First-order SNR penalty (dB) used by the discrete-event MAC experiments,
  /// where no sample domain exists: the distortion powers of the enabled
  /// stages (clipping residual, interferer duty-weighted power, phase-noise
  /// variance) are summed as extra in-band noise.  A documented
  /// approximation -- the sample-domain chain is the reference model.
  double snr_penalty_db() const;
};

/// Applies the configured stages in physical order.  All randomness is
/// derived from `seed`; see the determinism contract above.  The output
/// length can differ from the input length (clock offset, faults).
common::CplxVec apply_impairments(std::span<const common::Cplx> samples,
                                  const ImpairmentConfig& cfg,
                                  std::uint64_t seed);

/// Convenience wrapper binding a config, mirroring how experiments hold one
/// chain and run many seeds through it.
class ImpairmentChain {
 public:
  ImpairmentChain() = default;
  explicit ImpairmentChain(ImpairmentConfig cfg) : cfg_(std::move(cfg)) {}

  const ImpairmentConfig& config() const { return cfg_; }
  ImpairmentConfig& config() { return cfg_; }

  common::CplxVec apply(std::span<const common::Cplx> samples,
                        std::uint64_t seed) const {
    return apply_impairments(samples, cfg_, seed);
  }

 private:
  ImpairmentConfig cfg_;
};

}  // namespace sledzig::channel
