// Sample-domain wireless medium: mixes unit-power baseband transmissions at
// their received power and centre-frequency offset onto one receiver
// baseband, plus AWGN at the calibrated noise floor.
//
// All sample streams run at 20 MS/s.  Powers follow the repository
// convention that mean |x|^2 == 1 corresponds to 0 dBm (1 mW), so
// 10*log10(mean_power) of any slice of the output is directly a dBm RSSI.
#pragma once

#include <vector>

#include "channel/impairments.h"
#include "common/dsp.h"
#include "common/fft.h"
#include "common/rng.h"

namespace sledzig::channel {

inline constexpr double kMediumSampleRateHz = 20e6;

struct Emission {
  /// Unit-mean-power baseband waveform as produced by a transmitter.
  const common::CplxVec* samples = nullptr;
  /// Received power at this receiver in dBm (path loss already applied).
  double power_dbm = 0.0;
  /// Transmitter centre frequency minus receiver centre frequency.
  double freq_offset_hz = 0.0;
  /// Start time in receiver samples.
  std::size_t start_sample = 0;
  /// Optional per-emission RF impairment chain (nullptr = ideal front-ends
  /// and flat channel).  Applied to the unit-power waveform before power
  /// scaling and frequency placement; the waveform it produces is fully
  /// determined by (*impairment, impairment_seed).
  const ImpairmentConfig* impairment = nullptr;
  std::uint64_t impairment_seed = 0;
};

/// Super-imposes all emissions over `total_samples` samples and adds AWGN
/// with total in-band power `noise_floor_dbm` over `noise_bandwidth_hz`
/// (defaults: the paper's -91 dBm / 2 MHz floor scaled to the full band).
common::CplxVec mix_at_receiver(std::span<const Emission> emissions,
                                std::size_t total_samples, common::Rng& rng,
                                double noise_floor_dbm = -91.0,
                                double noise_bandwidth_hz = 2e6);

/// CC2420-style RSSI: power inside [center-1 MHz, center+1 MHz] of the
/// receiver baseband, in dBm.
double rssi_2mhz_dbm(std::span<const common::Cplx> samples,
                     double center_offset_hz);

/// "2 MHz-slice" RSSI as the paper's USRP receiver reports it: the mean
/// per-2-MHz power across the full 20 MHz band (total power minus 10 dB of
/// bandwidth dilution for a band-filling signal).
double rssi_2mhz_slice_dbm(std::span<const common::Cplx> samples);

/// Total power of the samples in dBm.
double total_power_dbm(std::span<const common::Cplx> samples);

}  // namespace sledzig::channel
