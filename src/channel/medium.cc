#include "channel/medium.h"

#include <cmath>
#include <stdexcept>

#include "common/units.h"

namespace sledzig::channel {

common::CplxVec mix_at_receiver(std::span<const Emission> emissions,
                                std::size_t total_samples, common::Rng& rng,
                                double noise_floor_dbm,
                                double noise_bandwidth_hz) {
  // Scale the in-band noise floor to the full simulated band.
  const double noise_total_dbm =
      noise_floor_dbm +
      10.0 * std::log10(kMediumSampleRateHz / noise_bandwidth_hz);
  const double noise_mw = common::dbm_to_mw(noise_total_dbm);

  common::CplxVec out(total_samples);
  for (auto& s : out) s = rng.complex_gaussian(noise_mw);

  for (const auto& e : emissions) {
    if (e.samples == nullptr) {
      throw std::invalid_argument("mix_at_receiver: null emission");
    }
    const double amp = std::sqrt(common::dbm_to_mw(e.power_dbm));
    const auto shifted = common::frequency_shift(*e.samples, e.freq_offset_hz,
                                                 kMediumSampleRateHz);
    for (std::size_t i = 0; i < shifted.size(); ++i) {
      const std::size_t t = e.start_sample + i;
      if (t >= total_samples) break;
      out[t] += amp * shifted[i];
    }
  }
  return out;
}

double rssi_2mhz_dbm(std::span<const common::Cplx> samples,
                     double center_offset_hz) {
  const double power = common::band_power(samples, kMediumSampleRateHz,
                                          center_offset_hz - 1e6,
                                          center_offset_hz + 1e6);
  return common::mw_to_dbm(std::max(power, 1e-15));
}

double rssi_2mhz_slice_dbm(std::span<const common::Cplx> samples) {
  const double total = common::mean_power(samples);
  return common::mw_to_dbm(std::max(total / 10.0, 1e-15));
}

double total_power_dbm(std::span<const common::Cplx> samples) {
  return common::mw_to_dbm(std::max(common::mean_power(samples), 1e-15));
}

}  // namespace sledzig::channel
