#include "channel/medium.h"

#include <cmath>
#include <limits>
#include <optional>
#include <stdexcept>

#include "common/units.h"

namespace sledzig::channel {

common::CplxVec mix_at_receiver(std::span<const Emission> emissions,
                                std::size_t total_samples, common::Rng& rng,
                                double noise_floor_dbm,
                                double noise_bandwidth_hz) {
  // Scale the in-band noise floor to the full simulated band.
  const double noise_total_dbm =
      noise_floor_dbm +
      10.0 * std::log10(kMediumSampleRateHz / noise_bandwidth_hz);
  const double noise_mw = common::dbm_to_mw(noise_total_dbm);

  common::CplxVec out(total_samples);
  for (auto& s : out) s = rng.complex_gaussian(noise_mw);

  for (const auto& e : emissions) {
    if (e.samples == nullptr) {
      throw std::invalid_argument("mix_at_receiver: null emission");
    }
    const double amp = std::sqrt(common::dbm_to_mw(e.power_dbm));
    std::span<const common::Cplx> waveform = *e.samples;
    common::CplxVec impaired;
    if (e.impairment != nullptr && !e.impairment->is_identity()) {
      impaired = apply_impairments(waveform, *e.impairment, e.impairment_seed);
      waveform = impaired;
    }
    if (e.start_sample >= total_samples) continue;
    // Fused shift + scale + accumulate straight into the receiver baseband:
    // no shifted-waveform copy, and no rotator work at all when the
    // emission is co-channel (freq_offset_hz == 0, the common case).
    common::mix_frequency_shifted(
        waveform, e.freq_offset_hz, kMediumSampleRateHz, amp,
        std::span<common::Cplx>(out).subspan(e.start_sample));
  }
  return out;
}

namespace {

/// Mean |x|^2 counting only finite samples; nullopt when the span is empty
/// or contains no finite sample.  Non-finite samples (a clipped front-end
/// model gone wrong, a divide-by-zero upstream) must degrade to a clean
/// "no power" reading, never propagate NaN into RSSI comparisons.
std::optional<double> finite_mean_power(std::span<const common::Cplx> samples) {
  double p = 0.0;
  std::size_t n = 0;
  for (const auto& s : samples) {
    if (!std::isfinite(s.real()) || !std::isfinite(s.imag())) continue;
    p += std::norm(s);
    ++n;
  }
  if (n == 0) return std::nullopt;
  return p / static_cast<double>(n);
}

// Same value as common::kNoPowerDb; named for the dBm unit at this layer.
constexpr double kNoPowerDbm = common::kNoPowerDb;

}  // namespace

double rssi_2mhz_dbm(std::span<const common::Cplx> samples,
                     double center_offset_hz) {
  // band_power() needs at least one 2-sample Welch segment; shorter or
  // NaN-polluted inputs report the "no signal" floor instead of throwing.
  if (samples.size() < 2) return kNoPowerDbm;
  // Single scan; the all-finite common case touches no memory beyond the
  // read.  On the first bad sample, copy once and scrub only the suffix
  // (the prefix was just verified finite).
  common::CplxVec scrubbed;
  std::span<const common::Cplx> input = samples;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const auto& s = samples[i];
    if (!std::isfinite(s.real()) || !std::isfinite(s.imag())) {
      scrubbed.assign(samples.begin(), samples.end());
      for (std::size_t j = i; j < scrubbed.size(); ++j) {
        auto& v = scrubbed[j];
        if (!std::isfinite(v.real()) || !std::isfinite(v.imag())) {
          v = common::Cplx(0.0, 0.0);
        }
      }
      input = scrubbed;
      break;
    }
  }
  const double power = common::band_power(input, kMediumSampleRateHz,
                                          center_offset_hz - 1e6,
                                          center_offset_hz + 1e6);
  return common::mw_to_dbm(std::max(power, 1e-15));
}

double rssi_2mhz_slice_dbm(std::span<const common::Cplx> samples) {
  const auto total = finite_mean_power(samples);
  if (!total) return kNoPowerDbm;
  return common::mw_to_dbm(std::max(*total / 10.0, 1e-15));
}

double total_power_dbm(std::span<const common::Cplx> samples) {
  const auto total = finite_mean_power(samples);
  if (!total) return kNoPowerDbm;
  return common::mw_to_dbm(std::max(*total, 1e-15));
}

}  // namespace sledzig::channel
