#include "channel/impairments.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/dsp.h"
#include "common/units.h"

namespace sledzig::channel {

namespace {

/// Stage identifiers used to derive per-stage sub-seeds.  Each stage owns an
/// independent RNG stream so toggling one stage never shifts the draws of
/// another (required for axis-by-axis severity sweeps to be comparable).
enum class Stage : std::uint64_t {
  kMultipath = 1,
  kInterferenceGate = 2,
  kInterferenceNoise = 3,
  kPhaseNoise = 4,
  kFaults = 5,
};

/// splitmix64 finaliser: decorrelates the per-stage seeds derived from one
/// user seed.
std::uint64_t stage_seed(std::uint64_t seed, Stage stage) {
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(stage);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

double rms(std::span<const common::Cplx> x) {
  if (x.empty()) return 0.0;
  double p = 0.0;
  for (const auto& s : x) p += std::norm(s);
  return std::sqrt(p / static_cast<double>(x.size()));
}

void apply_iq_imbalance(common::CplxVec& x, const ImpairmentConfig& cfg) {
  const double gi = std::pow(10.0, cfg.iq_gain_mismatch_db / 40.0);
  const double gq = 1.0 / gi;
  const double phi = cfg.iq_phase_error_deg * std::numbers::pi / 180.0;
  const double c = std::cos(phi), s = std::sin(phi);
  for (auto& v : x) {
    const double i = v.real(), q = v.imag();
    v = common::Cplx(gi * i, gq * (q * c - i * s));
  }
}

void apply_clipping(common::CplxVec& x, const ImpairmentConfig& cfg) {
  const double level = cfg.clip_level_rms * rms(x);
  if (level <= 0.0) return;
  for (auto& v : x) {
    const double mag = std::abs(v);
    if (mag > level) v *= level / mag;
  }
}

void apply_multipath(common::CplxVec& x, const ImpairmentConfig& cfg,
                     std::uint64_t seed) {
  const std::size_t taps = std::max<std::size_t>(cfg.multipath_taps, 1);
  const double decay = std::max(cfg.delay_spread_samples, 1e-3);
  // Exponential PDP, normalised to unit average channel power.
  std::vector<double> pdp(taps);
  double total = 0.0;
  for (std::size_t k = 0; k < taps; ++k) {
    pdp[k] = std::exp(-static_cast<double>(k) / decay);
    total += pdp[k];
  }
  common::Rng rng(stage_seed(seed, Stage::kMultipath));
  common::CplxVec h(taps);
  for (std::size_t k = 0; k < taps; ++k) {
    h[k] = rng.complex_gaussian(pdp[k] / total);  // Rayleigh block fading
  }
  common::CplxVec out(x.size(), common::Cplx(0.0, 0.0));
  for (std::size_t n = 0; n < x.size(); ++n) {
    common::Cplx acc(0.0, 0.0);
    const std::size_t kmax = std::min(taps - 1, n);
    for (std::size_t k = 0; k <= kmax; ++k) acc += h[k] * x[n - k];
    out[n] = acc;
  }
  x = std::move(out);
}

void apply_interference(common::CplxVec& x, const ImpairmentConfig& cfg,
                        std::uint64_t seed) {
  if (x.empty()) return;
  const double signal_mean_power = rms(x) * rms(x);
  const double burst_power =
      signal_mean_power * common::db_to_linear(cfg.interferer_power_db);
  if (burst_power <= 0.0) return;

  // Gate: alternating geometric on/off runs with the requested duty cycle.
  const double duty = std::clamp(cfg.burst_duty, 0.0, 1.0);
  if (duty <= 0.0) return;
  const double mean_on = std::max(cfg.mean_burst_samples, 1.0);
  const double mean_off =
      duty >= 1.0 ? 0.0 : mean_on * (1.0 - duty) / duty;
  common::Rng gate_rng(stage_seed(seed, Stage::kInterferenceGate));
  std::vector<bool> gate(x.size(), duty >= 1.0);
  if (duty < 1.0) {
    bool on = gate_rng.uniform() < duty;  // random initial phase of the cycle
    std::size_t pos = 0;
    while (pos < x.size()) {
      const double mean = on ? mean_on : mean_off;
      auto run = static_cast<std::size_t>(
          std::ceil(-mean * std::log1p(-gate_rng.uniform())));
      run = std::max<std::size_t>(run, 1);
      for (std::size_t i = pos; i < std::min(pos + run, x.size()); ++i) {
        gate[i] = on;
      }
      pos += run;
      on = !on;
    }
  }

  common::Rng noise_rng(stage_seed(seed, Stage::kInterferenceNoise));
  common::CplxVec interferer(x.size(), common::Cplx(0.0, 0.0));
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (gate[i]) interferer[i] = noise_rng.complex_gaussian(burst_power);
  }
  // Band-limit to the requested bandwidth, then renormalise so the burst
  // power survives the filter, and move to the in-band centre offset.
  if (cfg.interferer_bandwidth_hz > 0.0 &&
      cfg.interferer_bandwidth_hz < cfg.sample_rate_hz) {
    const auto taps = common::fir_lowpass_taps(
        63, cfg.interferer_bandwidth_hz / 2.0, cfg.sample_rate_hz);
    interferer = common::fir_filter(interferer, taps);
    const double p = rms(interferer) * rms(interferer);
    const double target = burst_power * duty;
    if (p > 0.0) {
      const double scale = std::sqrt(target / p);
      for (auto& v : interferer) v *= scale;
    }
  }
  if (cfg.interferer_freq_offset_hz != 0.0) {
    interferer = common::frequency_shift(
        interferer, cfg.interferer_freq_offset_hz, cfg.sample_rate_hz);
  }
  for (std::size_t i = 0; i < x.size(); ++i) x[i] += interferer[i];
}

void apply_cfo(common::CplxVec& x, const ImpairmentConfig& cfg,
               std::uint64_t seed) {
  const double fs = cfg.sample_rate_hz;
  common::Rng rng(stage_seed(seed, Stage::kPhaseNoise));
  double wiener = 0.0;
  for (std::size_t n = 0; n < x.size(); ++n) {
    const double t = static_cast<double>(n) / fs;
    const double det =
        2.0 * std::numbers::pi * (cfg.cfo_hz + 0.5 * cfg.cfo_drift_hz_per_s * t) * t;
    if (cfg.phase_noise_std_rad > 0.0) {
      wiener += rng.gaussian(cfg.phase_noise_std_rad);
    }
    x[n] *= std::polar(1.0, det + wiener);
  }
}

void apply_clock_offset(common::CplxVec& x, const ImpairmentConfig& cfg) {
  const double eps = cfg.clock_offset_ppm * 1e-6;
  if (eps == 0.0 || x.size() < 2) return;
  const double step = 1.0 + eps;
  common::CplxVec out;
  out.reserve(x.size());
  for (double p = 0.0;; p += step) {
    const auto lo = static_cast<std::size_t>(p);
    if (lo + 1 >= x.size()) break;
    const double frac = p - static_cast<double>(lo);
    out.push_back(x[lo] * (1.0 - frac) + x[lo + 1] * frac);
  }
  x = std::move(out);
}

void apply_quantization(common::CplxVec& x, const ImpairmentConfig& cfg) {
  const unsigned bits = std::clamp(cfg.quant_bits, 1u, 24u);
  const double full_scale = cfg.quant_full_scale_rms * rms(x);
  if (full_scale <= 0.0) return;
  const double levels = static_cast<double>(1u << bits);
  const double step = 2.0 * full_scale / levels;
  const auto q = [&](double v) {
    const double clamped = std::clamp(v, -full_scale, full_scale - step);
    return std::round(clamped / step) * step;
  };
  for (auto& v : x) v = common::Cplx(q(v.real()), q(v.imag()));
}

void apply_faults(common::CplxVec& x, const ImpairmentConfig& cfg,
                  std::uint64_t seed) {
  const double frac = std::clamp(cfg.truncate_fraction, 0.0, 1.0);
  if (frac < 1.0) {
    x.resize(static_cast<std::size_t>(
        std::ceil(frac * static_cast<double>(x.size()))));
  }
  if (cfg.sample_drop_prob > 0.0) {
    common::Rng rng(stage_seed(seed, Stage::kFaults));
    common::CplxVec kept;
    kept.reserve(x.size());
    for (const auto& v : x) {
      if (rng.uniform() >= cfg.sample_drop_prob) kept.push_back(v);
    }
    x = std::move(kept);
  }
}

}  // namespace

double ImpairmentConfig::snr_penalty_db() const {
  // Sum the distortion-to-signal power ratios of the enabled stages as if
  // each were independent additive noise at the receiver.
  double d = 0.0;
  if (clipping && clip_level_rms > 0.0) {
    // Rayleigh-envelope tail power beyond a*RMS: exp(-a^2) * (1 + a^2).
    const double a2 = clip_level_rms * clip_level_rms;
    d += std::exp(-a2) * (1.0 + a2);
  }
  if (interference) {
    d += std::clamp(burst_duty, 0.0, 1.0) *
         common::db_to_linear(interferer_power_db);
  }
  if (cfo && phase_noise_std_rad > 0.0) {
    // Phase-noise EVM over one 64-sample OFDM body of accumulated walk.
    d += phase_noise_std_rad * phase_noise_std_rad * 64.0;
  }
  if (quantization) {
    const unsigned bits = std::clamp(quant_bits, 1u, 24u);
    const double delta = 2.0 * quant_full_scale_rms / static_cast<double>(1u << bits);
    d += delta * delta / 6.0;  // both rails, uniform quantisation noise
  }
  return 10.0 * std::log10(1.0 + d);
}

common::CplxVec apply_impairments(std::span<const common::Cplx> samples,
                                  const ImpairmentConfig& cfg,
                                  std::uint64_t seed) {
  common::CplxVec x(samples.begin(), samples.end());
  if (x.empty() || cfg.is_identity()) return x;
  if (cfg.iq_imbalance) apply_iq_imbalance(x, cfg);
  if (cfg.clipping) apply_clipping(x, cfg);
  if (cfg.multipath) apply_multipath(x, cfg, seed);
  if (cfg.interference) apply_interference(x, cfg, seed);
  if (cfg.cfo) apply_cfo(x, cfg, seed);
  if (cfg.clock_offset) apply_clock_offset(x, cfg);
  if (cfg.quantization) apply_quantization(x, cfg);
  if (cfg.faults) apply_faults(x, cfg, seed);
  return x;
}

}  // namespace sledzig::channel
