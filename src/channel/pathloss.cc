#include "channel/pathloss.h"

#include <cmath>
#include <stdexcept>

namespace sledzig::channel {

common::Dbm LinkModel::received_power_dbm(common::Dbm tx_power_dbm,
                                          double distance_m) const {
  if (distance_m <= 0.0) {
    throw std::invalid_argument("received_power_dbm: distance must be > 0");
  }
  return tx_power_dbm + system_gain_db -
         common::Db{10.0 * exponent * std::log10(distance_m)};
}

common::Dbm wifi_tx_power_dbm(double usrp_gain) {
  return common::Dbm{usrp_gain};
}

LinkModel wifi_link() {
  // Anchor: gain 15 -> -52 dBm total at 1 m  =>  G = -67 dB.
  return LinkModel{common::Db{-67.0}, kPathLossExponent};
}

LinkModel zigbee_link() {
  // Anchor: 0 dBm -> -75 dBm at 0.5 m  =>  G = -75 - 18*log10(2) = -80.4 dB.
  return LinkModel{common::Db{-80.4}, kPathLossExponent};
}

}  // namespace sledzig::channel
