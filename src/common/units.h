// dB / dBm / linear-power conversions and sample-power helpers.
//
// Convention: "power" of a complex-baseband sample vector is the mean of
// |x|^2, interpreted in milliwatts when the signal has been scaled by the
// channel model (so 10*log10(power) is directly a dBm figure).
#pragma once

#include <complex>
#include <span>

namespace sledzig::common {

inline double db_to_linear(double db) { return std::pow(10.0, db / 10.0); }
inline double linear_to_db(double lin) { return 10.0 * std::log10(lin); }

inline double dbm_to_mw(double dbm) { return db_to_linear(dbm); }
inline double mw_to_dbm(double mw) { return linear_to_db(mw); }

/// Mean |x|^2 over the span (0 for an empty span).
double mean_power(std::span<const std::complex<double>> x);

/// Total sum of |x|^2.
double energy(std::span<const std::complex<double>> x);

}  // namespace sledzig::common
