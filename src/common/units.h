// dB / dBm / linear-power conversions and sample-power helpers.
//
// Convention: "power" of a complex-baseband sample vector is the mean of
// |x|^2, interpreted in milliwatts when the signal has been scaled by the
// channel model (so 10*log10(power) is directly a dBm figure).
#pragma once

#include <cmath>
#include <complex>
#include <limits>
#include <span>

namespace sledzig::common {

/// Sentinel for "no measurable power" in dB/dBm space.  linear_to_db()
/// returns it for any non-positive (or NaN) linear input, so an empty
/// emission's RSSI is a well-ordered -inf rather than NaN: comparisons
/// against thresholds stay false, min/max stay sane, and averages only
/// degrade if the caller mixes it in knowingly.  db_to_linear() maps it
/// (and NaN) back to exactly zero power, so the round trip is closed.
inline constexpr double kNoPowerDb = -std::numeric_limits<double>::infinity();

inline double db_to_linear(double db) {
  // Guard the inverse: the kNoPowerDb sentinel maps to +0 via pow already,
  // but a NaN that leaked from upstream arithmetic must not round-trip —
  // "no power in, no power out".
  if (std::isnan(db)) return 0.0;
  return std::pow(10.0, db / 10.0);
}
inline double linear_to_db(double lin) {
  // log10 is -inf at zero and NaN below it; fold both (and NaN input) into
  // the documented sentinel.  `!(lin > 0.0)` is NaN-safe.
  if (!(lin > 0.0)) return kNoPowerDb;
  return 10.0 * std::log10(lin);
}

inline double dbm_to_mw(double dbm) { return db_to_linear(dbm); }
inline double mw_to_dbm(double mw) { return linear_to_db(mw); }

/// Mean |x|^2 over the span (0 for an empty span).
double mean_power(std::span<const std::complex<double>> x);

/// Total sum of |x|^2.
double energy(std::span<const std::complex<double>> x);

}  // namespace sledzig::common
