// dB / dBm / linear-power conversions, sample-power helpers, and the
// strong physical-unit types the power spine is written in.
//
// Convention: "power" of a complex-baseband sample vector is the mean of
// |x|^2, interpreted in milliwatts when the signal has been scaled by the
// channel model (so 10*log10(power) is directly a dBm figure).
//
// The strong types (Db, Dbm, MilliWatt, Hz, MHz) are zero-overhead
// constexpr wrappers over double with only the physically meaningful
// operators defined: a gain can be added to an absolute power
// (Dbm + Db -> Dbm), two absolute powers subtract to a gap
// (Dbm - Dbm -> Db), but Dbm + Dbm does not compile — the class of
// dB-vs-mW mixups that used to ride silently through bare doubles is a
// type error now.  Conversions between the log and linear domains go
// through to_mw()/to_dbm(), which route through the kNoPowerDb-sentinel
// guards below so "no measurable power" round-trips exactly.  The
// analyzer in tools/sledzig_analyzer flags any raw-double parameter or
// field whose name still matches a unit convention outside the
// sample-domain allowlist.
#pragma once

#include <cmath>
#include <compare>
#include <complex>
#include <limits>
#include <span>
#include <type_traits>

namespace sledzig::common {

/// Sentinel for "no measurable power" in dB/dBm space.  linear_to_db()
/// returns it for any non-positive (or NaN) linear input, so an empty
/// emission's RSSI is a well-ordered -inf rather than NaN: comparisons
/// against thresholds stay false, min/max stay sane, and averages only
/// degrade if the caller mixes it in knowingly.  db_to_linear() maps it
/// (and NaN) back to exactly zero power, so the round trip is closed.
inline constexpr double kNoPowerDb = -std::numeric_limits<double>::infinity();

inline double db_to_linear(double db) {
  // Guard the inverse: the kNoPowerDb sentinel maps to +0 via pow already,
  // but a NaN that leaked from upstream arithmetic must not round-trip —
  // "no power in, no power out".
  if (std::isnan(db)) return 0.0;
  return std::pow(10.0, db / 10.0);
}
inline double linear_to_db(double lin) {
  // log10 is -inf at zero and NaN below it; fold both (and NaN input) into
  // the documented sentinel.  `!(lin > 0.0)` is NaN-safe.
  if (!(lin > 0.0)) return kNoPowerDb;
  return 10.0 * std::log10(lin);
}

inline double dbm_to_mw(double dbm) { return db_to_linear(dbm); }
inline double mw_to_dbm(double mw) { return linear_to_db(mw); }

// --- strong unit types ----------------------------------------------------

/// A relative level / gain / gap in decibels.  Dimensionless ratio in the
/// log domain: gains add, a gap divided by a width is a plain number.
class Db {
 public:
  Db() = default;
  constexpr explicit Db(double value) : v_(value) {}
  constexpr double value() const { return v_; }

  constexpr Db& operator+=(Db o) { v_ += o.v_; return *this; }
  constexpr Db& operator-=(Db o) { v_ -= o.v_; return *this; }

  friend constexpr Db operator+(Db a, Db b) { return Db{a.v_ + b.v_}; }
  friend constexpr Db operator-(Db a, Db b) { return Db{a.v_ - b.v_}; }
  friend constexpr Db operator-(Db a) { return Db{-a.v_}; }
  friend constexpr Db operator*(double k, Db a) { return Db{k * a.v_}; }
  friend constexpr Db operator*(Db a, double k) { return Db{a.v_ * k}; }
  /// Gap over width: a dimensionless count of widths (logistic arguments).
  friend constexpr double operator/(Db a, Db b) { return a.v_ / b.v_; }
  friend constexpr auto operator<=>(Db, Db) = default;

 private:
  double v_ = 0.0;
};

/// An absolute power level in dBm.  Offsetting by a gain stays absolute
/// (Dbm + Db -> Dbm); the difference of two levels is a gap
/// (Dbm - Dbm -> Db).  Dbm + Dbm is deliberately not defined: adding two
/// absolute log-domain powers is never physically meaningful.
class Dbm {
 public:
  Dbm() = default;
  constexpr explicit Dbm(double value) : v_(value) {}
  constexpr double value() const { return v_; }

  constexpr Dbm& operator+=(Db o) { v_ += o.value(); return *this; }
  constexpr Dbm& operator-=(Db o) { v_ -= o.value(); return *this; }

  friend constexpr Dbm operator+(Dbm a, Db b) { return Dbm{a.v_ + b.value()}; }
  friend constexpr Dbm operator-(Dbm a, Db b) { return Dbm{a.v_ - b.value()}; }
  friend constexpr Db operator-(Dbm a, Dbm b) { return Db{a.v_ - b.v_}; }
  friend constexpr auto operator<=>(Dbm, Dbm) = default;

 private:
  double v_ = 0.0;
};

/// An absolute power in the linear domain (milliwatts).  Powers add;
/// the ratio of two powers is a plain number (SINR arguments).  mW does
/// not add to or compare against dBm without an explicit conversion.
class MilliWatt {
 public:
  MilliWatt() = default;
  constexpr explicit MilliWatt(double value) : v_(value) {}
  constexpr double value() const { return v_; }

  constexpr MilliWatt& operator+=(MilliWatt o) { v_ += o.v_; return *this; }

  friend constexpr MilliWatt operator+(MilliWatt a, MilliWatt b) {
    return MilliWatt{a.v_ + b.v_};
  }
  friend constexpr double operator/(MilliWatt a, MilliWatt b) {
    return a.v_ / b.v_;
  }
  friend constexpr auto operator<=>(MilliWatt, MilliWatt) = default;

 private:
  double v_ = 0.0;
};

/// A frequency in hertz (band centres, offsets, widths).
class Hz {
 public:
  Hz() = default;
  constexpr explicit Hz(double value) : v_(value) {}
  constexpr double value() const { return v_; }

  friend constexpr Hz operator+(Hz a, Hz b) { return Hz{a.v_ + b.v_}; }
  friend constexpr Hz operator-(Hz a, Hz b) { return Hz{a.v_ - b.v_}; }
  /// Band-overlap fraction: a bandwidth over a bandwidth is a plain ratio.
  friend constexpr double operator/(Hz a, Hz b) { return a.v_ / b.v_; }
  friend constexpr auto operator<=>(Hz, Hz) = default;

 private:
  double v_ = 0.0;
};

/// A frequency in megahertz; converts to Hz explicitly (exact for the
/// integral channel widths this codebase uses).
class MHz {
 public:
  MHz() = default;
  constexpr explicit MHz(double value) : v_(value) {}
  constexpr double value() const { return v_; }
  constexpr Hz to_hz() const { return Hz{v_ * 1e6}; }
  friend constexpr auto operator<=>(MHz, MHz) = default;

 private:
  double v_ = 0.0;
};

/// The sentinel, typed: the dBm of exactly zero linear power.
inline constexpr Dbm kNoPowerDbm{kNoPowerDb};

/// Log -> linear, through the NaN-proof sentinel guard: to_mw(kNoPowerDbm)
/// is exactly 0 mW.
inline MilliWatt to_mw(Dbm p) { return MilliWatt{db_to_linear(p.value())}; }
/// Linear -> log, through the sentinel guard: any non-positive (or NaN)
/// power comes back as kNoPowerDbm.
inline Dbm to_dbm(MilliWatt p) { return Dbm{linear_to_db(p.value())}; }
/// A linear power ratio (e.g. SINR) expressed as a relative level.
inline Db ratio_to_db(double ratio) { return Db{linear_to_db(ratio)}; }

// The wrappers must compile away: same size and layout as the double they
// wrap, trivially copyable, no vtable, no padding.
static_assert(sizeof(Db) == sizeof(double) &&
              sizeof(Dbm) == sizeof(double) &&
              sizeof(MilliWatt) == sizeof(double) &&
              sizeof(Hz) == sizeof(double) && sizeof(MHz) == sizeof(double));
static_assert(std::is_trivially_copyable_v<Db> &&
              std::is_trivially_copyable_v<Dbm> &&
              std::is_trivially_copyable_v<MilliWatt> &&
              std::is_trivially_copyable_v<Hz> &&
              std::is_trivially_copyable_v<MHz>);

/// Mean |x|^2 over the span (0 for an empty span).
double mean_power(std::span<const std::complex<double>> x);

/// Total sum of |x|^2.
double energy(std::span<const std::complex<double>> x);

}  // namespace sledzig::common
