// Per-outcome receiver counters: one obs counter per RxError enumerator,
// named "rx.<chain>.<error>" (e.g. rx.wifi.crc-failed is impossible,
// rx.zigbee.crc-failed is the ZigBee FCS bucket).  Receivers bump exactly
// one counter per call — kNone for clean decodes — so the counters double
// as a decode-attempt census per stage.  Observational only; no result
// path reads them back.
#pragma once

#include <array>
#include <cstddef>
#include <string>

#include "common/rx_error.h"
#include "obs/metrics.h"

namespace sledzig::common {

/// Number of RxError enumerators (kNone .. kCrcFailed, contiguous).
inline constexpr std::size_t kNumRxErrors = 10;

class RxTally {
 public:
  explicit RxTally(const char* chain) {
    for (std::size_t i = 0; i < kNumRxErrors; ++i) {
      const auto e = static_cast<RxError>(i);
      counters_[i] = obs::Registry::global().counter(
          std::string("rx.") + chain + "." + to_string(e));
    }
  }

  void count(RxError e) const {
    const auto i = static_cast<std::size_t>(e);
    if (i < kNumRxErrors) counters_[i].inc();
  }

 private:
  std::array<obs::Counter, kNumRxErrors> counters_{};
};

}  // namespace sledzig::common
