#include "common/fft.h"

#include <array>
#include <atomic>
#include <bit>
#include <cmath>
#include <mutex>
#include <numbers>
#include <stdexcept>

namespace sledzig::common {

bool is_power_of_two(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

FftPlan::FftPlan(std::size_t n) : n_(n), bitrev_(n), twiddle_(n / 2) {
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    bitrev_[i] = static_cast<std::uint32_t>(j);
  }
  for (std::size_t k = 0; k < n / 2; ++k) {
    const double angle =
        -2.0 * std::numbers::pi * static_cast<double>(k) / static_cast<double>(n);
    twiddle_[k] = Cplx(std::cos(angle), std::sin(angle));
  }
}

const FftPlan& FftPlan::get(std::size_t n) {
  if (!is_power_of_two(n)) {
    throw std::invalid_argument("fft: size must be a power of two");
  }
  // One slot per log2(size); lock-free lookup once a plan exists.  Plans
  // stay reachable through the static slots, so they are not leaks.
  // lint: allow(static-state): plan cache; atomic acquire/release + build mutex
  static std::array<std::atomic<const FftPlan*>, 32> slots{};
  // lint: allow(static-state): guards first-build of each plan slot
  static std::mutex build_mutex;
  const unsigned lg = static_cast<unsigned>(std::countr_zero(n));
  if (lg >= slots.size()) {
    throw std::invalid_argument("fft: size too large");
  }
  const FftPlan* plan = slots[lg].load(std::memory_order_acquire);
  if (plan == nullptr) {
    std::scoped_lock lock(build_mutex);
    plan = slots[lg].load(std::memory_order_relaxed);
    if (plan == nullptr) {
      plan = new FftPlan(n);
      slots[lg].store(plan, std::memory_order_release);
    }
  }
  return *plan;
}

void FftPlan::transform(Cplx* x, bool inverse) const {
  const std::size_t n = n_;
  for (std::size_t i = 1; i < n; ++i) {
    const std::size_t j = bitrev_[i];
    if (i < j) std::swap(x[i], x[j]);
  }
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const std::size_t half = len / 2;
    const std::size_t stride = n / len;
    for (std::size_t i = 0; i < n; i += len) {
      for (std::size_t k = 0; k < half; ++k) {
        Cplx w = twiddle_[k * stride];
        if (inverse) w = std::conj(w);
        const Cplx u = x[i + k];
        const Cplx v = x[i + k + half] * w;
        x[i + k] = u + v;
        x[i + k + half] = u - v;
      }
    }
  }
}

void fft_inplace(CplxVec& x, bool inverse) {
  const FftPlan& plan = FftPlan::get(x.size());
  if (inverse) {
    plan.inverse(x.data());
  } else {
    plan.forward(x.data());
  }
}

void fft_into(std::span<const Cplx> in, CplxVec& out, bool inverse) {
  out.assign(in.begin(), in.end());
  fft_inplace(out, inverse);
}

CplxVec fft(std::span<const Cplx> x) {
  CplxVec out;
  fft_into(x, out, /*inverse=*/false);
  return out;
}

CplxVec ifft(std::span<const Cplx> x) {
  CplxVec out;
  fft_into(x, out, /*inverse=*/true);
  const double scale = 1.0 / static_cast<double>(out.size());
  for (Cplx& c : out) c *= scale;
  return out;
}

}  // namespace sledzig::common
