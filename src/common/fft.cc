#include "common/fft.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace sledzig::common {

bool is_power_of_two(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

void fft_inplace(CplxVec& x, bool inverse) {
  const std::size_t n = x.size();
  if (!is_power_of_two(n)) {
    throw std::invalid_argument("fft: size must be a power of two");
  }
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(x[i], x[j]);
  }
  const double sign = inverse ? 1.0 : -1.0;
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle = sign * 2.0 * std::numbers::pi / static_cast<double>(len);
    const Cplx wlen(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      Cplx w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const Cplx u = x[i + k];
        const Cplx v = x[i + k + len / 2] * w;
        x[i + k] = u + v;
        x[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
}

CplxVec fft(std::span<const Cplx> x) {
  CplxVec out(x.begin(), x.end());
  fft_inplace(out, /*inverse=*/false);
  return out;
}

CplxVec ifft(std::span<const Cplx> x) {
  CplxVec out(x.begin(), x.end());
  fft_inplace(out, /*inverse=*/true);
  const double scale = 1.0 / static_cast<double>(out.size());
  for (Cplx& c : out) c *= scale;
  return out;
}

}  // namespace sledzig::common
