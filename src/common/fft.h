// Minimal radix-2 FFT used by the OFDM modem and the spectrum analyser.
//
// Transforms run through a cached FftPlan (precomputed bit-reversal
// permutation + twiddle table per size, built once per process), so hot
// loops — per-symbol OFDM, Welch segments, channel estimation — pay no
// per-call trigonometry.
#pragma once

#include <complex>
#include <cstdint>
#include <span>
#include <vector>

namespace sledzig::common {

using Cplx = std::complex<double>;
using CplxVec = std::vector<Cplx>;

/// Precomputed transform tables for one power-of-two size.
///
/// Plans are immutable after construction and cached for the lifetime of
/// the process; `get()` is lock-free after first use of a size and safe to
/// call from any thread.
class FftPlan {
 public:
  /// Cached plan for size n (throws std::invalid_argument unless n is a
  /// power of two).  The returned reference never dangles.
  static const FftPlan& get(std::size_t n);

  std::size_t size() const { return n_; }

  /// In-place forward DFT of x[0..n).
  void forward(Cplx* x) const { transform(x, /*inverse=*/false); }
  /// In-place unscaled inverse DFT of x[0..n) (divide by n for the true
  /// inverse).
  void inverse(Cplx* x) const { transform(x, /*inverse=*/true); }

 private:
  explicit FftPlan(std::size_t n);
  void transform(Cplx* x, bool inverse) const;

  std::size_t n_;
  std::vector<std::uint32_t> bitrev_;  // bitrev_[i] = bit-reversed i
  std::vector<Cplx> twiddle_;          // exp(-2*pi*i*k/n) for k < n/2
};

/// In-place iterative radix-2 DIT FFT.  `x.size()` must be a power of two.
/// `inverse = true` computes the unscaled inverse transform; divide by N
/// yourself (ifft() below does it for you).
void fft_inplace(CplxVec& x, bool inverse);

/// Out-parameter transform: copies `in` into `out` (resizing it) and
/// transforms in place — one copy, no temporary, reusable output buffer.
void fft_into(std::span<const Cplx> in, CplxVec& out, bool inverse);

/// Forward DFT (copying).  Size must be a power of two.
CplxVec fft(std::span<const Cplx> x);

/// Inverse DFT including the 1/N scale.  Size must be a power of two.
CplxVec ifft(std::span<const Cplx> x);

/// True iff n is a nonzero power of two.
bool is_power_of_two(std::size_t n);

}  // namespace sledzig::common
