// Minimal radix-2 FFT used by the OFDM modem and the spectrum analyser.
#pragma once

#include <complex>
#include <span>
#include <vector>

namespace sledzig::common {

using Cplx = std::complex<double>;
using CplxVec = std::vector<Cplx>;

/// In-place iterative radix-2 DIT FFT.  `x.size()` must be a power of two.
/// `inverse = true` computes the unscaled inverse transform; divide by N
/// yourself (ifft() below does it for you).
void fft_inplace(CplxVec& x, bool inverse);

/// Forward DFT (copying).  Size must be a power of two.
CplxVec fft(std::span<const Cplx> x);

/// Inverse DFT including the 1/N scale.  Size must be a power of two.
CplxVec ifft(std::span<const Cplx> x);

/// True iff n is a nonzero power of two.
bool is_power_of_two(std::size_t n);

}  // namespace sledzig::common
