#include "common/dsp.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace sledzig::common {

double Psd::bin_frequency(std::size_t b) const {
  const auto n = bins.size();
  return (static_cast<double>(b) - static_cast<double>(n) / 2.0) * fs /
         static_cast<double>(n);
}

double Psd::band_power(double f_lo, double f_hi) const {
  double p = 0.0;
  for (std::size_t b = 0; b < bins.size(); ++b) {
    const double f = bin_frequency(b);
    if (f >= f_lo && f <= f_hi) p += bins[b];
  }
  return p;
}

std::vector<double> hann_window(std::size_t n) {
  std::vector<double> w(n);
  for (std::size_t i = 0; i < n; ++i) {
    w[i] = 0.5 * (1.0 - std::cos(2.0 * std::numbers::pi *
                                 static_cast<double>(i) /
                                 static_cast<double>(n)));
  }
  return w;
}

Psd welch_psd(std::span<const Cplx> x, double fs, std::size_t segment_size) {
  if (!is_power_of_two(segment_size)) {
    throw std::invalid_argument("welch_psd: segment_size must be a power of 2");
  }
  if (x.size() < segment_size) {
    throw std::invalid_argument("welch_psd: input shorter than segment");
  }
  const auto window = hann_window(segment_size);
  double window_power = 0.0;
  for (double w : window) window_power += w * w;

  Psd psd;
  psd.fs = fs;
  psd.bins.assign(segment_size, 0.0);

  const std::size_t hop = segment_size / 2;
  std::size_t segments = 0;
  const FftPlan& plan = FftPlan::get(segment_size);  // hoisted out of the loop
  CplxVec seg(segment_size);
  for (std::size_t start = 0; start + segment_size <= x.size(); start += hop) {
    for (std::size_t i = 0; i < segment_size; ++i) {
      seg[i] = x[start + i] * window[i];
    }
    plan.forward(seg.data());
    // FFT bin k maps to frequency k*fs/N for k < N/2 and (k-N)*fs/N above;
    // re-order into [-fs/2, fs/2).
    for (std::size_t k = 0; k < segment_size; ++k) {
      const std::size_t b = (k + segment_size / 2) % segment_size;
      psd.bins[b] += std::norm(seg[k]);
    }
    ++segments;
  }
  // Normalise so that sum(bins) == mean |x|^2 for a full-band signal:
  // each periodogram sums to N * window_power * mean_power for white input.
  const double scale =
      1.0 / (static_cast<double>(segments) * window_power *
             static_cast<double>(segment_size));
  for (double& b : psd.bins) b *= scale;
  return psd;
}

double band_power(std::span<const Cplx> x, double fs, double f_lo, double f_hi,
                  std::size_t segment_size) {
  // Clamp to the input length so short slices (e.g. a 3-symbol packet)
  // still measure, at reduced frequency resolution.
  while (segment_size > x.size() && segment_size > 2) segment_size /= 2;
  return welch_psd(x, fs, segment_size).band_power(f_lo, f_hi);
}

std::vector<double> fir_lowpass_taps(std::size_t num_taps, double cutoff_hz,
                                     double fs) {
  if (num_taps == 0 || num_taps % 2 == 0) {
    throw std::invalid_argument("fir_lowpass_taps: need an odd tap count");
  }
  const double fc = cutoff_hz / fs;  // normalised cutoff (cycles/sample)
  const auto mid = static_cast<double>(num_taps - 1) / 2.0;
  std::vector<double> taps(num_taps);
  double sum = 0.0;
  for (std::size_t i = 0; i < num_taps; ++i) {
    const double t = static_cast<double>(i) - mid;
    const double sinc =
        t == 0.0 ? 2.0 * fc
                 : std::sin(2.0 * std::numbers::pi * fc * t) /
                       (std::numbers::pi * t);
    const double window =
        0.54 - 0.46 * std::cos(2.0 * std::numbers::pi * static_cast<double>(i) /
                               static_cast<double>(num_taps - 1));
    taps[i] = sinc * window;
    sum += taps[i];
  }
  for (double& t : taps) t /= sum;  // unit DC gain
  return taps;
}

CplxVec fir_filter(std::span<const Cplx> x, std::span<const double> taps) {
  CplxVec out(x.size(), Cplx(0.0, 0.0));
  for (std::size_t n = 0; n < x.size(); ++n) {
    Cplx acc(0.0, 0.0);
    const std::size_t kmax = std::min(taps.size(), n + 1);
    for (std::size_t k = 0; k < kmax; ++k) {
      acc += taps[k] * x[n - k];
    }
    out[n] = acc;
  }
  return out;
}

CplxVec frequency_shift(std::span<const Cplx> x, double freq, double fs) {
  CplxVec out(x.size());
  if (freq == 0.0) {
    std::copy(x.begin(), x.end(), out.begin());
    return out;
  }
  const double step = 2.0 * std::numbers::pi * freq / fs;
  // Incremental rotation avoids a sin/cos per sample; renormalise
  // periodically to stop drift.
  Cplx rot(1.0, 0.0);
  const Cplx inc(std::cos(step), std::sin(step));
  for (std::size_t i = 0; i < x.size(); ++i) {
    out[i] = x[i] * rot;
    rot *= inc;
    if ((i & 0x3ff) == 0x3ff) rot /= std::abs(rot);
  }
  return out;
}

void mix_frequency_shifted(std::span<const Cplx> x, double freq, double fs,
                           Cplx gain, std::span<Cplx> out) {
  const std::size_t n = std::min(x.size(), out.size());
  if (freq == 0.0) {
    for (std::size_t i = 0; i < n; ++i) out[i] += gain * x[i];
    return;
  }
  const double step = 2.0 * std::numbers::pi * freq / fs;
  Cplx rot(1.0, 0.0);
  const Cplx inc(std::cos(step), std::sin(step));
  for (std::size_t i = 0; i < n; ++i) {
    out[i] += gain * (x[i] * rot);
    rot *= inc;
    if ((i & 0x3ff) == 0x3ff) rot /= std::abs(rot);
  }
}

}  // namespace sledzig::common
