// Small statistics helpers for experiment reporting (box plots in Fig 16,
// jittered RSSI summaries in Figs 11-13).
#pragma once

#include <span>
#include <vector>

namespace sledzig::common {

double mean(std::span<const double> xs);
double stddev(std::span<const double> xs);

/// Linear-interpolated quantile, q in [0, 1].  xs need not be sorted.
double quantile(std::span<const double> xs, double q);

/// Five-number summary used for the paper's box plots.
struct BoxStats {
  double min = 0;
  double q1 = 0;
  double median = 0;
  double q3 = 0;
  double max = 0;
  double mean = 0;
};

BoxStats box_stats(std::span<const double> xs);

}  // namespace sledzig::common
