#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cerrno>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>

#include "obs/metrics.h"

namespace sledzig::common {

namespace {

/// Set while a thread is executing batch indices; nested parallel calls
/// from inside a trial degrade to serial loops instead of deadlocking.
thread_local bool tl_in_batch = false;

/// Handles resolved once; per-batch bumps only (never per index), so the
/// pool's hot loop stays registry-free.  Batch counts and task totals are
/// functions of the submitted work alone — thread-count invariant.
struct PoolMetrics {
  obs::Counter batches;
  obs::Counter serial_batches;
  obs::Counter tasks;
  obs::Histogram batch_size;
  obs::Gauge pool_size;

  PoolMetrics() {
    auto& reg = obs::Registry::global();
    batches = reg.counter("parallel.batches");
    serial_batches = reg.counter("parallel.serial_batches");
    tasks = reg.counter("parallel.tasks");
    constexpr double kBounds[] = {1,  2,   4,   8,    16,   32,  64,
                                  128, 256, 512, 1024, 4096, 16384};
    batch_size = reg.histogram("parallel.batch_size", kBounds);
    pool_size = reg.gauge("parallel.pool_size");
  }
};

const PoolMetrics& pool_metrics() {
  // lint: allow(static-state): cached metric handles, registered once
  static const PoolMetrics metrics;
  return metrics;
}

}  // namespace

std::size_t default_thread_count() {
  // Read once, before any pool thread exists; nothing in the library writes
  // the environment, so the mt-unsafe getenv cannot race here.
  if (const char* env = std::getenv("SLEDZIG_THREADS")) {  // NOLINT(concurrency-mt-unsafe)
    errno = 0;
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    // Accept only a fully-numeric value (trailing whitespace tolerated);
    // anything else — garbage, empty, 0, negative, or out-of-range — falls
    // back to the hardware default rather than a surprise pool size.
    bool clean = end != env && errno != ERANGE;
    for (const char* p = end; clean && *p != '\0'; ++p) {
      clean = std::isspace(static_cast<unsigned char>(*p)) != 0;
    }
    if (clean && v >= 1) {
      return std::min<std::size_t>(static_cast<std::size_t>(v),
                                   kMaxThreadCount);
    }
  }
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : std::min<std::size_t>(hc, kMaxThreadCount);
}

struct ThreadPool::Impl {
  std::mutex mutex;
  std::condition_variable wake;   // workers wait for a new batch
  std::condition_variable done;   // caller waits for batch completion
  std::vector<std::thread> workers;

  // Current batch (guarded by mutex except the atomics).
  const std::function<void(std::size_t)>* job = nullptr;
  std::size_t job_n = 0;
  std::uint64_t generation = 0;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> completed{0};
  std::size_t active_workers = 0;
  bool batch_in_flight = false;
  std::exception_ptr error;
  bool stop = false;

  /// Claims indices until the batch is exhausted.  Called with no locks.
  void run_indices(const std::function<void(std::size_t)>& fn, std::size_t n) {
    tl_in_batch = true;
    while (true) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) break;
      try {
        fn(i);
      } catch (...) {
        std::scoped_lock lock(mutex);
        if (!error) error = std::current_exception();
      }
      completed.fetch_add(1, std::memory_order_acq_rel);
    }
    tl_in_batch = false;
  }

  void worker_loop() {
    std::uint64_t seen = 0;
    std::unique_lock lock(mutex);
    while (true) {
      wake.wait(lock, [&] { return stop || generation != seen; });
      if (stop) return;
      seen = generation;
      const auto* fn = job;
      const std::size_t n = job_n;
      ++active_workers;
      lock.unlock();
      run_indices(*fn, n);
      lock.lock();
      --active_workers;
      done.notify_all();
    }
  }
};

ThreadPool::ThreadPool(std::size_t num_threads)
    : impl_(std::make_unique<Impl>()),
      num_workers_(num_threads == 0 ? 0 : num_threads - 1) {
  impl_->workers.reserve(num_workers_);
  for (std::size_t i = 0; i < num_workers_; ++i) {
    impl_->workers.emplace_back([this] { impl_->worker_loop(); });
  }
  pool_metrics().pool_size.record(static_cast<double>(num_workers_ + 1));
}

ThreadPool::~ThreadPool() {
  {
    std::scoped_lock lock(impl_->mutex);
    impl_->stop = true;
  }
  impl_->wake.notify_all();
  for (auto& w : impl_->workers) w.join();
}

void ThreadPool::for_each_index(std::size_t n,
                                const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  const PoolMetrics& pm = pool_metrics();
  pm.tasks.add(n);
  pm.batch_size.observe(static_cast<double>(n));
  if (num_workers_ == 0 || n == 1 || tl_in_batch) {
    pm.serial_batches.inc();
    // Serial path: same call sequence fn(0..n-1), no pool interaction.
    // Save/restore rather than clear: a thread still inside an outer batch
    // must stay marked, or its next nested call would take the parallel
    // path and wait on the very batch it is executing.
    const bool was_in_batch = tl_in_batch;
    tl_in_batch = true;
    try {
      for (std::size_t i = 0; i < n; ++i) fn(i);
    } catch (...) {
      tl_in_batch = was_in_batch;
      throw;
    }
    tl_in_batch = was_in_batch;
    return;
  }
  pm.batches.inc();

  std::unique_lock lock(impl_->mutex);
  // One batch at a time: a second submitting thread queues behind the
  // current batch.  Also drain workers that woke late for a previous batch
  // before re-arming the shared state, so no worker can mix an old fn with
  // new indices.
  impl_->done.wait(lock, [&] {
    return !impl_->batch_in_flight && impl_->active_workers == 0;
  });
  impl_->batch_in_flight = true;
  impl_->job = &fn;
  impl_->job_n = n;
  impl_->next.store(0, std::memory_order_relaxed);
  impl_->completed.store(0, std::memory_order_relaxed);
  impl_->error = nullptr;
  ++impl_->generation;
  lock.unlock();
  impl_->wake.notify_all();

  impl_->run_indices(fn, n);

  lock.lock();
  impl_->done.wait(lock, [&] {
    return impl_->completed.load(std::memory_order_acquire) == n &&
           impl_->active_workers == 0;
  });
  impl_->batch_in_flight = false;
  const std::exception_ptr err = impl_->error;
  impl_->error = nullptr;
  lock.unlock();
  impl_->done.notify_all();  // release any queued submitter
  if (err) std::rethrow_exception(err);
}

ThreadPool& default_pool() {
  // Magic-static init is thread-safe; the pool synchronises internally.
  // lint: allow(static-state): process-wide default pool, created once
  static ThreadPool pool(default_thread_count());
  return pool;
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
  default_pool().for_each_index(n, fn);
}

}  // namespace sledzig::common
