// Deterministic parallel execution for Monte-Carlo sweeps.
//
// The contract that keeps every sweep reproducible: work is always
// identified by *index*, never by thread.  `parallel_for(n, fn)` calls
// fn(0..n-1) exactly once each, results are written to index-addressed
// slots, and any per-trial randomness must be seeded from the index (see
// derive_seed) — so the output is bit-identical for any thread count,
// including 1.
//
// Thread count: `SLEDZIG_THREADS` env var when set (>=1), otherwise the
// hardware concurrency.  `SLEDZIG_THREADS=1` runs everything inline on the
// calling thread with no pool interaction at all.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <type_traits>
#include <vector>

namespace sledzig::common {

/// One step of the splitmix64 generator (public-domain constants from
/// Steele, Lea & Flood).  Advances `state` and returns the next output.
inline std::uint64_t splitmix64_next(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// Derives an independent, well-mixed RNG seed for trial `index` of a sweep
/// seeded with `base_seed`.  Pure function of (base_seed, index): trials can
/// run on any thread in any order and still draw identical streams.
inline std::uint64_t derive_seed(std::uint64_t base_seed, std::uint64_t index) {
  std::uint64_t s = base_seed ^ (0xd1342543de82ef95ull * (index + 1));
  const std::uint64_t a = splitmix64_next(s);
  const std::uint64_t b = splitmix64_next(s);
  return a ^ (b << 1 | b >> 63);
}

/// Multi-index derivation: derive_seed(base, i, j, k) left-folds one
/// derive_seed per index, so a nested sweep (campaign -> cell -> rep) gets
/// a seed that is a pure function of the whole index path.  The same
/// contract as the two-argument form, extended: the resulting streams are
/// identical no matter how the index space is partitioned across shards,
/// threads, or resume passes — only the path matters.
template <typename... Rest>
inline std::uint64_t derive_seed(std::uint64_t base_seed, std::uint64_t first,
                                 std::uint64_t second, Rest... rest) {
  return derive_seed(derive_seed(base_seed, first),
                     second, static_cast<std::uint64_t>(rest)...);
}

/// Hard ceiling on the pool size.  SLEDZIG_THREADS=1000000 (or a hardware
/// report gone wrong) must not try to spawn a million threads; oversized
/// requests clamp here instead.
inline constexpr std::size_t kMaxThreadCount = 256;

/// Thread count the default pool uses: SLEDZIG_THREADS when it parses as a
/// whole positive number (clamped to kMaxThreadCount), otherwise
/// std::thread::hardware_concurrency() (min 1, same clamp).  Garbage, empty,
/// zero, negative, or out-of-range values fall back to the hardware default.
std::size_t default_thread_count();

/// A small fixed-size worker pool executing index ranges.  The calling
/// thread always participates, so ThreadPool(1) owns no worker threads and
/// is a plain serial loop.  Destruction joins all workers (clean shutdown
/// under TSan/ASan).
class ThreadPool {
 public:
  /// `num_threads` counts the calling thread: ThreadPool(4) spawns 3
  /// workers.  0 is treated as 1.
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total threads that execute a batch (workers + the caller).
  std::size_t size() const { return num_workers_ + 1; }

  /// Calls fn(i) for every i in [0, n), distributing indices over the pool.
  /// Blocks until all calls return.  Nested calls (fn itself invoking
  /// for_each_index on any pool) run serially inline — no deadlock, same
  /// results.  The first exception thrown by fn is rethrown here after the
  /// batch drains.
  void for_each_index(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  struct Impl;
  // pimpl keeps <thread>/<condition_variable> out of line.
  std::unique_ptr<Impl> impl_;
  std::size_t num_workers_;
};

/// Process-wide pool sized by default_thread_count(); created on first use.
ThreadPool& default_pool();

/// parallel_for over the default pool.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

/// parallel_for over an explicit pool (thread-invariance tests use this to
/// compare 1-thread and N-thread runs directly).
inline void parallel_for(ThreadPool& pool, std::size_t n,
                         const std::function<void(std::size_t)>& fn) {
  pool.for_each_index(n, fn);
}

/// Maps fn over [0, n) into an index-addressed vector: out[i] = fn(i).
/// Deterministic for any thread count.  bool results are staged in one byte
/// per index — std::vector<bool> packs bits, and concurrent writes to
/// neighbouring bits of the same word would race.
template <typename Fn>
auto parallel_map(ThreadPool& pool, std::size_t n, Fn&& fn) {
  using T = std::decay_t<decltype(fn(std::size_t{0}))>;
  if constexpr (std::is_same_v<T, bool>) {
    std::vector<unsigned char> staged(n);
    pool.for_each_index(n, [&](std::size_t i) { staged[i] = fn(i) ? 1 : 0; });
    return std::vector<bool>(staged.begin(), staged.end());
  } else {
    std::vector<T> out(n);
    pool.for_each_index(n, [&](std::size_t i) { out[i] = fn(i); });
    return out;
  }
}

template <typename Fn>
auto parallel_map(std::size_t n, Fn&& fn) {
  return parallel_map(default_pool(), n, std::forward<Fn>(fn));
}

}  // namespace sledzig::common
