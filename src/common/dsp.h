// Spectrum-measurement DSP: Welch PSD, band power (the simulated "RSSI
// register"), and complex frequency shifting used to place signals of
// different centre frequencies on a common baseband.
#pragma once

#include <complex>
#include <span>
#include <vector>

#include "common/fft.h"

namespace sledzig::common {

/// Welch power spectral density estimate.
///
/// Returns `segment_size` bins covering [-fs/2, fs/2), bin b centred at
/// frequency (b - segment_size/2) * fs / segment_size.  Bins are normalised
/// so that the *sum over all bins equals the mean power* of the input, which
/// makes band_power() a direct power-in-band measurement.
struct Psd {
  std::vector<double> bins;   // power per bin (linear, same unit as |x|^2)
  double fs = 0.0;            // sample rate the estimate was made at

  /// Centre frequency of bin b, relative to the baseband centre.
  double bin_frequency(std::size_t b) const;
  /// Sum of bins whose centre lies in [f_lo, f_hi].
  double band_power(double f_lo, double f_hi) const;
};

/// Computes a Welch PSD with 50% overlapped Hann windows.
/// `segment_size` must be a power of two and <= x.size().
Psd welch_psd(std::span<const Cplx> x, double fs, std::size_t segment_size);

/// Power of `x` inside [f_lo, f_hi] (Hz, relative to the baseband centre).
/// Convenience wrapper: Welch PSD then band integration.
double band_power(std::span<const Cplx> x, double fs, double f_lo, double f_hi,
                  std::size_t segment_size = 256);

/// Multiplies x by exp(j*2*pi*freq*t): shifts the spectrum *up* by `freq` Hz.
/// `freq == 0` degenerates to a plain copy (no rotator arithmetic).
CplxVec frequency_shift(std::span<const Cplx> x, double freq, double fs);

/// Fused shift-scale-accumulate: out[i] += gain * (x[i] * exp(j*2*pi*freq*t))
/// for i < min(x.size(), out.size()).  This is the medium's mixing kernel —
/// it avoids materialising the shifted waveform entirely, and skips the
/// rotator when `freq == 0` (the common case for co-channel links).
/// Bit-identical to shifting into a temporary and accumulating it.
void mix_frequency_shifted(std::span<const Cplx> x, double freq, double fs,
                           Cplx gain, std::span<Cplx> out);

/// Hann window of length n (periodic form, suitable for Welch).
std::vector<double> hann_window(std::size_t n);

/// Windowed-sinc low-pass FIR taps (Hamming window, unit DC gain).
/// `num_taps` should be odd so the group delay (num_taps-1)/2 is integral.
std::vector<double> fir_lowpass_taps(std::size_t num_taps, double cutoff_hz,
                                     double fs);

/// Convolves x with real taps ("same" length output: the result is aligned
/// with the input but delayed by (taps-1)/2 samples).
CplxVec fir_filter(std::span<const Cplx> x, std::span<const double> taps);

}  // namespace sledzig::common
