#include "common/bits.h"

#include <stdexcept>

namespace sledzig::common {

Bits bytes_to_bits(std::span<const std::uint8_t> bytes) {
  Bits bits;
  bits.reserve(bytes.size() * 8);
  for (std::uint8_t byte : bytes) {
    for (int i = 0; i < 8; ++i) {
      bits.push_back(static_cast<Bit>((byte >> i) & 1u));
    }
  }
  return bits;
}

Bytes bits_to_bytes(std::span<const Bit> bits) {
  if (bits.size() % 8 != 0) {
    throw std::invalid_argument("bits_to_bytes: size must be a multiple of 8");
  }
  Bytes bytes(bits.size() / 8, 0);
  for (std::size_t i = 0; i < bits.size(); ++i) {
    bytes[i / 8] |= static_cast<std::uint8_t>((bits[i] & 1u) << (i % 8));
  }
  return bytes;
}

std::uint64_t bits_to_uint(std::span<const Bit> bits, std::size_t count) {
  if (count > 64 || count > bits.size()) {
    throw std::invalid_argument("bits_to_uint: bad count");
  }
  std::uint64_t value = 0;
  for (std::size_t i = 0; i < count; ++i) {
    value |= static_cast<std::uint64_t>(bits[i] & 1u) << i;
  }
  return value;
}

void append_uint(Bits& bits, std::uint64_t value, std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) {
    bits.push_back(static_cast<Bit>((value >> i) & 1u));
  }
}

Bit parity(std::span<const Bit> bits) {
  Bit p = 0;
  for (Bit b : bits) p ^= (b & 1u);
  return p;
}

std::string to_string(std::span<const Bit> bits) {
  std::string s;
  s.reserve(bits.size());
  for (Bit b : bits) s.push_back(b ? '1' : '0');
  return s;
}

std::size_t hamming_distance(std::span<const Bit> a, std::span<const Bit> b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("hamming_distance: size mismatch");
  }
  std::size_t d = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    d += static_cast<std::size_t>((a[i] ^ b[i]) & 1u);
  }
  return d;
}

bool is_binary(std::span<const Bit> bits) {
  for (Bit b : bits) {
    if (b > 1) return false;
  }
  return true;
}

}  // namespace sledzig::common
