// Registry of derive_seed domain tags.
//
// A *domain tag* is a large constant passed as the index of a derive_seed
// call to branch one base seed into disjoint stream families — e.g. the
// fault compiler derives every fault stream from
// derive_seed(config.seed, kFaultPlan) so enabling faults can never
// reshuffle the engine's per-node MAC/traffic streams.  Two subsystems
// accidentally picking the same tag would silently alias their stream
// families, which no test would catch until the correlated draws bit; so
// every tag lives here, uniqueness is enforced at compile time, and
// tools/sledzig_analyzer flags ad-hoc hex literals inside derive_seed
// calls anywhere else in src/ (rule `seed-domain`, DESIGN.md §16).
//
// Plain per-node / per-replication indices (small dense integers such as
// `4 * g + 2` or a rep count) are NOT domain tags and stay at their call
// sites; tags are sparse magic constants, far above any index a loop
// could produce.
#pragma once

#include <cstddef>
#include <cstdint>

namespace sledzig::common::seed_domain {

/// Fault-injection branch (sim/faults.cc): all fault-plan randomness —
/// Poisson crash/mute/deaf/surge processes, jammer bursts — derives from
/// derive_seed(config.seed, kFaultPlan), disjoint from the engine's
/// per-node streams (indices 0 .. 4*num_nodes+3 of the raw seed).
inline constexpr std::uint64_t kFaultPlan = 0xFA171CE5ull;

/// Campaign branch (campaign/runner.cc): replication seeds of a campaign
/// are derive_seed(spec.seed, kCampaign, cell, rep), so a (cell, rep)
/// work item draws the same streams no matter which shard, thread, or
/// resume pass executes it — the root of the store-digest identity
/// contract (DESIGN.md §17).
inline constexpr std::uint64_t kCampaign = 0xCA59A16Bull;

/// Control-plane branch (sim/engine.cc): the shadowing jitter of every
/// link entry a runtime action retunes (ZigBee channel hops) is the pure
/// function derive_seed(config.seed, kControl, point, tx, channel) — no
/// stateful RNG stream — so a controlled run's tables are bit-identical
/// however many threads execute it and whatever order actions fire in.
inline constexpr std::uint64_t kControl = 0xC0270177ull;

/// Every registered tag, for the uniqueness check below.  Append new tags
/// here and above, never inline at a call site.
inline constexpr std::uint64_t kAllDomains[] = {
    kFaultPlan,
    kCampaign,
    kControl,
};

/// Compile-time pairwise-uniqueness check: a duplicated tag fails the
/// static_assert below the moment the header is included anywhere.
constexpr bool all_domains_unique() {
  constexpr std::size_t n = sizeof(kAllDomains) / sizeof(kAllDomains[0]);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (kAllDomains[i] == kAllDomains[j]) return false;
    }
  }
  return true;
}

static_assert(all_domains_unique(),
              "duplicate derive_seed domain tag in seed_domains.h");

}  // namespace sledzig::common::seed_domain
