// Deterministic random number generation for reproducible experiments.
#pragma once

#include <complex>
#include <cstdint>
#include <random>

#include "common/bits.h"

namespace sledzig::common {

/// Thin wrapper around std::mt19937_64 with the helpers the PHY/MAC
/// simulations need.  Every experiment takes an explicit seed so runs are
/// reproducible; nothing in the library touches global RNG state.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  Bit bit() { return static_cast<Bit>(engine_() & 1u); }

  Bits bits(std::size_t count) {
    Bits out(count);
    for (auto& b : out) b = bit();
    return out;
  }

  Bytes bytes(std::size_t count) {
    Bytes out(count);
    for (auto& b : out) b = static_cast<std::uint8_t>(engine_() & 0xffu);
    return out;
  }

  /// Uniform double in [0, 1).
  double uniform() { return uni_(engine_); }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Zero-mean Gaussian with the given standard deviation.
  double gaussian(double stddev) {
    return std::normal_distribution<double>(0.0, stddev)(engine_);
  }

  /// Circularly-symmetric complex Gaussian sample with total power
  /// `power_mw` (E[|x|^2] = power_mw).
  std::complex<double> complex_gaussian(double power_mw) {
    const double s = std::sqrt(power_mw / 2.0);
    return {gaussian(s), gaussian(s)};
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uniform_real_distribution<double> uni_{0.0, 1.0};
};

}  // namespace sledzig::common
