// Bit-level utilities shared by every PHY module.
//
// Throughout the codebase a "bit stream" is a std::vector<std::uint8_t> whose
// elements are 0 or 1.  802.11 and 802.15.4 both serialise octets LSB-first,
// so the byte<->bit conversions here follow that convention.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace sledzig::common {

using Bit = std::uint8_t;
using Bits = std::vector<Bit>;
using Bytes = std::vector<std::uint8_t>;

/// Expands octets into bits, LSB of each octet first (802.11 / 802.15.4 PHY
/// serialisation order).
Bits bytes_to_bits(std::span<const std::uint8_t> bytes);

/// Packs bits (LSB-first per octet) back into octets.  The bit count must be
/// a multiple of 8.
Bytes bits_to_bytes(std::span<const Bit> bits);

/// Interprets the first `count` bits as an unsigned integer, LSB first.
std::uint64_t bits_to_uint(std::span<const Bit> bits, std::size_t count);

/// Appends `count` bits of `value`, LSB first.
void append_uint(Bits& bits, std::uint64_t value, std::size_t count);

/// XOR-reduction (parity) of all bits.
Bit parity(std::span<const Bit> bits);

/// Returns "0101..." for debugging and test failure messages.
std::string to_string(std::span<const Bit> bits);

/// Hamming distance between two equal-length bit streams.
std::size_t hamming_distance(std::span<const Bit> a, std::span<const Bit> b);

/// True when every element is 0 or 1 (cheap sanity check used in asserts).
bool is_binary(std::span<const Bit> bits);

}  // namespace sledzig::common
