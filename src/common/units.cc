#include "common/units.h"

namespace sledzig::common {

double mean_power(std::span<const std::complex<double>> x) {
  if (x.empty()) return 0.0;
  return energy(x) / static_cast<double>(x.size());
}

double energy(std::span<const std::complex<double>> x) {
  double e = 0.0;
  for (const auto& c : x) e += std::norm(c);
  return e;
}

}  // namespace sledzig::common
