// Structured receiver failure reasons.
//
// Error-handling contract: every decode path that returns without a payload
// must say *why* via an RxError, so robustness sweeps can distinguish "no
// packet present" from "packet present but mangled" and assert on the exact
// failure mode an injected impairment should produce.  kNone is reserved for
// a fully successful decode; a receiver result carrying kNone with an empty
// payload is a bug.
#pragma once

namespace sledzig::common {

enum class RxError {
  kNone = 0,
  /// Input contained NaN/Inf samples; decoding was refused up front.
  kNanSamples,
  /// No preamble correlation exceeded the detection threshold.
  kNoPreamble,
  /// (WiFi) SIGNAL symbol failed parity / carried an unknown RATE code.
  kSignalParity,
  /// (WiFi) SIGNAL LENGTH exceeds the receiver's configured PSDU cap —
  /// a hostile length must not drive a huge allocation or long decode.
  kSignalLengthCap,
  /// The buffer ends before the payload the header promises (mid-packet
  /// cut, sample drops, truncation faults).
  kTruncatedPayload,
  /// (WiFi) The Viterbi-decoded stream is shorter than the payload span
  /// the SIGNAL field implies (descrambled stream overrun).
  kViterbiOverrun,
  /// (ZigBee) Preamble locked but no SFD octet found in the scan window.
  kNoSfd,
  /// (ZigBee) Frame-length octet below the minimum (FCS would not fit).
  kBadLength,
  /// (ZigBee) Payload demodulated but the CRC-16 FCS check failed.
  kCrcFailed,
};

constexpr const char* to_string(RxError e) {
  switch (e) {
    case RxError::kNone: return "none";
    case RxError::kNanSamples: return "nan-samples";
    case RxError::kNoPreamble: return "no-preamble";
    case RxError::kSignalParity: return "signal-parity";
    case RxError::kSignalLengthCap: return "signal-length-cap";
    case RxError::kTruncatedPayload: return "truncated-payload";
    case RxError::kViterbiOverrun: return "viterbi-overrun";
    case RxError::kNoSfd: return "no-sfd";
    case RxError::kBadLength: return "bad-length";
    case RxError::kCrcFailed: return "crc-failed";
  }
  return "unknown";
}

}  // namespace sledzig::common
