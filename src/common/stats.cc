#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sledzig::common {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(xs.size() - 1));
}

double quantile(std::span<const double> xs, double q) {
  if (xs.empty()) throw std::invalid_argument("quantile: empty input");
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("quantile: q out of range");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(pos));
  const auto hi = static_cast<std::size_t>(std::ceil(pos));
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

BoxStats box_stats(std::span<const double> xs) {
  BoxStats b;
  if (xs.empty()) return b;
  b.min = quantile(xs, 0.0);
  b.q1 = quantile(xs, 0.25);
  b.median = quantile(xs, 0.5);
  b.q3 = quantile(xs, 0.75);
  b.max = quantile(xs, 1.0);
  b.mean = mean(xs);
  return b;
}

}  // namespace sledzig::common
