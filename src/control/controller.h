// Runtime adaptive coexistence control plane (DESIGN.md §18).
//
// The paper's premise is coexistence that reacts to live spectrum
// conditions, not a SledZig switch wired at configuration time.  This
// module is the decision layer: the simulation engine samples per-node
// counters at a fixed epoch, hands the controller an EpochSnapshot of
// per-epoch deltas, and applies whatever Actions come back at the epoch
// boundary —
//
//   * SledZig engage/disengage with hysteresis, promoting
//     coex::AdaptiveController from an offline detector study to the
//     in-loop policy (synthetic detections are built from per-window
//     ZigBee airtime, the discrete-event analogue of a spectrum scan);
//   * ZigBee channel hops away from busy WiFi BSSs, using the
//     multi-channel topology (quietest candidate first, deterministic
//     rotation on repeated misses);
//   * WiFi duty-cycle shaping (OfdmFi-style airtime windows), throttling
//     WiFi sources while aggregate ZigBee PRR is below target.
//
// Determinism contract: the controller holds no RNG and no reference to
// the engine — every decision is a pure function of the configuration and
// the observation history, so a controlled run stays bit-identical across
// thread counts.  Observations are deterministic in-engine counters, never
// obs::Registry readback (the obs layer may be compiled out).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "coex/detector.h"

namespace sledzig::control {

/// SledZig engage/disengage policy: a per-overlap-window activity score
/// with AdaptiveController hysteresis.  A window counts "active" in an
/// epoch when the ZigBee airtime of the motes parked in it reaches
/// busy_airtime_fraction of the epoch.
struct SledzigPolicyConfig {
  bool enabled = false;
  /// Consecutive active epochs before a window is protected.
  unsigned on_threshold = 2;
  /// Consecutive idle epochs before protection stops.
  unsigned off_threshold = 5;
  /// ZigBee airtime / epoch ratio at which a window counts active.
  double busy_airtime_fraction = 0.01;
};

/// ZigBee channel-hop policy: a mote whose per-epoch PRR stays below
/// min_prr for `patience` consecutive busy epochs hops to its next
/// candidate channel, then holds still for cooldown_epochs.
struct HopPolicyConfig {
  bool enabled = false;
  double min_prr = 0.85;
  unsigned patience = 3;
  unsigned cooldown_epochs = 8;
};

/// WiFi airtime-shaping policy: while aggregate ZigBee PRR sits below
/// min_zigbee_prr for `patience` epochs, every WiFi source is throttled
/// to rate_scale of its configured rate; `release` consecutive healthy
/// epochs restore full rate.
struct DutyPolicyConfig {
  bool enabled = false;
  double min_zigbee_prr = 0.9;
  double rate_scale = 0.5;
  unsigned patience = 2;
  unsigned release = 4;
};

struct ControlConfig {
  bool enabled = false;
  /// Observation/action period.  Epoch k's boundary is at k * epoch_us.
  double epoch_us = 100000.0;
  SledzigPolicyConfig sledzig;
  HopPolicyConfig hop;
  DutyPolicyConfig duty;

  /// True when the engine should run the control loop at all.
  bool active() const {
    return enabled && (sledzig.enabled || hop.enabled || duty.enabled);
  }
};

/// Per-node counters over ONE epoch (deltas, not cumulative totals).
struct NodeObservation {
  std::uint64_t generated = 0;
  std::uint64_t sent = 0;       ///< transmission attempts completed
  std::uint64_t delivered = 0;
  std::uint64_t retry_exhausted = 0;
  std::uint64_t cca_busy = 0;   ///< ZigBee CCA assessments that found energy
  std::uint64_t cca_clear = 0;
  double airtime_us = 0.0;
};

struct EpochSnapshot {
  std::uint64_t epoch = 0;   ///< 0-based; boundary time is (epoch+1)*epoch_us
  double time_us = 0.0;
  double epoch_us = 0.0;
  std::span<const NodeObservation> wifi;
  std::span<const NodeObservation> zigbee;
};

enum class ActionKind : std::uint8_t {
  kSledzig,        ///< value: 1 engage, 0 disengage (all WiFi nodes)
  kZigbeeChannel,  ///< node: zigbee index; value: new 802.15.4 channel
  kWifiRateScale,  ///< node: wifi index; value: traffic rate scale
};

struct Action {
  ActionKind kind{};
  std::size_t node = 0;
  double value = 0.0;
};

/// Static facts about one ZigBee node the hop and SledZig policies need;
/// computed once by the engine from the link cache.
struct ZigbeeNodeContext {
  /// Overlap-window index (0..3) of the node's channel under the WiFi BSS
  /// it coexists with, or -1 when it sits in no window.
  int overlap = -1;
  /// Hop targets in preference order (quietest static interference first,
  /// channel id ascending on ties); never contains the initial channel.
  std::vector<unsigned> candidates;
};

/// The decision layer.  Feed one EpochSnapshot per epoch in time order;
/// apply the returned actions at that boundary.  Action order within an
/// epoch is fixed (SledZig, hops by node index, rate shaping by node
/// index), so replays are exact.
class Controller {
 public:
  Controller(const ControlConfig& cfg, std::vector<ZigbeeNodeContext> zigbee,
             std::size_t num_wifi, bool sledzig_engaged);

  std::vector<Action> on_epoch(const EpochSnapshot& snap);

  bool sledzig_engaged() const { return sledzig_engaged_; }
  bool shaping() const { return shaping_; }

 private:
  struct HopState {
    unsigned below = 0;     ///< consecutive busy epochs under min_prr
    unsigned cooldown = 0;  ///< epochs left before the next hop may fire
    std::size_t next = 0;   ///< rotating index into candidates
  };

  ControlConfig cfg_;
  std::vector<ZigbeeNodeContext> zigbee_;
  std::size_t num_wifi_;
  coex::AdaptiveController adaptive_;
  bool sledzig_engaged_;
  std::vector<HopState> hop_;
  unsigned duty_bad_ = 0;
  unsigned duty_good_ = 0;
  bool shaping_ = false;
};

}  // namespace sledzig::control
