#include "control/controller.h"

#include <array>

namespace sledzig::control {

Controller::Controller(const ControlConfig& cfg,
                       std::vector<ZigbeeNodeContext> zigbee,
                       std::size_t num_wifi, bool sledzig_engaged)
    : cfg_(cfg),
      zigbee_(std::move(zigbee)),
      num_wifi_(num_wifi),
      adaptive_(coex::AdaptiveController::Params{
          cfg.sledzig.on_threshold, cfg.sledzig.off_threshold,
          core::kAllOverlapChannels.size()}),
      sledzig_engaged_(sledzig_engaged),
      hop_(zigbee_.size()) {}

std::vector<Action> Controller::on_epoch(const EpochSnapshot& snap) {
  std::vector<Action> actions;

  if (cfg_.sledzig.enabled) {
    // Synthetic spectrum scan: a window's activity is the airtime its
    // motes spent on air this epoch, as a fraction of the epoch.  The
    // fraction doubles as the detection strength, so the hysteresis
    // controller orders windows exactly by how busy they are.
    std::array<double, 4> activity{};
    for (std::size_t j = 0; j < zigbee_.size(); ++j) {
      const int w = zigbee_[j].overlap;
      if (w >= 0 && j < snap.zigbee.size()) {
        activity[static_cast<std::size_t>(w)] +=
            snap.zigbee[j].airtime_us / snap.epoch_us;
      }
    }
    std::vector<coex::ZigbeeDetection> detections;
    for (std::size_t w = 0; w < activity.size(); ++w) {
      if (activity[w] >= cfg_.sledzig.busy_airtime_fraction) {
        detections.push_back(coex::ZigbeeDetection{
            static_cast<core::OverlapChannel>(w), activity[w], 1.0});
      }
    }
    adaptive_.observe(detections);
    const bool engage = !adaptive_.protected_channels().empty();
    if (engage != sledzig_engaged_) {
      sledzig_engaged_ = engage;
      actions.push_back(
          {ActionKind::kSledzig, 0, engage ? 1.0 : 0.0});
    }
  }

  if (cfg_.hop.enabled) {
    for (std::size_t j = 0; j < zigbee_.size() && j < snap.zigbee.size();
         ++j) {
      auto& h = hop_[j];
      if (h.cooldown > 0) --h.cooldown;
      if (zigbee_[j].candidates.empty()) continue;
      const auto& o = snap.zigbee[j];
      // Idle epochs (no completed attempts) carry no PRR signal.
      if (o.sent == 0) continue;
      const double prr = static_cast<double>(o.delivered) /
                         static_cast<double>(o.sent);
      if (prr < cfg_.hop.min_prr) {
        ++h.below;
      } else {
        h.below = 0;
      }
      if (h.below >= cfg_.hop.patience && h.cooldown == 0) {
        const unsigned target =
            zigbee_[j].candidates[h.next % zigbee_[j].candidates.size()];
        ++h.next;
        h.below = 0;
        h.cooldown = cfg_.hop.cooldown_epochs;
        actions.push_back({ActionKind::kZigbeeChannel, j,
                           static_cast<double>(target)});
      }
    }
  }

  if (cfg_.duty.enabled) {
    std::uint64_t sent = 0;
    std::uint64_t delivered = 0;
    for (const auto& o : snap.zigbee) {
      sent += o.sent;
      delivered += o.delivered;
    }
    if (sent > 0) {
      const double prr =
          static_cast<double>(delivered) / static_cast<double>(sent);
      if (prr < cfg_.duty.min_zigbee_prr) {
        ++duty_bad_;
        duty_good_ = 0;
      } else {
        duty_bad_ = 0;
        ++duty_good_;
      }
    }
    if (!shaping_ && duty_bad_ >= cfg_.duty.patience) {
      shaping_ = true;
      duty_bad_ = 0;
      for (std::size_t i = 0; i < num_wifi_; ++i) {
        actions.push_back(
            {ActionKind::kWifiRateScale, i, cfg_.duty.rate_scale});
      }
    } else if (shaping_ && duty_good_ >= cfg_.duty.release) {
      shaping_ = false;
      duty_good_ = 0;
      for (std::size_t i = 0; i < num_wifi_; ++i) {
        actions.push_back({ActionKind::kWifiRateScale, i, 1.0});
      }
    }
  }

  return actions;
}

}  // namespace sledzig::control
