#include "wifi/scrambler.h"

#include <stdexcept>

namespace sledzig::wifi {

common::Bits scrambler_sequence(std::uint8_t seed, std::size_t count) {
  if ((seed & 0x7f) == 0) {
    throw std::invalid_argument("scrambler: seed must be a nonzero 7-bit value");
  }
  // state bits: state[0] = x1 ... state[6] = x7 in the standard's notation.
  std::uint8_t state = static_cast<std::uint8_t>(seed & 0x7f);
  common::Bits out(count);
  for (std::size_t i = 0; i < count; ++i) {
    // Feedback = x7 XOR x4.
    const std::uint8_t x7 = (state >> 6) & 1u;
    const std::uint8_t x4 = (state >> 3) & 1u;
    const std::uint8_t fb = x7 ^ x4;
    out[i] = fb;
    state = static_cast<std::uint8_t>(((state << 1) | fb) & 0x7f);
  }
  return out;
}

common::Bits scramble(const common::Bits& in, std::uint8_t seed) {
  const auto key = scrambler_sequence(seed, in.size());
  common::Bits out(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    out[i] = static_cast<common::Bit>((in[i] ^ key[i]) & 1u);
  }
  return out;
}

}  // namespace sledzig::wifi
