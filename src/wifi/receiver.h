// Standard 802.11 OFDM receiver: preamble detection (LTF cross-correlation),
// LTF channel estimation, SIGNAL decoding, then per-symbol demap /
// deinterleave / depuncture / Viterbi / descramble.
#pragma once

#include <cstdint>
#include <optional>

#include "common/bits.h"
#include "common/fft.h"
#include "common/rx_error.h"
#include "wifi/phy_params.h"
#include "wifi/signal_field.h"
#include "wifi/transmitter.h"

namespace sledzig::wifi {

struct WifiRxConfig {
  /// The scrambler seed is carried by the SERVICE field in the full standard;
  /// in the paper's accounting (no SERVICE field) both ends share it.
  std::uint8_t scrambler_seed = 0x5d;
  bool include_service_field = false;
  /// Normalised correlation threshold for preamble detection.
  double detection_threshold = 0.55;
  /// Channel bandwidth (must match the transmitter).
  ChannelWidth width = ChannelWidth::k20MHz;
  /// Soft-decision (LLR) demapping + Viterbi: ~2 dB better than hard
  /// decisions at the paper's operating points.
  bool soft_decision = true;
  /// Carrier-frequency-offset estimation and correction (STF coarse + LTF
  /// fine, the classic Schmidl-Cox style).  Real USRP/card oscillators are
  /// tens of kHz off at 2.4 GHz; disable only for idealised tests.
  bool correct_cfo = true;
  /// Upper bound accepted from the SIGNAL LENGTH field.  The 12-bit field
  /// caps at 4095 octets; a lower cap rejects hostile headers before they
  /// drive long Viterbi runs over what is actually noise.
  std::size_t max_psdu_octets = 4095;
};

/// Timing + CFO synchronisation result.
struct SyncInfo {
  std::size_t packet_start = 0;
  double cfo_hz = 0.0;
};

/// CFO-tolerant synchronisation: STF autocorrelation (lag fft/4) finds the
/// packet and the coarse CFO, the derotated LTF cross-correlation refines
/// the timing, and the two LTS bodies give the fine CFO.
std::optional<SyncInfo> synchronize_packet(std::span<const common::Cplx> samples,
                                           double threshold,
                                           ChannelWidth width);

struct WifiRxResult {
  bool detected = false;
  bool signal_valid = false;
  SignalField signal;
  /// Decoded PSDU octets (empty when not decodable).
  common::Bytes psdu;
  /// Uncoded scrambled-domain stream as decoded (payload + tail + pad) —
  /// the stage SledZig's extra-bit removal operates on.
  common::Bits scrambled_stream;
  /// Sample index where the packet (STF) starts.
  std::size_t packet_start = 0;
  /// Why decoding stopped; kNone iff a PSDU was produced.  The PHY has no
  /// CRC, so kNone means "pipeline completed", not "bits are correct".
  common::RxError error = common::RxError::kNoPreamble;

  bool ok() const { return error == common::RxError::kNone; }
};

/// Detects and decodes the first packet in `samples`.
WifiRxResult wifi_receive(std::span<const common::Cplx> samples,
                          const WifiRxConfig& cfg);

/// Returns the start index of the packet preamble, or nullopt when no
/// preamble exceeds the detection threshold.
std::optional<std::size_t> detect_preamble(std::span<const common::Cplx> samples,
                                           double threshold,
                                           ChannelWidth width = ChannelWidth::k20MHz);

/// Per-FFT-bin channel estimate from the two long training symbols located
/// at `ltf_start` (start of the LTF).
common::CplxVec estimate_channel(std::span<const common::Cplx> samples,
                                 std::size_t ltf_start,
                                 ChannelWidth width = ChannelWidth::k20MHz);

/// Genie-aided data-field decoder used by tests: `data_samples` must start at
/// the first data OFDM symbol.
common::Bits decode_data_field(std::span<const common::Cplx> data_samples,
                               Modulation m, CodingRate r,
                               std::size_t num_symbols,
                               std::span<const common::Cplx> channel,
                               ChannelWidth width = ChannelWidth::k20MHz,
                               bool soft_decision = true);

}  // namespace sledzig::wifi
