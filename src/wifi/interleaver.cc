#include "wifi/interleaver.h"

#include <stdexcept>

namespace sledzig::wifi {

std::vector<std::size_t> interleaver_permutation(Modulation m,
                                                 const ChannelPlan& plan) {
  const std::size_t n_cbps = coded_bits_per_symbol(m, plan);
  const std::size_t n_bpsc = bits_per_subcarrier(m);
  const std::size_t cols = plan.interleaver_columns;
  const std::size_t s = std::max<std::size_t>(n_bpsc / 2, 1);
  if (n_cbps % cols != 0) {
    throw std::logic_error("interleaver: N_CBPS not divisible by columns");
  }
  std::vector<std::size_t> perm(n_cbps);
  for (std::size_t k = 0; k < n_cbps; ++k) {
    const std::size_t i = (n_cbps / cols) * (k % cols) + k / cols;
    const std::size_t j =
        s * (i / s) + (i + n_cbps - (cols * i / n_cbps)) % s;
    perm[k] = j;
  }
  return perm;
}

std::vector<std::size_t> interleaver_permutation(Modulation m) {
  return interleaver_permutation(m, channel_plan(ChannelWidth::k20MHz));
}

std::vector<std::size_t> interleaver_inverse(Modulation m,
                                             const ChannelPlan& plan) {
  const auto perm = interleaver_permutation(m, plan);
  std::vector<std::size_t> inv(perm.size());
  for (std::size_t k = 0; k < perm.size(); ++k) inv[perm[k]] = k;
  return inv;
}

std::vector<std::size_t> interleaver_inverse(Modulation m) {
  return interleaver_inverse(m, channel_plan(ChannelWidth::k20MHz));
}

namespace {

template <typename T>
std::vector<T> apply_blockwise(const std::vector<T>& in, Modulation m,
                               const ChannelPlan& plan, bool forward) {
  const std::size_t n_cbps = coded_bits_per_symbol(m, plan);
  if (in.size() % n_cbps != 0) {
    throw std::invalid_argument(
        "interleave: input not a multiple of N_CBPS");
  }
  const auto perm = interleaver_permutation(m, plan);
  std::vector<T> out(in.size());
  for (std::size_t block = 0; block < in.size(); block += n_cbps) {
    for (std::size_t k = 0; k < n_cbps; ++k) {
      if (forward) {
        out[block + k] = in[block + perm[k]];  // gather (see header)
      } else {
        out[block + perm[k]] = in[block + k];
      }
    }
  }
  return out;
}

}  // namespace

common::Bits interleave(const common::Bits& in, Modulation m,
                        const ChannelPlan& plan) {
  return apply_blockwise(in, m, plan, /*forward=*/true);
}

common::Bits interleave(const common::Bits& in, Modulation m) {
  return interleave(in, m, channel_plan(ChannelWidth::k20MHz));
}

common::Bits deinterleave(const common::Bits& in, Modulation m,
                          const ChannelPlan& plan) {
  return apply_blockwise(in, m, plan, /*forward=*/false);
}

common::Bits deinterleave(const common::Bits& in, Modulation m) {
  return deinterleave(in, m, channel_plan(ChannelWidth::k20MHz));
}

std::vector<double> deinterleave_soft(const std::vector<double>& in,
                                      Modulation m, const ChannelPlan& plan) {
  return apply_blockwise(in, m, plan, /*forward=*/false);
}

}  // namespace sledzig::wifi
