// Gray-coded QAM constellation mapping.
//
// Per axis with n bits (n = N_BPSC/2), the amplitude is
//   2 * gray_decode(bits) - (2^n - 1),  in {-(2^n-1), ..., -1, +1, ..., 2^n-1}
// and the symbol is normalised by K_mod so the constellation has unit average
// power.
//
// Bit layout within an N_BPSC group: the I and Q axis bits are *interlaced*
// (i0 q0 i1 q1 ...), matching the convention of the paper's reference
// implementation: reproducing its Table II bit-position table exactly
// requires the significant bits to sit at group offsets {2, 3, ...}, which is
// the interlaced layout (the 802.11 standard text groups all I bits before
// all Q bits; the two conventions are equivalent relabelings of the
// constellation and cancel out between our transmitter and receiver).
//
// The four lowest-power points are (+-1, +-1j) before normalisation; they
// share fixed values in every bit position except the first bit of each axis
// (group offsets 0 and 1) - the "significant bits" of the paper's Table I.
#pragma once

#include <complex>
#include <vector>

#include "common/bits.h"
#include "common/fft.h"
#include "wifi/phy_params.h"

namespace sledzig::wifi {

/// Normalisation factor K_mod (1, 1/sqrt(2), 1/sqrt(10), 1/sqrt(42),
/// 1/sqrt(170)).
double qam_norm(Modulation m);

/// Maps N_BPSC bits to one constellation point (normalised).
common::Cplx qam_map_point(std::span<const common::Bit> bits, Modulation m);

/// Maps a bit stream (length multiple of N_BPSC) to points.
common::CplxVec qam_map(const common::Bits& bits, Modulation m);

/// Hard nearest-point demapping of one point.
common::Bits qam_demap_point(common::Cplx point, Modulation m);

/// Hard demapping of a point stream.
common::Bits qam_demap(std::span<const common::Cplx> points, Modulation m);

/// Max-log soft demapping: per-bit log-likelihood ratios, positive for a
/// likely 1.  The common noise scale cancels in the Viterbi metric, so the
/// LLRs are computed with unit noise variance.
std::vector<double> qam_demap_soft(common::Cplx point, Modulation m);
std::vector<double> qam_demap_soft(std::span<const common::Cplx> points,
                                   Modulation m);

/// One significant bit inside an N_BPSC-bit group: forcing bit
/// `offset_in_group` to `value` (for all listed entries) selects a
/// lowest-power point regardless of the remaining bits.
struct SignificantBitSpec {
  std::size_t offset_in_group;  // 0-based offset within the N_BPSC group
  common::Bit value;            // required value
};

/// The significant bits for QAM-16/64/256 (2, 4 and 6 entries).  Throws for
/// BPSK/QPSK, whose constellations have a single power level.
std::vector<SignificantBitSpec> significant_bits(Modulation m);

/// Un-normalised power of the lowest points: always 2 (= |1|^2 + |1|^2).
double lowest_point_power_raw();

/// Un-normalised average constellation power (10, 42, 170 for QAM-16/64/256;
/// 1 and 2 for BPSK/QPSK).
double average_point_power_raw(Modulation m);

/// True when `point` is one of the four lowest-power points (normalised
/// coordinates, small numeric tolerance).
bool is_lowest_point(common::Cplx point, Modulation m, double tol = 1e-6);

}  // namespace sledzig::wifi
