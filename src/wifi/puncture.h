// 802.11 puncturing: rates 2/3, 3/4 and 5/6 are derived from the 1/2-rate
// convolutional code by omitting coded bits in a periodic pattern.
//
// Patterns (A = g0 output, B = g1 output), per coding period:
//   2/3: keep A1 B1 A2      (drop B2)
//   3/4: keep A1 B1 A2 B3   (drop B2, A3)
//   5/6: keep A1 B1 A2 B3 A4 B5 (drop B2, A3, B4, A5)
#pragma once

#include <cstdint>
#include <vector>

#include "common/bits.h"
#include "wifi/convolutional.h"
#include "wifi/phy_params.h"

namespace sledzig::wifi {

/// Keep-mask over one puncturing period of the interleaved A/B stream
/// (A1 B1 A2 B2 ...).  Rate 1/2 yields {1, 1}.
std::vector<bool> puncture_mask(CodingRate r);

/// Drops the masked-out bits of a 1/2-rate coded stream.
common::Bits puncture(const common::Bits& coded, CodingRate r);

/// Re-inserts kErased at the punctured positions so the Viterbi decoder sees
/// a full 1/2-rate stream.
std::vector<std::int8_t> depuncture(const common::Bits& punctured, CodingRate r);

/// Soft variant: re-inserts LLR 0 (no information) at punctured positions.
std::vector<double> depuncture_soft(std::span<const double> punctured,
                                    CodingRate r);

/// Maps a position in the punctured (transmitted) stream back to its position
/// in the underlying 1/2-rate coded stream.  Both indices are 0-based.
std::size_t punctured_to_coded_index(CodingRate r, std::size_t punctured_pos);

/// Inverse of the above for positions that survive puncturing; returns false
/// if the coded position is punctured away.
bool coded_to_punctured_index(CodingRate r, std::size_t coded_pos,
                              std::size_t& punctured_pos);

}  // namespace sledzig::wifi
