#include "wifi/receiver.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/dsp.h"
#include "common/rx_tally.h"
#include "common/units.h"
#include "wifi/convolutional.h"
#include "wifi/interleaver.h"
#include "wifi/ofdm.h"
#include "wifi/preamble.h"
#include "wifi/puncture.h"
#include "wifi/qam.h"
#include "wifi/scrambler.h"

namespace sledzig::wifi {

std::optional<std::size_t> detect_preamble(std::span<const common::Cplx> samples,
                                           double threshold,
                                           ChannelWidth width) {
  const auto& ref = full_preamble(width);
  if (samples.size() < ref.size()) return std::nullopt;
  const double ref_energy = common::energy(ref);

  double best_corr = 0.0;
  std::size_t best_pos = 0;
  // Sliding window energy for normalisation.
  double win_energy = 0.0;
  for (std::size_t i = 0; i < ref.size(); ++i) win_energy += std::norm(samples[i]);

  const std::size_t last = samples.size() - ref.size();
  for (std::size_t t = 0; t <= last; ++t) {
    common::Cplx acc(0.0, 0.0);
    for (std::size_t i = 0; i < ref.size(); ++i) {
      acc += samples[t + i] * std::conj(ref[i]);
    }
    const double denom = std::sqrt(std::max(win_energy, 1e-30) * ref_energy);
    const double corr = std::abs(acc) / denom;
    if (corr > best_corr) {
      best_corr = corr;
      best_pos = t;
    }
    if (t < last) {
      win_energy += std::norm(samples[t + ref.size()]) - std::norm(samples[t]);
    }
  }
  if (best_corr < threshold) return std::nullopt;
  return best_pos;
}

namespace {

/// Phase-increment estimate from a delayed autocorrelation at `lag` over
/// [begin, begin+span): returns radians per sample.
double lag_phase(std::span<const common::Cplx> samples, std::size_t begin,
                 std::size_t lag, std::size_t span) {
  common::Cplx acc(0.0, 0.0);
  for (std::size_t i = 0; i < span; ++i) {
    acc += samples[begin + i + lag] * std::conj(samples[begin + i]);
  }
  return std::arg(acc) / static_cast<double>(lag);
}

common::CplxVec derotate(std::span<const common::Cplx> samples,
                         double cfo_hz, double fs) {
  return common::frequency_shift(samples, -cfo_hz, fs);
}

}  // namespace

std::optional<SyncInfo> synchronize_packet(std::span<const common::Cplx> samples,
                                           double threshold,
                                           ChannelWidth width) {
  const auto& plan = channel_plan(width);
  const std::size_t lag = plan.fft_size / 4;  // STS period
  const std::size_t window = stf_len(width) - 2 * lag;
  if (samples.size() < preamble_len(width) + plan.symbol_len()) {
    return std::nullopt;
  }

  // 1. Coarse scan: STF autocorrelation plateau (CFO-immune).
  double best_metric = 0.0;
  std::size_t coarse = 0;
  const std::size_t last = samples.size() - preamble_len(width);
  for (std::size_t t = 0; t <= last; t += 4) {
    common::Cplx acc(0.0, 0.0);
    double energy = 0.0, energy_shift = 0.0;
    for (std::size_t i = 0; i < window; ++i) {
      acc += samples[t + i + lag] * std::conj(samples[t + i]);
      energy += std::norm(samples[t + i]);
      energy_shift += std::norm(samples[t + i + lag]);
    }
    // Normalise by both windows (bounds the metric to [0, 1] and avoids the
    // spike at the noise-to-signal boundary).
    const double denom = std::sqrt(energy * energy_shift);
    if (denom <= 1e-30) continue;
    const double metric = std::abs(acc) / denom;
    if (metric > best_metric) {
      best_metric = metric;
      coarse = t;
    }
  }
  if (best_metric < 0.5) return std::nullopt;

  // 2. Coarse CFO from the STF at the coarse position.
  const double fs = plan.sample_rate_hz;
  const double coarse_cfo =
      lag_phase(samples, coarse, lag, window) * fs / (2.0 * std::numbers::pi);

  // 3. Fine timing: cross-correlate the derotated neighbourhood with the
  //    clean preamble.
  const std::size_t search_begin =
      coarse > plan.fft_size ? coarse - plan.fft_size : 0;
  const std::size_t search_len =
      std::min(samples.size() - search_begin,
               preamble_len(width) + 3 * plan.fft_size);
  const auto region = derotate(samples.subspan(search_begin, search_len),
                               coarse_cfo, fs);
  const auto fine = detect_preamble(region, threshold, width);
  if (!fine) return std::nullopt;
  const std::size_t start = search_begin + *fine;

  // 4. Fine CFO from the two LTS bodies (lag = fft size).
  const std::size_t lts1 = start + stf_len(width) + plan.fft_size / 2;
  if (lts1 + 2 * plan.fft_size > samples.size()) return std::nullopt;
  const auto around_ltf =
      derotate(samples.subspan(lts1, 2 * plan.fft_size), coarse_cfo, fs);
  const double fine_cfo =
      lag_phase(around_ltf, 0, plan.fft_size, plan.fft_size) * fs /
      (2.0 * std::numbers::pi);

  return SyncInfo{start, coarse_cfo + fine_cfo};
}

common::CplxVec estimate_channel(std::span<const common::Cplx> samples,
                                 std::size_t ltf_start, ChannelWidth width) {
  const auto& plan = channel_plan(width);
  const std::size_t n = plan.fft_size;
  // The two LTS bodies start half a body (guard) into the LTF.
  const std::size_t lts1 = ltf_start + n / 2;
  const std::size_t lts2 = lts1 + n;
  common::CplxVec y1, y2;
  common::fft_into(samples.subspan(lts1, n), y1, /*inverse=*/false);
  common::fft_into(samples.subspan(lts2, n), y2, /*inverse=*/false);

  const auto& ref = ltf_reference_bins(width);
  common::CplxVec channel(n, common::Cplx(1.0, 0.0));
  for (std::size_t k = 0; k < n; ++k) {
    if (std::abs(ref[k]) > 0.5) {
      channel[k] = (y1[k] + y2[k]) / (2.0 * plan.time_scale() * ref[k]);
    }
  }
  return channel;
}

common::Bits decode_data_field(std::span<const common::Cplx> data_samples,
                               Modulation m, CodingRate r,
                               std::size_t num_symbols,
                               std::span<const common::Cplx> channel,
                               ChannelWidth width, bool soft_decision) {
  const auto& plan = channel_plan(width);
  // Pad is data-like, so the trellis is not guaranteed to terminate at zero.
  if (soft_decision) {
    std::vector<double> llrs;
    llrs.reserve(num_symbols * coded_bits_per_symbol(m, plan));
    for (std::size_t s = 0; s < num_symbols; ++s) {
      const auto points = demodulate_ofdm_symbol(
          data_samples.subspan(s * plan.symbol_len(), plan.symbol_len()),
          s + 1, channel, plan);
      const auto symbol_llrs = qam_demap_soft(points, m);
      llrs.insert(llrs.end(), symbol_llrs.begin(), symbol_llrs.end());
    }
    const auto punctured = deinterleave_soft(llrs, m, plan);
    const auto full = depuncture_soft(punctured, r);
    return viterbi_decode_soft(full, /*terminated=*/false);
  }
  common::Bits interleaved;
  interleaved.reserve(num_symbols * coded_bits_per_symbol(m, plan));
  for (std::size_t s = 0; s < num_symbols; ++s) {
    const auto points = demodulate_ofdm_symbol(
        data_samples.subspan(s * plan.symbol_len(), plan.symbol_len()), s + 1,
        channel, plan);
    const auto bits = qam_demap(points, m);
    interleaved.insert(interleaved.end(), bits.begin(), bits.end());
  }
  const auto punctured = deinterleave(interleaved, m, plan);
  const auto soft = depuncture(punctured, r);
  return viterbi_decode(soft, /*terminated=*/false);
}

namespace {

WifiRxResult wifi_receive_impl(std::span<const common::Cplx> raw_samples,
                               const WifiRxConfig& cfg) {
  const auto& plan = channel_plan(cfg.width);
  WifiRxResult result;

  // Impaired front-ends (clipping models, fault injection) can produce
  // NaN/Inf; refuse up front rather than let them poison the correlators
  // and Viterbi metrics into undefined comparisons.
  for (const auto& s : raw_samples) {
    if (!std::isfinite(s.real()) || !std::isfinite(s.imag())) {
      result.error = common::RxError::kNanSamples;
      return result;
    }
  }

  std::optional<std::size_t> start;
  common::CplxVec corrected;
  std::span<const common::Cplx> samples = raw_samples;
  result.error = common::RxError::kNoPreamble;
  if (cfg.correct_cfo) {
    const auto sync =
        synchronize_packet(raw_samples, cfg.detection_threshold, cfg.width);
    if (!sync) return result;
    corrected = derotate(raw_samples, sync->cfo_hz, plan.sample_rate_hz);
    samples = corrected;
    start = sync->packet_start;
  } else {
    start = detect_preamble(samples, cfg.detection_threshold, cfg.width);
    if (!start) return result;
  }
  result.detected = true;
  result.packet_start = *start;

  const std::size_t ltf_start = *start + stf_len(cfg.width);
  const std::size_t signal_start = *start + preamble_len(cfg.width);
  if (signal_start + plan.symbol_len() > samples.size()) {
    result.error = common::RxError::kTruncatedPayload;
    return result;
  }
  const auto channel = estimate_channel(samples, ltf_start, cfg.width);

  const auto field = demodulate_signal_symbol(
      samples.subspan(signal_start, plan.symbol_len()), channel, plan);
  if (!field) {
    result.error = common::RxError::kSignalParity;
    return result;
  }
  result.signal = *field;
  result.signal_valid = true;

  // A hostile LENGTH that passed parity must still not drive an oversized
  // decode: bound it before sizing any buffer or symbol count from it.
  if (field->psdu_octets > cfg.max_psdu_octets) {
    result.error = common::RxError::kSignalLengthCap;
    return result;
  }

  WifiTxConfig txcfg;
  txcfg.modulation = field->modulation;
  txcfg.rate = field->rate;
  txcfg.include_service_field = cfg.include_service_field;
  txcfg.width = cfg.width;
  const std::size_t n_sym = num_data_symbols(field->psdu_octets * 8, txcfg);
  const std::size_t data_start = signal_start + plan.symbol_len();
  if (data_start + n_sym * plan.symbol_len() > samples.size()) {
    result.error = common::RxError::kTruncatedPayload;
    return result;
  }

  const auto scrambled = decode_data_field(
      samples.subspan(data_start, n_sym * plan.symbol_len()),
      field->modulation, field->rate, n_sym, channel, cfg.width,
      cfg.soft_decision);
  result.scrambled_stream = scrambled;

  auto raw = descramble(scrambled, cfg.scrambler_seed);
  const std::size_t offset = payload_bit_offset(txcfg);
  const std::size_t payload_bits = field->psdu_octets * 8;
  if (offset + payload_bits > raw.size()) {
    result.error = common::RxError::kViterbiOverrun;
    return result;
  }
  common::Bits psdu_bits(raw.begin() + static_cast<long>(offset),
                         raw.begin() + static_cast<long>(offset + payload_bits));
  result.psdu = common::bits_to_bytes(psdu_bits);
  result.error = common::RxError::kNone;
  return result;
}

const common::RxTally& rx_tally() {
  // lint: allow(static-state): cached metric handles, registered once
  static const common::RxTally tally("wifi");
  return tally;
}

}  // namespace

WifiRxResult wifi_receive(std::span<const common::Cplx> raw_samples,
                          const WifiRxConfig& cfg) {
  WifiRxResult result = wifi_receive_impl(raw_samples, cfg);
  // One counter bump per decode, keyed by outcome stage (rx.wifi.<error>,
  // rx.wifi.none for clean decodes).
  rx_tally().count(result.error);
  return result;
}

}  // namespace sledzig::wifi
