// Rate-1/2, constraint-length-7 convolutional code of 802.11
// (generators g0 = 133o = 1011011b, g1 = 171o = 1111001b) plus a
// hard-decision Viterbi decoder with erasure support for depunctured
// streams.
//
// Output ordering: input bit x_n produces y_{2n-1} (from g0) followed by
// y_{2n} (from g1), matching Eq. 1 of the paper.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/bits.h"

namespace sledzig::wifi {

inline constexpr unsigned kConstraintLength = 7;
inline constexpr unsigned kNumStates = 1u << (kConstraintLength - 1);  // 64
// Generator taps over [x_n, x_{n-1}, ..., x_{n-6}]:
inline constexpr std::uint8_t kGen0 = 0b1011011;  // 133 octal
inline constexpr std::uint8_t kGen1 = 0b1111001;  // 171 octal

/// Encoder state = the previous 6 input bits, x_{n-1} in the MSB-6 position:
/// state = x_{n-1}<<5 | x_{n-2}<<4 | ... | x_{n-6}.
struct EncodeStepResult {
  unsigned next_state;
  common::Bit out_a;  // y_{2n-1}, generator g0
  common::Bit out_b;  // y_{2n},   generator g1
};

/// One encoder transition.  Pure function; used by both the encoder and the
/// SledZig extra-bit solver.
EncodeStepResult encode_step(unsigned state, common::Bit input);

/// Encodes the whole input (no tail appended; append kTailBits zeros
/// upstream if you need the trellis terminated).  Output has 2x the length.
common::Bits convolutional_encode(const common::Bits& in);

/// Hard-decision Viterbi decoder over the same code.
///
/// `coded` holds one entry per 1/2-rate coded bit: 0, 1, or kErased for a
/// punctured position.  The length must be even.  If `terminated` is true the
/// decoder assumes the encoder was flushed to state 0 (tail bits present in
/// the input and returned in the output).
inline constexpr std::int8_t kErased = -1;

common::Bits viterbi_decode(const std::vector<std::int8_t>& coded,
                            bool terminated = true);

/// Soft-decision Viterbi over per-bit LLRs (positive = likely 1; 0 =
/// erased/punctured).  Worth ~2 dB over hard decisions at 802.11 operating
/// points.  The LLR length must be even.
common::Bits viterbi_decode_soft(std::span<const double> llrs,
                                 bool terminated = true);

}  // namespace sledzig::wifi
