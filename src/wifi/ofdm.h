// OFDM symbol (de)modulation: subcarrier mapping, pilots, 64-point IFFT and
// cyclic prefix.
//
// Scaling convention: frequency-domain occupied bins carry unit-average-power
// constellation points; time samples are scaled by kTimeScale = 64/sqrt(52)
// so a normal data symbol has unit mean power.  The scale is *fixed* (it
// models a fixed transmit gain): SledZig symbols, whose forced subcarriers
// carry low-power points, come out with slightly lower total power, exactly
// as on real hardware with an unchanged PA setting.
#pragma once

#include <array>
#include <span>

#include "common/fft.h"
#include "wifi/subcarriers.h"
#include "wifi/phy_params.h"

namespace sledzig::wifi {

inline const double kTimeScale = 64.0 / std::sqrt(52.0);

/// Builds one OFDM symbol (CP + FFT body) from the plan's data points.
/// `symbol_index` selects the pilot polarity (0 = SIGNAL symbol).
common::CplxVec modulate_ofdm_symbol(std::span<const common::Cplx> data_points,
                                     std::size_t symbol_index);
common::CplxVec modulate_ofdm_symbol(std::span<const common::Cplx> data_points,
                                     std::size_t symbol_index,
                                     const ChannelPlan& plan);

/// Recovers the data points from one received symbol.  `channel` holds a
/// per-FFT-bin single-tap channel estimate (plan.fft_size entries); pass an
/// all-ones estimate for a perfect channel.
common::CplxVec demodulate_ofdm_symbol(std::span<const common::Cplx> samples,
                                       std::size_t symbol_index,
                                       std::span<const common::Cplx> channel);
common::CplxVec demodulate_ofdm_symbol(std::span<const common::Cplx> samples,
                                       std::size_t symbol_index,
                                       std::span<const common::Cplx> channel,
                                       const ChannelPlan& plan);

/// A flat (all-ones) channel estimate for the plan.
common::CplxVec flat_channel();
common::CplxVec flat_channel(const ChannelPlan& plan);

}  // namespace sledzig::wifi
