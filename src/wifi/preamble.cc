#include "wifi/preamble.h"

#include <array>
#include <cmath>

#include "wifi/ofdm.h"

namespace sledzig::wifi {

namespace {

// Long training sequence L_{-26..26} from the 802.11 standard.
constexpr std::array<int, 53> kLts = {
    1, 1, -1, -1, 1, 1, -1, 1, -1, 1, 1, 1, 1, 1, 1, -1, -1, 1,
    1, -1, 1, -1, 1, 1, 1, 1,
    0,
    1, -1, -1, 1, 1, -1, 1, -1, 1, -1, -1, -1, -1, -1, 1, 1, -1,
    -1, 1, -1, 1, -1, 1, 1, 1, 1};

// Short training sequence: nonzero at multiples of 4; value (+-1 +-j) *
// sqrt(13/6).
struct StsEntry {
  int logical;
  double re;
  double im;
};
constexpr std::array<StsEntry, 12> kSts = {{
    {-24, 1, 1}, {-20, -1, -1}, {-16, 1, 1}, {-12, -1, -1},
    {-8, -1, -1}, {-4, 1, 1},   {4, -1, -1}, {8, -1, -1},
    {12, 1, 1},  {16, 1, 1},    {20, 1, 1},  {24, 1, 1},
}};

/// Places a 20 MHz logical-index -> value map into `bins` of `plan`,
/// duplicating into both halves for the 40 MHz plan (upper half x j).
void place(const ChannelPlan& plan, int logical20, common::Cplx value,
           common::CplxVec& bins) {
  if (plan.width == ChannelWidth::k20MHz) {
    bins[plan.to_fft_bin(logical20)] = value;
  } else {
    bins[plan.to_fft_bin(logical20 - 32)] = value;
    bins[plan.to_fft_bin(logical20 + 32)] = value * common::Cplx(0.0, 1.0);
  }
}

common::CplxVec time_domain_from_bins(const ChannelPlan& plan,
                                      const common::CplxVec& bins) {
  auto time = common::ifft(bins);
  const double scale = plan.time_scale();
  for (auto& s : time) s *= scale;
  return time;
}

common::CplxVec build_ltf_bins(const ChannelPlan& plan) {
  common::CplxVec bins(plan.fft_size, common::Cplx(0.0, 0.0));
  for (int l = -26; l <= 26; ++l) {
    const double v = static_cast<double>(kLts[static_cast<std::size_t>(l + 26)]);
    if (v != 0.0) place(plan, l, common::Cplx(v, 0.0), bins);
  }
  return bins;
}

common::CplxVec build_lts(const ChannelPlan& plan) {
  return time_domain_from_bins(plan, build_ltf_bins(plan));
}

common::CplxVec build_stf(const ChannelPlan& plan) {
  common::CplxVec bins(plan.fft_size, common::Cplx(0.0, 0.0));
  const double scale = std::sqrt(13.0 / 6.0);
  for (const auto& e : kSts) {
    place(plan, e.logical, common::Cplx(scale * e.re, scale * e.im), bins);
  }
  const auto period = time_domain_from_bins(plan, bins);
  // The IFFT of the STS bins is periodic with period fft/4; the STF covers
  // 8 us = 2.5 FFT bodies.
  common::CplxVec out;
  const std::size_t total = plan.fft_size * 5 / 2;
  out.reserve(total);
  for (std::size_t i = 0; i < total; ++i) {
    out.push_back(period[i % plan.fft_size]);
  }
  return out;
}

common::CplxVec build_ltf(const ChannelPlan& plan) {
  const auto lts = build_lts(plan);
  common::CplxVec out;
  out.reserve(plan.fft_size * 5 / 2);
  // Half-body guard (second half of the LTS), then two LTS.
  out.insert(out.end(), lts.end() - static_cast<long>(plan.fft_size / 2),
             lts.end());
  out.insert(out.end(), lts.begin(), lts.end());
  out.insert(out.end(), lts.begin(), lts.end());
  return out;
}

struct PreambleSet {
  common::CplxVec stf, ltf, full, lts, ltf_bins;
};

const PreambleSet& preamble_set(ChannelWidth width) {
  static const PreambleSet sets[2] = {
      [] {
        const auto& plan = channel_plan(ChannelWidth::k20MHz);
        PreambleSet s;
        s.stf = build_stf(plan);
        s.ltf = build_ltf(plan);
        s.full = s.stf;
        s.full.insert(s.full.end(), s.ltf.begin(), s.ltf.end());
        s.lts = build_lts(plan);
        s.ltf_bins = build_ltf_bins(plan);
        return s;
      }(),
      [] {
        const auto& plan = channel_plan(ChannelWidth::k40MHz);
        PreambleSet s;
        s.stf = build_stf(plan);
        s.ltf = build_ltf(plan);
        s.full = s.stf;
        s.full.insert(s.full.end(), s.ltf.begin(), s.ltf.end());
        s.lts = build_lts(plan);
        s.ltf_bins = build_ltf_bins(plan);
        return s;
      }(),
  };
  return sets[width == ChannelWidth::k20MHz ? 0 : 1];
}

}  // namespace

const common::CplxVec& short_training_field(ChannelWidth width) {
  return preamble_set(width).stf;
}
const common::CplxVec& short_training_field() {
  return short_training_field(ChannelWidth::k20MHz);
}

const common::CplxVec& long_training_field(ChannelWidth width) {
  return preamble_set(width).ltf;
}
const common::CplxVec& long_training_field() {
  return long_training_field(ChannelWidth::k20MHz);
}

const common::CplxVec& full_preamble(ChannelWidth width) {
  return preamble_set(width).full;
}
const common::CplxVec& full_preamble() {
  return full_preamble(ChannelWidth::k20MHz);
}

const common::CplxVec& ltf_reference_bins(ChannelWidth width) {
  return preamble_set(width).ltf_bins;
}
const common::CplxVec& ltf_reference_bins() {
  return ltf_reference_bins(ChannelWidth::k20MHz);
}

const common::CplxVec& long_training_symbol(ChannelWidth width) {
  return preamble_set(width).lts;
}
const common::CplxVec& long_training_symbol() {
  return long_training_symbol(ChannelWidth::k20MHz);
}

std::size_t stf_len(ChannelWidth width) {
  return channel_plan(width).fft_size * 5 / 2;
}
std::size_t ltf_len(ChannelWidth width) {
  return channel_plan(width).fft_size * 5 / 2;
}
std::size_t preamble_len(ChannelWidth width) {
  return stf_len(width) + ltf_len(width);
}

}  // namespace sledzig::wifi
