#include "wifi/transmitter.h"

#include <stdexcept>

#include "wifi/convolutional.h"
#include "wifi/interleaver.h"
#include "wifi/ofdm.h"
#include "wifi/preamble.h"
#include "wifi/puncture.h"
#include "wifi/qam.h"
#include "wifi/scrambler.h"

namespace sledzig::wifi {

std::size_t payload_bit_offset(const WifiTxConfig& cfg) {
  return cfg.include_service_field ? 16 : 0;
}

std::size_t num_data_symbols(std::size_t payload_bits, const WifiTxConfig& cfg) {
  const std::size_t dbps =
      data_bits_per_symbol(cfg.modulation, cfg.rate, cfg.plan());
  const std::size_t total = payload_bit_offset(cfg) + payload_bits + kTailBits;
  return (total + dbps - 1) / dbps;
}

WifiTxResult transmit_scrambled_stream(const common::Bits& scrambled,
                                       const WifiTxConfig& cfg) {
  const auto& plan = cfg.plan();
  const std::size_t dbps = data_bits_per_symbol(cfg.modulation, cfg.rate, plan);
  if (scrambled.empty() || scrambled.size() % dbps != 0) {
    throw std::invalid_argument(
        "transmit_scrambled_stream: length must be a nonzero multiple of N_DBPS");
  }
  const auto coded = convolutional_encode(scrambled);
  const auto punctured = puncture(coded, cfg.rate);
  const std::size_t cbps = coded_bits_per_symbol(cfg.modulation, plan);
  if (punctured.size() % cbps != 0) {
    throw std::logic_error("transmit_scrambled_stream: puncture misalignment");
  }
  const auto interleaved = interleave(punctured, cfg.modulation, plan);
  const auto points = qam_map(interleaved, cfg.modulation);

  WifiTxResult result;
  result.scrambled_stream = scrambled;
  result.data_points = points;
  result.num_data_symbols = scrambled.size() / dbps;
  result.samples.reserve(result.num_data_symbols * plan.symbol_len());
  for (std::size_t s = 0; s < result.num_data_symbols; ++s) {
    const auto symbol = modulate_ofdm_symbol(
        std::span<const common::Cplx>(points).subspan(s * plan.num_data(),
                                                      plan.num_data()),
        /*symbol_index=*/s + 1, plan);  // index 0 is the SIGNAL symbol
    result.samples.insert(result.samples.end(), symbol.begin(), symbol.end());
  }
  return result;
}

WifiTxResult wifi_transmit(const common::Bytes& psdu, const WifiTxConfig& cfg) {
  const auto& plan = cfg.plan();
  const auto payload_bits = common::bytes_to_bits(psdu);
  const std::size_t n_sym = num_data_symbols(payload_bits.size(), cfg);
  const std::size_t dbps = data_bits_per_symbol(cfg.modulation, cfg.rate, plan);
  const std::size_t total = n_sym * dbps;

  // Assemble [SERVICE?][payload][tail][pad], scramble, then zero the
  // scrambled tail bits so the encoder is flushed (17.3.5.3 of the standard).
  common::Bits raw;
  raw.reserve(total);
  for (std::size_t i = 0; i < payload_bit_offset(cfg); ++i) raw.push_back(0);
  raw.insert(raw.end(), payload_bits.begin(), payload_bits.end());
  const std::size_t tail_start = raw.size();
  raw.resize(total, 0);

  auto scrambled = scramble(raw, cfg.scrambler_seed);
  for (std::size_t i = 0; i < kTailBits && tail_start + i < total; ++i) {
    scrambled[tail_start + i] = 0;
  }

  auto data_part = transmit_scrambled_stream(scrambled, cfg);

  SignalField field;
  field.modulation = cfg.modulation;
  field.rate = cfg.rate;
  field.psdu_octets = psdu.size();

  WifiTxResult result;
  result.num_data_symbols = n_sym;
  result.scrambled_stream = std::move(data_part.scrambled_stream);
  result.data_points = std::move(data_part.data_points);
  const auto& preamble = full_preamble(cfg.width);
  const auto signal = modulate_signal_symbol(field, plan);
  result.samples.reserve(preamble.size() + signal.size() +
                         data_part.samples.size());
  result.samples.insert(result.samples.end(), preamble.begin(), preamble.end());
  result.samples.insert(result.samples.end(), signal.begin(), signal.end());
  result.samples.insert(result.samples.end(), data_part.samples.begin(),
                        data_part.samples.end());
  return result;
}

double packet_duration_us(std::size_t psdu_octets, const WifiTxConfig& cfg) {
  const std::size_t n_sym = num_data_symbols(psdu_octets * 8, cfg);
  return kPreambleDurationUs + kSymbolDurationUs /*SIGNAL*/ +
         kSymbolDurationUs * static_cast<double>(n_sym);
}

}  // namespace sledzig::wifi
