// 802.11 PLCP preamble: 10 short training symbols (8 us) followed by a long
// guard interval and 2 long training symbols (8 us) — 16 us in total.  The
// preamble is transmitted at full power regardless of SledZig (section IV-F
// of the paper analyses its impact).
//
// For the 40 MHz plan the legacy preamble is duplicated in both 20 MHz
// halves with the upper half rotated by +90 degrees (802.11n L-STF/L-LTF
// duplication); the durations in microseconds are unchanged.
#pragma once

#include "common/fft.h"
#include "wifi/phy_params.h"
#include "wifi/subcarriers.h"

namespace sledzig::wifi {

inline constexpr std::size_t kStfLen = 160;      // 10 x 16 samples at 20 MS/s
inline constexpr std::size_t kLtfLen = 160;      // 32 CP + 2 x 64
inline constexpr std::size_t kPreambleLen = kStfLen + kLtfLen;

/// The short training field (160 samples at 20 MHz, 320 at 40 MHz).
const common::CplxVec& short_training_field();
const common::CplxVec& short_training_field(ChannelWidth width);

/// The long training field.
const common::CplxVec& long_training_field();
const common::CplxVec& long_training_field(ChannelWidth width);

/// STF followed by LTF.
const common::CplxVec& full_preamble();
const common::CplxVec& full_preamble(ChannelWidth width);

/// Frequency-domain LTS reference values per FFT bin (0 where unoccupied).
const common::CplxVec& ltf_reference_bins();
const common::CplxVec& ltf_reference_bins(ChannelWidth width);

/// One long training symbol (time domain, no CP).
const common::CplxVec& long_training_symbol();
const common::CplxVec& long_training_symbol(ChannelWidth width);

/// Sample counts for a width (scale with the FFT size).
std::size_t stf_len(ChannelWidth width);
std::size_t ltf_len(ChannelWidth width);
std::size_t preamble_len(ChannelWidth width);

}  // namespace sledzig::wifi
