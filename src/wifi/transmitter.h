// Standard 802.11 OFDM transmitter chain (Fig 1 of the paper):
//   payload -> scramble -> convolutional encode -> puncture -> interleave
//           -> QAM map -> OFDM (pilots, IFFT, CP) -> preamble + SIGNAL + data.
//
// SledZig never modifies this chain; it only chooses the payload bytes.  The
// intermediate scrambled-domain entry point (transmit_scrambled_stream) is
// exposed for tests that need to inspect the pipeline stage by stage.
#pragma once

#include <cstdint>

#include "common/bits.h"
#include "common/fft.h"
#include "wifi/phy_params.h"
#include "wifi/signal_field.h"
#include "wifi/subcarriers.h"

namespace sledzig::wifi {

struct WifiTxConfig {
  Modulation modulation = Modulation::kQam16;
  CodingRate rate = CodingRate::kR12;
  std::uint8_t scrambler_seed = 0x5d;
  /// When true the data field starts with the 16-bit SERVICE field as in the
  /// full standard; the paper's bit-position accounting (Table II) omits it,
  /// so the default is false.
  bool include_service_field = false;
  /// Channel bandwidth (the paper's evaluation is 20 MHz).
  ChannelWidth width = ChannelWidth::k20MHz;

  const ChannelPlan& plan() const { return channel_plan(width); }
};

struct WifiTxResult {
  /// Complete packet: 320-sample preamble, 80-sample SIGNAL, data symbols.
  common::CplxVec samples;
  std::size_t num_data_symbols = 0;
  /// Scrambled-domain uncoded stream actually encoded (payload + tail + pad).
  common::Bits scrambled_stream;
  /// All data-subcarrier QAM points, symbol-major (48 per symbol).
  common::CplxVec data_points;
};

/// Number of data OFDM symbols needed for `payload_bits` payload bits.
std::size_t num_data_symbols(std::size_t payload_bits, const WifiTxConfig& cfg);

/// Offset of the first payload bit inside the data field (16 when the
/// SERVICE field is enabled, else 0).
std::size_t payload_bit_offset(const WifiTxConfig& cfg);

/// Transmits a PSDU of whole octets.
WifiTxResult wifi_transmit(const common::Bytes& psdu, const WifiTxConfig& cfg);

/// Lower-level entry: encodes + modulates an already-scrambled uncoded
/// stream (length must be a multiple of N_DBPS).  Returns data symbols only
/// (no preamble / SIGNAL).
WifiTxResult transmit_scrambled_stream(const common::Bits& scrambled,
                                       const WifiTxConfig& cfg);

/// Duration of a full packet in microseconds (preamble + SIGNAL + data).
double packet_duration_us(std::size_t psdu_octets, const WifiTxConfig& cfg);

}  // namespace sledzig::wifi
