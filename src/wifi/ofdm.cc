#include "wifi/ofdm.h"

#include <stdexcept>

namespace sledzig::wifi {

common::CplxVec modulate_ofdm_symbol(std::span<const common::Cplx> data_points,
                                     std::size_t symbol_index,
                                     const ChannelPlan& plan) {
  if (data_points.size() != plan.num_data()) {
    throw std::invalid_argument("modulate_ofdm_symbol: wrong data count");
  }
  common::CplxVec bins(plan.fft_size, common::Cplx(0.0, 0.0));
  for (std::size_t i = 0; i < plan.data_indices.size(); ++i) {
    bins[plan.to_fft_bin(plan.data_indices[i])] = data_points[i];
  }
  const double polarity = pilot_polarity(symbol_index);
  for (std::size_t i = 0; i < plan.pilot_indices.size(); ++i) {
    bins[plan.to_fft_bin(plan.pilot_indices[i])] =
        common::Cplx(polarity * plan.pilot_values[i], 0.0);
  }

  // In-place IFFT on the bins buffer (no temporary waveform copy).
  common::fft_inplace(bins, /*inverse=*/true);
  const double inv_n = 1.0 / static_cast<double>(plan.fft_size);
  for (auto& s : bins) s *= inv_n;
  const double scale = plan.time_scale();
  for (auto& s : bins) s *= scale;

  common::CplxVec symbol;
  symbol.reserve(plan.symbol_len());
  symbol.insert(symbol.end(), bins.end() - static_cast<long>(plan.cp_len),
                bins.end());
  symbol.insert(symbol.end(), bins.begin(), bins.end());
  return symbol;
}

common::CplxVec modulate_ofdm_symbol(std::span<const common::Cplx> data_points,
                                     std::size_t symbol_index) {
  return modulate_ofdm_symbol(data_points, symbol_index,
                              channel_plan(ChannelWidth::k20MHz));
}

common::CplxVec demodulate_ofdm_symbol(std::span<const common::Cplx> samples,
                                       std::size_t symbol_index,
                                       std::span<const common::Cplx> channel,
                                       const ChannelPlan& plan) {
  if (samples.size() < plan.symbol_len()) {
    throw std::invalid_argument("demodulate_ofdm_symbol: short symbol");
  }
  if (channel.size() != plan.fft_size) {
    throw std::invalid_argument("demodulate_ofdm_symbol: bad channel size");
  }
  common::CplxVec body;
  common::fft_into(samples.subspan(plan.cp_len, plan.fft_size), body,
                   /*inverse=*/false);
  const double scale = plan.time_scale();
  for (auto& b : body) b /= scale;

  // Residual common phase error: estimate from the pilots and remove.  With
  // a perfect channel this is a no-op; with a noisy channel it stabilises
  // the constellation.
  const double polarity = pilot_polarity(symbol_index);
  common::Cplx phase_acc(0.0, 0.0);
  for (std::size_t i = 0; i < plan.pilot_indices.size(); ++i) {
    const auto bin = plan.to_fft_bin(plan.pilot_indices[i]);
    const common::Cplx expected(polarity * plan.pilot_values[i], 0.0);
    const common::Cplx eq = body[bin] / channel[bin];
    phase_acc += eq * std::conj(expected);
  }
  common::Cplx rot(1.0, 0.0);
  if (std::abs(phase_acc) > 1e-12) rot = phase_acc / std::abs(phase_acc);

  common::CplxVec points(plan.num_data());
  for (std::size_t i = 0; i < plan.data_indices.size(); ++i) {
    const auto bin = plan.to_fft_bin(plan.data_indices[i]);
    points[i] = body[bin] / channel[bin] / rot;
  }
  return points;
}

common::CplxVec demodulate_ofdm_symbol(std::span<const common::Cplx> samples,
                                       std::size_t symbol_index,
                                       std::span<const common::Cplx> channel) {
  return demodulate_ofdm_symbol(samples, symbol_index, channel,
                                channel_plan(ChannelWidth::k20MHz));
}

common::CplxVec flat_channel(const ChannelPlan& plan) {
  return common::CplxVec(plan.fft_size, common::Cplx(1.0, 0.0));
}

common::CplxVec flat_channel() {
  return flat_channel(channel_plan(ChannelWidth::k20MHz));
}

}  // namespace sledzig::wifi
