#include "wifi/qam.h"

#include <cmath>
#include <stdexcept>

namespace sledzig::wifi {

namespace {

/// Decodes a binary-reflected Gray code given MSB-first bits.
unsigned gray_decode(std::span<const common::Bit> bits) {
  unsigned b = 0;
  unsigned prev = 0;
  for (common::Bit g : bits) {
    prev ^= (g & 1u);
    b = (b << 1) | prev;
  }
  return b;
}

/// Encodes value (0..2^n-1) as MSB-first Gray bits.
void gray_encode(unsigned value, std::size_t n, common::Bits& out) {
  const unsigned g = value ^ (value >> 1);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(static_cast<common::Bit>((g >> (n - 1 - i)) & 1u));
  }
}

double axis_amplitude(std::span<const common::Bit> bits) {
  const auto n = bits.size();
  return 2.0 * static_cast<double>(gray_decode(bits)) -
         (static_cast<double>(1u << n) - 1.0);
}

/// Nearest valid axis level for n bits, returned as the level index 0..2^n-1.
unsigned nearest_level(double value, std::size_t n) {
  const double max_level = static_cast<double>((1u << n) - 1);
  double idx = (value + max_level) / 2.0;
  idx = std::round(idx);
  if (idx < 0) idx = 0;
  if (idx > max_level) idx = max_level;
  return static_cast<unsigned>(idx);
}

}  // namespace

double qam_norm(Modulation m) {
  switch (m) {
    case Modulation::kBpsk: return 1.0;
    case Modulation::kQpsk: return 1.0 / std::sqrt(2.0);
    case Modulation::kQam16: return 1.0 / std::sqrt(10.0);
    case Modulation::kQam64: return 1.0 / std::sqrt(42.0);
    case Modulation::kQam256: return 1.0 / std::sqrt(170.0);
  }
  throw std::invalid_argument("qam_norm: bad modulation");
}

common::Cplx qam_map_point(std::span<const common::Bit> bits, Modulation m) {
  const std::size_t n_bpsc = bits_per_subcarrier(m);
  if (bits.size() != n_bpsc) {
    throw std::invalid_argument("qam_map_point: wrong group size");
  }
  const double k = qam_norm(m);
  if (m == Modulation::kBpsk) {
    return {k * (bits[0] ? 1.0 : -1.0), 0.0};
  }
  // Interlaced layout: I bits at even group offsets, Q bits at odd.
  const std::size_t half = n_bpsc / 2;
  common::Bits i_bits(half), q_bits(half);
  for (std::size_t t = 0; t < half; ++t) {
    i_bits[t] = bits[2 * t];
    q_bits[t] = bits[2 * t + 1];
  }
  const double i = axis_amplitude(i_bits);
  const double q = axis_amplitude(q_bits);
  return {k * i, k * q};
}

common::CplxVec qam_map(const common::Bits& bits, Modulation m) {
  const std::size_t n_bpsc = bits_per_subcarrier(m);
  if (bits.size() % n_bpsc != 0) {
    throw std::invalid_argument("qam_map: size not a multiple of N_BPSC");
  }
  common::CplxVec out;
  out.reserve(bits.size() / n_bpsc);
  for (std::size_t i = 0; i < bits.size(); i += n_bpsc) {
    out.push_back(
        qam_map_point(std::span<const common::Bit>(bits).subspan(i, n_bpsc), m));
  }
  return out;
}

common::Bits qam_demap_point(common::Cplx point, Modulation m) {
  const double k = qam_norm(m);
  common::Bits out;
  if (m == Modulation::kBpsk) {
    out.push_back(point.real() >= 0.0 ? 1 : 0);
    return out;
  }
  const std::size_t half = bits_per_subcarrier(m) / 2;
  common::Bits i_bits, q_bits;
  gray_encode(nearest_level(point.real() / k, half), half, i_bits);
  gray_encode(nearest_level(point.imag() / k, half), half, q_bits);
  out.resize(2 * half);
  for (std::size_t t = 0; t < half; ++t) {
    out[2 * t] = i_bits[t];
    out[2 * t + 1] = q_bits[t];
  }
  return out;
}

common::Bits qam_demap(std::span<const common::Cplx> points, Modulation m) {
  common::Bits out;
  out.reserve(points.size() * bits_per_subcarrier(m));
  for (const auto& p : points) {
    const auto bits = qam_demap_point(p, m);
    out.insert(out.end(), bits.begin(), bits.end());
  }
  return out;
}

std::vector<double> qam_demap_soft(common::Cplx point, Modulation m) {
  const std::size_t n_bpsc = bits_per_subcarrier(m);
  // Enumerate the constellation once per modulation: point + bit labels.
  struct Entry {
    common::Cplx point;
    unsigned label;  // bit b at offset i => (label >> i) & 1
  };
  static const auto tables = [] {
    std::array<std::vector<Entry>, 5> all;
    for (const auto mod : {Modulation::kBpsk, Modulation::kQpsk, Modulation::kQam16,
                     Modulation::kQam64, Modulation::kQam256}) {
      const std::size_t bits = bits_per_subcarrier(mod);
      auto& table = all[static_cast<std::size_t>(mod)];
      table.reserve(1u << bits);
      for (unsigned v = 0; v < (1u << bits); ++v) {
        common::Bits group(bits);
        for (std::size_t i = 0; i < bits; ++i) {
          group[i] = static_cast<common::Bit>((v >> i) & 1u);
        }
        table.push_back(Entry{qam_map_point(group, mod), v});
      }
    }
    return all;
  }();
  const auto& table = tables[static_cast<std::size_t>(m)];

  // Max-log: LLR_i = min_{s: bit_i=0} |y-s|^2 - min_{s: bit_i=1} |y-s|^2.
  std::vector<double> min0(n_bpsc, 1e300), min1(n_bpsc, 1e300);
  for (const auto& e : table) {
    const double d = std::norm(point - e.point);
    for (std::size_t i = 0; i < n_bpsc; ++i) {
      if ((e.label >> i) & 1u) {
        min1[i] = std::min(min1[i], d);
      } else {
        min0[i] = std::min(min0[i], d);
      }
    }
  }
  std::vector<double> llrs(n_bpsc);
  for (std::size_t i = 0; i < n_bpsc; ++i) llrs[i] = min0[i] - min1[i];
  return llrs;
}

std::vector<double> qam_demap_soft(std::span<const common::Cplx> points,
                                   Modulation m) {
  std::vector<double> out;
  out.reserve(points.size() * bits_per_subcarrier(m));
  for (const auto& p : points) {
    const auto llrs = qam_demap_soft(p, m);
    out.insert(out.end(), llrs.begin(), llrs.end());
  }
  return out;
}

std::vector<SignificantBitSpec> significant_bits(Modulation m) {
  const std::size_t n_bpsc = bits_per_subcarrier(m);
  if (n_bpsc < 4) {
    throw std::invalid_argument(
        "significant_bits: BPSK/QPSK have a single power level");
  }
  const std::size_t half = n_bpsc / 2;
  // Lowest axis levels (+-1) have Gray codes 01..1 0..0 reading MSB-first:
  // the first axis bit is arbitrary, the second must be 1, the rest must be
  // 0.  With the interlaced layout the axis-t bit sits at group offset
  // 2t (I) / 2t+1 (Q), so the significant offsets are {2, 3, 4, ...}.
  std::vector<SignificantBitSpec> specs;
  for (std::size_t axis = 0; axis < 2; ++axis) {
    specs.push_back({2 * 1 + axis, 1});
    for (std::size_t t = 2; t < half; ++t) specs.push_back({2 * t + axis, 0});
  }
  return specs;
}

double lowest_point_power_raw() { return 2.0; }

double average_point_power_raw(Modulation m) {
  switch (m) {
    case Modulation::kBpsk: return 1.0;
    case Modulation::kQpsk: return 2.0;
    case Modulation::kQam16: return 10.0;
    case Modulation::kQam64: return 42.0;
    case Modulation::kQam256: return 170.0;
  }
  throw std::invalid_argument("average_point_power_raw: bad modulation");
}

bool is_lowest_point(common::Cplx point, Modulation m, double tol) {
  const double k = qam_norm(m);
  return std::abs(std::abs(point.real()) - k) < tol &&
         std::abs(std::abs(point.imag()) - k) < tol;
}

}  // namespace sledzig::wifi
