// Per-OFDM-symbol block interleaver (two permutations).
//
// The permutation over a block of N_CBPS coded bits is
//     i = (N_CBPS/16) * (k mod 16) + floor(k/16)
//     j = s * floor(i/s) + (i + N_CBPS - floor(16*i/N_CBPS)) mod s
// with s = max(N_BPSC/2, 1).
//
// Direction convention: we apply the permutation as a *gather* — the
// post-interleaver bit at index j is read from pre-interleaver position
// perm(j).  This is the convention of the paper's reference implementation:
// it is what makes the significant-bit positions of the paper's Table II
// come out exactly (the 802.11 standard text words the same permutation as a
// scatter; either direction yields a standard-quality interleaver and the
// two ends of our chain agree, so the choice only matters for reproducing
// the paper's published bit positions).
//
// SledZig needs the mapping from QAM-input (post-interleaver) indices back
// to coded-stream (pre-interleaver) positions: that is perm(j) itself.
#pragma once

#include <vector>

#include "common/bits.h"
#include "wifi/phy_params.h"
#include "wifi/subcarriers.h"

namespace sledzig::wifi {

/// perm[j] = pre-interleaver position feeding post-interleaver index j.
/// The 20 MHz block uses 16 columns; wider plans use their own column count
/// (18 for 40 MHz).
std::vector<std::size_t> interleaver_permutation(Modulation m);
std::vector<std::size_t> interleaver_permutation(Modulation m,
                                                 const ChannelPlan& plan);

/// inverse[k] = post-interleaver index where pre-interleaver bit k lands.
std::vector<std::size_t> interleaver_inverse(Modulation m);
std::vector<std::size_t> interleaver_inverse(Modulation m,
                                             const ChannelPlan& plan);

/// Interleaves a whole coded stream symbol-block by symbol-block.  The input
/// length must be a multiple of N_CBPS.
common::Bits interleave(const common::Bits& in, Modulation m);
common::Bits interleave(const common::Bits& in, Modulation m,
                        const ChannelPlan& plan);

/// Inverse of interleave().
common::Bits deinterleave(const common::Bits& in, Modulation m);
common::Bits deinterleave(const common::Bits& in, Modulation m,
                          const ChannelPlan& plan);

/// Soft variant for LLR streams.
std::vector<double> deinterleave_soft(const std::vector<double>& in,
                                      Modulation m, const ChannelPlan& plan);

}  // namespace sledzig::wifi
