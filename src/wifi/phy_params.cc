#include "wifi/phy_params.h"

#include <stdexcept>

namespace sledzig::wifi {

std::size_t bits_per_subcarrier(Modulation m) {
  switch (m) {
    case Modulation::kBpsk: return 1;
    case Modulation::kQpsk: return 2;
    case Modulation::kQam16: return 4;
    case Modulation::kQam64: return 6;
    case Modulation::kQam256: return 8;
  }
  throw std::invalid_argument("bits_per_subcarrier: bad modulation");
}

std::size_t coded_bits_per_symbol(Modulation m) {
  return kNumDataSubcarriers * bits_per_subcarrier(m);
}

RateFraction rate_fraction(CodingRate r) {
  switch (r) {
    case CodingRate::kR12: return {1, 2};
    case CodingRate::kR23: return {2, 3};
    case CodingRate::kR34: return {3, 4};
    case CodingRate::kR56: return {5, 6};
  }
  throw std::invalid_argument("rate_fraction: bad coding rate");
}

std::size_t data_bits_per_symbol(Modulation m, CodingRate r) {
  const auto frac = rate_fraction(r);
  const std::size_t cbps = coded_bits_per_symbol(m);
  return cbps * frac.num / frac.den;
}

std::string to_string(Modulation m) {
  switch (m) {
    case Modulation::kBpsk: return "BPSK";
    case Modulation::kQpsk: return "QPSK";
    case Modulation::kQam16: return "QAM-16";
    case Modulation::kQam64: return "QAM-64";
    case Modulation::kQam256: return "QAM-256";
  }
  return "?";
}

std::string to_string(ChannelWidth w) {
  switch (w) {
    case ChannelWidth::k20MHz: return "20MHz";
    case ChannelWidth::k40MHz: return "40MHz";
  }
  return "?";
}

std::string to_string(CodingRate r) {
  switch (r) {
    case CodingRate::kR12: return "1/2";
    case CodingRate::kR23: return "2/3";
    case CodingRate::kR34: return "3/4";
    case CodingRate::kR56: return "5/6";
  }
  return "?";
}

const std::array<PhyMode, 7>& paper_phy_modes() {
  static const std::array<PhyMode, 7> modes = {{
      {Modulation::kQam16, CodingRate::kR12, 11.0},
      {Modulation::kQam16, CodingRate::kR34, 15.0},
      {Modulation::kQam64, CodingRate::kR23, 18.0},
      {Modulation::kQam64, CodingRate::kR34, 20.0},
      {Modulation::kQam64, CodingRate::kR56, 25.0},
      {Modulation::kQam256, CodingRate::kR34, 29.0},
      {Modulation::kQam256, CodingRate::kR56, 31.0},
  }};
  return modes;
}

}  // namespace sledzig::wifi
