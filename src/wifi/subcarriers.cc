#include "wifi/subcarriers.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "wifi/scrambler.h"

namespace sledzig::wifi {

double ChannelPlan::time_scale() const {
  const auto occupied = data_indices.size() + pilot_indices.size();
  return static_cast<double>(fft_size) / std::sqrt(static_cast<double>(occupied));
}

std::size_t ChannelPlan::to_fft_bin(int logical) const {
  const int half = static_cast<int>(fft_size) / 2;
  if (logical < -half || logical >= half) {
    throw std::invalid_argument("ChannelPlan::to_fft_bin: out of range");
  }
  return static_cast<std::size_t>((logical + static_cast<int>(fft_size)) %
                                  static_cast<int>(fft_size));
}

int ChannelPlan::data_position(int logical) const {
  const auto it =
      std::lower_bound(data_indices.begin(), data_indices.end(), logical);
  if (it == data_indices.end() || *it != logical) return -1;
  return static_cast<int>(it - data_indices.begin());
}

const ChannelPlan& channel_plan(ChannelWidth width) {
  static const ChannelPlan plan20 = [] {
    ChannelPlan p;
    p.width = ChannelWidth::k20MHz;
    p.fft_size = 64;
    p.cp_len = 16;
    p.sample_rate_hz = 20e6;
    p.interleaver_columns = 16;
    for (int l = -26; l <= 26; ++l) {
      if (l == 0 || l == -21 || l == -7 || l == 7 || l == 21) continue;
      p.data_indices.push_back(l);
    }
    p.pilot_indices = {-21, -7, 7, 21};
    p.pilot_values = {1.0, 1.0, 1.0, -1.0};
    return p;
  }();
  static const ChannelPlan plan40 = [] {
    ChannelPlan p;
    p.width = ChannelWidth::k40MHz;
    p.fft_size = 128;
    p.cp_len = 32;
    p.sample_rate_hz = 40e6;
    p.interleaver_columns = 18;
    // 802.11n HT40: occupied -58..58, DC nulls -1..1, pilots +-11/25/53.
    for (int l = -58; l <= 58; ++l) {
      if (l >= -1 && l <= 1) continue;
      if (l == -53 || l == -25 || l == -11 || l == 11 || l == 25 || l == 53) {
        continue;
      }
      p.data_indices.push_back(l);
    }
    p.pilot_indices = {-53, -25, -11, 11, 25, 53};
    p.pilot_values = {1.0, 1.0, 1.0, -1.0, -1.0, 1.0};
    return p;
  }();
  return width == ChannelWidth::k20MHz ? plan20 : plan40;
}

std::size_t coded_bits_per_symbol(Modulation m, const ChannelPlan& plan) {
  return plan.num_data() * bits_per_subcarrier(m);
}

std::size_t data_bits_per_symbol(Modulation m, CodingRate r,
                                 const ChannelPlan& plan) {
  const auto frac = rate_fraction(r);
  return coded_bits_per_symbol(m, plan) * frac.num / frac.den;
}

const std::array<int, 48>& data_subcarrier_indices() {
  static const std::array<int, 48> indices = [] {
    std::array<int, 48> out{};
    std::size_t i = 0;
    for (int l = -26; l <= 26; ++l) {
      if (l == 0 || l == -21 || l == -7 || l == 7 || l == 21) continue;
      out[i++] = l;
    }
    if (i != 48) throw std::logic_error("data subcarrier count");
    return out;
  }();
  return indices;
}

const std::array<int, 4>& pilot_subcarrier_indices() {
  static const std::array<int, 4> indices = {-21, -7, 7, 21};
  return indices;
}

const std::array<double, 4>& pilot_base_values() {
  static const std::array<double, 4> values = {1.0, 1.0, 1.0, -1.0};
  return values;
}

double pilot_polarity(std::size_t symbol_index) {
  static const common::Bits seq = scrambler_sequence(0x7f, 127);
  return seq[symbol_index % 127] ? -1.0 : 1.0;
}

std::size_t logical_to_fft_bin(int logical) {
  if (logical < -32 || logical > 31) {
    throw std::invalid_argument("logical_to_fft_bin: out of range");
  }
  return static_cast<std::size_t>((logical + 64) % 64);
}

int data_subcarrier_position(int logical) {
  const auto& indices = data_subcarrier_indices();
  for (std::size_t i = 0; i < indices.size(); ++i) {
    if (indices[i] == logical) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace sledzig::wifi
