// PLCP SIGNAL field: one BPSK rate-1/2 OFDM symbol carrying RATE, LENGTH and
// a parity bit.  The paper's receiver reads modulation and coding rate from
// here (section IV-G).
//
// Deviation from 802.11a: the standard's 4-bit RATE encoding has no code
// points for 256-QAM or rate 5/6 (those exist only in the HT/VHT SIG fields).
// We keep the 24-bit SIGNAL layout but use our own RATE table covering every
// mode in the paper, documented below.
#pragma once

#include <cstdint>
#include <optional>

#include "common/bits.h"
#include "common/fft.h"
#include "wifi/phy_params.h"
#include "wifi/subcarriers.h"

namespace sledzig::wifi {

struct SignalField {
  Modulation modulation = Modulation::kBpsk;
  CodingRate rate = CodingRate::kR12;
  std::size_t psdu_octets = 0;  // 12-bit LENGTH
};

/// RATE code points (4 bits).  0x0 is reserved/invalid.
std::uint8_t rate_code(Modulation m, CodingRate r);
std::optional<SignalField> mode_from_rate_code(std::uint8_t code);

/// Serialises to the 24 SIGNAL bits (RATE[4], reserved, LENGTH[12], parity,
/// 6 tail zeros).
common::Bits encode_signal_bits(const SignalField& field);

/// Parses 24 SIGNAL bits; empty on parity failure or unknown RATE.
std::optional<SignalField> decode_signal_bits(const common::Bits& bits);

/// The complete SIGNAL OFDM symbol (symbol index 0).  On the 40 MHz plan
/// the 24 SIGNAL bits are zero-padded to the wider BPSK symbol.
common::CplxVec modulate_signal_symbol(const SignalField& field);
common::CplxVec modulate_signal_symbol(const SignalField& field,
                                       const ChannelPlan& plan);

/// Demodulates and decodes the SIGNAL symbol.
std::optional<SignalField> demodulate_signal_symbol(
    std::span<const common::Cplx> samples, std::span<const common::Cplx> channel);
std::optional<SignalField> demodulate_signal_symbol(
    std::span<const common::Cplx> samples, std::span<const common::Cplx> channel,
    const ChannelPlan& plan);

}  // namespace sledzig::wifi
