#include "wifi/signal_field.h"

#include <array>
#include <stdexcept>

#include "wifi/convolutional.h"
#include "wifi/interleaver.h"
#include "wifi/ofdm.h"
#include "wifi/qam.h"

namespace sledzig::wifi {

namespace {

struct RateEntry {
  std::uint8_t code;
  Modulation m;
  CodingRate r;
};

constexpr std::array<RateEntry, 10> kRateTable = {{
    {0x1, Modulation::kBpsk, CodingRate::kR12},
    {0x2, Modulation::kQpsk, CodingRate::kR12},
    {0x3, Modulation::kQpsk, CodingRate::kR34},
    {0x4, Modulation::kQam16, CodingRate::kR12},
    {0x5, Modulation::kQam16, CodingRate::kR34},
    {0x6, Modulation::kQam64, CodingRate::kR23},
    {0x7, Modulation::kQam64, CodingRate::kR34},
    {0x8, Modulation::kQam64, CodingRate::kR56},
    {0x9, Modulation::kQam256, CodingRate::kR34},
    {0xA, Modulation::kQam256, CodingRate::kR56},
}};

}  // namespace

std::uint8_t rate_code(Modulation m, CodingRate r) {
  for (const auto& e : kRateTable) {
    if (e.m == m && e.r == r) return e.code;
  }
  throw std::invalid_argument("rate_code: unsupported modulation/rate combo");
}

std::optional<SignalField> mode_from_rate_code(std::uint8_t code) {
  for (const auto& e : kRateTable) {
    if (e.code == code) {
      SignalField f;
      f.modulation = e.m;
      f.rate = e.r;
      return f;
    }
  }
  return std::nullopt;
}

common::Bits encode_signal_bits(const SignalField& field) {
  if (field.psdu_octets >= (1u << 12)) {
    throw std::invalid_argument("encode_signal_bits: LENGTH overflow");
  }
  common::Bits bits;
  common::append_uint(bits, rate_code(field.modulation, field.rate), 4);
  bits.push_back(0);  // reserved
  common::append_uint(bits, field.psdu_octets, 12);
  bits.push_back(common::parity(bits));  // even parity over bits 0..16
  for (std::size_t i = 0; i < kTailBits; ++i) bits.push_back(0);
  return bits;
}

std::optional<SignalField> decode_signal_bits(const common::Bits& bits) {
  if (bits.size() != 24) return std::nullopt;
  common::Bits head(bits.begin(), bits.begin() + 17);
  if (common::parity(head) != bits[17]) return std::nullopt;
  auto field = mode_from_rate_code(
      static_cast<std::uint8_t>(common::bits_to_uint(bits, 4)));
  if (!field) return std::nullopt;
  field->psdu_octets = static_cast<std::size_t>(
      common::bits_to_uint(std::span<const common::Bit>(bits).subspan(5), 12));
  return field;
}

common::CplxVec modulate_signal_symbol(const SignalField& field,
                                       const ChannelPlan& plan) {
  auto bits = encode_signal_bits(field);
  // Zero-pad to half the plan's BPSK N_CBPS (48 coded bits fill the 20 MHz
  // symbol exactly; wider plans carry trailing zeros).
  bits.resize(coded_bits_per_symbol(Modulation::kBpsk, plan) / 2, 0);
  const auto coded = convolutional_encode(bits);
  const auto interleaved = interleave(coded, Modulation::kBpsk, plan);
  const auto points = qam_map(interleaved, Modulation::kBpsk);
  return modulate_ofdm_symbol(points, /*symbol_index=*/0, plan);
}

common::CplxVec modulate_signal_symbol(const SignalField& field) {
  return modulate_signal_symbol(field, channel_plan(ChannelWidth::k20MHz));
}

std::optional<SignalField> demodulate_signal_symbol(
    std::span<const common::Cplx> samples,
    std::span<const common::Cplx> channel, const ChannelPlan& plan) {
  const auto points =
      demodulate_ofdm_symbol(samples, /*symbol_index=*/0, channel, plan);
  const auto hard = qam_demap(points, Modulation::kBpsk);
  const auto deinterleaved = deinterleave(hard, Modulation::kBpsk, plan);
  std::vector<std::int8_t> soft(deinterleaved.begin(), deinterleaved.end());
  const auto decoded = viterbi_decode(soft, /*terminated=*/true);
  if (decoded.size() < 24) return std::nullopt;
  common::Bits head(decoded.begin(), decoded.begin() + 24);
  return decode_signal_bits(head);
}

std::optional<SignalField> demodulate_signal_symbol(
    std::span<const common::Cplx> samples,
    std::span<const common::Cplx> channel) {
  return demodulate_signal_symbol(samples, channel,
                                  channel_plan(ChannelWidth::k20MHz));
}

}  // namespace sledzig::wifi
