// 802.11 data scrambler: length-127 LFSR with polynomial x^7 + x^4 + 1.
//
// The scrambler is *additive* (synchronous): the keystream depends only on
// the 7-bit seed, so scrambling and descrambling are the same XOR operation.
// SledZig relies on this — extra bits are computed in the scrambled domain
// and the transmit payload is obtained by descrambling (section IV-C of the
// paper).
#pragma once

#include <cstdint>

#include "common/bits.h"

namespace sledzig::wifi {

/// Generates `count` keystream bits from the 7-bit seed (must be nonzero per
/// the standard; seed bit 0 is x1, the oldest register stage).
common::Bits scrambler_sequence(std::uint8_t seed, std::size_t count);

/// XORs the input with the keystream.  Self-inverse.
common::Bits scramble(const common::Bits& in, std::uint8_t seed);

/// Alias of scramble(); provided for call-site readability.
inline common::Bits descramble(const common::Bits& in, std::uint8_t seed) {
  return scramble(in, seed);
}

}  // namespace sledzig::wifi
