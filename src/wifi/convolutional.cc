#include "wifi/convolutional.h"

#include <array>
#include <limits>
#include <stdexcept>

namespace sledzig::wifi {

namespace {

common::Bit parity7(unsigned v) {
  v ^= v >> 4;
  v ^= v >> 2;
  v ^= v >> 1;
  return static_cast<common::Bit>(v & 1u);
}

}  // namespace

EncodeStepResult encode_step(unsigned state, common::Bit input) {
  // Register layout: bit6 = x_n (current input), bit5..bit0 = x_{n-1}..x_{n-6}.
  const unsigned reg = (static_cast<unsigned>(input & 1u) << 6) | (state & 0x3f);
  EncodeStepResult r;
  r.out_a = parity7(reg & kGen0);
  r.out_b = parity7(reg & kGen1);
  r.next_state = (reg >> 1) & 0x3f;  // drop x_{n-6}, x_n becomes x_{n-1}
  return r;
}

common::Bits convolutional_encode(const common::Bits& in) {
  common::Bits out;
  out.reserve(in.size() * 2);
  unsigned state = 0;
  for (common::Bit b : in) {
    const auto step = encode_step(state, b);
    out.push_back(step.out_a);
    out.push_back(step.out_b);
    state = step.next_state;
  }
  return out;
}

namespace {

// Precomputed branch table for (state, input): successor state plus the two
// output bits.  Shared by the hard- and soft-decision decoders.
struct Branch {
  std::uint8_t next;
  std::uint8_t a, b;
};

const std::array<std::array<Branch, 2>, kNumStates>& trellis() {
  static const auto t = [] {
    std::array<std::array<Branch, 2>, kNumStates> out{};
    for (unsigned s = 0; s < kNumStates; ++s) {
      for (unsigned in = 0; in < 2; ++in) {
        const auto r = encode_step(s, static_cast<common::Bit>(in));
        out[s][in] = Branch{static_cast<std::uint8_t>(r.next_state), r.out_a,
                            r.out_b};
      }
    }
    return out;
  }();
  return t;
}

/// Shared add-compare-select sweep + traceback.
///
/// Survivor storage is one contiguous steps*kNumStates byte buffer (input
/// bit in bit 6, predecessor state in bits 0..5 — kNumStates == 64), and
/// per-step branch metrics are hoisted into two 2-entry tables filled by
/// `fill_tables(t, ca, cb)` (cost contribution of output bit a resp. b
/// being 0/1).  Costs accumulate as (metric + ca[a]) + cb[b], the same
/// association order as the pre-flattening decoder, so decisions — and the
/// decoded bits — are bit-identical to it.
template <typename Metric, typename FillTables>
common::Bits viterbi_sweep(std::size_t steps, Metric inf, bool terminated,
                           FillTables&& fill_tables) {
  const auto& tr = trellis();
  std::array<Metric, kNumStates> metric;
  std::array<Metric, kNumStates> next_metric;
  metric.fill(inf);
  metric[0] = Metric{};  // encoder starts in the all-zero state

  std::vector<std::uint8_t> survivor(steps * kNumStates, 0);

  for (std::size_t t = 0; t < steps; ++t) {
    next_metric.fill(inf);
    Metric ca[2], cb[2];
    fill_tables(t, ca, cb);
    std::uint8_t* surv_t = survivor.data() + t * kNumStates;
    for (unsigned s = 0; s < kNumStates; ++s) {
      if (metric[s] >= inf) continue;
      for (unsigned in = 0; in < 2; ++in) {
        const Branch& br = tr[s][in];
        const Metric cost = (metric[s] + ca[br.a]) + cb[br.b];
        if (cost < next_metric[br.next]) {
          next_metric[br.next] = cost;
          surv_t[br.next] = static_cast<std::uint8_t>((in << 6) | s);
        }
      }
    }
    metric.swap(next_metric);
  }

  // Pick the end state: 0 when terminated, otherwise best metric.
  unsigned state = 0;
  if (!terminated) {
    Metric best = inf;
    for (unsigned s = 0; s < kNumStates; ++s) {
      if (metric[s] < best) {
        best = metric[s];
        state = s;
      }
    }
  }

  common::Bits decoded(steps);
  for (std::size_t t = steps; t-- > 0;) {
    const std::uint8_t packed = survivor[t * kNumStates + state];
    decoded[t] = static_cast<common::Bit>(packed >> 6);
    state = packed & 0x3fu;
  }
  return decoded;
}

}  // namespace

common::Bits viterbi_decode(const std::vector<std::int8_t>& coded,
                            bool terminated) {
  if (coded.size() % 2 != 0) {
    throw std::invalid_argument("viterbi_decode: odd coded length");
  }
  constexpr unsigned kInf = std::numeric_limits<unsigned>::max() / 2;
  return viterbi_sweep(
      coded.size() / 2, kInf, terminated,
      [&](std::size_t t, unsigned (&ca)[2], unsigned (&cb)[2]) {
        const std::int8_t ra = coded[2 * t];
        const std::int8_t rb = coded[2 * t + 1];
        // Hamming cost per output bit; an erased position costs nothing
        // either way.
        ca[0] = (ra != kErased && ra != 0) ? 1u : 0u;
        ca[1] = (ra != kErased && ra != 1) ? 1u : 0u;
        cb[0] = (rb != kErased && rb != 0) ? 1u : 0u;
        cb[1] = (rb != kErased && rb != 1) ? 1u : 0u;
      });
}

common::Bits viterbi_decode_soft(std::span<const double> llrs,
                                 bool terminated) {
  if (llrs.size() % 2 != 0) {
    throw std::invalid_argument("viterbi_decode_soft: odd LLR length");
  }
  constexpr double kInf = 1e300;
  return viterbi_sweep(
      llrs.size() / 2, kInf, terminated,
      [&](std::size_t t, double (&ca)[2], double (&cb)[2]) {
        // Cost: correlation against the LLRs — a bit of 1 prefers a
        // positive LLR.  Add llr when the branch bit disagrees with its
        // sign (equivalent up to a constant to -sum(llr * (2*bit - 1))).
        const double la = llrs[2 * t];
        const double lb = llrs[2 * t + 1];
        ca[0] = la;
        ca[1] = -la;
        cb[0] = lb;
        cb[1] = -lb;
      });
}

}  // namespace sledzig::wifi
