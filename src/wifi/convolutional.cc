#include "wifi/convolutional.h"

#include <array>
#include <limits>
#include <stdexcept>

namespace sledzig::wifi {

namespace {

common::Bit parity7(unsigned v) {
  v ^= v >> 4;
  v ^= v >> 2;
  v ^= v >> 1;
  return static_cast<common::Bit>(v & 1u);
}

}  // namespace

EncodeStepResult encode_step(unsigned state, common::Bit input) {
  // Register layout: bit6 = x_n (current input), bit5..bit0 = x_{n-1}..x_{n-6}.
  const unsigned reg = (static_cast<unsigned>(input & 1u) << 6) | (state & 0x3f);
  EncodeStepResult r;
  r.out_a = parity7(reg & kGen0);
  r.out_b = parity7(reg & kGen1);
  r.next_state = (reg >> 1) & 0x3f;  // drop x_{n-6}, x_n becomes x_{n-1}
  return r;
}

common::Bits convolutional_encode(const common::Bits& in) {
  common::Bits out;
  out.reserve(in.size() * 2);
  unsigned state = 0;
  for (common::Bit b : in) {
    const auto step = encode_step(state, b);
    out.push_back(step.out_a);
    out.push_back(step.out_b);
    state = step.next_state;
  }
  return out;
}

common::Bits viterbi_decode(const std::vector<std::int8_t>& coded,
                            bool terminated) {
  if (coded.size() % 2 != 0) {
    throw std::invalid_argument("viterbi_decode: odd coded length");
  }
  const std::size_t steps = coded.size() / 2;
  constexpr unsigned kInf = std::numeric_limits<unsigned>::max() / 2;

  // Precompute branch outputs for (state, input).
  struct Branch {
    unsigned next;
    common::Bit a, b;
  };
  static const auto kTrellis = [] {
    std::array<std::array<Branch, 2>, kNumStates> t{};
    for (unsigned s = 0; s < kNumStates; ++s) {
      for (unsigned in = 0; in < 2; ++in) {
        const auto r = encode_step(s, static_cast<common::Bit>(in));
        t[s][in] = Branch{r.next_state, r.out_a, r.out_b};
      }
    }
    return t;
  }();

  std::vector<unsigned> metric(kNumStates, kInf);
  std::vector<unsigned> next_metric(kNumStates, kInf);
  metric[0] = 0;  // encoder starts in the all-zero state

  // survivor[t][s] = input bit and predecessor state packed into one byte.
  std::vector<std::vector<std::uint8_t>> survivor(
      steps, std::vector<std::uint8_t>(kNumStates, 0));
  std::vector<std::vector<std::uint8_t>> pred(
      steps, std::vector<std::uint8_t>(kNumStates, 0));

  for (std::size_t t = 0; t < steps; ++t) {
    std::fill(next_metric.begin(), next_metric.end(), kInf);
    const std::int8_t ra = coded[2 * t];
    const std::int8_t rb = coded[2 * t + 1];
    for (unsigned s = 0; s < kNumStates; ++s) {
      if (metric[s] >= kInf) continue;
      for (unsigned in = 0; in < 2; ++in) {
        const Branch& br = kTrellis[s][in];
        unsigned cost = metric[s];
        if (ra != kErased && br.a != static_cast<common::Bit>(ra)) ++cost;
        if (rb != kErased && br.b != static_cast<common::Bit>(rb)) ++cost;
        if (cost < next_metric[br.next]) {
          next_metric[br.next] = cost;
          survivor[t][br.next] = static_cast<std::uint8_t>(in);
          pred[t][br.next] = static_cast<std::uint8_t>(s);
        }
      }
    }
    metric.swap(next_metric);
  }

  // Pick the end state: 0 when terminated, otherwise best metric.
  unsigned state = 0;
  if (!terminated) {
    unsigned best = kInf;
    for (unsigned s = 0; s < kNumStates; ++s) {
      if (metric[s] < best) {
        best = metric[s];
        state = s;
      }
    }
  }

  common::Bits decoded(steps);
  for (std::size_t t = steps; t-- > 0;) {
    decoded[t] = survivor[t][state];
    state = pred[t][state];
  }
  return decoded;
}

common::Bits viterbi_decode_soft(std::span<const double> llrs,
                                 bool terminated) {
  if (llrs.size() % 2 != 0) {
    throw std::invalid_argument("viterbi_decode_soft: odd LLR length");
  }
  const std::size_t steps = llrs.size() / 2;
  constexpr double kInf = 1e300;

  struct Branch {
    unsigned next;
    common::Bit a, b;
  };
  static const auto kTrellis = [] {
    std::array<std::array<Branch, 2>, kNumStates> t{};
    for (unsigned s = 0; s < kNumStates; ++s) {
      for (unsigned in = 0; in < 2; ++in) {
        const auto r = encode_step(s, static_cast<common::Bit>(in));
        t[s][in] = Branch{r.next_state, r.out_a, r.out_b};
      }
    }
    return t;
  }();

  std::vector<double> metric(kNumStates, kInf);
  std::vector<double> next_metric(kNumStates, kInf);
  metric[0] = 0.0;

  std::vector<std::vector<std::uint8_t>> survivor(
      steps, std::vector<std::uint8_t>(kNumStates, 0));
  std::vector<std::vector<std::uint8_t>> pred(
      steps, std::vector<std::uint8_t>(kNumStates, 0));

  for (std::size_t t = 0; t < steps; ++t) {
    std::fill(next_metric.begin(), next_metric.end(), kInf);
    const double la = llrs[2 * t];
    const double lb = llrs[2 * t + 1];
    for (unsigned s = 0; s < kNumStates; ++s) {
      if (metric[s] >= kInf) continue;
      for (unsigned in = 0; in < 2; ++in) {
        const Branch& br = kTrellis[s][in];
        // Cost: correlation against the LLRs — a bit of 1 prefers a
        // positive LLR.  Add llr when the branch bit disagrees with its
        // sign (equivalent up to a constant to -sum(llr * (2*bit - 1))).
        double cost = metric[s];
        cost += br.a ? -la : la;
        cost += br.b ? -lb : lb;
        if (cost < next_metric[br.next]) {
          next_metric[br.next] = cost;
          survivor[t][br.next] = static_cast<std::uint8_t>(in);
          pred[t][br.next] = static_cast<std::uint8_t>(s);
        }
      }
    }
    metric.swap(next_metric);
  }

  unsigned state = 0;
  if (!terminated) {
    double best = kInf;
    for (unsigned s = 0; s < kNumStates; ++s) {
      if (metric[s] < best) {
        best = metric[s];
        state = s;
      }
    }
  }

  common::Bits decoded(steps);
  for (std::size_t t = steps; t-- > 0;) {
    decoded[t] = survivor[t][state];
    state = pred[t][state];
  }
  return decoded;
}

}  // namespace sledzig::wifi
