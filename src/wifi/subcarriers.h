// 802.11 OFDM subcarrier geometry.
//
// 20 MHz: 48 data + 4 pilot + 12 null subcarriers over a 64-point FFT
// (Fig 2 of the paper); logical indices -32..31, index 0 is the DC null.
// 40 MHz: 108 data + 6 pilot subcarriers over a 128-point FFT
// (802.11n-style); logical indices -64..63.
//
// The free functions below are the 20 MHz fast path used throughout the
// paper reproduction; ChannelPlan generalises them for wider channels.
#pragma once

#include <array>
#include <complex>
#include <vector>

#include "common/fft.h"
#include "wifi/phy_params.h"

namespace sledzig::wifi {

/// Static description of one channel width's OFDM layout.
struct ChannelPlan {
  ChannelWidth width = ChannelWidth::k20MHz;
  std::size_t fft_size = 64;
  std::size_t cp_len = 16;
  double sample_rate_hz = 20e6;
  /// Interleaver column count (16 for 20 MHz, 18 for 40 MHz per 802.11n).
  std::size_t interleaver_columns = 16;
  std::vector<int> data_indices;      // ascending logical indices
  std::vector<int> pilot_indices;
  std::vector<double> pilot_values;   // base values before polarity

  std::size_t num_data() const { return data_indices.size(); }
  std::size_t symbol_len() const { return fft_size + cp_len; }
  double subcarrier_spacing_hz() const {
    return sample_rate_hz / static_cast<double>(fft_size);
  }
  /// Time-domain scale giving unit mean power for unit-power occupied bins.
  double time_scale() const;
  /// Maps a logical index to an FFT bin.
  std::size_t to_fft_bin(int logical) const;
  /// Position of `logical` in the data order, or -1.
  int data_position(int logical) const;
};

/// The shared immutable plan for a width.
const ChannelPlan& channel_plan(ChannelWidth width);

/// Coded bits per OFDM symbol for a plan (num_data * N_BPSC).
std::size_t coded_bits_per_symbol(Modulation m, const ChannelPlan& plan);

/// Data bits per OFDM symbol for a plan.
std::size_t data_bits_per_symbol(Modulation m, CodingRate r,
                                 const ChannelPlan& plan);

/// Ascending logical indices of the 48 data subcarriers
/// (-26..26 excluding 0 and the pilots at +-7, +-21).
const std::array<int, 48>& data_subcarrier_indices();

/// Logical indices of the 4 pilot subcarriers.
const std::array<int, 4>& pilot_subcarrier_indices();

/// Base pilot values before polarity: {1, 1, 1, -1} at {-21, -7, 7, 21}.
const std::array<double, 4>& pilot_base_values();

/// Pilot polarity p_n for OFDM symbol n (n = 0 is the SIGNAL symbol).  The
/// sequence is the 127-periodic scrambler output with an all-ones seed,
/// mapped 0 -> +1, 1 -> -1.
double pilot_polarity(std::size_t symbol_index);

/// Maps logical index (-32..31) to FFT bin (0..63).
std::size_t logical_to_fft_bin(int logical);

/// Position of a logical index in the 48-entry data subcarrier order, or -1
/// if it is not a data subcarrier.
int data_subcarrier_position(int logical);

}  // namespace sledzig::wifi
