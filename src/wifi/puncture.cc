#include "wifi/puncture.h"

#include <stdexcept>

namespace sledzig::wifi {

std::vector<bool> puncture_mask(CodingRate r) {
  switch (r) {
    case CodingRate::kR12:
      return {true, true};
    case CodingRate::kR23:
      return {true, true, true, false};
    case CodingRate::kR34:
      return {true, true, true, false, false, true};
    case CodingRate::kR56:
      return {true, true, true, false, false, true, true, false, false, true};
  }
  throw std::invalid_argument("puncture_mask: bad rate");
}

common::Bits puncture(const common::Bits& coded, CodingRate r) {
  const auto mask = puncture_mask(r);
  common::Bits out;
  out.reserve(coded.size());
  for (std::size_t i = 0; i < coded.size(); ++i) {
    if (mask[i % mask.size()]) out.push_back(coded[i]);
  }
  return out;
}

std::vector<std::int8_t> depuncture(const common::Bits& punctured,
                                    CodingRate r) {
  const auto mask = puncture_mask(r);
  std::size_t kept_per_period = 0;
  for (bool keep : mask) kept_per_period += keep ? 1 : 0;

  std::vector<std::int8_t> out;
  out.reserve(punctured.size() * mask.size() / kept_per_period + mask.size());
  std::size_t in_pos = 0;
  std::size_t last_kept_end = 0;  // one past the last real (non-erased) bit
  while (in_pos < punctured.size()) {
    for (bool keep : mask) {
      if (keep && in_pos < punctured.size()) {
        out.push_back(static_cast<std::int8_t>(punctured[in_pos++]));
        last_kept_end = out.size();
      } else {
        out.push_back(kErased);
      }
    }
  }
  // The encoder may have stopped mid-pattern; drop padding beyond the last
  // real bit, rounded up to a whole trellis step.
  out.resize(last_kept_end + (last_kept_end % 2));
  return out;
}

std::vector<double> depuncture_soft(std::span<const double> punctured,
                                    CodingRate r) {
  const auto mask = puncture_mask(r);
  std::size_t kept_per_period = 0;
  for (bool keep : mask) kept_per_period += keep ? 1 : 0;

  std::vector<double> out;
  out.reserve(punctured.size() * mask.size() / kept_per_period + mask.size());
  std::size_t in_pos = 0;
  std::size_t last_kept_end = 0;
  while (in_pos < punctured.size()) {
    for (bool keep : mask) {
      if (keep && in_pos < punctured.size()) {
        out.push_back(punctured[in_pos++]);
        last_kept_end = out.size();
      } else {
        out.push_back(0.0);
      }
    }
  }
  out.resize(last_kept_end + (last_kept_end % 2));
  return out;
}

std::size_t punctured_to_coded_index(CodingRate r, std::size_t punctured_pos) {
  const auto mask = puncture_mask(r);
  std::size_t kept_per_period = 0;
  for (bool keep : mask) kept_per_period += keep ? 1 : 0;

  const std::size_t period = punctured_pos / kept_per_period;
  std::size_t within = punctured_pos % kept_per_period;
  for (std::size_t i = 0; i < mask.size(); ++i) {
    if (mask[i]) {
      if (within == 0) return period * mask.size() + i;
      --within;
    }
  }
  throw std::logic_error("punctured_to_coded_index: unreachable");
}

bool coded_to_punctured_index(CodingRate r, std::size_t coded_pos,
                              std::size_t& punctured_pos) {
  const auto mask = puncture_mask(r);
  std::size_t kept_per_period = 0;
  for (bool keep : mask) kept_per_period += keep ? 1 : 0;

  const std::size_t period = coded_pos / mask.size();
  const std::size_t within = coded_pos % mask.size();
  if (!mask[within]) return false;
  std::size_t kept_before = 0;
  for (std::size_t i = 0; i < within; ++i) {
    kept_before += mask[i] ? 1 : 0;
  }
  punctured_pos = period * kept_per_period + kept_before;
  return true;
}

}  // namespace sledzig::wifi
