// Static 802.11 OFDM PHY parameters (20 MHz channel).
//
// The paper evaluates the seven modulation/coding combinations of its
// Tables III/IV.  Note one paper typo we compensate for: the row printed as
// "QAM-16, 2/3" carries 144 data bits per OFDM symbol, which is only
// consistent with coding rate 3/4 (192 coded bits * 3/4); rate 2/3 would give
// 128.  We expose the real rate math and list the paper combination as
// {Qam16, R34}.
#pragma once

#include <array>
#include <cstddef>
#include <string>

namespace sledzig::wifi {

inline constexpr std::size_t kNumSubcarriers = 64;   // FFT size
inline constexpr std::size_t kNumDataSubcarriers = 48;
inline constexpr std::size_t kNumPilotSubcarriers = 4;
inline constexpr std::size_t kCyclicPrefixLen = 16;  // 0.8 us at 20 MS/s
inline constexpr std::size_t kSymbolLen = kNumSubcarriers + kCyclicPrefixLen;
inline constexpr double kSampleRateHz = 20e6;
inline constexpr double kSubcarrierSpacingHz = kSampleRateHz / kNumSubcarriers;  // 312.5 kHz
inline constexpr double kSymbolDurationUs = 4.0;
inline constexpr double kPreambleDurationUs = 16.0;  // 10 STS + 2 LTS
inline constexpr std::size_t kTailBits = 6;          // flush the K=7 encoder

enum class Modulation { kBpsk, kQpsk, kQam16, kQam64, kQam256 };
enum class CodingRate { kR12, kR23, kR34, kR56 };

/// Channel bandwidth.  The paper evaluates 20 MHz and notes the "similar
/// idea can be easily extended to wider channel scenarios"; the 40 MHz plan
/// implements that extension (802.11n-style 128-point FFT, 108 data + 6
/// pilot subcarriers).
enum class ChannelWidth { k20MHz, k40MHz };

std::string to_string(ChannelWidth w);

/// Coded bits carried by one subcarrier (N_BPSC).
std::size_t bits_per_subcarrier(Modulation m);

/// Coded bits per OFDM symbol (N_CBPS = 48 * N_BPSC).
std::size_t coded_bits_per_symbol(Modulation m);

/// Data bits per OFDM symbol (N_DBPS = N_CBPS * rate).
std::size_t data_bits_per_symbol(Modulation m, CodingRate r);

/// Rate as numerator/denominator.
struct RateFraction {
  std::size_t num = 1;
  std::size_t den = 2;
};
RateFraction rate_fraction(CodingRate r);

std::string to_string(Modulation m);
std::string to_string(CodingRate r);

/// One modulation/coding combination evaluated by the paper.
struct PhyMode {
  Modulation modulation;
  CodingRate rate;
  /// Minimum receive SNR (dB) for reliable decoding; Table IV of the paper.
  double min_snr_db;
};

/// The seven combinations in the paper's Tables III/IV, in table order.
/// (The paper's "QAM-16, 2/3" row is listed here as rate 3/4; see header
/// comment.)
const std::array<PhyMode, 7>& paper_phy_modes();

}  // namespace sledzig::wifi
