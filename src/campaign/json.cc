#include "campaign/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace sledzig::campaign {

JsonValue::JsonValue(std::uint64_t u) : type_(Type::kNumber) {
  num_ = static_cast<double>(u);
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : obj_) {
    if (k == key) return &v;
  }
  return nullptr;
}

JsonValue* JsonValue::find(const std::string& key) {
  if (type_ != Type::kObject) return nullptr;
  for (auto& [k, v] : obj_) {
    if (k == key) return &v;
  }
  return nullptr;
}

void JsonValue::set(const std::string& key, JsonValue v) {
  if (type_ == Type::kNull) *this = JsonValue(JsonObject{});
  for (auto& [k, existing] : obj_) {
    if (k == key) {
      existing = std::move(v);
      return;
    }
  }
  obj_.emplace_back(key, std::move(v));
}

const char* JsonValue::type_name() const {
  switch (type_) {
    case Type::kNull: return "null";
    case Type::kBool: return "bool";
    case Type::kNumber: return "number";
    case Type::kString: return "string";
    case Type::kArray: return "array";
    case Type::kObject: return "object";
  }
  return "?";
}

bool JsonValue::operator==(const JsonValue& other) const {
  if (type_ != other.type_) return false;
  switch (type_) {
    case Type::kNull: return true;
    case Type::kBool: return bool_ == other.bool_;
    case Type::kNumber: return num_ == other.num_;
    case Type::kString: return str_ == other.str_;
    case Type::kArray: return arr_ == other.arr_;
    case Type::kObject: return obj_ == other.obj_;
  }
  return false;
}

std::string JsonParseError::to_string() const {
  return "line " + std::to_string(line) + ", column " +
         std::to_string(column) + ": " + message;
}

// --- parser ----------------------------------------------------------------

namespace {

class Parser {
 public:
  Parser(const std::string& text, JsonParseError* error)
      : text_(text), error_(error) {}

  bool parse(JsonValue* out) {
    skip_ws();
    if (!parse_value(out, 0)) return false;
    skip_ws();
    if (pos_ != text_.size()) {
      return fail("trailing characters after top-level value");
    }
    return true;
  }

 private:
  /// Containers deeper than this reject (a recursive-descent parser must
  /// bound its stack against hostile input).
  static constexpr int kMaxDepth = 64;

  bool fail(const std::string& message) {
    if (error_ != nullptr) {
      error_->line = line_;
      error_->column = pos_ - line_start_ + 1;
      error_->message = message;
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '\n') {
        ++line_;
        line_start_ = pos_ + 1;
      } else if (c != ' ' && c != '\t' && c != '\r') {
        break;
      }
      ++pos_;
    }
  }

  bool literal(const char* word, JsonValue v, JsonValue* out) {
    const std::size_t len = std::strlen(word);
    if (text_.compare(pos_, len, word) != 0) {
      return fail(std::string("invalid literal (expected '") + word + "')");
    }
    pos_ += len;
    *out = std::move(v);
    return true;
  }

  bool parse_value(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return fail("nesting deeper than 64 levels");
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{': return parse_object(out, depth);
      case '[': return parse_array(out, depth);
      case '"': {
        std::string s;
        if (!parse_string(&s)) return false;
        *out = JsonValue(std::move(s));
        return true;
      }
      case 't': return literal("true", JsonValue(true), out);
      case 'f': return literal("false", JsonValue(false), out);
      case 'n': return literal("null", JsonValue(), out);
      default: return parse_number(out);
    }
  }

  bool parse_string(std::string* out) {
    ++pos_;  // opening quote
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\n') return fail("unterminated string");
      if (c == '\\') {
        if (pos_ + 1 >= text_.size()) return fail("unterminated escape");
        const char e = text_[pos_ + 1];
        switch (e) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'n': out->push_back('\n'); break;
          case 't': out->push_back('\t'); break;
          case 'r': out->push_back('\r'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'u':
            // Advances pos_ itself (6 or 12 chars); fail() still sees the
            // backslash, so errors point at the escape's line:column.
            if (!parse_unicode_escape(out)) return false;
            continue;
          default:
            return fail(std::string("unsupported escape '\\") + e + "'");
        }
        pos_ += 2;
        continue;
      }
      out->push_back(c);
      ++pos_;
    }
    return fail("unterminated string");
  }

  /// The 4 hex digits at text_[at..at+4) as a value, or -1 on a non-hex
  /// digit or a short read at end of input.
  int hex4(std::size_t at) const {
    if (at + 4 > text_.size()) return -1;
    int v = 0;
    for (std::size_t i = 0; i < 4; ++i) {
      const char c = text_[at + i];
      int digit = 0;
      if (c >= '0' && c <= '9') {
        digit = c - '0';
      } else if (c >= 'a' && c <= 'f') {
        digit = c - 'a' + 10;
      } else if (c >= 'A' && c <= 'F') {
        digit = c - 'A' + 10;
      } else {
        return -1;
      }
      v = (v << 4) | digit;
    }
    return v;
  }

  void append_utf8(std::string* out, std::uint32_t cp) const {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  /// `\uXXXX` with pos_ on the backslash.  BMP code points decode
  /// directly; a high surrogate must be followed immediately by a
  /// `\uDC00`..`\uDFFF` escape (the pair combines to one supplementary
  /// code point); a lone surrogate in either position is a parse error.
  /// Decoded text is appended as UTF-8.
  bool parse_unicode_escape(std::string* out) {
    const int hi = hex4(pos_ + 2);
    if (hi < 0) return fail("\\u escape needs 4 hex digits");
    if (hi >= 0xDC00 && hi <= 0xDFFF) {
      return fail("lone low surrogate in \\u escape");
    }
    if (hi >= 0xD800 && hi <= 0xDBFF) {
      if (pos_ + 8 > text_.size() || text_[pos_ + 6] != '\\' ||
          text_[pos_ + 7] != 'u') {
        return fail("high surrogate \\u escape must be followed by \\u");
      }
      const int lo = hex4(pos_ + 8);
      if (lo < 0) return fail("\\u escape needs 4 hex digits");
      if (lo < 0xDC00 || lo > 0xDFFF) {
        return fail("high surrogate \\u escape not followed by a low "
                    "surrogate");
      }
      const std::uint32_t cp =
          0x10000u + ((static_cast<std::uint32_t>(hi) - 0xD800u) << 10) +
          (static_cast<std::uint32_t>(lo) - 0xDC00u);
      append_utf8(out, cp);
      pos_ += 12;
      return true;
    }
    append_utf8(out, static_cast<std::uint32_t>(hi));
    pos_ += 6;
    return true;
  }

  bool parse_number(JsonValue* out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return fail("expected a value");
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0' || !std::isfinite(v)) {
      pos_ = start;
      return fail("malformed number '" + token + "'");
    }
    *out = JsonValue(v);
    return true;
  }

  bool parse_array(JsonValue* out, int depth) {
    ++pos_;  // '['
    JsonArray items;
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      *out = JsonValue(std::move(items));
      return true;
    }
    while (true) {
      JsonValue item;
      skip_ws();
      if (!parse_value(&item, depth + 1)) return false;
      items.push_back(std::move(item));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        *out = JsonValue(std::move(items));
        return true;
      }
      return fail("expected ',' or ']' in array");
    }
  }

  bool parse_object(JsonValue* out, int depth) {
    ++pos_;  // '{'
    JsonObject members;
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      *out = JsonValue(std::move(members));
      return true;
    }
    while (true) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return fail("expected a quoted object key");
      }
      std::string key;
      if (!parse_string(&key)) return false;
      for (const auto& [k, v] : members) {
        if (k == key) return fail("duplicate object key \"" + key + "\"");
      }
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return fail("expected ':' after object key \"" + key + "\"");
      }
      ++pos_;
      skip_ws();
      JsonValue value;
      if (!parse_value(&value, depth + 1)) return false;
      members.emplace_back(std::move(key), std::move(value));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        *out = JsonValue(std::move(members));
        return true;
      }
      return fail("expected ',' or '}' in object");
    }
  }

  const std::string& text_;
  JsonParseError* error_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
  std::size_t line_start_ = 0;
};

// --- writer ----------------------------------------------------------------

/// Shortest decimal that round-trips the double exactly: try increasing
/// precision until strtod gives the value back.  Deterministic — the same
/// double always prints the same bytes, the property every digest relies
/// on.
std::string format_number(double v) {
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      std::fabs(v) < 1e15) {
    return std::to_string(static_cast<long long>(v));
  }
  char buf[40];
  for (int prec = 9; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

void escape_string(const std::string& s, std::string* out) {
  out->push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      case '\r': *out += "\\r"; break;
      default: out->push_back(c);
    }
  }
  out->push_back('"');
}

void dump_value(const JsonValue& v, int indent, int depth, std::string* out) {
  const std::string pad =
      indent > 0 ? std::string(static_cast<std::size_t>(indent) *
                                   (static_cast<std::size_t>(depth) + 1),
                               ' ')
                 : std::string();
  const std::string close_pad =
      indent > 0 ? std::string(
                       static_cast<std::size_t>(indent) *
                           static_cast<std::size_t>(depth), ' ')
                 : std::string();
  const char* nl = indent > 0 ? "\n" : "";
  const char* kv_sep = indent > 0 ? ": " : ":";

  switch (v.type()) {
    case JsonValue::Type::kNull: *out += "null"; return;
    case JsonValue::Type::kBool: *out += v.as_bool() ? "true" : "false"; return;
    case JsonValue::Type::kNumber: *out += format_number(v.as_number()); return;
    case JsonValue::Type::kString: escape_string(v.as_string(), out); return;
    case JsonValue::Type::kArray: {
      const auto& items = v.as_array();
      if (items.empty()) {
        *out += "[]";
        return;
      }
      *out += "[";
      for (std::size_t i = 0; i < items.size(); ++i) {
        *out += (i > 0 ? "," : "");
        *out += nl;
        *out += pad;
        dump_value(items[i], indent, depth + 1, out);
      }
      *out += nl;
      *out += close_pad;
      *out += "]";
      return;
    }
    case JsonValue::Type::kObject: {
      const auto& members = v.as_object();
      if (members.empty()) {
        *out += "{}";
        return;
      }
      *out += "{";
      bool first = true;
      for (const auto& [k, val] : members) {
        if (!first) *out += ",";
        first = false;
        *out += nl;
        *out += pad;
        escape_string(k, out);
        *out += kv_sep;
        dump_value(val, indent, depth + 1, out);
      }
      *out += nl;
      *out += close_pad;
      *out += "}";
      return;
    }
  }
}

}  // namespace

bool json_parse(const std::string& text, JsonValue* out,
                JsonParseError* error) {
  return Parser(text, error).parse(out);
}

std::string json_dump(const JsonValue& value, int indent) {
  std::string out;
  dump_value(value, indent, 0, &out);
  if (indent > 0) out.push_back('\n');
  return out;
}

std::uint64_t json_fnv1a(const JsonValue& value) {
  const std::string bytes = json_dump(value, 0);
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace sledzig::campaign
