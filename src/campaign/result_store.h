// Checkpointing JSONL result store for campaign runs (DESIGN.md §17).
//
// One line per completed work item:
//
//   {"campaign":"<16-hex>","cell":N,"rep":M,"metrics":{...}}
//
// Durability: each append is a single write(2) to an O_APPEND descriptor
// followed by fsync — on a local filesystem a record is either fully
// present or entirely absent, and a SIGKILL can leave at most one
// truncated trailing line.  scan() tolerates exactly that: an unparsable
// *final* line is dropped and counted; an unparsable interior line is a
// corrupt store and an error.  The writer repairs the tear on open —
// a complete append always ends in '\n', so a trailing byte that is not
// one marks a torn line, truncated away before new records go in (a
// resumed shard must never bury the tear in the file's interior).
//
// Identity: every record carries the campaign hash (spec.h).  scan()
// filters on it, so pointing a runner at a store written by a different
// campaign resumes nothing and overwrites nothing — the foreign records
// are counted, reported, and left in place.
//
// The digest: store_digest() sorts records by (cell, rep), drops
// duplicates (first occurrence wins — re-run shards may legally re-append
// items they crashed after completing), and hashes the canonical JSON of
// what remains.  File order therefore never matters: 1 shard × 8 threads,
// 8 shards × 1 thread, and a kill/resume run all digest identically.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "campaign/json.h"

namespace sledzig::campaign {

struct ResultRecord {
  std::uint64_t campaign = 0;  ///< campaign_hash() of the owning spec
  std::uint64_t cell = 0;
  std::uint64_t rep = 0;
  JsonValue metrics;           ///< deterministic per-run metrics object
};

/// Fixed-width lowercase hex for 64-bit identities (hashes and digests are
/// always written in this form — doubles cannot carry 64 bits).
std::string hex64(std::uint64_t v);
bool parse_hex64(const std::string& text, std::uint64_t* out);

/// Append-only writer.  open() creates the file when absent and truncates
/// a torn trailing line when present; append() serializes, writes once,
/// fsyncs.
class ResultStoreWriter {
 public:
  explicit ResultStoreWriter(std::string path);
  ~ResultStoreWriter();
  ResultStoreWriter(const ResultStoreWriter&) = delete;
  ResultStoreWriter& operator=(const ResultStoreWriter&) = delete;

  bool open(std::string* error);
  bool append(const ResultRecord& record, std::string* error);
  bool is_open() const { return fd_ >= 0; }

 private:
  std::string path_;
  int fd_ = -1;
};

struct ScanResult {
  std::vector<ResultRecord> records;  ///< matching campaign, file order
  std::size_t foreign = 0;            ///< records from other campaigns
  std::size_t dropped_partial = 0;    ///< 0 or 1 truncated trailing line
};

/// Reads a store.  A missing file scans as empty (a fresh campaign).
/// Returns false only on IO errors or interior corruption.
bool scan_store(const std::string& path, std::uint64_t campaign,
                ScanResult* out, std::string* error);

/// Canonical digest over the deduplicated, (cell, rep)-sorted records —
/// the byte-identity the acceptance tests compare across shardings.
std::uint64_t store_digest(std::uint64_t campaign,
                           const std::vector<ResultRecord>& records);

/// Serializes one record as its store line (no trailing newline).
std::string record_to_line(const ResultRecord& record);

/// Parses one store line; false when malformed.
bool record_from_line(const std::string& line, ResultRecord* out);

}  // namespace sledzig::campaign
