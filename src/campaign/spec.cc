#include "campaign/spec.h"

#include <cmath>
#include <utility>

#include "common/parallel.h"
#include "common/seed_domains.h"

namespace sledzig::campaign {

namespace {

using sim::ConfigError;

/// Splits "a.b[2].c" into steps: each step is a key plus an optional
/// trailing array index.  Returns false on syntax errors.
struct PathStep {
  std::string key;
  bool has_index = false;
  std::size_t index = 0;
};

bool split_path(const std::string& path, std::vector<PathStep>* out,
                std::string* error) {
  out->clear();
  std::size_t pos = 0;
  while (pos < path.size()) {
    PathStep step;
    while (pos < path.size() && path[pos] != '.' && path[pos] != '[') {
      step.key.push_back(path[pos]);
      ++pos;
    }
    if (step.key.empty()) {
      *error = "empty key segment in path '" + path + "'";
      return false;
    }
    if (pos < path.size() && path[pos] == '[') {
      ++pos;
      std::size_t idx = 0;
      bool any = false;
      while (pos < path.size() && path[pos] >= '0' && path[pos] <= '9') {
        idx = idx * 10 + static_cast<std::size_t>(path[pos] - '0');
        ++pos;
        any = true;
      }
      if (!any || pos >= path.size() || path[pos] != ']') {
        *error = "malformed array index in path '" + path + "'";
        return false;
      }
      ++pos;  // ']'
      step.has_index = true;
      step.index = idx;
    }
    out->push_back(std::move(step));
    if (pos < path.size()) {
      if (path[pos] != '.') {
        *error = "expected '.' after segment in path '" + path + "'";
        return false;
      }
      ++pos;
      if (pos == path.size()) {
        *error = "trailing '.' in path '" + path + "'";
        return false;
      }
    }
  }
  if (out->empty()) {
    *error = "empty path";
    return false;
  }
  return true;
}

}  // namespace

bool json_set_path(JsonValue* root, const std::string& path, JsonValue value,
                   std::string* error) {
  std::vector<PathStep> steps;
  if (!split_path(path, &steps, error)) return false;

  JsonValue* cur = root;
  for (std::size_t s = 0; s < steps.size(); ++s) {
    const PathStep& step = steps[s];
    const bool last = (s + 1 == steps.size());
    if (!cur->is_object() && !cur->is_null()) {
      *error = "path '" + path + "' descends through a " +
               std::string(cur->type_name()) + " at '" + step.key + "'";
      return false;
    }
    if (cur->is_null()) *cur = JsonValue(JsonObject{});
    JsonValue* child = cur->find(step.key);
    if (child == nullptr) {
      // Create the member so partial scenarios still accept overrides;
      // the type it needs appears immediately below.
      cur->set(step.key, step.has_index ? JsonValue(JsonArray{})
                                        : JsonValue());
      child = cur->find(step.key);
    }
    if (step.has_index) {
      if (!child->is_array()) {
        *error = "path '" + path + "': '" + step.key + "' is " +
                 child->type_name() + ", not an array";
        return false;
      }
      auto& arr = child->as_array();
      if (step.index >= arr.size()) {
        *error = "path '" + path + "': index " + std::to_string(step.index) +
                 " out of range for '" + step.key + "' (size " +
                 std::to_string(arr.size()) + ")";
        return false;
      }
      child = &arr[step.index];
    }
    if (last) {
      *child = std::move(value);
      return true;
    }
    cur = child;
  }
  *error = "empty path";
  return false;
}

JsonValue CampaignSpec::to_json() const {
  JsonObject o;
  o.emplace_back("name", JsonValue(name));
  o.emplace_back("seed", JsonValue(static_cast<double>(seed)));
  o.emplace_back("replications",
                 JsonValue(static_cast<double>(replications)));
  o.emplace_back("scenario", scenario);
  JsonArray grid;
  for (const auto& axis : axes) {
    JsonObject a;
    a.emplace_back("path", JsonValue(axis.path));
    a.emplace_back("values", JsonValue(axis.values));
    grid.emplace_back(std::move(a));
  }
  o.emplace_back("grid", JsonValue(std::move(grid)));
  return JsonValue(std::move(o));
}

bool campaign_from_json(const JsonValue& json, CampaignSpec* out,
                        std::vector<sim::ConfigError>* errors) {
  const std::size_t before = errors->size();
  *out = CampaignSpec{};
  if (!json.is_object()) {
    errors->push_back({"campaign", std::string("expected an object, got ") +
                                       json.type_name()});
    return false;
  }
  const JsonValue* scenario = nullptr;
  for (const auto& [key, value] : json.as_object()) {
    if (key == "name") {
      if (!value.is_string()) {
        errors->push_back({"campaign.name", "expected a string"});
      } else {
        out->name = value.as_string();
      }
    } else if (key == "seed") {
      if (!value.is_number() || value.as_number() < 0.0 ||
          value.as_number() != std::floor(value.as_number()) ||
          value.as_number() > 9e15) {
        errors->push_back({"campaign.seed", "expected a non-negative integer"});
      } else {
        out->seed = static_cast<std::uint64_t>(value.as_number());
      }
    } else if (key == "replications") {
      if (!value.is_number() || value.as_number() < 1.0 ||
          value.as_number() != std::floor(value.as_number()) ||
          value.as_number() > 1e9) {
        errors->push_back(
            {"campaign.replications", "expected a positive integer"});
      } else {
        out->replications = static_cast<std::size_t>(value.as_number());
      }
    } else if (key == "scenario") {
      scenario = &value;
    } else if (key == "grid") {
      if (!value.is_array()) {
        errors->push_back({"campaign.grid", "expected an array"});
        continue;
      }
      const auto& items = value.as_array();
      for (std::size_t i = 0; i < items.size(); ++i) {
        const std::string apath =
            "campaign.grid[" + std::to_string(i) + "]";
        if (!items[i].is_object()) {
          errors->push_back({apath, "expected an object"});
          continue;
        }
        GridAxis axis;
        for (const auto& [ak, av] : items[i].as_object()) {
          if (ak == "path") {
            if (!av.is_string() || av.as_string().empty()) {
              errors->push_back({apath + ".path",
                                 "expected a non-empty dotted path string"});
            } else {
              axis.path = av.as_string();
            }
          } else if (ak == "values") {
            if (!av.is_array() || av.as_array().empty()) {
              errors->push_back(
                  {apath + ".values", "expected a non-empty array"});
            } else {
              axis.values = av.as_array();
            }
          } else {
            errors->push_back({apath + "." + ak, "unknown key"});
          }
        }
        if (axis.path.empty() && axis.values.empty()) continue;
        if (axis.path.empty()) {
          errors->push_back({apath + ".path", "missing"});
          continue;
        }
        if (axis.values.empty()) {
          errors->push_back({apath + ".values", "missing"});
          continue;
        }
        out->axes.push_back(std::move(axis));
      }
    } else {
      errors->push_back({"campaign." + key, "unknown key"});
    }
  }
  if (scenario == nullptr) {
    errors->push_back({"campaign.scenario", "missing (a campaign must name "
                                            "its base scenario)"});
  } else {
    out->scenario = *scenario;
    // Validate the base scenario end-to-end now — a campaign that cannot
    // produce a runnable cell 0 should fail at load, not mid-sweep.
    sim::ScenarioConfig probe;
    scenario_from_json(*scenario, &probe, errors);
  }
  return errors->size() == before;
}

bool campaign_from_text(const std::string& text, CampaignSpec* out,
                        std::vector<sim::ConfigError>* errors) {
  JsonValue root;
  JsonParseError perr;
  if (!json_parse(text, &root, &perr)) {
    errors->push_back({"<json>", perr.to_string()});
    return false;
  }
  return campaign_from_json(root, out, errors);
}

std::uint64_t campaign_hash(const CampaignSpec& spec) {
  return json_fnv1a(spec.to_json());
}

std::size_t cell_count(const CampaignSpec& spec) {
  std::size_t n = 1;
  for (const auto& axis : spec.axes) n *= axis.values.size();
  return n;
}

namespace {

/// Per-axis value index for `cell`, last axis fastest (row-major).
std::vector<std::size_t> cell_coords(const CampaignSpec& spec,
                                     std::size_t cell) {
  std::vector<std::size_t> coords(spec.axes.size(), 0);
  for (std::size_t a = spec.axes.size(); a-- > 0;) {
    const std::size_t len = spec.axes[a].values.size();
    coords[a] = cell % len;
    cell /= len;
  }
  return coords;
}

}  // namespace

std::string cell_label(const CampaignSpec& spec, std::size_t cell) {
  const auto coords = cell_coords(spec, cell);
  std::string out;
  for (std::size_t a = 0; a < spec.axes.size(); ++a) {
    if (!out.empty()) out += ";";
    out += spec.axes[a].path + "=" +
           json_dump(spec.axes[a].values[coords[a]], 0);
  }
  return out;
}

bool cell_scenario_json(const CampaignSpec& spec, std::size_t cell,
                        JsonValue* out,
                        std::vector<sim::ConfigError>* errors) {
  const std::size_t before = errors->size();
  *out = spec.scenario;
  const auto coords = cell_coords(spec, cell);
  for (std::size_t a = 0; a < spec.axes.size(); ++a) {
    std::string err;
    if (!json_set_path(out, spec.axes[a].path,
                       spec.axes[a].values[coords[a]], &err)) {
      errors->push_back(
          {"campaign.grid[" + std::to_string(a) + "].path", err});
    }
  }
  return errors->size() == before;
}

bool cell_scenario(const CampaignSpec& spec, std::size_t cell, std::size_t rep,
                   sim::ScenarioConfig* out,
                   std::vector<sim::ConfigError>* errors) {
  JsonValue cell_json;
  if (!cell_scenario_json(spec, cell, &cell_json, errors)) return false;
  if (!scenario_from_json(cell_json, out, errors)) return false;
  out->seed = common::derive_seed(spec.seed, common::seed_domain::kCampaign,
                                  cell, rep);
  return true;
}

}  // namespace sledzig::campaign
