// Minimal deterministic JSON value, parser and writer for the campaign
// layer (DESIGN.md §17).
//
// Self-contained on purpose: the container bakes no JSON dependency, and
// the campaign contract needs properties a general-purpose library would
// not promise anyway —
//
//   * objects preserve insertion order (a vector of pairs, no hashing), so
//     dumps are byte-stable and the tree stays clean of unordered
//     containers (tools/lint_determinism.py bans them in src/);
//   * dump() is a canonical serialization: the same value always produces
//     the same bytes, which is what campaign hashes and store digests are
//     computed over;
//   * parse errors carry line:column and a message, feeding the
//     field-path error reporting in scenario_json/spec.
//
// The grammar is RFC 8259: all escapes including \uXXXX (surrogate pairs
// decode to UTF-8; a lone surrogate is a parse error with line:column).
// The writer stays canonical — non-ASCII bytes pass through raw and only
// the mandatory escapes are emitted — so existing dumps and store digests
// are byte-stable.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace sledzig::campaign {

class JsonValue;

/// Object member list: insertion-ordered, linear lookup (configs are
/// small; determinism beats asymptotics here).
using JsonObject = std::vector<std::pair<std::string, JsonValue>>;
using JsonArray = std::vector<JsonValue>;

class JsonValue {
 public:
  enum class Type : std::uint8_t {
    kNull, kBool, kNumber, kString, kArray, kObject,
  };

  JsonValue() : type_(Type::kNull) {}
  JsonValue(bool b) : type_(Type::kBool), bool_(b) {}                 // NOLINT
  JsonValue(double d) : type_(Type::kNumber), num_(d) {}              // NOLINT
  JsonValue(int i) : type_(Type::kNumber), num_(i) {}                 // NOLINT
  JsonValue(std::uint64_t u);                                        // NOLINT
  JsonValue(const char* s) : type_(Type::kString), str_(s) {}         // NOLINT
  JsonValue(std::string s) : type_(Type::kString), str_(std::move(s)) {} // NOLINT
  JsonValue(JsonArray a) : type_(Type::kArray), arr_(std::move(a)) {} // NOLINT
  JsonValue(JsonObject o) : type_(Type::kObject), obj_(std::move(o)) {} // NOLINT

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Typed accessors; calling the wrong one is a programming error the
  /// campaign layer never commits (it type-checks through JsonCursor).
  bool as_bool() const { return bool_; }
  double as_number() const { return num_; }
  const std::string& as_string() const { return str_; }
  const JsonArray& as_array() const { return arr_; }
  JsonArray& as_array() { return arr_; }
  const JsonObject& as_object() const { return obj_; }
  JsonObject& as_object() { return obj_; }

  /// Object member by key; nullptr when absent (or not an object).
  const JsonValue* find(const std::string& key) const;
  JsonValue* find(const std::string& key);

  /// Sets (replacing) an object member, keeping insertion order for new
  /// keys.  Must be an object (or null, which becomes an empty object).
  void set(const std::string& key, JsonValue v);

  /// Canonical type name for error messages ("number", "object", ...).
  const char* type_name() const;

  bool operator==(const JsonValue& other) const;
  bool operator!=(const JsonValue& other) const { return !(*this == other); }

 private:
  Type type_;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  JsonArray arr_;
  JsonObject obj_;
};

/// One parse failure, positioned in the input text.
struct JsonParseError {
  std::size_t line = 0;    ///< 1-based
  std::size_t column = 0;  ///< 1-based
  std::string message;

  std::string to_string() const;
};

/// Parses `text` into `out`.  Returns false and fills `error` on the first
/// syntax error.  Trailing non-whitespace after the top-level value is an
/// error (a truncated or concatenated file must never half-parse).
bool json_parse(const std::string& text, JsonValue* out,
                JsonParseError* error);

/// Canonical serialization: stable byte output for equal values.  Numbers
/// print as the shortest round-trip decimal ("%.17g" tightened when fewer
/// digits survive a round trip), objects keep insertion order, `indent`
/// is the number of spaces per level (0 = single line, the store-record
/// and digest format).
std::string json_dump(const JsonValue& value, int indent = 0);

/// FNV-1a over the canonical dump: the campaign-hash primitive.
std::uint64_t json_fnv1a(const JsonValue& value);

}  // namespace sledzig::campaign
