#include "campaign/runner.h"

#include <chrono>
#include <mutex>
#include <set>
#include <thread>
#include <utility>

#include "common/parallel.h"

namespace sledzig::campaign {

namespace {

/// Sums a stat across one technology's nodes.
template <typename Get>
double sum_nodes(const std::vector<sim::NodeStats>& nodes, Get get) {
  double total = 0.0;
  for (const auto& n : nodes) total += static_cast<double>(get(n));
  return total;
}

JsonValue tech_to_json(const std::vector<sim::NodeStats>& nodes) {
  JsonObject o;
  o.emplace_back("nodes", JsonValue(static_cast<double>(nodes.size())));
  o.emplace_back("generated", JsonValue(sum_nodes(nodes, [](const auto& n) {
                   return n.generated;
                 })));
  o.emplace_back("delivered", JsonValue(sum_nodes(nodes, [](const auto& n) {
                   return n.delivered;
                 })));
  o.emplace_back("sent", JsonValue(sum_nodes(nodes, [](const auto& n) {
                   return n.sent;
                 })));
  o.emplace_back("queue_dropped",
                 JsonValue(sum_nodes(nodes, [](const auto& n) {
                   return n.queue_dropped;
                 })));
  o.emplace_back("cca_dropped", JsonValue(sum_nodes(nodes, [](const auto& n) {
                   return n.cca_dropped;
                 })));
  o.emplace_back("retry_exhausted",
                 JsonValue(sum_nodes(nodes, [](const auto& n) {
                   return n.retry_exhausted;
                 })));
  o.emplace_back("lost_to_crash",
                 JsonValue(sum_nodes(nodes, [](const auto& n) {
                   return n.lost_to_crash;
                 })));
  const double sent = sum_nodes(nodes, [](const auto& n) { return n.sent; });
  const double delivered =
      sum_nodes(nodes, [](const auto& n) { return n.delivered; });
  o.emplace_back("prr", JsonValue(sent > 0.0 ? delivered / sent : 0.0));
  o.emplace_back("throughput_kbps",
                 JsonValue(sum_nodes(nodes, [](const auto& n) {
                   return n.throughput_kbps;
                 })));
  return JsonValue(std::move(o));
}

}  // namespace

JsonValue result_to_json(const sim::SimResult& result) {
  JsonObject o;
  o.emplace_back("events",
                 JsonValue(static_cast<double>(result.events_processed)));
  o.emplace_back("trace_digest", JsonValue(hex64(result.trace_digest)));
  o.emplace_back("wifi", tech_to_json(result.wifi));
  o.emplace_back("zigbee", tech_to_json(result.zigbee));
  return JsonValue(std::move(o));
}

bool run_campaign(const CampaignSpec& spec, const RunnerOptions& options,
                  RunnerReport* report,
                  std::vector<sim::ConfigError>* errors) {
  *report = RunnerReport{};
  const std::size_t before = errors->size();

  if (options.shard_count == 0 ||
      options.shard_index >= options.shard_count) {
    errors->push_back({"shard", "shard index " +
                                    std::to_string(options.shard_index) +
                                    " out of range for " +
                                    std::to_string(options.shard_count) +
                                    " shard(s)"});
    return false;
  }
  if (options.store_path.empty()) {
    errors->push_back({"store", "no store path given"});
    return false;
  }

  const std::size_t cells = cell_count(spec);
  report->campaign = campaign_hash(spec);
  report->items_total = cells * spec.replications;

  // Pre-resolve every owned cell's scenario once — a broken axis path or
  // invalid cell config fails the whole shard up front, not mid-sweep.
  struct Item {
    std::size_t cell;
    std::size_t rep;
  };
  std::vector<Item> owned;
  for (std::size_t k = options.shard_index; k < report->items_total;
       k += options.shard_count) {
    owned.push_back({k / spec.replications, k % spec.replications});
  }
  report->items_owned = owned.size();
  for (std::size_t c = 0; c < cells; ++c) {
    sim::ScenarioConfig probe;
    if (!cell_scenario(spec, c, 0, &probe, errors)) return false;
  }

  // Resume: everything already recorded for this campaign is skipped.
  ScanResult scanned;
  std::string io_error;
  if (!scan_store(options.store_path, report->campaign, &scanned,
                  &io_error)) {
    errors->push_back({"store", io_error});
    return false;
  }
  std::set<std::pair<std::uint64_t, std::uint64_t>> done;
  for (const auto& rec : scanned.records) done.insert({rec.cell, rec.rep});

  std::vector<Item> pending;
  for (const auto& item : owned) {
    if (done.count({item.cell, item.rep}) != 0) {
      ++report->items_resumed;
    } else {
      pending.push_back(item);
    }
  }

  ResultStoreWriter writer(options.store_path);
  if (!writer.open(&io_error)) {
    errors->push_back({"store", io_error});
    return false;
  }

  const std::size_t threads =
      options.threads > 0 ? options.threads : common::default_thread_count();
  common::ThreadPool pool(threads);

  // Each item computes independently (index-derived seed), then appends
  // under the lock: one fsync'd record per completed item, so a kill
  // loses at most the items in flight.
  std::mutex append_mutex;
  bool append_failed = false;
  std::string append_error;
  pool.for_each_index(pending.size(), [&](std::size_t i) {
    if (options.sleep_ms_per_item > 0) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(options.sleep_ms_per_item));
    }
    const Item item = pending[i];
    sim::ScenarioConfig config;
    std::vector<sim::ConfigError> item_errors;
    if (!cell_scenario(spec, item.cell, item.rep, &config, &item_errors)) {
      std::lock_guard<std::mutex> lock(append_mutex);
      if (!append_failed) {
        append_failed = true;
        append_error = "cell " + std::to_string(item.cell) + ": " +
                       (item_errors.empty() ? "invalid scenario"
                                            : item_errors.front().message);
      }
      return;
    }
    const sim::SimResult result = sim::run_scenario(config);
    ResultRecord record;
    record.campaign = report->campaign;
    record.cell = item.cell;
    record.rep = item.rep;
    record.metrics = result_to_json(result);
    std::lock_guard<std::mutex> lock(append_mutex);
    if (append_failed) return;
    std::string err;
    if (!writer.append(record, &err)) {
      append_failed = true;
      append_error = err;
    }
  });
  if (append_failed) {
    errors->push_back({"store", append_error});
    return false;
  }
  report->items_run = pending.size();

  // Final accounting from the store itself — the digest is a statement
  // about the file on disk, not about this process's memory.
  if (!scan_store(options.store_path, report->campaign, &scanned,
                  &io_error)) {
    errors->push_back({"store", io_error});
    return false;
  }
  std::set<std::pair<std::uint64_t, std::uint64_t>> all;
  for (const auto& rec : scanned.records) all.insert({rec.cell, rec.rep});
  report->complete = all.size() == report->items_total;
  report->digest = store_digest(report->campaign, scanned.records);
  return errors->size() == before;
}

}  // namespace sledzig::campaign
