#include "campaign/scenario_json.h"

#include <cmath>
#include <cstdint>
#include <utility>

namespace sledzig::campaign {

namespace {

using sim::ConfigError;

// --- enum name tables ------------------------------------------------------

struct NamePair {
  const char* name;
  int value;
};

template <typename Enum, std::size_t N>
std::string enum_name(const NamePair (&table)[N], Enum v) {
  for (const auto& p : table) {
    if (p.value == static_cast<int>(v)) return p.name;
  }
  return "?";
}

template <typename Enum, std::size_t N>
bool enum_from_name(const NamePair (&table)[N], const std::string& name,
                    Enum* out) {
  for (const auto& p : table) {
    if (name == p.name) {
      *out = static_cast<Enum>(p.value);
      return true;
    }
  }
  return false;
}

template <std::size_t N>
std::string enum_choices(const NamePair (&table)[N]) {
  std::string out;
  for (const auto& p : table) {
    if (!out.empty()) out += "|";
    out += p.name;
  }
  return out;
}

constexpr NamePair kTrafficKinds[] = {
    {"saturated", static_cast<int>(sim::TrafficKind::kSaturated)},
    {"cbr", static_cast<int>(sim::TrafficKind::kCbr)},
    {"poisson", static_cast<int>(sim::TrafficKind::kPoisson)},
    {"duty_cycle", static_cast<int>(sim::TrafficKind::kDutyCycle)},
};

constexpr NamePair kFaultKinds[] = {
    {"crash", static_cast<int>(sim::FaultKind::kCrash)},
    {"reboot", static_cast<int>(sim::FaultKind::kReboot)},
    {"mute_on", static_cast<int>(sim::FaultKind::kMuteOn)},
    {"mute_off", static_cast<int>(sim::FaultKind::kMuteOff)},
    {"deaf_on", static_cast<int>(sim::FaultKind::kDeafOn)},
    {"deaf_off", static_cast<int>(sim::FaultKind::kDeafOff)},
    {"jam_on", static_cast<int>(sim::FaultKind::kJamOn)},
    {"surge_on", static_cast<int>(sim::FaultKind::kSurgeOn)},
    {"surge_off", static_cast<int>(sim::FaultKind::kSurgeOff)},
};

constexpr NamePair kModulations[] = {
    {"bpsk", static_cast<int>(wifi::Modulation::kBpsk)},
    {"qpsk", static_cast<int>(wifi::Modulation::kQpsk)},
    {"qam16", static_cast<int>(wifi::Modulation::kQam16)},
    {"qam64", static_cast<int>(wifi::Modulation::kQam64)},
    {"qam256", static_cast<int>(wifi::Modulation::kQam256)},
};

constexpr NamePair kRates[] = {
    {"1/2", static_cast<int>(wifi::CodingRate::kR12)},
    {"2/3", static_cast<int>(wifi::CodingRate::kR23)},
    {"3/4", static_cast<int>(wifi::CodingRate::kR34)},
    {"5/6", static_cast<int>(wifi::CodingRate::kR56)},
};

constexpr NamePair kOverlapChannels[] = {
    {"ch1", static_cast<int>(core::OverlapChannel::kCh1)},
    {"ch2", static_cast<int>(core::OverlapChannel::kCh2)},
    {"ch3", static_cast<int>(core::OverlapChannel::kCh3)},
    {"ch4", static_cast<int>(core::OverlapChannel::kCh4)},
};

constexpr NamePair kWidths[] = {
    {"20mhz", static_cast<int>(wifi::ChannelWidth::k20MHz)},
    {"40mhz", static_cast<int>(wifi::ChannelWidth::k40MHz)},
};

// --- typed object reader ---------------------------------------------------

/// Wraps one JSON object with a dotted path; every getter type-checks,
/// records an error on mismatch, and marks the key consumed so finish()
/// can flag unknown keys.  All getters are override-if-present: an absent
/// key leaves *out (the engine default) untouched.
class ObjReader {
 public:
  ObjReader(const JsonValue* v, std::string path,
            std::vector<ConfigError>* errors)
      : value_(v), path_(std::move(path)), errors_(errors) {
    if (value_ != nullptr && !value_->is_object()) {
      errors_->push_back({path_.empty() ? "scenario" : path_,
                          std::string("expected an object, got ") +
                              value_->type_name()});
      value_ = nullptr;
    }
    if (value_ != nullptr) consumed_.assign(value_->as_object().size(), false);
  }

  bool present() const { return value_ != nullptr; }

  /// The member for `key`, consuming it; nullptr when absent.
  const JsonValue* child(const char* key) {
    if (value_ == nullptr) return nullptr;
    const auto& members = value_->as_object();
    for (std::size_t i = 0; i < members.size(); ++i) {
      if (members[i].first == key) {
        consumed_[i] = true;
        return &members[i].second;
      }
    }
    return nullptr;
  }

  /// Dotted child path; the root reader carries an empty prefix so
  /// top-level fields report as "duration_s", matching the nested style.
  std::string sub(const char* key) const {
    return path_.empty() ? key : path_ + "." + key;
  }

  void error(const char* key, const std::string& message) {
    errors_->push_back({sub(key), message});
  }

  void get(const char* key, double* out) {
    const JsonValue* v = child(key);
    if (v == nullptr) return;
    if (!v->is_number()) {
      error(key, std::string("expected a number, got ") + v->type_name());
      return;
    }
    *out = v->as_number();
  }

  void get(const char* key, bool* out) {
    const JsonValue* v = child(key);
    if (v == nullptr) return;
    if (!v->is_bool()) {
      error(key, std::string("expected true/false, got ") + v->type_name());
      return;
    }
    *out = v->as_bool();
  }

  template <typename UInt>
  void get_uint(const char* key, UInt* out, double max_value) {
    const JsonValue* v = child(key);
    if (v == nullptr) return;
    if (!v->is_number() || v->as_number() < 0.0 ||
        v->as_number() != std::floor(v->as_number()) ||
        v->as_number() > max_value) {
      error(key, "expected a non-negative integer");
      return;
    }
    *out = static_cast<UInt>(v->as_number());
  }

  void get(const char* key, unsigned* out) { get_uint(key, out, 4294967295.0); }
  void get(const char* key, std::uint8_t* out) { get_uint(key, out, 255.0); }
  // Covers seeds too: values above ~2^53 would silently lose bits through
  // the double, so the ceiling keeps the round-trip honest.
  void get(const char* key, std::size_t* out) { get_uint(key, out, 9e15); }

  void get(const char* key, common::Db* out) {
    double v = out->value();
    get(key, &v);
    *out = common::Db{v};
  }
  void get(const char* key, common::Dbm* out) {
    double v = out->value();
    get(key, &v);
    *out = common::Dbm{v};
  }

  template <typename Enum, std::size_t N>
  void get_enum(const char* key, const NamePair (&table)[N], Enum* out) {
    const JsonValue* v = child(key);
    if (v == nullptr) return;
    if (!v->is_string() || !enum_from_name(table, v->as_string(), out)) {
      const std::string got =
          v->is_string() ? "'" + v->as_string() + "'" : v->type_name();
      error(key, "unknown value " + got + " (expected one of " +
                     enum_choices(table) + ")");
    }
  }

  /// Flags every unconsumed key.  Call exactly once, last.
  void finish() {
    if (value_ == nullptr) return;
    const auto& members = value_->as_object();
    for (std::size_t i = 0; i < members.size(); ++i) {
      if (!consumed_[i]) {
        errors_->push_back({sub(members[i].first.c_str()), "unknown key"});
      }
    }
  }

 private:
  const JsonValue* value_;
  std::string path_;
  std::vector<ConfigError>* errors_;
  std::vector<bool> consumed_;
};

std::string indexed(const std::string& base, std::size_t i) {
  return base + "[" + std::to_string(i) + "]";
}

// --- section writers -------------------------------------------------------

JsonValue position_to_json(const sim::Position& p) {
  JsonObject o;
  o.emplace_back("x_m", JsonValue(p.x_m));
  o.emplace_back("y_m", JsonValue(p.y_m));
  return JsonValue(std::move(o));
}

JsonValue traffic_to_json(const sim::TrafficConfig& t) {
  JsonObject o;
  o.emplace_back("kind", JsonValue(enum_name(kTrafficKinds, t.kind)));
  o.emplace_back("interval_us", JsonValue(t.interval_us));
  o.emplace_back("duty_ratio", JsonValue(t.duty_ratio));
  return JsonValue(std::move(o));
}

JsonValue wifi_mac_to_json(const mac::WifiMacParams& m) {
  JsonObject o;
  o.emplace_back("difs_us", JsonValue(m.difs_us));
  o.emplace_back("slot_us", JsonValue(m.slot_us));
  o.emplace_back("cw", JsonValue(static_cast<double>(m.cw)));
  o.emplace_back("preamble_us", JsonValue(m.preamble_us));
  o.emplace_back("airtime_us", JsonValue(m.airtime_us));
  o.emplace_back("duty_ratio", JsonValue(m.duty_ratio));
  return JsonValue(std::move(o));
}

JsonValue zigbee_mac_to_json(const mac::ZigbeeMacParams& m) {
  JsonObject o;
  o.emplace_back("backoff_period_us", JsonValue(m.backoff_period_us));
  o.emplace_back("cca_us", JsonValue(m.cca_us));
  o.emplace_back("turnaround_us", JsonValue(m.turnaround_us));
  o.emplace_back("min_be", JsonValue(static_cast<double>(m.min_be)));
  o.emplace_back("max_be", JsonValue(static_cast<double>(m.max_be)));
  o.emplace_back("max_backoffs", JsonValue(static_cast<double>(m.max_backoffs)));
  o.emplace_back("max_frame_retries",
                 JsonValue(static_cast<double>(m.max_frame_retries)));
  o.emplace_back("ack_wait_us", JsonValue(m.ack_wait_us));
  o.emplace_back("payload_octets",
                 JsonValue(static_cast<double>(m.payload_octets)));
  o.emplace_back("processing_us", JsonValue(m.processing_us));
  return JsonValue(std::move(o));
}

JsonValue sledzig_to_json(const core::SledzigConfig& s) {
  JsonObject o;
  o.emplace_back("modulation", JsonValue(enum_name(kModulations, s.modulation)));
  o.emplace_back("rate", JsonValue(enum_name(kRates, s.rate)));
  o.emplace_back("channel", JsonValue(enum_name(kOverlapChannels, s.channel)));
  JsonArray extra;
  for (const auto ch : s.extra_channels) {
    extra.emplace_back(enum_name(kOverlapChannels, ch));
  }
  o.emplace_back("extra_channels", JsonValue(std::move(extra)));
  o.emplace_back("forced_subcarriers",
                 JsonValue(static_cast<double>(s.forced_subcarriers)));
  o.emplace_back("scrambler_seed",
                 JsonValue(static_cast<double>(s.scrambler_seed)));
  o.emplace_back("include_service_field", JsonValue(s.include_service_field));
  o.emplace_back("width", JsonValue(enum_name(kWidths, s.width)));
  JsonArray offsets;
  for (const double hz : s.window_offsets_hz) offsets.emplace_back(hz);
  o.emplace_back("window_offsets_hz", JsonValue(std::move(offsets)));
  o.emplace_back("window_bandwidth_hz", JsonValue(s.window_bandwidth_hz));
  return JsonValue(std::move(o));
}

JsonValue impairment_to_json(const channel::ImpairmentConfig& c) {
  JsonObject o;
  o.emplace_back("iq_imbalance", JsonValue(c.iq_imbalance));
  o.emplace_back("iq_gain_mismatch_db", JsonValue(c.iq_gain_mismatch_db));
  o.emplace_back("iq_phase_error_deg", JsonValue(c.iq_phase_error_deg));
  o.emplace_back("clipping", JsonValue(c.clipping));
  o.emplace_back("clip_level_rms", JsonValue(c.clip_level_rms));
  o.emplace_back("multipath", JsonValue(c.multipath));
  o.emplace_back("multipath_taps",
                 JsonValue(static_cast<double>(c.multipath_taps)));
  o.emplace_back("delay_spread_samples", JsonValue(c.delay_spread_samples));
  o.emplace_back("interference", JsonValue(c.interference));
  o.emplace_back("interferer_power_db", JsonValue(c.interferer_power_db));
  o.emplace_back("interferer_freq_offset_hz",
                 JsonValue(c.interferer_freq_offset_hz));
  o.emplace_back("interferer_bandwidth_hz",
                 JsonValue(c.interferer_bandwidth_hz));
  o.emplace_back("burst_duty", JsonValue(c.burst_duty));
  o.emplace_back("mean_burst_samples", JsonValue(c.mean_burst_samples));
  o.emplace_back("cfo", JsonValue(c.cfo));
  o.emplace_back("cfo_hz", JsonValue(c.cfo_hz));
  o.emplace_back("cfo_drift_hz_per_s", JsonValue(c.cfo_drift_hz_per_s));
  o.emplace_back("phase_noise_std_rad", JsonValue(c.phase_noise_std_rad));
  o.emplace_back("clock_offset", JsonValue(c.clock_offset));
  o.emplace_back("clock_offset_ppm", JsonValue(c.clock_offset_ppm));
  o.emplace_back("quantization", JsonValue(c.quantization));
  o.emplace_back("quant_bits", JsonValue(static_cast<double>(c.quant_bits)));
  o.emplace_back("quant_full_scale_rms", JsonValue(c.quant_full_scale_rms));
  o.emplace_back("faults", JsonValue(c.faults));
  o.emplace_back("truncate_fraction", JsonValue(c.truncate_fraction));
  o.emplace_back("sample_drop_prob", JsonValue(c.sample_drop_prob));
  o.emplace_back("sample_rate_hz", JsonValue(c.sample_rate_hz));
  return JsonValue(std::move(o));
}

JsonValue error_model_to_json(const mac::SymbolErrorModel& m) {
  JsonObject o;
  o.emplace_back("payload_midpoint_db", JsonValue(m.payload_midpoint_db.value()));
  o.emplace_back("payload_width_db", JsonValue(m.payload_width_db.value()));
  o.emplace_back("preamble_midpoint_db",
                 JsonValue(m.preamble_midpoint_db.value()));
  o.emplace_back("preamble_width_db", JsonValue(m.preamble_width_db.value()));
  o.emplace_back("preamble_max_error", JsonValue(m.preamble_max_error));
  o.emplace_back("sensitivity_width_db",
                 JsonValue(m.sensitivity_width_db.value()));
  return JsonValue(std::move(o));
}

JsonValue faults_to_json(const sim::FaultPlanConfig& f) {
  JsonObject o;
  JsonArray timed;
  for (const auto& t : f.timed) {
    JsonObject e;
    e.emplace_back("kind", JsonValue(enum_name(kFaultKinds, t.kind)));
    e.emplace_back("node", JsonValue(static_cast<double>(t.node)));
    e.emplace_back("at_us", JsonValue(t.at_us));
    e.emplace_back("duration_us", JsonValue(t.duration_us));
    e.emplace_back("magnitude", JsonValue(t.magnitude));
    timed.emplace_back(std::move(e));
  }
  o.emplace_back("timed", JsonValue(std::move(timed)));
  JsonArray jammers;
  for (const auto& j : f.jammers) {
    JsonObject e;
    e.emplace_back("pos", position_to_json(j.pos));
    e.emplace_back("usrp_gain", JsonValue(j.usrp_gain));
    e.emplace_back("mean_on_us", JsonValue(j.mean_on_us));
    e.emplace_back("mean_off_us", JsonValue(j.mean_off_us));
    jammers.emplace_back(std::move(e));
  }
  o.emplace_back("jammers", JsonValue(std::move(jammers)));
  {
    const auto& r = f.random;
    JsonObject e;
    e.emplace_back("crash_rate_per_s", JsonValue(r.crash_rate_per_s));
    e.emplace_back("mean_downtime_us", JsonValue(r.mean_downtime_us));
    e.emplace_back("mute_rate_per_s", JsonValue(r.mute_rate_per_s));
    e.emplace_back("mean_mute_us", JsonValue(r.mean_mute_us));
    e.emplace_back("deaf_rate_per_s", JsonValue(r.deaf_rate_per_s));
    e.emplace_back("mean_deaf_us", JsonValue(r.mean_deaf_us));
    e.emplace_back("surge_rate_per_s", JsonValue(r.surge_rate_per_s));
    e.emplace_back("mean_surge_us", JsonValue(r.mean_surge_us));
    e.emplace_back("surge_magnitude", JsonValue(r.surge_magnitude));
    o.emplace_back("random", JsonValue(std::move(e)));
  }
  JsonArray clocks;
  for (const auto& c : f.clocks) {
    JsonObject e;
    e.emplace_back("skew_us", JsonValue(c.skew_us));
    e.emplace_back("drift_ppm", JsonValue(c.drift_ppm));
    clocks.emplace_back(std::move(e));
  }
  o.emplace_back("clocks", JsonValue(std::move(clocks)));
  return JsonValue(std::move(o));
}

// --- section readers -------------------------------------------------------

void position_from_json(const JsonValue* v, const std::string& path,
                        sim::Position* out,
                        std::vector<ConfigError>* errors) {
  if (v == nullptr) return;
  ObjReader r(v, path, errors);
  r.get("x_m", &out->x_m);
  r.get("y_m", &out->y_m);
  r.finish();
}

void traffic_from_json(const JsonValue* v, const std::string& path,
                       sim::TrafficConfig* out,
                       std::vector<ConfigError>* errors) {
  if (v == nullptr) return;
  ObjReader r(v, path, errors);
  r.get_enum("kind", kTrafficKinds, &out->kind);
  r.get("interval_us", &out->interval_us);
  r.get("duty_ratio", &out->duty_ratio);
  r.finish();
}

void wifi_node_from_json(const JsonValue& v, const std::string& path,
                         sim::WifiNodeConfig* out,
                         std::vector<ConfigError>* errors) {
  ObjReader r(&v, path, errors);
  position_from_json(r.child("tx"), r.sub("tx"), &out->tx, errors);
  position_from_json(r.child("rx"), r.sub("rx"), &out->rx, errors);
  r.get("usrp_gain", &out->usrp_gain);
  r.get("channel", &out->channel);
  traffic_from_json(r.child("traffic"), r.sub("traffic"), &out->traffic,
                    errors);
  {
    const JsonValue* m = r.child("mac");
    if (m != nullptr) {
      ObjReader mr(m, r.sub("mac"), errors);
      mr.get("difs_us", &out->mac.difs_us);
      mr.get("slot_us", &out->mac.slot_us);
      mr.get("cw", &out->mac.cw);
      mr.get("preamble_us", &out->mac.preamble_us);
      mr.get("airtime_us", &out->mac.airtime_us);
      mr.get("duty_ratio", &out->mac.duty_ratio);
      mr.finish();
    }
  }
  r.finish();
}

void zigbee_node_from_json(const JsonValue& v, const std::string& path,
                           sim::ZigbeeNodeConfig* out,
                           std::vector<ConfigError>* errors) {
  ObjReader r(&v, path, errors);
  position_from_json(r.child("tx"), r.sub("tx"), &out->tx, errors);
  position_from_json(r.child("rx"), r.sub("rx"), &out->rx, errors);
  r.get("gain", &out->gain);
  r.get("sensitivity_dbm", &out->sensitivity_dbm);
  r.get("channel", &out->channel);
  traffic_from_json(r.child("traffic"), r.sub("traffic"), &out->traffic,
                    errors);
  {
    const JsonValue* m = r.child("mac");
    if (m != nullptr) {
      ObjReader mr(m, r.sub("mac"), errors);
      mr.get("backoff_period_us", &out->mac.backoff_period_us);
      mr.get("cca_us", &out->mac.cca_us);
      mr.get("turnaround_us", &out->mac.turnaround_us);
      mr.get("min_be", &out->mac.min_be);
      mr.get("max_be", &out->mac.max_be);
      mr.get("max_backoffs", &out->mac.max_backoffs);
      mr.get("max_frame_retries", &out->mac.max_frame_retries);
      mr.get("ack_wait_us", &out->mac.ack_wait_us);
      mr.get("payload_octets", &out->mac.payload_octets);
      mr.get("processing_us", &out->mac.processing_us);
      mr.finish();
    }
  }
  r.finish();
}

void sledzig_from_json(const JsonValue* v, const std::string& path,
                       core::SledzigConfig* out,
                       std::vector<ConfigError>* errors) {
  if (v == nullptr) return;
  ObjReader r(v, path, errors);
  r.get_enum("modulation", kModulations, &out->modulation);
  r.get_enum("rate", kRates, &out->rate);
  r.get_enum("channel", kOverlapChannels, &out->channel);
  {
    const JsonValue* extra = r.child("extra_channels");
    if (extra != nullptr) {
      if (!extra->is_array()) {
        errors->push_back({r.sub("extra_channels"), "expected an array"});
      } else {
        out->extra_channels.clear();
        const auto& items = extra->as_array();
        for (std::size_t i = 0; i < items.size(); ++i) {
          core::OverlapChannel ch{};
          if (!items[i].is_string() ||
              !enum_from_name(kOverlapChannels, items[i].as_string(), &ch)) {
            errors->push_back({indexed(r.sub("extra_channels"), i),
                               "unknown overlap channel (expected one of " +
                                   enum_choices(kOverlapChannels) + ")"});
            continue;
          }
          out->extra_channels.push_back(ch);
        }
      }
    }
  }
  r.get("forced_subcarriers", &out->forced_subcarriers);
  r.get("scrambler_seed", &out->scrambler_seed);
  r.get("include_service_field", &out->include_service_field);
  r.get_enum("width", kWidths, &out->width);
  {
    const JsonValue* offs = r.child("window_offsets_hz");
    if (offs != nullptr) {
      if (!offs->is_array()) {
        errors->push_back({r.sub("window_offsets_hz"), "expected an array"});
      } else {
        out->window_offsets_hz.clear();
        const auto& items = offs->as_array();
        for (std::size_t i = 0; i < items.size(); ++i) {
          if (!items[i].is_number()) {
            errors->push_back({indexed(r.sub("window_offsets_hz"), i),
                               "expected a number"});
            continue;
          }
          out->window_offsets_hz.push_back(items[i].as_number());
        }
      }
    }
  }
  r.get("window_bandwidth_hz", &out->window_bandwidth_hz);
  r.finish();
}

void impairment_from_json(const JsonValue* v, const std::string& path,
                          channel::ImpairmentConfig* out,
                          std::vector<ConfigError>* errors) {
  if (v == nullptr) return;
  ObjReader r(v, path, errors);
  r.get("iq_imbalance", &out->iq_imbalance);
  r.get("iq_gain_mismatch_db", &out->iq_gain_mismatch_db);
  r.get("iq_phase_error_deg", &out->iq_phase_error_deg);
  r.get("clipping", &out->clipping);
  r.get("clip_level_rms", &out->clip_level_rms);
  r.get("multipath", &out->multipath);
  r.get("multipath_taps", &out->multipath_taps);
  r.get("delay_spread_samples", &out->delay_spread_samples);
  r.get("interference", &out->interference);
  r.get("interferer_power_db", &out->interferer_power_db);
  r.get("interferer_freq_offset_hz", &out->interferer_freq_offset_hz);
  r.get("interferer_bandwidth_hz", &out->interferer_bandwidth_hz);
  r.get("burst_duty", &out->burst_duty);
  r.get("mean_burst_samples", &out->mean_burst_samples);
  r.get("cfo", &out->cfo);
  r.get("cfo_hz", &out->cfo_hz);
  r.get("cfo_drift_hz_per_s", &out->cfo_drift_hz_per_s);
  r.get("phase_noise_std_rad", &out->phase_noise_std_rad);
  r.get("clock_offset", &out->clock_offset);
  r.get("clock_offset_ppm", &out->clock_offset_ppm);
  r.get("quantization", &out->quantization);
  r.get("quant_bits", &out->quant_bits);
  r.get("quant_full_scale_rms", &out->quant_full_scale_rms);
  r.get("faults", &out->faults);
  r.get("truncate_fraction", &out->truncate_fraction);
  r.get("sample_drop_prob", &out->sample_drop_prob);
  r.get("sample_rate_hz", &out->sample_rate_hz);
  r.finish();
}

void error_model_from_json(const JsonValue* v, const std::string& path,
                           mac::SymbolErrorModel* out,
                           std::vector<ConfigError>* errors) {
  if (v == nullptr) return;
  ObjReader r(v, path, errors);
  r.get("payload_midpoint_db", &out->payload_midpoint_db);
  r.get("payload_width_db", &out->payload_width_db);
  r.get("preamble_midpoint_db", &out->preamble_midpoint_db);
  r.get("preamble_width_db", &out->preamble_width_db);
  r.get("preamble_max_error", &out->preamble_max_error);
  r.get("sensitivity_width_db", &out->sensitivity_width_db);
  r.finish();
}

void faults_from_json(const JsonValue* v, const std::string& path,
                      sim::FaultPlanConfig* out,
                      std::vector<ConfigError>* errors) {
  if (v == nullptr) return;
  ObjReader r(v, path, errors);
  {
    const JsonValue* timed = r.child("timed");
    if (timed != nullptr) {
      if (!timed->is_array()) {
        errors->push_back({r.sub("timed"), "expected an array"});
      } else {
        out->timed.clear();
        const auto& items = timed->as_array();
        for (std::size_t i = 0; i < items.size(); ++i) {
          sim::TimedFault tf;
          ObjReader tr(&items[i], indexed(r.sub("timed"), i), errors);
          tr.get_enum("kind", kFaultKinds, &tf.kind);
          tr.get("node", &tf.node);
          tr.get("at_us", &tf.at_us);
          tr.get("duration_us", &tf.duration_us);
          tr.get("magnitude", &tf.magnitude);
          tr.finish();
          out->timed.push_back(tf);
        }
      }
    }
  }
  {
    const JsonValue* jam = r.child("jammers");
    if (jam != nullptr) {
      if (!jam->is_array()) {
        errors->push_back({r.sub("jammers"), "expected an array"});
      } else {
        out->jammers.clear();
        const auto& items = jam->as_array();
        for (std::size_t i = 0; i < items.size(); ++i) {
          sim::JammerConfig jc;
          ObjReader jr(&items[i], indexed(r.sub("jammers"), i), errors);
          position_from_json(jr.child("pos"), jr.sub("pos"), &jc.pos, errors);
          jr.get("usrp_gain", &jc.usrp_gain);
          jr.get("mean_on_us", &jc.mean_on_us);
          jr.get("mean_off_us", &jc.mean_off_us);
          jr.finish();
          out->jammers.push_back(jc);
        }
      }
    }
  }
  {
    const JsonValue* random = r.child("random");
    if (random != nullptr) {
      ObjReader rr(random, r.sub("random"), errors);
      auto& rand = out->random;
      rr.get("crash_rate_per_s", &rand.crash_rate_per_s);
      rr.get("mean_downtime_us", &rand.mean_downtime_us);
      rr.get("mute_rate_per_s", &rand.mute_rate_per_s);
      rr.get("mean_mute_us", &rand.mean_mute_us);
      rr.get("deaf_rate_per_s", &rand.deaf_rate_per_s);
      rr.get("mean_deaf_us", &rand.mean_deaf_us);
      rr.get("surge_rate_per_s", &rand.surge_rate_per_s);
      rr.get("mean_surge_us", &rand.mean_surge_us);
      rr.get("surge_magnitude", &rand.surge_magnitude);
      rr.finish();
    }
  }
  {
    const JsonValue* clocks = r.child("clocks");
    if (clocks != nullptr) {
      if (!clocks->is_array()) {
        errors->push_back({r.sub("clocks"), "expected an array"});
      } else {
        out->clocks.clear();
        const auto& items = clocks->as_array();
        for (std::size_t i = 0; i < items.size(); ++i) {
          sim::ClockConfig cc;
          ObjReader cr(&items[i], indexed(r.sub("clocks"), i), errors);
          cr.get("skew_us", &cc.skew_us);
          cr.get("drift_ppm", &cc.drift_ppm);
          cr.finish();
          out->clocks.push_back(cc);
        }
      }
    }
  }
  r.finish();
}

/// Expands a "topology" generator object into *out (which already carries
/// the file's sledzig/duration/seed fields).  Returns false on errors.
bool topology_from_json(const JsonValue& v, sim::ScenarioConfig* out,
                        std::vector<ConfigError>* errors) {
  const std::size_t before = errors->size();
  ObjReader r(&v, "topology", errors);
  std::string generator;
  {
    const JsonValue* g = r.child("generator");
    if (g == nullptr || !g->is_string()) {
      errors->push_back({"topology.generator",
                         "expected \"two_node\", \"campus\" or "
                         "\"control_ab\""});
      r.finish();
      return false;
    }
    generator = g->as_string();
  }
  if (generator == "two_node") {
    double wifi_duty_ratio = 0.5, d_wz_m = 4.0, d_z_m = 1.0;
    r.get("wifi_duty_ratio", &wifi_duty_ratio);
    r.get("d_wz_m", &d_wz_m);
    r.get("d_z_m", &d_z_m);
    r.finish();
    if (errors->size() != before) return false;
    *out = sim::two_node_paper_scenario(out->sledzig, out->sledzig_enabled,
                                        wifi_duty_ratio, d_wz_m, d_z_m,
                                        out->duration_s, out->seed);
    return true;
  }
  if (generator == "campus") {
    std::size_t gx = 4, gy = 4, sensors = 6;
    double spacing_m = 20.0;
    r.get("ap_grid_x", &gx);
    r.get("ap_grid_y", &gy);
    r.get("sensors_per_ap", &sensors);
    r.get("spacing_m", &spacing_m);
    r.finish();
    if (errors->size() != before) return false;
    const bool sledzig_on = out->sledzig_enabled;
    const core::SledzigConfig sledzig = out->sledzig;
    *out = sim::campus_scenario(gx, gy, sensors, spacing_m, out->duration_s,
                                out->seed);
    out->sledzig = sledzig;
    out->sledzig_enabled = sledzig_on;
    return true;
  }
  if (generator == "control_ab") {
    // The mixed-load two-BSS A/B testbed (DESIGN.md §18).  `controlled`
    // arms the runtime policies; the file's own "control" section still
    // overlays afterwards, so a campaign can refine epoch or thresholds.
    bool controlled = false;
    r.get("controlled", &controlled);
    r.finish();
    if (errors->size() != before) return false;
    *out = sim::control_ab_scenario(controlled, out->duration_s, out->seed);
    return true;
  }
  errors->push_back({"topology.generator",
                     "unknown generator '" + generator +
                         "' (expected two_node|campus|control_ab)"});
  r.finish();
  return false;
}

}  // namespace

// --- public API ------------------------------------------------------------

std::string traffic_kind_name(sim::TrafficKind kind) {
  return enum_name(kTrafficKinds, kind);
}

bool traffic_kind_from_name(const std::string& name, sim::TrafficKind* out) {
  return enum_from_name(kTrafficKinds, name, out);
}

std::string fault_kind_name(sim::FaultKind kind) {
  return enum_name(kFaultKinds, kind);
}

bool fault_kind_from_name(const std::string& name, sim::FaultKind* out) {
  return enum_from_name(kFaultKinds, name, out);
}

// --- runtime control plane (DESIGN.md §18) --------------------------------

JsonValue control_to_json(const control::ControlConfig& c) {
  JsonObject o;
  o.emplace_back("enabled", JsonValue(c.enabled));
  o.emplace_back("epoch_us", JsonValue(c.epoch_us));
  {
    JsonObject s;
    s.emplace_back("enabled", JsonValue(c.sledzig.enabled));
    s.emplace_back("on_threshold",
                   JsonValue(static_cast<double>(c.sledzig.on_threshold)));
    s.emplace_back("off_threshold",
                   JsonValue(static_cast<double>(c.sledzig.off_threshold)));
    s.emplace_back("busy_airtime_fraction",
                   JsonValue(c.sledzig.busy_airtime_fraction));
    o.emplace_back("sledzig", JsonValue(std::move(s)));
  }
  {
    JsonObject h;
    h.emplace_back("enabled", JsonValue(c.hop.enabled));
    h.emplace_back("min_prr", JsonValue(c.hop.min_prr));
    h.emplace_back("patience",
                   JsonValue(static_cast<double>(c.hop.patience)));
    h.emplace_back("cooldown_epochs",
                   JsonValue(static_cast<double>(c.hop.cooldown_epochs)));
    o.emplace_back("hop", JsonValue(std::move(h)));
  }
  {
    JsonObject d;
    d.emplace_back("enabled", JsonValue(c.duty.enabled));
    d.emplace_back("min_zigbee_prr", JsonValue(c.duty.min_zigbee_prr));
    d.emplace_back("rate_scale", JsonValue(c.duty.rate_scale));
    d.emplace_back("patience",
                   JsonValue(static_cast<double>(c.duty.patience)));
    d.emplace_back("release",
                   JsonValue(static_cast<double>(c.duty.release)));
    o.emplace_back("duty", JsonValue(std::move(d)));
  }
  return JsonValue(std::move(o));
}

void control_from_json(const JsonValue* json, const std::string& prefix,
                       control::ControlConfig* out,
                       std::vector<sim::ConfigError>* errors) {
  ObjReader r(json, prefix, errors);
  if (!r.present()) return;
  r.get("enabled", &out->enabled);
  r.get("epoch_us", &out->epoch_us);
  {
    const JsonValue* s = r.child("sledzig");
    if (s != nullptr) {
      ObjReader sr(s, r.sub("sledzig"), errors);
      sr.get("enabled", &out->sledzig.enabled);
      sr.get("on_threshold", &out->sledzig.on_threshold);
      sr.get("off_threshold", &out->sledzig.off_threshold);
      sr.get("busy_airtime_fraction", &out->sledzig.busy_airtime_fraction);
      sr.finish();
    }
  }
  {
    const JsonValue* h = r.child("hop");
    if (h != nullptr) {
      ObjReader hr(h, r.sub("hop"), errors);
      hr.get("enabled", &out->hop.enabled);
      hr.get("min_prr", &out->hop.min_prr);
      hr.get("patience", &out->hop.patience);
      hr.get("cooldown_epochs", &out->hop.cooldown_epochs);
      hr.finish();
    }
  }
  {
    const JsonValue* d = r.child("duty");
    if (d != nullptr) {
      ObjReader dr(d, r.sub("duty"), errors);
      dr.get("enabled", &out->duty.enabled);
      dr.get("min_zigbee_prr", &out->duty.min_zigbee_prr);
      dr.get("rate_scale", &out->duty.rate_scale);
      dr.get("patience", &out->duty.patience);
      dr.get("release", &out->duty.release);
      dr.finish();
    }
  }
  r.finish();
}

JsonValue scenario_to_json(const sim::ScenarioConfig& config) {
  JsonObject o;
  o.emplace_back("duration_s", JsonValue(config.duration_s));
  o.emplace_back("seed", JsonValue(static_cast<double>(config.seed)));
  o.emplace_back("sledzig_enabled", JsonValue(config.sledzig_enabled));
  o.emplace_back("sledzig", sledzig_to_json(config.sledzig));
  o.emplace_back("shadowing_sigma_db",
                 JsonValue(config.shadowing_sigma_db.value()));
  o.emplace_back("wifi_capture_sinr_db",
                 JsonValue(config.wifi_capture_sinr_db.value()));
  o.emplace_back("queue_capacity",
                 JsonValue(static_cast<double>(config.queue_capacity)));
  o.emplace_back("record_trace", JsonValue(config.record_trace));

  JsonArray wifi;
  for (const auto& n : config.wifi) {
    JsonObject e;
    e.emplace_back("tx", position_to_json(n.tx));
    e.emplace_back("rx", position_to_json(n.rx));
    e.emplace_back("usrp_gain", JsonValue(n.usrp_gain));
    e.emplace_back("channel", JsonValue(static_cast<double>(n.channel)));
    e.emplace_back("mac", wifi_mac_to_json(n.mac));
    e.emplace_back("traffic", traffic_to_json(n.traffic));
    wifi.emplace_back(std::move(e));
  }
  o.emplace_back("wifi", JsonValue(std::move(wifi)));

  JsonArray zigbee;
  for (const auto& n : config.zigbee) {
    JsonObject e;
    e.emplace_back("tx", position_to_json(n.tx));
    e.emplace_back("rx", position_to_json(n.rx));
    e.emplace_back("gain", JsonValue(static_cast<double>(n.gain)));
    e.emplace_back("sensitivity_dbm", JsonValue(n.sensitivity_dbm.value()));
    e.emplace_back("channel", JsonValue(static_cast<double>(n.channel)));
    e.emplace_back("mac", zigbee_mac_to_json(n.mac));
    e.emplace_back("traffic", traffic_to_json(n.traffic));
    zigbee.emplace_back(std::move(e));
  }
  o.emplace_back("zigbee", JsonValue(std::move(zigbee)));

  o.emplace_back("impairment", impairment_to_json(config.impairment));
  o.emplace_back("error_model", error_model_to_json(config.error_model));
  o.emplace_back("faults", faults_to_json(config.faults));

  {
    JsonObject fp;
    fp.emplace_back("segment_runs", JsonValue(config.fastpath.segment_runs));
    fp.emplace_back("prune", JsonValue(config.fastpath.prune));
    fp.emplace_back("prune_floor_db",
                    JsonValue(config.fastpath.prune_floor_db.value()));
    fp.emplace_back("cross_check", JsonValue(config.fastpath.cross_check));
    o.emplace_back("fastpath", JsonValue(std::move(fp)));
  }
  {
    JsonObject inv;
    inv.emplace_back("enabled", JsonValue(config.invariants.enabled));
    inv.emplace_back("max_event_gap_us",
                     JsonValue(config.invariants.max_event_gap_us));
    o.emplace_back("invariants", JsonValue(std::move(inv)));
  }
  o.emplace_back("control", control_to_json(config.control));
  return JsonValue(std::move(o));
}

bool scenario_from_json(const JsonValue& json, sim::ScenarioConfig* out,
                        std::vector<sim::ConfigError>* errors) {
  const std::size_t before = errors->size();
  *out = sim::ScenarioConfig{};
  ObjReader r(&json, "", errors);
  if (!r.present()) return false;

  // Phase 1: the fields a topology generator consumes.
  r.get("duration_s", &out->duration_s);
  r.get("seed", &out->seed);
  r.get("sledzig_enabled", &out->sledzig_enabled);
  sledzig_from_json(r.child("sledzig"), "sledzig", &out->sledzig, errors);

  // Phase 2: topology — a generator or explicit node lists, never both.
  const JsonValue* topology = r.child("topology");
  const JsonValue* wifi = r.child("wifi");
  const JsonValue* zigbee = r.child("zigbee");
  if (topology != nullptr && (wifi != nullptr || zigbee != nullptr)) {
    errors->push_back(
        {"topology",
         "a generator cannot be combined with explicit wifi[]/zigbee[] "
         "lists; keep one form"});
  } else if (topology != nullptr) {
    topology_from_json(*topology, out, errors);
  } else {
    if (wifi != nullptr) {
      if (!wifi->is_array()) {
        errors->push_back({"wifi", std::string("expected an array, got ") +
                                       wifi->type_name()});
      } else {
        const auto& items = wifi->as_array();
        for (std::size_t i = 0; i < items.size(); ++i) {
          sim::WifiNodeConfig n;
          wifi_node_from_json(items[i], indexed("wifi", i), &n, errors);
          out->wifi.push_back(n);
        }
      }
    }
    if (zigbee != nullptr) {
      if (!zigbee->is_array()) {
        errors->push_back({"zigbee", std::string("expected an array, got ") +
                                         zigbee->type_name()});
      } else {
        const auto& items = zigbee->as_array();
        for (std::size_t i = 0; i < items.size(); ++i) {
          sim::ZigbeeNodeConfig n;
          zigbee_node_from_json(items[i], indexed("zigbee", i), &n, errors);
          out->zigbee.push_back(n);
        }
      }
    }
  }

  // Phase 3: everything else overlays whatever topology produced.
  r.get("shadowing_sigma_db", &out->shadowing_sigma_db);
  r.get("wifi_capture_sinr_db", &out->wifi_capture_sinr_db);
  r.get("queue_capacity", &out->queue_capacity);
  r.get("record_trace", &out->record_trace);
  impairment_from_json(r.child("impairment"), "impairment", &out->impairment,
                       errors);
  error_model_from_json(r.child("error_model"), "error_model",
                        &out->error_model, errors);
  faults_from_json(r.child("faults"), "faults", &out->faults, errors);
  {
    const JsonValue* fp = r.child("fastpath");
    if (fp != nullptr) {
      ObjReader fr(fp, "fastpath", errors);
      fr.get("segment_runs", &out->fastpath.segment_runs);
      fr.get("prune", &out->fastpath.prune);
      fr.get("prune_floor_db", &out->fastpath.prune_floor_db);
      fr.get("cross_check", &out->fastpath.cross_check);
      fr.finish();
    }
  }
  {
    const JsonValue* inv = r.child("invariants");
    if (inv != nullptr) {
      ObjReader ir(inv, "invariants", errors);
      ir.get("enabled", &out->invariants.enabled);
      ir.get("max_event_gap_us", &out->invariants.max_event_gap_us);
      ir.finish();
    }
  }
  control_from_json(r.child("control"), "control", &out->control, errors);
  r.finish();

  // Semantic validation only once the shape parsed clean — validate() on a
  // half-parsed config would double-report the same fields.
  if (errors->size() == before) {
    auto semantic = out->validate();
    errors->insert(errors->end(), semantic.begin(), semantic.end());
  }
  return errors->size() == before;
}

bool scenario_from_text(const std::string& text, sim::ScenarioConfig* out,
                        std::vector<sim::ConfigError>* errors) {
  JsonValue root;
  JsonParseError perr;
  if (!json_parse(text, &root, &perr)) {
    errors->push_back({"<json>", perr.to_string()});
    return false;
  }
  return scenario_from_json(root, out, errors);
}

}  // namespace sledzig::campaign
