// Campaign specs: scenario × parameter grid × replications (DESIGN.md §17).
//
// A campaign file names a base scenario, a parameter grid (each axis a
// dotted scenario path plus a value list), and a replication count:
//
//   {
//     "name": "fig16_sweep",
//     "seed": 7,
//     "replications": 8,
//     "scenario": { ...scenario JSON (scenario_json.h)... },
//     "grid": [
//       {"path": "sledzig_enabled", "values": [false, true]},
//       {"path": "wifi[0].mac.duty_ratio", "values": [0.2, 0.5, 0.8]}
//     ]
//   }
//
// The grid expands to the cross product of its axes (last axis fastest),
// giving `cell_count()` cells; each (cell, rep) pair is one work item.
// The work-item seed is derive_seed(spec.seed, kCampaign, cell, rep) — a
// pure function of the index path — so any sharding, thread count, or
// resume order reproduces the same streams (common/parallel.h contract).
//
// `campaign_hash()` is the FNV-1a of the spec's canonical JSON: the key
// every result-store record carries, so a store can never silently mix
// results from two different campaigns.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "campaign/json.h"
#include "campaign/scenario_json.h"
#include "sim/scenario.h"

namespace sledzig::campaign {

/// One grid dimension: a dotted path into the scenario JSON and the values
/// it sweeps over.  Paths use the scenario_from_json field syntax
/// ("wifi[0].traffic.interval_us"); intermediate objects are created on
/// demand, array indices must already exist.
struct GridAxis {
  std::string path;
  JsonArray values;
};

struct CampaignSpec {
  std::string name;
  std::uint64_t seed = 1;           ///< master seed for every work item
  std::size_t replications = 1;
  JsonValue scenario;               ///< base scenario JSON (object)
  std::vector<GridAxis> axes;

  /// Canonical JSON — the round trip spec -> json -> spec is lossless, and
  /// campaign_hash is computed over these bytes.
  JsonValue to_json() const;
};

/// Parses a campaign object.  Field-path errors (prefix "campaign.") plus
/// a full scenario_from_json check of the base scenario are appended to
/// `*errors`; returns true when nothing was added.
bool campaign_from_json(const JsonValue& json, CampaignSpec* out,
                        std::vector<sim::ConfigError>* errors);

/// Parse text, then campaign_from_json.  Syntax errors get field "<json>".
bool campaign_from_text(const std::string& text, CampaignSpec* out,
                        std::vector<sim::ConfigError>* errors);

/// FNV-1a of the spec's canonical JSON: the identity key stamped on every
/// result-store record.
std::uint64_t campaign_hash(const CampaignSpec& spec);

/// Product of axis lengths (1 for an empty grid; 0 if any axis is empty).
std::size_t cell_count(const CampaignSpec& spec);

/// Canonical "path=value;path=value" label for a cell (matches the axis
/// order; values print in canonical JSON form).  Empty for a gridless
/// campaign's single cell.
std::string cell_label(const CampaignSpec& spec, std::size_t cell);

/// The cell's scenario JSON: the base scenario with this cell's axis
/// values written through their paths.  `cell` must be < cell_count().
/// Returns false (with errors) when an axis path cannot be applied.
bool cell_scenario_json(const CampaignSpec& spec, std::size_t cell,
                        JsonValue* out, std::vector<sim::ConfigError>* errors);

/// Fully resolved config for one work item: cell scenario parsed through
/// scenario_from_json, then the seed replaced by the index-derived
/// derive_seed(spec.seed, kCampaign, cell, rep).
bool cell_scenario(const CampaignSpec& spec, std::size_t cell, std::size_t rep,
                   sim::ScenarioConfig* out,
                   std::vector<sim::ConfigError>* errors);

/// Writes `value` at `path` ("a.b[2].c") inside `root`.  Missing object
/// keys are created in order; an out-of-range array index or a type
/// mismatch mid-path is an error.  Shared with the grid expander and the
/// CLI's --set overrides.
bool json_set_path(JsonValue* root, const std::string& path, JsonValue value,
                   std::string* error);

}  // namespace sledzig::campaign
