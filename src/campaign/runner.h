// Sharded, resumable campaign execution (DESIGN.md §17).
//
// The campaign's work list is every (cell, rep) pair, enumerated in a
// single canonical order (cell-major, item k = cell * replications + rep).
// A shard owns the items with k % shard_count == shard_index, runs the
// owned items that are not already in the result store, and appends one
// fsync'd record per completed item.  Because
//
//   * each item's scenario seed is derive_seed(spec.seed, kCampaign,
//     cell, rep) — a pure function of the index path,
//   * each record's bytes are a pure function of (cell, rep, metrics),
//   * and store_digest() sorts and dedupes before hashing,
//
// the aggregate digest is bit-identical for any shard count, any thread
// count, and any kill/resume history — the property the acceptance tests
// (tests/campaign_test.cc, tools/campaign_kill_resume.py) assert.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "campaign/result_store.h"
#include "campaign/spec.h"
#include "sim/engine.h"

namespace sledzig::campaign {

struct RunnerOptions {
  std::string store_path;
  std::size_t shard_index = 0;
  std::size_t shard_count = 1;
  /// Worker threads for this shard; 0 = common::default_thread_count().
  std::size_t threads = 0;
  /// Test hook: sleep this long before each item so a driver can SIGKILL
  /// the runner mid-campaign deterministically.  0 in real use.
  std::uint32_t sleep_ms_per_item = 0;
};

struct RunnerReport {
  std::uint64_t campaign = 0;     ///< campaign_hash(spec)
  std::size_t items_total = 0;    ///< cells × replications
  std::size_t items_owned = 0;    ///< this shard's share
  std::size_t items_resumed = 0;  ///< owned items already in the store
  std::size_t items_run = 0;      ///< owned items executed this pass
  /// store_digest over the store's records after this shard finished.
  std::uint64_t digest = 0;
  /// True when the store now covers every item of the whole campaign (all
  /// shards done) — only then is `digest` the final campaign digest.
  bool complete = false;
};

/// Deterministic per-run metrics for one work item: frame-accounting
/// totals, PRR/throughput aggregates, events and the trace digest.  No
/// wall-clock content — record bytes must be pure functions of the run.
JsonValue result_to_json(const sim::SimResult& result);

/// Executes one shard of the campaign against the store at
/// `options.store_path` (created when absent, resumed when present).
/// Returns false on config, path, or IO errors (appended to `*errors`
/// with dotted-path fields; IO errors use field "store").
bool run_campaign(const CampaignSpec& spec, const RunnerOptions& options,
                  RunnerReport* report, std::vector<sim::ConfigError>* errors);

}  // namespace sledzig::campaign
