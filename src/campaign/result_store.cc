#include "campaign/result_store.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

namespace sledzig::campaign {

std::string hex64(std::uint64_t v) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[v & 0xF];
    v >>= 4;
  }
  return out;
}

bool parse_hex64(const std::string& text, std::uint64_t* out) {
  if (text.size() != 16) return false;
  std::uint64_t v = 0;
  for (const char c : text) {
    v <<= 4;
    if (c >= '0' && c <= '9') {
      v |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      v |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else {
      return false;
    }
  }
  *out = v;
  return true;
}

ResultStoreWriter::ResultStoreWriter(std::string path)
    : path_(std::move(path)) {}

ResultStoreWriter::~ResultStoreWriter() {
  if (fd_ >= 0) ::close(fd_);
}

namespace {

/// pread with EINTR retry; false on any short or failed read.
bool read_at(int fd, char* buf, std::size_t len, off_t at) {
  std::size_t done = 0;
  while (done < len) {
    const ssize_t n = ::pread(fd, buf + done, len - done,
                              at + static_cast<off_t>(done));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;
    done += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

bool ResultStoreWriter::open(std::string* error) {
  // O_APPEND makes each write an atomic tail append even with several
  // shard processes holding the same file open; O_RDWR (not O_WRONLY)
  // lets open() inspect the tail for the repair below.
  fd_ = ::open(path_.c_str(), O_RDWR | O_APPEND | O_CREAT | O_CLOEXEC,
               0644);
  if (fd_ < 0) {
    if (error != nullptr) {
      *error = path_ + ": " + std::strerror(errno);
    }
    return false;
  }
  // Torn-write repair.  A completed append always ends in '\n' (the line
  // is a single write), so a file whose last byte is anything else carries
  // the partial record a SIGKILL tore mid-append.  Truncate back to the
  // last complete line *before* appending — otherwise the tear would end
  // up interior to the file, which scan_store rightly calls corruption.
  const off_t size = ::lseek(fd_, 0, SEEK_END);
  bool ok = size >= 0;
  if (ok && size > 0) {
    char last = '\n';
    ok = read_at(fd_, &last, 1, size - 1);
    if (ok && last != '\n') {
      off_t keep = 0;
      off_t end = size - 1;  // scan backwards for the previous newline
      char buf[4096];
      while (ok && end > 0 && keep == 0) {
        const auto chunk = static_cast<std::size_t>(
            std::min<off_t>(end, static_cast<off_t>(sizeof buf)));
        const off_t at = end - static_cast<off_t>(chunk);
        ok = read_at(fd_, buf, chunk, at);
        for (std::size_t i = chunk; ok && i-- > 0;) {
          if (buf[i] == '\n') {
            keep = at + static_cast<off_t>(i) + 1;
            break;
          }
        }
        end = at;
      }
      if (ok) ok = ::ftruncate(fd_, keep) == 0 && ::fsync(fd_) == 0;
    }
  }
  if (!ok) {
    if (error != nullptr) {
      *error = path_ + ": tail repair: " + std::strerror(errno);
    }
    ::close(fd_);
    fd_ = -1;
    return false;
  }
  return true;
}

bool ResultStoreWriter::append(const ResultRecord& record,
                               std::string* error) {
  if (fd_ < 0) {
    if (error != nullptr) *error = "store not open";
    return false;
  }
  const std::string line = record_to_line(record) + "\n";
  // One write(2) for the whole line: a record is all-or-mostly-nothing,
  // and the "mostly" (a torn tail after SIGKILL) is what scan() tolerates.
  std::size_t done = 0;
  while (done < line.size()) {
    const ssize_t n =
        ::write(fd_, line.data() + done, line.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (error != nullptr) {
        *error = path_ + ": write: " + std::strerror(errno);
      }
      return false;
    }
    done += static_cast<std::size_t>(n);
  }
  if (::fsync(fd_) != 0) {
    if (error != nullptr) {
      *error = path_ + ": fsync: " + std::strerror(errno);
    }
    return false;
  }
  return true;
}

std::string record_to_line(const ResultRecord& record) {
  JsonObject o;
  o.emplace_back("campaign", JsonValue(hex64(record.campaign)));
  o.emplace_back("cell", JsonValue(static_cast<double>(record.cell)));
  o.emplace_back("rep", JsonValue(static_cast<double>(record.rep)));
  o.emplace_back("metrics", record.metrics);
  return json_dump(JsonValue(std::move(o)), 0);
}

bool record_from_line(const std::string& line, ResultRecord* out) {
  JsonValue v;
  JsonParseError perr;
  if (!json_parse(line, &v, &perr) || !v.is_object()) return false;
  const JsonValue* campaign = v.find("campaign");
  const JsonValue* cell = v.find("cell");
  const JsonValue* rep = v.find("rep");
  const JsonValue* metrics = v.find("metrics");
  if (campaign == nullptr || !campaign->is_string() ||
      !parse_hex64(campaign->as_string(), &out->campaign)) {
    return false;
  }
  if (cell == nullptr || !cell->is_number() || cell->as_number() < 0.0 ||
      cell->as_number() != std::floor(cell->as_number())) {
    return false;
  }
  if (rep == nullptr || !rep->is_number() || rep->as_number() < 0.0 ||
      rep->as_number() != std::floor(rep->as_number())) {
    return false;
  }
  if (metrics == nullptr || !metrics->is_object()) return false;
  out->cell = static_cast<std::uint64_t>(cell->as_number());
  out->rep = static_cast<std::uint64_t>(rep->as_number());
  out->metrics = *metrics;
  return true;
}

bool scan_store(const std::string& path, std::uint64_t campaign,
                ScanResult* out, std::string* error) {
  *out = ScanResult{};
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    // Absent store == fresh campaign; any other IO failure surfaces on
    // read below.
    return true;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();

  std::size_t pos = 0;
  std::vector<std::pair<std::size_t, std::string>> lines;  // line no, text
  std::size_t line_no = 0;
  while (pos < text.size()) {
    const std::size_t nl = text.find('\n', pos);
    ++line_no;
    if (nl == std::string::npos) {
      lines.emplace_back(line_no, text.substr(pos));
      break;
    }
    lines.emplace_back(line_no, text.substr(pos, nl - pos));
    pos = nl + 1;
  }
  while (!lines.empty() && lines.back().second.empty()) lines.pop_back();

  for (std::size_t i = 0; i < lines.size(); ++i) {
    ResultRecord rec;
    if (!record_from_line(lines[i].second, &rec)) {
      if (i + 1 == lines.size()) {
        // The torn tail a SIGKILL mid-append legally leaves behind.
        out->dropped_partial = 1;
        break;
      }
      if (error != nullptr) {
        *error = path + ": line " + std::to_string(lines[i].first) +
                 ": malformed record in store interior";
      }
      return false;
    }
    if (rec.campaign != campaign) {
      ++out->foreign;
      continue;
    }
    out->records.push_back(std::move(rec));
  }
  return true;
}

std::uint64_t store_digest(std::uint64_t campaign,
                           const std::vector<ResultRecord>& records) {
  std::vector<const ResultRecord*> sorted;
  sorted.reserve(records.size());
  for (const auto& r : records) sorted.push_back(&r);
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const ResultRecord* a, const ResultRecord* b) {
                     if (a->cell != b->cell) return a->cell < b->cell;
                     return a->rep < b->rep;
                   });

  JsonArray items;
  const ResultRecord* prev = nullptr;
  for (const ResultRecord* r : sorted) {
    // First occurrence wins: a shard that died after appending but before
    // marking progress re-appends the identical record on resume.
    if (prev != nullptr && prev->cell == r->cell && prev->rep == r->rep) {
      continue;
    }
    prev = r;
    JsonObject o;
    o.emplace_back("cell", JsonValue(static_cast<double>(r->cell)));
    o.emplace_back("rep", JsonValue(static_cast<double>(r->rep)));
    o.emplace_back("metrics", r->metrics);
    items.emplace_back(std::move(o));
  }
  JsonObject root;
  root.emplace_back("campaign", JsonValue(hex64(campaign)));
  root.emplace_back("results", JsonValue(std::move(items)));
  return json_fnv1a(JsonValue(std::move(root)));
}

}  // namespace sledzig::campaign
