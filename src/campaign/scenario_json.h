// ScenarioConfig <-> JSON: the declarative scenario format (DESIGN.md §17).
//
// A scenario file describes everything ScenarioConfig holds — topology
// (explicit node lists or a generator), traffic mixes, the SledZig plan,
// impairments, fault plans, fast-path and invariant knobs — and
// round-trips losslessly: scenario_to_json(cfg) parsed back yields a
// config whose run_scenario digest is bit-identical to the original
// (asserted for the flagship scenarios in tests/campaign_test.cc).
//
// Error reporting is structural and total: scenario_from_json returns
// *every* problem found as a ConfigError with a dotted field path
// ("wifi[2].traffic.kind: ..."), reusing the same machinery as
// ScenarioConfig::validate(), whose semantic checks are appended when the
// parse itself succeeds — one call reports both malformed JSON fields and
// configs the engine would reject.
//
// Every key is optional and defaults to the engine's defaults, so a file
// holding only what differs from a stock scenario stays small.  Unknown
// keys are errors (a typo must never silently fall back to a default).
//
// Topology generators: instead of explicit "wifi"/"zigbee" lists a file
// may carry a "topology" object —
//
//   {"generator": "two_node", "wifi_duty_ratio": 0.5,
//    "d_wz_m": 4.0, "d_z_m": 1.0}
//   {"generator": "campus", "ap_grid_x": 4, "ap_grid_y": 4,
//    "sensors_per_ap": 6, "spacing_m": 20.0}
//
// which expand through two_node_paper_scenario / campus_scenario using the
// file's sledzig/duration/seed fields, after which the remaining top-level
// keys are applied on top.  Generator form and explicit lists are
// mutually exclusive.
#pragma once

#include <string>
#include <vector>

#include "campaign/json.h"
#include "sim/scenario.h"

namespace sledzig::campaign {

/// Serializes every engine-relevant field (sinks and caches — metrics,
/// span_log, link_cache — are runtime wiring, not scenario identity, and
/// are omitted).  Output is canonical: equal configs produce equal JSON.
JsonValue scenario_to_json(const sim::ScenarioConfig& config);

/// Parses `json` into `*out` (starting from engine defaults).  Appends all
/// findings to `*errors` — field-path parse errors first, then
/// ScenarioConfig::validate() findings when the parse succeeded.  Returns
/// true when `*errors` gained nothing, in which case `*out` is runnable.
bool scenario_from_json(const JsonValue& json, sim::ScenarioConfig* out,
                        std::vector<sim::ConfigError>* errors);

/// Convenience: parse text, then scenario_from_json.  Syntax errors are
/// reported with field "<json>" and the parser's line:column message.
bool scenario_from_text(const std::string& text, sim::ScenarioConfig* out,
                        std::vector<sim::ConfigError>* errors);

// Enum name helpers shared with the spec/grid layer (axis values may be
// enum strings).  from_* return false on an unknown name.
std::string traffic_kind_name(sim::TrafficKind kind);
bool traffic_kind_from_name(const std::string& name, sim::TrafficKind* out);
std::string fault_kind_name(sim::FaultKind kind);
bool fault_kind_from_name(const std::string& name, sim::FaultKind* out);

}  // namespace sledzig::campaign
