#include "obs/profile.h"

#if SLEDZIG_OBS_ENABLED

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ostream>
#include <string_view>
#include <vector>

namespace sledzig::obs {

namespace {

/// Head of the intrusive site list; push-only via CAS, so registration from
/// static initialisers on multiple threads is safe.
// lint: allow(static-state): append-only profiling site list (atomic)
std::atomic<ProfSite*> g_sites{nullptr};

/// -1 = not yet read, else 0/1.  Profiling is observational only, so the
/// one-time env read cannot perturb any result path.
// lint: allow(static-state): memoised SLEDZIG_PROFILE flag (atomic)
std::atomic<int> g_profiling{-1};

std::uint64_t now_ns() {
  // lint: allow(wall-clock): profiling gate — never feeds a result path
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          // lint: allow(wall-clock): profiling gate — observational only
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

ProfSite::ProfSite(const char* name) : name_(name) {
  ProfSite* head = g_sites.load(std::memory_order_acquire);
  do {
    next_ = head;
  } while (!g_sites.compare_exchange_weak(head, this,
                                          std::memory_order_release,
                                          std::memory_order_acquire));
}

bool profiling_enabled() {
  int state = g_profiling.load(std::memory_order_relaxed);
  if (state < 0) {
    // NOLINTNEXTLINE(concurrency-mt-unsafe) — read-only env access
    const char* env = std::getenv("SLEDZIG_PROFILE");
    state = (env != nullptr && env[0] != '\0' &&
             !(env[0] == '0' && env[1] == '\0'))
                ? 1
                : 0;
    g_profiling.store(state, std::memory_order_relaxed);
  }
  return state == 1;
}

ProfScope::ProfScope(ProfSite& site)
    : site_(profiling_enabled() ? &site : nullptr) {
  if (site_ != nullptr) start_ = now_ns();
}

ProfScope::~ProfScope() {
  if (site_ != nullptr) site_->add(now_ns() - start_);
}

void profile_report(std::ostream& out) {
  std::vector<const ProfSite*> sites;
  for (const ProfSite* s = g_sites.load(std::memory_order_acquire);
       s != nullptr; s = s->next()) {
    sites.push_back(s);
  }
  std::sort(sites.begin(), sites.end(),
            [](const ProfSite* a, const ProfSite* b) {
              return std::string_view(a->name()) < std::string_view(b->name());
            });
  out << "profile sites (" << sites.size() << "):\n";
  for (const ProfSite* s : sites) {
    const std::uint64_t calls = s->calls();
    const double total_ms = static_cast<double>(s->total_ns()) * 1e-6;
    const double mean_us =
        calls == 0 ? 0.0
                   : static_cast<double>(s->total_ns()) * 1e-3 /
                         static_cast<double>(calls);
    char line[160];
    std::snprintf(line, sizeof line, "  %-32s %10llu calls %12.3f ms  %10.3f us/call\n",
                  s->name(), static_cast<unsigned long long>(calls), total_ms,
                  mean_us);
    out << line;
  }
}

}  // namespace sledzig::obs

#endif  // SLEDZIG_OBS_ENABLED
