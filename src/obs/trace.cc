#include "obs/trace.h"

#include <ostream>
#include <sstream>

namespace sledzig::obs {

#if SLEDZIG_OBS_ENABLED

namespace {

std::string escaped(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

void TraceLog::set_track_name(std::uint32_t track, std::string_view name) {
  for (auto& [t, n] : track_names_) {
    if (t == track) {
      n = std::string(name);
      return;
    }
  }
  track_names_.emplace_back(track, std::string(name));
}

void TraceLog::complete(std::string_view name, std::uint32_t track,
                        std::uint64_t start_us, std::uint64_t end_us) {
  TraceEvent ev;
  ev.name = std::string(name);
  ev.track = track;
  ev.ts_us = start_us;
  ev.dur_us = end_us >= start_us ? end_us - start_us : 0;
  ev.phase = 'X';
  events_.push_back(std::move(ev));
}

void TraceLog::instant(std::string_view name, std::uint32_t track,
                       std::uint64_t ts_us) {
  TraceEvent ev;
  ev.name = std::string(name);
  ev.track = track;
  ev.ts_us = ts_us;
  ev.phase = 'i';
  events_.push_back(std::move(ev));
}

void TraceLog::clear() {
  events_.clear();
  track_names_.clear();
}

void TraceLog::write_chrome_json(std::ostream& out) const {
  out << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  bool first = true;
  for (const auto& [track, name] : track_names_) {
    out << (first ? "\n" : ",\n");
    first = false;
    out << "  {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 0, "
           "\"tid\": "
        << track << ", \"args\": {\"name\": \"" << escaped(name) << "\"}}";
  }
  for (const TraceEvent& ev : events_) {
    out << (first ? "\n" : ",\n");
    first = false;
    out << "  {\"name\": \"" << escaped(ev.name) << "\", \"ph\": \""
        << ev.phase << "\", \"pid\": 0, \"tid\": " << ev.track
        << ", \"ts\": " << ev.ts_us;
    if (ev.phase == 'X') out << ", \"dur\": " << ev.dur_us;
    if (ev.phase == 'i') out << ", \"s\": \"t\"";
    out << "}";
  }
  out << (first ? "]}\n" : "\n]}\n");
}

std::string TraceLog::chrome_json() const {
  std::ostringstream out;
  write_chrome_json(out);
  return out.str();
}

void TraceLog::write_jsonl(std::ostream& out) const {
  for (const TraceEvent& ev : events_) {
    out << "{\"name\": \"" << escaped(ev.name) << "\", \"track\": "
        << ev.track << ", \"ts_us\": " << ev.ts_us;
    if (ev.phase == 'X') out << ", \"dur_us\": " << ev.dur_us;
    out << ", \"kind\": \"" << (ev.phase == 'X' ? "span" : "instant")
        << "\"}\n";
  }
}

#else  // !SLEDZIG_OBS_ENABLED

void TraceLog::write_chrome_json(std::ostream& out) const {
  out << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": []}\n";
}

std::string TraceLog::chrome_json() const {
  std::ostringstream out;
  write_chrome_json(out);
  return out.str();
}

#endif  // SLEDZIG_OBS_ENABLED

}  // namespace sledzig::obs
