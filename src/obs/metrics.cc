#include "obs/metrics.h"

#if SLEDZIG_OBS_ENABLED

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdio>
#include <map>
#include <mutex>
#include <stdexcept>

namespace sledzig::obs {

namespace {

// Cell space geometry: fixed arrays of atomically-published block pointers.
// A writer never touches a structure another thread mutates — registration
// fills new slots under the registry mutex and publishes them with a
// release store; the writer's acquire load synchronises with exactly that
// store.
constexpr std::size_t kBlockBits = 6;
constexpr std::size_t kBlockSize = std::size_t{1} << kBlockBits;
constexpr std::size_t kMaxBlocks = 64;
constexpr std::size_t kMaxCells = kBlockSize * kMaxBlocks;
constexpr std::size_t kMaxHistograms = 256;

/// Monotone registry ids: a thread-local cache entry keyed by a uid can
/// never be revived for a different Registry, so a stale cached shard
/// pointer is unreachable (only matched, never dereferenced) after its
/// registry dies.
// lint: allow(static-state): process-wide monotone id source (atomic)
std::atomic<std::uint64_t> g_next_registry_uid{1};

/// Per-thread shard cache: one fast slot for the registry this thread wrote
/// last, plus an ordered-map fallback for the (rare) multi-registry case.
/// Entries for destroyed registries go stale but are matched by uid only,
/// never dereferenced.  Single writer per instance by construction.
struct TlsShardCache {
  std::uint64_t uid = 0;
  void* shard = nullptr;
  std::map<std::uint64_t, void*> others;
};
thread_local TlsShardCache tls_shard_cache;

template <typename T, std::size_t N>
void ensure_blocks(std::array<std::atomic<std::atomic<T>*>, N>& blocks,
                   std::vector<std::unique_ptr<std::atomic<T>[]>>& owned,
                   std::size_t cells_needed) {
  const std::size_t blocks_needed =
      (cells_needed + kBlockSize - 1) >> kBlockBits;
  for (std::size_t b = 0; b < blocks_needed; ++b) {
    if (blocks[b].load(std::memory_order_relaxed) != nullptr) continue;
    auto block = std::make_unique<std::atomic<T>[]>(kBlockSize);
    blocks[b].store(block.get(), std::memory_order_release);
    owned.push_back(std::move(block));
  }
}

template <typename T, std::size_t N>
std::atomic<T>& cell_at(
    const std::array<std::atomic<std::atomic<T>*>, N>& blocks,
    std::uint32_t id) {
  auto* block = blocks[id >> kBlockBits].load(std::memory_order_acquire);
  return block[id & (kBlockSize - 1)];
}

}  // namespace

struct Registry::Impl {
  struct Shard {
    std::array<std::atomic<std::atomic<std::uint64_t>*>, kMaxBlocks>
        counter_blocks{};
    std::array<std::atomic<std::atomic<double>*>, kMaxBlocks> gauge_blocks{};
    std::array<std::atomic<std::atomic<std::uint64_t>*>, kMaxBlocks>
        hist_blocks{};
    // Owned storage behind the published pointers.
    std::vector<std::unique_ptr<std::atomic<std::uint64_t>[]>> owned_u64;
    std::vector<std::unique_ptr<std::atomic<double>[]>> owned_f64;
  };

  struct HistDesc {
    std::vector<double> bounds;    // ascending upper bounds
    std::uint32_t first_cell = 0;  // start of this histogram's bucket cells
  };

  mutable std::mutex mutex;
  std::map<std::string, std::uint32_t, std::less<>> counter_ids;
  std::map<std::string, std::uint32_t, std::less<>> gauge_ids;
  std::map<std::string, std::uint32_t, std::less<>> hist_ids;
  /// Fixed-capacity so observe() never reads a container another thread is
  /// growing; slot [id] is written once (under the mutex) before any handle
  /// carrying that id exists, and handle hand-off to another thread is
  /// itself a synchronisation point.
  std::unique_ptr<HistDesc[]> hists =
      std::make_unique<HistDesc[]>(kMaxHistograms);
  std::uint32_t num_counters = 0;
  std::uint32_t num_gauges = 0;
  std::uint32_t num_hists = 0;
  std::uint32_t num_hist_cells = 0;
  std::vector<std::unique_ptr<Shard>> shards;
  std::uint64_t uid = g_next_registry_uid.fetch_add(1);

  // ---- shard management ----

  void grow_shard(Shard& s) const {
    ensure_blocks(s.counter_blocks, s.owned_u64, num_counters);
    ensure_blocks(s.gauge_blocks, s.owned_f64, num_gauges);
    ensure_blocks(s.hist_blocks, s.owned_u64, num_hist_cells);
  }

  void grow_all_shards() {
    for (auto& s : shards) grow_shard(*s);
  }

  Shard& shard_for() {
    TlsShardCache& cache = tls_shard_cache;
    if (cache.uid == uid) return *static_cast<Shard*>(cache.shard);
    Shard* shard = nullptr;
    if (const auto it = cache.others.find(uid); it != cache.others.end()) {
      shard = static_cast<Shard*>(it->second);
    } else {
      std::scoped_lock lock(mutex);
      auto fresh = std::make_unique<Shard>();
      grow_shard(*fresh);
      shard = fresh.get();
      shards.push_back(std::move(fresh));
    }
    if (cache.uid != 0) cache.others.emplace(cache.uid, cache.shard);
    cache.others.erase(uid);
    cache.uid = uid;
    cache.shard = shard;
    return *shard;
  }

  // ---- hot-path updates ----

  void bump_counter(std::uint32_t id, std::uint64_t delta) {
    cell_at(shard_for().counter_blocks, id)
        .fetch_add(delta, std::memory_order_relaxed);
  }

  void record_gauge(std::uint32_t id, double value) {
    auto& c = cell_at(shard_for().gauge_blocks, id);
    double cur = c.load(std::memory_order_relaxed);
    while (value > cur &&
           !c.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
    }
  }

  void observe_hist(std::uint32_t id, double value) {
    const HistDesc& desc = hists[id];
    const auto it =
        std::lower_bound(desc.bounds.begin(), desc.bounds.end(), value);
    const auto bucket = static_cast<std::uint32_t>(it - desc.bounds.begin());
    cell_at(shard_for().hist_blocks, desc.first_cell + bucket)
        .fetch_add(1, std::memory_order_relaxed);
  }

  // ---- aggregation (mutex held by caller) ----

  std::uint64_t sum_u64(bool hist_space, std::uint32_t id) const {
    std::uint64_t total = 0;
    for (const auto& s : shards) {
      const auto& blocks = hist_space ? s->hist_blocks : s->counter_blocks;
      auto* block = blocks[id >> kBlockBits].load(std::memory_order_acquire);
      if (block == nullptr) continue;
      total += block[id & (kBlockSize - 1)].load(std::memory_order_relaxed);
    }
    return total;
  }

  double max_f64(std::uint32_t id) const {
    double best = 0.0;
    for (const auto& s : shards) {
      auto* block =
          s->gauge_blocks[id >> kBlockBits].load(std::memory_order_acquire);
      if (block == nullptr) continue;
      best = std::max(
          best, block[id & (kBlockSize - 1)].load(std::memory_order_relaxed));
    }
    return best;
  }
};

Registry::Registry() : impl_(std::make_unique<Impl>()) {}
Registry::~Registry() = default;

Counter Registry::counter(std::string_view name) {
  std::scoped_lock lock(impl_->mutex);
  auto it = impl_->counter_ids.find(name);
  if (it == impl_->counter_ids.end()) {
    if (impl_->num_counters >= kMaxCells) {
      throw std::length_error("obs::Registry: counter space exhausted");
    }
    it = impl_->counter_ids.emplace(std::string(name), impl_->num_counters++)
             .first;
    impl_->grow_all_shards();
  }
  Counter handle;
  handle.registry_ = this;
  handle.id_ = it->second;
  return handle;
}

Gauge Registry::gauge(std::string_view name) {
  std::scoped_lock lock(impl_->mutex);
  auto it = impl_->gauge_ids.find(name);
  if (it == impl_->gauge_ids.end()) {
    if (impl_->num_gauges >= kMaxCells) {
      throw std::length_error("obs::Registry: gauge space exhausted");
    }
    it = impl_->gauge_ids.emplace(std::string(name), impl_->num_gauges++)
             .first;
    impl_->grow_all_shards();
  }
  Gauge handle;
  handle.registry_ = this;
  handle.id_ = it->second;
  return handle;
}

Histogram Registry::histogram(std::string_view name,
                              std::span<const double> upper_bounds) {
  if (upper_bounds.empty() ||
      !std::is_sorted(upper_bounds.begin(), upper_bounds.end())) {
    throw std::invalid_argument(
        "obs::Registry: histogram bounds must be non-empty and ascending");
  }
  std::scoped_lock lock(impl_->mutex);
  auto it = impl_->hist_ids.find(name);
  if (it == impl_->hist_ids.end()) {
    const std::size_t cells = upper_bounds.size() + 1;  // +overflow bucket
    if (impl_->num_hists >= kMaxHistograms ||
        impl_->num_hist_cells + cells > kMaxCells) {
      throw std::length_error("obs::Registry: histogram space exhausted");
    }
    Impl::HistDesc& desc = impl_->hists[impl_->num_hists];
    desc.bounds.assign(upper_bounds.begin(), upper_bounds.end());
    desc.first_cell = impl_->num_hist_cells;
    impl_->num_hist_cells += static_cast<std::uint32_t>(cells);
    it = impl_->hist_ids.emplace(std::string(name), impl_->num_hists++).first;
    impl_->grow_all_shards();
  } else {
    const Impl::HistDesc& desc = impl_->hists[it->second];
    if (desc.bounds.size() != upper_bounds.size() ||
        !std::equal(desc.bounds.begin(), desc.bounds.end(),
                    upper_bounds.begin())) {
      throw std::invalid_argument(
          "obs::Registry: histogram re-registered with different bounds");
    }
  }
  Histogram handle;
  handle.registry_ = this;
  handle.id_ = it->second;
  return handle;
}

Snapshot Registry::snapshot() const {
  Snapshot snap;
  std::scoped_lock lock(impl_->mutex);
  snap.counters.reserve(impl_->counter_ids.size());
  for (const auto& [name, id] : impl_->counter_ids) {
    snap.counters.emplace_back(name, impl_->sum_u64(false, id));
  }
  snap.gauges.reserve(impl_->gauge_ids.size());
  for (const auto& [name, id] : impl_->gauge_ids) {
    snap.gauges.emplace_back(name, impl_->max_f64(id));
  }
  snap.histograms.reserve(impl_->hist_ids.size());
  for (const auto& [name, id] : impl_->hist_ids) {
    const Impl::HistDesc& desc = impl_->hists[id];
    HistogramData h;
    h.name = name;
    h.upper_bounds = desc.bounds;
    h.counts.resize(desc.bounds.size() + 1);
    for (std::size_t b = 0; b < h.counts.size(); ++b) {
      h.counts[b] = impl_->sum_u64(
          true, desc.first_cell + static_cast<std::uint32_t>(b));
      h.total += h.counts[b];
    }
    snap.histograms.push_back(std::move(h));
  }
  return snap;
}

void Registry::reset() {
  std::scoped_lock lock(impl_->mutex);
  for (auto& shard : impl_->shards) {
    for (auto& block : shard->owned_u64) {
      for (std::size_t i = 0; i < kBlockSize; ++i) {
        block[i].store(0, std::memory_order_relaxed);
      }
    }
    for (auto& block : shard->owned_f64) {
      for (std::size_t i = 0; i < kBlockSize; ++i) {
        block[i].store(0.0, std::memory_order_relaxed);
      }
    }
  }
}

Registry& Registry::global() {
  // Magic-static init is thread-safe; the registry synchronises internally.
  // lint: allow(static-state): process-wide metrics registry, created once
  static Registry registry;
  return registry;
}

void Counter::add(std::uint64_t delta) const {
  if (registry_ == nullptr) return;
  registry_->impl_->bump_counter(id_, delta);
}

void Gauge::record(double value) const {
  if (registry_ == nullptr) return;
  registry_->impl_->record_gauge(id_, value);
}

void Histogram::observe(double value) const {
  if (registry_ == nullptr) return;
  registry_->impl_->observe_hist(id_, value);
}

}  // namespace sledzig::obs

#else  // !SLEDZIG_OBS_ENABLED

namespace sledzig::obs {

Registry& Registry::global() {
  // lint: allow(static-state): stateless stub instance
  static Registry registry;
  return registry;
}

}  // namespace sledzig::obs

#endif  // SLEDZIG_OBS_ENABLED

// ---- Snapshot helpers (compiled in both modes) ----

namespace sledzig::obs {

namespace {

void append_json_string(std::string& out, std::string_view s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void append_json_double(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

}  // namespace

std::uint64_t Snapshot::counter(std::string_view name) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return 0;
}

double Snapshot::gauge(std::string_view name) const {
  for (const auto& [n, v] : gauges) {
    if (n == name) return v;
  }
  return 0.0;
}

const HistogramData* Snapshot::histogram(std::string_view name) const {
  for (const auto& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

std::string Snapshot::to_json() const {
  std::string out = "{\n  \"counters\": {";
  for (std::size_t i = 0; i < counters.size(); ++i) {
    out += i == 0 ? "\n    " : ",\n    ";
    append_json_string(out, counters[i].first);
    out += ": ";
    out += std::to_string(counters[i].second);
  }
  out += counters.empty() ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  for (std::size_t i = 0; i < gauges.size(); ++i) {
    out += i == 0 ? "\n    " : ",\n    ";
    append_json_string(out, gauges[i].first);
    out += ": ";
    append_json_double(out, gauges[i].second);
  }
  out += gauges.empty() ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  for (std::size_t i = 0; i < histograms.size(); ++i) {
    const HistogramData& h = histograms[i];
    out += i == 0 ? "\n    " : ",\n    ";
    append_json_string(out, h.name);
    out += ": {\"upper_bounds\": [";
    for (std::size_t b = 0; b < h.upper_bounds.size(); ++b) {
      if (b != 0) out += ", ";
      append_json_double(out, h.upper_bounds[b]);
    }
    out += "], \"counts\": [";
    for (std::size_t b = 0; b < h.counts.size(); ++b) {
      if (b != 0) out += ", ";
      out += std::to_string(h.counts[b]);
    }
    out += "], \"total\": ";
    out += std::to_string(h.total);
    out += "}";
  }
  out += histograms.empty() ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

}  // namespace sledzig::obs
