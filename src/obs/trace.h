// Scoped-span tracing in *virtual* time (DESIGN.md §13).
//
// A TraceLog records named spans and instants whose timestamps are supplied
// by the caller — for the simulator that is virtual sim time in µs, so the
// log is a pure function of (config, seed) and bit-identical across thread
// counts, exactly like the FNV-1a trace digest.  No clock is ever read
// here; wall-clock profiling lives in obs/profile.h behind its own gate.
//
// Two renderings:
//   * write_chrome_json(): the Chrome trace-event format — load the file at
//     chrome://tracing (or https://ui.perfetto.dev) to see per-node
//     timelines.  Tracks map to `tid`s and are labelled with thread_name
//     metadata events.
//   * write_jsonl(): one JSON object per line, grep/jq-friendly.
//
// Ownership/threading: a TraceLog is single-writer (the sim event loop).
// `sim::run_replications` nulls the sink in its per-replication configs, so
// a log never sees two engines at once.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"  // SLEDZIG_OBS_ENABLED / kEnabled

namespace sledzig::obs {

/// One recorded event.  `phase` follows the Chrome trace-event codes:
/// 'X' = complete span (start + duration), 'i' = instant.
struct TraceEvent {
  std::string name;
  std::uint32_t track = 0;
  std::uint64_t ts_us = 0;
  std::uint64_t dur_us = 0;
  char phase = 'X';
};

#if SLEDZIG_OBS_ENABLED

class TraceLog {
 public:
  /// Labels a track (shown as a named row at chrome://tracing).
  void set_track_name(std::uint32_t track, std::string_view name);

  /// Records a complete span over [start_us, end_us] (virtual µs).
  void complete(std::string_view name, std::uint32_t track,
                std::uint64_t start_us, std::uint64_t end_us);

  /// Records a zero-duration instant marker.
  void instant(std::string_view name, std::uint32_t track,
               std::uint64_t ts_us);

  const std::vector<TraceEvent>& events() const { return events_; }
  std::size_t size() const { return events_.size(); }
  void clear();

  /// Chrome trace-event JSON (an object with a "traceEvents" array).
  void write_chrome_json(std::ostream& out) const;
  std::string chrome_json() const;

  /// Line-oriented JSON, one event per line.
  void write_jsonl(std::ostream& out) const;

 private:
  std::vector<TraceEvent> events_;
  /// (track, name), insertion-ordered; rendered as thread_name metadata.
  std::vector<std::pair<std::uint32_t, std::string>> track_names_;
};

#else  // stub: recording is free, renderings are empty.

class TraceLog {
 public:
  void set_track_name(std::uint32_t, std::string_view) {}
  void complete(std::string_view, std::uint32_t, std::uint64_t,
                std::uint64_t) {}
  void instant(std::string_view, std::uint32_t, std::uint64_t) {}
  const std::vector<TraceEvent>& events() const { return events_; }
  std::size_t size() const { return 0; }
  void clear() {}
  void write_chrome_json(std::ostream& out) const;
  std::string chrome_json() const;
  void write_jsonl(std::ostream&) const {}

 private:
  std::vector<TraceEvent> events_;  // always empty
};

#endif  // SLEDZIG_OBS_ENABLED

}  // namespace sledzig::obs
