// Deterministic, near-zero-overhead metrics registry (DESIGN.md §13).
//
// Counters, high-water gauges, and fixed-bucket histograms with cheap
// thread-local sharding: each writing thread owns a private shard of plain
// relaxed-atomic cells, so the hot path is one thread-local lookup plus one
// uncontended fetch_add — no locks, no false sharing with readers.  Shards
// are aggregated only at report time (`snapshot()`), and because every
// aggregate is an integer sum (or a max, for gauges), the aggregated values
// are bit-identical for any thread count whenever the same work items ran —
// the same index-addressed contract as common::parallel.
//
// Determinism rules (enforced by tools/lint_determinism.py and the
// digest-invariance tests in tests/sim_test.cc):
//   * metrics are observational only — nothing digest-checked may ever read
//     them back into a result path;
//   * histogram *counts* are exact integers; gauge aggregation is max();
//   * snapshots iterate name-sorted, so to_json() is a stable string.
//
// Compile-time gate: when the SLEDZIG_OBS CMake option is OFF the whole API
// degrades to inline no-ops (empty handles, empty snapshots) so call sites
// compile unchanged and cost literally nothing.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#ifndef SLEDZIG_OBS_ENABLED
#define SLEDZIG_OBS_ENABLED 1
#endif

namespace sledzig::obs {

/// True when the observability layer is compiled in (SLEDZIG_OBS=ON).
inline constexpr bool kEnabled = SLEDZIG_OBS_ENABLED != 0;

/// Aggregated view of one histogram at snapshot time.
struct HistogramData {
  std::string name;
  /// Ascending bucket upper bounds; an implicit +inf bucket follows.
  std::vector<double> upper_bounds;
  /// counts[b] = observations with value <= upper_bounds[b] (and greater
  /// than the previous bound); counts.back() is the overflow bucket.
  std::vector<std::uint64_t> counts;
  std::uint64_t total = 0;
};

/// Point-in-time aggregate of a Registry, name-sorted within each kind.
struct Snapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<HistogramData> histograms;

  /// Value lookups; zero / nullptr when the name was never registered.
  std::uint64_t counter(std::string_view name) const;
  double gauge(std::string_view name) const;
  const HistogramData* histogram(std::string_view name) const;

  /// Deterministic JSON rendering (sorted keys, fixed float format).
  std::string to_json() const;
};

class Registry;

#if SLEDZIG_OBS_ENABLED

/// Monotone counter handle.  Copyable POD; add() is thread-safe and
/// wait-free (relaxed atomic on the calling thread's shard).  A
/// default-constructed handle is valid and discards all updates.
class Counter {
 public:
  void add(std::uint64_t delta) const;
  void inc() const { add(1); }

 private:
  friend class Registry;
  Registry* registry_ = nullptr;
  std::uint32_t id_ = 0;
};

/// High-water gauge handle: record() keeps the maximum value seen on the
/// calling thread; snapshot aggregation takes the maximum across shards, so
/// the aggregate is thread-count invariant for the same set of record()s.
class Gauge {
 public:
  void record(double value) const;

 private:
  friend class Registry;
  Registry* registry_ = nullptr;
  std::uint32_t id_ = 0;
};

/// Fixed-bucket histogram handle.  Bucket bounds are set at registration
/// and immutable afterwards; observe() is one binary search plus one
/// relaxed fetch_add.
class Histogram {
 public:
  void observe(double value) const;

 private:
  friend class Registry;
  Registry* registry_ = nullptr;
  std::uint32_t id_ = 0;
};

/// Metric registry.  Handle creation (counter()/gauge()/histogram()) takes
/// a mutex and may allocate; handles themselves are cheap PODs meant to be
/// resolved once and reused on hot paths.  Registering the same name twice
/// returns the same metric (histogram bounds must match the first
/// registration).
///
/// Lifetime contract: a Registry must outlive every thread that still
/// writes through its handles.  The process-wide global() registry
/// trivially satisfies this; short-lived registries (golden-snapshot
/// tests) must not hand handles to detached threads.
class Registry {
 public:
  Registry();
  ~Registry();
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter counter(std::string_view name);
  Gauge gauge(std::string_view name);
  Histogram histogram(std::string_view name,
                      std::span<const double> upper_bounds);

  /// Aggregates all shards.  Values written strictly before the call are
  /// fully included; concurrent writers may or may not be.  Quiescent
  /// snapshots (all producers joined) are exact and deterministic.
  Snapshot snapshot() const;

  /// Zeroes every cell (counts, gauges, buckets).  Caller must be
  /// quiescent: concurrent writers race with the wipe.
  void reset();

  /// Process-wide registry most subsystems tally into.
  static Registry& global();

 private:
  friend class Counter;
  friend class Gauge;
  friend class Histogram;
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

#else  // SLEDZIG_OBS_ENABLED == 0: every operation is an inline no-op.

class Counter {
 public:
  void add(std::uint64_t) const {}
  void inc() const {}
};

class Gauge {
 public:
  void record(double) const {}
};

class Histogram {
 public:
  void observe(double) const {}
};

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;
  Counter counter(std::string_view) { return {}; }
  Gauge gauge(std::string_view) { return {}; }
  Histogram histogram(std::string_view, std::span<const double>) {
    return {};
  }
  Snapshot snapshot() const { return {}; }
  void reset() {}
  static Registry& global();
};

#endif  // SLEDZIG_OBS_ENABLED

}  // namespace sledzig::obs
