// Wall-clock profiling hooks (DESIGN.md §13).
//
// The ONLY place in src/ allowed to read a clock — and even here the reads
// are double-gated: compile-time by SLEDZIG_OBS (the macro vanishes when
// compiled out) and run-time by the SLEDZIG_PROFILE environment variable
// (unset/"0" ⇒ a scope costs one relaxed bool load).  Timings accumulate
// into process-wide sites and are rendered by profile_report(); they are
// strictly observational — nothing digest-checked may ever read them.
//
// Usage, one line at the top of a hot function:
//
//     void Engine::run() {
//       SLEDZIG_PROF_SCOPE("sim.run");
//       ...
//     }
//
//     SLEDZIG_PROFILE=1 ./build/bench/bench_sim_scaling
//     # then obs::profile_report(std::cerr) in the binary's epilogue.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>

#include "obs/metrics.h"  // SLEDZIG_OBS_ENABLED / kEnabled

namespace sledzig::obs {

#if SLEDZIG_OBS_ENABLED

/// True when SLEDZIG_PROFILE is set to anything but "" or "0".  Read once
/// at first call, then a relaxed atomic load.
bool profiling_enabled();

/// One accumulation site, usually a function-local static created by
/// SLEDZIG_PROF_SCOPE.  Registers itself into a process-wide list on
/// construction; sites are never unregistered (they live for the process).
class ProfSite {
 public:
  explicit ProfSite(const char* name);
  void add(std::uint64_t ns) {
    total_ns_.fetch_add(ns, std::memory_order_relaxed);
    calls_.fetch_add(1, std::memory_order_relaxed);
  }

  const char* name() const { return name_; }
  std::uint64_t total_ns() const {
    return total_ns_.load(std::memory_order_relaxed);
  }
  std::uint64_t calls() const {
    return calls_.load(std::memory_order_relaxed);
  }
  const ProfSite* next() const { return next_; }

 private:
  const char* name_;
  std::atomic<std::uint64_t> total_ns_{0};
  std::atomic<std::uint64_t> calls_{0};
  ProfSite* next_ = nullptr;
};

/// RAII scope: samples the clock only when profiling_enabled().
class ProfScope {
 public:
  explicit ProfScope(ProfSite& site);
  ~ProfScope();
  ProfScope(const ProfScope&) = delete;
  ProfScope& operator=(const ProfScope&) = delete;

 private:
  ProfSite* site_;           // nullptr when profiling is off
  std::uint64_t start_ = 0;  // steady_clock ns
};

/// Renders every registered site (name, calls, total ms, mean µs), sorted
/// by name for stable output.
void profile_report(std::ostream& out);

// Two-level indirection so __LINE__ expands before pasting.
#define SLEDZIG_PROF_CONCAT2(a, b) a##b
#define SLEDZIG_PROF_CONCAT(a, b) SLEDZIG_PROF_CONCAT2(a, b)

/// Function-local site + scope.  The `static` lives in this header macro;
/// sites are append-only registration, not mutable result state.
#define SLEDZIG_PROF_SCOPE(name_literal)                                   \
  static ::sledzig::obs::ProfSite SLEDZIG_PROF_CONCAT(sledzig_prof_site_,  \
                                                      __LINE__){           \
      name_literal};                                                       \
  ::sledzig::obs::ProfScope SLEDZIG_PROF_CONCAT(sledzig_prof_scope_,       \
                                                __LINE__)(                 \
      SLEDZIG_PROF_CONCAT(sledzig_prof_site_, __LINE__))

#else  // compiled out: the macro disappears entirely.

inline bool profiling_enabled() { return false; }
inline void profile_report(std::ostream&) {}

#define SLEDZIG_PROF_SCOPE(name_literal) \
  do {                                   \
  } while (false)

#endif  // SLEDZIG_OBS_ENABLED

}  // namespace sledzig::obs
