// Extension (paper footnote 1): SledZig on a 40 MHz WiFi channel.
// A 40 MHz channel overlaps up to 8 ZigBee channels; this bench protects
// one window at a time and reports the in-band reduction and the WiFi cost,
// mirroring the Fig 12 / Table IV methodology on the wide channel.
#include "bench_util.h"
#include "common/dsp.h"
#include "common/rng.h"
#include "common/units.h"
#include "sledzig/encoder.h"
#include "wifi/preamble.h"
#include "wifi/transmitter.h"

using namespace sledzig;

namespace {

struct Result {
  double normal_db;
  double sled_db;
  double loss_pct;
};

Result measure(double window_offset_hz) {
  common::Rng rng(808);
  core::SledzigConfig cfg;
  cfg.modulation = wifi::Modulation::kQam64;
  cfg.rate = wifi::CodingRate::kR23;
  cfg.width = wifi::ChannelWidth::k40MHz;
  cfg.window_offsets_hz = {window_offset_hz};

  wifi::WifiTxConfig tx;
  tx.modulation = cfg.modulation;
  tx.rate = cfg.rate;
  tx.width = cfg.width;

  const auto enc = core::sledzig_encode(rng.bytes(800), cfg);
  const auto sled = wifi::wifi_transmit(enc.transmit_psdu, tx);
  const auto normal =
      wifi::wifi_transmit(rng.bytes(enc.transmit_psdu.size()), tx);

  const auto& plan = cfg.plan();
  const std::size_t start =
      wifi::preamble_len(cfg.width) + plan.symbol_len();
  auto band = [&](const common::CplxVec& s) {
    return common::linear_to_db(common::band_power(
        std::span<const common::Cplx>(s).subspan(start),
        plan.sample_rate_hz, window_offset_hz - 1e6, window_offset_hz + 1e6));
  };
  return Result{band(normal.samples), band(sled.samples),
                core::throughput_loss(cfg) * 100.0};
}

}  // namespace

int main() {
  bench::title("Extension: SledZig on a 40 MHz channel (QAM-64 2/3)");
  bench::note("Each row protects one 2 MHz window of the 8 a 40 MHz channel");
  bench::note("overlaps.  In-band power is relative to total TX power.");
  bench::row("  %-12s %-12s %-13s %-11s %-10s", "window(MHz)", "normal(dB)",
             "sledzig(dB)", "drop(dB)", "WiFi loss");
  for (double offset_mhz : {-17.0, -12.0, -7.0, -2.0, 3.0, 8.0, 13.0, 18.0}) {
    const auto r = measure(offset_mhz * 1e6);
    bench::row("  %-12.0f %-12.1f %-13.1f %-11.1f %.2f%%", offset_mhz,
               r.normal_db, r.sled_db, r.normal_db - r.sled_db, r.loss_pct);
  }
  bench::note("The per-window WiFi cost on 40 MHz is roughly half the 20 MHz");
  bench::note("cost: the same extra bits amortise over twice the subcarriers.");
  return 0;
}
