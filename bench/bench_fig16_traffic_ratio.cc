// Fig 16: ZigBee throughput vs WiFi duration ratio (20%..90%) at close
// range (d_WZ = 1 m, d_Z = 0.5 m, CH3).  Box-plot statistics over seeds.
// Paper: normal WiFi ~23 Kbps at 20% then near zero; SledZig keeps high
// throughput up to ~20% (QAM-16), ~40% (QAM-64), ~70% (QAM-256; mean
// 34.5 Kbps, lower quartile ~20 Kbps at 70%).
#include "bench_util.h"
#include "coex/experiment.h"
#include "common/stats.h"

using namespace sledzig;
using coex::Scenario;
using coex::Scheme;

namespace {

common::BoxStats box(wifi::Modulation m, wifi::CodingRate r, Scheme scheme,
                     double ratio) {
  std::vector<double> vals;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    Scenario s;
    s.sledzig = core::SledzigConfig{m, r, core::OverlapChannel::kCh3};
    s.scheme = scheme;
    s.d_wz_m = 1.0;
    s.d_z_m = 0.5;
    s.wifi_duty_ratio = ratio;
    s.duration_s = 15.0;
    s.seed = seed;
    vals.push_back(coex::run_throughput_experiment(s).throughput_kbps);
  }
  return common::box_stats(vals);
}

void sweep(const char* label, wifi::Modulation m, wifi::CodingRate r,
           Scheme scheme) {
  bench::row("  %s", label);
  bench::row("  %-9s %-8s %-8s %-8s %-8s %-8s", "ratio(%)", "min", "q1",
             "median", "q3", "max");
  for (double ratio : {0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}) {
    const auto b = box(m, r, scheme, ratio);
    bench::row("  %-9.0f %-8.1f %-8.1f %-8.1f %-8.1f %-8.1f", ratio * 100,
               b.min, b.q1, b.median, b.q3, b.max);
  }
}

}  // namespace

int main() {
  bench::title("Fig 16: ZigBee throughput vs WiFi duration ratio");
  bench::note("d_WZ = 1 m, d_Z = 0.5 m, CH3; 12 seeds per box.");
  sweep("normal WiFi (paper: ~23 Kbps @20%, ~0 beyond)",
        wifi::Modulation::kQam64, wifi::CodingRate::kR23, Scheme::kNormalWifi);
  sweep("SledZig QAM-16 (paper: works at 20%)", wifi::Modulation::kQam16,
        wifi::CodingRate::kR12, Scheme::kSledzig);
  sweep("SledZig QAM-64 (paper: works to ~40%)", wifi::Modulation::kQam64,
        wifi::CodingRate::kR23, Scheme::kSledzig);
  sweep("SledZig QAM-256 (paper: works to ~70%, mean 34.5 Kbps there)",
        wifi::Modulation::kQam256, wifi::CodingRate::kR34, Scheme::kSledzig);
  return 0;
}
